#!/usr/bin/env bash
# trace_smoke.sh — black-box proof of the distributed-tracing contract:
# boot real spectrumd + schedd binaries, run a one-task agentd against
# them, then assert the measurement's trace ID — rooted at the agent's
# poll cycle — is retrievable from every daemon's /debug/traces.
#
# The agent exits after its task, so its spans come from the durable
# JSONL export (-trace-export) rather than a live debug endpoint; the
# two daemons are queried over HTTP like an operator would.
#
# Usage: scripts/trace_smoke.sh [artifact-dir]   (default: trace-smoke)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-trace-smoke}
mkdir -p "$OUT"
WORK=$(mktemp -d)
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SPECTRUM=127.0.0.1:18025
SCHED=127.0.0.1:18027

go build -o "$WORK" ./cmd/spectrumd ./cmd/schedd ./cmd/agentd

"$WORK/spectrumd" -addr "$SPECTRUM" -state "$WORK/ledger.json" -wal "$WORK/wal" \
  -trace-export "$OUT/spectrumd-spans.jsonl" >"$OUT/spectrumd.log" 2>&1 &
"$WORK/schedd" -addr "$SCHED" -nodes node-1 -plan-every 2s \
  -trace-export "$OUT/schedd-spans.jsonl" >"$OUT/schedd.log" 2>&1 &

# /readyz, not /metrics: the metrics endpoint answers while spectrumd is
# still replaying its WAL; readiness flips only once the ledger is live.
for i in $(seq 1 50); do
  if curl -fsS "http://$SPECTRUM/readyz" >/dev/null 2>&1 &&
     curl -fsS "http://$SCHED/readyz" >/dev/null 2>&1; then
    break
  fi
  [ "$i" -eq 50 ] && { echo "daemons never became ready" >&2; exit 1; }
  sleep 0.2
done

# One leased measurement, then exit. The simulated agent clock races
# through the scheduled window, so this takes seconds of wall time.
"$WORK/agentd" -node node-1 -scheduler "http://$SCHED" \
  -collector "http://$SPECTRUM" -spool "$WORK/spool.jsonl" \
  -drain 500ms -poll 2s -tasks 1 -admin "" \
  -trace-export "$OUT/agent-spans.jsonl" >"$OUT/agentd.log" 2>&1

TRACE_ID=$(python3 - "$OUT/agent-spans.jsonl" <<'EOF'
import json, sys
for line in open(sys.argv[1]):
    rec = json.loads(line)
    if rec.get("name") == "agent.task":
        print(rec["trace_id"])
        break
EOF
)
if [ -z "$TRACE_ID" ]; then
  echo "FAIL: no agent.task span in $OUT/agent-spans.jsonl" >&2
  exit 1
fi
echo "measurement trace: $TRACE_ID"

fail=0
for daemon in "schedd $SCHED" "spectrumd $SPECTRUM"; do
  set -- $daemon
  name=$1 hostport=$2
  curl -fsS "http://$hostport/debug/traces?trace_id=$TRACE_ID" >"$OUT/$name-trace.json"
  n=$(python3 -c 'import json,sys; print(len(json.load(open(sys.argv[1]))))' "$OUT/$name-trace.json")
  if [ "$n" -eq 0 ]; then
    echo "FAIL: $name holds no spans of trace $TRACE_ID" >&2
    fail=1
  else
    echo "OK: $name holds $n span(s) of trace $TRACE_ID"
  fi
done
exit $fail
