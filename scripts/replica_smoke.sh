#!/usr/bin/env bash
# replica_smoke.sh — black-box proof of the multi-replica collector
# tier: boot three spectrumd replicas as one ring, register through one
# member, submit readings through the "wrong" members (forcing ring
# forwarding), verify every replica serves the identical fleet view,
# kill a non-coordinator and prove (a) submissions owned by the dead
# member shed with 503 + Retry-After instead of being acked into a
# void, (b) the restarted member catches up from a live peer and gates
# /readyz until it has.
#
# Usage: scripts/replica_smoke.sh [artifact-dir]   (default: replica-smoke)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-replica-smoke}
mkdir -p "$OUT"
WORK=$(mktemp -d)
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

A1=127.0.0.1:18201
A2=127.0.0.1:18202
A3=127.0.0.1:18203
RING="r1=http://$A1,r2=http://$A2,r3=http://$A3"
# Every member shares the ring secret; /replica/* rejects anyone else.
export SENSORCAL_RING_SECRET=smoke-ring-secret

go build -o "$WORK" ./cmd/spectrumd

start_replica() { # id addr
  "$WORK/spectrumd" -addr "$2" -replica-id "$1" -ring "$RING" \
    -wal "$WORK/wal-$1" -epoch 1s -catchup-wait 10s \
    >>"$OUT/spectrumd-$1.log" 2>&1 &
}

wait_ready() { # addr what
  for i in $(seq 1 50); do
    curl -fsS "http://$1/readyz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "FAIL: $2 never became ready" >&2
  exit 1
}

start_replica r1 "$A1"
start_replica r2 "$A2"
start_replica r3 "$A3"
wait_ready "$A1" r1; wait_ready "$A2" r2; wait_ready "$A3" r3

# The ring endpoint agrees on topology and the coordinator everywhere.
for a in "$A1" "$A2" "$A3"; do
  curl -fsS "http://$a/api/ring" >"$OUT/ring-$a.json"
  python3 - "$OUT/ring-$a.json" <<'EOF'
import json, sys
ring = json.load(open(sys.argv[1]))
assert ring["coordinator"] == "r1", f"coordinator {ring['coordinator']}, want r1"
assert len(ring["members"]) == 3, f"{len(ring['members'])} members, want 3"
assert ring["ready"], "replica not ready"
EOF
done
echo "OK: ring topology agreed on all three replicas"

# The peer protocol is credential-gated: a drain attempt without the
# ring secret must bounce with 403, not hand over pending evidence.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$A1/replica/drain" \
  -d '{"cutoff":"2030-01-01T00:00:00Z"}')
if [ "$code" != "403" ]; then
  echo "FAIL: unauthenticated /replica/drain returned $code, want 403" >&2
  exit 1
fi
echo "OK: unauthenticated peer-protocol call rejected with 403"

# Register 10 nodes through r2 only — the broadcast must land them on
# every ledger. node-2 is pinned to r3 by the ring placement tests, and
# we rely on that below.
for n in $(seq 0 9); do
  curl -fsS -X POST "http://$A2/api/register" \
    -d "{\"id\":\"node-$n\",\"operator\":\"op-$n\",\"hardware\":\"rtl-sdr-v3\"}" >/dev/null
done

# Submit every node's readings through r1: most are owned elsewhere, so
# this exercises the forward path. node-7 reads hot to trip an anomaly.
submit_round() { # key-prefix entry-addr
  local batch="[" sep=""
  for n in $(seq 0 9); do
    p=-60; [ "$n" -eq 7 ] && p=-10
    batch="$batch$sep{\"node\":\"node-$n\",\"signal_id\":\"tv-521\",\"power_dbm\":$p,\"key\":\"$1-$n\"}"
    sep=","
  done
  batch="$batch]"
  curl -fsS -X POST "http://$2/api/readings" -d "$batch"
}
submit_round w1 "$A1" >"$OUT/submit1.json"
python3 - "$OUT/submit1.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["accepted"] == 10 and r["rejected"] == 0, r
EOF
echo "OK: 10 readings accepted through a non-owning replica"

# Forwarding really happened: the entry replica's counter is non-zero.
curl -fsS "http://$A1/metrics" >"$OUT/metrics-r1.txt"
grep -q '^replica_forwarded_readings_total [1-9]' "$OUT/metrics-r1.txt" || {
  echo "FAIL: no forwarded readings counted on r1" >&2
  exit 1
}

# Let the coordinator run a merge close (epoch window 1s), then the
# fleet view must be byte-identical on every replica and contain the
# scores the merge moved.
sleep 3
curl -fsS "http://$A1/api/fleet" >"$OUT/fleet-r1.json"
curl -fsS "http://$A2/api/fleet" >"$OUT/fleet-r2.json"
curl -fsS "http://$A3/api/fleet" >"$OUT/fleet-r3.json"
cmp "$OUT/fleet-r1.json" "$OUT/fleet-r2.json"
cmp "$OUT/fleet-r1.json" "$OUT/fleet-r3.json"
python3 - "$OUT/fleet-r1.json" <<'EOF'
import json, sys
fleet = json.load(open(sys.argv[1]))
assert len(fleet) == 10, f"{len(fleet)} nodes, want 10"
scores = {e["node"]: e["score"] for e in fleet}
assert scores["node-7"] < max(s for n, s in scores.items() if n != "node-7"), \
    f"node-7 never penalized: {scores}"
EOF
echo "OK: fleet view byte-identical across the ring, merge moved scores"

# Kill the non-coordinator r3. A batch containing node-2 (owned by r3)
# must shed whole with 503 + Retry-After: never ack evidence that was
# not placed.
pkill -f "replica-id r3" || true
sleep 0.5
code=$(curl -s -o "$OUT/shed-body.txt" -D "$OUT/shed-headers.txt" -w '%{http_code}' \
  -X POST "http://$A1/api/readings" \
  -d '[{"node":"node-2","signal_id":"tv-521","power_dbm":-60,"key":"dead-1"}]')
if [ "$code" != "503" ]; then
  echo "FAIL: submission for a dead owner returned $code, want 503" >&2
  exit 1
fi
grep -qi '^retry-after:' "$OUT/shed-headers.txt" || {
  echo "FAIL: 503 without Retry-After" >&2
  exit 1
}
echo "OK: dead-owner submission shed with 503 + Retry-After"

# Restart r3 on its surviving WAL: boot catch-up from a live peer must
# gate /readyz until the copy lands, then the ring converges again.
start_replica r3 "$A3"
wait_ready "$A3" "restarted r3"
curl -fsS "http://$A3/api/fleet" >"$OUT/fleet-r3-restarted.json"
cmp "$OUT/fleet-r1.json" "$OUT/fleet-r3-restarted.json" || {
  # The fleet merges live freshness; allow one refresh cycle.
  sleep 1
  curl -fsS "http://$A1/api/fleet" >"$OUT/fleet-r1-2.json"
  curl -fsS "http://$A3/api/fleet" >"$OUT/fleet-r3-restarted.json"
  cmp "$OUT/fleet-r1-2.json" "$OUT/fleet-r3-restarted.json"
}
# And the rerouted submission goes through now.
curl -fsS -X POST "http://$A1/api/readings" \
  -d '[{"node":"node-2","signal_id":"tv-521","power_dbm":-60,"key":"dead-1"}]' \
  >"$OUT/resubmit.json"
python3 - "$OUT/resubmit.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["accepted"] + r["duplicates"] == 1 and r["rejected"] == 0, r
EOF
echo "OK: restarted replica caught up; rerouted submission accepted"
echo "replica smoke passed"
