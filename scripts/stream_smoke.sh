#!/usr/bin/env bash
# stream_smoke.sh — black-box proof of the fleet streaming service:
# boot a real spectrumd, stream frames from 100 sensors through the wire
# API with loadgen, then assert the aggregation actually happened
# (/api/occupancy holds non-empty slots) and the daemon stayed healthy
# (/readyz 200, i.e. the aggregation breaker never opened).
#
# Usage: scripts/stream_smoke.sh [artifact-dir]   (default: stream-smoke)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-stream-smoke}
mkdir -p "$OUT"
WORK=$(mktemp -d)
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

ADDR=127.0.0.1:18125

go build -o "$WORK" ./cmd/spectrumd ./cmd/loadgen

"$WORK/spectrumd" -addr "$ADDR" -state "$WORK/ledger.json" \
  >"$OUT/spectrumd.log" 2>&1 &

for i in $(seq 1 50); do
  curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1 && break
  [ "$i" -eq 50 ] && { echo "spectrumd never became ready" >&2; exit 1; }
  sleep 0.2
done

# 100 sensors, wire-format frames, closed loop for 2s. loadgen exits
# non-zero if the equivalence gate or the run itself fails.
"$WORK/loadgen" -scenario stream -target "http://$ADDR" \
  -sensors 100 -conns 4 -batch 25 -duration 2s \
  -out "$OUT/BENCH_stream_smoke.json" >"$OUT/loadgen.log" 2>&1

curl -fsS "http://$ADDR/api/occupancy" >"$OUT/occupancy.json"
python3 - "$OUT/occupancy.json" <<'EOF'
import json, sys
occ = json.load(open(sys.argv[1]))
slots = occ.get("slots") or []
frames = sum(s.get("frames", 0) for s in slots)
if not slots or frames == 0:
    raise SystemExit(f"FAIL: occupancy empty (slots={len(slots)}, frames={frames})")
buckets = sum(1 for s in slots for f in s.get("occupancy", []) if f > 0)
print(f"OK: {len(slots)} slot(s), {frames} frames folded, {buckets} occupied bucket(s)")
EOF

# Still ready after the load: the breaker never latched the service
# degraded, and the stream health check passes.
code=$(curl -s -o "$OUT/readyz.txt" -w '%{http_code}' "http://$ADDR/readyz")
if [ "$code" != "200" ]; then
  echo "FAIL: /readyz returned $code after streaming load" >&2
  cat "$OUT/readyz.txt" >&2
  exit 1
fi
echo "OK: /readyz healthy after streaming load"

# The stream metrics surfaced on /metrics prove the obs wiring end to end.
curl -fsS "http://$ADDR/metrics" >"$OUT/metrics.txt"
grep -q '^stream_frames_processed_total [1-9]' "$OUT/metrics.txt" || {
  echo "FAIL: stream_frames_processed_total not advancing" >&2
  exit 1
}
echo "OK: stream metrics advancing"
