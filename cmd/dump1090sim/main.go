// Command dump1090sim runs the in-repo dump1090 pipeline — PPM
// demodulation, Mode S decoding, CPR position assembly — against simulated
// air traffic received at one of the testbed sites, and prints the decoded
// aircraft table the way dump1090 would.
//
// Usage:
//
//	dump1090sim [-site rooftop] [-aircraft 40] [-duration 30s] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"time"

	"sensorcal/internal/antenna"
	"sensorcal/internal/dump1090"
	"sensorcal/internal/flightsim"
	"sensorcal/internal/iq"
	"sensorcal/internal/modes"
	"sensorcal/internal/obs"
	"sensorcal/internal/phy1090"
	"sensorcal/internal/rfmath"
	"sensorcal/internal/world"
)

func main() {
	logger := obs.NewLogger("dump1090sim")
	var (
		siteName = flag.String("site", "rooftop", "receive site: rooftop, window or indoor")
		aircraft = flag.Int("aircraft", 40, "aircraft population within 100 km")
		duration = flag.Duration("duration", 30*time.Second, "capture duration")
		seed     = flag.Int64("seed", 1, "simulation seed")
		sbs      = flag.Bool("sbs", false, "emit the decoded messages as an SBS-1 (BaseStation) feed")
	)
	flag.Parse()

	var site *world.Site
	for _, s := range world.Sites() {
		if s.Name == *siteName {
			site = s
		}
	}
	if site == nil {
		logger.Fatalf("unknown site %q", *siteName)
	}

	epoch := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	fleet, err := flightsim.NewFleet(epoch, flightsim.Config{
		Center: world.BuildingOrigin, Radius: 100_000, Count: *aircraft, Seed: *seed,
	})
	if err != nil {
		logger.Fatalf("%v", err)
	}
	txs, err := fleet.TransmissionsBetween(epoch, epoch.Add(*duration))
	if err != nil {
		logger.Fatalf("%v", err)
	}

	pipe := dump1090.NewPipeline()
	pipe.Tracker.SetReceiverPosition(site.Position)
	ant := antenna.PaperAntenna()
	fader := rfmath.NewFader(*seed)
	noise := iq.DBFSToPower(-40)
	noiseSrc := iq.NewNoiseSource(*seed + 1)
	rx := world.RxConfig{NoiseFigureDB: 6, TempK: 290}

	var sbsFeed []string
	for _, tx := range txs {
		g := site.GeometryTo(tx.Position)
		rx.GainDBi = ant.GainDBi(g.BearingDeg, g.ElevationDeg, 1090e6)
		lb := site.Link(world.Transmitter{
			Position: tx.Position, EIRPDBm: tx.Aircraft.EIRPDBm(),
			FrequencyHz: 1090e6, BandwidthHz: 2e6,
		}, world.ModelFreeSpace, rx, 0)
		snr := lb.SNRDB() - fader.RicianFadeDB(8)
		if snr < -3 {
			continue
		}
		burst, err := phy1090.Modulate(tx.Frame, phy1090.SNRToAmplitude(snr, noise))
		if err != nil {
			logger.Fatalf("%v", err)
		}
		capBuf := iq.New(phy1090.FrameSamples+8, phy1090.SampleRate)
		_ = capBuf.AddAt(burst, 4)
		noiseSrc.AddNoise(capBuf, noise)
		if !pipe.ProcessBurst(tx.At, capBuf, 8) {
			continue
		}
		if *sbs {
			if f, err := modes.Decode(tx.Frame); err == nil {
				trk, _ := pipe.Tracker.Track(f.ICAO)
				if line, ok := dump1090.SBSLine(tx.At, f, trk); ok {
					sbsFeed = append(sbsFeed, line)
				}
			}
		}
	}

	if *sbs {
		for _, line := range sbsFeed {
			fmt.Println(line)
		}
		fmt.Println()
	}

	tracks := pipe.Tracker.Tracks()
	fmt.Printf("site %s: %d transmissions on air, %d frames decoded, %d aircraft tracked\n\n",
		site.Name, len(txs), pipe.FramesDecoded, len(tracks))
	fmt.Print(dump1090.Summary(tracks))
}
