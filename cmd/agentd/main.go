// Command agentd runs a sensor node as a long-lived daemon: the paper's
// §5 end-to-end system. It plans traffic-aware measurement windows, runs
// the ADS-B and frequency measurements at the scheduled times, submits
// shared-signal readings to a spectrumd collector (when configured), and
// prints the evolving calibration report after every round.
//
// By default it runs against an accelerated simulated clock so a full
// measurement day finishes in seconds; pass -realtime to pace the windows
// on the wall clock (for demonstration alongside fr24d/spectrumd).
//
// Usage:
//
//	agentd [-site rooftop] [-node node-1] [-days 1] [-windows 4]
//	       [-collector http://host:8025] [-realtime] [-seed 1]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"sensorcal/internal/agent"
	"sensorcal/internal/clock"
	"sensorcal/internal/trust"
	"sensorcal/internal/world"
)

// httpCollector submits readings to a remote spectrumd.
type httpCollector struct {
	base string
	hc   *http.Client
}

func (c *httpCollector) Submit(r trust.Reading) error {
	body, err := json.Marshal(map[string]interface{}{
		"node": string(r.Node), "signal_id": r.SignalID,
		"power_dbm": r.PowerDBm, "at": r.At,
	})
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+"/api/readings", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("agentd: submit: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("agentd: collector returned %s", resp.Status)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("agentd: ")
	var (
		siteName  = flag.String("site", "rooftop", "installation: rooftop, window or indoor")
		nodeID    = flag.String("node", "node-1", "node identity at the collector")
		days      = flag.Int("days", 1, "measurement days to run")
		windows   = flag.Int("windows", 4, "measurement windows per day")
		collector = flag.String("collector", "", "spectrumd base URL (empty: no submission)")
		realtime  = flag.Bool("realtime", false, "pace windows on the wall clock")
		seed      = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	var site *world.Site
	for _, s := range world.Sites() {
		if s.Name == *siteName {
			site = s
		}
	}
	if site == nil {
		log.Fatalf("unknown site %q", *siteName)
	}

	var col agent.Collector
	if *collector != "" {
		col = &httpCollector{base: *collector, hc: &http.Client{Timeout: 10 * time.Second}}
	}

	start := time.Now().Truncate(time.Hour)
	var clk clock.Clock
	var sim *clock.Simulated
	if *realtime {
		clk = clock.System{}
	} else {
		sim = clock.NewSimulated(start)
		clk = sim
	}

	a, err := agent.New(agent.Config{
		Node: trust.NodeID(*nodeID),
		Site: site,
		Traffic: agent.SimTraffic{
			Center: world.BuildingOrigin, Radius: 100_000, Count: 60, Seed: *seed,
		},
		Towers:        world.Towers(),
		TV:            world.TVStations(),
		Clock:         clk,
		Collector:     col,
		WindowsPerDay: *windows,
		Seed:          *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	if sim != nil {
		// Drive the simulated clock forward continuously.
		go func() {
			for {
				sim.Advance(5 * time.Minute)
				time.Sleep(time.Millisecond)
			}
		}()
	}

	for d := 0; d < *days; d++ {
		from := start.Add(time.Duration(d) * 24 * time.Hour)
		log.Printf("planning day %d from %s", d+1, from.Format(time.RFC3339))
		if err := a.RunDay(context.Background(), from); err != nil {
			log.Fatal(err)
		}
		rep := a.LatestReport()
		rep.AttachPowerCalibration(site, nil)
		fmt.Printf("\n=== after day %d (%d rounds) ===\n%s", d+1, len(a.Rounds()), rep.Render())
		covered := a.CoveredSectors()
		n := 0
		for _, c := range covered {
			if c {
				n++
			}
		}
		log.Printf("sector coverage: %d/12", n)
	}
}
