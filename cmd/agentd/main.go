// Command agentd runs a sensor node as a long-lived daemon: the paper's
// §5 end-to-end system. It plans traffic-aware measurement windows, runs
// the ADS-B and frequency measurements at the scheduled times, submits
// shared-signal readings to a spectrumd collector (when configured), and
// prints the evolving calibration report after every round.
//
// By default it runs against an accelerated simulated clock so a full
// measurement day finishes in seconds; pass -realtime to pace the windows
// on the wall clock (for demonstration alongside fr24d/spectrumd).
//
// The admin server on -admin exposes the node's health: GET /metrics
// (campaign stage durations, decode counters, scheduler decisions in
// Prometheus text format), GET /debug/traces (span ring as JSON) and
// GET /debug/pprof/* (runtime profiles).
//
// Usage:
//
//	agentd [-site rooftop] [-node node-1] [-days 1] [-windows 4]
//	       [-collector http://host:8025] [-realtime] [-seed 1]
//	       [-admin :8026] [-log-level info]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"time"

	"sensorcal/internal/agent"
	"sensorcal/internal/clock"
	"sensorcal/internal/obs"
	"sensorcal/internal/trust"
	"sensorcal/internal/world"
)

// httpCollector submits readings to a remote spectrumd.
type httpCollector struct {
	base string
	hc   *http.Client
}

// register enrolls the node with the collector. A Conflict response means
// the node is already in the ledger (a daemon restart) and is fine.
func (c *httpCollector) register(node trust.NodeID, site string) error {
	body, err := json.Marshal(map[string]interface{}{
		"id": string(node), "operator": "agentd", "hardware": site,
	})
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+"/api/register", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("agentd: register: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		return fmt.Errorf("agentd: collector returned %s to register", resp.Status)
	}
	return nil
}

func (c *httpCollector) Submit(r trust.Reading) error {
	body, err := json.Marshal(map[string]interface{}{
		"node": string(r.Node), "signal_id": r.SignalID,
		"power_dbm": r.PowerDBm, "at": r.At,
	})
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+"/api/readings", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("agentd: submit: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("agentd: collector returned %s", resp.Status)
	}
	return nil
}

func main() {
	logger := obs.NewLogger("agentd")
	var (
		siteName  = flag.String("site", "rooftop", "installation: rooftop, window or indoor")
		nodeID    = flag.String("node", "node-1", "node identity at the collector")
		days      = flag.Int("days", 1, "measurement days to run")
		windows   = flag.Int("windows", 4, "measurement windows per day")
		collector = flag.String("collector", "", "spectrumd base URL (empty: no submission)")
		realtime  = flag.Bool("realtime", false, "pace windows on the wall clock")
		seed      = flag.Int64("seed", 1, "simulation seed")
		admin     = flag.String("admin", ":8026", "admin listen address for /metrics, /debug/traces and /debug/pprof (empty: disabled)")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	)
	flag.Parse()
	lv, err := obs.ParseLevel(*logLevel)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	logger.SetLevel(lv)

	var site *world.Site
	for _, s := range world.Sites() {
		if s.Name == *siteName {
			site = s
		}
	}
	if site == nil {
		logger.Fatalf("unknown site %q", *siteName)
	}

	if *admin != "" {
		srv := &http.Server{Addr: *admin, Handler: obs.AdminMux(nil, nil)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Warnf("admin server: %v", err)
			}
		}()
		logger.Infof("admin endpoints on %s (/metrics, /debug/traces, /debug/pprof)", *admin)
	}

	var col agent.Collector
	if *collector != "" {
		hcol := &httpCollector{base: *collector, hc: &http.Client{Timeout: 10 * time.Second}}
		if err := hcol.register(trust.NodeID(*nodeID), *siteName); err != nil {
			logger.Fatalf("%v", err)
		}
		logger.Infof("registered %s with collector %s", *nodeID, *collector)
		col = hcol
	}

	start := time.Now().Truncate(time.Hour)
	var clk clock.Clock
	var sim *clock.Simulated
	if *realtime {
		clk = clock.System{}
	} else {
		sim = clock.NewSimulated(start)
		clk = sim
	}

	a, err := agent.New(agent.Config{
		Node: trust.NodeID(*nodeID),
		Site: site,
		Traffic: agent.SimTraffic{
			Center: world.BuildingOrigin, Radius: 100_000, Count: 60, Seed: *seed,
		},
		Towers:        world.Towers(),
		TV:            world.TVStations(),
		Clock:         clk,
		Collector:     col,
		WindowsPerDay: *windows,
		Seed:          *seed,
	})
	if err != nil {
		logger.Fatalf("%v", err)
	}

	if sim != nil {
		// Drive the simulated clock forward continuously.
		go func() {
			for {
				sim.Advance(5 * time.Minute)
				time.Sleep(time.Millisecond)
			}
		}()
	}

	for d := 0; d < *days; d++ {
		from := start.Add(time.Duration(d) * 24 * time.Hour)
		logger.Infof("planning day %d from %s", d+1, from.Format(time.RFC3339))
		if err := a.RunDay(context.Background(), from); err != nil {
			logger.Fatalf("%v", err)
		}
		rep := a.LatestReport()
		rep.AttachPowerCalibration(site, nil)
		fmt.Printf("\n=== after day %d (%d rounds) ===\n%s", d+1, len(a.Rounds()), rep.Render())
		covered := a.CoveredSectors()
		n := 0
		for _, c := range covered {
			if c {
				n++
			}
		}
		logger.Log(obs.LevelInfo, "sector coverage", "covered", n, "of", 12)
	}
}
