// Command agentd runs a sensor node as a long-lived daemon: the paper's
// §5 end-to-end system. It plans traffic-aware measurement windows, runs
// the ADS-B and frequency measurements at the scheduled times, submits
// shared-signal readings to a spectrumd collector (when configured), and
// prints the evolving calibration report after every round.
//
// Submission is store-and-forward: readings land in a durable spool
// (-spool) first and a background drain loop ships them in batches
// through a retrier and a circuit breaker, so a collector outage — or an
// agentd crash — loses nothing. Restarting the daemon replays whatever
// the spool still holds; idempotency keys keep replays from
// double-counting at the collector.
//
// By default it runs against an accelerated simulated clock so a full
// measurement day finishes in seconds; pass -realtime to pace the windows
// on the wall clock (for demonstration alongside fr24d/spectrumd).
//
// The admin server on -admin exposes the node's health: GET /metrics
// (campaign stage durations, decode counters, scheduler decisions,
// resilience_* retry/breaker/spool series in Prometheus text format),
// GET /debug/traces (span ring as JSON) and GET /debug/pprof/* (runtime
// profiles).
//
// Usage:
//
//	agentd [-site rooftop] [-node node-1] [-days 1] [-windows 4]
//	       [-collector http://host:8025] [-spool agentd.spool.jsonl]
//	       [-drain 2s] [-realtime] [-seed 1]
//	       [-admin :8026] [-log-level info]
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sensorcal/internal/agent"
	"sensorcal/internal/clock"
	"sensorcal/internal/obs"
	"sensorcal/internal/resilience"
	"sensorcal/internal/trust"
	"sensorcal/internal/world"
)

func main() {
	logger := obs.NewLogger("agentd")
	var (
		siteName  = flag.String("site", "rooftop", "installation: rooftop, window or indoor")
		nodeID    = flag.String("node", "node-1", "node identity at the collector")
		days      = flag.Int("days", 1, "measurement days to run")
		windows   = flag.Int("windows", 4, "measurement windows per day")
		collector = flag.String("collector", "", "spectrumd base URL (empty: no submission)")
		spoolPath = flag.String("spool", "agentd.spool.jsonl", "store-and-forward WAL for readings awaiting delivery")
		drainIv   = flag.Duration("drain", 2*time.Second, "spool drain interval")
		realtime  = flag.Bool("realtime", false, "pace windows on the wall clock")
		seed      = flag.Int64("seed", 1, "simulation seed")
		admin     = flag.String("admin", ":8026", "admin listen address for /metrics, /debug/traces and /debug/pprof (empty: disabled)")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	)
	flag.Parse()
	lv, err := obs.ParseLevel(*logLevel)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	logger.SetLevel(lv)

	var site *world.Site
	for _, s := range world.Sites() {
		if s.Name == *siteName {
			site = s
		}
	}
	if site == nil {
		logger.Fatalf("unknown site %q", *siteName)
	}

	if *admin != "" {
		srv := &http.Server{Addr: *admin, Handler: obs.AdminMux(nil, nil)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Warnf("admin server: %v", err)
			}
		}()
		logger.Infof("admin endpoints on %s (/metrics, /debug/traces, /debug/pprof)", *admin)
	}

	// Ctrl-C / SIGTERM cancels the measurement loop; the deferred spool
	// flush below still runs so buffered readings survive the shutdown.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var col agent.Collector
	var tc *trust.Client
	if *collector != "" {
		spool, err := resilience.OpenSpool(*spoolPath)
		if err != nil {
			logger.Fatalf("opening spool: %v", err)
		}
		spool.Instrument(nil)
		defer spool.Close()
		if n := spool.Len(); n > 0 {
			logger.Infof("spool %s holds %d undelivered readings from a previous run", *spoolPath, n)
		}
		tc, err = trust.NewClient(trust.ClientConfig{
			BaseURL: *collector,
			Spool:   spool,
			Retrier: resilience.NewRetrier(resilience.Policy{
				MaxAttempts: 5,
				BaseDelay:   100 * time.Millisecond,
				MaxDelay:    5 * time.Second,
				Seed:        *seed,
			}).Instrument(nil),
			Breaker: resilience.NewBreaker(resilience.BreakerConfig{
				Name:             "collector",
				FailureThreshold: 5,
				OpenFor:          15 * time.Second,
			}).Instrument(nil),
			Logger: logger,
		})
		if err != nil {
			logger.Fatalf("%v", err)
		}
		if err := tc.Register(ctx, trust.NodeID(*nodeID), "agentd", *siteName); err != nil {
			logger.Fatalf("registering with collector: %v", err)
		}
		logger.Infof("registered %s with collector %s", *nodeID, *collector)
		go tc.Run(ctx, *drainIv)
		col = tc
	}

	start := time.Now().Truncate(time.Hour)
	var clk clock.Clock
	var sim *clock.Simulated
	if *realtime {
		clk = clock.System{}
	} else {
		sim = clock.NewSimulated(start)
		clk = sim
	}

	a, err := agent.New(agent.Config{
		Node: trust.NodeID(*nodeID),
		Site: site,
		Traffic: agent.SimTraffic{
			Center: world.BuildingOrigin, Radius: 100_000, Count: 60, Seed: *seed,
		},
		Towers:        world.Towers(),
		TV:            world.TVStations(),
		Clock:         clk,
		Collector:     col,
		WindowsPerDay: *windows,
		Seed:          *seed,
	})
	if err != nil {
		logger.Fatalf("%v", err)
	}

	if sim != nil {
		// Drive the simulated clock forward continuously.
		go func() {
			for {
				sim.Advance(5 * time.Minute)
				time.Sleep(time.Millisecond)
			}
		}()
	}

	for d := 0; d < *days; d++ {
		from := start.Add(time.Duration(d) * 24 * time.Hour)
		logger.Infof("planning day %d from %s", d+1, from.Format(time.RFC3339))
		if err := a.RunDay(ctx, from); err != nil {
			flushSpool(tc, logger)
			logger.Fatalf("%v", err)
		}
		rep := a.LatestReport()
		rep.AttachPowerCalibration(site, nil)
		fmt.Printf("\n=== after day %d (%d rounds) ===\n%s", d+1, len(a.Rounds()), rep.Render())
		covered := a.CoveredSectors()
		n := 0
		for _, c := range covered {
			if c {
				n++
			}
		}
		logger.Log(obs.LevelInfo, "sector coverage", "covered", n, "of", 12)
	}
	flushSpool(tc, logger)
}

// flushSpool makes a final bounded delivery attempt so a clean exit does
// not strand readings until the next run. Failure is fine — the spool is
// durable and the next start replays it.
func flushSpool(tc *trust.Client, logger *obs.Logger) {
	if tc == nil || tc.SpoolDepth() == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := tc.Drain(ctx); err != nil {
		logger.Warnf("final drain: %v (%d readings stay spooled for next run)", err, tc.SpoolDepth())
		return
	}
	logger.Infof("spool drained")
}
