// Command agentd runs a sensor node as a long-lived daemon: the paper's
// §5 end-to-end system. In its default free-running mode it plans its
// own traffic-aware measurement windows per day; pointed at a schedd
// fleet scheduler (-scheduler) it instead polls for leased measurement
// tasks — the scheduler decides when this node measures, the agent
// executes the windows and acknowledges completion (idempotently, so
// retried acks are safe). Either way it runs the ADS-B and frequency
// measurements at the chosen times, submits shared-signal readings to a
// spectrumd collector (when configured), and prints the evolving
// calibration report.
//
// Submission is store-and-forward: readings land in a durable spool
// (-spool) first and a background drain loop ships them in batches
// through a retrier and a circuit breaker, so a collector outage — or an
// agentd crash — loses nothing. Restarting the daemon replays whatever
// the spool still holds; idempotency keys keep replays from
// double-counting at the collector.
//
// By default it runs against an accelerated simulated clock so a full
// measurement day finishes in seconds; pass -realtime to pace the windows
// on the wall clock (for demonstration alongside fr24d/spectrumd/schedd).
//
// The admin server on -admin exposes the node's health: GET /metrics
// (campaign stage durations, decode counters, scheduler decisions,
// agent_tasks_* lease/complete counters, resilience_* retry/breaker/spool
// series in Prometheus text format), GET /debug/traces (span ring as
// JSON) and GET /debug/pprof/* (runtime profiles).
//
// Usage:
//
//	agentd [-site rooftop] [-node node-1] [-days 1] [-windows 4]
//	       [-scheduler http://host:8027] [-poll 30s] [-tasks 0]
//	       [-collector http://host:8025] [-spool agentd.spool.jsonl]
//	       [-drain 2s] [-realtime] [-parallel 0] [-seed 1]
//	       [-admin :8026] [-log-level info]
//	       [-trace-capacity 4096] [-trace-sample 1] [-trace-export spans.jsonl]
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sensorcal/internal/agent"
	"sensorcal/internal/clock"
	"sensorcal/internal/obs"
	"sensorcal/internal/resilience"
	"sensorcal/internal/sched"
	"sensorcal/internal/trust"
	"sensorcal/internal/world"
)

func main() {
	logger := obs.NewLogger("agentd")
	var (
		siteName  = flag.String("site", "rooftop", "installation: rooftop, window or indoor")
		nodeID    = flag.String("node", "node-1", "node identity at the collector")
		days      = flag.Int("days", 1, "measurement days to run (free-running mode)")
		windows   = flag.Int("windows", 4, "measurement windows per day (free-running mode)")
		scheduler = flag.String("scheduler", "", "schedd base URL; set to lease measurement tasks instead of free-running")
		poll      = flag.Duration("poll", 30*time.Second, "lease poll interval when the queue is empty (scheduled mode)")
		maxTasks  = flag.Int("tasks", 0, "stop after completing this many scheduled tasks (0: run until signalled)")
		collector = flag.String("collector", "", "spectrumd base URL (empty: no submission)")
		spoolPath = flag.String("spool", "agentd.spool.jsonl", "store-and-forward WAL for readings awaiting delivery")
		drainIv   = flag.Duration("drain", 2*time.Second, "spool drain interval")
		realtime  = flag.Bool("realtime", false, "pace windows on the wall clock")
		parallel  = flag.Int("parallel", 0, "measurement units run concurrently (0: GOMAXPROCS, 1: serial; results identical)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		admin     = flag.String("admin", ":8026", "admin listen address for /metrics, /debug/traces and /debug/pprof (empty: disabled)")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")

		traceCap    = flag.Int("trace-capacity", obs.DefaultTraceCapacity, "span ring capacity served on /debug/traces")
		traceSample = flag.Float64("trace-sample", 1, "head-sampling ratio for traces rooted here, in [0,1]")
		traceExport = flag.String("trace-export", "", "durable JSONL span spool path (empty: in-memory ring only)")
	)
	flag.Parse()
	lv, err := obs.ParseLevel(*logLevel)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	logger.SetLevel(lv)
	traceCleanup, err := obs.ConfigureDefaultTracer(*traceCap, *traceSample, *traceExport)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	defer traceCleanup()

	var site *world.Site
	for _, s := range world.Sites() {
		if s.Name == *siteName {
			site = s
		}
	}
	if site == nil {
		logger.Fatalf("unknown site %q", *siteName)
	}

	if *admin != "" {
		health := obs.NewHealth()
		health.SetReady("agent", true)
		srv := &http.Server{Addr: *admin, Handler: obs.AdminMux(nil, nil, health)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Warnf("admin server: %v", err)
			}
		}()
		logger.Infof("admin endpoints on %s (/healthz, /readyz, /metrics, /debug/traces, /debug/pprof)", *admin)
	}

	// Ctrl-C / SIGTERM cancels the measurement loop; the deferred spool
	// flush below still runs so buffered readings survive the shutdown.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var col agent.Collector
	delivery := &agent.Delivery{Log: logger}
	if *collector != "" {
		spool, err := resilience.OpenSpool(*spoolPath)
		if err != nil {
			logger.Fatalf("opening spool: %v", err)
		}
		spool.Instrument(nil)
		defer spool.Close()
		if n := spool.Len(); n > 0 {
			logger.Infof("spool %s holds %d undelivered readings from a previous run", *spoolPath, n)
		}
		tc, err := trust.NewClient(trust.ClientConfig{
			BaseURL: *collector,
			Spool:   spool,
			Retrier: resilience.NewRetrier(resilience.Policy{
				MaxAttempts: 5,
				BaseDelay:   100 * time.Millisecond,
				MaxDelay:    5 * time.Second,
				Seed:        *seed,
			}).Instrument(nil),
			Breaker: resilience.NewBreaker(resilience.BreakerConfig{
				Name:             "collector",
				FailureThreshold: 5,
				OpenFor:          15 * time.Second,
			}).Instrument(nil),
			Logger: logger,
		})
		if err != nil {
			logger.Fatalf("%v", err)
		}
		if err := tc.Register(ctx, trust.NodeID(*nodeID), "agentd", *siteName); err != nil {
			logger.Fatalf("registering with collector: %v", err)
		}
		logger.Infof("registered %s with collector %s", *nodeID, *collector)
		go tc.Run(ctx, *drainIv)
		col = tc
		delivery.D = tc
	}

	start := time.Now().Truncate(time.Hour)
	var clk clock.Clock
	var sim *clock.Simulated
	if *realtime {
		clk = clock.System{}
	} else {
		sim = clock.NewSimulated(start)
		clk = sim
	}

	a, err := agent.New(agent.Config{
		Node: trust.NodeID(*nodeID),
		Site: site,
		Traffic: agent.SimTraffic{
			Center: world.BuildingOrigin, Radius: 100_000, Count: 60, Seed: *seed,
		},
		Towers:        world.Towers(),
		TV:            world.TVStations(),
		Clock:         clk,
		Collector:     col,
		WindowsPerDay: *windows,
		Seed:          *seed,
		Parallelism:   *parallel,
	})
	if err != nil {
		logger.Fatalf("%v", err)
	}

	if sim != nil {
		// Drive the simulated clock forward continuously.
		go func() {
			for {
				sim.Advance(5 * time.Minute)
				time.Sleep(time.Millisecond)
			}
		}()
	}

	if *scheduler != "" {
		runScheduled(ctx, a, site, *scheduler, *poll, *maxTasks, *seed, delivery, logger)
		return
	}

	for d := 0; d < *days; d++ {
		from := start.Add(time.Duration(d) * 24 * time.Hour)
		logger.Infof("planning day %d from %s", d+1, from.Format(time.RFC3339))
		if err := a.RunDay(ctx, from); err != nil {
			delivery.FinalFlush()
			logger.Fatalf("%v", err)
		}
		printReport(a, site, fmt.Sprintf("day %d", d+1), logger)
	}
	delivery.FinalFlush()
}

// runScheduled is the fleet-scheduler mode: poll schedd for leased
// measurement windows, execute them, acknowledge completion. The sched
// client carries its own retrier and circuit breaker, so transient
// scheduler outages are absorbed the same way collector outages are.
func runScheduled(ctx context.Context, a *agent.Agent, site *world.Site,
	schedURL string, poll time.Duration, maxTasks int, seed int64,
	delivery *agent.Delivery, logger *obs.Logger) {
	sc, err := sched.NewClient(sched.ClientConfig{
		BaseURL: schedURL,
		Retrier: resilience.NewRetrier(resilience.Policy{
			MaxAttempts: 5,
			BaseDelay:   100 * time.Millisecond,
			MaxDelay:    5 * time.Second,
			Seed:        seed,
		}).Instrument(nil),
		Breaker: resilience.NewBreaker(resilience.BreakerConfig{
			Name:             "scheduler",
			FailureThreshold: 5,
			OpenFor:          15 * time.Second,
		}).Instrument(nil),
		Logger: logger,
	})
	if err != nil {
		logger.Fatalf("%v", err)
	}
	logger.Infof("leasing measurement tasks from %s (poll %s)", schedURL, poll)
	err = a.RunScheduled(ctx, sc, agent.ScheduledOptions{Poll: poll, MaxTasks: maxTasks})
	if err != nil && ctx.Err() == nil {
		delivery.FinalFlush()
		logger.Fatalf("%v", err)
	}
	printReport(a, site, fmt.Sprintf("%d scheduled rounds", len(a.Rounds())), logger)
	delivery.FinalFlush()
}

// printReport renders the accumulated calibration state.
func printReport(a *agent.Agent, site *world.Site, label string, logger *obs.Logger) {
	rep := a.LatestReport()
	rep.AttachPowerCalibration(site, nil)
	fmt.Printf("\n=== after %s (%d rounds) ===\n%s", label, len(a.Rounds()), rep.Render())
	covered := a.CoveredSectors()
	n := 0
	for _, c := range covered {
		if c {
			n++
		}
	}
	logger.Log(obs.LevelInfo, "sector coverage", "covered", n, "of", 12)
}
