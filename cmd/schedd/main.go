// Command schedd is the fleet measurement scheduler: the control plane
// that decides what the crowd-sourced network measures and when. It
// learns flight density from ground-truth traffic snapshots, reads each
// node's staleness from the collector's trust ledger, plans prioritized
// measurement windows (high-yield hours for the stalest nodes first) and
// serves them to agents through a lease-based work queue — leases carry
// deadlines, expired leases requeue, completion is idempotent.
//
// Inputs are both optional and degrade gracefully:
//
//   - -fr24 points at an fr24d ground-truth server; without it schedd
//     trains its forecaster on a simulated diurnal traffic pattern
//     (calib.TypicalAirportForecast densities through flightsim).
//   - -fleet points at a spectrumd collector whose GET /api/fleet
//     supplies the per-node staleness signal; without it the fleet is
//     the static -nodes list, treated as never-measured (maximally
//     stale), which schedules everyone promptly — the right bootstrap.
//
// Usage:
//
//	schedd [-addr :8027] [-site rooftop] [-nodes node-1,node-2]
//	       [-fleet http://host:8025] [-fr24 http://host:8024]
//	       [-plan-every 10m] [-horizon 24h] [-window 30s] [-per-node 4]
//	       [-duty 10m] [-lease-ttl 2m] [-radius-km 100] [-seed 42]
//	       [-admin-off] [-log-level info]
//	       [-trace-capacity 4096] [-trace-sample 1] [-trace-export spans.jsonl]
//
// Endpoints:
//
//	POST /api/lease    — {"node","max"} → granted leases
//	POST /api/complete — {"task_id","token"} → completed | duplicate
//	GET  /api/stats    — queue depth summary
//	GET  /metrics      — sched_* series (queue depth, lease age, task
//	                     latency, forecast yield) in Prometheus text
//	GET  /debug/traces, /debug/pprof/* — obs admin surface
package main

import (
	"context"
	"errors"
	"flag"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sensorcal/internal/calib"
	"sensorcal/internal/clock"
	"sensorcal/internal/flightsim"
	"sensorcal/internal/fr24"
	"sensorcal/internal/geo"
	"sensorcal/internal/obs"
	"sensorcal/internal/sched"
	"sensorcal/internal/trust"
	"sensorcal/internal/world"
)

// daemon is the testable core of schedd: the plan loop runs against an
// injectable clock and fetch/observe functions, so tests drive it
// without listeners.
type daemon struct {
	forecaster *sched.Forecaster
	queue      *sched.Queue
	clk        clock.Clock
	log        *obs.Logger

	site     *world.Site
	radiusM  float64
	seed     int64
	horizon  time.Duration
	window   time.Duration
	perNode  int
	duty     time.Duration
	minYield float64

	// fr24c queries live ground truth; nil uses the simulated diurnal
	// pattern.
	fr24c *fr24.Client
	// fleetURL is the collector to poll for staleness; empty uses the
	// static node list.
	fleetURL string
	nodes    []trust.NodeID
}

// observeTraffic folds one traffic snapshot into the forecaster — live
// from fr24d when configured, otherwise a simulated population whose
// size follows the typical diurnal airport pattern so the forecaster
// has a density gradient to learn.
func (d *daemon) observeTraffic(ctx context.Context, at time.Time) {
	if d.fr24c != nil {
		flights, err := d.fr24c.Flights(ctx, d.site.Position, d.radiusM/1000, at)
		if err != nil {
			d.log.Warnf("ground-truth snapshot: %v", err)
			return
		}
		d.forecaster.Observe(d.site.Name, at, d.site.Position, flights)
		return
	}
	density := calib.TypicalAirportForecast().HourlyDensity[at.Hour()]
	fleet, err := flightsim.NewFleet(at, flightsim.Config{
		Center: d.site.Position,
		Radius: d.radiusM,
		Count:  int(density),
		Seed:   d.seed ^ at.Unix(),
	})
	if err != nil {
		d.log.Warnf("simulated traffic: %v", err)
		return
	}
	flights, err := fr24.NewService(fleet).Query(at, d.site.Position, d.radiusM)
	if err != nil {
		d.log.Warnf("simulated snapshot: %v", err)
		return
	}
	d.forecaster.Observe(d.site.Name, at, d.site.Position, flights)
}

// fleetState assembles planner input: live staleness from the collector
// when configured, else the static node list as never-measured.
func (d *daemon) fleetState(ctx context.Context) []sched.NodeState {
	if d.fleetURL != "" {
		entries, err := sched.FetchFleet(ctx, nil, d.fleetURL)
		if err != nil {
			d.log.Warnf("fleet query: %v (planning skipped this pass)", err)
			return nil
		}
		states := make([]sched.NodeState, 0, len(entries))
		for _, e := range entries {
			states = append(states, e.NodeState(d.site.Name, d.duty))
		}
		return states
	}
	states := make([]sched.NodeState, 0, len(d.nodes))
	for _, n := range d.nodes {
		states = append(states, sched.NodeState{
			Node: n, Site: d.site.Name, DutyBudget: d.duty,
		})
	}
	return states
}

// planOnce runs one observe → fetch → plan → enqueue pass.
func (d *daemon) planOnce(ctx context.Context) {
	now := d.clk.Now()
	d.observeTraffic(ctx, now)
	nodes := d.fleetState(ctx)
	if len(nodes) == 0 {
		return
	}
	tasks, err := sched.Plan(d.forecaster, nodes, sched.PlanConfig{
		Now:             now,
		Horizon:         d.horizon,
		WindowLength:    d.window,
		MaxTasksPerNode: d.perNode,
		MinYield:        d.minYield,
	})
	if err != nil {
		d.log.Warnf("planning: %v", err)
		return
	}
	added, err := d.queue.Add(tasks...)
	if err != nil {
		d.log.Warnf("enqueue: %v", err)
		return
	}
	requeued, dropped := d.queue.ExpireLeases(now)
	st := d.queue.Stats()
	d.log.Infof("planned %d tasks (%d new) for %d nodes; queue pending=%d leased=%d requeued=%d dropped=%d",
		len(tasks), added, len(nodes), st.Pending, st.Leased, requeued, dropped)
}

// planLoop re-plans every interval until ctx is done.
func (d *daemon) planLoop(ctx context.Context, every time.Duration) {
	d.planOnce(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-d.clk.After(every):
			d.planOnce(ctx)
		}
	}
}

func main() {
	logger := obs.NewLogger("schedd")
	var (
		addr      = flag.String("addr", ":8027", "listen address")
		siteName  = flag.String("site", "rooftop", "installation whose forecast drives planning")
		nodesCSV  = flag.String("nodes", "node-1", "comma-separated node IDs when no -fleet collector is configured")
		fleetURL  = flag.String("fleet", "", "spectrumd base URL for live fleet staleness (empty: static -nodes list)")
		fr24URL   = flag.String("fr24", "", "fr24d base URL for live traffic snapshots (empty: simulated diurnal pattern)")
		planEvery = flag.Duration("plan-every", 10*time.Minute, "re-planning interval")
		horizon   = flag.Duration("horizon", 24*time.Hour, "planning horizon")
		window    = flag.Duration("window", 30*time.Second, "measurement window length")
		perNode   = flag.Int("per-node", 4, "max tasks per node per planning pass")
		duty      = flag.Duration("duty", 0, "per-node duty-cycle budget per horizon (0: unlimited)")
		leaseTTL  = flag.Duration("lease-ttl", 2*time.Minute, "lease grace past the scheduled window end")
		minYield  = flag.Float64("min-yield", 0, "drop candidate windows forecasting fewer aircraft than this")
		radiusKM  = flag.Float64("radius-km", 100, "traffic radius around the site")
		seed      = flag.Int64("seed", 42, "simulation seed for the traffic fallback")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")

		traceCap    = flag.Int("trace-capacity", obs.DefaultTraceCapacity, "span ring capacity served on /debug/traces")
		traceSample = flag.Float64("trace-sample", 1, "head-sampling ratio for traces rooted here, in [0,1]")
		traceExport = flag.String("trace-export", "", "durable JSONL span spool path (empty: in-memory ring only)")
	)
	flag.Parse()
	lv, err := obs.ParseLevel(*logLevel)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	logger.SetLevel(lv)
	traceCleanup, err := obs.ConfigureDefaultTracer(*traceCap, *traceSample, *traceExport)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	defer traceCleanup()

	var site *world.Site
	for _, s := range world.Sites() {
		if s.Name == *siteName {
			site = s
		}
	}
	if site == nil {
		logger.Fatalf("unknown site %q", *siteName)
	}
	if site.Position == (geo.Point{}) {
		logger.Fatalf("site %q has no position", *siteName)
	}

	var nodes []trust.NodeID
	for _, n := range strings.Split(*nodesCSV, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, trust.NodeID(n))
		}
	}
	if *fleetURL == "" && len(nodes) == 0 {
		logger.Fatalf("need -fleet or a non-empty -nodes list")
	}

	d := &daemon{
		forecaster: sched.NewForecaster(sched.ForecastConfig{}),
		queue:      sched.NewQueue(sched.QueueConfig{LeaseTTL: *leaseTTL}),
		clk:        clock.System{},
		log:        logger,
		site:       site,
		radiusM:    *radiusKM * 1000,
		seed:       *seed,
		horizon:    *horizon,
		window:     *window,
		perNode:    *perNode,
		duty:       *duty,
		minYield:   *minYield,
		fleetURL:   *fleetURL,
		nodes:      nodes,
	}
	if *fr24URL != "" {
		d.fr24c = fr24.NewClient(*fr24URL)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go d.planLoop(ctx, *planEvery)

	health := obs.NewHealth()
	health.SetReady("queue", true)
	mux := obs.AdminMux(nil, nil, health)
	api := &sched.Server{Q: d.queue, Log: logger}
	mux.Handle("/api/", api.Handler())
	srv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Infof("scheduler listening on %s (site %s, plan every %s, horizon %s)",
		*addr, site.Name, *planEvery, *horizon)

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Fatalf("%v", err)
		}
	case <-ctx.Done():
		stop()
		logger.Infof("signal received, shutting down")
		sdCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sdCtx); err != nil {
			logger.Warnf("http shutdown: %v", err)
		}
		st := d.queue.Stats()
		logger.Infof("exiting with %d pending, %d leased", st.Pending, st.Leased)
	}
}
