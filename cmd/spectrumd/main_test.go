package main

import (
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sensorcal/internal/clock"
	"sensorcal/internal/obs"
	"sensorcal/internal/resilience"
	"sensorcal/internal/trust"
)

func quietLogger() *obs.Logger {
	l := obs.NewLogger("spectrumd-test")
	l.SetOutput(io.Discard)
	return l
}

// newTestDaemon builds a daemon on a simulated clock starting at start.
func newTestDaemon(t *testing.T, start time.Time, statePath string) (*daemon, *clock.Simulated) {
	t.Helper()
	sim := clock.NewSimulated(start)
	c := trust.NewCollector()
	c.EpochWindow = time.Minute
	d := &daemon{
		col:       c,
		clk:       sim,
		statePath: statePath,
		epoch:     time.Minute,
		log:       quietLogger(),
	}
	return d, sim
}

func register(t *testing.T, c *trust.Collector, ids ...trust.NodeID) {
	t.Helper()
	for _, id := range ids {
		if err := c.Ledger.Register(trust.Node{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEpochLoopSimulatedClock drives the epoch-closing loop entirely on a
// simulated clock: readings submitted in window w close once the clock
// advances two windows past w, without any wall-clock sleeping.
func TestEpochLoopSimulatedClock(t *testing.T) {
	start := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	d, sim := newTestDaemon(t, start, "")
	register(t, d.col, "a", "b", "c")
	for _, id := range []trust.NodeID{"a", "b", "c"} {
		err := d.col.Submit(trust.Reading{Node: id, SignalID: "tv-521MHz", PowerDBm: -60, At: start.Add(5 * time.Second)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := d.col.PendingEpochs(); got != 1 {
		t.Fatalf("pending epochs = %d, want 1", got)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		d.epochLoop(ctx)
		close(done)
	}()

	// The loop wakes at +1m with cutoff start (window not yet matured) and
	// at +2m with cutoff +1m, which closes the start window.
	deadline := time.Now().Add(5 * time.Second)
	for d.col.PendingEpochs() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("epoch never closed; pending = %d", d.col.PendingEpochs())
		}
		sim.Advance(time.Minute)
		time.Sleep(time.Millisecond)
	}
	if got := len(d.col.History("tv-521MHz")); got != 1 {
		t.Fatalf("closed epochs = %d, want 1", got)
	}

	cancel()
	sim.Advance(time.Minute) // release a loop blocked in clk.After
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("epochLoop did not stop on ctx cancellation")
	}
}

// TestSaveAndLoadState round-trips the ledger snapshot through the
// daemon's persistence paths using the simulated clock for timestamps.
func TestSaveAndLoadState(t *testing.T) {
	start := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	path := filepath.Join(t.TempDir(), "ledger.json")
	d, _ := newTestDaemon(t, start, path)
	register(t, d.col, "n1", "n2")
	d.col.Ledger.Record("n1", 1)

	d.saveState(context.Background())
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}

	d2, _ := newTestDaemon(t, start.Add(time.Hour), path)
	if err := d2.loadState(); err != nil {
		t.Fatal(err)
	}
	if got, want := d2.col.Ledger.Len(), 2; got != want {
		t.Fatalf("restored %d nodes, want %d", got, want)
	}
	if got, want := d2.col.Ledger.Trust("n1"), d.col.Ledger.Trust("n1"); got != want {
		t.Fatalf("restored trust %v, want %v", got, want)
	}
}

// TestShutdownFlushesPendingEpochs verifies the graceful path: shutdown
// closes even the immature trailing window and persists the ledger, so a
// restart cannot launder pending consensus evidence.
func TestShutdownFlushesPendingEpochs(t *testing.T) {
	start := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	path := filepath.Join(t.TempDir(), "ledger.json")
	d, _ := newTestDaemon(t, start, path)
	register(t, d.col, "a", "b", "c")
	// An over-consensus fabrication inside the still-open window.
	for _, r := range []trust.Reading{
		{Node: "a", SignalID: "tv-521MHz", PowerDBm: -60},
		{Node: "b", SignalID: "tv-521MHz", PowerDBm: -61},
		{Node: "c", SignalID: "tv-521MHz", PowerDBm: -30},
	} {
		r.At = start.Add(10 * time.Second)
		if err := d.col.Submit(r); err != nil {
			t.Fatal(err)
		}
	}

	srv := &http.Server{Addr: "127.0.0.1:0", Handler: d.handler()}
	d.shutdown(srv)

	if got := d.col.PendingEpochs(); got != 0 {
		t.Fatalf("pending epochs after shutdown = %d, want 0", got)
	}
	if d.col.Ledger.Trust("c") >= d.col.Ledger.Trust("a") {
		t.Fatalf("fabricator score %v not below honest score %v after final close",
			d.col.Ledger.Trust("c"), d.col.Ledger.Trust("a"))
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("final snapshot not written: %v", err)
	}
}

// TestSaveStateRetriesAndCountsFailures drives the ledger save through a
// path that cannot succeed (parent directory missing): the retrier burns
// its attempts and the failure counter records exactly one lost save.
func TestSaveStateRetriesAndCountsFailures(t *testing.T) {
	start := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	path := filepath.Join(t.TempDir(), "no-such-dir", "ledger.json")
	d, _ := newTestDaemon(t, start, path)
	reg := obs.NewRegistry()
	d.saveRetry = resilience.NewRetrier(resilience.Policy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 1,
	})
	d.saveFailures = reg.Counter("trust_ledger_save_failures_total", "test")
	d.saveState(context.Background())
	if got := d.saveFailures.Value(); got != 1 {
		t.Fatalf("save failures = %v, want 1", got)
	}
	// A healthy path succeeds through the same retry plumbing and leaves
	// the counter alone.
	d.statePath = filepath.Join(t.TempDir(), "ledger.json")
	register(t, d.col, "n1")
	d.saveState(context.Background())
	if _, err := os.Stat(d.statePath); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	if got := d.saveFailures.Value(); got != 1 {
		t.Fatalf("save failures after success = %v, want still 1", got)
	}
}

// TestWALBootImportsLegacySnapshotOnce: a brand-new WAL directory next to
// an existing JSON snapshot imports it exactly once, folds it into a
// durable WAL snapshot, and subsequent boots recover from the WAL alone.
func TestWALBootImportsLegacySnapshotOnce(t *testing.T) {
	start := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	root := t.TempDir()
	statePath := filepath.Join(root, "ledger.json")
	walDir := filepath.Join(root, "wal")

	// Legacy daemon leaves a JSON snapshot behind.
	d1, _ := newTestDaemon(t, start, statePath)
	register(t, d1.col, "a", "b")
	d1.col.Ledger.SetScore("a", 0.9)
	d1.saveState(context.Background())
	if _, err := os.Stat(statePath); err != nil {
		t.Fatalf("legacy snapshot not written: %v", err)
	}

	// First WAL boot: empty log, so the JSON imports once.
	d2, _ := newTestDaemon(t, start.Add(time.Hour), statePath)
	if err := d2.openTrustLog(walDir); err != nil {
		t.Fatal(err)
	}
	if got := d2.col.Ledger.Len(); got != 2 {
		t.Fatalf("imported %d nodes, want 2", got)
	}
	if got := d2.col.Ledger.Trust("a"); got != 0.9 {
		t.Fatalf("imported trust for a = %v, want 0.9", got)
	}
	if d2.col.Store == nil {
		t.Fatal("collector mutations not wired through the store")
	}
	// A post-import mutation lands in the WAL tail.
	if err := d2.col.Ledger.Register(trust.Node{ID: "c", Registered: start}); err != nil {
		t.Fatal(err)
	}
	if err := d2.col.Store.AppendRegister(trust.Node{ID: "c", Registered: start}); err != nil {
		t.Fatal(err)
	}
	if err := d2.tlog.Close(); err != nil {
		t.Fatal(err)
	}

	// Second WAL boot: the JSON file is gone, proving recovery reads the
	// WAL — snapshot plus tail — and does not re-import.
	if err := os.Remove(statePath); err != nil {
		t.Fatal(err)
	}
	d3, _ := newTestDaemon(t, start.Add(2*time.Hour), statePath)
	if err := d3.openTrustLog(walDir); err != nil {
		t.Fatal(err)
	}
	defer d3.tlog.Close()
	if got := d3.col.Ledger.Len(); got != 3 {
		t.Fatalf("recovered %d nodes, want 3", got)
	}
	if got := d3.col.Ledger.Trust("a"); got != 0.9 {
		t.Fatalf("recovered trust for a = %v, want 0.9", got)
	}
	if _, ok := d3.col.Ledger.Node("c"); !ok {
		t.Fatal("tail-appended registration lost across boots")
	}
}
