// Command spectrumd is the cloud collector of the crowd-sourced spectrum
// network: nodes register, stream readings of shared reference signals,
// and the daemon maintains consensus-based trust scores (upper-bound and
// temporal-correlation fabrication checks).
//
// Usage:
//
//	spectrumd [-addr :8025] [-epoch 1m]
//
// Endpoints:
//
//	POST /api/register — {"id","operator","lat","lon","claimed_outdoor","hardware"}
//	POST /api/readings — {"node","signal_id","power_dbm","at"}
//	GET  /api/trust?node=ID
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"sensorcal/internal/trust"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spectrumd: ")
	var (
		addr  = flag.String("addr", ":8025", "listen address")
		epoch = flag.Duration("epoch", time.Minute, "consensus epoch window")
		state = flag.String("state", "", "ledger snapshot file (loaded at boot, saved every epoch)")
	)
	flag.Parse()

	c := trust.NewCollector()
	c.EpochWindow = *epoch

	if *state != "" {
		if f, err := os.Open(*state); err == nil {
			if err := c.Ledger.Load(f); err != nil {
				log.Fatalf("loading %s: %v", *state, err)
			}
			f.Close()
			log.Printf("restored %d nodes from %s", c.Ledger.Len(), *state)
		} else if !os.IsNotExist(err) {
			log.Fatal(err)
		}
	}
	saveState := func() {
		if *state == "" {
			return
		}
		tmp := *state + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			log.Printf("saving ledger: %v", err)
			return
		}
		if err := c.Ledger.Save(f, time.Now()); err != nil {
			log.Printf("saving ledger: %v", err)
			f.Close()
			return
		}
		f.Close()
		if err := os.Rename(tmp, *state); err != nil {
			log.Printf("saving ledger: %v", err)
		}
	}

	// Close matured epochs in the background.
	go func() {
		t := time.NewTicker(*epoch)
		defer t.Stop()
		for range t.C {
			for _, a := range c.CloseEpochs(time.Now().Add(-*epoch)) {
				log.Printf("anomaly: %v", a)
			}
			saveState()
		}
	}()

	log.Printf("collector listening on %s (epoch window %s)", *addr, *epoch)
	if err := http.ListenAndServe(*addr, c.Handler(time.Now)); err != nil {
		log.Fatal(err)
	}
}
