// Command spectrumd is the cloud collector of the crowd-sourced spectrum
// network: nodes register, stream readings of shared reference signals,
// and the daemon maintains consensus-based trust scores (upper-bound and
// temporal-correlation fabrication checks).
//
// Usage:
//
//	spectrumd [-addr :8025] [-epoch 1m] [-state ledger.json] [-shards 8]
//	          [-wal waldir] [-wal-compact-segments 4]
//	          [-replica-id r1] [-ring r1=http://a:8025,r2=http://b:8025]
//	          [-ring-secret s | $SENSORCAL_RING_SECRET]
//	          [-ring-vnodes 128] [-catchup-wait 30s]
//	          [-profile-contention] [-log-level info]
//	          [-trace-capacity 4096] [-trace-sample 1] [-trace-export spans.jsonl]
//	          [-stream] [-stream-fft 256] [-stream-queue 8192]
//	          [-stream-sessions 16384] [-stream-idle 1m] [-stream-band 470e6:698e6]
//
// -shards sets the collector's ingest lock-stripe count (power of two;
// 1 reproduces the classic single-lock collector). -profile-contention
// enables the runtime mutex/block profilers so /debug/pprof/mutex and
// /debug/pprof/block report where ingest actually waits.
//
// -replica-id + -ring turn the daemon into one member of a multi-replica
// collector tier (internal/replica): a consistent-hash ring partitions
// ingest by node ID, misrouted submissions are proxied to their owner,
// the lexically smallest member merges and closes epochs ring-wide, and
// a (re)joining member catches up from a live peer before /readyz goes
// green. Agents need no changes — any replica accepts the whole API.
// Replica mode requires a shared ring secret (-ring-secret, or the
// SENSORCAL_RING_SECRET environment variable so the credential stays
// out of process listings): the /replica/* peer protocol can install
// absolute trust scores and drain pending evidence, so every peer
// request is authenticated and everything else gets 403.
//
// -wal enables the crash-safe trust store (internal/store): every
// registration and every epoch's score batch is appended to a
// checksummed segment WAL and fsynced before it is acknowledged, and
// sealed segments fold into snapshots. With -wal set, -state becomes an
// import/export convenience: imported once when the WAL is empty,
// exported at shutdown for operators who want a plain JSON view.
//
// Endpoints:
//
//	POST /api/register — {"id","operator","lat","lon","claimed_outdoor","hardware"}
//	POST /api/readings — {"node","signal_id","power_dbm","at"}
//	GET  /api/trust?node=ID
//	GET  /api/ring      — ring topology and readiness (replica mode)
//	POST /api/stream/register — enroll a streaming sensor session
//	POST /api/stream/frames   — batched base64 IQ frames through the shared engine
//	GET  /api/stream/stats    — fleet/session counters
//	GET  /api/occupancy?band=lo:hi — time×frequency occupancy buckets
//	GET  /healthz       — liveness (always 200 while the process serves)
//	GET  /readyz        — readiness (503 until the ledger is restored, or
//	                      while the trust store is degraded)
//	GET  /metrics       — Prometheus text exposition (trust_* series)
//	GET  /debug/traces  — span ring buffer as JSON
//	GET  /debug/pprof/* — runtime profiles
//
// SIGINT/SIGTERM shut the daemon down gracefully: the HTTP server drains,
// every pending epoch is closed through the consensus checks, and the
// ledger is saved one final time so no trust evidence is lost.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sensorcal/internal/clock"
	"sensorcal/internal/obs"
	"sensorcal/internal/replica"
	"sensorcal/internal/resilience"
	"sensorcal/internal/store"
	"sensorcal/internal/stream"
	"sensorcal/internal/trust"
)

// daemon is the testable core of spectrumd: the epoch-closing loop and
// ledger persistence run against an injectable clock, so tests drive a
// clock.Simulated through hours of collector time in microseconds the
// same way the agent tests do.
type daemon struct {
	col       *trust.Collector
	clk       clock.Clock
	statePath string
	epoch     time.Duration
	log       *obs.Logger
	// saveRetry retries transient filesystem errors during ledger saves
	// (nil: single attempt). saveFailures counts saves that failed even
	// after retrying (nil: uncounted) — each one is a window of consensus
	// evidence that a crash would lose.
	saveRetry    *resilience.Retrier
	saveFailures *obs.Counter
	// tlog is the crash-safe trust store (-wal); nil runs the legacy
	// snapshot-only persistence. compactSegs is the sealed-segment count
	// that triggers compaction after an epoch close.
	tlog        *store.TrustLog
	compactSegs int
	// health gates /readyz; nil when the admin surface is not mounted.
	health *obs.Health
	// stream is the fleet-scale continuous-monitoring service (-stream);
	// nil leaves the daemon a pure trust collector.
	stream *stream.Service
	// replica is the multi-replica collector tier (-replica-id/-ring);
	// nil runs the classic single-collector daemon.
	replica *replica.Node
}

// shutdownSaveTimeout bounds the final ledger save (and its retries) at
// shutdown: a wedged disk must not hold the exit hostage forever.
const shutdownSaveTimeout = 10 * time.Second

// parseBand parses "lo:hi" in Hz (scientific notation welcome).
func parseBand(s string) (lo, hi float64, err error) {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return 0, 0, fmt.Errorf("band %q must be lo:hi in Hz", s)
	}
	lo, err1 := strconv.ParseFloat(s[:i], 64)
	hi, err2 := strconv.ParseFloat(s[i+1:], 64)
	if err1 != nil || err2 != nil || hi <= lo {
		return 0, 0, fmt.Errorf("band %q must be lo:hi in Hz with hi > lo", s)
	}
	return lo, hi, nil
}

// loadState restores the ledger snapshot, tolerating a missing file.
func (d *daemon) loadState() error {
	if d.statePath == "" {
		return nil
	}
	f, err := os.Open(d.statePath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	if err := d.col.Ledger.Load(f); err != nil {
		return err
	}
	d.log.Infof("restored %d nodes from %s", d.col.Ledger.Len(), d.statePath)
	return nil
}

// saveState writes the ledger snapshot atomically and durably: the temp
// file is fsynced before the rename and the parent directory after it,
// so a power cut leaves either the old snapshot or the new one — never
// a half-written file whose rename "succeeded" only in the page cache.
// Transient filesystem errors are retried within ctx: a full disk or a
// slow NFS mount recovers, and losing a snapshot over it would let a
// fabricator launder its history by crashing the collector at the right
// moment.
func (d *daemon) saveState(ctx context.Context) {
	if d.statePath == "" {
		return
	}
	attempt := func() error {
		tmp := d.statePath + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if err := d.col.Ledger.Save(f, d.clk.Now()); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := os.Rename(tmp, d.statePath); err != nil {
			return err
		}
		return store.OS{}.SyncDir(filepath.Dir(d.statePath))
	}
	var err error
	if d.saveRetry != nil {
		err = d.saveRetry.Do(ctx, "ledger_save",
			func(context.Context) error { return attempt() })
	} else {
		err = attempt()
	}
	if err != nil {
		if d.saveFailures != nil {
			d.saveFailures.Inc()
		}
		d.log.Errorf("saving ledger: %v", err)
	}
}

// closeEpochs finalizes every epoch before cutoff and persists the
// result: through the WAL's compaction scheduler when the trust store
// is on (the score batch itself was already appended durably inside
// CloseEpochs), else through the legacy whole-ledger snapshot.
func (d *daemon) closeEpochs(ctx context.Context, cutoff time.Time) {
	var anomalies []trust.Anomaly
	switch {
	case d.replica != nil && d.replica.IsCoordinator():
		// Ring coordinator: drain every member, merge, close once,
		// broadcast the install.
		anomalies = d.replica.MergeClose(cutoff)
	case d.replica != nil:
		// Follower: never closes locally — the coordinator drains this
		// replica's pending epochs over /replica/drain and installs the
		// merged result back. Closing here too would double-count. (At
		// shutdown the follower instead hands its pending epochs to the
		// coordinator; see daemon.shutdown.)
	default:
		anomalies = d.col.CloseEpochs(cutoff)
	}
	for _, a := range anomalies {
		d.log.Warnf("anomaly: %v", a)
	}
	if d.tlog != nil {
		if ran, err := d.tlog.MaybeCompact(d.col.Ledger, d.clk.Now(), d.compactSegs); err != nil {
			d.log.Errorf("wal compaction: %v", err)
		} else if ran {
			d.log.Debugf("wal compacted into a fresh snapshot")
		}
		return
	}
	d.saveState(ctx)
}

// epochLoop closes matured epochs once per window until ctx is done. The
// cadence machinery is the collector's background closer (trust.Closer)
// with the daemon's clock injected; the Run hook substitutes the
// replica-aware close (coordinator merge / follower no-op) plus
// persistence for the plain single-collector pass.
func (d *daemon) epochLoop(ctx context.Context) {
	cl := d.col.StartCloser(trust.CloserConfig{
		Interval: d.epoch,
		Lag:      d.epoch,
		Now:      d.clk.Now,
		After:    d.clk.After,
		Run: func(cutoff time.Time) []trust.Anomaly {
			d.closeEpochs(ctx, cutoff)
			return nil // closeEpochs logs its own anomalies
		},
	})
	<-ctx.Done()
	cl.Stop()
}

// shutdown drains the HTTP server, then flushes every remaining epoch —
// including the still-maturing one — and saves the ledger. Losing the
// trailing window's evidence on restart would let a fabricator launder
// its history by timing a crash. Every step runs under its own timeout
// so a wedged disk or socket cannot hold the exit hostage.
func (d *daemon) shutdown(srv *http.Server) {
	sdCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sdCtx); err != nil {
		d.log.Warnf("http shutdown: %v", err)
	}
	if d.stream != nil {
		// Fold every already-accepted frame before exiting: the grid and
		// session aggregates stay consistent with what sensors were acked.
		d.stream.Close()
	}
	saveCtx, cancelSave := context.WithTimeout(context.Background(), shutdownSaveTimeout)
	defer cancelSave()
	if d.replica != nil && !d.replica.IsCoordinator() {
		// A follower's pending epochs live only in memory and only the
		// coordinator may close them: hand them over — including the
		// still-maturing window — so a graceful restart loses no acked
		// evidence. If the coordinator is down too, the agents' spools
		// re-submit; log exactly what is at stake.
		if err := d.replica.FlushPending(d.clk.Now().Add(d.epoch)); err != nil {
			d.log.Warnf("shutdown handoff failed, trailing-window evidence lost with this process: %v", err)
		}
	}
	d.closeEpochs(saveCtx, d.clk.Now().Add(d.epoch))
	if d.tlog != nil {
		// Export the plain JSON view for operators, then release the WAL.
		d.saveState(saveCtx)
		if err := d.tlog.Close(); err != nil {
			d.log.Warnf("closing wal: %v", err)
		}
	}
	d.log.Infof("ledger saved, exiting")
}

// handler mounts the collector API — wrapped in the load-shedding and
// per-request-timeout middleware — onto the obs admin surface. The debug
// endpoints stay outside the timeout: a CPU profile legitimately takes
// longer than any API request should.
func (d *daemon) handler() http.Handler {
	mux := obs.AdminMux(nil, nil, d.health)
	if d.replica != nil {
		// Replica mode: the agent-facing API routes through the ring
		// (hardened like the plain collector); the /replica/* peer
		// protocol mounts outside the hardening middleware — drains and
		// catch-up streams are ring-internal and must not compete with
		// agents for the in-flight budget — but every /replica/* route
		// demands the shared ring credential, so on the public listener
		// it is 403 to anything but a ring member.
		rh := d.replica.Handler()
		mux.Handle("/api/", trust.Harden(rh, trust.HardenConfig{}))
		mux.Handle("/replica/", rh)
	} else {
		mux.Handle("/api/", trust.Harden(d.col.Handler(d.clk.Now), trust.HardenConfig{}))
	}
	if d.stream != nil {
		// Longer patterns win in ServeMux, so the streaming surface
		// carves its routes out of /api/ without touching the trust API.
		// It carries its own RED middleware and backpressure (bounded
		// queue + breaker), so it mounts outside the trust hardening.
		sh := d.stream.Handler()
		mux.Handle("/api/stream/", sh)
		mux.Handle("/api/occupancy", sh)
	}
	return mux
}

// openTrustLog boots the WAL-backed trust store: recover the ledger from
// the newest snapshot plus the segment tail, fall back to a one-time
// JSON import when the log is brand new, and wire the collector's
// mutations through the store.
func (d *daemon) openTrustLog(dir string) error {
	tlog, err := store.OpenTrustLog(dir, store.Options{Metrics: store.NewMetrics(obs.Default())})
	if err != nil {
		return err
	}
	stats, err := tlog.Recover(d.col.Ledger, d.clk.Now())
	if err != nil {
		tlog.Close()
		return err
	}
	if stats.TornBytes > 0 {
		d.log.Warnf("wal recovery truncated %d torn bytes from the tail", stats.TornBytes)
	}
	if d.col.Ledger.Len() == 0 && d.statePath != "" {
		// Brand-new WAL next to an existing JSON snapshot: import it once,
		// then fold it into a durable WAL snapshot immediately so the
		// import survives a crash without the JSON file.
		if err := d.loadState(); err != nil {
			tlog.Close()
			return err
		}
		if d.col.Ledger.Len() > 0 {
			if err := tlog.Compact(d.col.Ledger, d.clk.Now()); err != nil {
				tlog.Close()
				return err
			}
			d.log.Infof("imported %d nodes from %s into the wal", d.col.Ledger.Len(), d.statePath)
		}
	} else {
		d.log.Infof("wal recovery: %d nodes from snapshot, %d records replayed",
			stats.SnapshotNodes, stats.Records)
	}
	d.tlog = tlog
	d.col.Store = tlog
	return nil
}

func main() {
	logger := obs.NewLogger("spectrumd")
	var (
		addr     = flag.String("addr", ":8025", "listen address")
		epoch    = flag.Duration("epoch", time.Minute, "consensus epoch window")
		state    = flag.String("state", "", "ledger snapshot file (with -wal: imported once when the wal is empty, exported at shutdown)")
		walDir   = flag.String("wal", "", "crash-safe trust store directory (empty: legacy snapshot-only persistence)")
		walSegs  = flag.Int("wal-compact-segments", store.DefaultCompactAfterSegments, "sealed wal segments that trigger snapshot compaction")

		replicaID   = flag.String("replica-id", "", "this member's ID in the collector ring (empty: single-collector mode)")
		ringSpec    = flag.String("ring", "", "full ring membership as id=url,id=url (must include -replica-id)")
		ringSecret  = flag.String("ring-secret", "", "shared peer credential authenticating /replica/* (identical on every member; prefer SENSORCAL_RING_SECRET to keep it out of process listings)")
		ringVnodes  = flag.Int("ring-vnodes", replica.DefaultVirtualNodes, "virtual nodes per ring member (identical on every member)")
		catchupWait = flag.Duration("catchup-wait", 30*time.Second, "how long a booting replica waits for a live peer before assuming a cold start")

		shards   = flag.Int("shards", 8, "collector ingest lock stripes (rounded up to a power of two; 1 = single-lock)")
		profCont = flag.Bool("profile-contention", false, "enable runtime mutex/block profiling on /debug/pprof")
		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")

		traceCap    = flag.Int("trace-capacity", obs.DefaultTraceCapacity, "span ring capacity served on /debug/traces")
		traceSample = flag.Float64("trace-sample", 1, "head-sampling ratio for traces rooted here, in [0,1]")
		traceExport = flag.String("trace-export", "", "durable JSONL span spool path (empty: in-memory ring only)")

		streamOn    = flag.Bool("stream", true, "serve the fleet streaming spectrum API (/api/stream, /api/occupancy)")
		streamFFT   = flag.Int("stream-fft", 256, "streaming frame length in samples (power of two)")
		streamQueue = flag.Int("stream-queue", 8192, "bounded streaming frame queue; full sheds with 429")
		streamSess  = flag.Int("stream-sessions", 16384, "max concurrent sensor sessions")
		streamIdle  = flag.Duration("stream-idle", time.Minute, "evict sensor sessions idle this long")
		streamBand  = flag.String("stream-band", "470e6:698e6", "monitored occupancy band as lo:hi in Hz")
	)
	flag.Parse()
	lv, err := obs.ParseLevel(*logLevel)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	logger.SetLevel(lv)
	traceCleanup, err := obs.ConfigureDefaultTracer(*traceCap, *traceSample, *traceExport)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	defer traceCleanup()
	if *profCont {
		// Sample every contended mutex event and blocking events ≥ 10 µs:
		// cheap enough for a collector, detailed enough to see stripes.
		obs.EnableContentionProfiling(1, 10_000)
		logger.Infof("mutex/block contention profiling enabled")
	}

	c := trust.NewShardedCollector(*shards).Instrument(obs.Default())
	c.EpochWindow = *epoch
	health := obs.NewHealth()
	health.SetReady("ledger", false)
	d := &daemon{
		col: c, clk: clock.System{}, statePath: *state, epoch: *epoch, log: logger,
		compactSegs: *walSegs, health: health,
		saveRetry: resilience.NewRetrier(resilience.Policy{
			MaxAttempts: 3,
			BaseDelay:   50 * time.Millisecond,
			MaxDelay:    500 * time.Millisecond,
		}).Instrument(nil),
		saveFailures: obs.Default().Counter("trust_ledger_save_failures_total",
			"Ledger snapshot saves that failed even after retrying."),
	}
	if *walDir != "" {
		if err := d.openTrustLog(*walDir); err != nil {
			logger.Fatalf("opening wal %s: %v", *walDir, err)
		}
		// Degraded store = appends failing = mutations shed with 503: not
		// ready for traffic until the disk heals.
		health.AddCheck("store", func() bool { return !c.StoreDegraded() })
	} else if err := d.loadState(); err != nil {
		logger.Fatalf("loading %s: %v", *state, err)
	}
	health.SetReady("ledger", true)
	if *replicaID != "" {
		members, err := replica.ParseMembers(*ringSpec)
		if err != nil {
			logger.Fatalf("-ring: %v", err)
		}
		secret := *ringSecret
		if secret == "" {
			secret = os.Getenv("SENSORCAL_RING_SECRET")
		}
		if secret == "" {
			logger.Fatalf("replica mode needs a ring credential: set -ring-secret or SENSORCAL_RING_SECRET (the same value on every member)")
		}
		node, err := replica.New(replica.Config{
			Self:      *replicaID,
			Members:   members,
			VNodes:    *ringVnodes,
			Collector: c,
			Secret:    secret,
			Log:       d.tlog,
			Registry:  obs.Default(),
			Tracer:    obs.DefaultTracer(),
			Health:    health,
			Now:       d.clk.Now,
		})
		if err != nil {
			logger.Fatalf("replica: %v", err)
		}
		d.replica = node
		role := "follower"
		if node.IsCoordinator() {
			role = "coordinator"
		}
		logger.Infof("replica %s (%s) in a %d-member ring, %d virtual nodes each",
			*replicaID, role, node.Ring().Len(), node.Ring().VirtualNodes())
	}
	if *streamOn {
		lo, hi, err := parseBand(*streamBand)
		if err != nil {
			logger.Fatalf("-stream-band: %v", err)
		}
		sv, err := stream.NewService(stream.Config{
			FFTSize:     *streamFFT,
			QueueCap:    *streamQueue,
			MaxSessions: *streamSess,
			IdleAfter:   *streamIdle,
			Grid:        stream.GridConfig{LowHz: lo, HighHz: hi},
			Registry:    obs.Default(),
			Tracer:      obs.DefaultTracer(),
		})
		if err != nil {
			logger.Fatalf("stream service: %v", err)
		}
		d.stream = sv
		// An open aggregation breaker means frames are being shed at the
		// door: take the daemon out of rotation until it heals.
		health.AddCheck("stream", func() bool { return !sv.Degraded() })
		logger.Infof("streaming spectrum service on /api/stream (fft %d, queue %d, band %s)",
			*streamFFT, *streamQueue, *streamBand)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go d.epochLoop(ctx)
	if d.replica != nil {
		// Catch up from a live peer before going ready. Outbound only, so
		// it runs while this replica already serves /replica/* to others —
		// a whole ring booting at once converges (everyone copies an empty
		// peer), and a ring with no live peers at all is a cold start.
		go func() {
			deadline := time.Now().Add(*catchupWait)
			for {
				reached, err := d.replica.CatchUp()
				if reached && err == nil {
					logger.Infof("caught up from a live peer; replica ready")
					return
				}
				if err != nil {
					logger.Warnf("catch-up: %v", err)
				}
				if !reached && time.Now().After(deadline) {
					logger.Infof("no live peer within %s; assuming cold start", *catchupWait)
					d.replica.MarkReady()
					return
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(2 * time.Second):
				}
			}
		}()
	}

	srv := &http.Server{Addr: *addr, Handler: d.handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Infof("collector listening on %s (epoch window %s, %d ingest shards)", *addr, *epoch, c.Shards())

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Fatalf("%v", err)
		}
	case <-ctx.Done():
		stop()
		logger.Infof("signal received, shutting down")
		d.shutdown(srv)
	}
}
