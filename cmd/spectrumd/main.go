// Command spectrumd is the cloud collector of the crowd-sourced spectrum
// network: nodes register, stream readings of shared reference signals,
// and the daemon maintains consensus-based trust scores (upper-bound and
// temporal-correlation fabrication checks).
//
// Usage:
//
//	spectrumd [-addr :8025] [-epoch 1m] [-state ledger.json] [-shards 8]
//	          [-profile-contention] [-log-level info]
//	          [-trace-capacity 4096] [-trace-sample 1] [-trace-export spans.jsonl]
//
// -shards sets the collector's ingest lock-stripe count (power of two;
// 1 reproduces the classic single-lock collector). -profile-contention
// enables the runtime mutex/block profilers so /debug/pprof/mutex and
// /debug/pprof/block report where ingest actually waits.
//
// Endpoints:
//
//	POST /api/register — {"id","operator","lat","lon","claimed_outdoor","hardware"}
//	POST /api/readings — {"node","signal_id","power_dbm","at"}
//	GET  /api/trust?node=ID
//	GET  /metrics       — Prometheus text exposition (trust_* series)
//	GET  /debug/traces  — span ring buffer as JSON
//	GET  /debug/pprof/* — runtime profiles
//
// SIGINT/SIGTERM shut the daemon down gracefully: the HTTP server drains,
// every pending epoch is closed through the consensus checks, and the
// ledger is saved one final time so no trust evidence is lost.
package main

import (
	"context"
	"errors"
	"flag"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sensorcal/internal/clock"
	"sensorcal/internal/obs"
	"sensorcal/internal/resilience"
	"sensorcal/internal/trust"
)

// daemon is the testable core of spectrumd: the epoch-closing loop and
// ledger persistence run against an injectable clock, so tests drive a
// clock.Simulated through hours of collector time in microseconds the
// same way the agent tests do.
type daemon struct {
	col       *trust.Collector
	clk       clock.Clock
	statePath string
	epoch     time.Duration
	log       *obs.Logger
	// saveRetry retries transient filesystem errors during ledger saves
	// (nil: single attempt). saveFailures counts saves that failed even
	// after retrying (nil: uncounted) — each one is a window of consensus
	// evidence that a crash would lose.
	saveRetry    *resilience.Retrier
	saveFailures *obs.Counter
}

// loadState restores the ledger snapshot, tolerating a missing file.
func (d *daemon) loadState() error {
	if d.statePath == "" {
		return nil
	}
	f, err := os.Open(d.statePath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	if err := d.col.Ledger.Load(f); err != nil {
		return err
	}
	d.log.Infof("restored %d nodes from %s", d.col.Ledger.Len(), d.statePath)
	return nil
}

// saveState writes the ledger snapshot atomically (write + rename),
// retrying transient filesystem errors: a full disk or a slow NFS mount
// recovers, and losing a snapshot over it would let a fabricator launder
// its history by crashing the collector at the right moment.
func (d *daemon) saveState() {
	if d.statePath == "" {
		return
	}
	attempt := func() error {
		tmp := d.statePath + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if err := d.col.Ledger.Save(f, d.clk.Now()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(tmp, d.statePath)
	}
	var err error
	if d.saveRetry != nil {
		err = d.saveRetry.Do(context.Background(), "ledger_save",
			func(context.Context) error { return attempt() })
	} else {
		err = attempt()
	}
	if err != nil {
		if d.saveFailures != nil {
			d.saveFailures.Inc()
		}
		d.log.Errorf("saving ledger: %v", err)
	}
}

// closeEpochs finalizes every epoch before cutoff and snapshots the
// ledger.
func (d *daemon) closeEpochs(cutoff time.Time) {
	for _, a := range d.col.CloseEpochs(cutoff) {
		d.log.Warnf("anomaly: %v", a)
	}
	d.saveState()
}

// epochLoop closes matured epochs once per window until ctx is done.
func (d *daemon) epochLoop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-d.clk.After(d.epoch):
			d.closeEpochs(d.clk.Now().Add(-d.epoch))
		}
	}
}

// shutdown drains the HTTP server, then flushes every remaining epoch —
// including the still-maturing one — and saves the ledger. Losing the
// trailing window's evidence on restart would let a fabricator launder
// its history by timing a crash.
func (d *daemon) shutdown(srv *http.Server) {
	sdCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sdCtx); err != nil {
		d.log.Warnf("http shutdown: %v", err)
	}
	d.closeEpochs(d.clk.Now().Add(d.epoch))
	d.log.Infof("ledger saved, exiting")
}

// handler mounts the collector API — wrapped in the load-shedding and
// per-request-timeout middleware — onto the obs admin surface. The debug
// endpoints stay outside the timeout: a CPU profile legitimately takes
// longer than any API request should.
func (d *daemon) handler() http.Handler {
	mux := obs.AdminMux(nil, nil)
	mux.Handle("/api/", trust.Harden(d.col.Handler(d.clk.Now), trust.HardenConfig{}))
	return mux
}

func main() {
	logger := obs.NewLogger("spectrumd")
	var (
		addr     = flag.String("addr", ":8025", "listen address")
		epoch    = flag.Duration("epoch", time.Minute, "consensus epoch window")
		state    = flag.String("state", "", "ledger snapshot file (loaded at boot, saved every epoch)")
		shards   = flag.Int("shards", 8, "collector ingest lock stripes (rounded up to a power of two; 1 = single-lock)")
		profCont = flag.Bool("profile-contention", false, "enable runtime mutex/block profiling on /debug/pprof")
		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")

		traceCap    = flag.Int("trace-capacity", obs.DefaultTraceCapacity, "span ring capacity served on /debug/traces")
		traceSample = flag.Float64("trace-sample", 1, "head-sampling ratio for traces rooted here, in [0,1]")
		traceExport = flag.String("trace-export", "", "durable JSONL span spool path (empty: in-memory ring only)")
	)
	flag.Parse()
	lv, err := obs.ParseLevel(*logLevel)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	logger.SetLevel(lv)
	traceCleanup, err := obs.ConfigureDefaultTracer(*traceCap, *traceSample, *traceExport)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	defer traceCleanup()
	if *profCont {
		// Sample every contended mutex event and blocking events ≥ 10 µs:
		// cheap enough for a collector, detailed enough to see stripes.
		obs.EnableContentionProfiling(1, 10_000)
		logger.Infof("mutex/block contention profiling enabled")
	}

	c := trust.NewShardedCollector(*shards).Instrument(obs.Default())
	c.EpochWindow = *epoch
	d := &daemon{
		col: c, clk: clock.System{}, statePath: *state, epoch: *epoch, log: logger,
		saveRetry: resilience.NewRetrier(resilience.Policy{
			MaxAttempts: 3,
			BaseDelay:   50 * time.Millisecond,
			MaxDelay:    500 * time.Millisecond,
		}).Instrument(nil),
		saveFailures: obs.Default().Counter("trust_ledger_save_failures_total",
			"Ledger snapshot saves that failed even after retrying."),
	}
	if err := d.loadState(); err != nil {
		logger.Fatalf("loading %s: %v", *state, err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go d.epochLoop(ctx)

	srv := &http.Server{Addr: *addr, Handler: d.handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Infof("collector listening on %s (epoch window %s, %d ingest shards)", *addr, *epoch, c.Shards())

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Fatalf("%v", err)
		}
	case <-ctx.Done():
		stop()
		logger.Infof("signal received, shutting down")
		d.shutdown(srv)
	}
}
