package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sensorcal/internal/obs"
	"sensorcal/internal/stream"
)

// toneIQ builds one deterministic tone frame for the wire tests.
func toneIQ(n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		ph := 2 * math.Pi * 5 * float64(i) / float64(n)
		out[i] = complex(0.5*math.Cos(ph), 0.5*math.Sin(ph))
	}
	return out
}

// TestDaemonMountsStreamRoutes pins the full mount: the streaming routes
// carve out of /api/ without shadowing the trust API, frames flow
// through to the occupancy grid, and /readyz reflects the stream check.
func TestDaemonMountsStreamRoutes(t *testing.T) {
	d, _ := newTestDaemon(t, time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC), "")
	sv, err := stream.NewService(stream.Config{
		FFTSize:  128,
		Linger:   -1,
		Registry: obs.NewRegistry(),
		Grid:     stream.GridConfig{LowHz: 500e6, HighHz: 700e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	d.stream = sv
	health := obs.NewHealth()
	health.AddCheck("stream", func() bool { return !sv.Degraded() })
	d.health = health
	srv := httptest.NewServer(d.handler())
	defer srv.Close()

	// The trust API still answers on /api/.
	resp, err := http.Post(srv.URL+"/api/register", "application/json",
		bytes.NewReader([]byte(`{"id":"node-1","operator":"op"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("trust register through combined mux: %d", resp.StatusCode)
	}

	// Stream frames land in the grid.
	iq := stream.EncodeIQ(toneIQ(128))
	var frames []map[string]interface{}
	for i := 0; i < 5; i++ {
		frames = append(frames, map[string]interface{}{
			"sensor": fmt.Sprintf("s-%d", i), "center_hz": 600e6,
			"sample_rate": 2.4e6, "iq_b64": iq,
		})
	}
	body, _ := json.Marshal(map[string]interface{}{"frames": frames})
	resp, err = http.Post(srv.URL+"/api/stream/frames", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("stream frames: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := sv.Sessions().Get("s-0"); s != nil && s.Stats().Frames > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("frames never folded")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err = http.Get(srv.URL + "/api/occupancy")
	if err != nil {
		t.Fatal(err)
	}
	var occ stream.BandOccupancy
	if err := json.NewDecoder(resp.Body).Decode(&occ); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(occ.Slots) == 0 {
		t.Fatal("occupancy empty after folded frames")
	}

	// Healthy stream = ready daemon.
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with healthy stream: %d", resp.StatusCode)
	}
}

func TestParseBand(t *testing.T) {
	lo, hi, err := parseBand("470e6:698e6")
	if err != nil || lo != 470e6 || hi != 698e6 {
		t.Fatalf("parseBand: %v %v %v", lo, hi, err)
	}
	for _, bad := range []string{"", "470e6", "698e6:470e6", "x:y"} {
		if _, _, err := parseBand(bad); err == nil {
			t.Fatalf("parseBand(%q) accepted", bad)
		}
	}
}
