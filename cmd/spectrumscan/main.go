// Command spectrumscan runs the monitoring service a calibrated node
// sells: it sweeps the testbed's broadcast and cellular bands at a chosen
// installation, produces PSD-based channel occupancy with duty cycles
// over several frames, and stamps the output with the site's calibration
// grades so a renter can judge how far to trust each band.
//
// Usage:
//
//	spectrumscan [-site rooftop] [-frames 8] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"

	"sensorcal/internal/antenna"
	"sensorcal/internal/calib"
	"sensorcal/internal/obs"
	"sensorcal/internal/rfmath"
	"sensorcal/internal/sdr"
	"sensorcal/internal/spectrum"
	"sensorcal/internal/world"
)

func main() {
	logger := obs.NewLogger("spectrumscan")
	var (
		siteName = flag.String("site", "rooftop", "installation: rooftop, window or indoor")
		frames   = flag.Int("frames", 8, "PSD frames per tuning")
		seed     = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	var site *world.Site
	for _, s := range world.Sites() {
		if s.Name == *siteName {
			site = s
		}
	}
	if site == nil {
		logger.Fatalf("unknown site %q", *siteName)
	}

	scene := &calib.WorldScene{
		Site:    site,
		Antenna: antenna.PaperAntenna(),
		Towers:  world.Towers(),
		TV:      world.TVStations(),
		Fader:   rfmath.NewFader(*seed),
	}

	// Tunings covering the TV farm and the cellular carriers, with the
	// channels a renter might care about.
	type tuning struct {
		centerHz float64
		rate     float64
		channels []spectrum.Channel
	}
	tunings := []tuning{
		{545e6, 30e6, []spectrum.Channel{
			{Name: "TV-545MHz", LowHz: 542e6, HighHz: 548e6},
			{Name: "TV-551MHz(vacant)", LowHz: 548e6, HighHz: 554e6},
		}},
		{731e6, 12e6, []spectrum.Channel{
			{Name: "LTE-B12-731MHz", LowHz: 726e6, HighHz: 736e6},
		}},
		{2145e6, 30e6, []spectrum.Channel{
			{Name: "LTE-B4-2145MHz", LowHz: 2135e6, HighHz: 2155e6},
		}},
		{2670e6, 40e6, []spectrum.Channel{
			{Name: "LTE-B7-2650MHz", LowHz: 2640e6, HighHz: 2660e6},
			{Name: "LTE-B7-2670MHz", LowHz: 2660e6, HighHz: 2680e6},
		}},
	}

	analyzer := spectrum.NewAnalyzer()
	duty := spectrum.NewDutyCycle()
	dev := sdr.New(sdr.BladeRFxA9(), *seed)
	if err := dev.SetGain(30); err != nil {
		logger.Fatalf("%v", err)
	}

	fmt.Printf("spectrum scan at %s (%d frames per tuning)\n\n", site.Name, *frames)
	for _, tn := range tunings {
		if err := dev.Tune(tn.centerHz); err != nil {
			logger.Fatalf("%v", err)
		}
		if err := dev.SetSampleRate(tn.rate); err != nil {
			logger.Fatalf("%v", err)
		}
		var last []spectrum.ChannelReport
		// One frame reused across the sweep: AnalyzeInto recycles its bins
		// and draws scratch from the dsp pools, so the per-frame loop is
		// the same amortized kernel path the streaming service runs.
		var frame spectrum.Frame
		for fIdx := 0; fIdx < *frames; fIdx++ {
			ems, err := scene.EmissionsFor(tn.centerHz, tn.rate, 1<<15)
			if err != nil {
				logger.Fatalf("%v", err)
			}
			buf, err := dev.Capture(1<<15, ems)
			if err != nil {
				logger.Fatalf("%v", err)
			}
			if err := analyzer.AnalyzeInto(&frame, buf, tn.centerHz); err != nil {
				logger.Fatalf("%v", err)
			}
			last = spectrum.ChannelOccupancy(&frame, 6, tn.channels)
			duty.Add(last)
		}
		for _, r := range last {
			frac, _ := duty.Fraction(r.Channel.Name)
			fmt.Printf("  %-22s %7.1f dBFS  occupied %5.1f%% of frames\n",
				r.Channel.Name, r.PowerDB, frac*100)
		}
	}

	// Qualify the data with the node's calibration grades.
	rep, err := calib.RunFrequency(context.Background(), calib.FrequencyConfig{
		Site: site, Towers: world.Towers(), TV: world.TVStations(), Seed: *seed,
	})
	if err != nil {
		logger.Fatalf("%v", err)
	}
	fmt.Println("\ncalibration grades qualifying this data:")
	for _, b := range rep.BandScores() {
		fmt.Printf("  %-18s grade %s (%.2f)\n", b.Class, calib.GradeFor(b.Score), b.Score)
	}
}
