// Command figures regenerates the paper's evaluation figures as text data
// series from the simulated testbed.
//
// Usage:
//
//	figures [-fig all|1a|1b|1c|3|4] [-seed 1] [-aircraft 60] [-plot]
package main

import (
	"flag"
	"fmt"
	"log"
)

import "sensorcal/internal/figures"

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 1a, 1b, 1c, 3, 4 or all")
		seed     = flag.Int64("seed", 1, "simulation seed")
		aircraft = flag.Int("aircraft", figures.DefaultAircraft, "aircraft population for Figure 1")
		plot     = flag.Bool("plot", false, "include polar scatter plots for Figure 1")
	)
	flag.Parse()

	fig1 := func(site string) {
		obs, err := figures.Figure1(site, *aircraft, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(figures.RenderFigure1(obs, *plot))
	}
	fig3 := func() {
		data, err := figures.Figure3(*seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(figures.RenderFigure3(data))
	}
	fig4 := func() {
		data, err := figures.Figure4(*seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(figures.RenderFigure4(data))
	}

	switch *fig {
	case "1a":
		fig1("rooftop")
	case "1b":
		fig1("window")
	case "1c":
		fig1("indoor")
	case "3":
		fig3()
	case "4":
		fig4()
	case "all":
		for _, s := range figures.SiteOrder {
			fig1(s)
		}
		fig3()
		fig4()
	default:
		log.Fatalf("unknown figure %q", *fig)
	}
}
