// Command calibrate runs the paper's full automatic-calibration procedure
// against a simulated node and prints the calibration report: the §3.1
// ADS-B directional measurement, the §3.2 cellular and TV frequency
// sweeps, the field-of-view estimate, per-band grades and the
// indoor/outdoor verdict.
//
// Usage:
//
//	calibrate -site rooftop|window|indoor [-aircraft 60] [-seed 1]
//	          [-duration 30s] [-plot] [-claim-outdoor]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"sensorcal/internal/calib"
	"sensorcal/internal/flightsim"
	"sensorcal/internal/fr24"
	"sensorcal/internal/obs"
	"sensorcal/internal/world"
)

func main() {
	logger := obs.NewLogger("calibrate")
	var (
		siteName = flag.String("site", "rooftop", "installation to evaluate: rooftop, window or indoor")
		siteFile = flag.String("site-file", "", "JSON site definition (overrides -site; see internal/world.LoadSite)")
		aircraft = flag.Int("aircraft", 60, "aircraft within 100 km during the measurement")
		seed     = flag.Int64("seed", 1, "simulation seed")
		duration = flag.Duration("duration", 30*time.Second, "ADS-B capture duration")
		plot     = flag.Bool("plot", false, "print the Figure 1 style polar scatter")
		claim    = flag.Bool("claim-outdoor", false, "verify an operator claim of an outdoor installation")
		withFM   = flag.Bool("fm", false, "include the FM broadcast sweep (antenna roll-off probe)")
		parallel = flag.Int("parallel", 0, "measurement units run concurrently (0: GOMAXPROCS, 1: serial; results identical)")
		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	)
	flag.Parse()
	lv, err := obs.ParseLevel(*logLevel)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	logger.SetLevel(lv)

	var site *world.Site
	if *siteFile != "" {
		f, err := os.Open(*siteFile)
		if err != nil {
			logger.Fatalf("%v", err)
		}
		site, err = world.LoadSite(f)
		f.Close()
		if err != nil {
			logger.Fatalf("%v", err)
		}
	} else {
		for _, s := range world.Sites() {
			if s.Name == *siteName {
				site = s
			}
		}
		if site == nil {
			logger.Fatalf("unknown site %q (want rooftop, window or indoor)", *siteName)
		}
	}

	epoch := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	fleet, ferr := flightsim.NewFleet(epoch, flightsim.Config{
		Center: world.BuildingOrigin,
		Radius: 100_000,
		Count:  *aircraft,
		Seed:   *seed,
	})
	if ferr != nil {
		logger.Fatalf("%v", ferr)
	}

	logger.Infof("running %s ADS-B capture at %s", *duration, site.Name)
	set, err := calib.RunDirectional(context.Background(), calib.DirectionalConfig{
		Site:     site,
		Fleet:    fleet,
		Truth:    fr24.NewService(fleet),
		Start:    epoch,
		Duration: *duration,
		Seed:     *seed,
	})
	if err != nil {
		logger.Fatalf("%v", err)
	}

	logger.Infof("running cellular + TV frequency sweep")
	fcfg := calib.FrequencyConfig{
		Site:        site,
		Towers:      world.Towers(),
		TV:          world.TVStations(),
		Seed:        *seed,
		Parallelism: *parallel,
	}
	if *withFM {
		fcfg.FM = world.FMStations()
	}
	freq, err := calib.RunFrequency(context.Background(), fcfg)
	if err != nil {
		logger.Fatalf("%v", err)
	}

	report := calib.BuildReport(site.Name, epoch, set, freq)
	report.AttachPowerCalibration(site, nil)
	fmt.Print(report.Render())
	if *plot {
		fmt.Println()
		fmt.Print(set.PolarPlot(100, 61))
	}
	if *claim {
		check := calib.VerifyClaim(true, set, freq)
		fmt.Printf("\nOperator claims OUTDOOR: consistent=%v — %v\n", check.Consistent, check.Verdict)
		if !check.Consistent {
			os.Exit(2)
		}
	}
}
