// Command fr24d serves the simulated flight-tracking ground-truth API —
// the FlightRadar24 stand-in the calibration procedure queries 15 seconds
// into every ADS-B measurement.
//
// Usage:
//
//	fr24d [-addr :8024] [-aircraft 60] [-seed 1] [-latency 10s]
//	      [-log-level info]
//
// Endpoints:
//
//	GET /api/flights?lat=&lon=&radius_km=[&t=RFC3339]
package main

import (
	"flag"
	"net/http"
	"time"

	"sensorcal/internal/flightsim"
	"sensorcal/internal/fr24"
	"sensorcal/internal/obs"
	"sensorcal/internal/world"
)

func main() {
	logger := obs.NewLogger("fr24d")
	var (
		addr     = flag.String("addr", ":8024", "listen address")
		aircraft = flag.Int("aircraft", 60, "simulated aircraft population")
		seed     = flag.Int64("seed", 1, "simulation seed")
		latency  = flag.Duration("latency", fr24.DefaultLatency, "reporting latency")
		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	)
	flag.Parse()
	lv, err := obs.ParseLevel(*logLevel)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	logger.SetLevel(lv)

	fleet, err := flightsim.NewFleet(time.Now(), flightsim.Config{
		Center: world.BuildingOrigin,
		Radius: 150_000,
		Count:  *aircraft,
		Seed:   *seed,
	})
	if err != nil {
		logger.Fatalf("%v", err)
	}
	svc := fr24.NewService(fleet)
	svc.Latency = *latency

	logger.Infof("serving %d simulated aircraft on %s (latency %s)", *aircraft, *addr, *latency)
	if err := http.ListenAndServe(*addr, svc.Handler(time.Now)); err != nil {
		logger.Fatalf("%v", err)
	}
}
