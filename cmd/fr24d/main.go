// Command fr24d serves the simulated flight-tracking ground-truth API —
// the FlightRadar24 stand-in the calibration procedure queries 15 seconds
// into every ADS-B measurement.
//
// Usage:
//
//	fr24d [-addr :8024] [-aircraft 60] [-seed 1] [-latency 10s]
//	      [-log-level info]
//	      [-trace-capacity 4096] [-trace-sample 1] [-trace-export spans.jsonl]
//
// Endpoints:
//
//	GET /api/flights?lat=&lon=&radius_km=[&t=RFC3339]
//	GET /metrics, /debug/traces, /debug/slo, /debug/pprof/* — obs admin surface
package main

import (
	"flag"
	"net/http"
	"time"

	"sensorcal/internal/flightsim"
	"sensorcal/internal/fr24"
	"sensorcal/internal/obs"
	"sensorcal/internal/world"
)

func main() {
	logger := obs.NewLogger("fr24d")
	var (
		addr     = flag.String("addr", ":8024", "listen address")
		aircraft = flag.Int("aircraft", 60, "simulated aircraft population")
		seed     = flag.Int64("seed", 1, "simulation seed")
		latency  = flag.Duration("latency", fr24.DefaultLatency, "reporting latency")
		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")

		traceCap    = flag.Int("trace-capacity", obs.DefaultTraceCapacity, "span ring capacity served on /debug/traces")
		traceSample = flag.Float64("trace-sample", 1, "head-sampling ratio for traces rooted here, in [0,1]")
		traceExport = flag.String("trace-export", "", "durable JSONL span spool path (empty: in-memory ring only)")
	)
	flag.Parse()
	lv, err := obs.ParseLevel(*logLevel)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	logger.SetLevel(lv)
	traceCleanup, err := obs.ConfigureDefaultTracer(*traceCap, *traceSample, *traceExport)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	defer traceCleanup()

	fleet, err := flightsim.NewFleet(time.Now(), flightsim.Config{
		Center: world.BuildingOrigin,
		Radius: 150_000,
		Count:  *aircraft,
		Seed:   *seed,
	})
	if err != nil {
		logger.Fatalf("%v", err)
	}
	svc := fr24.NewService(fleet)
	svc.Latency = *latency

	// The ground-truth API joins the admin surface so fr24d exposes the
	// same /metrics, /debug/traces and /debug/slo every other daemon does,
	// with its flights route under the RED middleware.
	mw := obs.NewMiddleware("fr24", nil, nil)
	health := obs.NewHealth()
	health.SetReady("fleet", true)
	mux := obs.AdminMux(nil, nil, health)
	mux.Handle("/api/", mw.WrapHandler("/api/flights", svc.Handler(time.Now)))

	logger.Infof("serving %d simulated aircraft on %s (latency %s)", *aircraft, *addr, *latency)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		logger.Fatalf("%v", err)
	}
}
