// Command benchcheck validates BENCH_N.json records after a loadgen
// run, so CI fails on a regression the run itself would only log. It
// checks the schema stamp, the equivalence verdict (a bench whose
// sharded/replicated variant diverged from the baseline gets no
// credit for being fast), that every timed scenario actually moved
// readings, and — on multi-core machines — that the recorded speedups
// clear a floor.
//
// Records stamped "single_core": true skip every speedup and scaling
// assertion: with one CPU the parallel variants cannot beat the serial
// ones and the ratios measure scheduler noise, not the code. The stamp
// is set by loadgen itself (runtime.NumCPU() == 1), not by the
// invoker, so a CI runner downgrade cannot silently relax the gate on
// machines that could have asserted.
//
// Usage:
//
//	benchcheck [-min-speedup 1.0] [-min-tax 0.05] [-min-core-scaling 0]
//	           BENCH_7.json [BENCH_8.json ...]
//
// Speedup entries whose key starts with "replica_" are throughput
// ratios vs a single replica — a routing tax expected to be below 1 —
// and are held to -min-tax instead of -min-speedup.
//
// -min-core-scaling (0 disables it) is the multi-core ingest gate: on
// records that carry a scaling curve, every point at 4+ cores must show
// at least that speedup over the 1-core rung. Single-core records skip
// it like every other parallel assertion.
//
// Records carrying "allocs_per_submit" are additionally held to
// batched ≤ per_reading + 0.25 allocations per reading: the batched
// entry point's regrouping must come from pooled scratch, not fresh
// heap. That is a per-entry-point cost comparison, not a parallelism
// claim, so it is asserted on single-core records too.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

const wantSchema = "sensorcal-bench/v1"

// record mirrors the loadgen benchOutput fields benchcheck judges.
// Unknown fields are ignored so the record can grow without breaking
// older checkers.
type record struct {
	Bench         int     `json:"bench"`
	Schema        string  `json:"schema"`
	NumCPU        int     `json:"num_cpu"`
	EquivalenceOK bool    `json:"equivalence_ok"`
	SingleCore    bool    `json:"single_core"`
	Scenarios     []struct {
		Name          string  `json:"name"`
		Readings      int64   `json:"readings"`
		Errors        int64   `json:"errors"`
		ThroughputRPS float64 `json:"throughput_rps"`
	} `json:"scenarios"`
	Speedup      map[string]float64 `json:"speedup"`
	ScalingCurve []struct {
		Procs      int     `json:"gomaxprocs"`
		SpeedupVs1 float64 `json:"speedup_vs_1"`
	} `json:"scaling_curve"`
	AllocsPerSubmit map[string]float64 `json:"allocs_per_submit"`
}

// allocsSlack is how many allocations per reading the batched entry
// point may exceed the per-reading one by before the gate fails —
// measurement noise headroom, not a real budget.
const allocsSlack = 0.25

// check returns every violation in one record; an empty slice is a pass.
func check(rec record, minSpeedup, minTax, minCoreScaling float64) []string {
	var bad []string
	fail := func(format string, args ...interface{}) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}
	if rec.Schema != wantSchema {
		fail("schema %q, want %q", rec.Schema, wantSchema)
	}
	if rec.Bench == 0 {
		fail("missing bench number")
	}
	if !rec.EquivalenceOK {
		fail("equivalence_ok is false: the benched variant diverged from its baseline")
	}
	if len(rec.Scenarios) == 0 {
		fail("no timed scenarios")
	}
	for _, s := range rec.Scenarios {
		if s.Readings <= 0 || s.ThroughputRPS <= 0 {
			fail("scenario %q moved no readings", s.Name)
		}
		// Errors budget: a closed loop that sheds a few batches under a
		// short CI duration is noise; one that mostly errors is broken.
		if s.Readings > 0 && float64(s.Errors) > 0.05*float64(s.Readings) {
			fail("scenario %q: %d errors against %d readings (>5%%)", s.Name, s.Errors, s.Readings)
		}
	}
	// Every recorded ratio must at least be a real number, single-core
	// or not: NaN/Inf means a zero-throughput baseline slipped through.
	keys := make([]string, 0, len(rec.Speedup))
	for k := range rec.Speedup {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := rec.Speedup[k]
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			fail("speedup[%s] = %v is not a positive finite ratio", k, v)
		}
	}
	// The allocation comparison is single-threaded by construction, so it
	// holds on any host — including single-core runners where every
	// parallel assertion below is skipped.
	if len(rec.AllocsPerSubmit) > 0 {
		batched, okB := rec.AllocsPerSubmit["batched"]
		perReading, okP := rec.AllocsPerSubmit["per_reading"]
		switch {
		case !okB || !okP:
			fail("allocs_per_submit present but missing batched/per_reading keys: %v", rec.AllocsPerSubmit)
		case math.IsNaN(batched) || math.IsInf(batched, 0) || batched < 0 ||
			math.IsNaN(perReading) || math.IsInf(perReading, 0) || perReading < 0:
			fail("allocs_per_submit has a non-finite or negative entry: batched=%v per_reading=%v", batched, perReading)
		case batched > perReading+allocsSlack:
			fail("allocs_per_submit: batched %.2f exceeds per_reading %.2f (+%.2f slack) — batch scratch is not pooled",
				batched, perReading, allocsSlack)
		}
	}
	if rec.SingleCore {
		// The stamp carries the proof: nothing parallel can be asserted.
		return bad
	}
	for _, k := range keys {
		v := rec.Speedup[k]
		if strings.HasPrefix(k, "replica_") {
			if v < minTax {
				fail("speedup[%s] = %.3f below the routing-tax floor %.3f", k, v, minTax)
			}
			continue
		}
		if v < minSpeedup {
			fail("speedup[%s] = %.3f below the %.3f floor", k, v, minSpeedup)
		}
	}
	for _, pt := range rec.ScalingCurve {
		if pt.Procs > 1 && pt.SpeedupVs1 < minSpeedup {
			fail("scaling curve at gomaxprocs=%d: %.3fx vs 1 core, below the %.3f floor",
				pt.Procs, pt.SpeedupVs1, minSpeedup)
		}
		// The ingest scaling gate: 4+ cores must actually buy throughput,
		// not just avoid losing it. Vacuous when the host has < 4 cores
		// (the curve then has no 4+ rung) or the flag is left at 0.
		if minCoreScaling > 0 && pt.Procs >= 4 && pt.SpeedupVs1 < minCoreScaling {
			fail("scaling curve at gomaxprocs=%d: %.3fx vs 1 core, below the %.3f multi-core floor",
				pt.Procs, pt.SpeedupVs1, minCoreScaling)
		}
	}
	return bad
}

func main() {
	minSpeedup := flag.Float64("min-speedup", 1.0, "floor for parallel speedup ratios (multi-core records only)")
	minTax := flag.Float64("min-tax", 0.05, "floor for replica routing-tax ratios (multi-core records only)")
	minCoreScaling := flag.Float64("min-core-scaling", 0, "floor for scaling-curve speedup at 4+ cores (0: disabled; multi-core records only)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-min-speedup 1.0] [-min-tax 0.05] [-min-core-scaling 0] BENCH_N.json ...")
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			failed = true
			continue
		}
		var rec record
		if err := json.Unmarshal(data, &rec); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
			failed = true
			continue
		}
		bad := check(rec, *minSpeedup, *minTax, *minCoreScaling)
		if len(bad) > 0 {
			failed = true
			for _, msg := range bad {
				fmt.Fprintf(os.Stderr, "benchcheck: %s: %s\n", path, msg)
			}
			continue
		}
		note := ""
		if rec.SingleCore {
			note = " (single-core record: speedup assertions skipped)"
		}
		fmt.Printf("benchcheck: %s ok — bench %d, %d scenarios, equivalence ok%s\n",
			path, rec.Bench, len(rec.Scenarios), note)
	}
	if failed {
		os.Exit(1)
	}
}
