package main

import (
	"strings"
	"testing"
)

func baseRecord() record {
	rec := record{
		Bench:         9,
		Schema:        wantSchema,
		NumCPU:        8,
		EquivalenceOK: true,
		Speedup:       map[string]float64{"core": 3.2, "replica_n4": 0.4},
	}
	rec.Scenarios = append(rec.Scenarios, struct {
		Name          string  `json:"name"`
		Readings      int64   `json:"readings"`
		Errors        int64   `json:"errors"`
		ThroughputRPS float64 `json:"throughput_rps"`
	}{Name: "replica/n=1", Readings: 10000, ThroughputRPS: 50000})
	return rec
}

func assertViolation(t *testing.T, rec record, want string) {
	t.Helper()
	bad := check(rec, 1.0, 0.05)
	for _, msg := range bad {
		if strings.Contains(msg, want) {
			return
		}
	}
	t.Fatalf("no violation mentioning %q in %v", want, bad)
}

func TestCheckPasses(t *testing.T) {
	if bad := check(baseRecord(), 1.0, 0.05); len(bad) != 0 {
		t.Fatalf("clean record flagged: %v", bad)
	}
}

func TestCheckCatches(t *testing.T) {
	rec := baseRecord()
	rec.Schema = "something-else"
	assertViolation(t, rec, "schema")

	rec = baseRecord()
	rec.EquivalenceOK = false
	assertViolation(t, rec, "equivalence_ok")

	rec = baseRecord()
	rec.Scenarios[0].Errors = 1000
	assertViolation(t, rec, "errors")

	rec = baseRecord()
	rec.Speedup["core"] = 0.7
	assertViolation(t, rec, "below the 1.000 floor")

	rec = baseRecord()
	rec.Speedup["replica_n4"] = 0.01
	assertViolation(t, rec, "routing-tax floor")

	rec = baseRecord()
	rec.ScalingCurve = append(rec.ScalingCurve, struct {
		Procs      int     `json:"gomaxprocs"`
		SpeedupVs1 float64 `json:"speedup_vs_1"`
	}{Procs: 4, SpeedupVs1: 0.8})
	assertViolation(t, rec, "scaling curve")
}

// TestSingleCoreSkipsSpeedups is the satellite contract: a 1-CPU record
// keeps the structural assertions but drops every parallel one.
func TestSingleCoreSkipsSpeedups(t *testing.T) {
	rec := baseRecord()
	rec.NumCPU = 1
	rec.SingleCore = true
	rec.Speedup["core"] = 0.5 // hopeless on one core, and that is fine
	rec.ScalingCurve = append(rec.ScalingCurve, struct {
		Procs      int     `json:"gomaxprocs"`
		SpeedupVs1 float64 `json:"speedup_vs_1"`
	}{Procs: 4, SpeedupVs1: 0.6})
	if bad := check(rec, 1.0, 0.05); len(bad) != 0 {
		t.Fatalf("single-core record flagged on speedups: %v", bad)
	}
	// But a broken equivalence still fails — single_core is not a pass.
	rec.EquivalenceOK = false
	if bad := check(rec, 1.0, 0.05); len(bad) == 0 {
		t.Fatal("single-core record with failed equivalence passed")
	}
	// And NaN ratios still fail: they mean a zero baseline, not one core.
	rec.EquivalenceOK = true
	rec.Speedup["core"] = 0
	if bad := check(rec, 1.0, 0.05); len(bad) == 0 {
		t.Fatal("single-core record with a zero ratio passed")
	}
}
