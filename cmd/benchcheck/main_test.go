package main

import (
	"strings"
	"testing"
)

func baseRecord() record {
	rec := record{
		Bench:         9,
		Schema:        wantSchema,
		NumCPU:        8,
		EquivalenceOK: true,
		Speedup:       map[string]float64{"core": 3.2, "replica_n4": 0.4},
	}
	rec.Scenarios = append(rec.Scenarios, struct {
		Name          string  `json:"name"`
		Readings      int64   `json:"readings"`
		Errors        int64   `json:"errors"`
		ThroughputRPS float64 `json:"throughput_rps"`
	}{Name: "replica/n=1", Readings: 10000, ThroughputRPS: 50000})
	return rec
}

func assertViolation(t *testing.T, rec record, want string) {
	t.Helper()
	bad := check(rec, 1.0, 0.05, 2.5)
	for _, msg := range bad {
		if strings.Contains(msg, want) {
			return
		}
	}
	t.Fatalf("no violation mentioning %q in %v", want, bad)
}

func TestCheckPasses(t *testing.T) {
	if bad := check(baseRecord(), 1.0, 0.05, 2.5); len(bad) != 0 {
		t.Fatalf("clean record flagged: %v", bad)
	}
}

func TestCheckCatches(t *testing.T) {
	rec := baseRecord()
	rec.Schema = "something-else"
	assertViolation(t, rec, "schema")

	rec = baseRecord()
	rec.EquivalenceOK = false
	assertViolation(t, rec, "equivalence_ok")

	rec = baseRecord()
	rec.Scenarios[0].Errors = 1000
	assertViolation(t, rec, "errors")

	rec = baseRecord()
	rec.Speedup["core"] = 0.7
	assertViolation(t, rec, "below the 1.000 floor")

	rec = baseRecord()
	rec.Speedup["replica_n4"] = 0.01
	assertViolation(t, rec, "routing-tax floor")

	rec = baseRecord()
	rec.ScalingCurve = append(rec.ScalingCurve, struct {
		Procs      int     `json:"gomaxprocs"`
		SpeedupVs1 float64 `json:"speedup_vs_1"`
	}{Procs: 4, SpeedupVs1: 0.8})
	assertViolation(t, rec, "scaling curve")

	// Above the 1.0 baseline floor but under the multi-core ingest floor.
	rec = baseRecord()
	rec.ScalingCurve = append(rec.ScalingCurve, struct {
		Procs      int     `json:"gomaxprocs"`
		SpeedupVs1 float64 `json:"speedup_vs_1"`
	}{Procs: 4, SpeedupVs1: 1.8})
	assertViolation(t, rec, "multi-core floor")

	rec = baseRecord()
	rec.AllocsPerSubmit = map[string]float64{"batched": 9.5, "per_reading": 8.0}
	assertViolation(t, rec, "batch scratch is not pooled")
}

// TestMultiCoreScalingGate pins the -min-core-scaling contract: 2-core
// rungs are exempt, 4+ rungs must clear the floor, and a zero floor
// disables the gate entirely.
func TestMultiCoreScalingGate(t *testing.T) {
	point := func(procs int, speedup float64) struct {
		Procs      int     `json:"gomaxprocs"`
		SpeedupVs1 float64 `json:"speedup_vs_1"`
	} {
		return struct {
			Procs      int     `json:"gomaxprocs"`
			SpeedupVs1 float64 `json:"speedup_vs_1"`
		}{Procs: procs, SpeedupVs1: speedup}
	}
	rec := baseRecord()
	rec.ScalingCurve = append(rec.ScalingCurve, point(1, 1.0), point(2, 1.4), point(4, 2.6))
	if bad := check(rec, 1.0, 0.05, 2.5); len(bad) != 0 {
		t.Fatalf("curve clearing the floor flagged: %v", bad)
	}
	// A 2-core rung under the floor is fine — the gate starts at 4.
	rec.ScalingCurve[1] = point(2, 1.1)
	if bad := check(rec, 1.0, 0.05, 2.5); len(bad) != 0 {
		t.Fatalf("2-core rung held to the 4-core floor: %v", bad)
	}
	// Floor 0 disables the gate; the generic ≥1.0 check still applies.
	rec.ScalingCurve[2] = point(4, 1.2)
	if bad := check(rec, 1.0, 0.05, 0); len(bad) != 0 {
		t.Fatalf("disabled gate still fired: %v", bad)
	}
	if bad := check(rec, 1.0, 0.05, 2.5); len(bad) == 0 {
		t.Fatal("4-core rung below the floor passed")
	}
}

// TestAllocsGate pins the allocs_per_submit contract: within-slack
// passes, over-slack fails, non-finite entries fail, and — unlike every
// speedup assertion — the gate holds on single-core records too.
func TestAllocsGate(t *testing.T) {
	rec := baseRecord()
	rec.AllocsPerSubmit = map[string]float64{"batched": 8.1, "per_reading": 8.0}
	if bad := check(rec, 1.0, 0.05, 2.5); len(bad) != 0 {
		t.Fatalf("within-slack allocs flagged: %v", bad)
	}
	rec.AllocsPerSubmit["batched"] = 8.5
	if bad := check(rec, 1.0, 0.05, 2.5); len(bad) == 0 {
		t.Fatal("over-slack allocs passed")
	}
	rec.AllocsPerSubmit = map[string]float64{"batched": 1.0}
	assertViolation(t, rec, "missing batched/per_reading")

	single := baseRecord()
	single.NumCPU = 1
	single.SingleCore = true
	single.Speedup["core"] = 0.5 // skipped on one core
	single.AllocsPerSubmit = map[string]float64{"batched": 12.0, "per_reading": 8.0}
	if bad := check(single, 1.0, 0.05, 2.5); len(bad) == 0 {
		t.Fatal("single-core record escaped the allocs gate")
	}
}

// TestSingleCoreSkipsSpeedups is the satellite contract: a 1-CPU record
// keeps the structural assertions but drops every parallel one.
func TestSingleCoreSkipsSpeedups(t *testing.T) {
	rec := baseRecord()
	rec.NumCPU = 1
	rec.SingleCore = true
	rec.Speedup["core"] = 0.5 // hopeless on one core, and that is fine
	rec.ScalingCurve = append(rec.ScalingCurve, struct {
		Procs      int     `json:"gomaxprocs"`
		SpeedupVs1 float64 `json:"speedup_vs_1"`
	}{Procs: 4, SpeedupVs1: 0.6})
	if bad := check(rec, 1.0, 0.05, 2.5); len(bad) != 0 {
		t.Fatalf("single-core record flagged on speedups: %v", bad)
	}
	// But a broken equivalence still fails — single_core is not a pass.
	rec.EquivalenceOK = false
	if bad := check(rec, 1.0, 0.05, 2.5); len(bad) == 0 {
		t.Fatal("single-core record with failed equivalence passed")
	}
	// And NaN ratios still fail: they mean a zero baseline, not one core.
	rec.EquivalenceOK = true
	rec.Speedup["core"] = 0
	if bad := check(rec, 1.0, 0.05, 2.5); len(bad) == 0 {
		t.Fatal("single-core record with a zero ratio passed")
	}
}
