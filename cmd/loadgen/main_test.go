package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// A short end-to-end run: every mode, both shard counts, the three
// trace sampling ratios, equivalence replay, and the BENCH_7.json
// record written and parseable.
func TestLoadgenSmoke(t *testing.T) {
	out, err := run(config{
		Mode:           "both",
		Shards:         4,
		BaselineShards: 1,
		Conns:          4,
		Batch:          16,
		Nodes:          16,
		Signals:        8,
		Duration:       100 * time.Millisecond,
		Dedup:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.EquivalenceOK {
		t.Fatal("sharded collector diverged from the single-lock baseline")
	}
	// core+http × baseline+sharded, one trace scenario per ratio, and
	// the durability pair (wal off/on).
	want := 4 + len(traceRatios) + 2
	if len(out.Scenarios) != want {
		t.Fatalf("got %d scenarios, want %d", len(out.Scenarios), want)
	}
	for _, key := range []string{"p50@0.01", "p99@0.01", "p50@1", "p99@1"} {
		if _, ok := out.TraceOverhead[key]; !ok {
			t.Errorf("trace_overhead_pct missing %q: %v", key, out.TraceOverhead)
		}
	}
	for _, s := range out.Scenarios {
		if s.Readings == 0 {
			t.Errorf("scenario %s submitted no readings", s.Name)
		}
		if s.Errors != 0 {
			t.Errorf("scenario %s reported %d errored batches", s.Name, s.Errors)
		}
		if s.ThroughputRPS <= 0 {
			t.Errorf("scenario %s throughput %v, want > 0", s.Name, s.ThroughputRPS)
		}
		if s.P99ms < s.P50ms {
			t.Errorf("scenario %s p99 %v < p50 %v", s.Name, s.P99ms, s.P50ms)
		}
	}
	if _, ok := out.Speedup["core"]; !ok {
		t.Error("no core-mode speedup recorded")
	}
	for _, key := range []string{"p50", "p99"} {
		if _, ok := out.DurabilityOverhead[key]; !ok {
			t.Errorf("durability_overhead_pct missing %q: %v", key, out.DurabilityOverhead)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_7.json")
	if err := writeOutput(path, out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back benchOutput
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("bench record does not round-trip: %v", err)
	}
	if back.Bench != 7 || back.Schema != "sensorcal-bench/v1" {
		t.Fatalf("bench record header = (%d, %q)", back.Bench, back.Schema)
	}
	if back.GOMAXPROCS <= 0 {
		t.Error("bench record missing gomaxprocs")
	}
}

// Dedup off must still flow — no idempotency keys means no dedup-stripe
// traffic, a valid operating point for trusted pipelines.
func TestLoadgenNoDedup(t *testing.T) {
	out, err := run(config{
		Mode:           "core",
		Shards:         2,
		BaselineShards: 1,
		Conns:          2,
		Batch:          8,
		Nodes:          4,
		Signals:        2,
		Duration:       50 * time.Millisecond,
		Dedup:          false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Scenarios) != 2 {
		t.Fatalf("got %d scenarios, want 2", len(out.Scenarios))
	}
}

func TestLoadgenRejectsUnknownMode(t *testing.T) {
	if _, err := run(config{Mode: "tcp", Shards: 2, BaselineShards: 1,
		Conns: 1, Batch: 1, Nodes: 2, Signals: 1, Duration: time.Millisecond}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
