//go:build !race

package main

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
