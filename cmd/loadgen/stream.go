package main

// The -scenario=stream harness: drive the fleet-scale streaming spectrum
// service (internal/stream) with a closed loop of sensors and price the
// batched shared engine against the unshared per-sensor DSP path. The
// record lands in BENCH_8.json:
//
//	stream/serial  — every frame through stream.SerialReference plus a
//	                 local occupancy fold: fresh window, single-frame
//	                 FFT, per-call buffers, then the same noise-floor +
//	                 threshold pass the grid applies. What a fleet where
//	                 each sensor owns its DSP and aggregates locally
//	                 pays per frame for the same end product.
//	stream/batched — the same frames through a stream.Service: shared
//	                 cached windows, batched FFTs across sensors, pooled
//	                 scratch, sessions and grid folds included.
//
// "stream" speedup = batched throughput / serial throughput, and
// stream_allocs_per_frame is measured over a steady-state segment with
// runtime.MemStats — the ≈0 claim that makes 10k sensors on one engine
// viable. With -target the scenario instead streams wire-format frames
// at a live spectrumd (the CI smoke uses this).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sensorcal/internal/obs"
	"sensorcal/internal/spectrum"
	"sensorcal/internal/stream"
)

// streamFramePool is how many distinct IQ frames the generator cycles
// through — enough variety to defeat any value-level caching, small
// enough to stay resident.
const streamFramePool = 256

// streamInflight bounds each worker's unacknowledged frames: the closed
// loop waits for Done callbacks instead of flooding the queue.
const streamInflight = 256

// streamCenters spread the synthetic fleet across the monitored UHF
// band so the occupancy grid fills in more than one bucket.
var streamCenters = []float64{500e6, 550e6, 600e6, 650e6}

// makeStreamFrames builds the deterministic frame pool: a tone whose bin
// varies per frame, plus cheap uniform noise.
func makeStreamFrames(n, count int) [][]complex128 {
	frames := make([][]complex128, count)
	rng := splitmix(0x5eed)
	for f := range frames {
		fr := make([]complex128, n)
		bin := 3 + f%17
		for i := range fr {
			ph := 2 * math.Pi * float64(bin) * float64(i) / float64(n)
			ni := (float64(rng.next()%1000)/1000 - 0.5) * 0.05
			nq := (float64(rng.next()%1000)/1000 - 0.5) * 0.05
			fr[i] = complex(0.4*math.Cos(ph)+ni, 0.4*math.Sin(ph)+nq)
		}
		frames[f] = fr
	}
	return frames
}

func sensorIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = "sensor-" + strconv.Itoa(i)
	}
	return ids
}

func newStreamService(cfg config) (*stream.Service, error) {
	return stream.NewService(stream.Config{
		FFTSize:     cfg.StreamFFT,
		MaxSessions: cfg.Sensors + 64,
		QueueCap:    16384,
		MaxBatch:    128,
		Linger:      200 * time.Microsecond,
		Registry:    obs.NewRegistry(),
		Grid:        stream.GridConfig{LowHz: 470e6, HighHz: 698e6},
	})
}

// streamEquivalence is the stream scenario's refuse-to-lie gate: before
// claiming a speedup, replay frames through the shared engine at batch
// sizes 1, 8 and 64 and demand bit-identity with the serial reference.
func streamEquivalence(cfg config) (bool, error) {
	eng, err := stream.NewEngine(cfg.StreamFFT, nil)
	if err != nil {
		return false, err
	}
	frames := makeStreamFrames(cfg.StreamFFT, 64)
	for _, batch := range []int{1, 8, 64} {
		jobs := make([]stream.Job, batch)
		for i := range jobs {
			jobs[i] = stream.Job{IQ: frames[i%len(frames)], SampleRate: 2.4e6,
				Bins: make([]float64, cfg.StreamFFT)}
		}
		if err := eng.Process(jobs); err != nil {
			return false, err
		}
		for i := range jobs {
			want, err := stream.SerialReference(jobs[i].IQ, 2.4e6, cfg.StreamFFT, nil)
			if err != nil {
				return false, err
			}
			for k := range want {
				if math.Float64bits(jobs[i].Bins[k]) != math.Float64bits(want[k]) {
					return false, nil
				}
			}
		}
	}
	return true, nil
}

// runStreamSerial times the unshared baseline: one frame, one window,
// one FFT, per-call allocations, then the same noise-floor estimate and
// margin threshold the grid fold applies — a per-sensor deployment that
// aggregates occupancy locally instead of through the shared service.
// Scaled across -conns workers exactly like the batched run. The
// occupied-bin tally is accumulated and published so the fold loop
// cannot be optimized away.
func runStreamSerial(cfg config) (scenarioResult, error) {
	frames := makeStreamFrames(cfg.StreamFFT, streamFramePool)
	var firstErr atomic.Value
	var occupiedBins atomic.Int64
	const marginDB = 6 // stream.GridConfig default
	readings, errs, lats, elapsed := runClosedLoop(cfg, func(w, b int, rng *splitmix) (int, error) {
		fr := frames[rng.next()%uint64(len(frames))]
		bins, err := stream.SerialReference(fr, 2.4e6, cfg.StreamFFT, nil)
		if err != nil {
			firstErr.Store(err)
			return 0, err
		}
		threshold := spectrum.NoiseFloorOf(bins, 0.25) + marginDB
		occupied := 0
		for _, p := range bins {
			if p >= threshold {
				occupied++
			}
		}
		occupiedBins.Add(int64(occupied))
		return 1, nil
	})
	_ = occupiedBins.Load()
	if err, _ := firstErr.Load().(error); err != nil {
		return scenarioResult{}, err
	}
	return result("stream/serial", "stream", cfg, 0, readings, errs, lats, elapsed), nil
}

// runStreamBatched times the shared service end to end — ingest, queue,
// batched FFT, session and grid folds — with frame latency measured from
// Ingest to the Done callback. It also measures steady-state allocations
// per frame over an untimed segment on the already-warm service.
func runStreamBatched(cfg config) (scenarioResult, float64, error) {
	sv, err := newStreamService(cfg)
	if err != nil {
		return scenarioResult{}, 0, err
	}
	defer sv.Close()
	frames := makeStreamFrames(cfg.StreamFFT, streamFramePool)
	ids := sensorIDs(cfg.Sensors)

	var (
		accepted atomic.Int64
		shed     atomic.Int64
		latMu    sync.Mutex
		lats     []float64
		wg       sync.WaitGroup
	)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for w := 0; w < cfg.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := splitmix(0xbeef + uint64(w)*0x9137)
			tokens := make(chan struct{}, streamInflight)
			for i := 0; time.Now().Before(deadline); i++ {
				tokens <- struct{}{}
				idx := (i*cfg.Conns + w) % len(ids)
				t0 := time.Now()
				err := sv.Ingest(stream.IngestFrame{
					Sensor:     ids[idx],
					CenterHz:   streamCenters[idx%len(streamCenters)],
					SampleRate: 2.4e6,
					IQ:         frames[rng.next()%uint64(len(frames))],
					Done: func() {
						lat := time.Since(t0).Seconds()
						latMu.Lock()
						lats = append(lats, lat)
						latMu.Unlock()
						<-tokens
					},
				})
				if err != nil {
					shed.Add(1)
					<-tokens
					time.Sleep(50 * time.Microsecond)
					continue
				}
				accepted.Add(1)
			}
			// Wait for this worker's in-flight frames: the channel only
			// fills to capacity once every Done has drained a token.
			for k := 0; k < streamInflight; k++ {
				tokens <- struct{}{}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	res := result("stream/batched", "stream", cfg, 0, accepted.Load(), shed.Load(), lats, elapsed)

	allocs, err := measureStreamAllocs(sv, frames, ids)
	if err != nil {
		return scenarioResult{}, 0, err
	}
	return res, allocs, nil
}

// measureStreamAllocs runs a steady-state segment on the warm service
// and prices it in heap objects per frame: ingest K frames with no
// per-frame closures, wait for a sentinel fold (the queue is FIFO and
// the dispatcher is single, so the sentinel folding means everything
// before it folded), and divide the Mallocs delta.
func measureStreamAllocs(sv *stream.Service, frames [][]complex128, ids []string) (float64, error) {
	// The warm phase must reach the same steady state the measured
	// window runs in, or the window prices one-time ramp costs as if
	// they were per-frame: every sensor's session must already exist,
	// and the task pool must already hold as many recycled tasks as the
	// queue can hold in flight. 2× the fleet covers both here (the
	// queue cap is 16384 < 2×10000).
	measured := 20000
	warm := 2 * len(ids)
	if warm < measured {
		warm = measured
	}
	rng := splitmix(0xa110c)
	feed := func(k int) int {
		sent := 0
		for i := 0; sent < k; i++ {
			err := sv.Ingest(stream.IngestFrame{
				Sensor:     ids[i%len(ids)],
				CenterHz:   streamCenters[i%len(streamCenters)],
				SampleRate: 2.4e6,
				IQ:         frames[rng.next()%uint64(len(frames))],
			})
			if err != nil {
				time.Sleep(100 * time.Microsecond)
				continue
			}
			sent++
		}
		return sent
	}
	settle := func() error {
		var done sync.WaitGroup
		done.Add(1)
		deadline := time.Now().Add(30 * time.Second)
		for {
			err := sv.Ingest(stream.IngestFrame{
				Sensor: ids[0], CenterHz: streamCenters[0], SampleRate: 2.4e6,
				IQ: frames[0], Done: done.Done,
			})
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("allocs segment: sentinel never accepted: %w", err)
			}
			time.Sleep(100 * time.Microsecond)
		}
		done.Wait()
		return nil
	}
	feed(warm)
	if err := settle(); err != nil {
		return 0, err
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	sent := feed(measured)
	if err := settle(); err != nil {
		return 0, err
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(sent), nil
}

// measureEngineSpeedup prices the two DSP paths head to head with no
// service, queue or aggregation in the way: the same frames through
// SerialReference one at a time versus the shared engine at full
// batches, both on a single goroutine. The ratio isolates what batching
// itself buys — cached windows, amortized twiddles, pooled scratch —
// from the service-level number, which also carries queueing and folds.
func measureEngineSpeedup(cfg config) (float64, error) {
	eng, err := stream.NewEngine(cfg.StreamFFT, nil)
	if err != nil {
		return 0, err
	}
	const total, batch = 4096, 128
	frames := makeStreamFrames(cfg.StreamFFT, streamFramePool)
	bins := make([][]float64, batch)
	for i := range bins {
		bins[i] = make([]float64, cfg.StreamFFT)
	}
	jobs := make([]stream.Job, batch)

	// Warm both paths (window cache, pools) before timing.
	for i := 0; i < batch; i++ {
		jobs[i] = stream.Job{IQ: frames[i%len(frames)], SampleRate: 2.4e6, Bins: bins[i]}
	}
	if err := eng.Process(jobs); err != nil {
		return 0, err
	}
	if _, err := stream.SerialReference(frames[0], 2.4e6, cfg.StreamFFT, nil); err != nil {
		return 0, err
	}

	t0 := time.Now()
	for done := 0; done < total; done += batch {
		if err := eng.Process(jobs); err != nil {
			return 0, err
		}
	}
	batched := time.Since(t0)

	t0 = time.Now()
	for i := 0; i < total; i++ {
		if _, err := stream.SerialReference(frames[i%len(frames)], 2.4e6, cfg.StreamFFT, nil); err != nil {
			return 0, err
		}
	}
	serial := time.Since(t0)
	if batched <= 0 {
		return 0, fmt.Errorf("engine speedup: zero batched time")
	}
	return float64(serial) / float64(batched), nil
}

// runStreamTarget streams wire-format frames at a live spectrumd — the
// CI smoke path. Latency is the full HTTP batch round trip.
func runStreamTarget(cfg config) (scenarioResult, error) {
	frames := makeStreamFrames(cfg.StreamFFT, streamFramePool)
	encoded := make([]string, len(frames))
	for i, fr := range frames {
		encoded[i] = stream.EncodeIQ(fr)
	}
	ids := sensorIDs(cfg.Sensors)
	url := cfg.Target + "/api/stream/frames"
	type wf struct {
		Sensor     string  `json:"sensor"`
		CenterHz   float64 `json:"center_hz"`
		SampleRate float64 `json:"sample_rate"`
		IQB64      string  `json:"iq_b64"`
	}
	bufPool := sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}
	readings, errs, lats, elapsed := runClosedLoop(cfg, func(w, b int, rng *splitmix) (int, error) {
		buf := bufPool.Get().(*bytes.Buffer)
		defer bufPool.Put(buf)
		buf.Reset()
		batch := struct {
			Frames []wf `json:"frames"`
		}{Frames: make([]wf, cfg.Batch)}
		for i := range batch.Frames {
			idx := ((b*cfg.Batch+i)*cfg.Conns + w) % len(ids)
			fi := rng.next() % uint64(len(encoded))
			batch.Frames[i] = wf{
				Sensor: ids[idx], CenterHz: streamCenters[idx%len(streamCenters)],
				SampleRate: 2.4e6, IQB64: encoded[fi],
			}
		}
		if err := json.NewEncoder(buf).Encode(&batch); err != nil {
			return 0, err
		}
		resp, err := http.Post(url, "application/json", buf)
		if err != nil {
			return 0, err
		}
		var fr struct {
			Accepted int `json:"accepted"`
			Shed     int `json:"shed"`
		}
		err = json.NewDecoder(resp.Body).Decode(&fr)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			// Backpressure is the service working as designed; back off
			// and keep the loop closed.
			time.Sleep(50 * time.Millisecond)
			return 0, nil
		}
		if resp.StatusCode != http.StatusAccepted {
			return fr.Accepted, fmt.Errorf("status %d", resp.StatusCode)
		}
		return fr.Accepted, nil
	})
	return result("stream/target", "stream", cfg, 0, readings, errs, lats, elapsed), nil
}

// scalingPoint is one GOMAXPROCS setting of the -scaling-sweep curve.
type scalingPoint struct {
	Procs         int     `json:"gomaxprocs"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// SpeedupVs1 is throughput at this core count over throughput at 1 —
	// the per-core scaling curve reviewers read first.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
}

// sweepProcs is the GOMAXPROCS ladder: 1, 2, 4 and every core.
func sweepProcs() []int {
	set := map[int]bool{1: true}
	for _, p := range []int{2, 4, runtime.NumCPU()} {
		if p >= 1 {
			set[p] = true
		}
	}
	procs := make([]int, 0, len(set))
	for p := range set {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	return procs
}

// runScalingSweep reruns one scenario across the GOMAXPROCS ladder and
// returns the per-core curve. The original GOMAXPROCS is restored.
func runScalingSweep(cfg config, runner func(config) (scenarioResult, error)) ([]scalingPoint, error) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	var points []scalingPoint
	for _, p := range sweepProcs() {
		runtime.GOMAXPROCS(p)
		res, err := runner(cfg)
		if err != nil {
			return nil, fmt.Errorf("scaling sweep at gomaxprocs=%d: %w", p, err)
		}
		pt := scalingPoint{Procs: p, ThroughputRPS: res.ThroughputRPS}
		if len(points) > 0 && points[0].ThroughputRPS > 0 {
			pt.SpeedupVs1 = res.ThroughputRPS / points[0].ThroughputRPS
		} else {
			pt.SpeedupVs1 = 1
		}
		points = append(points, pt)
	}
	return points, nil
}

// runStream executes the stream scenario into out (Bench 8).
func runStream(cfg config, out *benchOutput) error {
	out.Bench = 8
	ok, err := streamEquivalence(cfg)
	if err != nil {
		return fmt.Errorf("stream equivalence: %w", err)
	}
	out.EquivalenceOK = ok
	if cfg.Target != "" {
		if err := waitReady(cfg.Target, 30*time.Second); err != nil {
			return err
		}
		res, err := runStreamTarget(cfg)
		if err != nil {
			return err
		}
		out.Scenarios = append(out.Scenarios, res)
		return nil
	}
	serial, err := runStreamSerial(cfg)
	if err != nil {
		return err
	}
	batched, allocs, err := runStreamBatched(cfg)
	if err != nil {
		return err
	}
	out.Scenarios = append(out.Scenarios, serial, batched)
	if serial.ThroughputRPS > 0 {
		out.Speedup["stream"] = batched.ThroughputRPS / serial.ThroughputRPS
	}
	engineSpeedup, err := measureEngineSpeedup(cfg)
	if err != nil {
		return err
	}
	out.Speedup["stream_engine"] = engineSpeedup
	out.StreamAllocsPerFrame = allocs
	if cfg.ScalingSweep {
		curve, err := runScalingSweep(cfg, func(c config) (scenarioResult, error) {
			res, _, err := runStreamBatched(c)
			return res, err
		})
		if err != nil {
			return err
		}
		out.ScalingCurve = curve
	}
	return nil
}
