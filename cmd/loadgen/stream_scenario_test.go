package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestStreamScenarioSmoke runs a shrunk stream scenario end to end:
// equivalence gate, serial vs batched, speedup, allocs/frame, and a
// BENCH_8.json record that round-trips.
func TestStreamScenarioSmoke(t *testing.T) {
	out, err := run(config{
		Scenario:  "stream",
		Conns:     4,
		Batch:     16,
		Sensors:   500,
		StreamFFT: 128,
		Duration:  150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Bench != 8 {
		t.Fatalf("bench = %d, want 8", out.Bench)
	}
	if !out.EquivalenceOK {
		t.Fatal("batched engine diverged from the serial reference")
	}
	if len(out.Scenarios) != 2 {
		t.Fatalf("got %d scenarios, want 2 (serial, batched)", len(out.Scenarios))
	}
	for _, s := range out.Scenarios {
		if s.Readings == 0 || s.ThroughputRPS <= 0 {
			t.Errorf("scenario %s: %d frames, %.0f /s", s.Name, s.Readings, s.ThroughputRPS)
		}
		if s.Procs <= 0 {
			t.Errorf("scenario %s missing gomaxprocs stamp", s.Name)
		}
	}
	if _, ok := out.Speedup["stream"]; !ok {
		t.Error("no stream speedup recorded")
	}
	if sp, ok := out.Speedup["stream_engine"]; !ok {
		t.Error("no stream_engine speedup recorded")
	} else if sp <= 1 {
		t.Errorf("engine-level speedup = %.2fx, want > 1 (batching must beat per-frame DSP)", sp)
	}
	// The contract the whole subsystem sells: a steady-state frame through
	// the batched service costs (almost) no heap objects. The race
	// detector allocates inside sync.Pool, so the threshold only holds on
	// uninstrumented builds.
	if !raceEnabled && out.StreamAllocsPerFrame > 1 {
		t.Errorf("steady-state allocs/frame = %.3f, want ≈ 0", out.StreamAllocsPerFrame)
	}

	path := filepath.Join(t.TempDir(), "BENCH_8.json")
	if err := writeOutput(path, out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back benchOutput
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("bench record does not round-trip: %v", err)
	}
	if back.Bench != 8 || back.Schema != "sensorcal-bench/v1" {
		t.Fatalf("bench record header = (%d, %q)", back.Bench, back.Schema)
	}
	if back.GOMAXPROCS <= 0 || back.NumCPU <= 0 {
		t.Error("bench record missing gomaxprocs/num_cpu stamp")
	}
}

// TestScalingSweepCore pins the -scaling-sweep satellite on the trust
// core loop: one point per rung of the GOMAXPROCS ladder, each stamped.
func TestScalingSweepCore(t *testing.T) {
	out, err := run(config{
		Mode:           "core",
		Shards:         2,
		BaselineShards: 1,
		Conns:          2,
		Batch:          8,
		Nodes:          8,
		Signals:        4,
		Duration:       40 * time.Millisecond,
		Dedup:          true,
		ScalingSweep:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Bench != 10 {
		t.Fatalf("sweep record bench = %d, want 10", out.Bench)
	}
	if len(out.ScalingCurve) != len(sweepProcs()) {
		t.Fatalf("scaling curve has %d points, want %d", len(out.ScalingCurve), len(sweepProcs()))
	}
	for _, k := range []string{"batched", "per_reading"} {
		v, ok := out.AllocsPerSubmit[k]
		if !ok || v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("allocs_per_submit[%q] = %v (present=%v)", k, v, ok)
		}
	}
	for i, pt := range out.ScalingCurve {
		if pt.Procs <= 0 || pt.ThroughputRPS <= 0 || pt.SpeedupVs1 <= 0 {
			t.Errorf("curve point %d: %+v", i, pt)
		}
		if i > 0 && pt.Procs <= out.ScalingCurve[i-1].Procs {
			t.Errorf("curve not ascending by procs: %+v", out.ScalingCurve)
		}
	}
}

func TestRejectsUnknownScenario(t *testing.T) {
	if _, err := run(config{Scenario: "warp", Conns: 1, Batch: 1, Duration: time.Millisecond}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
