// Command loadgen is the collector ingest load generator: it drives a
// trust collector — in-process or a live spectrumd — with a closed loop
// of concurrent clients submitting reading batches, and reports
// throughput plus p50/p99 latency for a single-lock baseline and a
// sharded collector side by side. Results are written as a BENCH_7.json
// record so CI keeps a bench trajectory next to the campaign benchmarks.
//
// Usage:
//
//	loadgen [-mode both] [-shards 16] [-baseline-shards 1] [-conns 8]
//	        [-batch 64] [-nodes 256] [-signals 64] [-duration 3s]
//	        [-dedup] [-target http://host:8025] [-out BENCH_7.json]
//	        [-scenario stream|replica] [-sensors 10000] [-stream-fft 256]
//	        [-replicas 4] [-scaling-sweep] [-gomaxprocs N]
//
// Modes:
//
//	core  — call Collector.SubmitBatch directly from -conns goroutines —
//	        the same batched entry point the HTTP server's chunked
//	        decoder uses — so the loop prices the shipped ingest path
//	        with no HTTP or JSON around it.
//	http  — POST /api/readings batches (streaming-decoded server side)
//	        against an in-process listener, or -target if given.
//	durability — the core ingest loop twice on the sharded collector,
//	        once with the crash-safe trust store (internal/store) attached
//	        and once without, while a background closer flushes epochs
//	        every 100ms. The WAL sits off the submit hot path by design —
//	        score appends happen at epoch close — so the record's
//	        "durability_overhead_pct" prices exactly what durability costs
//	        the core path (SLO: p99 ≤ 15%).
//	trace — the http ingest path with the RED middleware and tracer
//	        attached, run at head-sampling ratios 0, 0.01 and 1: every
//	        reading carries a traceparent whose sampled flag follows the
//	        ratio, so the scenario prices span recording + export-path
//	        bookkeeping. The record carries p50/p99 deltas vs the
//	        sampling-disabled run in "trace_overhead_pct".
//	both  — run core, http, trace and durability (default).
//
// -scenario=stream switches to the fleet streaming harness (stream.go):
// a 10k-sensor closed loop through the batched shared-FFT service vs the
// unshared per-sensor DSP path, recorded to BENCH_8.json with the
// batched speedup, frame latency percentiles and steady-state
// allocs/frame. -scaling-sweep additionally reruns the scenario's core
// loop at GOMAXPROCS 1/2/4/NumCPU and records the per-core curve; every
// scenario is stamped with the GOMAXPROCS it actually ran at, and runs
// on a 1-CPU machine are stamped "single_core" so compare tooling skips
// speedup assertions for them. With no -scenario, -scaling-sweep sweeps
// the collector's core ingest loop and writes the curve — plus an
// allocs-per-reading comparison of the batched vs per-reading submit
// entry points — as a BENCH_10.json record (bench 10).
//
// -scenario=replica switches to the multi-replica collector harness
// (replica.go): the http closed loop against in-process rings of 1, 2
// and up to -replicas members with round-robin entry, recorded to
// BENCH_9.json with per-size throughput and the routing-tax ratio vs a
// single replica, gated on ring-vs-single byte equivalence.
//
// Before any timed run, loadgen replays one deterministic workload into
// collectors at the baseline and sharded stripe counts — and through
// both the per-reading and batched submit entry points — and verifies
// that CloseEpochs anomalies, Fleet and History are identical: the
// merge-determinism contract the sharding and batch grouping rely on.
// The bench record carries the verdict in "equivalence_ok".
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sensorcal/internal/obs"
	"sensorcal/internal/store"
	"sensorcal/internal/trust"
)

// config is everything a run needs; flags populate it in main and tests
// populate it directly.
type config struct {
	Mode           string        `json:"mode"`
	Shards         int           `json:"shards"`
	BaselineShards int           `json:"baseline_shards"`
	Conns          int           `json:"conns"`
	Batch          int           `json:"batch"`
	Nodes          int           `json:"nodes"`
	Signals        int           `json:"signals"`
	Duration       time.Duration `json:"-"`
	DurationS      float64       `json:"duration_s"`
	Dedup          bool          `json:"dedup"`
	Target         string        `json:"target,omitempty"`
	Out            string        `json:"-"`

	// Scenario selects an alternative harness: "" is the trust-collector
	// bench above; "stream" drives the fleet streaming spectrum service
	// (see stream.go) and writes BENCH_8.json; "replica" drives the
	// multi-replica collector ring (see replica.go) and writes
	// BENCH_9.json.
	Scenario string `json:"scenario,omitempty"`
	// Replicas is the largest ring size for the replica scenario.
	Replicas int `json:"replicas,omitempty"`
	// Sensors is the simulated fleet size for the stream scenario.
	Sensors int `json:"sensors,omitempty"`
	// StreamFFT is the streaming frame length.
	StreamFFT int `json:"stream_fft,omitempty"`
	// ScalingSweep reruns the scenario's core closed loop at GOMAXPROCS
	// 1/2/4/NumCPU and records the per-core scaling curve.
	ScalingSweep bool `json:"scaling_sweep,omitempty"`
}

// scenarioResult is one timed run of one collector configuration.
type scenarioResult struct {
	Name          string  `json:"name"`
	Mode          string  `json:"mode"`
	Shards        int     `json:"shards"`
	Conns         int     `json:"conns"`
	Batch         int     `json:"batch"`
	Readings      int64   `json:"readings"`
	Errors        int64   `json:"errors"`
	ElapsedS      float64 `json:"elapsed_s"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// Procs is the GOMAXPROCS this scenario actually ran at — stamped
	// per scenario because -scaling-sweep varies it within one record.
	Procs int `json:"gomaxprocs"`
	// Latency of one batch through the ingest path (the full request in
	// http mode), milliseconds.
	P50ms float64 `json:"p50_ms"`
	P99ms float64 `json:"p99_ms"`
}

// benchOutput is the BENCH_7.json record. The "schema" field names the
// layout so later BENCH_N.json files can evolve it detectably.
type benchOutput struct {
	Bench         int              `json:"bench"`
	Schema        string           `json:"schema"`
	GeneratedAt   time.Time        `json:"generated_at"`
	GoVersion     string           `json:"go_version"`
	GOMAXPROCS    int              `json:"gomaxprocs"`
	NumCPU        int              `json:"num_cpu"`
	Config        config           `json:"config"`
	EquivalenceOK bool             `json:"equivalence_ok"`
	// SingleCore marks records produced on a 1-CPU machine. Scaling and
	// speedup numbers from such a run say nothing about parallelism, so
	// bench-compare tooling (cmd/benchcheck) skips speedup assertions
	// when it is set.
	SingleCore bool `json:"single_core,omitempty"`
	Scenarios     []scenarioResult `json:"scenarios"`
	// Speedup maps mode → sharded throughput / baseline throughput.
	Speedup map[string]float64 `json:"speedup,omitempty"`
	// TraceOverhead maps "p50@<ratio>"/"p99@<ratio>" → percent latency
	// delta of the trace scenario at that sampling ratio vs sampling
	// disabled (ratio 0). The SLO for this repo is p99@0.01 ≤ 5%.
	TraceOverhead map[string]float64 `json:"trace_overhead_pct,omitempty"`
	// DurabilityOverhead maps p50/p99 → percent core-path latency delta
	// with the segment WAL attached vs without. The SLO is p99 ≤ 15%:
	// durable trust must not tax the ingest hot path, because appends
	// happen at epoch close, not per reading.
	DurabilityOverhead map[string]float64 `json:"durability_overhead_pct,omitempty"`
	// StreamAllocsPerFrame is the stream scenario's steady-state heap
	// objects per frame through the batched service (target: ≈ 0).
	StreamAllocsPerFrame float64 `json:"stream_allocs_per_frame,omitempty"`
	// ScalingCurve is the -scaling-sweep result: the scenario's core
	// closed loop rerun at GOMAXPROCS 1/2/4/NumCPU.
	ScalingCurve []scalingPoint `json:"scaling_curve,omitempty"`
	// AllocsPerSubmit prices the two ingest entry points in steady-state
	// heap allocations per reading: "batched" (SubmitBatch, the shipped
	// server path) and "per_reading" (SubmitDedup). The batch path's
	// regrouping must be paid from pooled scratch, so the gate is
	// batched ≤ per_reading — meaningful even on a single-core host.
	AllocsPerSubmit map[string]float64 `json:"allocs_per_submit,omitempty"`
}

// splitmix is a tiny seedable PRNG so workers don't share rand state.
type splitmix uint64

func (s *splitmix) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

var benchBase = time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)

func nodeID(n int) trust.NodeID { return trust.NodeID("node-" + strconv.Itoa(n)) }
func signalID(s int) string     { return "tv-" + strconv.Itoa(500+s) }

// newCollector builds an in-process collector with the workload's nodes
// registered.
func newCollector(cfg config, shards int) (*trust.Collector, error) {
	c := trust.NewShardedCollector(shards)
	for n := 0; n < cfg.Nodes; n++ {
		if err := c.Ledger.Register(trust.Node{ID: nodeID(n), Registered: benchBase}); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// reading synthesizes the i-th reading of worker w: nodes and signals
// rotate so stripes are exercised evenly, timestamps cycle through four
// epoch windows so pending state stays bounded however long the run is.
func reading(cfg config, w, i int, rng *splitmix, key []byte) (trust.Reading, []byte) {
	r := trust.Reading{
		Node:     nodeID(int(rng.next() % uint64(cfg.Nodes))),
		SignalID: signalID(int(rng.next() % uint64(cfg.Signals))),
		PowerDBm: -60 + float64(rng.next()%16),
		At:       benchBase.Add(time.Duration(i%4) * time.Minute),
	}
	if cfg.Dedup {
		key = key[:0]
		key = append(key, 'w')
		key = strconv.AppendInt(key, int64(w), 10)
		key = append(key, '-')
		key = strconv.AppendInt(key, int64(i), 10)
		r.Key = string(key)
	}
	return r, key
}

// runClosedLoop fans cfg.Conns workers over submit, each submitting
// batches until the deadline, and merges counts and per-batch latencies.
func runClosedLoop(cfg config, submit func(w int, batchIdx int, rng *splitmix) (int, error)) (int64, int64, []float64, float64) {
	var (
		readings atomic.Int64
		errs     atomic.Int64
		wg       sync.WaitGroup
		latMu    sync.Mutex
		lats     []float64
	)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for w := 0; w < cfg.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := splitmix(0xfeed + uint64(w)*0x1234567)
			var local []float64
			for b := 0; time.Now().Before(deadline); b++ {
				t0 := time.Now()
				n, err := submit(w, b, &rng)
				local = append(local, time.Since(t0).Seconds())
				readings.Add(int64(n))
				if err != nil {
					errs.Add(1)
				}
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}(w)
	}
	wg.Wait()
	return readings.Load(), errs.Load(), lats, time.Since(start).Seconds()
}

func percentileMS(lats []float64, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sort.Float64s(lats)
	idx := int(p*float64(len(lats)-1) + 0.5)
	return lats[idx] * 1000
}

func result(name, mode string, cfg config, shards int, readings, errs int64, lats []float64, elapsed float64) scenarioResult {
	r := scenarioResult{
		Name: name, Mode: mode, Shards: shards,
		Conns: cfg.Conns, Batch: cfg.Batch,
		Readings: readings, Errors: errs, ElapsedS: elapsed,
		P50ms: percentileMS(lats, 0.50), P99ms: percentileMS(lats, 0.99),
		Procs: runtime.GOMAXPROCS(0),
	}
	if elapsed > 0 {
		r.ThroughputRPS = float64(readings) / elapsed
	}
	return r
}

// coreScratch is one worker's reusable batch state for the direct
// (no-HTTP) ingest loops.
type coreScratch struct {
	batch []trust.Reading
	outs  []trust.SubmitOutcome
	key   []byte
}

// runCoreLoop drives the closed loop straight into c.SubmitBatch — the
// same batched entry point the HTTP server's chunked decoder and the
// replica router's local partition use, so the bench measures the
// shipped ingest path rather than a parallel per-reading loop.
func runCoreLoop(cfg config, c *trust.Collector) (int64, int64, []float64, float64) {
	pool := sync.Pool{New: func() interface{} {
		return &coreScratch{batch: make([]trust.Reading, 0, cfg.Batch), key: make([]byte, 0, 24)}
	}}
	return runClosedLoop(cfg, func(w, b int, rng *splitmix) (int, error) {
		sc := pool.Get().(*coreScratch)
		defer pool.Put(sc)
		sc.batch = sc.batch[:0]
		for i := 0; i < cfg.Batch; i++ {
			var r trust.Reading
			r, sc.key = reading(cfg, w, b*cfg.Batch+i, rng, sc.key)
			sc.batch = append(sc.batch, r)
		}
		sc.outs = c.SubmitBatch(sc.batch, sc.outs)
		for i := range sc.outs {
			if err := sc.outs[i].Err; err != nil {
				return cfg.Batch, err
			}
		}
		return cfg.Batch, nil
	})
}

// runCore times the direct ingest hot path with no HTTP or JSON around
// it, where lock striping and batch grouping are the only variables.
func runCore(cfg config, shards int) (scenarioResult, error) {
	c, err := newCollector(cfg, shards)
	if err != nil {
		return scenarioResult{}, err
	}
	readings, errs, lats, elapsed := runCoreLoop(cfg, c)
	// Close everything once, untimed: proves the ingested state drains.
	c.CloseEpochs(benchBase.Add(time.Hour))
	name := fmt.Sprintf("core/shards=%d", shards)
	return result(name, "core", cfg, shards, readings, errs, lats, elapsed), nil
}

// measureSubmitAllocs prices the two ingest entry points in steady-state
// heap allocations per reading: the same deterministic workload through
// SubmitBatch ("batched") and through per-reading SubmitDedup
// ("per_reading"), each on its own warm collector, single-threaded, with
// runtime.MemStats around the measured segment. cmd/benchcheck gates
// batched ≤ per_reading — the batch path's regrouping scratch must stay
// pooled, not paid per call.
func measureSubmitAllocs(cfg config) (map[string]float64, error) {
	const warm, measured = 20000, 50000
	measure := func(batched bool) (float64, error) {
		c, err := newCollector(cfg, cfg.Shards)
		if err != nil {
			return 0, err
		}
		rng := splitmix(0xa110c)
		sc := coreScratch{batch: make([]trust.Reading, 0, cfg.Batch), key: make([]byte, 0, 24)}
		idx := 0
		submitChunk := func() error {
			sc.batch = sc.batch[:0]
			for i := 0; i < cfg.Batch; i++ {
				var r trust.Reading
				r, sc.key = reading(cfg, 0, idx, &rng, sc.key)
				idx++
				sc.batch = append(sc.batch, r)
			}
			if batched {
				sc.outs = c.SubmitBatch(sc.batch, sc.outs)
				for i := range sc.outs {
					if sc.outs[i].Err != nil {
						return sc.outs[i].Err
					}
				}
				return nil
			}
			for _, r := range sc.batch {
				if _, err := c.SubmitDedup(r); err != nil {
					return err
				}
			}
			return nil
		}
		for idx < warm {
			if err := submitChunk(); err != nil {
				return 0, err
			}
		}
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := idx
		for idx-start < measured {
			if err := submitChunk(); err != nil {
				return 0, err
			}
		}
		runtime.ReadMemStats(&m1)
		return float64(m1.Mallocs-m0.Mallocs) / float64(idx-start), nil
	}
	batched, err := measure(true)
	if err != nil {
		return nil, err
	}
	perReading, err := measure(false)
	if err != nil {
		return nil, err
	}
	return map[string]float64{"batched": batched, "per_reading": perReading}, nil
}

// runHTTP times POST /api/readings batches. With no -target an
// in-process httptest server hosts the collector, so the measurement
// includes the streaming batch decoder and response encoding.
func runHTTP(cfg config, shards int) (scenarioResult, error) {
	base := cfg.Target
	name := fmt.Sprintf("http/shards=%d", shards)
	client := http.DefaultClient
	if base == "" {
		c, err := newCollector(cfg, shards)
		if err != nil {
			return scenarioResult{}, err
		}
		srv := httptest.NewServer(c.Handler(time.Now))
		defer srv.Close()
		base = srv.URL
		client = srv.Client()
	} else {
		name = "http/target"
		if err := registerRemote(base, cfg.Nodes); err != nil {
			return scenarioResult{}, err
		}
	}
	url := base + "/api/readings"
	type wire struct {
		Node     string    `json:"node"`
		SignalID string    `json:"signal_id"`
		PowerDBm float64   `json:"power_dbm"`
		At       time.Time `json:"at"`
		Key      string    `json:"key,omitempty"`
	}
	var bufPool = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}
	readings, errs, lats, elapsed := runClosedLoop(cfg, func(w, b int, rng *splitmix) (int, error) {
		buf := bufPool.Get().(*bytes.Buffer)
		defer bufPool.Put(buf)
		buf.Reset()
		var key []byte
		batch := make([]wire, cfg.Batch)
		for i := range batch {
			var r trust.Reading
			r, key = reading(cfg, w, b*cfg.Batch+i, rng, key)
			batch[i] = wire{Node: string(r.Node), SignalID: r.SignalID, PowerDBm: r.PowerDBm, At: r.At, Key: r.Key}
		}
		if err := json.NewEncoder(buf).Encode(batch); err != nil {
			return 0, err
		}
		resp, err := client.Post(url, "application/json", buf)
		if err != nil {
			return cfg.Batch, err
		}
		var summary struct {
			Accepted   int `json:"accepted"`
			Duplicates int `json:"duplicates"`
			Rejected   int `json:"rejected"`
		}
		err = json.NewDecoder(resp.Body).Decode(&summary)
		resp.Body.Close()
		if err != nil {
			return cfg.Batch, err
		}
		if resp.StatusCode != http.StatusAccepted {
			return cfg.Batch, fmt.Errorf("status %d", resp.StatusCode)
		}
		if summary.Rejected > 0 {
			return cfg.Batch, fmt.Errorf("%d readings rejected", summary.Rejected)
		}
		return cfg.Batch, nil
	})
	return result(name, "http", cfg, shards, readings, errs, lats, elapsed), nil
}

// registerRemote enrolls the workload nodes on a live collector,
// tolerating 409 from earlier runs.
func registerRemote(base string, nodes int) error {
	for n := 0; n < nodes; n++ {
		body, _ := json.Marshal(map[string]interface{}{
			"id": string(nodeID(n)), "operator": "loadgen", "hardware": "synthetic",
		})
		resp, err := http.Post(base+"/api/register", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("registering %s: %w", nodeID(n), err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
			return fmt.Errorf("registering %s: status %d", nodeID(n), resp.StatusCode)
		}
	}
	return nil
}

// traceRatios are the head-sampling ratios the trace-overhead scenario
// prices: disabled, the production default (1%), and worst-case (all).
var traceRatios = []float64{0, 0.01, 1}

// traceRounds is how many interleaved rounds each sampling ratio runs.
// One contiguous block per ratio would fold machine drift into the
// deltas; round-robin rounds expose every ratio to the same drift, and
// taking the median of per-round percentiles keeps one noisy round from
// poisoning the tail comparison.
const traceRounds = 5

// traceSetup is one live collector+server pinned to a sampling ratio,
// accumulating latencies across its interleaved rounds.
type traceSetup struct {
	ratio     float64
	threshold uint64
	srv       *httptest.Server
	client    *http.Client
	url       string

	readings  int64
	errs      int64
	roundLats [][]float64
	elapsed   float64
}

func newTraceSetup(cfg config, ratio float64) (*traceSetup, error) {
	c, err := newCollector(cfg, cfg.Shards)
	if err != nil {
		return nil, err
	}
	c.Obs = obs.NewRegistry()
	c.Tracer = obs.NewTracer(obs.DefaultTraceCapacity)
	c.Tracer.Instrument(c.Obs)
	srv := httptest.NewServer(c.Handler(time.Now))
	s := &traceSetup{ratio: ratio, srv: srv, client: srv.Client(), url: srv.URL + "/api/readings"}
	if ratio >= 1 {
		s.threshold = ^uint64(0)
	} else if ratio > 0 {
		s.threshold = uint64(ratio * float64(^uint64(0)))
	}
	return s, nil
}

// round runs one timed closed loop against the setup and accumulates the
// results. keyEpoch offsets idempotency keys so later rounds against the
// same collector are not silently absorbed as dedup hits.
func (s *traceSetup) round(cfg config, keyEpoch int) error {
	type wire struct {
		Node     string    `json:"node"`
		SignalID string    `json:"signal_id"`
		PowerDBm float64   `json:"power_dbm"`
		At       time.Time `json:"at"`
		Key      string    `json:"key,omitempty"`
		Trace    string    `json:"trace,omitempty"`
	}
	var bufPool = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}
	readings, errs, lats, elapsed := runClosedLoop(cfg, func(w, b int, rng *splitmix) (int, error) {
		buf := bufPool.Get().(*bytes.Buffer)
		defer bufPool.Put(buf)
		buf.Reset()
		var key []byte
		batch := make([]wire, cfg.Batch)
		for i := range batch {
			var r trust.Reading
			r, key = reading(cfg, w, (keyEpoch<<24|b)*cfg.Batch+i, rng, key)
			flags := "00"
			if s.ratio >= 1 || (s.threshold > 0 && rng.next() < s.threshold) {
				flags = "01"
			}
			batch[i] = wire{
				Node: string(r.Node), SignalID: r.SignalID, PowerDBm: r.PowerDBm, At: r.At, Key: r.Key,
				// |1 keeps the IDs nonzero, which the parser rejects.
				Trace: fmt.Sprintf("00-%016x%016x-%016x-%s",
					rng.next()|1, rng.next()|1, rng.next()|1, flags),
			}
		}
		if err := json.NewEncoder(buf).Encode(batch); err != nil {
			return 0, err
		}
		resp, err := s.client.Post(s.url, "application/json", buf)
		if err != nil {
			return cfg.Batch, err
		}
		var summary struct {
			Rejected int `json:"rejected"`
		}
		err = json.NewDecoder(resp.Body).Decode(&summary)
		resp.Body.Close()
		if err != nil {
			return cfg.Batch, err
		}
		if resp.StatusCode != http.StatusAccepted {
			return cfg.Batch, fmt.Errorf("status %d", resp.StatusCode)
		}
		if summary.Rejected > 0 {
			return cfg.Batch, fmt.Errorf("%d readings rejected", summary.Rejected)
		}
		return cfg.Batch, nil
	})
	s.readings += readings
	s.errs += errs
	s.roundLats = append(s.roundLats, lats)
	s.elapsed += elapsed
	return nil
}

// medianPercentileMS computes the percentile within each round, then
// takes the median across rounds: robust to one round landing on a GC
// pause or a noisy-neighbor burst.
func medianPercentileMS(rounds [][]float64, p float64) float64 {
	per := make([]float64, 0, len(rounds))
	for _, lats := range rounds {
		if len(lats) > 0 {
			per = append(per, percentileMS(lats, p))
		}
	}
	if len(per) == 0 {
		return 0
	}
	sort.Float64s(per)
	return per[len(per)/2]
}

// runTraceOverhead times the http ingest path with the RED middleware
// and a live tracer at every sampling ratio. Every reading carries a
// traceparent — as agent submissions do — whose sampled flag follows the
// ratio, the same head decision agentd roots, so the collector pays for
// remote-span recording on exactly that fraction of readings. Ratios run
// in interleaved rounds; the pooled latencies yield percent p50/p99
// deltas against the sampling-disabled run.
func runTraceOverhead(cfg config, out *benchOutput) error {
	setups := make([]*traceSetup, 0, len(traceRatios))
	defer func() {
		for _, s := range setups {
			s.srv.Close()
		}
	}()
	for _, ratio := range traceRatios {
		s, err := newTraceSetup(cfg, ratio)
		if err != nil {
			return err
		}
		setups = append(setups, s)
	}
	for round := 0; round < traceRounds; round++ {
		// Rotate the starting ratio so within-round drift (cache warmth,
		// neighbor load ramping) doesn't always favor the same setup.
		for j := range setups {
			s := setups[(round+j)%len(setups)]
			if err := s.round(cfg, round); err != nil {
				return err
			}
		}
	}
	var base scenarioResult
	for i, s := range setups {
		res := result(fmt.Sprintf("trace/sample=%g", s.ratio), "trace",
			cfg, cfg.Shards, s.readings, s.errs, nil, s.elapsed)
		res.P50ms = medianPercentileMS(s.roundLats, 0.50)
		res.P99ms = medianPercentileMS(s.roundLats, 0.99)
		out.Scenarios = append(out.Scenarios, res)
		if i == 0 {
			base = res
			continue
		}
		if out.TraceOverhead == nil {
			out.TraceOverhead = map[string]float64{}
		}
		if base.P50ms > 0 {
			out.TraceOverhead[fmt.Sprintf("p50@%g", s.ratio)] = 100 * (res.P50ms - base.P50ms) / base.P50ms
		}
		if base.P99ms > 0 {
			out.TraceOverhead[fmt.Sprintf("p99@%g", s.ratio)] = 100 * (res.P99ms - base.P99ms) / base.P99ms
		}
	}
	return nil
}

// runDurability prices the crash-safe trust store: the same core closed
// loop with and without a TrustLog attached, each under a background
// closer flushing epochs every 100ms so WAL appends and fsyncs actually
// happen during the timed window. Submit itself never touches the WAL —
// the comparison proves it.
func runDurability(cfg config, out *benchOutput) error {
	scenario := func(name string, withWAL bool) (scenarioResult, error) {
		c, err := newCollector(cfg, cfg.Shards)
		if err != nil {
			return scenarioResult{}, err
		}
		if withWAL {
			dir, err := os.MkdirTemp("", "loadgen-wal-*")
			if err != nil {
				return scenarioResult{}, err
			}
			defer os.RemoveAll(dir)
			tl, err := store.OpenTrustLog(dir, store.Options{})
			if err != nil {
				return scenarioResult{}, err
			}
			defer tl.Close()
			c.Store = tl
		}
		// The far-future cutoff closes every pending window, so each
		// closer pass appends (and fsyncs) one score batch.
		cl := c.StartCloser(trust.CloserConfig{
			Interval: 100 * time.Millisecond,
			Run: func(time.Time) []trust.Anomaly {
				return c.CloseEpochs(benchBase.Add(time.Hour))
			},
		})
		readings, errs, lats, elapsed := runCoreLoop(cfg, c)
		cl.Stop()
		c.CloseEpochs(benchBase.Add(2 * time.Hour))
		return result(name, "durability", cfg, cfg.Shards, readings, errs, lats, elapsed), nil
	}
	off, err := scenario("durability/wal=off", false)
	if err != nil {
		return err
	}
	on, err := scenario("durability/wal=on", true)
	if err != nil {
		return err
	}
	out.Scenarios = append(out.Scenarios, off, on)
	out.DurabilityOverhead = map[string]float64{}
	if off.P50ms > 0 {
		out.DurabilityOverhead["p50"] = 100 * (on.P50ms - off.P50ms) / off.P50ms
	}
	if off.P99ms > 0 {
		out.DurabilityOverhead["p99"] = 100 * (on.P99ms - off.P99ms) / off.P99ms
	}
	return nil
}

// waitReady polls a live collector's /readyz until it reports ready, so
// runs against a freshly started daemon begin when the ledger is
// restored and the store healthy instead of after an arbitrary sleep.
func waitReady(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last string
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = resp.Status
		} else {
			last = err.Error()
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("target %s not ready after %s (last: %s)", base, timeout, last)
}

// checkEquivalence replays one deterministic workload into collectors at
// both stripe counts — and, at the sharded count, through both submit
// entry points (per-reading SubmitDedup and chunked SubmitBatch) — and
// compares every merge path. This is the runtime re-statement of
// TestShardedCollectorEquivalence: the bench refuses to claim a speedup
// for a collector that changed its answers.
func checkEquivalence(cfg config) (bool, error) {
	type outcome struct {
		anomalies []trust.Anomaly
		fleet     []trust.NodeActivity
		history   map[string][]trust.Epoch
	}
	// One deterministic workload, generated once, replayed identically
	// into every collector under test.
	var readings []trust.Reading
	rng := splitmix(0xabcdef)
	for w := 0; w < 6; w++ {
		at := benchBase.Add(time.Duration(w) * time.Minute)
		trend := float64(rng.next()%12) - 6
		for s := 0; s < cfg.Signals; s++ {
			for n := 0; n < cfg.Nodes; n++ {
				p := -55 + trend + float64(rng.next()%5) - 2
				if n == 0 {
					p = -10 // flagrant over-consensus inflation
				}
				readings = append(readings, trust.Reading{
					Node: nodeID(n), SignalID: signalID(s), PowerDBm: p, At: at,
					Key: fmt.Sprintf("eq-%d-%d-%d", w, s, n),
				})
			}
		}
	}
	run := func(shards int, batched bool) (outcome, error) {
		c, err := newCollector(cfg, shards)
		if err != nil {
			return outcome{}, err
		}
		if batched {
			// Chunk size 7 is deliberately co-prime with every stripe
			// count so chunk boundaries never align with stripe layout.
			var outs []trust.SubmitOutcome
			for i := 0; i < len(readings); i += 7 {
				end := i + 7
				if end > len(readings) {
					end = len(readings)
				}
				outs = c.SubmitBatch(readings[i:end], outs)
				for k := range outs {
					if outs[k].Err != nil {
						return outcome{}, outs[k].Err
					}
				}
			}
		} else {
			for _, r := range readings {
				if _, err := c.SubmitDedup(r); err != nil {
					return outcome{}, err
				}
			}
		}
		o := outcome{
			anomalies: c.CloseEpochs(benchBase.Add(time.Hour)),
			fleet:     c.Fleet(),
			history:   map[string][]trust.Epoch{},
		}
		for s := 0; s < cfg.Signals; s++ {
			o.history[signalID(s)] = c.History(signalID(s))
		}
		return o, nil
	}
	// The deterministic replay needs identical submission order at every
	// stripe count, so it runs single-threaded by construction.
	want, err := run(cfg.BaselineShards, false)
	if err != nil {
		return false, err
	}
	got, err := run(cfg.Shards, false)
	if err != nil {
		return false, err
	}
	gotBatch, err := run(cfg.Shards, true)
	if err != nil {
		return false, err
	}
	same := func(o outcome) bool {
		return reflect.DeepEqual(want.anomalies, o.anomalies) &&
			reflect.DeepEqual(want.fleet, o.fleet) &&
			reflect.DeepEqual(want.history, o.history)
	}
	ok := len(want.anomalies) > 0 && same(got) && same(gotBatch)
	return ok, nil
}

// run executes the configured scenarios and returns the bench record.
func run(cfg config) (*benchOutput, error) {
	cfg.DurationS = cfg.Duration.Seconds()
	out := &benchOutput{
		Bench:       7,
		Schema:      "sensorcal-bench/v1",
		GeneratedAt: time.Now().UTC(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		SingleCore:  runtime.NumCPU() == 1,
		Config:      cfg,
		Speedup:     map[string]float64{},
	}
	switch cfg.Scenario {
	case "":
		// Fall through to the trust-collector bench below.
	case "stream":
		if err := runStream(cfg, out); err != nil {
			return nil, err
		}
		return out, nil
	case "replica":
		if err := runReplica(cfg, out); err != nil {
			return nil, err
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unknown -scenario %q (want stream or replica)", cfg.Scenario)
	}

	// cfg with reduced sizes is built inside checkEquivalence.
	eq, err := checkEquivalence(configForEquivalence(cfg))
	if err != nil {
		return nil, fmt.Errorf("equivalence replay: %w", err)
	}
	out.EquivalenceOK = eq

	if cfg.Target != "" {
		// A live daemon may still be replaying its WAL; begin when it says
		// ready, not after a guessed sleep.
		if err := waitReady(cfg.Target, 30*time.Second); err != nil {
			return nil, err
		}
	}
	type runner func(config, int) (scenarioResult, error)
	modes := map[string]runner{}
	trace, durability := false, false
	switch cfg.Mode {
	case "core":
		modes["core"] = runCore
	case "http":
		modes["http"] = runHTTP
	case "trace":
		trace = true
	case "durability":
		durability = true
	case "both":
		modes["core"] = runCore
		modes["http"] = runHTTP
		trace = true
		durability = true
	default:
		return nil, fmt.Errorf("unknown -mode %q (want core, http, trace, durability or both)", cfg.Mode)
	}
	for _, mode := range []string{"core", "http"} {
		fn, ok := modes[mode]
		if !ok {
			continue
		}
		if mode == "http" && cfg.Target != "" {
			// A live target decides its own shard count; one scenario.
			res, err := fn(cfg, 0)
			if err != nil {
				return nil, err
			}
			out.Scenarios = append(out.Scenarios, res)
			continue
		}
		baseline, err := fn(cfg, cfg.BaselineShards)
		if err != nil {
			return nil, err
		}
		sharded, err := fn(cfg, cfg.Shards)
		if err != nil {
			return nil, err
		}
		out.Scenarios = append(out.Scenarios, baseline, sharded)
		if baseline.ThroughputRPS > 0 {
			out.Speedup[mode] = sharded.ThroughputRPS / baseline.ThroughputRPS
		}
	}
	if _, ok := modes["core"]; ok && cfg.Target == "" {
		if cfg.ScalingSweep {
			// A sweep over the ingest core loop is the multi-core scaling
			// record: stamp it as its own bench so compare tooling can
			// gate the curve independently of the BENCH_7 trajectory.
			out.Bench = 10
			curve, err := runScalingSweep(cfg, func(c config) (scenarioResult, error) {
				return runCore(c, c.Shards)
			})
			if err != nil {
				return nil, err
			}
			out.ScalingCurve = curve
		}
		allocs, err := measureSubmitAllocs(configForEquivalence(cfg))
		if err != nil {
			return nil, fmt.Errorf("allocs measurement: %w", err)
		}
		out.AllocsPerSubmit = allocs
	}
	if trace {
		// Always in-process: the scenario prices this build's middleware
		// and tracer, not a remote daemon's.
		if err := runTraceOverhead(cfg, out); err != nil {
			return nil, err
		}
	}
	if durability {
		if err := runDurability(cfg, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// configForEquivalence shrinks the workload for the serial replay so it
// stays fast at any -nodes/-signals setting.
func configForEquivalence(cfg config) config {
	if cfg.Nodes > 16 {
		cfg.Nodes = 16
	}
	if cfg.Signals > 8 {
		cfg.Signals = 8
	}
	return cfg
}

func writeOutput(path string, out *benchOutput) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	log := obs.NewLogger("loadgen")
	cfg := config{}
	flag.StringVar(&cfg.Mode, "mode", "both", "core, http, trace, durability or both")
	flag.IntVar(&cfg.Shards, "shards", 16, "stripe count for the sharded scenario")
	flag.IntVar(&cfg.BaselineShards, "baseline-shards", 1, "stripe count for the baseline scenario")
	flag.IntVar(&cfg.Conns, "conns", 8, "concurrent client goroutines")
	flag.IntVar(&cfg.Batch, "batch", 64, "readings per batch")
	flag.IntVar(&cfg.Nodes, "nodes", 256, "registered nodes in the synthetic fleet")
	flag.IntVar(&cfg.Signals, "signals", 64, "shared reference signals")
	flag.DurationVar(&cfg.Duration, "duration", 3*time.Second, "timed duration per scenario")
	flag.BoolVar(&cfg.Dedup, "dedup", true, "attach idempotency keys to every reading")
	flag.StringVar(&cfg.Target, "target", "", "live collector base URL (http mode only; empty = in-process)")
	flag.StringVar(&cfg.Out, "out", "", "bench record output path (default BENCH_7.json; BENCH_8.json for -scenario=stream, BENCH_9.json for -scenario=replica)")
	flag.StringVar(&cfg.Scenario, "scenario", "", "alternative harness: stream (fleet streaming spectrum service) or replica (multi-replica collector ring)")
	flag.IntVar(&cfg.Replicas, "replicas", 4, "largest ring size for the replica scenario")
	flag.IntVar(&cfg.Sensors, "sensors", 10000, "simulated sensor fleet size (stream scenario)")
	flag.IntVar(&cfg.StreamFFT, "stream-fft", 256, "streaming frame length in samples (stream scenario)")
	flag.BoolVar(&cfg.ScalingSweep, "scaling-sweep", false, "rerun the core closed loop at GOMAXPROCS 1/2/4/NumCPU and record the per-core curve")
	maxprocs := flag.Int("gomaxprocs", 0, "pin runtime.GOMAXPROCS for the run (0: leave the runtime default)")
	flag.Parse()
	if *maxprocs > 0 {
		runtime.GOMAXPROCS(*maxprocs)
	}
	if cfg.Out == "" {
		switch {
		case cfg.Scenario == "stream":
			cfg.Out = "BENCH_8.json"
		case cfg.Scenario == "replica":
			cfg.Out = "BENCH_9.json"
		case cfg.ScalingSweep:
			// The ingest multi-core scaling record is its own bench.
			cfg.Out = "BENCH_10.json"
		default:
			cfg.Out = "BENCH_7.json"
		}
	}

	out, err := run(cfg)
	if err != nil {
		log.Fatalf("%v", err)
	}
	if !out.EquivalenceOK {
		log.Errorf("EQUIVALENCE FAILED: sharded collector diverges from the single-lock baseline")
	}
	for _, s := range out.Scenarios {
		log.Infof("%-18s %10.0f readings/s  p50 %.3fms  p99 %.3fms  (%d readings, %d errors)",
			s.Name, s.ThroughputRPS, s.P50ms, s.P99ms, s.Readings, s.Errors)
	}
	for mode, sp := range out.Speedup {
		switch cfg.Scenario {
		case "stream":
			log.Infof("%s speedup: %.2fx (batched service vs per-sensor serial)", mode, sp)
		case "replica":
			log.Infof("%s throughput ratio: %.2fx vs a single replica (routing tax)", mode, sp)
		default:
			log.Infof("%s speedup: %.2fx (shards=%d vs shards=%d)", mode, sp, cfg.Shards, cfg.BaselineShards)
		}
	}
	keys := make([]string, 0, len(out.TraceOverhead))
	for k := range out.TraceOverhead {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		log.Infof("trace overhead %s: %+.1f%% vs sampling disabled", k, out.TraceOverhead[k])
	}
	for _, k := range []string{"p50", "p99"} {
		if v, ok := out.DurabilityOverhead[k]; ok {
			log.Infof("durability overhead %s: %+.1f%% vs wal off", k, v)
		}
	}
	if cfg.Scenario == "stream" && cfg.Target == "" {
		log.Infof("stream steady-state allocs/frame: %.3f", out.StreamAllocsPerFrame)
	}
	for _, pt := range out.ScalingCurve {
		log.Infof("scaling gomaxprocs=%-2d %10.0f /s  (%.2fx vs 1 core)",
			pt.Procs, pt.ThroughputRPS, pt.SpeedupVs1)
	}
	if len(out.AllocsPerSubmit) > 0 {
		log.Infof("allocs/submit: batched %.2f  per-reading %.2f",
			out.AllocsPerSubmit["batched"], out.AllocsPerSubmit["per_reading"])
	}
	if cfg.Out != "" {
		if err := writeOutput(cfg.Out, out); err != nil {
			log.Fatalf("writing %s: %v", cfg.Out, err)
		}
		log.Infof("bench record written to %s", cfg.Out)
	}
	if !out.EquivalenceOK {
		os.Exit(1)
	}
}
