// The replica scenario (-scenario=replica) benches the multi-replica
// collector tier (internal/replica): an in-process ring of N spectrumd
// equivalents behind real HTTP servers, driven by the same closed-loop
// batch workload as the http mode. Batches enter through every replica
// round-robin, so roughly (N-1)/N of the readings are misrouted and
// must be proxied to their ring owner — the scenario prices exactly
// that routing tax, 1 replica vs N. Before timing anything it replays a
// deterministic workload into a single collector and into the ring and
// refuses to claim numbers if /api/fleet or the closed-epoch history
// diverge (the tier's byte-identical contract).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"time"

	"sensorcal/internal/obs"
	"sensorcal/internal/replica"
	"sensorcal/internal/trust"
)

// replicaRing is an in-process N-member collector ring.
type replicaRing struct {
	nodes []*replica.Node
	cols  []*trust.Collector
	srvs  []*httptest.Server
}

func (r *replicaRing) close() {
	for _, s := range r.srvs {
		s.Close()
	}
}

// coordinator returns the merge-close coordinator's node.
func (r *replicaRing) coordinator() *replica.Node {
	for _, n := range r.nodes {
		if n.IsCoordinator() {
			return n
		}
	}
	return r.nodes[0]
}

// newReplicaRing boots n replicas with the workload fleet pre-enrolled
// on every member (the steady state after replicated registration).
func newReplicaRing(cfg config, n int) (*replicaRing, error) {
	ring := &replicaRing{}
	members := make([]replica.Member, n)
	handlers := make([]atomic.Value, n)
	for i := 0; i < n; i++ {
		h := &handlers[i]
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			h.Load().(http.Handler).ServeHTTP(w, req)
		}))
		ring.srvs = append(ring.srvs, srv)
		members[i] = replica.Member{ID: fmt.Sprintf("r%d", i+1), URL: srv.URL}
	}
	for i := 0; i < n; i++ {
		col, err := newCollector(cfg, cfg.Shards)
		if err != nil {
			ring.close()
			return nil, err
		}
		col.Obs = obs.NewRegistry()
		col.Tracer = obs.NewTracer(16)
		node, err := replica.New(replica.Config{
			Self:      members[i].ID,
			Members:   members,
			Collector: col,
			Secret:    "loadgen-ring-secret",
			Registry:  obs.NewRegistry(),
			Tracer:    col.Tracer,
		})
		if err != nil {
			ring.close()
			return nil, err
		}
		ring.nodes = append(ring.nodes, node)
		ring.cols = append(ring.cols, col)
		handlers[i].Store(node.Handler())
	}
	return ring, nil
}

// runReplicaLoop times the closed-loop batch workload against an
// n-replica ring, workers spread round-robin across entry replicas.
func runReplicaLoop(cfg config, n int) (scenarioResult, error) {
	ring, err := newReplicaRing(cfg, n)
	if err != nil {
		return scenarioResult{}, err
	}
	defer ring.close()
	type wire struct {
		Node     string    `json:"node"`
		SignalID string    `json:"signal_id"`
		PowerDBm float64   `json:"power_dbm"`
		At       time.Time `json:"at"`
		Key      string    `json:"key,omitempty"`
	}
	urls := make([]string, n)
	for i, srv := range ring.srvs {
		urls[i] = srv.URL + "/api/readings"
	}
	client := ring.srvs[0].Client()
	readings, errs, lats, elapsed := runClosedLoop(cfg, func(w, b int, rng *splitmix) (int, error) {
		var buf bytes.Buffer
		var key []byte
		batch := make([]wire, cfg.Batch)
		for i := range batch {
			var r trust.Reading
			r, key = reading(cfg, w, b*cfg.Batch+i, rng, key)
			batch[i] = wire{Node: string(r.Node), SignalID: r.SignalID, PowerDBm: r.PowerDBm, At: r.At, Key: r.Key}
		}
		if err := json.NewEncoder(&buf).Encode(batch); err != nil {
			return 0, err
		}
		resp, err := client.Post(urls[w%len(urls)], "application/json", &buf)
		if err != nil {
			return cfg.Batch, err
		}
		var summary struct {
			Rejected int `json:"rejected"`
		}
		err = json.NewDecoder(resp.Body).Decode(&summary)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			return cfg.Batch, err
		}
		if resp.StatusCode != http.StatusAccepted {
			return cfg.Batch, fmt.Errorf("status %d", resp.StatusCode)
		}
		if summary.Rejected > 0 {
			return cfg.Batch, fmt.Errorf("%d readings rejected", summary.Rejected)
		}
		return cfg.Batch, nil
	})
	// One untimed merge close proves the ingested state drains ring-wide.
	ring.coordinator().MergeClose(benchBase.Add(time.Hour))
	name := fmt.Sprintf("replica/n=%d", n)
	return result(name, "replica", cfg, cfg.Shards, readings, errs, lats, elapsed), nil
}

// checkReplicaEquivalence replays one deterministic workload into a
// plain collector and into a ring of cfg.Replicas members (entered
// through rotating replicas, so forwarding is exercised), then compares
// /api/fleet bytes on every member, the merged anomaly list and the
// closed-epoch history. The bench record carries the verdict: a ring
// that changed the fleet's answers gets no throughput claims.
func checkReplicaEquivalence(cfg config, n int) (bool, error) {
	single, err := newCollector(cfg, cfg.Shards)
	if err != nil {
		return false, err
	}
	single.Obs = obs.NewRegistry()
	single.Tracer = obs.NewTracer(16)
	singleSrv := httptest.NewServer(single.Handler(time.Now))
	defer singleSrv.Close()
	ring, err := newReplicaRing(cfg, n)
	if err != nil {
		return false, err
	}
	defer ring.close()

	rng := splitmix(0xabcdef)
	client := ring.srvs[0].Client()
	for w := 0; w < 4; w++ {
		at := benchBase.Add(time.Duration(w) * time.Minute)
		trend := float64(rng.next()%12) - 6
		for s := 0; s < cfg.Signals; s++ {
			for nd := 0; nd < cfg.Nodes; nd++ {
				p := -55 + trend + float64(rng.next()%5) - 2
				if nd == 0 {
					p = -10 // flagrant over-consensus inflation
				}
				r := trust.Reading{
					Node: nodeID(nd), SignalID: signalID(s), PowerDBm: p, At: at,
					Key: fmt.Sprintf("eqr-%d-%d-%d", w, s, nd),
				}
				if _, err := single.SubmitDedup(r); err != nil {
					return false, err
				}
				body, _ := json.Marshal(map[string]interface{}{
					"node": string(r.Node), "signal_id": r.SignalID,
					"power_dbm": r.PowerDBm, "at": r.At, "key": r.Key,
				})
				entry := ring.srvs[(w*cfg.Signals+s)%len(ring.srvs)]
				resp, err := client.Post(entry.URL+"/api/readings", "application/json", bytes.NewReader(body))
				if err != nil {
					return false, err
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					return false, fmt.Errorf("ring submission status %d", resp.StatusCode)
				}
			}
		}
	}
	cutoff := benchBase.Add(time.Hour)
	wantAnoms := single.CloseEpochs(cutoff)
	gotAnoms := ring.coordinator().MergeClose(cutoff)
	if len(wantAnoms) == 0 || !reflect.DeepEqual(wantAnoms, gotAnoms) {
		return false, nil
	}
	fetch := func(base string) ([]byte, error) {
		resp, err := client.Get(base + "/api/fleet")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		return io.ReadAll(resp.Body)
	}
	want, err := fetch(singleSrv.URL)
	if err != nil {
		return false, err
	}
	for _, srv := range ring.srvs {
		got, err := fetch(srv.URL)
		if err != nil {
			return false, err
		}
		if !bytes.Equal(want, got) {
			return false, nil
		}
	}
	for s := 0; s < cfg.Signals; s++ {
		want := single.History(signalID(s))
		for _, col := range ring.cols {
			if !reflect.DeepEqual(want, col.History(signalID(s))) {
				return false, nil
			}
		}
	}
	return true, nil
}

// replicaCounts is the topology ladder: 1 (the routing-free baseline),
// then doublings up to the configured max.
func replicaCounts(max int) []int {
	if max < 1 {
		max = 1
	}
	counts := []int{1}
	for n := 2; n <= max; n *= 2 {
		counts = append(counts, n)
	}
	return counts
}

// runReplica is the -scenario=replica entrypoint: equivalence gate,
// then the closed loop at each ring size.
func runReplica(cfg config, out *benchOutput) error {
	out.Bench = 9
	eqCfg := configForEquivalence(cfg)
	maxN := cfg.Replicas
	if maxN < 2 {
		maxN = 2
	}
	ok, err := checkReplicaEquivalence(eqCfg, maxN)
	if err != nil {
		return fmt.Errorf("replica equivalence: %w", err)
	}
	out.EquivalenceOK = ok
	var base float64
	for _, n := range replicaCounts(cfg.Replicas) {
		res, err := runReplicaLoop(cfg, n)
		if err != nil {
			return err
		}
		out.Scenarios = append(out.Scenarios, res)
		if n == 1 {
			base = res.ThroughputRPS
		} else if base > 0 {
			// Routing tax, not a speedup: one process hosts every replica,
			// so >1 means forwarding is cheap, <1 shows its cost.
			out.Speedup[fmt.Sprintf("replica_n%d", n)] = res.ThroughputRPS / base
		}
	}
	if cfg.ScalingSweep {
		curve, err := runScalingSweep(cfg, func(c config) (scenarioResult, error) {
			return runReplicaLoop(c, maxN)
		})
		if err != nil {
			return err
		}
		out.ScalingCurve = curve
	}
	return nil
}
