//go:build race

package main

// raceEnabled reports that this test binary was built with -race, whose
// instrumentation allocates inside sync.Pool and breaks allocs-per-frame
// assertions.
const raceEnabled = true
