// Package sensorcal is a full Go reproduction of "Automatic Calibration
// in Crowd-sourced Network of Spectrum Sensors" (Abedi, Sanz, Sahai —
// HotNets '23): automatic evaluation of volunteer-run spectrum sensor
// nodes using signals of opportunity (ADS-B aircraft, cellular towers,
// broadcast TV), with every hardware dependency of the original system
// rebuilt as a deterministic simulation.
//
// The package itself holds the repository-level benchmark harness
// (bench_test.go regenerates every figure of the paper) and the network
// integration test; the implementation lives under internal/ — see
// README.md for the map and DESIGN.md for the paper-to-module inventory.
package sensorcal
