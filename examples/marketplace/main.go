// Marketplace: the paper's economic vision end to end. Three operators
// calibrate their nodes automatically, list them with suggested prices,
// and two renters with different needs get matched — one needs mid-band
// coverage from a verified outdoor installation, the other just wants
// cheap sub-600 MHz TV-band monitoring (which even the indoor node can
// honestly sell, thanks to its calibration report saying so).
//
//	go run ./examples/marketplace
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sensorcal/internal/calib"
	"sensorcal/internal/figures"
	"sensorcal/internal/geo"
	"sensorcal/internal/market"
	"sensorcal/internal/trust"
	"sensorcal/internal/world"
)

func main() {
	log.SetFlags(0)
	m := market.NewMarket()

	fmt.Println("calibrating and listing three nodes...")
	for _, site := range world.Sites() {
		obs, err := figures.Figure1(site.Name, 60, 77)
		if err != nil {
			log.Fatal(err)
		}
		freq, err := calib.RunFrequency(context.Background(), calib.FrequencyConfig{
			Site: site, Towers: world.Towers(), TV: world.TVStations(), Seed: 77,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep := calib.BuildReport(site.Name, figures.Epoch, obs, freq)
		l := market.Listing{
			Node:   trust.NodeID("node-" + site.Name),
			Report: rep,
			Trust:  0.9,
		}
		l.PricePerHour = market.SuggestPrice(l, 10)
		if err := m.List(l); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s grade %s  placement %-8v  %5.2f credits/h\n",
			l.Node, calib.GradeFor(rep.Overall), rep.Placement.Placement, l.PricePerHour)
	}

	// Renter 1: regulator monitoring 2.6 GHz interference toward the west.
	west := geo.Sector{From: 250, To: 300}
	req1 := market.Requirement{
		Band:           calib.BandMid,
		MinBandScore:   0.7,
		Direction:      &west,
		RequireOutdoor: true,
		MinTrust:       0.6,
	}
	fmt.Println("\nrenter 1 (mid-band, westward FoV, verified outdoor):")
	for _, l := range m.Match(req1) {
		fmt.Printf("  matched %s at %.2f credits/h\n", l.Node, l.PricePerHour)
	}
	for id, why := range m.Explain(req1) {
		fmt.Printf("  rejected %s: %s\n", id, why)
	}

	// Renter 2: cheap TV-band occupancy stats, any placement.
	req2 := market.Requirement{
		Band:            calib.BandTV,
		MinBandScore:    0.3,
		MinTrust:        0.6,
		MaxPricePerHour: 5,
	}
	fmt.Println("\nrenter 2 (TV band, budget-capped):")
	matches := m.Match(req2)
	for _, l := range matches {
		fmt.Printf("  matched %s at %.2f credits/h\n", l.Node, l.PricePerHour)
	}
	if len(matches) > 0 {
		r, err := m.Book(matches[0].Node, "budget-labs", time.Date(2026, 7, 7, 9, 0, 0, 0, time.UTC), 24)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nbooked %s for %v h: %.2f credits (operator earnings now %.2f)\n",
			r.Node, r.Hours, r.Credits, m.Earnings(r.Node))
	}
}
