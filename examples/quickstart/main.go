// Quickstart: evaluate one simulated sensor node end to end.
//
// This is the smallest complete tour of the public API: build the paper's
// testbed, run the ADS-B directional measurement and the cellular/TV
// frequency sweep at the rooftop site, and print the calibration report.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sensorcal/internal/calib"
	"sensorcal/internal/flightsim"
	"sensorcal/internal/fr24"
	"sensorcal/internal/world"
)

func main() {
	log.SetFlags(0)

	// 1. The environment: the paper's testbed building. Three candidate
	//    installations exist; we evaluate the rooftop.
	site := world.RooftopSite()

	// 2. Signals of opportunity: air traffic within 100 km, plus the
	//    ground-truth service that the evaluator queries mid-measurement.
	epoch := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	fleet, err := flightsim.NewFleet(epoch, flightsim.Config{
		Center: world.BuildingOrigin,
		Radius: 100_000,
		Count:  50,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The paper's §3.1 procedure: 30 s of ADS-B, ground truth at 15 s.
	obs, err := calib.RunDirectional(context.Background(), calib.DirectionalConfig{
		Site:  site,
		Fleet: fleet,
		Truth: fr24.NewService(fleet),
		Start: epoch,
		Seed:  7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ADS-B: observed %d of %d aircraft, max range %.0f km\n",
		len(obs.Observed()), len(obs.Observations), obs.MaxObservedRangeKm(nil))

	// 4. The §3.2 frequency sweep: five cellular towers + six TV channels.
	freq, err := calib.RunFrequency(context.Background(), calib.FrequencyConfig{
		Site:   site,
		Towers: world.Towers(),
		TV:     world.TVStations(),
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. The calibration certificate.
	report := calib.BuildReport("quickstart-node", epoch, obs, freq)
	fmt.Println()
	fmt.Print(report.Render())
}
