// Trust network: the crowd-sourced market the paper motivates, with
// honest and dishonest operators.
//
// Five nodes join a collector. Three are honest (rooftop, window, indoor —
// each reporting its genuinely attenuated view of a shared TV channel),
// one inflates its readings to look like premium hardware, and one replays
// a constant instead of measuring. The consensus checks catch both, the
// honest-but-indoor node keeps its trust, and a marketplace query at the
// end returns only nodes worth renting.
//
//	go run ./examples/trustnetwork
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"sensorcal/internal/trust"
)

func main() {
	log.SetFlags(0)
	c := trust.NewCollector()
	epoch := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)

	nodes := []trust.Node{
		{ID: "roof-alice", Operator: "alice", ClaimedOutdoor: true, Hardware: "bladeRF xA9"},
		{ID: "window-bob", Operator: "bob", Hardware: "bladeRF xA9"},
		{ID: "indoor-carol", Operator: "carol", Hardware: "RTL-SDR v3"},
		{ID: "inflate-dave", Operator: "dave", ClaimedOutdoor: true, Hardware: "bladeRF xA9"},
		{ID: "replay-eve", Operator: "eve", ClaimedOutdoor: true, Hardware: "bladeRF xA9"},
	}
	for _, n := range nodes {
		if err := c.Ledger.Register(n); err != nil {
			log.Fatal(err)
		}
	}

	// 48 one-minute epochs of the shared 521 MHz TV channel. The real
	// channel fluctuates (propagation, transmitter); honest nodes track
	// it with their own attenuation offsets.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 48; i++ {
		at := epoch.Add(time.Duration(i) * time.Minute)
		trend := 5 * math.Sin(float64(i)/4)
		submit := func(id trust.NodeID, dbm float64) {
			if err := c.Submit(trust.Reading{Node: id, SignalID: "tv-521MHz", PowerDBm: dbm, At: at}); err != nil {
				log.Fatal(err)
			}
		}
		submit("roof-alice", -45+trend+rng.NormFloat64())
		submit("window-bob", -58+trend+rng.NormFloat64())
		submit("indoor-carol", -70+trend+rng.NormFloat64()*1.5)
		submit("inflate-dave", -20+trend+rng.NormFloat64()) // 25 dB hotter than anyone
		submit("replay-eve", -47)                           // constant replay
	}
	anomalies := c.CloseEpochs(epoch.Add(49 * time.Minute))
	fmt.Printf("consensus checks raised %d anomalies; first few:\n", len(anomalies))
	for i, a := range anomalies {
		if i >= 4 {
			break
		}
		fmt.Printf("  %v\n", a)
	}

	fmt.Println("\ntrust scores after 48 epochs:")
	for _, n := range nodes {
		s := c.Ledger.Trust(n.ID)
		fmt.Printf("  %-13s %.2f (%s)\n", n.ID, float64(s), s.Quantize())
	}

	fmt.Println("\nmarketplace: nodes rentable at trust ≥ 0.55:")
	for _, id := range c.Ledger.Trusted(0.55) {
		fmt.Printf("  %s\n", id)
	}
}
