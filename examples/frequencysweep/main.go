// Frequency sweep: the paper's Figures 3 and 4 in one run, plus the
// indoor/outdoor deduction the paper draws from them.
//
// For each testbed installation the program scans the five cellular towers
// with the srsUE-class scanner, measures the six broadcast-TV channels
// with the GNU-Radio-style band-power receiver, and prints the paper's
// tables followed by each site's placement verdict.
//
//	go run ./examples/frequencysweep
package main

import (
	"context"
	"fmt"
	"log"

	"sensorcal/internal/calib"
	"sensorcal/internal/figures"
	"sensorcal/internal/world"
)

func main() {
	log.SetFlags(0)

	fig3, err := figures.Figure3(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(figures.RenderFigure3(fig3))

	fig4, err := figures.Figure4(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(figures.RenderFigure4(fig4))

	// The paper's §3.2 deduction: combine the sweeps into a placement
	// verdict per site.
	fmt.Println("Placement deduction (no ADS-B evidence, frequency sweep only):")
	for _, site := range world.Sites() {
		rep, err := calib.RunFrequency(context.Background(), calib.FrequencyConfig{
			Site:   site,
			Towers: world.Towers(),
			TV:     world.TVStations(),
			Seed:   3,
		})
		if err != nil {
			log.Fatal(err)
		}
		v := calib.ClassifyPlacement(nil, rep)
		fmt.Printf("  %-8s -> %v\n", site.Name, v)
	}
}
