// Field-of-view estimation: the paper's Figure 1 scenario plus its §5
// future-work extension (KNN/linear estimation of the true field of view).
//
// The program runs repeated 30 s ADS-B measurements at each of the three
// testbed sites (the paper repeated every experiment ≥10 times), feeds the
// aggregated observations to three FoV estimators, and scores each
// estimate against the site's geometric ground truth.
//
//	go run ./examples/fieldofview
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sensorcal/internal/calib"
	"sensorcal/internal/flightsim"
	"sensorcal/internal/fr24"
	"sensorcal/internal/world"
)

func main() {
	log.SetFlags(0)
	epoch := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	const repeats = 8

	estimators := []calib.FoVEstimator{
		calib.SectorOccupancyFoV{},
		calib.KNNFoV{K: 5},
		calib.LinearFoV{Harmonics: 5},
	}

	for _, site := range world.Sites() {
		// Aggregate several measurement rounds with fresh traffic.
		agg := &calib.ObservationSet{Site: site.Name}
		for r := 0; r < repeats; r++ {
			fleet, err := flightsim.NewFleet(epoch, flightsim.Config{
				Center: world.BuildingOrigin,
				Radius: 100_000,
				Count:  60,
				Seed:   int64(1000 + r),
			})
			if err != nil {
				log.Fatal(err)
			}
			obs, err := calib.RunDirectional(context.Background(), calib.DirectionalConfig{
				Site:  site,
				Fleet: fleet,
				Truth: fr24.NewService(fleet),
				Start: epoch,
				Seed:  int64(1000 + r),
			})
			if err != nil {
				log.Fatal(err)
			}
			agg.Observations = append(agg.Observations, obs.Observations...)
		}

		truth := site.ClearSectors()
		fmt.Printf("%s — geometric FoV %v (%d observations over %d runs)\n",
			site.Name, truth, len(agg.Observations), repeats)
		for _, est := range estimators {
			got := est.Estimate(agg)
			score := calib.ScoreFoV(got, truth)
			fmt.Printf("  %-17s -> %-24v %v\n", est.Name(), got, score)
		}
		fmt.Println()
	}
}
