package sensorcal

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"sensorcal/internal/agent"
	"sensorcal/internal/clock"
	"sensorcal/internal/obs"
	"sensorcal/internal/resilience"
	"sensorcal/internal/sched"
	"sensorcal/internal/trust"
	"sensorcal/internal/world"
)

// TestTraceEndToEnd proves the PR's distributed-tracing contract over
// the real three-daemon wire path, emulated in-process: one scheduled
// measurement produces ONE trace — rooted at the agent's poll cycle —
// whose ID is retrievable from every daemon's /debug/traces.
//
//   - agentd: agent.cycle root + agent.task + sched.lease/sched.complete
//     client spans, with a retry event from a deliberately failed first
//     lease attempt,
//   - schedd: server /api/lease and /api/complete spans extracted from
//     the traceparent the sched client injected,
//   - spectrumd: trust.ingest spans adopted from the Trace field each
//     reading carries — the linkage that survives the store-and-forward
//     spool, because the trace context rides in the reading itself, not
//     in a request header.
func TestTraceEndToEnd(t *testing.T) {
	day := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	sim := clock.NewSimulated(day)
	logger := obs.NewLogger("trace-e2e")

	// --- spectrumd: collector + admin surface on its own tracer.
	spectrumTr := obs.NewTracer(256)
	spectrumReg := obs.NewRegistry()
	col := trust.NewShardedCollector(4)
	col.Tracer = spectrumTr
	col.Obs = spectrumReg
	spectrumMux := obs.AdminMux(spectrumReg, spectrumTr, nil)
	spectrumMux.Handle("/api/", col.Handler(sim.Now))
	spectrumSrv := httptest.NewServer(spectrumMux)
	defer spectrumSrv.Close()

	// --- schedd: queue + lease API on its own tracer. The first
	// /api/lease attempt is rejected with a 503 before reaching the API,
	// so the agent's retrier must retry — and leave a retry event on the
	// lease span of the measurement's trace.
	schedTr := obs.NewTracer(256)
	schedReg := obs.NewRegistry()
	q := sched.NewQueue(sched.QueueConfig{
		LeaseTTL: 5 * time.Minute,
		Clock:    sim,
		Metrics:  obs.NewRegistry(),
	})
	task := sched.Task{
		ID: sched.TaskID("node-1", day.Add(time.Hour)), Node: "node-1", Site: "rooftop",
		Start: day.Add(time.Hour), Duration: 30 * time.Second, Runs: 1,
		ExpectedAircraft: 35, Priority: 35,
	}
	if _, err := q.Add(task); err != nil {
		t.Fatal(err)
	}
	api := &sched.Server{Q: q, Log: logger, Tracer: schedTr, Obs: schedReg}
	schedMux := obs.AdminMux(schedReg, schedTr, nil)
	schedMux.Handle("/api/", api.Handler())
	var leaseCalls atomic.Int32
	schedSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/lease" && leaseCalls.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		schedMux.ServeHTTP(w, r)
	}))
	defer schedSrv.Close()

	// --- agentd: its own tracer rides in the context; readings flow
	// through a real spool so the trace linkage is proven to survive
	// store-and-forward, not just a direct call.
	agentTr := obs.NewTracer(256)
	ctx := obs.WithTracer(context.Background(), agentTr)
	spool, err := resilience.OpenSpool(filepath.Join(t.TempDir(), "spool.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer spool.Close()
	tc, err := trust.NewClient(trust.ClientConfig{
		BaseURL: spectrumSrv.URL,
		Spool:   spool,
		Clock:   sim,
		Logger:  logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.Register(ctx, "node-1", "trace-e2e", "rooftop"); err != nil {
		t.Fatal(err)
	}
	sc, err := sched.NewClient(sched.ClientConfig{
		BaseURL: schedSrv.URL,
		Retrier: resilience.NewRetrier(resilience.Policy{
			MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
		}),
		Logger: logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := agent.New(agent.Config{
		Node:           "node-1",
		Site:           world.RooftopSite(),
		Traffic:        agent.SimTraffic{Center: world.BuildingOrigin, Radius: 100_000, Count: 40, Seed: 7},
		Towers:         world.Towers(),
		TV:             world.TVStations(),
		Clock:          sim,
		Collector:      tc,
		FrequencyEvery: 1,
		Metrics:        obs.NewRegistry(),
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		done <- a.RunScheduled(ctx, sc, agent.ScheduledOptions{Poll: time.Minute, MaxTasks: 1})
	}()
	for running := true; running; {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("RunScheduled: %v", err)
			}
			running = false
		default:
			sim.Advance(5 * time.Minute)
			time.Sleep(time.Millisecond)
		}
	}
	// Ship the spooled readings to the collector.
	for {
		if _, more, err := tc.DrainOnce(ctx); err != nil {
			t.Fatalf("drain: %v", err)
		} else if !more {
			break
		}
	}
	if n := spool.Len(); n != 0 {
		t.Fatalf("spool still holds %d readings after drain", n)
	}

	// One cycle did the work; its trace ID is the thread through all
	// three daemons.
	agentSpans := agentTr.Snapshot()
	var traceID string
	for _, s := range agentSpans {
		if s.Name == "agent.task" {
			traceID = s.TraceID
		}
	}
	if traceID == "" {
		t.Fatalf("no agent.task span recorded; agent spans: %+v", names(agentSpans))
	}

	agentTrace := agentTr.Trace(traceID)
	var sawCycleRoot, sawLease, sawComplete, sawRetryEvent bool
	for _, s := range agentTrace {
		switch s.Name {
		case "agent.cycle":
			sawCycleRoot = s.ParentID == ""
		case "sched.lease":
			sawLease = true
			for _, e := range s.Events {
				if e.Name == "retry" {
					sawRetryEvent = true
				}
			}
		case "sched.complete":
			sawComplete = true
		}
	}
	if !sawCycleRoot {
		t.Errorf("trace %s has no agent.cycle root span; spans: %v", traceID, names(agentTrace))
	}
	if !sawLease || !sawComplete {
		t.Errorf("trace %s missing sched client spans (lease=%v complete=%v)", traceID, sawLease, sawComplete)
	}
	if !sawRetryEvent {
		t.Errorf("trace %s lease span carries no retry event despite the injected 503", traceID)
	}

	// schedd recorded server spans under the SAME trace ID, extracted
	// from the injected traceparent.
	schedTrace := schedTr.Trace(traceID)
	var sawServerLease bool
	for _, s := range schedTrace {
		if s.Name == "server /api/lease" && s.ParentID != "" {
			sawServerLease = true
		}
	}
	if !sawServerLease {
		t.Errorf("schedd has no server /api/lease span for trace %s; spans: %v", traceID, names(schedTrace))
	}

	// spectrumd adopted the trace from the readings' Trace field: ingest
	// spans parented into the agent's trace even though they arrived via
	// a spool drain batch that mixes traces.
	var sawIngest bool
	for _, s := range spectrumTr.Trace(traceID) {
		if s.Name == "trust.ingest" && s.ParentID != "" {
			sawIngest = true
		}
	}
	if !sawIngest {
		t.Errorf("spectrumd has no trust.ingest span for trace %s", traceID)
	}

	// The same trace ID is retrievable over each daemon's debug surface —
	// what an operator would actually do.
	for _, srv := range []*httptest.Server{schedSrv, spectrumSrv} {
		spans := fetchTrace(t, srv.URL, traceID)
		if len(spans) == 0 {
			t.Errorf("GET %s/debug/traces?trace_id=%s returned no spans", srv.URL, traceID)
		}
		for _, s := range spans {
			if s.TraceID != traceID {
				t.Errorf("debug endpoint returned span of trace %s, want %s", s.TraceID, traceID)
			}
		}
	}

	// Closing the epoch roots its own trace (it aggregates many), so the
	// measurement trace must NOT grow — but close spans must exist.
	col.CloseEpochs(sim.Now().Add(24 * time.Hour))
	var sawClose bool
	for _, s := range spectrumTr.Snapshot() {
		if s.Name == "trust.close_epochs" {
			sawClose = true
			if s.TraceID == traceID {
				t.Errorf("epoch close joined a reading's trace; want its own root")
			}
		}
	}
	if !sawClose {
		t.Errorf("no trust.close_epochs span recorded")
	}
}

// fetchTrace pulls one trace from a daemon's debug surface.
func fetchTrace(t *testing.T, base, traceID string) []obs.SpanRecord {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/debug/traces?trace_id=%s", base, traceID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var spans []obs.SpanRecord
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatalf("decoding %s/debug/traces: %v", base, err)
	}
	return spans
}

func names(spans []obs.SpanRecord) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}
