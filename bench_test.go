// Package sensorcal's root benchmark suite regenerates every evaluation
// figure of the paper (run with `go test -bench=. -benchmem`) and measures
// the ablations DESIGN.md calls out. Each figure bench reports custom
// metrics describing the figure's headline numbers, so a bench run doubles
// as a reproduction log (see EXPERIMENTS.md).
package sensorcal

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sensorcal/internal/calib"
	"sensorcal/internal/dsp"
	"sensorcal/internal/figures"
	"sensorcal/internal/flightsim"
	"sensorcal/internal/fr24"
	"sensorcal/internal/geo"
	"sensorcal/internal/iq"
	"sensorcal/internal/modes"
	"sensorcal/internal/phy1090"
	"sensorcal/internal/rfmath"
	"sensorcal/internal/world"
)

// --- Figure 1: ADS-B directionality -----------------------------------

func benchFigure1(b *testing.B, site string, sector *geo.Sector) {
	b.Helper()
	var observed, total int
	var maxAll, maxSector float64
	for i := 0; i < b.N; i++ {
		obs, err := figures.Figure1(site, figures.DefaultAircraft, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		observed += len(obs.Observed())
		total += len(obs.Observations)
		if m := obs.MaxObservedRangeKm(nil); m > maxAll {
			maxAll = m
		}
		if sector != nil {
			if m := obs.MaxObservedRangeKm(sector); m > maxSector {
				maxSector = m
			}
		}
	}
	b.ReportMetric(float64(observed)/float64(b.N), "aircraft-observed")
	b.ReportMetric(float64(total)/float64(b.N), "aircraft-truth")
	b.ReportMetric(maxAll, "max-range-km")
	if sector != nil {
		b.ReportMetric(maxSector, "max-fov-range-km")
	}
}

func BenchmarkFigure1Rooftop(b *testing.B) {
	benchFigure1(b, "rooftop", &geo.Sector{From: 230, To: 310})
}

func BenchmarkFigure1Window(b *testing.B) {
	benchFigure1(b, "window", &geo.Sector{From: 115, To: 160})
}

func BenchmarkFigure1Indoor(b *testing.B) {
	benchFigure1(b, "indoor", nil)
}

// --- Figure 3: cellular RSRP ------------------------------------------

func BenchmarkFigure3Cellular(b *testing.B) {
	decoded := map[string]int{}
	for i := 0; i < b.N; i++ {
		data, err := figures.Figure3(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		for site, trs := range data {
			for _, tr := range trs {
				if tr.Result.Decoded {
					decoded[site]++
				}
			}
		}
	}
	for _, site := range figures.SiteOrder {
		b.ReportMetric(float64(decoded[site])/float64(b.N), site+"-towers-decoded")
	}
}

// --- Figure 4: broadcast TV -------------------------------------------

func BenchmarkFigure4TV(b *testing.B) {
	var roofSum, winSum, win521 float64
	for i := 0; i < b.N; i++ {
		data, err := figures.Figure4(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		for _, tv := range data["rooftop"] {
			roofSum += tv.Measurement.PowerDBFS
		}
		for _, tv := range data["window"] {
			winSum += tv.Measurement.PowerDBFS
			if tv.Station.CenterHz == 521e6 {
				win521 += tv.Measurement.PowerDBFS
			}
		}
	}
	n := float64(b.N)
	b.ReportMetric(roofSum/n/6, "rooftop-mean-dbfs")
	b.ReportMetric(winSum/n/6, "window-mean-dbfs")
	b.ReportMetric(win521/n, "window-521MHz-dbfs")
}

// --- §3.2 deduction: indoor/outdoor classification ---------------------

func BenchmarkIndoorOutdoor(b *testing.B) {
	correct := 0
	for i := 0; i < b.N; i++ {
		for _, site := range world.Sites() {
			obs, err := figures.Figure1(site.Name, figures.DefaultAircraft, int64(i+1))
			if err != nil {
				b.Fatal(err)
			}
			freq, err := calib.RunFrequency(context.Background(), calib.FrequencyConfig{
				Site:   site,
				Towers: world.Towers(),
				TV:     world.TVStations(),
				Seed:   int64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			v := calib.ClassifyPlacement(obs, freq)
			want := calib.PlacementIndoor
			if site.Outdoor {
				want = calib.PlacementOutdoor
			}
			if v.Placement == want {
				correct++
			}
		}
	}
	b.ReportMetric(float64(correct)/float64(3*b.N), "classification-accuracy")
}

// --- §5 future work: FoV estimators ------------------------------------

func BenchmarkFoVEstimators(b *testing.B) {
	// Shared aggregated observation set built once.
	agg := &calib.ObservationSet{Site: "rooftop"}
	for seed := int64(1); seed <= 5; seed++ {
		obs, err := figures.Figure1("rooftop", figures.DefaultAircraft, seed)
		if err != nil {
			b.Fatal(err)
		}
		agg.Observations = append(agg.Observations, obs.Observations...)
	}
	truth, err := figures.SiteByName("rooftop")
	if err != nil {
		b.Fatal(err)
	}
	truthFoV := truth.ClearSectors()
	for _, est := range []calib.FoVEstimator{
		calib.SectorOccupancyFoV{}, calib.KNNFoV{}, calib.LinearFoV{},
	} {
		b.Run(est.Name(), func(b *testing.B) {
			var iou float64
			for i := 0; i < b.N; i++ {
				got := est.Estimate(agg)
				iou = calib.ScoreFoV(got, truthFoV).IoU
			}
			b.ReportMetric(iou, "IoU")
		})
	}
}

// --- Ablation: CPR decode paths ----------------------------------------

func BenchmarkCPRDecodeGlobal(b *testing.B) {
	even := modes.EncodeCPR(37.8716, -122.2727, false)
	odd := modes.EncodeCPR(37.8716, -122.2727, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := modes.DecodeCPRGlobal(even, odd, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPRDecodeLocal(b *testing.B) {
	fix := modes.EncodeCPR(37.8716, -122.2727, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		modes.DecodeCPRLocal(fix, 37.87, -122.27)
	}
}

// --- Ablation: demodulator throughput and sensitivity -------------------

func benchDemodAtSNR(b *testing.B, snr float64) {
	frame, err := (&modes.Frame{
		ICAO: 0xA0B1C2,
		Msg:  &modes.AirbornePosition{TC: 11, AltitudeFt: 11000, AltValid: true, CPR: modes.EncodeCPR(37.9, -122.3, false)},
	}).Encode()
	if err != nil {
		b.Fatal(err)
	}
	noise := iq.DBFSToPower(-40)
	d := phy1090.NewDemodulator()
	ns := iq.NewNoiseSource(1)
	decoded := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		burst, _ := phy1090.Modulate(frame, phy1090.SNRToAmplitude(snr, noise))
		capBuf := iq.New(phy1090.FrameSamples+8, phy1090.SampleRate)
		_ = capBuf.AddAt(burst, 4)
		ns.AddNoise(capBuf, noise)
		b.StartTimer()
		if _, ok := d.DemodulateBurst(capBuf, 8); ok {
			decoded++
		}
	}
	b.ReportMetric(float64(decoded)/float64(b.N), "decode-rate")
}

func BenchmarkDemodBurstSNR20(b *testing.B) { benchDemodAtSNR(b, 20) }
func BenchmarkDemodBurstSNR10(b *testing.B) { benchDemodAtSNR(b, 10) }
func BenchmarkDemodBurstSNR6(b *testing.B)  { benchDemodAtSNR(b, 6) }

func BenchmarkDemodContinuousStream(b *testing.B) {
	// Throughput over a 100 ms capture with 10 embedded frames.
	frame, err := (&modes.Frame{ICAO: 0x123456, Msg: &modes.Identification{TC: 4, Callsign: "BENCH"}}).Encode()
	if err != nil {
		b.Fatal(err)
	}
	capBuf := iq.New(200_000, phy1090.SampleRate)
	for k := 0; k < 10; k++ {
		burst, _ := phy1090.Modulate(frame, 0.3)
		_ = capBuf.AddAt(burst, 1000+k*19_000)
	}
	iq.NewNoiseSource(2).AddNoise(capBuf, iq.DBFSToPower(-45))
	d := phy1090.NewDemodulator()
	b.SetBytes(int64(len(capBuf.Samples) * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := d.Process(capBuf); len(got) != 10 {
			b.Fatalf("decoded %d of 10 frames", len(got))
		}
	}
}

// --- Ablation: band-power measurement methods ---------------------------

func benchBandPowerInput() []complex128 {
	rng := rand.New(rand.NewSource(3))
	n := 1 << 15
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64()*0.05, rng.NormFloat64()*0.05)
	}
	return x
}

func BenchmarkBandPowerTimeDomain(b *testing.B) {
	// The paper's method: bandpass + |x|² + very long moving average.
	x := benchBandPowerInput()
	b.SetBytes(int64(len(x) * 16))
	for i := 0; i < b.N; i++ {
		if _, err := dsp.BandPowerTimeDomain(x, 8e6, 0, 6e6, 129, 8192); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBandPowerSpectral(b *testing.B) {
	// The Welch-PSD alternative.
	x := benchBandPowerInput()
	b.SetBytes(int64(len(x) * 16))
	for i := 0; i < b.N; i++ {
		if _, err := dsp.BandPowerSpectral(x, 8e6, 0, 6e6, 1024); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: ground-truth latency sensitivity -------------------------

func BenchmarkGroundTruthLatency(b *testing.B) {
	// How much does FlightRadar24-style staleness move the reported
	// aircraft positions? The paper argues the 10 s latency keeps errors
	// within 2.5 km; measure the actual worst case across the fleet.
	for _, latency := range []time.Duration{0, 10 * time.Second, 30 * time.Second} {
		b.Run(fmt.Sprintf("latency%ds", int(latency.Seconds())), func(b *testing.B) {
			var worstKm float64
			for i := 0; i < b.N; i++ {
				fleet, err := flightsim.NewFleet(figures.Epoch, flightsim.Config{
					Center: world.BuildingOrigin, Radius: 100_000, Count: 60, Seed: int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				svc := fr24.NewService(fleet)
				svc.Latency = latency
				at := figures.Epoch.Add(15 * time.Second)
				flights, err := svc.Query(at, world.BuildingOrigin, 150_000)
				if err != nil {
					b.Fatal(err)
				}
				truth := map[string]int{}
				for idx, a := range fleet.Aircraft {
					truth[a.ICAO.String()] = idx
				}
				for _, fl := range flights {
					a := fleet.Aircraft[truth[fl.ICAO]]
					d := geo.GroundDistance(fl.Position(), a.PositionAt(15*time.Second))
					if d/1000 > worstKm {
						worstKm = d / 1000
					}
				}
			}
			b.ReportMetric(worstKm, "max-position-error-km")
		})
	}
}

// --- Ablation: CRC error correction in the demodulator -------------------

func benchDemodWithEC(b *testing.B, ec int, snr float64) {
	frame, err := (&modes.Frame{
		ICAO: 0xA0B1C2,
		Msg:  &modes.AirbornePosition{TC: 11, AltitudeFt: 11000, AltValid: true, CPR: modes.EncodeCPR(37.9, -122.3, false)},
	}).Encode()
	if err != nil {
		b.Fatal(err)
	}
	noise := iq.DBFSToPower(-40)
	d := phy1090.NewDemodulator()
	d.ErrorCorrection = ec
	ns := iq.NewNoiseSource(7)
	decoded := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		burst, _ := phy1090.Modulate(frame, phy1090.SNRToAmplitude(snr, noise))
		capBuf := iq.New(phy1090.FrameSamples+8, phy1090.SampleRate)
		_ = capBuf.AddAt(burst, 4)
		ns.AddNoise(capBuf, noise)
		b.StartTimer()
		if _, ok := d.DemodulateBurst(capBuf, 8); ok {
			decoded++
		}
	}
	b.ReportMetric(float64(decoded)/float64(b.N), "decode-rate")
}

func BenchmarkDemodNoFixSNR9(b *testing.B)    { benchDemodWithEC(b, 0, 9) }
func BenchmarkDemodFix1BitSNR9(b *testing.B)  { benchDemodWithEC(b, 1, 9) }
func BenchmarkDemodFix2BitsSNR9(b *testing.B) { benchDemodWithEC(b, 2, 9) }

// --- Ablation: obstruction material sensitivity --------------------------
//
// How far does an ADS-B link reach through each wall class? This sweeps
// the world model's material table at 1090 MHz and reports the maximum
// decodable range for a median-power transponder — the knob that places
// Figure 1's range boundaries.
func BenchmarkObstructionMaterialSweep(b *testing.B) {
	materials := []struct {
		name string
		m    rfmath.Material
	}{
		{"none", rfmath.MaterialNone},
		{"glass", rfmath.MaterialGlass},
		{"drywall", rfmath.MaterialDrywall},
		{"brick", rfmath.MaterialBrick},
		{"concrete", rfmath.MaterialConcrete},
		{"reinforced", rfmath.MaterialReinforcedConcrete},
	}
	for _, mat := range materials {
		b.Run(mat.name, func(b *testing.B) {
			site := &world.Site{
				Name:     "sweep",
				Position: world.BuildingOrigin,
				Obstructions: []world.Obstruction{{
					Sector:          geo.Sector{From: 0, To: 360},
					Material:        mat.m,
					Layers:          2,
					MaxElevationDeg: 90,
				}},
			}
			var maxKm float64
			for i := 0; i < b.N; i++ {
				maxKm = 0
				for rkm := 2.0; rkm <= 150; rkm += 2 {
					p := geo.Destination(world.BuildingOrigin, 90, rkm*1000)
					p.Alt = 10000
					lb := site.Link(world.Transmitter{
						Position: p, EIRPDBm: 54, FrequencyHz: 1090e6, BandwidthHz: 2e6,
					}, world.ModelFreeSpace, world.RxConfig{GainDBi: 2, NoiseFigureDB: 6}, 0)
					if lb.Decodable(10) {
						maxKm = rkm
					}
				}
			}
			b.ReportMetric(maxKm, "max-decode-km")
		})
	}
}

// --- Experiment: FoV convergence over repeated measurements --------------
//
// The paper repeats each experiment "over 10 times"; this measures how
// the KNN field-of-view estimate converges as 30 s windows accumulate —
// the data a deployment needs to budget calibration time.
func BenchmarkFoVConvergence(b *testing.B) {
	site, err := figures.SiteByName("rooftop")
	if err != nil {
		b.Fatal(err)
	}
	truth := site.ClearSectors()
	for _, runs := range []int{1, 3, 6, 10} {
		b.Run(fmt.Sprintf("runs%d", runs), func(b *testing.B) {
			var iou float64
			for i := 0; i < b.N; i++ {
				agg := &calib.ObservationSet{Site: site.Name}
				for r := 0; r < runs; r++ {
					obs, err := figures.Figure1("rooftop", figures.DefaultAircraft, int64(i*100+r+1))
					if err != nil {
						b.Fatal(err)
					}
					agg.Observations = append(agg.Observations, obs.Observations...)
				}
				iou += calib.ScoreFoV(calib.KNNFoV{}.Estimate(agg), truth).IoU
			}
			b.ReportMetric(iou/float64(b.N), "IoU")
		})
	}
}
