module sensorcal

go 1.22
