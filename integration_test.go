package sensorcal

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"sensorcal/internal/agent"
	"sensorcal/internal/calib"
	"sensorcal/internal/clock"
	"sensorcal/internal/trust"
	"sensorcal/internal/world"
)

// TestNetworkEndToEnd is the repository's integration test: three honest
// agents at the paper's three installations plus a fabricating node share
// one collector for a simulated day. At the end the calibration reports
// rank the installations correctly, the fabricator has lost its trust,
// and the honest nodes have not.
func TestNetworkEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	day := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	col := trust.NewCollector()
	col.EpochWindow = time.Hour // agents measure on hour boundaries

	sites := world.Sites()
	agents := make([]*agent.Agent, 0, len(sites))
	clocks := make([]*clock.Simulated, 0, len(sites))
	for i, site := range sites {
		id := trust.NodeID("node-" + site.Name)
		if err := col.Ledger.Register(trust.Node{ID: id, ClaimedOutdoor: site.Outdoor}); err != nil {
			t.Fatal(err)
		}
		clk := clock.NewSimulated(day)
		a, err := agent.New(agent.Config{
			Node: id,
			Site: site,
			Traffic: agent.SimTraffic{
				Center: world.BuildingOrigin, Radius: 100_000, Count: 50, Seed: int64(100 + i),
			},
			Towers:         world.Towers(),
			TV:             world.TVStations(),
			Clock:          clk,
			Collector:      col,
			WindowsPerDay:  3,
			FrequencyEvery: 1, // submit TV readings every round for consensus density
			Seed:           int64(100 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
		clocks = append(clocks, clk)
	}
	// A fabricating node reports impossible TV power all day.
	cheater := trust.NodeID("node-cheater")
	if err := col.Ledger.Register(trust.Node{ID: cheater, ClaimedOutdoor: true}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(agents))
	for _, a := range agents {
		wg.Add(1)
		go func(a *agent.Agent) {
			defer wg.Done()
			errs <- a.RunDay(context.Background(), day)
		}(a)
	}
	// Drive all clocks and inject the cheater's readings.
	doneDriving := make(chan struct{})
	go func() {
		defer close(doneDriving)
		for step := 0; step < 24*6+6; step++ {
			at := day.Add(time.Duration(step) * 10 * time.Minute)
			if at.Minute() == 0 {
				for _, st := range world.TVStations() {
					_ = col.Submit(trust.Reading{
						Node:     cheater,
						SignalID: fmt.Sprintf("tv-%.0fMHz", st.CenterHz/1e6),
						PowerDBm: -8, // hotter than physics allows anywhere
						At:       at,
					})
				}
			}
			for _, clk := range clocks {
				clk.Advance(10 * time.Minute)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	<-doneDriving
	for range agents {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	anomalies := col.CloseEpochs(day.Add(48 * time.Hour))
	if len(anomalies) == 0 {
		t.Fatal("fabricated readings produced no anomalies")
	}
	for _, a := range anomalies {
		if a.Node != cheater {
			t.Errorf("honest node flagged: %v", a)
		}
	}
	if ct := col.Ledger.Trust(cheater); ct > 0.4 {
		t.Errorf("cheater trust = %v, want low", ct)
	}
	for _, site := range sites {
		if ht := col.Ledger.Trust(trust.NodeID("node-" + site.Name)); ht < 0.8 {
			t.Errorf("honest %s trust = %v, want high", site.Name, ht)
		}
	}

	// Calibration reports rank the installations and classify placement.
	var overall []float64
	for i, a := range agents {
		rep := a.LatestReport()
		overall = append(overall, rep.Overall)
		wantOutdoor := sites[i].Outdoor
		gotOutdoor := rep.Placement.Placement == calib.PlacementOutdoor
		if wantOutdoor != gotOutdoor {
			t.Errorf("%s classified %v", sites[i].Name, rep.Placement)
		}
	}
	if !(overall[0] > overall[1] && overall[1] > overall[2]) {
		t.Errorf("report ordering violated: %v", overall)
	}

	// The marketplace rents only the trustworthy nodes.
	rentable := col.Ledger.Trusted(0.6)
	for _, id := range rentable {
		if id == cheater {
			t.Error("cheater should not be rentable")
		}
	}
	if len(rentable) != 3 {
		t.Errorf("rentable nodes = %v, want the three honest ones", rentable)
	}
}
