package trust

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sensorcal/internal/hash"
	"sensorcal/internal/obs"
)

// Collector is the cloud side of the crowd-sourced network: nodes register
// and stream readings of shared reference signals; the collector groups
// them into epochs, runs the consensus checks, and maintains the trust
// ledger. Ingest state is lock-striped (see shard.go): readings of
// different signals from different nodes proceed on different locks, so
// submit throughput scales with cores instead of serializing on one
// mutex.
type Collector struct {
	Ledger   *Ledger
	Detector *Detector
	// EpochWindow groups readings of a signal whose timestamps fall in
	// the same window.
	EpochWindow time.Duration

	// DedupCap bounds the idempotency-key memory across all stripes
	// (oldest keys per stripe are forgotten first). Zero means the
	// default of 65536.
	DedupCap int

	// Tracer records the collector's spans; nil means the process-wide
	// default. Tests that emulate several daemons in one process give
	// each its own tracer so /debug/traces stays per-daemon.
	Tracer *obs.Tracer
	// Obs receives the HTTP middleware's RED metrics; nil means the
	// process-wide default registry.
	Obs *obs.Registry

	// Store, when non-nil, durably records trust mutations: enrollments
	// as they happen, scores at epoch close (off the submit hot path).
	// When the store errors the collector degrades instead of silently
	// dropping evidence: mutating endpoints shed with 503 + Retry-After
	// and failed score batches are retried on the next epoch close.
	Store Store

	// RetryAfter is the backoff hint attached to 503 responses shed
	// while the store is degraded. Zero means 5 s.
	RetryAfter time.Duration

	storeMu       sync.Mutex
	storePending  map[NodeID]Score // score updates awaiting a durable append
	storeDegraded atomic.Bool

	epochs []epochStripe // by signal ID hash
	dedups []dedupStripe // by idempotency key hash
	fresh  []freshStripe // by node ID hash
	mask   uint64        // len(stripes)-1; stripe counts are powers of two

	// metrics is non-nil only after Instrument; see metrics.go.
	metrics *collectorMetrics
}

// NewCollector returns a collector with a fresh ledger and a single
// stripe — semantically the classic single-lock collector, including
// exact global FIFO dedup eviction.
func NewCollector() *Collector { return NewShardedCollector(1) }

// NewShardedCollector returns a collector whose ingest state is split
// across shards lock stripes (rounded up to a power of two). CloseEpochs,
// Fleet and History results are identical at any shard count; only the
// dedup eviction boundary is approximate (per-stripe FIFO rather than
// global FIFO, with DedupCap split evenly across stripes).
func NewShardedCollector(shards int) *Collector {
	n := stripeCount(shards)
	c := &Collector{
		Ledger:      NewLedger(),
		Detector:    NewDetector(),
		EpochWindow: time.Minute,
		epochs:      make([]epochStripe, n),
		dedups:      make([]dedupStripe, n),
		fresh:       make([]freshStripe, n),
		mask:        uint64(n - 1),
	}
	for i := 0; i < n; i++ {
		c.epochs[i].pending = make(map[string]map[time.Time]*Epoch)
		c.epochs[i].history = make(map[string][]Epoch)
		c.dedups[i].seen = make(map[string]struct{})
	}
	c.storePending = make(map[NodeID]Score)
	return c
}

// ErrStoreUnavailable marks a mutation refused because the durable store
// could not persist it. Handlers map it to 503 + Retry-After: the client
// should back off and retry, not treat the mutation as permanently
// rejected.
var ErrStoreUnavailable = errors.New("trust: durable store unavailable")

// StoreDegraded reports whether the last durable append failed. A
// degraded collector sheds mutating API traffic and fails readiness; it
// heals automatically when an append (or the epoch-close probe) succeeds.
func (c *Collector) StoreDegraded() bool { return c.storeDegraded.Load() }

// StoreLag returns how many score updates are waiting for a durable
// append to succeed — nonzero only while the store is erroring.
func (c *Collector) StoreLag() int {
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	return len(c.storePending)
}

// registerDurable enrolls a node and, when a store is attached, appends
// the registration before acknowledging. A registration whose append
// failed is rolled back from the ledger: acknowledging an enrollment the
// disk never saw would let a crash silently drop it.
func (c *Collector) registerDurable(n Node) error {
	if err := c.Ledger.Register(n); err != nil {
		return err
	}
	if c.Store == nil {
		return nil
	}
	if err := c.Store.AppendRegister(n); err != nil {
		c.Ledger.unregister(n.ID)
		c.storeDegraded.Store(true)
		c.metrics.recordStoreAppendError()
		return fmt.Errorf("%w: %v", ErrStoreUnavailable, err)
	}
	c.storeDegraded.Store(false)
	return nil
}

// flushStore merges updates with any batch still owed from a failed
// append and tries one durable append. While degraded it probes with
// whatever is pending (possibly nothing) so a healed disk brings the
// collector back without waiting for new evidence.
func (c *Collector) flushStore(at time.Time, updates []ScoreUpdate) {
	if c.Store == nil {
		return
	}
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	for _, u := range updates {
		c.storePending[u.Node] = u.Score
	}
	if len(c.storePending) == 0 && !c.storeDegraded.Load() {
		return
	}
	batch := make([]ScoreUpdate, 0, len(c.storePending))
	for id, s := range c.storePending {
		batch = append(batch, ScoreUpdate{Node: id, Score: s})
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].Node < batch[j].Node })
	if err := c.Store.AppendScores(at, batch); err != nil {
		c.storeDegraded.Store(true)
		c.metrics.recordStoreAppendError()
		return
	}
	for id := range c.storePending {
		delete(c.storePending, id)
	}
	c.storeDegraded.Store(false)
}

// Shards returns the stripe count the collector was built with.
func (c *Collector) Shards() int { return len(c.epochs) }

// tracer resolves the span destination.
func (c *Collector) tracer() *obs.Tracer {
	if c.Tracer != nil {
		return c.Tracer
	}
	return obs.DefaultTracer()
}

// dedupLimit splits DedupCap evenly across the dedup stripes, rounding
// up so the aggregate capacity never falls below DedupCap.
func (c *Collector) dedupLimit() int {
	total := c.DedupCap
	if total <= 0 {
		total = 65536
	}
	return (total + len(c.dedups) - 1) / len(c.dedups)
}

// Submit ingests one reading.
func (c *Collector) Submit(r Reading) error {
	_, err := c.SubmitDedup(r)
	return err
}

// SubmitDedup ingests one reading and reports whether it was dropped as a
// duplicate of an already-accepted idempotency key. Duplicates are not an
// error: from a retrying client's point of view the reading has been
// delivered.
func (c *Collector) SubmitDedup(r Reading) (duplicate bool, err error) {
	defer func() { c.metrics.recordSubmit(duplicate, err) }()
	if m := c.metrics; m != nil {
		start := time.Now()
		defer func() { m.submitSeconds.Observe(time.Since(start).Seconds()) }()
	}
	// A reading carrying its origin's traceparent gets an ingest span
	// parented into that trace — the link that survives hours in the
	// agent's spool. Unsampled origins (the common case at low ratios)
	// make StartRemote return nil and every span call below a no-op.
	if r.Trace != "" {
		if psc, ok := obs.ParseTraceParent(r.Trace); ok {
			if span := c.tracer().StartRemote(psc, "trust.ingest"); span != nil {
				span.SetAttr("node", string(r.Node))
				span.SetAttr("signal", r.SignalID)
				defer func() {
					if err != nil {
						span.SetError(err)
					}
					if duplicate {
						span.SetAttr("duplicate", "true")
					}
					span.End()
				}()
			}
		}
	}
	if _, ok := c.Ledger.Node(r.Node); !ok {
		return false, fmt.Errorf("trust: node %s not registered", r.Node)
	}
	if r.SignalID == "" {
		return false, fmt.Errorf("trust: reading needs a signal ID")
	}
	if r.Key != "" {
		h := fnv1a(r.Key)
		d := &c.dedups[h&c.mask]
		slot := hash.Mix64(h)
		// Lock-free fast path: a retried key whose slot still points at
		// it is a duplicate with certainty — no lock, no map lookup.
		if d.fastDup(slot, r.Key) {
			return true, nil
		}
		c.lockCounted(&d.mu, stripeDedup)
		if d.dup(r.Key) {
			d.mu.Unlock()
			return true, nil
		}
		d.remember(slot, r.Key, c.dedupLimit())
		d.mu.Unlock()
	}
	// The staleness signal the measurement scheduler plans from: the
	// newest evidence timestamp per node. Reading time, not arrival time,
	// so a spool replay of old readings does not fake freshness. touch is
	// lock-free (CAS-max on a per-node atomic), so freshness traffic
	// never contends.
	c.fresh[fnv1a(string(r.Node))&c.mask].touch(r.Node, r.At)
	window := r.At.Truncate(c.EpochWindow)
	st := &c.epochs[fnv1a(r.SignalID)&c.mask]
	c.lockCounted(&st.mu, stripeEpoch)
	st.insertLocked(r.SignalID, window, r.Node, r.PowerDBm)
	st.mu.Unlock()
	st.markDirty()
	return false, nil
}

// lockCounted acquires mu, counting the acquisition as contended when a
// fast-path TryLock fails. The counter makes shard pressure visible
// without the cost of the mutex profiler in the steady state.
func (c *Collector) lockCounted(mu *sync.Mutex, which int) {
	if mu.TryLock() {
		return
	}
	c.metrics.recordContention(which)
	mu.Lock()
}

// CloseEpochs finalizes every pending epoch that started before the
// cutoff: runs the upper-bound check, archives the epoch, runs the
// correlation check over the signal's history, and updates the ledger.
// It returns all anomalies found.
//
// Merge determinism: candidate signals are gathered from every stripe,
// then processed in one globally sorted pass (signals ascending, windows
// ascending within a signal) — the exact order the single-lock collector
// used, so anomaly lists and ledger updates are identical at any stripe
// count.
func (c *Collector) CloseEpochs(cutoff time.Time) []Anomaly {
	// Epoch close aggregates readings from many traces, so it roots its
	// own rather than picking one contributor arbitrarily.
	_, span := obs.StartSpan(obs.WithTracer(context.Background(), c.tracer()), "trust.close_epochs")
	defer span.End()
	// Drain-then-close: the same two primitives the replica tier uses,
	// so a single collector and a coordinator merging drains from N
	// replicas run the identical pipeline by construction (see
	// replica.go).
	epochs := c.DrainPending(cutoff)
	all, _ := c.CloseDrained(cutoff, epochs)
	span.SetAttr("epochs", strconv.Itoa(len(epochs)))
	span.SetAttr("anomalies", strconv.Itoa(len(all)))
	return all
}

// NodeActivity is one fleet member's staleness signal: the consensus
// score plus when the collector last saw evidence from the node. A zero
// LastReading means never.
type NodeActivity struct {
	Node        NodeID
	Score       Score
	Registered  time.Time
	LastReading time.Time
}

// Fleet returns every registered node with its activity, sorted by ID —
// the planner input a measurement scheduler polls for.
func (c *Collector) Fleet() []NodeActivity {
	nodes := c.Ledger.Nodes()
	out := make([]NodeActivity, 0, len(nodes))
	for _, n := range nodes {
		last := c.fresh[fnv1a(string(n.ID))&c.mask].lastSeen(n.ID)
		out = append(out, NodeActivity{
			Node:        n.ID,
			Score:       c.Ledger.Trust(n.ID),
			Registered:  n.Registered,
			LastReading: last,
		})
	}
	return out
}

// PendingEpochs returns how many epochs are open and awaiting closure.
// Lock-free: each stripe maintains its open-window count atomically, so
// the metrics scrape (trust_pending_epochs) never touches ingest locks.
func (c *Collector) PendingEpochs() int {
	n := int64(0)
	for i := range c.epochs {
		n += c.epochs[i].open.Load()
	}
	return int(n)
}

// History returns the closed epochs for a signal.
func (c *Collector) History(signal string) []Epoch {
	st := &c.epochs[fnv1a(signal)&c.mask]
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]Epoch(nil), st.history[signal]...)
}

// HTTP API types.

type registerRequest struct {
	ID             string  `json:"id"`
	Operator       string  `json:"operator"`
	Lat            float64 `json:"lat"`
	Lon            float64 `json:"lon"`
	ClaimedOutdoor bool    `json:"claimed_outdoor"`
	Hardware       string  `json:"hardware"`
}

type submitRequest struct {
	Node     string    `json:"node"`
	SignalID string    `json:"signal_id"`
	PowerDBm float64   `json:"power_dbm"`
	At       time.Time `json:"at"`
	Key      string    `json:"key,omitempty"`
	Trace    string    `json:"trace,omitempty"`
}

// reading converts the wire form, defaulting a zero timestamp to now.
func (s submitRequest) reading(now func() time.Time) Reading {
	at := s.At
	if at.IsZero() {
		at = now()
	}
	return Reading{Node: NodeID(s.Node), SignalID: s.SignalID, PowerDBm: s.PowerDBm, At: at, Key: s.Key, Trace: s.Trace}
}

// batchResponse summarizes a batch submission. Rejected readings are
// permanently bad (unknown node, missing signal); retrying them cannot
// succeed, so the client should ack and drop them.
type batchResponse struct {
	Accepted   int      `json:"accepted"`
	Duplicates int      `json:"duplicates"`
	Rejected   int      `json:"rejected"`
	Errors     []string `json:"errors,omitempty"`
}

type trustResponse struct {
	Node   string  `json:"node"`
	Score  float64 `json:"score"`
	Rating string  `json:"rating"`
}

// fleetEntry is the /api/fleet wire form (sched.FleetEntry mirrors it).
type fleetEntry struct {
	Node          string    `json:"node"`
	Score         float64   `json:"score"`
	Rating        string    `json:"rating"`
	RegisteredAt  time.Time `json:"registered_at"`
	LastReadingAt time.Time `json:"last_reading_at"`
}

// maxReadingsBody bounds one /api/readings request body.
const maxReadingsBody = 16 << 20

// ingestChunk bounds how many decoded readings accumulate before a
// SubmitBatch flush: big enough to amortize each stripe lock across
// hundreds of readings, small enough that a 10k-reading body still
// ingests in O(chunk) memory, preserving the streaming-decode bound.
const ingestChunk = 256

// ingestScratch is the pooled per-request decode state for /api/readings:
// a reusable buffered reader, request/response structs, and the chunk
// buffers the batched submit path flushes through, so the steady-state
// ingest path allocates only what encoding/json needs for one array
// element — never a second full-body copy.
type ingestScratch struct {
	br    *bufio.Reader
	req   submitRequest
	resp  batchResponse
	chunk []Reading
	outs  []SubmitOutcome
}

var ingestPool = sync.Pool{
	New: func() interface{} {
		return &ingestScratch{
			br:    bufio.NewReaderSize(nil, 32<<10),
			chunk: make([]Reading, 0, ingestChunk),
		}
	},
}

// flushChunk submits the accumulated readings through the batched entry
// point and folds the outcomes into the response summary.
func (c *Collector) flushChunk(sc *ingestScratch) {
	if len(sc.chunk) == 0 {
		return
	}
	sc.outs = c.SubmitBatch(sc.chunk, sc.outs)
	for i := range sc.outs {
		switch o := &sc.outs[i]; {
		case o.Err != nil:
			sc.resp.Rejected++
			if len(sc.resp.Errors) < 10 {
				sc.resp.Errors = append(sc.resp.Errors, o.Err.Error())
			}
		case o.Duplicate:
			sc.resp.Duplicates++
		default:
			sc.resp.Accepted++
		}
	}
	sc.chunk = sc.chunk[:0]
}

// peekNonSpace returns the first non-whitespace byte without consuming
// it, so the handler can dispatch between the single-object and batch
// wire forms before streaming the body through one json.Decoder.
func peekNonSpace(br *bufio.Reader) (byte, error) {
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		}
		if err := br.UnreadByte(); err != nil {
			return 0, err
		}
		return b, nil
	}
}

// serveReadings ingests the POST /api/readings body. The batch form (a
// JSON array of readings) is decoded as a token stream — element by
// element through one json.Decoder — so a 10k-reading batch is never
// materialized as a []submitRequest and the body bytes are read exactly
// once. Decoded elements accumulate into ingestChunk-sized groups and
// ingest through SubmitBatch, which takes each stripe lock once per
// chunk instead of once per reading. Each element is individually
// accepted, deduplicated or rejected; a malformed element flushes the
// decoded prefix and aborts with 400 mid-stream, and the idempotency
// keys on the already-ingested prefix make the client's retry safe.
func (c *Collector) serveReadings(w http.ResponseWriter, r *http.Request, now func() time.Time) {
	sc := ingestPool.Get().(*ingestScratch)
	defer func() {
		sc.br.Reset(nil)
		ingestPool.Put(sc)
	}()
	sc.br.Reset(io.LimitReader(r.Body, maxReadingsBody))
	first, err := peekNonSpace(sc.br)
	if err != nil {
		http.Error(w, "empty or unreadable body", http.StatusBadRequest)
		return
	}
	dec := json.NewDecoder(sc.br)
	if first != '[' {
		// Single-object form.
		sc.req = submitRequest{}
		if err := dec.Decode(&sc.req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := c.Submit(sc.req.reading(now)); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		return
	}
	// Batch form: a JSON array of readings. The summary lets a
	// store-and-forward client ack its whole batch: duplicates were
	// already delivered, rejections can never succeed.
	if _, err := dec.Token(); err != nil { // consume '['
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sc.resp = batchResponse{Errors: sc.resp.Errors[:0]}
	sc.chunk = sc.chunk[:0]
	for i := 0; dec.More(); i++ {
		sc.req = submitRequest{}
		if err := dec.Decode(&sc.req); err != nil {
			// Ingest what already decoded cleanly, then reject: the
			// pre-chunking behaviour (submit-as-you-decode) ingested the
			// full well-formed prefix, and the client's retry logic
			// depends on that.
			c.flushChunk(sc)
			http.Error(w, fmt.Sprintf("batch element %d: %v", i, err), http.StatusBadRequest)
			return
		}
		sc.chunk = append(sc.chunk, sc.req.reading(now))
		if len(sc.chunk) >= ingestChunk {
			c.flushChunk(sc)
		}
	}
	if _, err := dec.Token(); err != nil { // consume ']'
		c.flushChunk(sc)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.flushChunk(sc)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(&sc.resp)
}

// Handler exposes the collector over HTTP:
//
//	POST /api/register  — enroll a node
//	POST /api/readings  — submit a reading
//	GET  /api/trust?node=ID — query a trust score
//	GET  /api/fleet     — every node's score + staleness (scheduler input)
//
// Every route runs under the RED middleware: incoming traceparent
// headers are continued into server spans and per-route latency lands in
// http_server_request_seconds (the /debug/slo input).
func (c *Collector) Handler(now func() time.Time) http.Handler {
	mw := obs.NewMiddleware("trust", c.Obs, c.Tracer)
	mux := http.NewServeMux()
	handle := func(route string, h http.HandlerFunc) {
		mux.Handle(route, mw.WrapHandler(route, h))
	}
	retryAfter := c.RetryAfter
	if retryAfter <= 0 {
		retryAfter = 5 * time.Second
	}
	// shed refuses a mutating request while the durable store is erroring:
	// accepting evidence we cannot persist — and acking it to an agent
	// that will then drop it from its spool — is silent data loss. 503 +
	// Retry-After tells the agents' retriers to hold the evidence and
	// back off; it replays from their spools once the store heals.
	shed := func(w http.ResponseWriter) bool {
		if !c.storeDegraded.Load() {
			return false
		}
		c.metrics.recordShed()
		obs.SetRetryAfter(w, retryAfter)
		http.Error(w, "durable store unavailable, retry later", http.StatusServiceUnavailable)
		return true
	}
	handle("/api/register", func(w http.ResponseWriter, r *http.Request) {
		c.metrics.recordRequest("register")
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if shed(w) {
			return
		}
		var req registerRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		err := c.registerDurable(Node{
			ID: NodeID(req.ID), Operator: req.Operator,
			Lat: req.Lat, Lon: req.Lon,
			ClaimedOutdoor: req.ClaimedOutdoor, Hardware: req.Hardware,
			Registered: now(),
		})
		if errors.Is(err, ErrStoreUnavailable) {
			obs.SetRetryAfter(w, retryAfter)
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		c.metrics.setNodeScore(NodeID(req.ID), c.Ledger.Trust(NodeID(req.ID)))
		w.WriteHeader(http.StatusCreated)
	})
	handle("/api/readings", func(w http.ResponseWriter, r *http.Request) {
		c.metrics.recordRequest("readings")
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if shed(w) {
			return
		}
		c.serveReadings(w, r, now)
	})
	handle("/api/fleet", func(w http.ResponseWriter, r *http.Request) {
		c.metrics.recordRequest("fleet")
		fleet := c.Fleet()
		out := make([]fleetEntry, 0, len(fleet))
		for _, n := range fleet {
			out = append(out, fleetEntry{
				Node:          string(n.Node),
				Score:         float64(n.Score),
				Rating:        n.Score.Quantize(),
				RegisteredAt:  n.Registered,
				LastReadingAt: n.LastReading,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
	handle("/api/trust", func(w http.ResponseWriter, r *http.Request) {
		c.metrics.recordRequest("trust")
		id := NodeID(r.URL.Query().Get("node"))
		if _, ok := c.Ledger.Node(id); !ok {
			http.Error(w, "unknown node", http.StatusNotFound)
			return
		}
		s := c.Ledger.Trust(id)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(trustResponse{Node: string(id), Score: float64(s), Rating: s.Quantize()})
	})
	return mux
}
