package trust

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Collector is the cloud side of the crowd-sourced network: nodes register
// and stream readings of shared reference signals; the collector groups
// them into epochs, runs the consensus checks, and maintains the trust
// ledger.
type Collector struct {
	Ledger   *Ledger
	Detector *Detector
	// EpochWindow groups readings of a signal whose timestamps fall in
	// the same window.
	EpochWindow time.Duration

	// DedupCap bounds the idempotency-key memory (oldest keys are
	// forgotten first). Zero means the default of 65536.
	DedupCap int

	mu       sync.Mutex
	pending  map[string]map[time.Time]*Epoch // signal → window start → epoch
	history  map[string][]Epoch              // closed epochs per signal
	seen     map[string]struct{}             // accepted idempotency keys
	seenFIFO []string                        // eviction order for seen
	lastSeen map[NodeID]time.Time            // newest reading timestamp per node

	// metrics is non-nil only after Instrument; see metrics.go.
	metrics *collectorMetrics
}

// NewCollector returns a collector with a fresh ledger.
func NewCollector() *Collector {
	return &Collector{
		Ledger:      NewLedger(),
		Detector:    NewDetector(),
		EpochWindow: time.Minute,
		pending:     make(map[string]map[time.Time]*Epoch),
		history:     make(map[string][]Epoch),
		seen:        make(map[string]struct{}),
		lastSeen:    make(map[NodeID]time.Time),
	}
}

// Submit ingests one reading.
func (c *Collector) Submit(r Reading) error {
	_, err := c.SubmitDedup(r)
	return err
}

// SubmitDedup ingests one reading and reports whether it was dropped as a
// duplicate of an already-accepted idempotency key. Duplicates are not an
// error: from a retrying client's point of view the reading has been
// delivered.
func (c *Collector) SubmitDedup(r Reading) (duplicate bool, err error) {
	defer func() { c.metrics.recordSubmit(duplicate, err) }()
	if _, ok := c.Ledger.Node(r.Node); !ok {
		return false, fmt.Errorf("trust: node %s not registered", r.Node)
	}
	if r.SignalID == "" {
		return false, fmt.Errorf("trust: reading needs a signal ID")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.Key != "" {
		if _, ok := c.seen[r.Key]; ok {
			return true, nil
		}
		c.rememberLocked(r.Key)
	}
	// The staleness signal the measurement scheduler plans from: the
	// newest evidence timestamp per node. Reading time, not arrival time,
	// so a spool replay of old readings does not fake freshness.
	if r.At.After(c.lastSeen[r.Node]) {
		c.lastSeen[r.Node] = r.At
	}
	window := r.At.Truncate(c.EpochWindow)
	byWindow, ok := c.pending[r.SignalID]
	if !ok {
		byWindow = make(map[time.Time]*Epoch)
		c.pending[r.SignalID] = byWindow
	}
	e, ok := byWindow[window]
	if !ok {
		e = &Epoch{SignalID: r.SignalID, At: window, Readings: map[NodeID]float64{}}
		byWindow[window] = e
	}
	e.Readings[r.Node] = r.PowerDBm
	return false, nil
}

// rememberLocked records an accepted idempotency key, evicting the oldest
// once the memory is full. The cap trades perfect dedup for bounded
// memory: a key must be retried within DedupCap accepted readings to be
// caught, which at any plausible submission rate covers retry windows of
// hours.
func (c *Collector) rememberLocked(key string) {
	cap := c.DedupCap
	if cap <= 0 {
		cap = 65536
	}
	for len(c.seenFIFO) >= cap {
		delete(c.seen, c.seenFIFO[0])
		c.seenFIFO = c.seenFIFO[1:]
	}
	c.seen[key] = struct{}{}
	c.seenFIFO = append(c.seenFIFO, key)
}

// CloseEpochs finalizes every pending epoch that started before the
// cutoff: runs the upper-bound check, archives the epoch, runs the
// correlation check over the signal's history, and updates the ledger.
// It returns all anomalies found.
func (c *Collector) CloseEpochs(cutoff time.Time) []Anomaly {
	c.mu.Lock()
	defer c.mu.Unlock()
	var all []Anomaly
	signals := make([]string, 0, len(c.pending))
	for sig := range c.pending {
		signals = append(signals, sig)
	}
	sort.Strings(signals)
	for _, sig := range signals {
		byWindow := c.pending[sig]
		var windows []time.Time
		for w := range byWindow {
			if w.Before(cutoff) {
				windows = append(windows, w)
			}
		}
		sort.Slice(windows, func(i, j int) bool { return windows[i].Before(windows[j]) })
		for _, w := range windows {
			e := byWindow[w]
			delete(byWindow, w)
			anomalies := c.Detector.CheckEpoch(*e)
			c.history[sig] = append(c.history[sig], *e)
			var participants []NodeID
			for id := range e.Readings {
				participants = append(participants, id)
			}
			sort.Slice(participants, func(i, j int) bool { return participants[i] < participants[j] })
			// Correlation check over the accumulated history.
			anomalies = append(anomalies, c.Detector.CheckCorrelation(c.history[sig])...)
			Apply(c.Ledger, participants, anomalies)
			c.metrics.recordEpochClosed(anomalies)
			for _, id := range participants {
				c.metrics.setNodeScore(id, c.Ledger.Trust(id))
			}
			all = append(all, anomalies...)
		}
	}
	return all
}

// NodeActivity is one fleet member's staleness signal: the consensus
// score plus when the collector last saw evidence from the node. A zero
// LastReading means never.
type NodeActivity struct {
	Node        NodeID
	Score       Score
	Registered  time.Time
	LastReading time.Time
}

// Fleet returns every registered node with its activity, sorted by ID —
// the planner input a measurement scheduler polls for.
func (c *Collector) Fleet() []NodeActivity {
	nodes := c.Ledger.Nodes()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeActivity, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, NodeActivity{
			Node:        n.ID,
			Score:       c.Ledger.Trust(n.ID),
			Registered:  n.Registered,
			LastReading: c.lastSeen[n.ID],
		})
	}
	return out
}

// PendingEpochs returns how many epochs are open and awaiting closure.
func (c *Collector) PendingEpochs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, byWindow := range c.pending {
		n += len(byWindow)
	}
	return n
}

// History returns the closed epochs for a signal.
func (c *Collector) History(signal string) []Epoch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Epoch(nil), c.history[signal]...)
}

// HTTP API types.

type registerRequest struct {
	ID             string  `json:"id"`
	Operator       string  `json:"operator"`
	Lat            float64 `json:"lat"`
	Lon            float64 `json:"lon"`
	ClaimedOutdoor bool    `json:"claimed_outdoor"`
	Hardware       string  `json:"hardware"`
}

type submitRequest struct {
	Node     string    `json:"node"`
	SignalID string    `json:"signal_id"`
	PowerDBm float64   `json:"power_dbm"`
	At       time.Time `json:"at"`
	Key      string    `json:"key,omitempty"`
}

// reading converts the wire form, defaulting a zero timestamp to now.
func (s submitRequest) reading(now func() time.Time) Reading {
	at := s.At
	if at.IsZero() {
		at = now()
	}
	return Reading{Node: NodeID(s.Node), SignalID: s.SignalID, PowerDBm: s.PowerDBm, At: at, Key: s.Key}
}

// batchResponse summarizes a batch submission. Rejected readings are
// permanently bad (unknown node, missing signal); retrying them cannot
// succeed, so the client should ack and drop them.
type batchResponse struct {
	Accepted   int      `json:"accepted"`
	Duplicates int      `json:"duplicates"`
	Rejected   int      `json:"rejected"`
	Errors     []string `json:"errors,omitempty"`
}

type trustResponse struct {
	Node   string  `json:"node"`
	Score  float64 `json:"score"`
	Rating string  `json:"rating"`
}

// fleetEntry is the /api/fleet wire form (sched.FleetEntry mirrors it).
type fleetEntry struct {
	Node          string    `json:"node"`
	Score         float64   `json:"score"`
	Rating        string    `json:"rating"`
	RegisteredAt  time.Time `json:"registered_at"`
	LastReadingAt time.Time `json:"last_reading_at"`
}

// Handler exposes the collector over HTTP:
//
//	POST /api/register  — enroll a node
//	POST /api/readings  — submit a reading
//	GET  /api/trust?node=ID — query a trust score
//	GET  /api/fleet     — every node's score + staleness (scheduler input)
func (c *Collector) Handler(now func() time.Time) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/register", func(w http.ResponseWriter, r *http.Request) {
		c.metrics.recordRequest("register")
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req registerRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		err := c.Ledger.Register(Node{
			ID: NodeID(req.ID), Operator: req.Operator,
			Lat: req.Lat, Lon: req.Lon,
			ClaimedOutdoor: req.ClaimedOutdoor, Hardware: req.Hardware,
			Registered: now(),
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		c.metrics.setNodeScore(NodeID(req.ID), c.Ledger.Trust(NodeID(req.ID)))
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("/api/readings", func(w http.ResponseWriter, r *http.Request) {
		c.metrics.recordRequest("readings")
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		trimmed := bytes.TrimLeft(body, " \t\r\n")
		if len(trimmed) > 0 && trimmed[0] == '[' {
			// Batch form: a JSON array of readings, each individually
			// accepted, deduplicated or rejected. The summary lets a
			// store-and-forward client ack its whole batch: duplicates
			// were already delivered, rejections can never succeed.
			var reqs []submitRequest
			if err := json.Unmarshal(trimmed, &reqs); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			var resp batchResponse
			for _, req := range reqs {
				dup, err := c.SubmitDedup(req.reading(now))
				switch {
				case err != nil:
					resp.Rejected++
					if len(resp.Errors) < 10 {
						resp.Errors = append(resp.Errors, err.Error())
					}
				case dup:
					resp.Duplicates++
				default:
					resp.Accepted++
				}
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusAccepted)
			_ = json.NewEncoder(w).Encode(resp)
			return
		}
		var req submitRequest
		if err := json.Unmarshal(trimmed, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := c.Submit(req.reading(now)); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("/api/fleet", func(w http.ResponseWriter, r *http.Request) {
		c.metrics.recordRequest("fleet")
		fleet := c.Fleet()
		out := make([]fleetEntry, 0, len(fleet))
		for _, n := range fleet {
			out = append(out, fleetEntry{
				Node:          string(n.Node),
				Score:         float64(n.Score),
				Rating:        n.Score.Quantize(),
				RegisteredAt:  n.Registered,
				LastReadingAt: n.LastReading,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/api/trust", func(w http.ResponseWriter, r *http.Request) {
		c.metrics.recordRequest("trust")
		id := NodeID(r.URL.Query().Get("node"))
		if _, ok := c.Ledger.Node(id); !ok {
			http.Error(w, "unknown node", http.StatusNotFound)
			return
		}
		s := c.Ledger.Trust(id)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(trustResponse{Node: string(id), Score: float64(s), Rating: s.Quantize()})
	})
	return mux
}
