package trust

import (
	"sync"
	"time"
)

// Background epoch closer. CloseEpochs does the collector's heavy
// lifting — stripe scans, consensus checks, correlation over history,
// durable score appends — and historically every embedder (spectrumd's
// epoch loop, loadgen's durability scenario, tests) rolled its own
// goroutine around it. The closer is that goroutine, owned by the
// collector: submit only appends to pending state and flips a stripe
// dirty-mark, and the closer's drain pass visits only stripes the marks
// (or a nonzero open-window count) say have work. One implementation,
// injectable clocks for simulated time, and a pluggable Run hook so the
// replica coordinator's merge-close rides the same cadence machinery.

// CloserConfig configures StartCloser.
type CloserConfig struct {
	// Interval is the close cadence; it must be positive.
	Interval time.Duration
	// Lag is how far behind now the close cutoff trails, so a window
	// still receiving readings is not closed under them. Zero means
	// Interval (the common "close windows one period old" policy).
	Lag time.Duration
	// Now and After inject the clock; nil means time.Now / time.After.
	// spectrumd passes its clock.Clock hooks so simulated-time tests
	// drive the closer deterministically.
	Now   func() time.Time
	After func(time.Duration) <-chan time.Time
	// Run performs one close pass at the computed cutoff; nil means the
	// collector's own CloseEpochs. spectrumd substitutes its
	// replica-aware pass (coordinator merge-close or follower no-op)
	// plus persistence.
	Run func(cutoff time.Time) []Anomaly
	// OnAnomalies, when non-nil, receives each pass's non-empty anomaly
	// list — the logging/alerting hook.
	OnAnomalies func([]Anomaly)
}

// Closer is a running background epoch closer.
type Closer struct {
	stop     chan struct{}
	done     chan struct{}
	kick     chan struct{}
	stopOnce sync.Once
}

// StartCloser launches the collector's background close loop and
// returns its handle. The loop runs one close pass every Interval (or
// sooner when kicked) until Stop.
func (c *Collector) StartCloser(cfg CloserConfig) *Closer {
	if cfg.Interval <= 0 {
		panic("trust: StartCloser needs a positive Interval")
	}
	if cfg.Lag == 0 {
		cfg.Lag = cfg.Interval
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	after := cfg.After
	if after == nil {
		after = time.After
	}
	run := cfg.Run
	if run == nil {
		run = c.CloseEpochs
	}
	cl := &Closer{
		stop: make(chan struct{}),
		done: make(chan struct{}),
		kick: make(chan struct{}, 1),
	}
	go func() {
		defer close(cl.done)
		for {
			select {
			case <-cl.stop:
				return
			case <-after(cfg.Interval):
			case <-cl.kick:
			}
			anomalies := run(now().Add(-cfg.Lag))
			if cfg.OnAnomalies != nil && len(anomalies) > 0 {
				cfg.OnAnomalies(anomalies)
			}
		}
	}()
	return cl
}

// Kick schedules an immediate close pass without waiting for the next
// tick. Non-blocking; kicks coalesce with an already-pending one.
func (cl *Closer) Kick() {
	select {
	case cl.kick <- struct{}{}:
	default:
	}
}

// Stop halts the loop and waits for an in-flight pass to finish. The
// closer does not run a final pass: a shutting-down embedder decides
// itself whether trailing windows should close early (spectrumd flushes
// them explicitly so restarts do not double-close).
func (cl *Closer) Stop() {
	cl.stopOnce.Do(func() { close(cl.stop) })
	<-cl.done
}
