package trust

import (
	"sync"
	"sync/atomic"
	"time"

	"sensorcal/internal/hash"
)

// Lock-striped collector state. The paper's endgame (§5) is a market fed
// by many volunteer nodes streaming calibration evidence concurrently;
// a single mutex in front of the pending-epoch, dedup and freshness maps
// serializes every core the collector has. Each kind of state is keyed
// by something different — epochs by signal ID, idempotency keys by the
// key itself, freshness by node ID — so each gets its own array of
// hash-selected stripes, each behind its own lock. Readings of different
// signals from different nodes then never touch the same lock, and the
// merge paths (CloseEpochs, Fleet, History) iterate stripes in a
// globally sorted order so their results are byte-identical to the
// single-lock collector at any stripe count.
//
// On top of the striping, two of the three families have lock-free fast
// paths (see DESIGN §17): the dedup ring answers "definitely already
// accepted" from hash-indexed atomic slots without a lock, and
// freshness is a copy-on-write map of per-node atomic nanos, so
// pure-duplicate and freshness traffic never contend at all.

// stripeCount rounds n up to a power of two (minimum 1) so stripe
// selection is a mask instead of a modulo.
func stripeCount(n int) int {
	if n < 1 {
		n = 1
	}
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// fnv1a is the shared 64-bit FNV-1a hash (internal/hash), aliased so the
// many call sites in this package stay short.
func fnv1a(s string) uint64 { return hash.FNV1a(s) }

// epochStripe holds the open and closed epochs of every signal that
// hashes to it. History lives next to pending under the same lock
// because CloseEpochs runs the correlation check over a signal's history
// in the same critical section that archives the epoch.
type epochStripe struct {
	mu      sync.Mutex
	pending map[string]map[time.Time]*Epoch // signal → window start → epoch
	history map[string][]Epoch              // closed epochs per signal
	// open counts this stripe's pending (signal, window) epochs. It is
	// maintained under mu but read without it, so PendingEpochs and the
	// background closer's skip check never take stripe locks.
	open atomic.Int64
	// dirty is set (outside mu) after a submit lands a reading here. The
	// epoch closer's drain pass skips stripes that are clean and have no
	// open windows, so an idle stripe costs the closer two atomic loads
	// instead of a lock acquisition and a map scan.
	dirty atomic.Bool
	_     [8]byte // pad to a cache line against false sharing
}

// markDirty flags the stripe for the next drain pass. Load-before-store
// keeps the steady state (already dirty) a read-only cache hit instead
// of an ownership-stealing write on every submit.
func (st *epochStripe) markDirty() {
	if !st.dirty.Load() {
		st.dirty.Store(true)
	}
}

// insertLocked lands one reading in its (signal, window) epoch. Caller
// holds st.mu and calls markDirty after unlocking.
func (st *epochStripe) insertLocked(sig string, window time.Time, node NodeID, power float64) {
	byWindow, ok := st.pending[sig]
	if !ok {
		byWindow = make(map[time.Time]*Epoch)
		st.pending[sig] = byWindow
	}
	e, ok := byWindow[window]
	if !ok {
		e = &Epoch{SignalID: sig, At: window, Readings: map[NodeID]float64{}}
		byWindow[window] = e
		st.open.Add(1)
	}
	e.Readings[node] = power
}

// freshMap is a freshness stripe's node → newest-evidence index. The map
// itself is immutable once published (copy-on-write on node insert, a
// once-per-node event); the per-node cells mutate via CAS. Timestamps
// are UnixNano, which confines freshness to years 1678–2262 — fine for
// evidence timestamps — and lets the submit hot path update a node's
// staleness with a single atomic max instead of a stripe lock.
type freshMap map[NodeID]*atomic.Int64

// freshStripe holds the newest reading timestamp of every node that
// hashes to it — the staleness signal the scheduler plans from. Reads
// and steady-state updates are lock-free; mu only serializes the
// copy-on-write republish when a new node appears.
type freshStripe struct {
	mu sync.Mutex
	m  atomic.Pointer[freshMap]
	_  [40]byte
}

// touch records at as id's newest evidence timestamp if it is newer.
// Zero timestamps are ignored: under the old map semantics a zero At
// could never satisfy After(lastSeen), so it never created an entry.
func (f *freshStripe) touch(id NodeID, at time.Time) {
	if at.IsZero() {
		return
	}
	nanos := at.UnixNano()
	if m := f.m.Load(); m != nil {
		if cell, ok := (*m)[id]; ok {
			casMax(cell, nanos)
			return
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	// Re-check under mu: another goroutine may have published the node
	// while we waited.
	old := f.m.Load()
	if old != nil {
		if cell, ok := (*old)[id]; ok {
			casMax(cell, nanos)
			return
		}
	}
	var next freshMap
	if old == nil {
		next = make(freshMap, 1)
	} else {
		next = make(freshMap, len(*old)+1)
		for k, v := range *old {
			next[k] = v
		}
	}
	cell := new(atomic.Int64)
	cell.Store(nanos)
	next[id] = cell
	f.m.Store(&next)
}

// casMax raises cell to nanos unless it already holds something newer.
func casMax(cell *atomic.Int64, nanos int64) {
	for {
		cur := cell.Load()
		if nanos <= cur {
			return
		}
		if cell.CompareAndSwap(cur, nanos) {
			return
		}
	}
}

// lastSeen returns id's newest evidence timestamp, zero if never seen.
// Lock-free. The UTC conversion makes the returned value bit-identical
// to the time.Time the old map stored for UTC inputs, which the
// equivalence tests compare with reflect.DeepEqual.
func (f *freshStripe) lastSeen(id NodeID) time.Time {
	m := f.m.Load()
	if m == nil {
		return time.Time{}
	}
	cell, ok := (*m)[id]
	if !ok {
		return time.Time{}
	}
	return time.Unix(0, cell.Load()).UTC()
}

// dedupSlots is the lock-free membership cache in front of a dedup
// stripe: a power-of-two array of pointers to the ring's live key
// strings, indexed by Mix64 of the key's hash (Mix64 so slot selection
// does not share low bits with stripe selection — all keys in a stripe
// already agree on those). Invariant: a slot never points at a key that
// has been evicted from the ring — eviction clears the slot (by pointer
// identity) before the key leaves, and resize rebuilds the table — so a
// positive hit is always authoritative. A miss (empty slot or a
// colliding other key) says nothing and falls back to the locked map.
type dedupSlots struct {
	mask  uint64
	slots []atomic.Pointer[string]
}

// dedupStripe remembers accepted idempotency keys in a fixed-size ring:
// once limit keys are held the oldest is overwritten in place. The ring
// holds pointers so each key string is shared with the slot cache and
// eviction can clear its slot by identity. mu guards the map and ring;
// the slot table is read lock-free and written only under mu.
type dedupStripe struct {
	mu    sync.Mutex
	seen  map[string]struct{}
	ring  []*string // eviction ring, len == per-stripe limit once allocated
	head  int       // index of the oldest live key
	n     int       // live keys in the ring
	slots atomic.Pointer[dedupSlots]
}

// fastDup reports, without any lock, whether key was definitely already
// accepted. h is Mix64 of the key's FNV-1a hash. False negatives are
// fine (the caller re-checks under the stripe lock); false positives
// cannot happen because a slot only ever points at a live ring key and
// the pointed-at string is compared in full.
func (s *dedupStripe) fastDup(h uint64, key string) bool {
	ds := s.slots.Load()
	if ds == nil {
		return false
	}
	p := ds.slots[h&ds.mask].Load()
	return p != nil && *p == key
}

// dup reports whether key was already accepted. Caller holds mu.
func (s *dedupStripe) dup(key string) bool {
	_, ok := s.seen[key]
	return ok
}

// remember records an accepted key, evicting the oldest once the stripe
// holds limit keys. h is Mix64 of the key's FNV-1a hash. Caller holds mu.
func (s *dedupStripe) remember(h uint64, key string, limit int) {
	if limit < 1 {
		limit = 1
	}
	if len(s.ring) != limit {
		s.resize(limit)
	}
	kp := new(string)
	*kp = key
	if s.n == len(s.ring) {
		old := s.ring[s.head]
		delete(s.seen, *old)
		s.clearSlot(*old, old)
		s.ring[s.head] = kp
		s.head = (s.head + 1) % len(s.ring)
	} else {
		s.ring[(s.head+s.n)%len(s.ring)] = kp
		s.n++
	}
	s.seen[key] = struct{}{}
	s.storeSlot(h, kp)
}

// storeSlot publishes kp in the lock-free cache, growing the table when
// the ring limit changed. Caller holds mu.
func (s *dedupStripe) storeSlot(h uint64, kp *string) {
	ds := s.slots.Load()
	if ds == nil || len(ds.slots) < slotCount(len(s.ring)) {
		ds = s.rebuildSlots()
	}
	ds.slots[h&ds.mask].Store(kp)
}

// clearSlot removes an evicted key from the cache — but only if its slot
// still points at that exact string; a colliding newer key keeps the
// slot. Caller holds mu.
func (s *dedupStripe) clearSlot(key string, kp *string) {
	ds := s.slots.Load()
	if ds == nil {
		return
	}
	i := hash.Mix64(fnv1a(key)) & ds.mask
	if ds.slots[i].Load() == kp {
		ds.slots[i].Store(nil)
	}
}

// slotCount sizes the cache at ≥ 2× the ring so the load factor stays
// under one half and collisions (lock-path fallbacks) stay rare.
func slotCount(limit int) int {
	return stripeCount(2 * limit)
}

// rebuildSlots builds a fresh slot table from the live ring and
// publishes it. Caller holds mu.
func (s *dedupStripe) rebuildSlots() *dedupSlots {
	n := slotCount(len(s.ring))
	ds := &dedupSlots{mask: uint64(n - 1), slots: make([]atomic.Pointer[string], n)}
	for i := 0; i < s.n; i++ {
		kp := s.ring[(s.head+i)%len(s.ring)]
		ds.slots[hash.Mix64(fnv1a(*kp))&ds.mask].Store(kp)
	}
	s.slots.Store(ds)
	return ds
}

// resize rebuilds the ring at a new limit, preserving FIFO order and
// evicting the oldest keys that no longer fit. DedupCap is normally set
// once before traffic, so this runs at most once per stripe. Caller
// holds mu; the slot cache is rebuilt afterwards by storeSlot noticing
// the size change.
func (s *dedupStripe) resize(limit int) {
	ordered := make([]*string, 0, s.n)
	for i := 0; i < s.n; i++ {
		kp := s.ring[(s.head+i)%len(s.ring)]
		if s.n-i > limit {
			delete(s.seen, *kp) // oldest overflow
			continue
		}
		ordered = append(ordered, kp)
	}
	s.ring = make([]*string, limit)
	s.head = 0
	s.n = copy(s.ring, ordered)
	s.rebuildSlots()
}
