package trust

import (
	"sync"
	"time"
)

// Lock-striped collector state. The paper's endgame (§5) is a market fed
// by many volunteer nodes streaming calibration evidence concurrently;
// a single mutex in front of the pending-epoch, dedup and freshness maps
// serializes every core the collector has. Each kind of state is keyed
// by something different — epochs by signal ID, idempotency keys by the
// key itself, freshness by node ID — so each gets its own array of
// hash-selected stripes, each behind its own lock. Readings of different
// signals from different nodes then never touch the same lock, and the
// merge paths (CloseEpochs, Fleet, History) iterate stripes in a
// globally sorted order so their results are byte-identical to the
// single-lock collector at any stripe count.

// stripeCount rounds n up to a power of two (minimum 1) so stripe
// selection is a mask instead of a modulo.
func stripeCount(n int) int {
	if n < 1 {
		n = 1
	}
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// fnv1a is the 64-bit FNV-1a hash, inlined so stripe selection does not
// allocate a hash.Hash.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// epochStripe holds the open and closed epochs of every signal that
// hashes to it. History lives next to pending under the same lock
// because CloseEpochs runs the correlation check over a signal's history
// in the same critical section that archives the epoch.
type epochStripe struct {
	mu      sync.Mutex
	pending map[string]map[time.Time]*Epoch // signal → window start → epoch
	history map[string][]Epoch              // closed epochs per signal
	_       [24]byte                        // pad to a cache line against false sharing
}

// freshStripe holds the newest reading timestamp of every node that
// hashes to it — the staleness signal the scheduler plans from.
type freshStripe struct {
	mu       sync.Mutex
	lastSeen map[NodeID]time.Time
	_        [48]byte
}

// dedupStripe remembers accepted idempotency keys in a fixed-size ring:
// once limit keys are held the oldest is overwritten in place. The old
// implementation shifted a slice (seenFIFO = seenFIFO[1:]), which pinned
// the ever-growing backing array and reallocated on every append cycle;
// the ring reuses one allocation forever.
type dedupStripe struct {
	mu   sync.Mutex
	seen map[string]struct{}
	ring []string // eviction ring, len == per-stripe limit once allocated
	head int      // index of the oldest live key
	n    int      // live keys in the ring
}

// dup reports whether key was already accepted. Caller holds mu.
func (s *dedupStripe) dup(key string) bool {
	_, ok := s.seen[key]
	return ok
}

// remember records an accepted key, evicting the oldest once the stripe
// holds limit keys. Caller holds mu.
func (s *dedupStripe) remember(key string, limit int) {
	if limit < 1 {
		limit = 1
	}
	if len(s.ring) != limit {
		s.resize(limit)
	}
	if s.n == len(s.ring) {
		delete(s.seen, s.ring[s.head])
		s.ring[s.head] = key
		s.head = (s.head + 1) % len(s.ring)
	} else {
		s.ring[(s.head+s.n)%len(s.ring)] = key
		s.n++
	}
	s.seen[key] = struct{}{}
}

// resize rebuilds the ring at a new limit, preserving FIFO order and
// evicting the oldest keys that no longer fit. DedupCap is normally set
// once before traffic, so this runs at most once per stripe.
func (s *dedupStripe) resize(limit int) {
	ordered := make([]string, 0, s.n)
	for i := 0; i < s.n; i++ {
		k := s.ring[(s.head+i)%len(s.ring)]
		if s.n-i > limit {
			delete(s.seen, k) // oldest overflow
			continue
		}
		ordered = append(ordered, k)
	}
	s.ring = make([]string, limit)
	s.head = 0
	s.n = copy(s.ring, ordered)
}
