package trust

import "time"

// Store is the durable backend for trust mutations. The collector keeps
// serving from the in-memory ledger; the store's job is crash safety —
// once an append returns nil, the mutation must survive a power cut.
// internal/store implements it as an append-only segment WAL with
// snapshot compaction; tests substitute in-memory fakes.
//
// The contract is deliberately small and off the submit hot path:
// registrations append when a node enrolls, scores append when an epoch
// closes. Individual readings are never persisted here — the agent-side
// spool already makes them durable until the collector acknowledges
// them, and an unflushed pending epoch re-accumulates from replay within
// one window.
type Store interface {
	// AppendRegister durably records an enrollment. It must return nil
	// only once the record would survive a crash.
	AppendRegister(n Node) error
	// AppendScores durably records the absolute post-update scores of an
	// epoch close. Absolute values make replay idempotent.
	AppendScores(at time.Time, updates []ScoreUpdate) error
}

// ScoreUpdate is one node's absolute score after an epoch close.
type ScoreUpdate struct {
	Node  NodeID `json:"node"`
	Score Score  `json:"score"`
}
