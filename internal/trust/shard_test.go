package trust

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"sensorcal/internal/hash"
)

// shardWorkload builds a deterministic stream of readings across nodes,
// signals and epoch windows, with one node inflating its power (caught
// by the upper-bound check) and one node replaying a constant (caught by
// the correlation check). A splitmix-style generator keeps it seedable
// without math/rand plumbing.
func shardWorkload(nNodes, nSignals, nWindows int, seed uint64) []Reading {
	next := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	var out []Reading
	for w := 0; w < nWindows; w++ {
		at := t0.Add(time.Duration(w) * time.Minute)
		trend := float64(int(next()%13)) - 6 // shared propagation swing
		for s := 0; s < nSignals; s++ {
			sig := fmt.Sprintf("tv-%d", 500+s)
			for n := 0; n < nNodes; n++ {
				id := NodeID(fmt.Sprintf("node-%02d", n))
				p := -55 + trend + float64(int(next()%5))-2
				switch n {
				case 0: // inflates: flagrantly above consensus
					p = -10
				case 1: // replays a constant: decorrelates from the trend
					p = -52
				}
				out = append(out, Reading{
					Node: id, SignalID: sig, PowerDBm: p, At: at,
					Key: fmt.Sprintf("k-%d-%d-%d", w, s, n),
				})
			}
		}
	}
	return out
}

// newWorkloadCollector builds a collector with the workload's nodes
// registered at a fixed time.
func newWorkloadCollector(t *testing.T, shards, nNodes int) *Collector {
	t.Helper()
	c := NewShardedCollector(shards)
	for n := 0; n < nNodes; n++ {
		id := NodeID(fmt.Sprintf("node-%02d", n))
		if err := c.Ledger.Register(Node{ID: id, Registered: t0}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// submitSerial feeds readings through SubmitDedup one at a time — the
// reference ingest path every other entry point is pinned against.
func submitSerial(t *testing.T, c *Collector, rs []Reading) {
	t.Helper()
	for _, r := range rs {
		if _, err := c.SubmitDedup(r); err != nil {
			t.Fatal(err)
		}
	}
}

// submitBatched feeds readings through SubmitBatch in uneven chunks (a
// prime size, so chunk boundaries sweep across signal/node cycles).
func submitBatched(t *testing.T, c *Collector, rs []Reading) {
	t.Helper()
	const chunk = 7
	var outs []SubmitOutcome
	for len(rs) > 0 {
		n := chunk
		if n > len(rs) {
			n = len(rs)
		}
		outs = c.SubmitBatch(rs[:n], outs)
		for i := range outs {
			if outs[i].Err != nil {
				t.Fatal(outs[i].Err)
			}
		}
		rs = rs[n:]
	}
}

// TestShardedCollectorEquivalence replays an identical workload into
// collectors at 1, 4 and 16 shards — through both the serial SubmitDedup
// path and the batched SubmitBatch path — and requires byte-identical
// results from every merge path: CloseEpochs anomalies (order included),
// Fleet, History, PendingEpochs, and final ledger scores. The 1-shard
// serial collector is semantically the old single-lock collector, so
// this pins both ingest entry points at every stripe count to the
// pre-sharding behaviour.
func TestShardedCollectorEquivalence(t *testing.T) {
	const nNodes, nSignals, nWindows = 8, 5, 12
	readings := shardWorkload(nNodes, nSignals, nWindows, 42)

	type outcome struct {
		partial   []Anomaly // anomalies from a mid-stream partial close
		anomalies []Anomaly // anomalies from the final close
		fleet     []NodeActivity
		pending   int
		history   map[string][]Epoch
		trusted   []NodeID
	}
	run := func(shards int, submit func(*testing.T, *Collector, []Reading)) outcome {
		c := newWorkloadCollector(t, shards, nNodes)
		// Submit the first half, close part of the stream, submit the
		// rest, then close everything: exercises the merge paths with
		// both open and closed epochs in flight.
		half := len(readings) / 2
		submit(t, c, readings[:half])
		partial := c.CloseEpochs(t0.Add(3 * time.Minute))
		submit(t, c, readings[half:])
		pendingBefore := c.PendingEpochs()
		anomalies := c.CloseEpochs(t0.Add(time.Duration(nWindows+1) * time.Minute))
		history := map[string][]Epoch{}
		for s := 0; s < nSignals; s++ {
			sig := fmt.Sprintf("tv-%d", 500+s)
			history[sig] = c.History(sig)
		}
		return outcome{
			partial: partial, anomalies: anomalies, fleet: c.Fleet(),
			pending: pendingBefore, history: history, trusted: c.Ledger.Trusted(0.5),
		}
	}

	want := run(1, submitSerial)
	if len(want.anomalies) == 0 {
		t.Fatal("workload produced no anomalies; equivalence test is vacuous")
	}
	paths := []struct {
		name   string
		submit func(*testing.T, *Collector, []Reading)
		shards []int
	}{
		{"serial", submitSerial, []int{4, 16}},
		{"batch", submitBatched, []int{1, 4, 16}},
	}
	for _, p := range paths {
		for _, shards := range p.shards {
			got := run(shards, p.submit)
			if !reflect.DeepEqual(got.partial, want.partial) {
				t.Errorf("%s shards=%d: partial-close anomalies diverge:\n got %v\nwant %v", p.name, shards, got.partial, want.partial)
			}
			if !reflect.DeepEqual(got.anomalies, want.anomalies) {
				t.Errorf("%s shards=%d: final anomalies diverge:\n got %v\nwant %v", p.name, shards, got.anomalies, want.anomalies)
			}
			if !reflect.DeepEqual(got.fleet, want.fleet) {
				t.Errorf("%s shards=%d: fleet diverges:\n got %v\nwant %v", p.name, shards, got.fleet, want.fleet)
			}
			if got.pending != want.pending {
				t.Errorf("%s shards=%d: pending epochs = %d, want %d", p.name, shards, got.pending, want.pending)
			}
			if !reflect.DeepEqual(got.history, want.history) {
				t.Errorf("%s shards=%d: history diverges", p.name, shards)
			}
			if !reflect.DeepEqual(got.trusted, want.trusted) {
				t.Errorf("%s shards=%d: trusted set diverges:\n got %v\nwant %v", p.name, shards, got.trusted, want.trusted)
			}
		}
	}
}

// TestShardedCollectorDedup pins dedup behaviour across stripes: a
// retried key is dropped whichever stripe it hashes to, and capacity is
// split across stripes without losing recent keys.
func TestShardedCollectorDedup(t *testing.T) {
	c := newWorkloadCollector(t, 8, 1)
	at := t0
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		r := Reading{Node: "node-00", SignalID: "s", PowerDBm: -50, At: at, Key: key}
		if dup, err := c.SubmitDedup(r); err != nil || dup {
			t.Fatalf("first submit of %s: dup=%v err=%v", key, dup, err)
		}
		if dup, err := c.SubmitDedup(r); err != nil || !dup {
			t.Fatalf("retry of %s: dup=%v err=%v, want duplicate", key, dup, err)
		}
	}
}

// TestDedupRingEviction exercises the fixed-size ring directly: FIFO
// eviction at capacity and order-preserving resize when DedupCap changes
// between submissions. The lock-free slot cache must agree with the
// locked map at every step: a fastDup hit is only legal for a live key
// (no false positives), so every evicted key must answer false on both
// paths.
func TestDedupRingEviction(t *testing.T) {
	var s dedupStripe
	s.seen = make(map[string]struct{})
	slot := func(key string) uint64 { return hash.Mix64(fnv1a(key)) }
	rem := func(key string, limit int) { s.remember(slot(key), key, limit) }
	check := func(stage string, wants []bool) {
		t.Helper()
		for i, want := range wants {
			key := fmt.Sprintf("k%d", i)
			if got := s.dup(key); got != want {
				t.Errorf("%s: dup(%s) = %v, want %v", stage, key, got, want)
			}
			// fastDup may under-report (slot collision) but must never
			// claim an evicted key is live.
			if fast := s.fastDup(slot(key), key); fast && !want {
				t.Errorf("%s: fastDup(%s) = true for evicted key", stage, key)
			}
		}
	}
	for i := 0; i < 6; i++ {
		rem(fmt.Sprintf("k%d", i), 4)
	}
	check("after 6 inserts at cap 4", []bool{false, false, true, true, true, true})
	// Shrink: the oldest survivors are evicted, newest kept, and the
	// ring keeps working at the new capacity.
	rem("k6", 2)
	check("after shrink to 2", []bool{false, false, false, false, false, true, true})
	// Grow: existing keys survive and new capacity is usable.
	rem("k7", 5)
	rem("k8", 5)
	rem("k9", 5)
	check("after grow to 5", []bool{false, false, false, false, false, true, true, true, true, true})
	if len(s.seen) != 5 {
		t.Errorf("seen holds %d keys, want 5", len(s.seen))
	}
	// Live keys the map knows must also be fastDup hits here: with ≤5
	// keys in a ≥16-slot table seeded by Mix64 there are no collisions
	// among this fixed key set, so the cache should be fully populated.
	for i := 5; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		if !s.fastDup(slot(key), key) {
			t.Errorf("fastDup(%s) = false for live key", key)
		}
	}
}

// TestShardedCollectorConcurrentStress hammers a sharded collector from
// many goroutines — submits with keys, epoch closes, fleet/history/
// pending scrapes, and ledger reads — so `go test -race` can catch any
// stripe that escapes its lock.
func TestShardedCollectorConcurrentStress(t *testing.T) {
	const nNodes, nSignals, workers, perWorker = 16, 8, 8, 400
	c := newWorkloadCollector(t, 8, nNodes)
	// Big enough that no key is evicted mid-test: a retry must always be
	// caught, however long the scheduler parks a submitter.
	c.DedupCap = 64 * 1024
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Closers and scrapers run until the submitters finish.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.CloseEpochs(t0.Add(time.Duration(i%32) * time.Minute))
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = c.Fleet()
			_ = c.PendingEpochs()
			_ = c.History("sig-0")
			_ = c.Ledger.Trusted(0.4)
			_ = c.Ledger.Len()
		}
	}()
	var subWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		subWG.Add(1)
		go func(w int) {
			defer subWG.Done()
			for i := 0; i < perWorker; i++ {
				r := Reading{
					Node:     NodeID(fmt.Sprintf("node-%02d", (w*7+i)%nNodes)),
					SignalID: fmt.Sprintf("sig-%d", i%nSignals),
					PowerDBm: -50 - float64(i%10),
					At:       t0.Add(time.Duration(i%64) * time.Minute),
					Key:      fmt.Sprintf("w%d-%d", w, i),
				}
				if _, err := c.SubmitDedup(r); err != nil {
					t.Error(err)
					return
				}
				// Every 8th reading is a retry of the previous key.
				if i%8 == 0 && i > 0 {
					r.Key = fmt.Sprintf("w%d-%d", w, i-1)
					if dup, err := c.SubmitDedup(r); err != nil || !dup {
						t.Errorf("retry not deduped: dup=%v err=%v", dup, err)
						return
					}
				}
			}
		}(w)
	}
	subWG.Wait()
	close(stop)
	wg.Wait()
	// Drain everything and sanity-check the totals survived the chaos.
	c.CloseEpochs(t0.Add(365 * 24 * time.Hour))
	if c.PendingEpochs() != 0 {
		t.Errorf("pending epochs after final close = %d, want 0", c.PendingEpochs())
	}
	closed := 0
	for s := 0; s < nSignals; s++ {
		closed += len(c.History(fmt.Sprintf("sig-%d", s)))
	}
	if closed == 0 {
		t.Error("no epochs closed under stress")
	}
}

// BenchmarkSubmitSharded measures raw ingest throughput at several
// stripe counts — the microbench behind cmd/loadgen's macro numbers.
func BenchmarkSubmitSharded(b *testing.B) {
	for _, shards := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			const nNodes, nSignals = 64, 32
			c := NewShardedCollector(shards)
			nodes := make([]NodeID, nNodes)
			for n := 0; n < nNodes; n++ {
				nodes[n] = NodeID(fmt.Sprintf("node-%02d", n))
				if err := c.Ledger.Register(Node{ID: nodes[n]}); err != nil {
					b.Fatal(err)
				}
			}
			signals := make([]string, nSignals)
			for s := 0; s < nSignals; s++ {
				signals[s] = fmt.Sprintf("sig-%d", s)
			}
			at := t0
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					r := Reading{
						Node:     nodes[i%nNodes],
						SignalID: signals[i%nSignals],
						PowerDBm: -50,
						At:       at,
					}
					if _, err := c.SubmitDedup(r); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}
