// Package trust implements the crowd-sourced network layer the paper's
// calibration feeds (§1, §2, §5 "Establishing trust"): a registry of
// volunteer-operated sensor nodes, a ledger of per-node trust scores, and
// consensus-based fabrication detection over shared signals of
// opportunity.
//
// The economic setting from the paper: operators are paid for sensing, so
// they have an incentive to submit fabricated or low-quality data. The
// defenses here are (a) the automatic calibration report itself, (b) an
// upper-bound test — obstructions only attenuate, so a node reporting more
// power than the neighborhood consensus supports is lying — and (c) a
// temporal-correlation test: honest nodes track the real fluctuations of
// shared transmitters; fabricated streams do not.
package trust

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// NodeID identifies a registered sensor node.
type NodeID string

// Node is a registry entry.
type Node struct {
	ID       NodeID
	Operator string
	// Lat/Lon of the claimed installation.
	Lat, Lon float64
	// ClaimedOutdoor is the operator's self-reported placement.
	ClaimedOutdoor bool
	// Hardware is the advertised SDR model.
	Hardware string
	// Registered is the enrollment time.
	Registered time.Time
}

// Score is a trust value in [0,1].
type Score float64

// ledgerStripes is the fixed stripe count of the ledger's node map. The
// ledger sits on the collector's per-reading hot path (every submit
// checks registration), so entries are lock-striped by node ID the same
// way the collector's ingest maps are striped; 16 stripes keeps the
// fast path uncontended well past the core counts we run on.
const ledgerStripes = 16

// ledgerStripe holds the nodes (and their scores) that hash to it.
type ledgerStripe struct {
	mu     sync.RWMutex
	nodes  map[NodeID]*Node
	scores map[NodeID]Score
	_      [24]byte // pad to a cache line against false sharing
}

// Ledger tracks node trust with exponentially weighted updates. It is safe
// for concurrent use; node entries are lock-striped so concurrent
// registration checks and score reads from many ingest goroutines do not
// serialize on one RWMutex.
type Ledger struct {
	stripes [ledgerStripes]ledgerStripe
	// Alpha is the update weight for new evidence (0..1).
	Alpha float64
	// Initial is the score assigned at registration.
	Initial Score
}

// NewLedger returns a ledger with conventional defaults: new nodes start
// at 0.5 and each piece of evidence moves the score 20% of the way toward
// its verdict.
func NewLedger() *Ledger {
	l := &Ledger{Alpha: 0.2, Initial: 0.5}
	for i := range l.stripes {
		l.stripes[i].nodes = make(map[NodeID]*Node)
		l.stripes[i].scores = make(map[NodeID]Score)
	}
	return l
}

// stripe selects the stripe holding id.
func (l *Ledger) stripe(id NodeID) *ledgerStripe {
	return &l.stripes[fnv1a(string(id))&(ledgerStripes-1)]
}

// Register adds a node. Re-registering an existing ID is an error (a new
// operator must enroll a fresh identity, preserving score history).
func (l *Ledger) Register(n Node) error {
	if n.ID == "" {
		return fmt.Errorf("trust: node needs an ID")
	}
	st := l.stripe(n.ID)
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.nodes[n.ID]; ok {
		return fmt.Errorf("trust: node %s already registered", n.ID)
	}
	copy := n
	st.nodes[n.ID] = &copy
	st.scores[n.ID] = l.Initial
	return nil
}

// Node returns a registered node.
func (l *Ledger) Node(id NodeID) (Node, bool) {
	st := l.stripe(id)
	st.mu.RLock()
	defer st.mu.RUnlock()
	n, ok := st.nodes[id]
	if !ok {
		return Node{}, false
	}
	return *n, true
}

// Nodes returns every registered node, sorted by ID.
func (l *Ledger) Nodes() []Node {
	out := make([]Node, 0, l.Len())
	for i := range l.stripes {
		st := &l.stripes[i]
		st.mu.RLock()
		for _, n := range st.nodes {
			out = append(out, *n)
		}
		st.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Trust returns the node's current score (0 for unknown nodes).
func (l *Ledger) Trust(id NodeID) Score {
	st := l.stripe(id)
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.scores[id]
}

// Record applies one piece of evidence: verdict 1.0 is fully consistent
// behaviour, 0.0 is detected fabrication. Unknown nodes are ignored.
func (l *Ledger) Record(id NodeID, verdict float64) {
	if verdict < 0 {
		verdict = 0
	}
	if verdict > 1 {
		verdict = 1
	}
	st := l.stripe(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.scores[id]
	if !ok {
		return
	}
	st.scores[id] = Score(float64(s)*(1-l.Alpha) + verdict*l.Alpha)
}

// SetScore overwrites a registered node's score with an absolute value,
// clamped to [0,1]. Unknown nodes are ignored. This is the WAL replay
// primitive: durable score records carry the post-update absolute score
// (not the evidence delta), so replaying a record twice — a snapshot
// that already folded it in, then the tail segment again — converges to
// the same ledger instead of double-applying the EWMA.
func (l *Ledger) SetScore(id NodeID, s Score) {
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	st := l.stripe(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.nodes[id]; !ok {
		return
	}
	st.scores[id] = s
}

// unregister removes a node, undoing a Register whose durable append
// failed: an enrollment the store cannot persist must not be served from
// memory, or a crash would silently drop it while the operator believes
// registration succeeded.
func (l *Ledger) unregister(id NodeID) {
	st := l.stripe(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.nodes, id)
	delete(st.scores, id)
}

// Trusted returns node IDs whose score meets the threshold, sorted by
// descending score (ties by ID for determinism).
func (l *Ledger) Trusted(threshold Score) []NodeID {
	type scored struct {
		id NodeID
		s  Score
	}
	var keep []scored
	for i := range l.stripes {
		st := &l.stripes[i]
		st.mu.RLock()
		for id, s := range st.scores {
			if s >= threshold {
				keep = append(keep, scored{id, s})
			}
		}
		st.mu.RUnlock()
	}
	sort.Slice(keep, func(i, j int) bool {
		if keep[i].s != keep[j].s {
			return keep[i].s > keep[j].s
		}
		return keep[i].id < keep[j].id
	})
	ids := make([]NodeID, len(keep))
	for i, k := range keep {
		ids[i] = k.id
	}
	return ids
}

// Len returns the number of registered nodes.
func (l *Ledger) Len() int {
	n := 0
	for i := range l.stripes {
		st := &l.stripes[i]
		st.mu.RLock()
		n += len(st.nodes)
		st.mu.RUnlock()
	}
	return n
}

// Quantize maps a trust score to a coarse rating for marketplace display.
func (s Score) Quantize() string {
	switch {
	case s >= 0.8:
		return "trusted"
	case s >= 0.55:
		return "established"
	case s >= 0.35:
		return "provisional"
	default:
		return "suspect"
	}
}

// mad returns the median and median-absolute-deviation of xs.
func mad(xs []float64) (median, dev float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	median = s[len(s)/2]
	if len(s)%2 == 0 {
		median = (s[len(s)/2-1] + s[len(s)/2]) / 2
	}
	devs := make([]float64, len(s))
	for i, x := range s {
		devs[i] = math.Abs(x - median)
	}
	sort.Float64s(devs)
	dev = devs[len(devs)/2]
	if len(devs)%2 == 0 {
		dev = (devs[len(devs)/2-1] + devs[len(devs)/2]) / 2
	}
	return median, dev
}
