// Package trust implements the crowd-sourced network layer the paper's
// calibration feeds (§1, §2, §5 "Establishing trust"): a registry of
// volunteer-operated sensor nodes, a ledger of per-node trust scores, and
// consensus-based fabrication detection over shared signals of
// opportunity.
//
// The economic setting from the paper: operators are paid for sensing, so
// they have an incentive to submit fabricated or low-quality data. The
// defenses here are (a) the automatic calibration report itself, (b) an
// upper-bound test — obstructions only attenuate, so a node reporting more
// power than the neighborhood consensus supports is lying — and (c) a
// temporal-correlation test: honest nodes track the real fluctuations of
// shared transmitters; fabricated streams do not.
package trust

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// NodeID identifies a registered sensor node.
type NodeID string

// Node is a registry entry.
type Node struct {
	ID       NodeID
	Operator string
	// Lat/Lon of the claimed installation.
	Lat, Lon float64
	// ClaimedOutdoor is the operator's self-reported placement.
	ClaimedOutdoor bool
	// Hardware is the advertised SDR model.
	Hardware string
	// Registered is the enrollment time.
	Registered time.Time
}

// Score is a trust value in [0,1].
type Score float64

// Ledger tracks node trust with exponentially weighted updates. It is safe
// for concurrent use.
type Ledger struct {
	mu     sync.RWMutex
	nodes  map[NodeID]*Node
	scores map[NodeID]Score
	// Alpha is the update weight for new evidence (0..1).
	Alpha float64
	// Initial is the score assigned at registration.
	Initial Score
}

// NewLedger returns a ledger with conventional defaults: new nodes start
// at 0.5 and each piece of evidence moves the score 20% of the way toward
// its verdict.
func NewLedger() *Ledger {
	return &Ledger{
		nodes:   make(map[NodeID]*Node),
		scores:  make(map[NodeID]Score),
		Alpha:   0.2,
		Initial: 0.5,
	}
}

// Register adds a node. Re-registering an existing ID is an error (a new
// operator must enroll a fresh identity, preserving score history).
func (l *Ledger) Register(n Node) error {
	if n.ID == "" {
		return fmt.Errorf("trust: node needs an ID")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.nodes[n.ID]; ok {
		return fmt.Errorf("trust: node %s already registered", n.ID)
	}
	copy := n
	l.nodes[n.ID] = &copy
	l.scores[n.ID] = l.Initial
	return nil
}

// Node returns a registered node.
func (l *Ledger) Node(id NodeID) (Node, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n, ok := l.nodes[id]
	if !ok {
		return Node{}, false
	}
	return *n, true
}

// Nodes returns every registered node, sorted by ID.
func (l *Ledger) Nodes() []Node {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Node, 0, len(l.nodes))
	for _, n := range l.nodes {
		out = append(out, *n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Trust returns the node's current score (0 for unknown nodes).
func (l *Ledger) Trust(id NodeID) Score {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.scores[id]
}

// Record applies one piece of evidence: verdict 1.0 is fully consistent
// behaviour, 0.0 is detected fabrication. Unknown nodes are ignored.
func (l *Ledger) Record(id NodeID, verdict float64) {
	if verdict < 0 {
		verdict = 0
	}
	if verdict > 1 {
		verdict = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s, ok := l.scores[id]
	if !ok {
		return
	}
	l.scores[id] = Score(float64(s)*(1-l.Alpha) + verdict*l.Alpha)
}

// Trusted returns node IDs whose score meets the threshold, sorted by
// descending score (ties by ID for determinism).
func (l *Ledger) Trusted(threshold Score) []NodeID {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var ids []NodeID
	for id, s := range l.scores {
		if s >= threshold {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		if l.scores[ids[i]] != l.scores[ids[j]] {
			return l.scores[ids[i]] > l.scores[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Len returns the number of registered nodes.
func (l *Ledger) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.nodes)
}

// Quantize maps a trust score to a coarse rating for marketplace display.
func (s Score) Quantize() string {
	switch {
	case s >= 0.8:
		return "trusted"
	case s >= 0.55:
		return "established"
	case s >= 0.35:
		return "provisional"
	default:
		return "suspect"
	}
}

// mad returns the median and median-absolute-deviation of xs.
func mad(xs []float64) (median, dev float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	median = s[len(s)/2]
	if len(s)%2 == 0 {
		median = (s[len(s)/2-1] + s[len(s)/2]) / 2
	}
	devs := make([]float64, len(s))
	for i, x := range s {
		devs[i] = math.Abs(x - median)
	}
	sort.Float64s(devs)
	dev = devs[len(devs)/2]
	if len(devs)%2 == 0 {
		dev = (devs[len(devs)/2-1] + devs[len(devs)/2]) / 2
	}
	return median, dev
}
