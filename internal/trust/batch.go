package trust

import (
	"fmt"
	"sync"
	"time"

	"sensorcal/internal/hash"
	"sensorcal/internal/obs"
)

// Batched per-stripe submit. SubmitDedup takes up to three stripe locks
// per reading; an HTTP batch of 1000 readings is 3000 lock round-trips
// even when every reading lands in the same handful of stripes. The
// batch path regroups the readings by stripe with a counting sort and
// takes each stripe lock once per batch, turning the lock cost from
// O(readings) into O(stripes touched). Within each stripe the readings
// are processed in their original batch order and the stripes are
// disjoint by construction, so the final collector state — dedup ring
// contents, freshness, epoch maps — is byte-identical to feeding the
// same slice through SubmitDedup one element at a time (pinned by
// TestSubmitBatchEquivalence).

// SubmitOutcome is one reading's result within a SubmitBatch call,
// positionally matching the input slice. Duplicate and Err mirror
// SubmitDedup's two results; both false/nil means accepted.
type SubmitOutcome struct {
	Duplicate bool
	Err       error
}

// batch-phase flags, one byte per reading in batchScratch.flags.
const (
	flagNeedDedup = 1 << iota // keyed, not a fast-path duplicate: needs the stripe lock
	flagAccepted              // survived validation + dedup: touches freshness + epoch
)

// batchScratch is the pooled regrouping state for one SubmitBatch call:
// per-reading hashes and flags plus the counting-sort bins and output
// order. Nothing here escapes the call, so the steady-state batch path
// adds zero allocations over the per-reading path.
type batchScratch struct {
	hashes []uint64
	flags  []uint8
	order  []int32 // reading indices, grouped contiguously by stripe
	bins   []int32 // per-stripe segment bounds (len = stripes + 1)
	spans  []spanAt
}

// spanAt pairs a sampled reading's index with its open ingest span so
// the (rare) traced readings can be finalized after their outcome is
// known.
type spanAt struct {
	idx  int32
	span *obs.Span
}

var batchScratchPool = sync.Pool{New: func() interface{} { return new(batchScratch) }}

// grow returns s sized for n elements without shrinking capacity.
func grow32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// SubmitBatch ingests a batch of readings, writing one outcome per
// reading into outs (grown as needed; pass nil or a previous call's
// slice to reuse its backing array) and returning it. Semantics per
// reading are exactly SubmitDedup's — same validation, same dedup and
// freshness rules, same epoch placement — but each touched stripe lock
// is taken once per batch instead of once per reading. The /api/readings
// handler, the replica router's local partition and loadgen's core mode
// all ingest through this one entry point.
func (c *Collector) SubmitBatch(rs []Reading, outs []SubmitOutcome) []SubmitOutcome {
	if cap(outs) < len(rs) {
		outs = make([]SubmitOutcome, len(rs))
	} else {
		outs = outs[:len(rs)]
		for i := range outs {
			outs[i] = SubmitOutcome{}
		}
	}
	if len(rs) == 0 {
		return outs
	}
	var start time.Time
	if c.metrics != nil {
		start = time.Now()
	}
	sc := batchScratchPool.Get().(*batchScratch)
	defer func() {
		sc.spans = sc.spans[:0]
		batchScratchPool.Put(sc)
	}()
	n := len(rs)
	if cap(sc.hashes) < n {
		sc.hashes = make([]uint64, n)
		sc.flags = make([]uint8, n)
	} else {
		sc.hashes = sc.hashes[:n]
		sc.flags = sc.flags[:n]
	}
	sc.order = grow32(sc.order, n)
	stripes := len(c.dedups)
	sc.bins = grow32(sc.bins, stripes+1)

	// Phase 1 — validate every reading, open spans for the (rare) traced
	// ones, and try the lock-free dedup fast path. Readings that need the
	// authoritative locked check are counted per dedup stripe.
	for i := range sc.bins {
		sc.bins[i] = 0
	}
	for i := range rs {
		r := &rs[i]
		sc.flags[i] = 0
		if r.Trace != "" {
			if psc, ok := obs.ParseTraceParent(r.Trace); ok {
				if span := c.tracer().StartRemote(psc, "trust.ingest"); span != nil {
					span.SetAttr("node", string(r.Node))
					span.SetAttr("signal", r.SignalID)
					sc.spans = append(sc.spans, spanAt{idx: int32(i), span: span})
				}
			}
		}
		if _, ok := c.Ledger.Node(r.Node); !ok {
			outs[i].Err = fmt.Errorf("trust: node %s not registered", r.Node)
			continue
		}
		if r.SignalID == "" {
			outs[i].Err = fmt.Errorf("trust: reading needs a signal ID")
			continue
		}
		if r.Key == "" {
			sc.flags[i] = flagAccepted
			continue
		}
		h := fnv1a(r.Key)
		sc.hashes[i] = h
		if c.dedups[h&c.mask].fastDup(hash.Mix64(h), r.Key) {
			outs[i].Duplicate = true
			continue
		}
		sc.flags[i] = flagNeedDedup
		sc.bins[h&c.mask]++
	}

	// Phase 2 — authoritative dedup, one lock per touched stripe. The
	// counting sort groups reading indices contiguously per stripe while
	// preserving batch order within a stripe, so a key retried twice in
	// one batch dedups exactly as it would submitted serially.
	c.groupByStripe(sc, func(i int) bool { return sc.flags[i]&flagNeedDedup != 0 })
	limit := c.dedupLimit()
	for s := 0; s < stripes; s++ {
		lo, hi := sc.bins[s], sc.bins[s+1]
		if lo == hi {
			continue
		}
		d := &c.dedups[s]
		c.lockCounted(&d.mu, stripeDedup)
		for _, idx := range sc.order[lo:hi] {
			key := rs[idx].Key
			if d.dup(key) {
				outs[idx].Duplicate = true
				continue
			}
			d.remember(hash.Mix64(sc.hashes[idx]), key, limit)
			sc.flags[idx] |= flagAccepted
		}
		d.mu.Unlock()
	}

	// Phase 3 — freshness. Lock-free per reading (CAS-max), so no
	// regrouping is worth it; order across readings of one node does not
	// matter because max() is commutative.
	for i := range rs {
		if sc.flags[i]&flagAccepted != 0 {
			r := &rs[i]
			c.fresh[fnv1a(string(r.Node))&c.mask].touch(r.Node, r.At)
		}
	}

	// Phase 4 — epoch placement, one lock per touched stripe. Within a
	// stripe the original order is preserved, so a node re-submitting in
	// the same window last-write-wins exactly as the serial path does.
	for i := range rs {
		if sc.flags[i]&flagAccepted != 0 {
			sc.hashes[i] = fnv1a(rs[i].SignalID)
		}
	}
	c.groupByStripe(sc, func(i int) bool { return sc.flags[i]&flagAccepted != 0 })
	for s := 0; s < stripes; s++ {
		lo, hi := sc.bins[s], sc.bins[s+1]
		if lo == hi {
			continue
		}
		st := &c.epochs[s]
		c.lockCounted(&st.mu, stripeEpoch)
		for _, idx := range sc.order[lo:hi] {
			r := &rs[idx]
			st.insertLocked(r.SignalID, r.At.Truncate(c.EpochWindow), r.Node, r.PowerDBm)
		}
		st.mu.Unlock()
		st.markDirty()
	}

	// Finalize spans and metrics.
	for _, sa := range sc.spans {
		o := outs[sa.idx]
		if o.Err != nil {
			sa.span.SetError(o.Err)
		}
		if o.Duplicate {
			sa.span.SetAttr("duplicate", "true")
		}
		sa.span.End()
	}
	if m := c.metrics; m != nil {
		for i := range outs {
			m.recordSubmit(outs[i].Duplicate, outs[i].Err)
		}
		m.batchSize.Observe(float64(n))
		// One amortized per-reading observation per batch keeps the
		// histogram's unit ("one reading through ingest") comparable with
		// the serial path without n duplicate samples.
		m.submitSeconds.Observe(time.Since(start).Seconds() / float64(n))
	}
	return outs
}

// groupByStripe counting-sorts the indices selected by keep into
// sc.order, contiguous per stripe and batch-ordered within a stripe.
// sc.hashes[i] must hold the stripe hash for every kept i. On return
// sc.bins[s]..sc.bins[s+1] bound stripe s's segment in sc.order.
func (c *Collector) groupByStripe(sc *batchScratch, keep func(int) bool) {
	for i := range sc.bins {
		sc.bins[i] = 0
	}
	n := len(sc.flags)
	for i := 0; i < n; i++ {
		if keep(i) {
			sc.bins[sc.hashes[i]&c.mask]++
		}
	}
	// Prefix-sum the counts into segment starts…
	sum := int32(0)
	for s := range sc.bins {
		cnt := sc.bins[s]
		sc.bins[s] = sum
		sum += cnt
	}
	// …place the indices (bins walks forward to each segment's end)…
	for i := 0; i < n; i++ {
		if keep(i) {
			s := sc.hashes[i] & c.mask
			sc.order[sc.bins[s]] = int32(i)
			sc.bins[s]++
		}
	}
	// …and shift bins back so bins[s] is the segment start again.
	prev := int32(0)
	for s := range sc.bins {
		sc.bins[s], prev = prev, sc.bins[s]
	}
}
