package trust

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestCloserClosesMaturedEpochs drives the background closer with an
// injected clock: ticks fire on demand, the cutoff trails Now by Lag,
// and matured epochs land in history without any caller running
// CloseEpochs.
func TestCloserClosesMaturedEpochs(t *testing.T) {
	c := newWorkloadCollector(t, 4, 3)
	tick := make(chan time.Time)
	var mu sync.Mutex
	now := t0.Add(10 * time.Minute)
	closed := make(chan struct{}, 16)
	cl := c.StartCloser(CloserConfig{
		Interval: time.Minute,
		Lag:      time.Minute,
		Now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		},
		After: func(time.Duration) <-chan time.Time { return tick },
		Run: func(cutoff time.Time) []Anomaly {
			a := c.CloseEpochs(cutoff)
			closed <- struct{}{}
			return a
		},
	})
	defer cl.Stop()
	submitSerial(t, c, []Reading{
		{Node: "node-00", SignalID: "sig", PowerDBm: -50, At: t0},
		{Node: "node-01", SignalID: "sig", PowerDBm: -51, At: t0},
	})
	if got := c.PendingEpochs(); got != 1 {
		t.Fatalf("pending before tick = %d, want 1", got)
	}
	tick <- time.Time{}
	<-closed
	if got := c.PendingEpochs(); got != 0 {
		t.Errorf("pending after tick = %d, want 0", got)
	}
	if got := len(c.History("sig")); got != 1 {
		t.Errorf("history after tick = %d epochs, want 1", got)
	}
	// A window newer than cutoff−Lag must survive the next pass.
	submitSerial(t, c, []Reading{
		{Node: "node-00", SignalID: "sig", PowerDBm: -50, At: now},
	})
	tick <- time.Time{}
	<-closed
	if got := c.PendingEpochs(); got != 1 {
		t.Errorf("immature window closed early: pending = %d, want 1", got)
	}
}

// TestCloserKick pins that Kick runs a pass without waiting for a tick.
func TestCloserKick(t *testing.T) {
	c := newWorkloadCollector(t, 1, 1)
	ran := make(chan time.Time, 1)
	cl := c.StartCloser(CloserConfig{
		Interval: time.Hour, // effectively never ticks
		Run: func(cutoff time.Time) []Anomaly {
			ran <- cutoff
			return nil
		},
	})
	defer cl.Stop()
	cl.Kick()
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("kicked closer did not run within 5s")
	}
}

// TestCloserEquivalence pins that ingesting under a live background
// closer converges to the same final state as foreground closes: the
// same workload, one collector closing inline and one closing on a
// (kicked) background closer, must agree on history, fleet and scores
// after the final drain.
func TestCloserEquivalence(t *testing.T) {
	const nNodes, nSignals, nWindows = 8, 5, 6
	readings := shardWorkload(nNodes, nSignals, nWindows, 7)
	final := t0.Add(time.Duration(nWindows+1) * time.Minute)

	inline := newWorkloadCollector(t, 4, nNodes)
	submitSerial(t, inline, readings)
	inlineAnoms := inline.CloseEpochs(final)

	bg := newWorkloadCollector(t, 4, nNodes)
	done := make(chan []Anomaly, 1)
	cl := bg.StartCloser(CloserConfig{
		Interval: time.Hour,
		Now:      func() time.Time { return final.Add(time.Hour) },
		Lag:      time.Hour,
		Run: func(cutoff time.Time) []Anomaly {
			a := bg.CloseEpochs(cutoff)
			done <- a
			return a
		},
	})
	submitBatched(t, bg, readings)
	cl.Kick()
	bgAnoms := <-done
	cl.Stop()

	if !reflect.DeepEqual(bgAnoms, inlineAnoms) {
		t.Errorf("background close anomalies diverge:\n got %v\nwant %v", bgAnoms, inlineAnoms)
	}
	if !reflect.DeepEqual(bg.Fleet(), inline.Fleet()) {
		t.Error("fleet diverges after background close")
	}
	for s := 0; s < nSignals; s++ {
		sig := fmt.Sprintf("tv-%d", 500+s)
		if !reflect.DeepEqual(bg.History(sig), inline.History(sig)) {
			t.Errorf("history(%s) diverges after background close", sig)
		}
	}
	if !reflect.DeepEqual(bg.Ledger.Trusted(0.5), inline.Ledger.Trusted(0.5)) {
		t.Error("trusted set diverges after background close")
	}
}

// TestCloserConcurrentStress runs concurrent batched submits, a fast
// real-time background closer, and Fleet/History/PendingEpochs readers
// — the -race check for the dirty-mark/open-counter handoff between
// submit and the closer goroutine.
func TestCloserConcurrentStress(t *testing.T) {
	const nNodes, workers, perWorker = 8, 6, 250
	c := newWorkloadCollector(t, 8, nNodes)
	c.DedupCap = 64 * 1024
	cl := c.StartCloser(CloserConfig{
		Interval: time.Millisecond,
		Now:      func() time.Time { return t0.Add(17 * time.Minute) },
		Lag:      time.Minute,
	})
	stop := make(chan struct{})
	var readWG sync.WaitGroup
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = c.Fleet()
			_ = c.PendingEpochs()
			_ = c.History("sig-1")
			_ = c.FreshnessSnapshot()
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var outs []SubmitOutcome
			for i := 0; i < perWorker; i++ {
				batch := []Reading{
					{
						Node:     NodeID(fmt.Sprintf("node-%02d", (w+i)%nNodes)),
						SignalID: fmt.Sprintf("sig-%d", i%4),
						PowerDBm: -50,
						// Windows straddle the closer cutoff so drains and
						// inserts genuinely interleave.
						At:  t0.Add(time.Duration(i%32) * time.Minute),
						Key: fmt.Sprintf("cl-%d-%d", w, i),
					},
				}
				outs = c.SubmitBatch(batch, outs)
				if outs[0].Err != nil {
					t.Error(outs[0].Err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	cl.Stop()
	close(stop)
	readWG.Wait()
	// Everything below the cutoff must eventually have closed; drain the
	// rest and check the books balance.
	c.CloseEpochs(t0.Add(365 * 24 * time.Hour))
	if got := c.PendingEpochs(); got != 0 {
		t.Errorf("pending after final close = %d, want 0", got)
	}
}

// TestDrainSkipsIdleStripes pins the dirty-mark fast-out: draining an
// already-drained collector must return nothing (and not resurrect
// state), while a stripe holding an immature window keeps being visited
// until it matures.
func TestDrainSkipsIdleStripes(t *testing.T) {
	c := newWorkloadCollector(t, 4, 2)
	submitSerial(t, c, []Reading{
		{Node: "node-00", SignalID: "early", PowerDBm: -50, At: t0},
		{Node: "node-01", SignalID: "late", PowerDBm: -51, At: t0.Add(30 * time.Minute)},
	})
	first := c.DrainPending(t0.Add(time.Minute))
	if len(first) != 1 || first[0].SignalID != "early" {
		t.Fatalf("first drain = %v, want the early epoch", first)
	}
	// Idle re-drain: every stripe is either clean or holds only the
	// immature window; nothing comes back.
	if again := c.DrainPending(t0.Add(time.Minute)); len(again) != 0 {
		t.Errorf("idle re-drain returned %v, want empty", again)
	}
	if got := c.PendingEpochs(); got != 1 {
		t.Errorf("pending = %d, want 1 (the immature window)", got)
	}
	// The immature window's stripe was not dirty-marked again, but its
	// open counter keeps it visited: it must drain once matured.
	late := c.DrainPending(t0.Add(time.Hour))
	if len(late) != 1 || late[0].SignalID != "late" {
		t.Errorf("matured drain = %v, want the late epoch", late)
	}
	if got := c.PendingEpochs(); got != 0 {
		t.Errorf("pending after full drain = %d, want 0", got)
	}
}
