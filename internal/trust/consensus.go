package trust

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Reading is one node's measurement of a shared reference signal (a TV
// channel or cellular carrier every node in the area can hear).
type Reading struct {
	Node     NodeID
	SignalID string // e.g. "tv-521MHz"
	PowerDBm float64
	At       time.Time
	// Key is an optional idempotency key. A reading whose key was already
	// accepted is silently dropped, so a client retrying over a lossy
	// link (the response was lost, not the request) cannot double-count
	// consensus evidence. Empty means no deduplication.
	Key string
	// Trace is the W3C traceparent of the measurement that produced the
	// reading. It travels with the reading through the store-and-forward
	// spool, so even a batch replayed hours after a collector outage still
	// links each reading back to its originating agent trace. Empty means
	// untraced.
	Trace string
}

// Epoch groups simultaneous readings of one signal across nodes.
type Epoch struct {
	SignalID string
	At       time.Time
	Readings map[NodeID]float64 // node → reported dBm
}

// Anomaly is a consensus violation.
type Anomaly struct {
	Node     NodeID
	SignalID string
	Kind     string
	Detail   string
	// Severity in [0,1]: 1 is a flagrant violation.
	Severity float64
}

func (a Anomaly) String() string {
	return fmt.Sprintf("%s/%s %s: %s (severity %.2f)", a.Node, a.SignalID, a.Kind, a.Detail, a.Severity)
}

// Detector runs the consensus checks.
type Detector struct {
	// UpperBoundMarginDB: a node may read at most this much above the
	// neighborhood's maximum plausible (median + spread) power.
	// Obstructions attenuate; nothing in a passive deployment amplifies.
	UpperBoundMarginDB float64
	// MinCorrelation: across epochs an honest node's readings must
	// correlate with the consensus trend at least this much.
	MinCorrelation float64
	// MinEpochs before the correlation test applies.
	MinEpochs int
}

// NewDetector returns a detector with defaults tuned for ±2 dB honest
// measurement noise.
func NewDetector() *Detector {
	return &Detector{
		UpperBoundMarginDB: 6,
		MinCorrelation:     0.3,
		MinEpochs:          8,
	}
}

// CheckEpoch applies the upper-bound test to one epoch. The test is
// one-sided by design: obstructions only attenuate, so an honest node can
// read arbitrarily low but never meaningfully above its peers. Each node
// is therefore compared against the maximum of the *other* nodes'
// readings (leave-one-out, so a fabricator cannot raise its own bound)
// plus a noise margin. A symmetric median±MAD bound would not work here:
// legitimate indoor nodes stretch the MAD downward, inflating the upward
// tolerance exactly where fraud hides.
func (d *Detector) CheckEpoch(e Epoch) []Anomaly {
	if len(e.Readings) < 3 {
		return nil // no meaningful consensus
	}
	var out []Anomaly
	for id, v := range e.Readings {
		maxOther := math.Inf(-1)
		for other, ov := range e.Readings {
			if other != id && ov > maxOther {
				maxOther = ov
			}
		}
		bound := maxOther + d.UpperBoundMarginDB
		if v > bound {
			excess := v - bound
			out = append(out, Anomaly{
				Node:     id,
				SignalID: e.SignalID,
				Kind:     "over-consensus-power",
				Detail:   fmt.Sprintf("reported %.1f dBm, peers' maximum %.1f dBm", v, maxOther),
				Severity: math.Min(1, excess/10),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// CheckCorrelation applies the temporal test over a series of epochs of
// the same signal: the consensus (median) power fluctuates with the real
// transmitter and propagation conditions, and every honest node's series
// tracks those fluctuations up to an additive offset. A fabricated series
// doesn't know the fluctuations and decorrelates.
func (d *Detector) CheckCorrelation(epochs []Epoch) []Anomaly {
	if len(epochs) < d.MinEpochs {
		return nil
	}
	// Per-node series, plus the set of participating nodes.
	perNode := map[NodeID][]float64{}
	for i, e := range epochs {
		for id, v := range e.Readings {
			series, ok := perNode[id]
			if !ok {
				series = make([]float64, len(epochs))
				for k := range series {
					series[k] = math.NaN()
				}
			}
			series[i] = v
			perNode[id] = series
		}
	}
	// Leave-one-out consensus: when scoring node X, the reference median
	// excludes X's own readings so a fabricator cannot drag the consensus
	// toward itself.
	looConsensus := func(exclude NodeID) []float64 {
		out := make([]float64, len(epochs))
		for i, e := range epochs {
			vals := make([]float64, 0, len(e.Readings))
			for id, v := range e.Readings {
				if id == exclude {
					continue
				}
				vals = append(vals, v)
			}
			med, _ := mad(vals)
			out[i] = med
		}
		return out
	}
	var out []Anomaly
	ids := make([]NodeID, 0, len(perNode))
	for id := range perNode {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		series := perNode[id]
		r, n := pearson(series, looConsensus(id))
		if n < d.MinEpochs {
			continue
		}
		if r < d.MinCorrelation {
			// Zero or negative correlation is a hard fabrication signal;
			// just-under-threshold correlation is weak evidence.
			sev := (d.MinCorrelation - r) / d.MinCorrelation
			if sev > 1 {
				sev = 1
			}
			if sev < 0.25 {
				sev = 0.25
			}
			out = append(out, Anomaly{
				Node:     id,
				SignalID: epochs[0].SignalID,
				Kind:     "uncorrelated-with-consensus",
				Detail:   fmt.Sprintf("correlation %.2f over %d epochs", r, n),
				Severity: sev,
			})
		}
	}
	return out
}

// pearson computes the correlation of two series, skipping NaN entries in
// a. It returns the coefficient and the number of points used.
func pearson(a, b []float64) (float64, int) {
	var sa, sb, saa, sbb, sab float64
	n := 0
	for i := range a {
		if math.IsNaN(a[i]) {
			continue
		}
		n++
		sa += a[i]
		sb += b[i]
		saa += a[i] * a[i]
		sbb += b[i] * b[i]
		sab += a[i] * b[i]
	}
	if n < 2 {
		return 0, n
	}
	fn := float64(n)
	cov := sab/fn - sa/fn*sb/fn
	va := saa/fn - sa/fn*sa/fn
	vb := sbb/fn - sb/fn*sb/fn
	if va <= 1e-12 || vb <= 1e-12 {
		// A perfectly flat series carries no information; treat as
		// uncorrelated (fabricators often submit constants).
		return 0, n
	}
	return cov / math.Sqrt(va*vb), n
}

// Apply folds anomalies into the ledger: each flagged node records a
// verdict scaled by severity; unflagged participants of the epochs record
// a clean verdict.
func Apply(l *Ledger, participants []NodeID, anomalies []Anomaly) {
	flagged := map[NodeID]float64{}
	for _, a := range anomalies {
		if a.Severity > flagged[a.Node] {
			flagged[a.Node] = a.Severity
		}
	}
	for _, id := range participants {
		if sev, ok := flagged[id]; ok {
			l.Record(id, 1-sev)
		} else {
			l.Record(id, 1)
		}
	}
}
