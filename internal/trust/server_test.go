package trust

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

func TestCollectorEndToEnd(t *testing.T) {
	c := NewCollector()
	for _, id := range []NodeID{"a", "b", "c", "d", "cheater"} {
		if err := c.Ledger.Register(Node{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	// One epoch with an inflated reading.
	for id, p := range map[NodeID]float64{"a": -50, "b": -53, "c": -51, "d": -55, "cheater": -15} {
		if err := c.Submit(Reading{Node: id, SignalID: "tv-521", PowerDBm: p, At: t0}); err != nil {
			t.Fatal(err)
		}
	}
	anomalies := c.CloseEpochs(t0.Add(2 * time.Minute))
	if len(anomalies) != 1 || anomalies[0].Node != "cheater" {
		t.Fatalf("anomalies = %v", anomalies)
	}
	if c.Ledger.Trust("cheater") >= c.Ledger.Trust("a") {
		t.Error("cheater should have lost trust relative to honest nodes")
	}
	if len(c.History("tv-521")) != 1 {
		t.Error("epoch not archived")
	}
}

func TestCollectorRejectsUnknownNode(t *testing.T) {
	c := NewCollector()
	if err := c.Submit(Reading{Node: "ghost", SignalID: "x", At: t0}); err == nil {
		t.Error("unregistered node should be rejected")
	}
	_ = c.Ledger.Register(Node{ID: "a"})
	if err := c.Submit(Reading{Node: "a", At: t0}); err == nil {
		t.Error("missing signal ID should be rejected")
	}
}

func TestCollectorEpochWindowing(t *testing.T) {
	c := NewCollector()
	for _, id := range []NodeID{"a", "b", "c"} {
		_ = c.Ledger.Register(Node{ID: id})
	}
	// Two windows, 1 minute apart.
	for i := 0; i < 2; i++ {
		at := t0.Add(time.Duration(i) * time.Minute)
		for _, id := range []NodeID{"a", "b", "c"} {
			_ = c.Submit(Reading{Node: id, SignalID: "s", PowerDBm: -50, At: at})
		}
	}
	// Close only the first window.
	c.CloseEpochs(t0.Add(time.Minute))
	if got := len(c.History("s")); got != 1 {
		t.Errorf("closed epochs = %d, want 1", got)
	}
	c.CloseEpochs(t0.Add(time.Hour))
	if got := len(c.History("s")); got != 2 {
		t.Errorf("closed epochs = %d, want 2", got)
	}
}

func TestHTTPAPIRoundTrip(t *testing.T) {
	c := NewCollector()
	srv := httptest.NewServer(c.Handler(func() time.Time { return t0 }))
	defer srv.Close()

	post := func(path string, body interface{}) int {
		t.Helper()
		buf, _ := json.Marshal(body)
		resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/api/register", registerRequest{ID: "n1", Operator: "alice", Hardware: "bladeRF"}); code != 201 {
		t.Fatalf("register status %d", code)
	}
	if code := post("/api/register", registerRequest{ID: "n1"}); code != 409 {
		t.Errorf("duplicate register status %d, want 409", code)
	}
	if code := post("/api/readings", submitRequest{Node: "n1", SignalID: "tv-521", PowerDBm: -50}); code != 202 {
		t.Errorf("submit status %d, want 202", code)
	}
	if code := post("/api/readings", submitRequest{Node: "ghost", SignalID: "tv-521"}); code != 400 {
		t.Errorf("unknown-node submit status %d, want 400", code)
	}

	resp, err := srv.Client().Get(srv.URL + "/api/trust?node=n1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("trust status %d", resp.StatusCode)
	}
	var tr trustResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.Node != "n1" || tr.Score != 0.5 || tr.Rating == "" {
		t.Errorf("trust response %+v", tr)
	}
	// Unknown node 404s.
	r2, err := srv.Client().Get(srv.URL + "/api/trust?node=ghost")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != 404 {
		t.Errorf("unknown trust status %d", r2.StatusCode)
	}
	// Method enforcement.
	r3, err := srv.Client().Get(srv.URL + "/api/register")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != 405 {
		t.Errorf("GET register status %d, want 405", r3.StatusCode)
	}
}

func TestCollectorCorrelationOverHTTPWindows(t *testing.T) {
	// Long-run scenario through the collector: honest nodes track the
	// trend, a replay node loses trust via the correlation check.
	c := NewCollector()
	for _, id := range []NodeID{"h1", "h2", "h3", "replay"} {
		_ = c.Ledger.Register(Node{ID: id})
	}
	for i := 0; i < 20; i++ {
		at := t0.Add(time.Duration(i) * time.Minute)
		trend := 5.0
		if i%6 >= 3 {
			trend = -5
		}
		_ = c.Submit(Reading{Node: "h1", SignalID: "s", PowerDBm: -50 + trend, At: at})
		_ = c.Submit(Reading{Node: "h2", SignalID: "s", PowerDBm: -54 + trend, At: at})
		_ = c.Submit(Reading{Node: "h3", SignalID: "s", PowerDBm: -57 + trend, At: at})
		_ = c.Submit(Reading{Node: "replay", SignalID: "s", PowerDBm: -52, At: at})
	}
	c.CloseEpochs(t0.Add(time.Hour))
	if c.Ledger.Trust("replay") >= c.Ledger.Trust("h1") {
		t.Errorf("replay trust %v should be below honest %v",
			c.Ledger.Trust("replay"), c.Ledger.Trust("h1"))
	}
}

func TestCollectorConcurrentSubmissions(t *testing.T) {
	c := NewCollector()
	ids := []NodeID{"a", "b", "c", "d"}
	for _, id := range ids {
		_ = c.Ledger.Register(Node{ID: id})
	}
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id NodeID) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				at := t0.Add(time.Duration(i) * time.Minute)
				if err := c.Submit(Reading{Node: id, SignalID: "s", PowerDBm: -50, At: at}); err != nil {
					t.Error(err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	c.CloseEpochs(t0.Add(time.Hour * 2))
	if got := len(c.History("s")); got != 50 {
		t.Errorf("closed epochs = %d, want 50", got)
	}
	// Every epoch saw all four nodes.
	for _, e := range c.History("s") {
		if len(e.Readings) != 4 {
			t.Fatalf("epoch %v has %d readings", e.At, len(e.Readings))
		}
	}
}
