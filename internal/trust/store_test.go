package trust

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeStore is a scriptable trust.Store: flip failing to drive the
// degradation and healing paths.
type fakeStore struct {
	mu        sync.Mutex
	failing   bool
	registers []Node
	batches   [][]ScoreUpdate
}

var errDiskGone = errors.New("disk gone")

func (f *fakeStore) AppendRegister(n Node) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failing {
		return errDiskGone
	}
	f.registers = append(f.registers, n)
	return nil
}

func (f *fakeStore) AppendScores(at time.Time, updates []ScoreUpdate) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failing {
		return errDiskGone
	}
	batch := append([]ScoreUpdate(nil), updates...)
	f.batches = append(f.batches, batch)
	return nil
}

func (f *fakeStore) setFailing(v bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failing = v
}

func (f *fakeStore) lastBatch() []ScoreUpdate {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.batches) == 0 {
		return nil
	}
	return f.batches[len(f.batches)-1]
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestRegisterDurableRollsBackOnAppendFailure: an enrollment the store
// cannot persist must not be served from memory — and the identity must
// not be burned.
func TestRegisterDurableRollsBackOnAppendFailure(t *testing.T) {
	c := NewCollector()
	fs := &fakeStore{}
	c.Store = fs
	fs.setFailing(true)
	err := c.registerDurable(Node{ID: "n1"})
	if !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("err = %v, want ErrStoreUnavailable", err)
	}
	if _, ok := c.Ledger.Node("n1"); ok {
		t.Fatal("failed registration left in the ledger")
	}
	if !c.StoreDegraded() {
		t.Fatal("append failure did not degrade the collector")
	}
	// Disk heals: the same identity registers cleanly.
	fs.setFailing(false)
	if err := c.registerDurable(Node{ID: "n1"}); err != nil {
		t.Fatalf("register after heal: %v", err)
	}
	if c.StoreDegraded() {
		t.Fatal("successful append did not clear degradation")
	}
	if len(fs.registers) != 1 || fs.registers[0].ID != "n1" {
		t.Fatalf("durable registers = %+v", fs.registers)
	}
}

// TestDegradedCollectorShedsMutations: while the store is erroring, the
// mutating endpoints refuse with 503 + Retry-After (the agents hold
// evidence in their spools); reads keep serving.
func TestDegradedCollectorShedsMutations(t *testing.T) {
	t0 := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	c := NewCollector()
	fs := &fakeStore{}
	c.Store = fs
	c.RetryAfter = 7 * time.Second
	if err := c.registerDurable(Node{ID: "n1"}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler(func() time.Time { return t0 }))
	defer srv.Close()

	// Healthy: a reading lands.
	resp := postJSON(t, srv.URL+"/api/readings", map[string]any{
		"node": "n1", "signal_id": "s", "power_dbm": -50.0, "at": t0,
	})
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy reading status = %d", resp.StatusCode)
	}

	// Disk dies; the next epoch close fails its append and degrades.
	fs.setFailing(true)
	c.CloseEpochs(t0.Add(time.Hour))
	if !c.StoreDegraded() {
		t.Fatal("failed score append did not degrade")
	}

	resp = postJSON(t, srv.URL+"/api/readings", map[string]any{
		"node": "n1", "signal_id": "s", "power_dbm": -50.0, "at": t0,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded reading status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want 7", ra)
	}
	resp = postJSON(t, srv.URL+"/api/register", map[string]any{"id": "n2"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded register status = %d, want 503", resp.StatusCode)
	}
	if _, ok := c.Ledger.Node("n2"); ok {
		t.Fatal("shed registration reached the ledger")
	}

	// Reads still serve while degraded.
	getResp, err := http.Get(srv.URL + "/api/trust?node=n1")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusOK {
		t.Fatalf("degraded read status = %d, want 200", getResp.StatusCode)
	}
}

// TestFlushStoreRetriesPendingAndHeals: score updates whose append
// failed are merged into the next close's batch; an empty-handed close
// probes the store so the collector heals without new evidence.
func TestFlushStoreRetriesPendingAndHeals(t *testing.T) {
	t0 := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	c := NewCollector()
	fs := &fakeStore{}
	c.Store = fs
	for _, id := range []NodeID{"a", "b", "c"} {
		if err := c.registerDurable(Node{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []NodeID{"a", "b", "c"} {
		if err := c.Submit(Reading{Node: id, SignalID: "s", PowerDBm: -50, At: t0}); err != nil {
			t.Fatal(err)
		}
	}

	fs.setFailing(true)
	c.CloseEpochs(t0.Add(time.Hour))
	if !c.StoreDegraded() {
		t.Fatal("not degraded after failed flush")
	}
	if c.StoreLag() != 3 {
		t.Fatalf("store lag = %d, want 3", c.StoreLag())
	}

	// Disk heals; a close pass with no new epochs still flushes the owed
	// batch.
	fs.setFailing(false)
	c.CloseEpochs(t0.Add(2 * time.Hour))
	if c.StoreDegraded() {
		t.Fatal("still degraded after successful flush")
	}
	if c.StoreLag() != 0 {
		t.Fatalf("store lag = %d after heal, want 0", c.StoreLag())
	}
	batch := fs.lastBatch()
	if len(batch) != 3 {
		t.Fatalf("healed batch = %+v, want the 3 owed updates", batch)
	}
	for _, u := range batch {
		if u.Score != c.Ledger.Trust(u.Node) {
			t.Fatalf("batch score for %s = %v, ledger has %v", u.Node, u.Score, c.Ledger.Trust(u.Node))
		}
	}
}

// TestCloseEpochsAppendsOneBatchPerPass: the durable append happens once
// per close pass (one fsync), not once per node or per signal.
func TestCloseEpochsAppendsOneBatchPerPass(t *testing.T) {
	t0 := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	c := NewShardedCollector(8)
	fs := &fakeStore{}
	c.Store = fs
	for _, id := range []NodeID{"a", "b", "c", "d"} {
		if err := c.registerDurable(Node{ID: id}); err != nil {
			t.Fatal(err)
		}
		if err := c.Submit(Reading{Node: id, SignalID: "sig-" + string(id), PowerDBm: -50, At: t0}); err != nil {
			t.Fatal(err)
		}
	}
	c.CloseEpochs(t0.Add(time.Hour))
	if len(fs.batches) != 1 {
		t.Fatalf("close pass made %d score appends, want 1", len(fs.batches))
	}
	if got := len(fs.batches[0]); got != 4 {
		t.Fatalf("batch covers %d nodes, want 4", got)
	}
}
