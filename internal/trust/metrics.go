package trust

import (
	"time"

	"sensorcal/internal/obs"
)

// Collector instrumentation. A collector is only metered after
// Instrument is called, so library users (and most tests) pay nothing;
// spectrumd instruments its collector against the registry its admin mux
// serves. All methods tolerate a nil receiver.

type collectorMetrics struct {
	readings      *obs.Counter
	readingErrors *obs.Counter
	duplicates    *obs.Counter
	epochsClosed  *obs.Counter
	anomalies     *obs.CounterVec // kind
	nodeScore     *obs.GaugeVec   // node
	httpRequests  *obs.CounterVec // endpoint, code
	submitSeconds *obs.Histogram  // per-reading ingest latency
	batchSize     *obs.Histogram  // readings per SubmitBatch call
	closeLag      *obs.Histogram  // epoch age at close (cutoff − window start)
	storeErrors   *obs.Counter    // durable appends that failed
	shedTotal     *obs.Counter    // requests shed while the store is degraded
	// contention counters, one per stripe family, pre-resolved so the
	// hot path never does a label lookup.
	contention [stripeKinds]*obs.Counter
}

// Stripe families for contention accounting.
const (
	stripeEpoch = iota
	stripeDedup
	stripeFresh
	stripeKinds
)

// stripeNames are the label values for collector_shard_contention_total.
var stripeNames = [stripeKinds]string{"epoch", "dedup", "fresh"}

// Instrument registers the collector's metrics on reg (the process-wide
// default when nil) and starts recording. It returns c for chaining.
//
// Exposed series:
//
//	trust_readings_total         — readings accepted into epochs
//	trust_reading_errors_total   — readings rejected (unknown node, bad payload)
//	trust_duplicate_readings_total — retried readings dropped by idempotency-key dedup
//	trust_epochs_closed_total    — consensus epochs finalized
//	trust_anomalies_total{kind}  — consensus violations by detector kind
//	trust_node_score{node}       — current ledger trust score per node
//	trust_nodes_registered       — ledger size (scrape-time callback)
//	trust_pending_epochs         — open epochs awaiting closure (callback)
//	trust_http_requests_total{endpoint} — API traffic
//	collector_submit_seconds     — per-reading ingest latency histogram
//	collector_submit_batch_size  — readings per SubmitBatch call
//	collector_epoch_close_lag_seconds — epoch age (cutoff − window start) at close
//	collector_shards             — ingest lock-stripe count
//	collector_shard_contention_total{stripe} — stripe lock acquisitions
//	                               that found the lock held (TryLock miss)
func (c *Collector) Instrument(reg *obs.Registry) *Collector {
	if reg == nil {
		reg = obs.Default()
	}
	m := &collectorMetrics{
		readings: reg.Counter("trust_readings_total",
			"Shared-signal readings accepted into consensus epochs."),
		readingErrors: reg.Counter("trust_reading_errors_total",
			"Readings rejected before reaching an epoch."),
		duplicates: reg.Counter("trust_duplicate_readings_total",
			"Retried readings dropped by idempotency-key deduplication."),
		epochsClosed: reg.Counter("trust_epochs_closed_total",
			"Consensus epochs finalized by the collector."),
		anomalies: reg.CounterVec("trust_anomalies_total",
			"Consensus violations detected, by detector kind.", "kind"),
		nodeScore: reg.GaugeVec("trust_node_score",
			"Current trust ledger score per node (0 = fabricator, 1 = clean).", "node"),
		httpRequests: reg.CounterVec("trust_http_requests_total",
			"Collector API requests served, by endpoint.", "endpoint"),
		submitSeconds: reg.Histogram("collector_submit_seconds",
			"Latency of one reading through the collector ingest path.",
			obs.ExpBuckets(250e-9, 4, 10)),
		batchSize: reg.Histogram("collector_submit_batch_size",
			"Readings per SubmitBatch call — how much lock amortization the batched ingest path actually gets.",
			obs.ExpBuckets(1, 2, 12)),
		closeLag: reg.Histogram("collector_epoch_close_lag_seconds",
			"Age of an epoch when the closer finalizes it: close cutoff minus the epoch window start.",
			obs.ExpBuckets(0.25, 2, 14)),
		storeErrors: reg.Counter("trust_store_append_failures_total",
			"Durable store appends (registrations, epoch-close score batches) that failed."),
		shedTotal: reg.Counter("trust_store_shed_total",
			"Mutating API requests shed with 503 while the durable store was degraded."),
	}
	reg.GaugeFunc("collector_store_degraded",
		"1 while the durable store is erroring and mutating traffic is shed, else 0.",
		func() float64 {
			if c.StoreDegraded() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("collector_store_lag_updates",
		"Score updates applied in memory but still awaiting a durable append.",
		func() float64 { return float64(c.StoreLag()) })
	contention := reg.CounterVec("collector_shard_contention_total",
		"Stripe lock acquisitions that found the lock held (fast-path TryLock miss), by stripe family.",
		"stripe")
	for i, name := range stripeNames {
		m.contention[i] = contention.With(name)
	}
	reg.Gauge("collector_shards",
		"Lock stripes in the collector ingest path.").Set(float64(c.Shards()))
	// Pre-seed the detector kinds so the series exist at zero instead of
	// appearing only after the first violation.
	m.anomalies.With("over-consensus-power")
	m.anomalies.With("uncorrelated-with-consensus")
	reg.GaugeFunc("trust_nodes_registered",
		"Nodes enrolled in the trust ledger.",
		func() float64 { return float64(c.Ledger.Len()) })
	reg.GaugeFunc("trust_pending_epochs",
		"Open consensus epochs not yet past the closing cutoff.",
		func() float64 { return float64(c.PendingEpochs()) })
	c.metrics = m
	return c
}

func (m *collectorMetrics) recordSubmit(duplicate bool, err error) {
	if m == nil {
		return
	}
	switch {
	case err != nil:
		m.readingErrors.Inc()
	case duplicate:
		m.duplicates.Inc()
	default:
		m.readings.Inc()
	}
}

func (m *collectorMetrics) recordEpochClosed(anomalies []Anomaly) {
	if m == nil {
		return
	}
	m.epochsClosed.Inc()
	for _, a := range anomalies {
		m.anomalies.With(a.Kind).Inc()
	}
}

// recordCloseLag observes how old an epoch was when it closed. Measured
// against the close cutoff (not wall time) so the number is deterministic
// and means the same thing on the coordinator merge path, a follower
// install, and a loadgen run with synthetic timestamps.
func (m *collectorMetrics) recordCloseLag(cutoff, windowStart time.Time) {
	if m == nil {
		return
	}
	if lag := cutoff.Sub(windowStart).Seconds(); lag >= 0 {
		m.closeLag.Observe(lag)
	}
}

func (m *collectorMetrics) setNodeScore(id NodeID, s Score) {
	if m == nil {
		return
	}
	m.nodeScore.With(string(id)).Set(float64(s))
}

func (m *collectorMetrics) recordRequest(endpoint string) {
	if m == nil {
		return
	}
	m.httpRequests.With(endpoint).Inc()
}

func (m *collectorMetrics) recordContention(which int) {
	if m == nil {
		return
	}
	m.contention[which].Inc()
}

func (m *collectorMetrics) recordStoreAppendError() {
	if m == nil {
		return
	}
	m.storeErrors.Inc()
}

func (m *collectorMetrics) recordShed() {
	if m == nil {
		return
	}
	m.shedTotal.Inc()
}
