package trust

import (
	"fmt"
	"net/http"
	"time"

	"sensorcal/internal/obs"
)

// Server-side hardening for the collector API. The crowd-sourced regime
// (§5) means thousands of retrying agents behind flaky links: a collector
// that accepts unbounded concurrent work amplifies every transient
// slowdown into a pile-up. Harden wraps the API with the two standard
// guards — a bounded in-flight limiter that sheds load with 429 +
// Retry-After (which the agents' retriers honor as a signal to back off),
// and a per-request timeout so one stuck handler cannot pin a connection
// forever.

// HardenConfig configures the protective middleware.
type HardenConfig struct {
	// MaxInFlight bounds concurrently served requests; excess requests
	// get 429 immediately. Zero means 64.
	MaxInFlight int
	// RequestTimeout bounds one request's handling time (503 on expiry).
	// Zero means 10 s.
	RequestTimeout time.Duration
	// RetryAfter is the backoff hint attached to 429 responses. Zero
	// means 1 s.
	RetryAfter time.Duration
	// Registry receives the middleware's metrics; nil means the
	// process-wide default.
	Registry *obs.Registry
}

// Harden wraps h with the in-flight limiter and per-request timeout.
//
// Exposed series:
//
//	trust_http_inflight        — requests currently being served
//	trust_http_throttled_total — requests shed with 429
func Harden(h http.Handler, cfg HardenConfig) http.Handler {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}
	inflight := reg.Gauge("trust_http_inflight",
		"Collector API requests currently being served.")
	throttled := reg.Counter("trust_http_throttled_total",
		"Collector API requests shed with 429 by the in-flight limiter.")

	slots := make(chan struct{}, cfg.MaxInFlight)
	inner := http.TimeoutHandler(h, cfg.RequestTimeout,
		fmt.Sprintf("collector: request exceeded %s", cfg.RequestTimeout))
	retryAfter := obs.RetryAfterSeconds(cfg.RetryAfter)

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case slots <- struct{}{}:
		default:
			throttled.Inc()
			w.Header().Set("Retry-After", retryAfter)
			http.Error(w, "collector overloaded, retry later", http.StatusTooManyRequests)
			return
		}
		inflight.Add(1)
		defer func() {
			<-slots
			inflight.Add(-1)
		}()
		inner.ServeHTTP(w, r)
	})
}
