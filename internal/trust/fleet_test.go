package trust

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// The fleet endpoint is the staleness signal the measurement scheduler
// polls: every registered node with its score and the timestamp of the
// newest reading the collector has accepted from it.

func TestCollectorFleetTracksReadingFreshness(t *testing.T) {
	c := NewCollector()
	for _, id := range []NodeID{"a", "b"} {
		if err := c.Ledger.Register(Node{ID: id, Registered: t0}); err != nil {
			t.Fatal(err)
		}
	}
	// Node a delivers twice; the newest reading time wins. Node b stays
	// silent — zero LastReading means never.
	for _, at := range []time.Time{t0.Add(time.Hour), t0.Add(3 * time.Hour)} {
		if _, err := c.SubmitDedup(Reading{Node: "a", SignalID: "tv-521", PowerDBm: -50, At: at}); err != nil {
			t.Fatal(err)
		}
	}
	fleet := c.Fleet()
	if len(fleet) != 2 || fleet[0].Node != "a" || fleet[1].Node != "b" {
		t.Fatalf("fleet = %+v, want a then b", fleet)
	}
	if !fleet[0].LastReading.Equal(t0.Add(3 * time.Hour)) {
		t.Fatalf("a.LastReading = %s, want the newest reading time", fleet[0].LastReading)
	}
	if !fleet[1].LastReading.IsZero() {
		t.Fatalf("silent node got LastReading %s, want zero", fleet[1].LastReading)
	}

	// A replayed (older) reading must not rewind freshness: spool
	// replays carry old timestamps and would otherwise fake staleness.
	if _, err := c.SubmitDedup(Reading{Node: "a", SignalID: "tv-521", PowerDBm: -50, At: t0.Add(2 * time.Hour)}); err != nil {
		t.Fatal(err)
	}
	if got := c.Fleet()[0].LastReading; !got.Equal(t0.Add(3 * time.Hour)) {
		t.Fatalf("replay rewound LastReading to %s", got)
	}
}

func TestFleetEndpoint(t *testing.T) {
	c := NewCollector()
	if err := c.Ledger.Register(Node{ID: "node-1", Registered: t0}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitDedup(Reading{Node: "node-1", SignalID: "tv-521", PowerDBm: -50, At: t0.Add(time.Hour)}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler(func() time.Time { return t0 }))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/api/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var entries []struct {
		Node          string    `json:"node"`
		Score         float64   `json:"score"`
		Rating        string    `json:"rating"`
		RegisteredAt  time.Time `json:"registered_at"`
		LastReadingAt time.Time `json:"last_reading_at"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("got %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Node != "node-1" || e.Score != 0.5 || e.Rating == "" {
		t.Fatalf("entry = %+v", e)
	}
	if !e.LastReadingAt.Equal(t0.Add(time.Hour)) || !e.RegisteredAt.Equal(t0) {
		t.Fatalf("timestamps = %+v", e)
	}
}
