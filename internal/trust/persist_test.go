package trust

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// Regression tests for the snapshot-validation hardening: the loader
// used to accept duplicate node IDs silently (last entry won — a forged
// snapshot could overwrite an operator's score by appending a duplicate)
// and trusted SavedAt blindly.

func TestLoadRejectsDuplicateNodeIDs(t *testing.T) {
	snap := `{"saved_at":"2026-08-05T12:00:00Z","nodes":[
		{"ID":"n1","score":0.9},
		{"ID":"n2","score":0.5},
		{"ID":"n1","score":0.1}
	]}`
	l := NewLedger()
	err := l.LoadAt(strings.NewReader(snap), time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC))
	if err == nil {
		t.Fatal("duplicate node IDs accepted")
	}
	if !strings.Contains(err.Error(), "twice") {
		t.Fatalf("error does not name the duplicate: %v", err)
	}
	// Validation precedes mutation: the rejected snapshot must leave the
	// ledger untouched, not half-loaded up to the duplicate.
	if l.Len() != 0 {
		t.Fatalf("rejected snapshot partially applied: %d nodes", l.Len())
	}
}

func TestLoadRejectsFutureSavedAt(t *testing.T) {
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	l := NewLedger()
	_ = l.Register(Node{ID: "n1"})
	var buf bytes.Buffer
	if err := l.Save(&buf, now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	fresh := NewLedger()
	err := fresh.LoadAt(bytes.NewReader(buf.Bytes()), now)
	if err == nil {
		t.Fatal("snapshot from an hour in the future accepted")
	}
	if fresh.Len() != 0 {
		t.Fatalf("rejected snapshot partially applied: %d nodes", fresh.Len())
	}
}

func TestLoadToleratesSmallClockSkew(t *testing.T) {
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	l := NewLedger()
	_ = l.Register(Node{ID: "n1"})
	var buf bytes.Buffer
	// Saved one minute "ahead" of the loading clock: ordinary fleet drift,
	// must load.
	if err := l.Save(&buf, now.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	fresh := NewLedger()
	if err := fresh.LoadAt(bytes.NewReader(buf.Bytes()), now); err != nil {
		t.Fatalf("one minute of skew rejected: %v", err)
	}
	if fresh.Len() != 1 {
		t.Fatalf("loaded %d nodes, want 1", fresh.Len())
	}
}

func TestSetScoreClampsAndIgnoresUnknown(t *testing.T) {
	l := NewLedger()
	_ = l.Register(Node{ID: "n1"})
	l.SetScore("n1", 1.5)
	if got := l.Trust("n1"); got != 1 {
		t.Fatalf("score not clamped high: %v", got)
	}
	l.SetScore("n1", -0.5)
	if got := l.Trust("n1"); got != 0 {
		t.Fatalf("score not clamped low: %v", got)
	}
	l.SetScore("ghost", 0.7)
	if _, ok := l.Node("ghost"); ok {
		t.Fatal("SetScore invented a node")
	}
}

func TestUnregisterRollsBackRegistration(t *testing.T) {
	l := NewLedger()
	_ = l.Register(Node{ID: "n1"})
	l.unregister("n1")
	if _, ok := l.Node("n1"); ok {
		t.Fatal("unregister left the node behind")
	}
	// The ID is free again: a durable-append failure must not burn the
	// identity forever.
	if err := l.Register(Node{ID: "n1"}); err != nil {
		t.Fatalf("re-register after rollback: %v", err)
	}
}
