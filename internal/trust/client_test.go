package trust

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sensorcal/internal/resilience"
)

func newTestCollector(t *testing.T, nodes ...string) *Collector {
	t.Helper()
	c := NewCollector()
	for _, id := range nodes {
		if err := c.Ledger.Register(Node{ID: NodeID(id), Registered: time.Unix(0, 0)}); err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
	}
	return c
}

func TestCollectorDedupByKey(t *testing.T) {
	c := newTestCollector(t, "a")
	at := time.Unix(600, 0)
	r := Reading{Node: "a", SignalID: "tv-521MHz", PowerDBm: -60, At: at, Key: "k1"}
	if dup, err := c.SubmitDedup(r); err != nil || dup {
		t.Fatalf("first submit: dup=%v err=%v", dup, err)
	}
	if dup, err := c.SubmitDedup(r); err != nil || !dup {
		t.Fatalf("retried submit: dup=%v err=%v, want duplicate", dup, err)
	}
	// A different key with the same content is NOT deduplicated (the
	// client chose to submit it twice).
	r2 := r
	r2.Key = "k2"
	if dup, err := c.SubmitDedup(r2); err != nil || dup {
		t.Fatalf("distinct key: dup=%v err=%v", dup, err)
	}
	// Keyless readings bypass dedup entirely.
	r3 := r
	r3.Key = ""
	if dup, err := c.SubmitDedup(r3); err != nil || dup {
		t.Fatalf("keyless: dup=%v err=%v", dup, err)
	}
}

func TestCollectorDedupCapEvictsOldest(t *testing.T) {
	c := newTestCollector(t, "a")
	c.DedupCap = 4
	at := time.Unix(600, 0)
	for i := 0; i < 6; i++ {
		r := Reading{Node: "a", SignalID: "s", PowerDBm: -60, At: at, Key: fmt.Sprintf("k%d", i)}
		if _, err := c.SubmitDedup(r); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	// k0 and k1 were evicted; resubmitting them is no longer caught.
	if dup, _ := c.SubmitDedup(Reading{Node: "a", SignalID: "s", At: at, Key: "k0"}); dup {
		t.Fatalf("evicted key still deduplicated")
	}
	// k5 is still remembered.
	if dup, _ := c.SubmitDedup(Reading{Node: "a", SignalID: "s", At: at, Key: "k5"}); !dup {
		t.Fatalf("recent key not deduplicated")
	}
}

func TestReadingsBatchEndpoint(t *testing.T) {
	c := newTestCollector(t, "a", "b")
	srv := httptest.NewServer(c.Handler(func() time.Time { return time.Unix(600, 0) }))
	defer srv.Close()
	at := time.Unix(600, 0)
	batch := []submitRequest{
		{Node: "a", SignalID: "tv-521MHz", PowerDBm: -60, At: at, Key: "a1"},
		{Node: "b", SignalID: "tv-521MHz", PowerDBm: -62, At: at, Key: "b1"},
		{Node: "a", SignalID: "tv-521MHz", PowerDBm: -60, At: at, Key: "a1"},   // duplicate
		{Node: "ghost", SignalID: "tv-521MHz", PowerDBm: -1, At: at, Key: "g"}, // rejected
	}
	body, _ := json.Marshal(batch)
	resp, err := http.Post(srv.URL+"/api/readings", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %s, want 202", resp.Status)
	}
	var summary batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&summary); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if summary.Accepted != 2 || summary.Duplicates != 1 || summary.Rejected != 1 {
		t.Fatalf("summary = %+v, want 2 accepted / 1 duplicate / 1 rejected", summary)
	}
	// The single-object form still works.
	one, _ := json.Marshal(submitRequest{Node: "a", SignalID: "tv-521MHz", PowerDBm: -61, At: at})
	resp2, err := http.Post(srv.URL+"/api/readings", "application/json", strings.NewReader(string(one)))
	if err != nil {
		t.Fatalf("single POST: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("single status = %s, want 202", resp2.Status)
	}
}

func TestHardenInFlightLimiter(t *testing.T) {
	release := make(chan struct{})
	var entered sync.WaitGroup
	entered.Add(2)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered.Done()
		<-release
	})
	h := Harden(slow, HardenConfig{MaxInFlight: 2, RequestTimeout: time.Minute, RetryAfter: 3 * time.Second})
	srv := httptest.NewServer(h)
	defer srv.Close()
	defer close(release)

	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Get(srv.URL)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	entered.Wait() // both slots occupied
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("third request: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %s, want 429", resp.Status)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
}

func TestHardenRequestTimeout(t *testing.T) {
	stuck := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	})
	h := Harden(stuck, HardenConfig{RequestTimeout: 50 * time.Millisecond})
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %s, want 503 from the timeout handler", resp.Status)
	}
}

// lossyTransport drops every response whose sequence number is odd: the
// request reaches the server, the client sees an error. Deterministic,
// no randomness needed.
type lossyTransport struct {
	mu  sync.Mutex
	n   int
	err error
}

func (l *lossyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.n++
	drop := l.n%2 == 1
	l.mu.Unlock()
	if drop {
		resp.Body.Close()
		return nil, fmt.Errorf("lossy: response %d lost", l.n)
	}
	return resp, nil
}

func TestClientSpoolsAndDrainsWithoutDuplicates(t *testing.T) {
	col := newTestCollector(t, "node-1")
	srv := httptest.NewServer(Harden(col.Handler(func() time.Time { return time.Unix(600, 0) }), HardenConfig{}))
	defer srv.Close()

	spool, err := resilience.OpenSpool(filepath.Join(t.TempDir(), "readings.jsonl"))
	if err != nil {
		t.Fatalf("spool: %v", err)
	}
	defer spool.Close()
	client, err := NewClient(ClientConfig{
		BaseURL: srv.URL,
		HTTP:    &http.Client{Transport: &lossyTransport{}, Timeout: 5 * time.Second},
		Spool:   spool,
		Retrier: resilience.NewRetrier(resilience.Policy{
			MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 1,
		}),
		Breaker:   resilience.NewBreaker(resilience.BreakerConfig{FailureThreshold: 100}),
		BatchSize: 4,
	})
	if err != nil {
		t.Fatalf("client: %v", err)
	}

	const total = 10
	for i := 0; i < total; i++ {
		r := Reading{
			Node: "node-1", SignalID: "tv-521MHz", PowerDBm: -60,
			At: time.Unix(int64(600+i*60), 0),
		}
		if err := client.Submit(r); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if client.SpoolDepth() != total {
		t.Fatalf("spool depth = %d, want %d", client.SpoolDepth(), total)
	}
	if err := client.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if client.SpoolDepth() != 0 {
		t.Fatalf("spool depth after drain = %d, want 0", client.SpoolDepth())
	}
	// Every response-lost batch was retried; dedup must have kept each
	// reading in exactly one epoch.
	anomalies := col.CloseEpochs(time.Unix(1e6, 0))
	_ = anomalies
	epochs := col.History("tv-521MHz")
	if len(epochs) != total {
		t.Fatalf("epochs = %d, want %d (one per minute window)", len(epochs), total)
	}
	for _, e := range epochs {
		if len(e.Readings) != 1 {
			t.Fatalf("epoch %v has %d readings, want 1", e.At, len(e.Readings))
		}
	}
}

func TestClientRegisterRetriesAndTolerates409(t *testing.T) {
	col := newTestCollector(t)
	srv := httptest.NewServer(col.Handler(func() time.Time { return time.Unix(0, 0) }))
	defer srv.Close()
	spool, err := resilience.OpenSpool(filepath.Join(t.TempDir(), "s.jsonl"))
	if err != nil {
		t.Fatalf("spool: %v", err)
	}
	defer spool.Close()
	client, err := NewClient(ClientConfig{
		BaseURL: srv.URL,
		HTTP:    &http.Client{Transport: &lossyTransport{}, Timeout: 5 * time.Second},
		Spool:   spool,
		Retrier: resilience.NewRetrier(resilience.Policy{
			MaxAttempts: 8, BaseDelay: time.Millisecond, Seed: 1,
		}),
	})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	// First attempt loses the response: the server registered the node
	// but the client retries and hits 409 — which must read as success.
	if err := client.Register(context.Background(), "node-1", "op", "rtlsdr"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, ok := col.Ledger.Node("node-1"); !ok {
		t.Fatalf("node not registered")
	}
}
