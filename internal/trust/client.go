package trust

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"sensorcal/internal/clock"
	"sensorcal/internal/obs"
	"sensorcal/internal/resilience"
)

// Client is the resilient node-side path to a remote collector: the
// store-and-forward half of the paper's §5 crowd-sourced network.
// Submit never touches the network — it appends the reading to a durable
// spool and returns once the WAL is fsynced — and a drain loop ships
// spooled readings in batches whenever the collector is reachable,
// through a retrier (backoff + jitter) and a circuit breaker (fail fast
// while the collector is known-down). Every reading carries a
// deterministic idempotency key, so a retried batch or a replay after a
// daemon restart cannot double-count consensus evidence.
type Client struct {
	base    string
	hc      *http.Client
	spool   *resilience.Spool
	retrier *resilience.Retrier
	breaker *resilience.Breaker
	clk     clock.Clock
	batch   int
	log     *obs.Logger
}

// ClientConfig assembles a Client.
type ClientConfig struct {
	// BaseURL of the collector, e.g. "http://host:8025".
	BaseURL string
	// HTTP is the underlying client; nil means a 10 s-timeout default.
	// Tests inject a chaos transport here.
	HTTP *http.Client
	// Spool is the durable store-and-forward WAL (required).
	Spool *resilience.Spool
	// Retrier wraps every network call; nil means a conventional default
	// (5 attempts, 100 ms base, 5 s cap).
	Retrier *resilience.Retrier
	// Breaker guards the drain path; nil means a conventional default
	// (5 consecutive failures open the circuit for 15 s).
	Breaker *resilience.Breaker
	// BatchSize bounds readings per drain POST. Zero means 64.
	BatchSize int
	// Clock paces the drain loop; nil means the wall clock.
	Clock clock.Clock
	// Logger for drain-path warnings; nil silences them.
	Logger *obs.Logger
}

// NewClient validates the config and returns a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("trust: client needs a collector base URL")
	}
	if cfg.Spool == nil {
		return nil, fmt.Errorf("trust: client needs a spool")
	}
	hc := cfg.HTTP
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	r := cfg.Retrier
	if r == nil {
		r = resilience.NewRetrier(resilience.Policy{
			MaxAttempts: 5,
			BaseDelay:   100 * time.Millisecond,
			MaxDelay:    5 * time.Second,
		})
	}
	b := cfg.Breaker
	if b == nil {
		b = resilience.NewBreaker(resilience.BreakerConfig{
			Name:             "collector",
			FailureThreshold: 5,
			OpenFor:          15 * time.Second,
		})
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 64
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System{}
	}
	return &Client{
		base:    cfg.BaseURL,
		hc:      hc,
		spool:   cfg.Spool,
		retrier: r,
		breaker: b,
		clk:     clk,
		batch:   batch,
		log:     cfg.Logger,
	}, nil
}

// ReadingKey derives the deterministic idempotency key for a reading:
// identical readings (same node, signal, timestamp) produced by a
// measurement retry or a spool replay collapse to one consensus entry.
func ReadingKey(r Reading) string {
	return string(r.Node) + "|" + r.SignalID + "|" + strconv.FormatInt(r.At.UTC().UnixNano(), 36)
}

// post sends one JSON POST and classifies the response. 4xx responses
// (except 429) are permanent: retrying an unparseable or conflicting
// request reproduces the failure.
func (c *Client) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, resilience.Permanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	obs.Inject(ctx, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("trust: POST %s: %w", path, err)
	}
	return resp, nil
}

// drainBody consumes and closes a response body so the underlying
// connection returns to the pool.
func drainBody(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// errorFromResponse summarizes a non-2xx response, including a body
// snippet, and marks unretryable statuses permanent.
func errorFromResponse(op string, resp *http.Response) error {
	snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	resp.Body.Close()
	err := fmt.Errorf("trust: %s: collector returned %s: %s", op, resp.Status, bytes.TrimSpace(snippet))
	if resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
		return resilience.Permanent(err)
	}
	return err
}

// Register enrolls the node with the collector, retrying transient
// failures. A Conflict response means the node is already in the ledger
// (a daemon restart) and is success.
func (c *Client) Register(ctx context.Context, node NodeID, operator, hardware string) error {
	body, err := json.Marshal(registerRequest{ID: string(node), Operator: operator, Hardware: hardware})
	if err != nil {
		return err
	}
	ctx, span := obs.StartSpan(ctx, "trust.register")
	defer span.End()
	span.SetAttr("node", string(node))
	return c.retrier.Do(ctx, "register", func(ctx context.Context) error {
		resp, err := c.post(ctx, "/api/register", body)
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusConflict {
			drainBody(resp)
			return nil
		}
		return errorFromResponse("register", resp)
	})
}

// Submit implements agent.Collector: the reading is durably spooled under
// its idempotency key and shipped by the drain loop. It fails only if
// the local WAL cannot be written.
func (c *Client) Submit(r Reading) error {
	if r.Key == "" {
		r.Key = ReadingKey(r)
	}
	return c.spool.Append(r.Key, submitRequest{
		Node: string(r.Node), SignalID: r.SignalID,
		PowerDBm: r.PowerDBm, At: r.At, Key: r.Key, Trace: r.Trace,
	})
}

// SpoolDepth returns how many readings await delivery.
func (c *Client) SpoolDepth() int { return c.spool.Len() }

// DrainOnce ships at most one batch of spooled readings. It returns the
// number of readings acked (delivered, deduplicated, or permanently
// rejected) and whether more remain. A zero count with nil error means
// the spool was empty.
func (c *Client) DrainOnce(ctx context.Context) (acked int, more bool, err error) {
	batch := c.spool.Peek(c.batch)
	if len(batch) == 0 {
		return 0, false, nil
	}
	// The drain gets its own span (propagated via the POST's traceparent)
	// rather than adopting one reading's trace: a batch mixes readings
	// from many measurement traces, each of which stays linked through
	// the per-reading Trace field instead.
	ctx, span := obs.StartSpan(ctx, "trust.drain")
	defer func() {
		span.SetError(err)
		span.End()
	}()
	span.SetAttr("batch", strconv.Itoa(len(batch)))
	if err := c.breaker.AllowCtx(ctx); err != nil {
		return 0, true, err
	}
	payload := make([]json.RawMessage, len(batch))
	keys := make([]string, len(batch))
	for i, rec := range batch {
		payload[i] = rec.Payload
		keys[i] = rec.Key
	}
	body, err := json.Marshal(payload)
	if err != nil {
		// Local fault: the collector was never contacted, so release the
		// probe without judging the dependency's health either way.
		c.breaker.Cancel()
		return 0, true, resilience.Permanent(err)
	}
	var summary batchResponse
	err = c.retrier.Do(ctx, "drain", func(ctx context.Context) error {
		resp, err := c.post(ctx, "/api/readings", body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusAccepted {
			return errorFromResponse("drain", resp)
		}
		var got batchResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&got); err != nil {
			resp.Body.Close()
			return fmt.Errorf("trust: drain: decoding batch response: %w", err)
		}
		drainBody(resp)
		summary = got
		return nil
	})
	c.breaker.RecordCtx(ctx, err)
	if err != nil {
		return 0, true, err
	}
	if summary.Rejected > 0 && c.log != nil {
		c.log.Warnf("collector rejected %d readings: %v", summary.Rejected, summary.Errors)
	}
	// Ack the whole batch: accepted and duplicate readings are delivered,
	// rejected ones are permanently bad and retrying them cannot help.
	if err := c.spool.Ack(keys...); err != nil {
		return 0, true, err
	}
	return len(keys), c.spool.Len() > 0, nil
}

// Drain ships batches until the spool is empty or ctx is done.
func (c *Client) Drain(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		_, more, err := c.DrainOnce(ctx)
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
}

// Run drains the spool every interval until ctx is done — the background
// companion to an agent submitting via Submit. Errors are expected (that
// is the point of the spool) and logged at debug; the readings stay
// spooled for the next tick.
func (c *Client) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.clk.After(interval):
		}
		for {
			n, more, err := c.DrainOnce(ctx)
			if err != nil {
				if c.log != nil {
					c.log.Debugf("drain: %v (spool depth %d)", err, c.spool.Len())
				}
				break
			}
			if n == 0 || !more {
				break
			}
		}
	}
}
