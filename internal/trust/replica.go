package trust

import (
	"sort"
	"time"
)

// Replica-tier primitives. A multi-replica collector ring (see
// internal/replica) partitions *ingest* state by node ownership but
// replicates the durable outcomes — enrollments, post-epoch scores and
// the closed-epoch history — to every member, so any replica answers
// /api/trust and /api/fleet exactly like the single collector would.
//
// Epoch close is where the partitioning must not show: an epoch groups
// readings of one signal across many nodes, and those nodes may be owned
// by different replicas. The protocol is drain → merge → close →
// install:
//
//  1. every replica drains its matured pending epochs (DrainPending),
//  2. the coordinator merges drains per (signal, window) and runs the
//     consensus pipeline over the merged list (CloseDrained) — the exact
//     signal-ascending, window-ascending order CloseEpochs uses, so the
//     result is byte-identical to a single collector fed the same
//     readings,
//  3. every other replica installs the result (InstallClosed): history
//     appended in the same order, scores set to the coordinator's
//     absolute values, and the batch appended to its own durable store.
//
// CloseEpochs itself is DrainPending + CloseDrained, so single-node and
// merged closes cannot drift: there is only one pipeline.

// DrainPending removes every pending epoch whose window started before
// cutoff and returns them sorted by signal ascending, window ascending
// within a signal — the order the close pipeline consumes.
func (c *Collector) DrainPending(cutoff time.Time) []Epoch {
	var signals []string
	for i := range c.epochs {
		st := &c.epochs[i]
		// Skip stripes with nothing to drain: no open windows and no
		// submit since the last pass. The dirty swap is safe against a
		// concurrent submit — the submit increments `open` under the
		// stripe lock *before* setting dirty, so either we see its open
		// count here or it re-marks the stripe for the next pass.
		if !st.dirty.Swap(false) && st.open.Load() == 0 {
			continue
		}
		st.mu.Lock()
		for sig, byWindow := range st.pending {
			for w := range byWindow {
				if w.Before(cutoff) {
					signals = append(signals, sig)
					break
				}
			}
		}
		st.mu.Unlock()
	}
	sort.Strings(signals)
	var out []Epoch
	for _, sig := range signals {
		st := &c.epochs[fnv1a(sig)&c.mask]
		st.mu.Lock()
		byWindow := st.pending[sig]
		var windows []time.Time
		for w := range byWindow {
			if w.Before(cutoff) {
				windows = append(windows, w)
			}
		}
		sort.Slice(windows, func(i, j int) bool { return windows[i].Before(windows[j]) })
		for _, w := range windows {
			out = append(out, *byWindow[w])
			delete(byWindow, w)
		}
		st.open.Add(int64(-len(windows)))
		if len(byWindow) == 0 {
			delete(st.pending, sig)
		}
		st.mu.Unlock()
	}
	return out
}

// RestagePending returns drained epochs to the pending state: the
// rollback path when a drain's consumer never received them (the
// /replica/drain response failed mid-write) and the receiving side of a
// shutting-down follower handing its pending evidence to the
// coordinator. A reading that arrived for the same (signal, window,
// node) after the drain is newer and wins — restaged values fill only
// the gaps, the same last-write-wins rule Epoch ingestion applies.
func (c *Collector) RestagePending(epochs []Epoch) {
	for i := range epochs {
		e := &epochs[i]
		st := &c.epochs[fnv1a(e.SignalID)&c.mask]
		st.mu.Lock()
		byWindow, ok := st.pending[e.SignalID]
		if !ok {
			byWindow = make(map[time.Time]*Epoch)
			st.pending[e.SignalID] = byWindow
		}
		cur, ok := byWindow[e.At]
		if !ok {
			cur = &Epoch{SignalID: e.SignalID, At: e.At, Readings: make(map[NodeID]float64, len(e.Readings))}
			byWindow[e.At] = cur
			st.open.Add(1)
		}
		for id, p := range e.Readings {
			if _, exists := cur.Readings[id]; !exists {
				cur.Readings[id] = p
			}
		}
		st.mu.Unlock()
		st.markDirty()
	}
}

// MergeDrained merges per-replica drains into one close input: epochs of
// the same (signal, window) have their readings unioned, and the result
// is re-sorted into the pipeline order. Replicas partition readings by
// node, so the union is disjoint; should the same node somehow appear in
// two drains, the later drain in argument order wins — the same
// last-write-wins rule Epoch ingestion applies to a node re-submitting
// within a window.
func MergeDrained(drains ...[]Epoch) []Epoch {
	type key struct {
		sig string
		at  time.Time
	}
	merged := make(map[key]*Epoch)
	for _, drain := range drains {
		for i := range drain {
			e := drain[i]
			k := key{e.SignalID, e.At}
			m, ok := merged[k]
			if !ok {
				m = &Epoch{SignalID: e.SignalID, At: e.At, Readings: map[NodeID]float64{}}
				merged[k] = m
			}
			for id, p := range e.Readings {
				m.Readings[id] = p
			}
		}
	}
	out := make([]Epoch, 0, len(merged))
	for _, e := range merged {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SignalID != out[j].SignalID {
			return out[i].SignalID < out[j].SignalID
		}
		return out[i].At.Before(out[j].At)
	})
	return out
}

// CloseDrained runs the consensus pipeline over drained epochs (already
// in signal-ascending, window-ascending order): per epoch the upper-bound
// check, history append, correlation check over the signal's accumulated
// history, and ledger update. It flushes the resulting score batch to the
// durable store and returns the anomalies plus the final absolute score
// update per touched node, sorted by node — the broadcast a coordinator
// sends its followers for InstallClosed.
func (c *Collector) CloseDrained(cutoff time.Time, epochs []Epoch) ([]Anomaly, []ScoreUpdate) {
	var all []Anomaly
	final := make(map[NodeID]Score)
	for i := range epochs {
		e := epochs[i]
		anomalies := c.Detector.CheckEpoch(e)
		st := &c.epochs[fnv1a(e.SignalID)&c.mask]
		st.mu.Lock()
		st.history[e.SignalID] = append(st.history[e.SignalID], e)
		hist := st.history[e.SignalID]
		st.mu.Unlock()
		var participants []NodeID
		for id := range e.Readings {
			participants = append(participants, id)
		}
		sort.Slice(participants, func(i, j int) bool { return participants[i] < participants[j] })
		// Correlation check over the accumulated history. Close passes are
		// single-flight (the epoch loop, or the ring coordinator), so hist
		// is stable while the detector reads it.
		anomalies = append(anomalies, c.Detector.CheckCorrelation(hist)...)
		Apply(c.Ledger, participants, anomalies)
		c.metrics.recordEpochClosed(anomalies)
		c.metrics.recordCloseLag(cutoff, e.At)
		for _, id := range participants {
			s := c.Ledger.Trust(id)
			c.metrics.setNodeScore(id, s)
			final[id] = s
		}
		all = append(all, anomalies...)
	}
	updates := make([]ScoreUpdate, 0, len(final))
	for id, s := range final {
		updates = append(updates, ScoreUpdate{Node: id, Score: s})
	}
	sort.Slice(updates, func(i, j int) bool { return updates[i].Node < updates[j].Node })
	// One durable append (one fsync) per close pass, off the submit hot
	// path; a failure degrades the collector and the batch is retried —
	// merged with newer updates — on the next pass.
	c.flushStore(cutoff, updates)
	return all, updates
}

// InstallClosed applies a close result computed by the ring coordinator:
// the merged epochs are appended to this collector's history in the
// coordinator's order and the absolute scores are installed and appended
// to the durable store. After InstallClosed, History, Fleet and /api/trust
// answer exactly as they do on the coordinator.
func (c *Collector) InstallClosed(at time.Time, epochs []Epoch, updates []ScoreUpdate) {
	for i := range epochs {
		e := epochs[i]
		st := &c.epochs[fnv1a(e.SignalID)&c.mask]
		st.mu.Lock()
		st.history[e.SignalID] = append(st.history[e.SignalID], e)
		st.mu.Unlock()
	}
	for _, u := range updates {
		c.Ledger.SetScore(u.Node, u.Score)
		c.metrics.setNodeScore(u.Node, u.Score)
	}
	c.flushStore(at, updates)
}

// ApplyRegister applies a replicated enrollment verbatim — the Registered
// timestamp travels with the record so every replica's ledger carries the
// same value. A node already present is an idempotent success (the
// replication stream and catch-up replay overlap by design).
func (c *Collector) ApplyRegister(n Node) error {
	if _, ok := c.Ledger.Node(n.ID); ok {
		return nil
	}
	return c.registerDurable(n)
}

// RegisterDurable enrolls a node through the ledger-first durable path —
// the exported form the replica router uses for locally originated
// registrations before replicating them.
func (c *Collector) RegisterDurable(n Node) error { return c.registerDurable(n) }

// FreshnessSnapshot returns every node's newest evidence timestamp. A
// replica owns the freshness of the nodes routed to it; the fleet view
// merges snapshots across replicas by taking the newest timestamp per
// node.
func (c *Collector) FreshnessSnapshot() map[NodeID]time.Time {
	out := make(map[NodeID]time.Time)
	for i := range c.fresh {
		m := c.fresh[i].m.Load()
		if m == nil {
			continue
		}
		for id, cell := range *m {
			out[id] = time.Unix(0, cell.Load()).UTC()
		}
	}
	return out
}

// HistorySignals returns every signal with closed history, sorted — the
// catch-up surface a joining replica enumerates before copying each
// signal's epochs.
func (c *Collector) HistorySignals() []string {
	var signals []string
	for i := range c.epochs {
		st := &c.epochs[i]
		st.mu.Lock()
		for sig := range st.history {
			signals = append(signals, sig)
		}
		st.mu.Unlock()
	}
	sort.Strings(signals)
	return signals
}

// InstallHistory replaces a signal's closed-epoch history — the catch-up
// path installing a live peer's view into a joining replica.
func (c *Collector) InstallHistory(signal string, epochs []Epoch) {
	st := &c.epochs[fnv1a(signal)&c.mask]
	st.mu.Lock()
	st.history[signal] = append([]Epoch(nil), epochs...)
	st.mu.Unlock()
}
