package trust

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestSubmitBatchOutcomes pins the per-reading contract: SubmitBatch's
// outcome slice must equal, position by position, what N sequential
// SubmitDedup calls would have returned for the same slice — across
// rejects (unknown node, missing signal), duplicates of earlier batches,
// duplicates *within* one batch, and keyless readings — at 1, 4 and 16
// stripes.
func TestSubmitBatchOutcomes(t *testing.T) {
	mixed := func() []Reading {
		at := t0.Add(30 * time.Second)
		return []Reading{
			{Node: "node-00", SignalID: "sig-a", PowerDBm: -50, At: at, Key: "k1"},
			{Node: "ghost", SignalID: "sig-a", PowerDBm: -50, At: at, Key: "k2"},   // unknown node
			{Node: "node-01", SignalID: "", PowerDBm: -50, At: at, Key: "k3"},      // missing signal
			{Node: "node-00", SignalID: "sig-a", PowerDBm: -51, At: at, Key: "k1"}, // dup within batch
			{Node: "node-01", SignalID: "sig-b", PowerDBm: -52, At: at},            // keyless
			{Node: "node-01", SignalID: "sig-b", PowerDBm: -53, At: at},            // keyless repeat: accepted again
			{Node: "node-02", SignalID: "sig-a", PowerDBm: -54, At: at, Key: "prev"},
		}
	}
	for _, shards := range []int{1, 4, 16} {
		serial := newWorkloadCollector(t, shards, 3)
		batch := newWorkloadCollector(t, shards, 3)
		// Seed both with an earlier batch so cross-batch duplicates (and
		// the lock-free fast path, populated by the first round) fire.
		seed := []Reading{{Node: "node-02", SignalID: "sig-a", PowerDBm: -49, At: t0, Key: "prev"}}
		submitSerial(t, serial, seed)
		if outs := batch.SubmitBatch(seed, nil); outs[0].Duplicate || outs[0].Err != nil {
			t.Fatalf("shards=%d: seed outcome = %+v", shards, outs[0])
		}

		rs := mixed()
		var want []SubmitOutcome
		for _, r := range rs {
			dup, err := serial.SubmitDedup(r)
			want = append(want, SubmitOutcome{Duplicate: dup, Err: err})
		}
		got := batch.SubmitBatch(mixed(), nil)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d outcomes, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i].Duplicate != want[i].Duplicate {
				t.Errorf("shards=%d reading %d: Duplicate = %v, want %v", shards, i, got[i].Duplicate, want[i].Duplicate)
			}
			gotErr, wantErr := fmt.Sprint(got[i].Err), fmt.Sprint(want[i].Err)
			if gotErr != wantErr {
				t.Errorf("shards=%d reading %d: Err = %q, want %q", shards, i, gotErr, wantErr)
			}
		}
		// And the collectors must have converged to identical state.
		if !reflect.DeepEqual(batch.Fleet(), serial.Fleet()) {
			t.Errorf("shards=%d: fleet diverges after mixed batch", shards)
		}
		if got, want := batch.PendingEpochs(), serial.PendingEpochs(); got != want {
			t.Errorf("shards=%d: pending = %d, want %d", shards, got, want)
		}
		a := batch.CloseEpochs(t0.Add(time.Hour))
		b := serial.CloseEpochs(t0.Add(time.Hour))
		if !reflect.DeepEqual(a, b) {
			t.Errorf("shards=%d: close anomalies diverge: %v vs %v", shards, a, b)
		}
		for _, sig := range []string{"sig-a", "sig-b"} {
			if !reflect.DeepEqual(batch.History(sig), serial.History(sig)) {
				t.Errorf("shards=%d: history(%s) diverges", shards, sig)
			}
		}
	}
}

// TestSubmitBatchReusesOuts pins the scratch contract: passing the
// previous call's outcome slice back in reuses its backing array.
func TestSubmitBatchReusesOuts(t *testing.T) {
	c := newWorkloadCollector(t, 4, 2)
	rs := []Reading{
		{Node: "node-00", SignalID: "s", PowerDBm: -50, At: t0, Key: "a"},
		{Node: "node-01", SignalID: "s", PowerDBm: -51, At: t0, Key: "b"},
	}
	outs := c.SubmitBatch(rs, nil)
	again := c.SubmitBatch(rs[:1], outs)
	if &again[0] != &outs[0] {
		t.Error("SubmitBatch did not reuse the passed outcome slice")
	}
	if !again[0].Duplicate {
		t.Error("retried key not marked duplicate on reused outs")
	}
}

// TestDedupFastPathChurnRace hammers the lock-free dedup fast path with
// eviction churn: a tiny DedupCap forces constant ring eviction and slot
// clears while concurrent workers retry both hot (never-evicted is not
// guaranteed — cap is tiny) and fresh keys, and a closer/reader pair
// scans shared state. Run under -race this is the memory-model check for
// the slot cache; the semantic assertion is the no-false-positive
// invariant, checked via keys that were *never* submitted.
func TestDedupFastPathChurnRace(t *testing.T) {
	const workers, perWorker = 8, 600
	c := newWorkloadCollector(t, 4, 8)
	c.DedupCap = 64 // 16 per stripe at 4 stripes: constant eviction
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.CloseEpochs(t0.Add(time.Duration(i%16) * time.Minute))
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = c.Fleet()
			_ = c.PendingEpochs()
			_ = c.History("sig-0")
		}
	}()
	var subWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		subWG.Add(1)
		go func(w int) {
			defer subWG.Done()
			var outs []SubmitOutcome
			batch := make([]Reading, 0, 4)
			for i := 0; i < perWorker; i++ {
				batch = batch[:0]
				for j := 0; j < 4; j++ {
					batch = append(batch, Reading{
						Node:     NodeID(fmt.Sprintf("node-%02d", (w+j)%8)),
						SignalID: fmt.Sprintf("sig-%d", j%3),
						PowerDBm: -50,
						At:       t0.Add(time.Duration(i%32) * time.Minute),
						// Deliberately overlapping key space across workers:
						// the same key races remember/evict/fastDup.
						Key: fmt.Sprintf("churn-%d", (w*perWorker+i*4+j)%128),
					})
				}
				outs = c.SubmitBatch(batch, outs)
				for k := range outs {
					if outs[k].Err != nil {
						t.Error(outs[k].Err)
						return
					}
				}
				// A key that no goroutine ever submits must never be a
				// fast-path duplicate, whatever churn is in flight.
				ghost := fmt.Sprintf("never-%d-%d", w, i)
				if dup, err := c.SubmitDedup(Reading{
					Node: "node-00", SignalID: "sig-0", PowerDBm: -50,
					At: t0, Key: ghost,
				}); err != nil || dup {
					t.Errorf("fresh key %s: dup=%v err=%v", ghost, dup, err)
					return
				}
			}
		}(w)
	}
	subWG.Wait()
	close(stop)
	wg.Wait()
}

// TestSubmitBatchDedupAcrossChunks pins that the fast path and the
// locked path agree when a retry arrives through a different entry point
// and stripe count than the original.
func TestSubmitBatchDedupAcrossChunks(t *testing.T) {
	c := newWorkloadCollector(t, 8, 1)
	c.DedupCap = 64 * 1024
	var outs []SubmitOutcome
	mk := func(i int) Reading {
		return Reading{Node: "node-00", SignalID: "s", PowerDBm: -50, At: t0, Key: fmt.Sprintf("key-%d", i)}
	}
	for i := 0; i < 200; i++ {
		outs = c.SubmitBatch([]Reading{mk(i)}, outs)
		if outs[0].Duplicate || outs[0].Err != nil {
			t.Fatalf("first submit %d: %+v", i, outs[0])
		}
	}
	// Retry all 200 in one batch: every one must dedup (mostly via the
	// lock-free fast path, since nothing was evicted).
	batch := make([]Reading, 200)
	for i := range batch {
		batch[i] = mk(i)
	}
	outs = c.SubmitBatch(batch, outs)
	for i := range outs {
		if !outs[i].Duplicate || outs[i].Err != nil {
			t.Fatalf("retry %d not deduped: %+v", i, outs[i])
		}
	}
}
