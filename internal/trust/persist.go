package trust

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Ledger persistence. spectrumd restarts must not reset every operator to
// the initial score — a fabricator could launder its history by bouncing
// the collector. The snapshot carries nodes and scores; pending epochs
// are deliberately not persisted (they re-accumulate within one window).

// ledgerSnapshot is the serialized ledger.
type ledgerSnapshot struct {
	SavedAt time.Time      `json:"saved_at"`
	Nodes   []nodeSnapshot `json:"nodes"`
}

type nodeSnapshot struct {
	Node
	Score Score `json:"score"`
}

// Save writes the ledger state as JSON. Stripes are snapshotted one at a
// time (writers to other stripes proceed), then merged into one sorted
// node list so the snapshot bytes are deterministic.
func (l *Ledger) Save(w io.Writer, now time.Time) error {
	snap := ledgerSnapshot{SavedAt: now.UTC()}
	for i := range l.stripes {
		st := &l.stripes[i]
		st.mu.RLock()
		for id, n := range st.nodes {
			snap.Nodes = append(snap.Nodes, nodeSnapshot{Node: *n, Score: st.scores[id]})
		}
		st.mu.RUnlock()
	}
	sort.Slice(snap.Nodes, func(i, j int) bool { return snap.Nodes[i].ID < snap.Nodes[j].ID })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// loadClockSkewTolerance is how far a snapshot's SavedAt may sit past the
// loading clock before the snapshot is rejected as forged or corrupt. A
// collector fleet's clocks drift by seconds, not minutes; anything beyond
// this is a timestamp that never came from a wall clock we trust.
const loadClockSkewTolerance = 5 * time.Minute

// Load restores a snapshot into an empty ledger, validating against the
// system clock. See LoadAt.
func (l *Ledger) Load(r io.Reader) error { return l.LoadAt(r, time.Now()) }

// LoadAt restores a snapshot into an empty ledger. Loading over existing
// registrations is refused to avoid silent merges, a snapshot whose
// SavedAt sits meaningfully past now is rejected (a fabricator handing
// the collector a forged "future" snapshot must not win an argument with
// the clock), and duplicate node IDs are an error rather than a silent
// last-wins merge. LoadAt runs at boot, before the collector serves
// traffic, so the emptiness check does not need to hold every stripe
// lock at once.
func (l *Ledger) LoadAt(r io.Reader, now time.Time) error {
	var snap ledgerSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("trust: decoding ledger snapshot: %w", err)
	}
	if l.Len() != 0 {
		return fmt.Errorf("trust: refusing to load into a non-empty ledger")
	}
	if skew := snap.SavedAt.Sub(now); skew > loadClockSkewTolerance {
		return fmt.Errorf("trust: snapshot saved_at %s is %s in the future", snap.SavedAt.Format(time.RFC3339), skew)
	}
	seen := make(map[NodeID]struct{}, len(snap.Nodes))
	for _, ns := range snap.Nodes {
		if ns.ID == "" {
			return fmt.Errorf("trust: snapshot contains a node without an ID")
		}
		if _, dup := seen[ns.ID]; dup {
			return fmt.Errorf("trust: snapshot contains node %s twice", ns.ID)
		}
		seen[ns.ID] = struct{}{}
		if ns.Score < 0 || ns.Score > 1 {
			return fmt.Errorf("trust: snapshot score %v for %s out of range", ns.Score, ns.ID)
		}
	}
	for _, ns := range snap.Nodes {
		n := ns.Node
		st := l.stripe(ns.ID)
		st.mu.Lock()
		st.nodes[ns.ID] = &n
		st.scores[ns.ID] = ns.Score
		st.mu.Unlock()
	}
	return nil
}
