package trust

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Ledger persistence. spectrumd restarts must not reset every operator to
// the initial score — a fabricator could launder its history by bouncing
// the collector. The snapshot carries nodes and scores; pending epochs
// are deliberately not persisted (they re-accumulate within one window).

// ledgerSnapshot is the serialized ledger.
type ledgerSnapshot struct {
	SavedAt time.Time      `json:"saved_at"`
	Nodes   []nodeSnapshot `json:"nodes"`
}

type nodeSnapshot struct {
	Node
	Score Score `json:"score"`
}

// Save writes the ledger state as JSON. Stripes are snapshotted one at a
// time (writers to other stripes proceed), then merged into one sorted
// node list so the snapshot bytes are deterministic.
func (l *Ledger) Save(w io.Writer, now time.Time) error {
	snap := ledgerSnapshot{SavedAt: now.UTC()}
	for i := range l.stripes {
		st := &l.stripes[i]
		st.mu.RLock()
		for id, n := range st.nodes {
			snap.Nodes = append(snap.Nodes, nodeSnapshot{Node: *n, Score: st.scores[id]})
		}
		st.mu.RUnlock()
	}
	sort.Slice(snap.Nodes, func(i, j int) bool { return snap.Nodes[i].ID < snap.Nodes[j].ID })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Load restores a snapshot into an empty ledger. Loading over existing
// registrations is refused to avoid silent merges. Load runs at boot,
// before the collector serves traffic, so the emptiness check does not
// need to hold every stripe lock at once.
func (l *Ledger) Load(r io.Reader) error {
	var snap ledgerSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("trust: decoding ledger snapshot: %w", err)
	}
	if l.Len() != 0 {
		return fmt.Errorf("trust: refusing to load into a non-empty ledger")
	}
	for _, ns := range snap.Nodes {
		if ns.ID == "" {
			return fmt.Errorf("trust: snapshot contains a node without an ID")
		}
		if ns.Score < 0 || ns.Score > 1 {
			return fmt.Errorf("trust: snapshot score %v for %s out of range", ns.Score, ns.ID)
		}
		n := ns.Node
		st := l.stripe(ns.ID)
		st.mu.Lock()
		st.nodes[ns.ID] = &n
		st.scores[ns.ID] = ns.Score
		st.mu.Unlock()
	}
	return nil
}
