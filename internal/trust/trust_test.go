package trust

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestLedgerRegisterAndTrust(t *testing.T) {
	l := NewLedger()
	if err := l.Register(Node{ID: "n1", Operator: "alice"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Register(Node{ID: "n1"}); err == nil {
		t.Error("duplicate registration should fail")
	}
	if err := l.Register(Node{}); err == nil {
		t.Error("empty ID should fail")
	}
	if got := l.Trust("n1"); got != 0.5 {
		t.Errorf("initial trust = %v, want 0.5", got)
	}
	if got := l.Trust("ghost"); got != 0 {
		t.Errorf("unknown node trust = %v, want 0", got)
	}
	n, ok := l.Node("n1")
	if !ok || n.Operator != "alice" {
		t.Error("node lookup failed")
	}
	if l.Len() != 1 {
		t.Errorf("len = %d", l.Len())
	}
}

func TestLedgerRecordConverges(t *testing.T) {
	l := NewLedger()
	_ = l.Register(Node{ID: "good"})
	_ = l.Register(Node{ID: "bad"})
	for i := 0; i < 30; i++ {
		l.Record("good", 1)
		l.Record("bad", 0)
	}
	if g := l.Trust("good"); g < 0.95 {
		t.Errorf("good node trust = %v, want →1", g)
	}
	if b := l.Trust("bad"); b > 0.05 {
		t.Errorf("bad node trust = %v, want →0", b)
	}
	// Clamping.
	l.Record("good", 5)
	l.Record("good", -3)
	if g := l.Trust("good"); g < 0 || g > 1 {
		t.Errorf("trust out of range: %v", g)
	}
	// Unknown nodes silently ignored.
	l.Record("ghost", 1)
}

func TestTrustedSorted(t *testing.T) {
	l := NewLedger()
	for _, id := range []NodeID{"a", "b", "c"} {
		_ = l.Register(Node{ID: id})
	}
	for i := 0; i < 10; i++ {
		l.Record("a", 1)
		l.Record("c", 0)
	}
	ids := l.Trusted(0.4)
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("trusted = %v, want [a b]", ids)
	}
}

func TestScoreQuantize(t *testing.T) {
	cases := map[Score]string{0.9: "trusted", 0.6: "established", 0.4: "provisional", 0.1: "suspect"}
	for s, want := range cases {
		if got := s.Quantize(); got != want {
			t.Errorf("%v.Quantize() = %s, want %s", s, got, want)
		}
	}
}

func TestMad(t *testing.T) {
	med, dev := mad([]float64{1, 2, 3, 4, 100})
	if med != 3 {
		t.Errorf("median = %v, want 3", med)
	}
	if dev != 1 {
		t.Errorf("MAD = %v, want 1", dev)
	}
	med, dev = mad([]float64{2, 4})
	if med != 3 || dev != 1 {
		t.Errorf("even-length mad = %v, %v", med, dev)
	}
	if m, d := mad(nil); m != 0 || d != 0 {
		t.Error("empty mad should be zeros")
	}
}

func epochAt(sig string, at time.Time, readings map[NodeID]float64) Epoch {
	return Epoch{SignalID: sig, At: at, Readings: readings}
}

func TestUpperBoundCheckFlagsInflatedReport(t *testing.T) {
	d := NewDetector()
	e := epochAt("tv-521", time.Now(), map[NodeID]float64{
		"honest1": -52, "honest2": -54, "honest3": -60, "honest4": -49,
		"cheater": -20, // claims +30 dB over everyone
	})
	anomalies := d.CheckEpoch(e)
	if len(anomalies) != 1 || anomalies[0].Node != "cheater" {
		t.Fatalf("anomalies = %v", anomalies)
	}
	if anomalies[0].Severity < 0.9 {
		t.Errorf("severity %v for a flagrant violation", anomalies[0].Severity)
	}
	if anomalies[0].String() == "" {
		t.Error("anomaly should format")
	}
}

func TestUpperBoundCheckAllowsAttenuatedNodes(t *testing.T) {
	d := NewDetector()
	// An indoor node reading 30 dB low is fine — that's what calibration
	// is for, not fraud detection.
	e := epochAt("tv-521", time.Now(), map[NodeID]float64{
		"roof1": -50, "roof2": -52, "roof3": -51, "indoor": -82,
	})
	if anomalies := d.CheckEpoch(e); len(anomalies) != 0 {
		t.Errorf("attenuated node flagged: %v", anomalies)
	}
}

func TestUpperBoundCheckNeedsQuorum(t *testing.T) {
	d := NewDetector()
	e := epochAt("tv-521", time.Now(), map[NodeID]float64{"a": -50, "b": 0})
	if anomalies := d.CheckEpoch(e); anomalies != nil {
		t.Errorf("two nodes are not a consensus: %v", anomalies)
	}
}

// buildEpochSeries simulates epochs where the shared signal fluctuates and
// honest nodes track it with noise while a fabricator replays a constant
// and a random-submitter draws noise.
func buildEpochSeries(n int, seed int64) []Epoch {
	rng := rand.New(rand.NewSource(seed))
	base := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	var out []Epoch
	for i := 0; i < n; i++ {
		trend := 6 * math.Sin(float64(i)/3) // real propagation swing, ±6 dB
		readings := map[NodeID]float64{
			"honest1": -50 + trend + rng.NormFloat64(),
			"honest2": -55 + trend + rng.NormFloat64(),
			"honest3": -62 + trend + rng.NormFloat64(), // attenuated but honest
			"replay":  -51,                             // constant fabrication
			"random":  -50 + rng.NormFloat64()*8,       // noise fabrication
		}
		out = append(out, epochAt("tv-545", base.Add(time.Duration(i)*time.Minute), readings))
	}
	return out
}

func TestCorrelationCheckCatchesFabricators(t *testing.T) {
	d := NewDetector()
	epochs := buildEpochSeries(48, 5)
	anomalies := d.CheckCorrelation(epochs)
	flagged := map[NodeID]bool{}
	for _, a := range anomalies {
		flagged[a.Node] = true
	}
	if !flagged["replay"] {
		t.Error("constant replay not flagged")
	}
	if !flagged["random"] {
		t.Error("random fabrication not flagged")
	}
	for _, honest := range []NodeID{"honest1", "honest2", "honest3"} {
		if flagged[honest] {
			t.Errorf("honest node %s flagged", honest)
		}
	}
}

func TestCorrelationCheckNeedsHistory(t *testing.T) {
	d := NewDetector()
	if anomalies := d.CheckCorrelation(buildEpochSeries(3, 7)); anomalies != nil {
		t.Errorf("too-short history should not flag: %v", anomalies)
	}
}

func TestApplyUpdatesLedger(t *testing.T) {
	l := NewLedger()
	for _, id := range []NodeID{"honest1", "cheater"} {
		_ = l.Register(Node{ID: id})
	}
	anomalies := []Anomaly{{Node: "cheater", Severity: 1}}
	for i := 0; i < 10; i++ {
		Apply(l, []NodeID{"honest1", "cheater"}, anomalies)
	}
	if l.Trust("honest1") < 0.8 {
		t.Errorf("honest trust = %v", l.Trust("honest1"))
	}
	if l.Trust("cheater") > 0.2 {
		t.Errorf("cheater trust = %v", l.Trust("cheater"))
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	if r, n := pearson(a, b); math.Abs(r-1) > 1e-12 || n != 5 {
		t.Errorf("perfect correlation: r=%v n=%d", r, n)
	}
	anti := []float64{5, 4, 3, 2, 1}
	if r, _ := pearson(a, anti); math.Abs(r+1) > 1e-12 {
		t.Errorf("anti-correlation: r=%v", r)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if r, _ := pearson(flat, b); r != 0 {
		t.Errorf("flat series should report 0, got %v", r)
	}
	withNaN := []float64{1, math.NaN(), 3, math.NaN(), 5}
	if _, n := pearson(withNaN, b); n != 3 {
		t.Errorf("NaN skipping: n=%d, want 3", n)
	}
	if r, n := pearson([]float64{math.NaN()}, []float64{1}); r != 0 || n != 0 {
		t.Error("degenerate input should be 0,0")
	}
}

func TestLedgerSaveLoad(t *testing.T) {
	l := NewLedger()
	_ = l.Register(Node{ID: "a", Operator: "alice", ClaimedOutdoor: true, Hardware: "bladeRF"})
	_ = l.Register(Node{ID: "b", Operator: "bob"})
	for i := 0; i < 10; i++ {
		l.Record("a", 1)
		l.Record("b", 0)
	}
	var buf bytes.Buffer
	if err := l.Save(&buf, time.Date(2026, 7, 6, 18, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	fresh := NewLedger()
	if err := fresh.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 2 {
		t.Fatalf("len = %d", fresh.Len())
	}
	if fresh.Trust("a") != l.Trust("a") || fresh.Trust("b") != l.Trust("b") {
		t.Error("scores not restored")
	}
	n, ok := fresh.Node("a")
	if !ok || n.Operator != "alice" || !n.ClaimedOutdoor || n.Hardware != "bladeRF" {
		t.Errorf("node metadata lost: %+v", n)
	}
	// Restored nodes keep accumulating evidence.
	fresh.Record("b", 1)
	if fresh.Trust("b") <= l.Trust("b") {
		t.Error("restored ledger is inert")
	}
}

func TestLedgerLoadRejections(t *testing.T) {
	l := NewLedger()
	_ = l.Register(Node{ID: "x"})
	var buf bytes.Buffer
	_ = l.Save(&buf, time.Now())
	// Into a non-empty ledger.
	if err := l.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("loading into a populated ledger should fail")
	}
	// Garbage.
	if err := NewLedger().Load(bytes.NewReader([]byte("{bad"))); err == nil {
		t.Error("garbage snapshot should fail")
	}
	// Corrupt score.
	if err := NewLedger().Load(bytes.NewReader([]byte(`{"nodes":[{"ID":"a","score":7}]}`))); err == nil {
		t.Error("out-of-range score should fail")
	}
	// Missing ID.
	if err := NewLedger().Load(bytes.NewReader([]byte(`{"nodes":[{"score":0.5}]}`))); err == nil {
		t.Error("empty ID should fail")
	}
}
