package resilience

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"sensorcal/internal/obs"
)

// Regression tests for the Instrument-during-use data races the race
// detector surfaced when the measurement pipeline went concurrent:
// agentd instruments its retrier/breaker/spool while drain loops and
// measurement goroutines are already driving them. Run under -race
// these fail on the old unsynchronized metrics-pointer writes.

func TestRetrierInstrumentDuringDo(t *testing.T) {
	r := NewRetrier(Policy{MaxAttempts: 2, BaseDelay: 1, Seed: 7})
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = r.Do(context.Background(), "op", func(context.Context) error {
				return errors.New("always fails")
			})
		}
	}()
	for i := 0; i < 50; i++ {
		r.Instrument(obs.NewRegistry())
	}
	close(done)
	wg.Wait()
}

func TestBreakerInstrumentDuringUse(t *testing.T) {
	b := NewBreaker(BreakerConfig{Name: "race", FailureThreshold: 3})
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if b.Allow() == nil {
				b.Record(errors.New("fail"))
			}
		}
	}()
	for i := 0; i < 50; i++ {
		b.Instrument(obs.NewRegistry())
	}
	close(done)
	wg.Wait()
}

func TestSpoolInstrumentDuringAppend(t *testing.T) {
	s, err := OpenSpool(filepath.Join(t.TempDir(), "race.spool.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = s.Append(string(rune('a'+i%26))+"-key", map[string]int{"i": i})
			i++
		}
	}()
	for i := 0; i < 50; i++ {
		s.Instrument(obs.NewRegistry())
	}
	close(done)
	wg.Wait()
}
