// Package resilience is the robustness layer for the crowd-sourced
// network's distributed edges. The paper's §5 deployment story — volunteer
// nodes on home links feeding a cloud collector — lives or dies on how the
// system behaves when those links misbehave: every mechanism here exists
// so that a dropped packet, a collector restart, or a full disk degrades
// the pipeline instead of corrupting it.
//
// The package is dependency-free (stdlib + internal/obs + internal/clock)
// and provides three primitives:
//
//   - Retrier: exponential backoff with full jitter, per-attempt timeouts,
//     an overall attempt budget, and context-deadline awareness.
//   - Breaker: a three-state circuit breaker with half-open probes, so a
//     hard-down collector costs one probe per interval instead of a
//     retry storm from every node.
//   - Spool: a durable store-and-forward JSONL write-ahead log with
//     idempotency keys, so readings survive collector outages and daemon
//     restarts (spool.go).
//
// Fault injection for tests lives in the chaos subpackage.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sensorcal/internal/clock"
	"sensorcal/internal/obs"
)

// Policy configures a Retrier.
type Policy struct {
	// MaxAttempts bounds the total tries (first call included). Zero
	// means the default of 5.
	MaxAttempts int
	// BaseDelay is the backoff unit: attempt n waits a uniformly random
	// duration in [0, min(MaxDelay, BaseDelay·2ⁿ)] — "full jitter",
	// which desynchronizes a fleet of nodes that all saw the same
	// collector outage. Zero means 100 ms.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep. Zero means 10 s.
	MaxDelay time.Duration
	// Budget caps the total time spent inside Do, sleeps included. Zero
	// means no budget: attempts stop only via MaxAttempts or context.
	Budget time.Duration
	// PerAttempt bounds each individual attempt via a derived context.
	// Zero means attempts run under the caller's context unmodified.
	PerAttempt time.Duration
	// Retryable classifies errors; returning false stops immediately.
	// Nil treats every error as retryable.
	Retryable func(error) bool
	// Seed makes the jitter deterministic for tests. Zero seeds from the
	// wall clock.
	Seed int64
	// Clock drives the backoff sleeps; nil means the wall clock. Tests
	// pass clock.Simulated so retry schedules replay instantly.
	Clock clock.Clock
}

// Retrier executes operations under a retry Policy. It is safe for
// concurrent use; the mutable state is the jitter RNG (locked) and the
// metrics pointer (atomic, because Instrument may race with in-flight
// Do calls — agentd instruments its clients while the drain loop runs).
type Retrier struct {
	p   Policy
	clk clock.Clock

	mu  sync.Mutex
	rng *rand.Rand

	m atomic.Pointer[retrierMetrics]
}

// NewRetrier validates the policy and returns a Retrier.
func NewRetrier(p Policy) *Retrier {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 10 * time.Second
	}
	seed := p.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	clk := p.Clock
	if clk == nil {
		clk = clock.System{}
	}
	return &Retrier{p: p, clk: clk, rng: rand.New(rand.NewSource(seed))}
}

// Permanent wraps err so the Retrier stops immediately regardless of the
// policy's Retryable classifier.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanentError{err}
}

type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }
func (e permanentError) Unwrap() error { return e.err }

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var p permanentError
	return errors.As(err, &p)
}

// Do runs fn until it succeeds, a non-retryable error occurs, attempts or
// budget run out, or ctx is done. The error returned after exhaustion
// wraps the last attempt's error.
func (r *Retrier) Do(ctx context.Context, op string, fn func(context.Context) error) error {
	// One load for the whole operation: instrumenting mid-flight applies
	// from the next Do.
	m := r.m.Load()
	// Retry attempts annotate the caller's span (nil-safe no-ops without
	// one): a trace then shows *why* a request took 900 ms — three
	// attempts with backoff — not just that it did.
	span := obs.SpanFromContext(ctx)
	start := r.clk.Now()
	var last error
	for attempt := 0; attempt < r.p.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		actx := ctx
		var cancel context.CancelFunc
		if r.p.PerAttempt > 0 {
			actx, cancel = context.WithTimeout(ctx, r.p.PerAttempt)
		}
		m.recordAttempt(op)
		last = fn(actx)
		if cancel != nil {
			cancel()
		}
		if last == nil {
			return nil
		}
		if IsPermanent(last) || (r.p.Retryable != nil && !r.p.Retryable(last)) {
			m.recordGiveUp(op)
			span.Event("retry.giveup", "op", op, "attempt", attempt+1, "reason", "permanent")
			return last
		}
		if attempt == r.p.MaxAttempts-1 {
			break
		}
		delay := r.backoff(attempt)
		if !r.withinBudget(start, delay) {
			m.recordGiveUp(op)
			span.Event("retry.giveup", "op", op, "attempt", attempt+1, "reason", "budget")
			return fmt.Errorf("resilience: %s: retry budget exhausted after %d attempts: %w", op, attempt+1, last)
		}
		if deadline, ok := ctx.Deadline(); ok && r.clk.Now().Add(delay).After(deadline) {
			// The next attempt could not even start before the caller's
			// deadline; surface the real failure instead of sleeping into
			// a guaranteed DeadlineExceeded.
			m.recordGiveUp(op)
			span.Event("retry.giveup", "op", op, "attempt", attempt+1, "reason", "deadline")
			return fmt.Errorf("resilience: %s: context deadline before next retry: %w", op, last)
		}
		m.recordRetry(op)
		span.Event("retry", "op", op, "attempt", attempt+1, "delay", delay)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-r.clk.After(delay):
		}
	}
	m.recordGiveUp(op)
	span.Event("retry.giveup", "op", op, "attempt", r.p.MaxAttempts, "reason", "attempts")
	return fmt.Errorf("resilience: %s: %d attempts failed: %w", op, r.p.MaxAttempts, last)
}

// backoff returns the full-jitter delay for the given attempt index.
func (r *Retrier) backoff(attempt int) time.Duration {
	ceil := r.p.BaseDelay << uint(attempt)
	if ceil > r.p.MaxDelay || ceil <= 0 { // <=0: shift overflow
		ceil = r.p.MaxDelay
	}
	r.mu.Lock()
	d := time.Duration(r.rng.Int63n(int64(ceil) + 1))
	r.mu.Unlock()
	return d
}

// withinBudget reports whether sleeping delay still fits the total budget.
func (r *Retrier) withinBudget(start time.Time, delay time.Duration) bool {
	if r.p.Budget <= 0 {
		return true
	}
	return r.clk.Now().Add(delay).Sub(start) <= r.p.Budget
}
