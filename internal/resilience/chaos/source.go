package chaos

import (
	"math/rand"
	"sync"

	"sensorcal/internal/iq"
	"sensorcal/internal/sdr"
)

// FlakyEmission wraps an SDR emission and fails a seeded fraction of
// renders — a USB hiccup or sample-drop on cheap dongle hardware. Capture
// paths that tolerate it skip the affected emission; paths that don't
// surface the error to their retry layer.
type FlakyEmission struct {
	Inner    sdr.Emission
	FailRate float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewFlakyEmission wraps inner with a seeded failure schedule.
func NewFlakyEmission(inner sdr.Emission, seed int64, failRate float64) *FlakyEmission {
	return &FlakyEmission{Inner: inner, FailRate: failRate, rng: rand.New(rand.NewSource(seed))}
}

// RenderInto implements sdr.Emission.
func (f *FlakyEmission) RenderInto(b *iq.Buffer, scale func(dbm float64) float64, rng *rand.Rand) error {
	f.mu.Lock()
	fail := f.rng.Float64() < f.FailRate
	f.mu.Unlock()
	if fail {
		return errDropped{phase: "sdr capture"}
	}
	return f.Inner.RenderInto(b, scale, rng)
}
