package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sensorcal/internal/store"
)

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	return blob
}

// TestPowerCutUnsyncedWritesTear: synced bytes survive the crash intact;
// unsynced bytes survive only as a (possibly empty) prefix.
func TestPowerCutUnsyncedWritesTear(t *testing.T) {
	dir := t.TempDir()
	fs := NewPowerCutFS(store.OS{}, 42)
	path := filepath.Join(dir, "seg")
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable-")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	// Before the crash the unsynced bytes are not on the real file.
	if got := readFile(t, path); string(got) != "durable-" {
		t.Fatalf("unsynced bytes leaked to disk: %q", got)
	}
	fs.Crash()
	got := readFile(t, path)
	if len(got) < len("durable-") || string(got[:8]) != "durable-" {
		t.Fatalf("synced prefix damaged: %q", got)
	}
	if len(got) > len("durable-doomed") {
		t.Fatalf("crash invented bytes: %q", got)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("write after crash = %v, want ErrPowerCut", err)
	}
	if _, err := fs.Create(filepath.Join(dir, "other")); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("create after crash = %v, want ErrPowerCut", err)
	}
}

// TestPowerCutUnsyncedDirectoryEntriesVanish: a file created (or
// renamed, or removed) without a directory fsync rolls back at the
// crash.
func TestPowerCutUnsyncedDirectoryEntriesVanish(t *testing.T) {
	dir := t.TempDir()
	fs := NewPowerCutFS(store.OS{}, 7)

	// Created, synced content, but the directory entry never fsynced.
	ghost := filepath.Join(dir, "ghost")
	f, err := fs.Create(ghost)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("data"))
	f.Sync()

	// Removed without a directory fsync: comes back at the crash.
	keeper := filepath.Join(dir, "keeper")
	if err := os.WriteFile(keeper, []byte("kept"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(keeper); err != nil {
		t.Fatal(err)
	}

	// Renamed without a directory fsync: reverts at the crash.
	src := filepath.Join(dir, "src")
	if err := os.WriteFile(src, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "dst")
	if err := fs.Rename(src, dst); err != nil {
		t.Fatal(err)
	}

	fs.Crash()
	if blob := readFile(t, ghost); blob != nil {
		t.Fatalf("non-dir-synced create survived: %q", blob)
	}
	if got := readFile(t, keeper); string(got) != "kept" {
		t.Fatalf("non-dir-synced remove stuck: %q", got)
	}
	if blob := readFile(t, dst); blob != nil {
		t.Fatalf("non-dir-synced rename survived: %q", blob)
	}
	if got := readFile(t, src); string(got) != "payload" {
		t.Fatalf("rename rollback lost the source: %q", got)
	}
}

// TestPowerCutSyncDirMakesEntriesDurable: after SyncDir the same
// directory operations survive.
func TestPowerCutSyncDirMakesEntriesDurable(t *testing.T) {
	dir := t.TempDir()
	fs := NewPowerCutFS(store.OS{}, 7)
	path := filepath.Join(dir, "kept")
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("data"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	if got := readFile(t, path); string(got) != "data" {
		t.Fatalf("dir-synced file lost: %q", got)
	}
}

// TestPowerCutBudgetFiresMidWrite: the armed byte budget cuts the power
// inside a Write, leaving at most the attempted bytes and returning
// ErrPowerCut.
func TestPowerCutBudgetFiresMidWrite(t *testing.T) {
	dir := t.TempDir()
	fs := NewPowerCutFS(store.OS{}, 3)
	path := filepath.Join(dir, "seg")
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	fs.SyncDir(dir)
	fs.ArmCrash(10)
	if _, err := f.Write([]byte("12345678")); err != nil { // 8 bytes: fits
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdefgh")) // crosses the budget at byte 2
	if !errors.Is(err, ErrPowerCut) {
		t.Fatalf("budget write = (%d, %v), want ErrPowerCut", n, err)
	}
	if !fs.Crashed() {
		t.Fatal("budget exhausted but no crash")
	}
	got := readFile(t, path)
	if len(got) < 8 || string(got[:8]) != "12345678" {
		t.Fatalf("synced prefix damaged: %q", got)
	}
	if len(got) > 10 {
		t.Fatalf("more bytes than the budget allowed: %q", got)
	}
}

// TestPowerCutShortWriteAndFsyncError: the transient fault injections
// return errors without cutting the power, and a later Sync can still
// flush.
func TestPowerCutShortWriteAndFsyncError(t *testing.T) {
	dir := t.TempDir()
	fs := NewPowerCutFS(store.OS{}, 9)
	fs.ShortWriteRate = 1.0
	path := filepath.Join(dir, "seg")
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("hello"))
	if err == nil || errors.Is(err, ErrPowerCut) {
		t.Fatalf("short write = (%d, %v), want a transient error", n, err)
	}
	if n > len("hello") {
		t.Fatalf("short write wrote %d > attempted", n)
	}
	fs.ShortWriteRate = 0
	fs.FsyncErrorRate = 1.0
	if err := f.Sync(); err == nil || errors.Is(err, ErrPowerCut) {
		t.Fatalf("fsync error = %v, want a transient error", err)
	}
	fs.FsyncErrorRate = 0
	if err := f.Sync(); err != nil {
		t.Fatalf("recovered fsync: %v", err)
	}
	if fs.Crashed() {
		t.Fatal("transient faults must not crash the machine")
	}
}

