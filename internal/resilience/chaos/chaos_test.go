package chaos

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sensorcal/internal/flightsim"
	"sensorcal/internal/fr24"
	"sensorcal/internal/geo"
	"sensorcal/internal/iq"
	"sensorcal/internal/sdr"
)

func TestTransportDeterministicBySeed(t *testing.T) {
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	run := func(seed int64) (outcomes []string, reached int64) {
		served.Store(0)
		tr := NewTransport(nil, seed, Faults{DropBefore: 0.2, DropAfter: 0.1, Err503: 0.1})
		client := &http.Client{Transport: tr}
		for i := 0; i < 100; i++ {
			resp, err := client.Get(srv.URL)
			switch {
			case err != nil:
				outcomes = append(outcomes, "err")
			case resp.StatusCode == http.StatusServiceUnavailable:
				outcomes = append(outcomes, "503")
				resp.Body.Close()
			default:
				outcomes = append(outcomes, "ok")
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		return outcomes, served.Load()
	}

	a, reachedA := run(7)
	b, reachedB := run(7)
	c, _ := run(8)
	if len(a) != len(b) {
		t.Fatalf("runs differ in length")
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if !same || reachedA != reachedB {
		t.Fatalf("same seed produced different fault schedules")
	}
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatalf("different seeds produced identical schedules (suspicious)")
	}
}

func TestTransportRatesRoughlyHonored(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	tr := NewTransport(nil, 1, Faults{DropBefore: 0.3})
	client := &http.Client{Transport: tr}
	fails := 0
	const n = 500
	for i := 0; i < n; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			fails++
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	frac := float64(fails) / n
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("30%% drop rate produced %.0f%% failures", frac*100)
	}
	reqs, injected := tr.Stats()
	if reqs != n || injected != fails {
		t.Fatalf("Stats = (%d, %d), want (%d, %d)", reqs, injected, n, fails)
	}
}

func TestTransportDropAfterReachesServer(t *testing.T) {
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
	}))
	defer srv.Close()
	tr := NewTransport(nil, 3, Faults{DropAfter: 1})
	client := &http.Client{Transport: tr}
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatalf("drop-after should surface an error to the client")
	}
	if served.Load() != 1 {
		t.Fatalf("drop-after request never reached the server")
	}
}

func TestFlakyGroundTruth(t *testing.T) {
	fleet, err := flightsim.NewFleet(time.Unix(0, 0), flightsim.Config{
		Center: geo.Point{Lat: 46.5, Lon: 6.6}, Radius: 50_000, Count: 5, Seed: 1,
	})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	flaky := NewFlakyGroundTruth(fr24.NewService(fleet), 1, 0.5)
	fails, oks := 0, 0
	for i := 0; i < 200; i++ {
		_, err := flaky.Query(time.Unix(60, 0), geo.Point{Lat: 46.5, Lon: 6.6}, 100_000)
		if err != nil {
			fails++
		} else {
			oks++
		}
	}
	if fails == 0 || oks == 0 {
		t.Fatalf("50%% flaky source gave fails=%d oks=%d", fails, oks)
	}
}

func TestFlakyEmission(t *testing.T) {
	dev := sdr.New(sdr.RTLSDR(), 1)
	if err := dev.Tune(100e6); err != nil {
		t.Fatalf("tune: %v", err)
	}
	if err := dev.SetSampleRate(2.4e6); err != nil {
		t.Fatalf("sample rate: %v", err)
	}
	flaky := NewFlakyEmission(silence{}, 2, 1)
	if _, err := dev.Capture(1024, []sdr.Emission{flaky}); err == nil {
		t.Fatalf("always-failing emission should fail the capture")
	}
	ok := NewFlakyEmission(silence{}, 2, 0)
	if _, err := dev.Capture(1024, []sdr.Emission{ok}); err != nil {
		t.Fatalf("never-failing emission broke the capture: %v", err)
	}
}

// silence is an emission that adds nothing.
type silence struct{}

func (silence) RenderInto(*iq.Buffer, func(float64) float64, *rand.Rand) error { return nil }
