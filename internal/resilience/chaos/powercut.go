package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"

	"sensorcal/internal/store"
)

// ErrPowerCut is returned by every operation on a PowerCutFS after the
// simulated machine has lost power. The store layer must treat it like
// any other I/O error: the mutation was not acknowledged.
var ErrPowerCut = errors.New("chaos: power cut")

// errShortWrite is the injected partial write: some prefix of the bytes
// reached the page cache, the rest did not, and the caller got an error.
var errShortWrite = errors.New("chaos: short write")

// errFsync is the injected fsync failure: the kernel refused to promise
// durability; the dirty pages are still dirty.
var errFsync = errors.New("chaos: fsync error")

// PowerCutFS wraps a real store.FS with the failure model of a machine
// whose power can be cut at any byte. It is the proof harness for the
// WAL's durability discipline (internal/store/fs.go):
//
//   - written bytes are buffered in memory (the "page cache") and reach
//     the real filesystem only on Sync — which is also when the WAL
//     acknowledges them;
//   - a crash flushes a random prefix of each open file's unsynced
//     buffer (the torn write) and discards the rest;
//   - files created — and removals and renames performed — since the
//     last directory fsync are rolled back at a crash: a directory
//     entry is just data, and unsynced data does not survive;
//   - ShortWriteRate and FsyncErrorRate inject the two transient error
//     paths (partial write, failed fsync) whose cleanup the WAL's
//     dirty-tail repair exists for;
//   - CrashAfterBytes arms a byte budget: the power dies mid-write once
//     that many bytes have been attempted, after which every operation
//     returns ErrPowerCut.
//
// After a crash the on-disk state is exactly what a reboot would find,
// so a test reopens the directory with the plain OS filesystem and
// asserts recovery.
//
// The model is deliberately pessimistic about visibility: unsynced
// bytes are invisible to OpenRead/Size until Sync, whereas a real page
// cache shows them to readers. The WAL never reads its own unsynced
// bytes (every acknowledged append is fsynced first), so the
// divergence is unobservable — and pessimism here only makes the test
// stricter.
//
// All randomness is drawn from one seeded source under the mutex: the
// same seed replays the same tear schedule.
type PowerCutFS struct {
	// Inner is the real filesystem holding the synced state.
	Inner store.FS
	// ShortWriteRate is the probability a Write persists only a random
	// prefix to the buffer and returns an error.
	ShortWriteRate float64
	// FsyncErrorRate is the probability a Sync (file or directory) fails,
	// leaving the buffer unflushed.
	FsyncErrorRate float64

	mu      sync.Mutex
	rng     *rand.Rand
	crashed bool
	budget  int64 // bytes until auto-crash; <0 disarmed
	armed   bool

	open map[string]*powerFile
	// pendingCreates: created since the last SyncDir of their directory —
	// the entry itself is not durable and vanishes at a crash.
	pendingCreates map[string]struct{}
	// pendingRemoves: removed but not dir-synced — the entry comes back
	// at a crash, with the bytes it had.
	pendingRemoves map[string][]byte
	// pendingRenames: renamed but not dir-synced — reverted at a crash
	// (backup holds an overwritten destination, nil if there was none).
	pendingRenames []pendingRename

	writes  int64 // bytes attempted through Write
	crashes int
}

type pendingRename struct {
	oldpath, newpath string
	backup           []byte // pre-rename contents of newpath, nil if absent
}

// NewPowerCutFS wraps inner with a seeded power-cut model. The crash
// budget starts disarmed; call ArmCrash.
func NewPowerCutFS(inner store.FS, seed int64) *PowerCutFS {
	if inner == nil {
		inner = store.OS{}
	}
	return &PowerCutFS{
		Inner:          inner,
		rng:            rand.New(rand.NewSource(seed)),
		budget:         -1,
		open:           make(map[string]*powerFile),
		pendingCreates: make(map[string]struct{}),
		pendingRemoves: make(map[string][]byte),
	}
}

// ArmCrash sets the byte budget: after n more attempted written bytes,
// the power dies mid-write.
func (p *PowerCutFS) ArmCrash(n int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.budget = n
	p.armed = true
}

// Crashed reports whether the power has been cut.
func (p *PowerCutFS) Crashed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.crashed
}

// Stats reports attempted write bytes and crashes fired.
func (p *PowerCutFS) Stats() (writeBytes int64, crashes int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.writes, p.crashes
}

// Crash cuts the power now: each open file's unsynced buffer is torn at
// a random byte (the prefix reaches disk, the rest never happened), and
// directory operations since the last directory fsync are rolled back.
func (p *PowerCutFS) Crash() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.crashLocked()
}

func (p *PowerCutFS) crashLocked() {
	if p.crashed {
		return
	}
	p.crashed = true
	p.crashes++
	// Tear every open file: a random prefix of its dirty pages lands.
	for _, f := range p.open {
		if len(f.buf) > 0 {
			tear := p.rng.Intn(len(f.buf) + 1)
			if tear > 0 {
				f.real.Write(f.buf[:tear])
			}
			f.buf = nil
		}
		f.real.Close()
		f.dead = true
	}
	// Entries created but never made durable vanish...
	for name := range p.pendingCreates {
		_ = p.Inner.Remove(name)
	}
	// ...removed-but-not-durable entries come back...
	for name, blob := range p.pendingRemoves {
		if f, err := p.Inner.Create(name); err == nil {
			f.Write(blob)
			f.Sync()
			f.Close()
		}
	}
	// ...and non-durable renames revert, newest first.
	for i := len(p.pendingRenames) - 1; i >= 0; i-- {
		r := p.pendingRenames[i]
		_ = p.Inner.Rename(r.newpath, r.oldpath)
		if r.backup != nil {
			if f, err := p.Inner.Create(r.newpath); err == nil {
				f.Write(r.backup)
				f.Sync()
				f.Close()
			}
		}
	}
	p.pendingCreates = make(map[string]struct{})
	p.pendingRemoves = make(map[string][]byte)
	p.pendingRenames = nil
}

// chargeLocked spends write budget and fires the crash when it runs
// out; it returns how many of n bytes were attempted before the lights
// went out.
func (p *PowerCutFS) chargeLocked(n int) (allowed int, cut bool) {
	p.writes += int64(n)
	if !p.armed || p.budget < 0 {
		return n, false
	}
	if int64(n) <= p.budget {
		p.budget -= int64(n)
		return n, false
	}
	allowed = int(p.budget)
	p.budget = -1
	return allowed, true
}

// powerFile is one open file: real handle plus the unsynced buffer.
type powerFile struct {
	p    *PowerCutFS
	name string
	real store.File
	buf  []byte // written but not fsynced
	dead bool   // the crash closed it
}

func (f *powerFile) Write(b []byte) (int, error) {
	p := f.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed || f.dead {
		return 0, ErrPowerCut
	}
	allowed, cut := p.chargeLocked(len(b))
	if cut {
		// The power dies mid-write: a random prefix of what was attempted
		// is in the page cache when it does.
		if allowed > 0 {
			allowed = p.rng.Intn(allowed + 1)
		}
		f.buf = append(f.buf, b[:allowed]...)
		p.crashLocked()
		return allowed, ErrPowerCut
	}
	if p.ShortWriteRate > 0 && p.rng.Float64() < p.ShortWriteRate {
		n := p.rng.Intn(len(b) + 1)
		f.buf = append(f.buf, b[:n]...)
		return n, errShortWrite
	}
	f.buf = append(f.buf, b...)
	return len(b), nil
}

func (f *powerFile) Sync() error {
	p := f.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed || f.dead {
		return ErrPowerCut
	}
	if p.FsyncErrorRate > 0 && p.rng.Float64() < p.FsyncErrorRate {
		return errFsync // pages stay dirty; a later Sync may still flush them
	}
	if len(f.buf) > 0 {
		if _, err := f.real.Write(f.buf); err != nil {
			return err
		}
		f.buf = f.buf[:0]
	}
	return f.real.Sync()
}

func (f *powerFile) Close() error {
	p := f.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if f.dead {
		return nil
	}
	delete(p.open, f.name)
	if p.crashed {
		return nil
	}
	// No crash happened while the pages were dirty, so writeback
	// eventually landed them; flush without promising durability.
	if len(f.buf) > 0 {
		f.real.Write(f.buf)
		f.buf = nil
	}
	return f.real.Close()
}

// --- store.FS ---

func (p *PowerCutFS) OpenRead(name string) (io.ReadCloser, error) {
	p.mu.Lock()
	crashed := p.crashed
	p.mu.Unlock()
	if crashed {
		return nil, ErrPowerCut
	}
	return p.Inner.OpenRead(name)
}

func (p *PowerCutFS) Create(name string) (store.File, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return nil, ErrPowerCut
	}
	real, err := p.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	if _, wasRemoved := p.pendingRemoves[name]; wasRemoved {
		// Remove-then-recreate before any dir sync: the crash outcome is
		// the recreated (possibly torn) file, not the removed one.
		delete(p.pendingRemoves, name)
	}
	p.pendingCreates[name] = struct{}{}
	f := &powerFile{p: p, name: name, real: real}
	p.open[name] = f
	return f, nil
}

func (p *PowerCutFS) OpenAppend(name string) (store.File, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return nil, ErrPowerCut
	}
	real, err := p.Inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	f := &powerFile{p: p, name: name, real: real}
	p.open[name] = f
	return f, nil
}

func (p *PowerCutFS) Remove(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return ErrPowerCut
	}
	if _, created := p.pendingCreates[name]; created {
		// Created and removed inside one non-durable window: the pair
		// cancels; a crash sees neither.
		delete(p.pendingCreates, name)
		return p.Inner.Remove(name)
	}
	blob, err := readAll(p.Inner, name)
	if err != nil {
		return err
	}
	if err := p.Inner.Remove(name); err != nil {
		return err
	}
	p.pendingRemoves[name] = blob
	return nil
}

func (p *PowerCutFS) Rename(oldpath, newpath string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return ErrPowerCut
	}
	var backup []byte
	if _, err := p.Inner.Size(newpath); err == nil {
		if blob, err := readAll(p.Inner, newpath); err == nil {
			backup = blob
		}
	}
	if err := p.Inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	if _, created := p.pendingCreates[oldpath]; created {
		// The source entry was never durable; after the rename it is the
		// destination entry that is not durable.
		delete(p.pendingCreates, oldpath)
		p.pendingCreates[newpath] = struct{}{}
		return nil
	}
	p.pendingRenames = append(p.pendingRenames, pendingRename{oldpath: oldpath, newpath: newpath, backup: backup})
	return nil
}

func (p *PowerCutFS) Truncate(name string, size int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return ErrPowerCut
	}
	if f, ok := p.open[name]; ok {
		// The cut point is at or before the synced length in every WAL
		// repair; buffered bytes sit past it, so they are gone either way.
		f.buf = nil
	}
	return p.Inner.Truncate(name, size)
}

func (p *PowerCutFS) SyncDir(dir string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return ErrPowerCut
	}
	if p.FsyncErrorRate > 0 && p.rng.Float64() < p.FsyncErrorRate {
		return errFsync
	}
	if err := p.Inner.SyncDir(dir); err != nil {
		return err
	}
	// Every directory mutation so far is durable. (One directory in
	// practice — the WAL dir — so no per-dir bookkeeping.)
	p.pendingCreates = make(map[string]struct{})
	p.pendingRemoves = make(map[string][]byte)
	p.pendingRenames = nil
	return nil
}

func (p *PowerCutFS) ReadDir(dir string) ([]string, error) {
	p.mu.Lock()
	crashed := p.crashed
	p.mu.Unlock()
	if crashed {
		return nil, ErrPowerCut
	}
	return p.Inner.ReadDir(dir)
}

func (p *PowerCutFS) MkdirAll(dir string) error {
	p.mu.Lock()
	crashed := p.crashed
	p.mu.Unlock()
	if crashed {
		return ErrPowerCut
	}
	return p.Inner.MkdirAll(dir)
}

func (p *PowerCutFS) Size(name string) (int64, error) {
	p.mu.Lock()
	crashed := p.crashed
	p.mu.Unlock()
	if crashed {
		return 0, ErrPowerCut
	}
	return p.Inner.Size(name)
}

// readAll slurps a file through the wrapped FS (for remove/rename
// rollback snapshots).
func readAll(fs store.FS, name string) ([]byte, error) {
	rc, err := fs.OpenRead(name)
	if err != nil {
		return nil, fmt.Errorf("chaos: snapshotting %s for rollback: %w", name, err)
	}
	defer rc.Close()
	return io.ReadAll(rc)
}
