// Package chaos is the fault-injection harness for the resilience layer:
// deterministic, seeded wrappers that make the network edges of the
// system misbehave on demand. Tests use it to prove the paper's §5
// crowd-sourced deployment story end to end — a campaign run over a 30%
// lossy link must converge to the same trust scores and field-of-view
// report as a clean run.
//
// Everything here is seeded and mutex-guarded: the same seed produces the
// same fault schedule, so a chaos test failure replays exactly.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"sensorcal/internal/fr24"
	"sensorcal/internal/geo"
)

// Faults configures the per-request fault probabilities of a Transport.
// Rates are independent probabilities in [0,1], checked in the field
// order below; at most one fault fires per request.
type Faults struct {
	// DropBefore fails the request before it reaches the server — the
	// classic lost-uplink packet. The server never sees it.
	DropBefore float64
	// DropAfter delivers the request, then loses the response — the case
	// that turns naive retries into duplicates and is exactly what
	// idempotency keys exist for.
	DropAfter float64
	// Err503 returns a synthesized 503 with a Retry-After header without
	// contacting the server (an overloaded proxy).
	Err503 float64
	// Delay stalls the request by a uniform duration in [0, MaxDelay]
	// before sending it (bufferbloat on a home link). The request still
	// goes through.
	Delay float64
	// MaxDelay bounds injected delays; zero means 50 ms.
	MaxDelay time.Duration
}

// errDropped is the injected network failure.
type errDropped struct{ phase string }

func (e errDropped) Error() string { return fmt.Sprintf("chaos: request dropped (%s)", e.phase) }

// Timeout marks the error as a timeout so net-aware retry classifiers
// treat it like a real lost packet.
func (e errDropped) Timeout() bool   { return true }
func (e errDropped) Temporary() bool { return true }

// Transport is a fault-injecting http.RoundTripper. Wrap a client's
// transport with it to put a misbehaving network between the client and
// any server, real or httptest.
type Transport struct {
	// Base performs the real round trips; nil means
	// http.DefaultTransport.
	Base http.RoundTripper
	// Faults is the fault schedule.
	Faults Faults

	mu       sync.Mutex
	rng      *rand.Rand
	requests int
	injected int
}

// NewTransport returns a fault-injecting transport with a deterministic
// schedule drawn from seed.
func NewTransport(base http.RoundTripper, seed int64, f Faults) *Transport {
	if f.MaxDelay <= 0 {
		f.MaxDelay = 50 * time.Millisecond
	}
	return &Transport{Base: base, Faults: f, rng: rand.New(rand.NewSource(seed))}
}

// Stats reports how many requests the transport saw and how many had a
// fault injected.
func (t *Transport) Stats() (requests, injected int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.requests, t.injected
}

// roll draws the fault decision for one request under the lock, keeping
// the schedule deterministic even when requests race.
func (t *Transport) roll() (fault string, delay time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.requests++
	switch f := &t.Faults; {
	case t.rng.Float64() < f.DropBefore:
		fault = "drop-before"
	case t.rng.Float64() < f.DropAfter:
		fault = "drop-after"
	case t.rng.Float64() < f.Err503:
		fault = "503"
	case t.rng.Float64() < f.Delay:
		fault = "delay"
		delay = time.Duration(t.rng.Int63n(int64(f.MaxDelay) + 1))
	}
	if fault != "" {
		t.injected++
	}
	return fault, delay
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	fault, delay := t.roll()
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	switch fault {
	case "drop-before":
		// The body must be consumed per the RoundTripper contract.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, errDropped{phase: "before server"}
	case "drop-after":
		resp, err := base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, errDropped{phase: "response lost"}
	case "503":
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      req.Proto, ProtoMajor: req.ProtoMajor, ProtoMinor: req.ProtoMinor,
			Header:  http.Header{"Retry-After": []string{"1"}},
			Body:    io.NopCloser(bytes.NewReader(nil)),
			Request: req,
		}, nil
	case "delay":
		time.Sleep(delay)
	}
	return base.RoundTrip(req)
}

// FlakyGroundTruth wraps a ground-truth source (fr24.Service or an HTTP
// client adapter) and fails a seeded fraction of queries — the
// FlightRadar24 outage case that graceful degradation in calib handles.
type FlakyGroundTruth struct {
	// Inner answers the queries that are allowed through.
	Inner interface {
		Query(at time.Time, center geo.Point, radius float64) ([]fr24.Flight, error)
	}
	// FailRate is the probability a query fails.
	FailRate float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewFlakyGroundTruth wraps inner with a seeded failure schedule.
func NewFlakyGroundTruth(inner interface {
	Query(at time.Time, center geo.Point, radius float64) ([]fr24.Flight, error)
}, seed int64, failRate float64) *FlakyGroundTruth {
	return &FlakyGroundTruth{Inner: inner, FailRate: failRate, rng: rand.New(rand.NewSource(seed))}
}

// Query implements calib.GroundTruth.
func (f *FlakyGroundTruth) Query(at time.Time, center geo.Point, radius float64) ([]fr24.Flight, error) {
	f.mu.Lock()
	fail := f.rng.Float64() < f.FailRate
	f.mu.Unlock()
	if fail {
		return nil, errDropped{phase: "ground truth"}
	}
	return f.Inner.Query(at, center, radius)
}
