package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sensorcal/internal/clock"
	"sensorcal/internal/obs"
)

// BreakerState is the circuit's position.
type BreakerState int

// The three classic states.
const (
	// Closed: requests flow; consecutive failures are counted.
	Closed BreakerState = iota
	// Open: requests fail fast until the open interval elapses.
	Open
	// HalfOpen: a limited number of probes are let through; success
	// closes the circuit, failure re-opens it.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// ErrOpen is returned by Allow while the circuit is open (and by Do,
// wrapped). Callers treat it as "the dependency is known-down; don't try".
var ErrOpen = errors.New("resilience: circuit open")

// BreakerConfig configures a Breaker.
type BreakerConfig struct {
	// Name labels the breaker's metrics.
	Name string
	// FailureThreshold is how many consecutive failures trip the circuit
	// open. Zero means 5.
	FailureThreshold int
	// OpenFor is how long the circuit stays open before allowing
	// half-open probes. Zero means 30 s.
	OpenFor time.Duration
	// ProbeSuccesses is how many consecutive half-open successes close
	// the circuit again. Zero means 1.
	ProbeSuccesses int
	// ProbeTimeout is how long a half-open probe may stay in flight
	// before its slot is reclaimed — insurance against a caller that
	// never reports back (a panic, a lost Record), which would otherwise
	// wedge the breaker in HalfOpen rejecting everything. Zero means
	// OpenFor.
	ProbeTimeout time.Duration
	// Clock drives the open-interval timing; nil means the wall clock.
	Clock clock.Clock
}

// Breaker is a three-state circuit breaker. It is safe for concurrent
// use. The usual pattern:
//
//	if err := b.Allow(); err != nil { return err }
//	err := doTheCall()
//	b.Record(err)
type Breaker struct {
	cfg BreakerConfig
	clk clock.Clock

	mu        sync.Mutex
	state     BreakerState
	failures  int // consecutive failures while closed
	successes int // consecutive successes while half-open
	probing   int // in-flight half-open probes
	openedAt  time.Time
	probedAt  time.Time // when the in-flight probe was admitted

	m *breakerMetrics
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.OpenFor <= 0 {
		cfg.OpenFor = 30 * time.Second
	}
	if cfg.ProbeSuccesses <= 0 {
		cfg.ProbeSuccesses = 1
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.OpenFor
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System{}
	}
	if cfg.Name == "" {
		cfg.Name = "default"
	}
	return &Breaker{cfg: cfg, clk: clk}
}

// State returns the current state, applying the open→half-open transition
// if the open interval has elapsed.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	return b.state
}

// Allow reports whether a request may proceed. It returns ErrOpen when
// the circuit is open, or when it is half-open and a probe is already in
// flight (one probe at a time keeps a recovering dependency from being
// dogpiled).
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	switch b.state {
	case Open:
		b.m.recordRejected(b.cfg.Name)
		return ErrOpen
	case HalfOpen:
		if b.probing > 0 && b.clk.Now().Sub(b.probedAt) >= b.cfg.ProbeTimeout {
			// The probe's outcome was never reported (panicked caller,
			// missed Record); reclaim the slot rather than reject forever.
			b.probing = 0
		}
		if b.probing > 0 {
			b.m.recordRejected(b.cfg.Name)
			return ErrOpen
		}
		b.probing++
		b.probedAt = b.clk.Now()
	}
	return nil
}

// Record reports the outcome of a request previously admitted by Allow.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if err == nil {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.tripLocked()
		}
	case HalfOpen:
		if b.probing > 0 {
			b.probing--
		}
		if err != nil {
			b.tripLocked()
			return
		}
		b.successes++
		if b.successes >= b.cfg.ProbeSuccesses {
			b.toLocked(Closed)
			b.failures = 0
		}
	case Open:
		// A straggler finishing after the trip; nothing to learn.
	}
}

// AllowCtx is Allow, annotating the span in ctx when the request is
// rejected — a trace of a fast-failed call then says the breaker, not
// the network, produced the error.
func (b *Breaker) AllowCtx(ctx context.Context) error {
	err := b.Allow()
	if err != nil {
		obs.SpanFromContext(ctx).Event("breaker.rejected", "name", b.cfg.Name)
	}
	return err
}

// RecordCtx is Record, annotating the span in ctx when the outcome moved
// the circuit (closed→open on the tripping failure, half-open→closed on
// the healing probe, half-open→open on a failed probe).
func (b *Breaker) RecordCtx(ctx context.Context, err error) {
	before := b.State()
	b.Record(err)
	b.mu.Lock()
	after := b.state
	b.mu.Unlock()
	if before != after {
		obs.SpanFromContext(ctx).Event("breaker.transition",
			"name", b.cfg.Name, "from", before, "to", after)
	}
}

// Cancel releases a probe admitted by Allow without recording an
// outcome. Use it when the caller fails locally before the dependency
// is ever contacted: nothing was learned about its health, so neither
// closing the circuit nor re-opening it would be honest.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen && b.probing > 0 {
		b.probing--
	}
}

// Do combines Allow/Record around fn. A panic in fn is recorded as a
// failure (releasing any half-open probe slot) and re-raised.
func (b *Breaker) Do(fn func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	defer func() {
		if r := recover(); r != nil {
			b.Record(fmt.Errorf("resilience: panic in breaker call: %v", r))
			panic(r)
		}
	}()
	err := fn()
	b.Record(err)
	return err
}

// tripLocked opens the circuit and stamps the interval start.
func (b *Breaker) tripLocked() {
	b.toLocked(Open)
	b.openedAt = b.clk.Now()
	b.successes = 0
	b.probing = 0
}

// maybeHalfOpenLocked moves open→half-open once the interval elapses.
func (b *Breaker) maybeHalfOpenLocked() {
	if b.state == Open && b.clk.Now().Sub(b.openedAt) >= b.cfg.OpenFor {
		b.toLocked(HalfOpen)
		b.successes = 0
		b.probing = 0
	}
}

// toLocked transitions state and updates the gauge.
func (b *Breaker) toLocked(s BreakerState) {
	if b.state == s {
		return
	}
	b.state = s
	b.m.setState(b.cfg.Name, s)
}
