package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sensorcal/internal/clock"
)

// BreakerState is the circuit's position.
type BreakerState int

// The three classic states.
const (
	// Closed: requests flow; consecutive failures are counted.
	Closed BreakerState = iota
	// Open: requests fail fast until the open interval elapses.
	Open
	// HalfOpen: a limited number of probes are let through; success
	// closes the circuit, failure re-opens it.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// ErrOpen is returned by Allow while the circuit is open (and by Do,
// wrapped). Callers treat it as "the dependency is known-down; don't try".
var ErrOpen = errors.New("resilience: circuit open")

// BreakerConfig configures a Breaker.
type BreakerConfig struct {
	// Name labels the breaker's metrics.
	Name string
	// FailureThreshold is how many consecutive failures trip the circuit
	// open. Zero means 5.
	FailureThreshold int
	// OpenFor is how long the circuit stays open before allowing
	// half-open probes. Zero means 30 s.
	OpenFor time.Duration
	// ProbeSuccesses is how many consecutive half-open successes close
	// the circuit again. Zero means 1.
	ProbeSuccesses int
	// Clock drives the open-interval timing; nil means the wall clock.
	Clock clock.Clock
}

// Breaker is a three-state circuit breaker. It is safe for concurrent
// use. The usual pattern:
//
//	if err := b.Allow(); err != nil { return err }
//	err := doTheCall()
//	b.Record(err)
type Breaker struct {
	cfg BreakerConfig
	clk clock.Clock

	mu        sync.Mutex
	state     BreakerState
	failures  int // consecutive failures while closed
	successes int // consecutive successes while half-open
	probing   int // in-flight half-open probes
	openedAt  time.Time

	m *breakerMetrics
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.OpenFor <= 0 {
		cfg.OpenFor = 30 * time.Second
	}
	if cfg.ProbeSuccesses <= 0 {
		cfg.ProbeSuccesses = 1
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System{}
	}
	if cfg.Name == "" {
		cfg.Name = "default"
	}
	return &Breaker{cfg: cfg, clk: clk}
}

// State returns the current state, applying the open→half-open transition
// if the open interval has elapsed.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	return b.state
}

// Allow reports whether a request may proceed. It returns ErrOpen when
// the circuit is open, or when it is half-open and a probe is already in
// flight (one probe at a time keeps a recovering dependency from being
// dogpiled).
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	switch b.state {
	case Open:
		b.m.recordRejected(b.cfg.Name)
		return ErrOpen
	case HalfOpen:
		if b.probing > 0 {
			b.m.recordRejected(b.cfg.Name)
			return ErrOpen
		}
		b.probing++
	}
	return nil
}

// Record reports the outcome of a request previously admitted by Allow.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if err == nil {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.tripLocked()
		}
	case HalfOpen:
		if b.probing > 0 {
			b.probing--
		}
		if err != nil {
			b.tripLocked()
			return
		}
		b.successes++
		if b.successes >= b.cfg.ProbeSuccesses {
			b.toLocked(Closed)
			b.failures = 0
		}
	case Open:
		// A straggler finishing after the trip; nothing to learn.
	}
}

// Do combines Allow/Record around fn.
func (b *Breaker) Do(fn func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := fn()
	b.Record(err)
	return err
}

// tripLocked opens the circuit and stamps the interval start.
func (b *Breaker) tripLocked() {
	b.toLocked(Open)
	b.openedAt = b.clk.Now()
	b.successes = 0
	b.probing = 0
}

// maybeHalfOpenLocked moves open→half-open once the interval elapses.
func (b *Breaker) maybeHalfOpenLocked() {
	if b.state == Open && b.clk.Now().Sub(b.openedAt) >= b.cfg.OpenFor {
		b.toLocked(HalfOpen)
		b.successes = 0
		b.probing = 0
	}
}

// toLocked transitions state and updates the gauge.
func (b *Breaker) toLocked(s BreakerState) {
	if b.state == s {
		return
	}
	b.state = s
	b.m.setState(b.cfg.Name, s)
}
