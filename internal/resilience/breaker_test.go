package resilience

import (
	"errors"
	"testing"
	"time"

	"sensorcal/internal/clock"
	"sensorcal/internal/obs"
)

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	sim := clock.NewSimulated(time.Unix(0, 0))
	b := NewBreaker(BreakerConfig{Name: "c", FailureThreshold: 3, OpenFor: time.Minute, Clock: sim}).
		Instrument(obs.NewRegistry())
	down := errors.New("down")
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow before trip: %v", err)
		}
		b.Record(down)
	}
	if got := b.State(); got != Open {
		t.Fatalf("state = %v, want open", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow while open = %v, want ErrOpen", err)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3})
	down := errors.New("down")
	b.Record(down)
	b.Record(down)
	b.Record(nil) // resets the streak
	b.Record(down)
	b.Record(down)
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want closed (streak was reset)", got)
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	sim := clock.NewSimulated(time.Unix(0, 0))
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: time.Minute, ProbeSuccesses: 2, Clock: sim})
	b.Record(errors.New("down"))
	if b.State() != Open {
		t.Fatalf("breaker should be open")
	}
	sim.Advance(time.Minute)
	if b.State() != HalfOpen {
		t.Fatalf("breaker should be half-open after the interval")
	}
	// Only one probe at a time.
	if err := b.Allow(); err != nil {
		t.Fatalf("first probe refused: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second concurrent probe admitted")
	}
	b.Record(nil)
	if b.State() != HalfOpen {
		t.Fatalf("one success should not close a 2-probe breaker")
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("breaker should close after %d probe successes", 2)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	sim := clock.NewSimulated(time.Unix(0, 0))
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: time.Minute, Clock: sim})
	b.Record(errors.New("down"))
	sim.Advance(time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	b.Record(errors.New("still down"))
	if b.State() != Open {
		t.Fatalf("failed probe should re-open the circuit")
	}
	// And the interval restarts: still open just before it elapses.
	sim.Advance(time.Minute - time.Second)
	if b.State() != Open {
		t.Fatalf("interval did not restart on re-open")
	}
	sim.Advance(time.Second)
	if b.State() != HalfOpen {
		t.Fatalf("breaker should probe again after the restarted interval")
	}
}

func TestBreakerDo(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: time.Hour})
	down := errors.New("down")
	if err := b.Do(func() error { return down }); !errors.Is(err, down) {
		t.Fatalf("Do = %v, want the fn error", err)
	}
	if err := b.Do(func() error { return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("Do while open = %v, want ErrOpen", err)
	}
}

// TestBreakerDoPanicReleasesProbe: a panic inside Do must count as a
// failure and release the half-open probe slot, not leave `probing`
// stuck at 1 rejecting every future request.
func TestBreakerDoPanicReleasesProbe(t *testing.T) {
	sim := clock.NewSimulated(time.Unix(0, 0))
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: time.Minute, Clock: sim})
	b.Record(errors.New("down"))
	sim.Advance(time.Minute) // open → half-open

	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("Do swallowed the panic")
			}
		}()
		b.Do(func() error { panic("boom") })
	}()
	if b.State() != Open {
		t.Fatalf("state after panicking probe = %v, want open (panic is a failure)", b.State())
	}
	// The probe slot was released: after the interval, a new probe runs.
	sim.Advance(time.Minute)
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("probe after panic recovery: %v", err)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

// TestBreakerStaleProbeExpires: a half-open probe whose caller never
// reports back must not wedge the breaker — the slot is reclaimed after
// ProbeTimeout.
func TestBreakerStaleProbeExpires(t *testing.T) {
	sim := clock.NewSimulated(time.Unix(0, 0))
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1, OpenFor: time.Minute, ProbeTimeout: 30 * time.Second, Clock: sim,
	})
	b.Record(errors.New("down"))
	sim.Advance(time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	// The probe's Record never arrives. Before the timeout: rejected.
	sim.Advance(29 * time.Second)
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow before probe timeout = %v, want ErrOpen", err)
	}
	// After the timeout the lost probe's slot is reclaimed.
	sim.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow after probe timeout = %v, want admitted", err)
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

// TestBreakerCancelReleasesProbe: Cancel frees the probe slot without
// counting a success or failure — the dependency was never contacted.
func TestBreakerCancelReleasesProbe(t *testing.T) {
	sim := clock.NewSimulated(time.Unix(0, 0))
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: time.Minute, Clock: sim})
	b.Record(errors.New("down"))
	sim.Advance(time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	b.Cancel()
	if b.State() != HalfOpen {
		t.Fatalf("Cancel changed state to %v, want half-open (no outcome learned)", b.State())
	}
	// The slot is free again immediately.
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow after Cancel = %v, want admitted", err)
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}
