package resilience

import (
	"sensorcal/internal/obs"
)

// Instrumentation. As elsewhere in the codebase, metrics are opt-in:
// a Retrier/Breaker/Spool records nothing until Instrument is called, and
// every record method tolerates a nil receiver so library users and most
// tests pay a single nil check.

type retrierMetrics struct {
	attempts *obs.CounterVec // op
	retries  *obs.CounterVec // op
	giveups  *obs.CounterVec // op
}

// Instrument registers the retrier's metrics on reg (the process-wide
// default when nil) and returns r for chaining.
//
// Exposed series:
//
//	resilience_attempts_total{op} — individual attempts started
//	resilience_retries_total{op}  — backoff sleeps taken (attempts − firsts − giveups)
//	resilience_giveups_total{op}  — operations abandoned (exhausted, permanent error, budget)
func (r *Retrier) Instrument(reg *obs.Registry) *Retrier {
	if reg == nil {
		reg = obs.Default()
	}
	// Atomic store: Instrument may run while another goroutine is inside
	// Do (the race detector flagged the previous plain write).
	r.m.Store(&retrierMetrics{
		attempts: reg.CounterVec("resilience_attempts_total",
			"Individual attempts started under a retry policy, by operation.", "op"),
		retries: reg.CounterVec("resilience_retries_total",
			"Retries taken after a failed attempt, by operation.", "op"),
		giveups: reg.CounterVec("resilience_giveups_total",
			"Operations abandoned after exhausting the retry policy, by operation.", "op"),
	})
	return r
}

func (m *retrierMetrics) recordAttempt(op string) {
	if m == nil {
		return
	}
	m.attempts.With(op).Inc()
}

func (m *retrierMetrics) recordRetry(op string) {
	if m == nil {
		return
	}
	m.retries.With(op).Inc()
}

func (m *retrierMetrics) recordGiveUp(op string) {
	if m == nil {
		return
	}
	m.giveups.With(op).Inc()
}

type breakerMetrics struct {
	state    *obs.GaugeVec   // name
	rejected *obs.CounterVec // name
}

// Instrument registers the breaker's metrics on reg (the process-wide
// default when nil) and returns b for chaining.
//
// Exposed series:
//
//	resilience_breaker_state{name}          — 0 closed, 1 open, 2 half-open
//	resilience_breaker_rejected_total{name} — requests failed fast by the open circuit
func (b *Breaker) Instrument(reg *obs.Registry) *Breaker {
	if reg == nil {
		reg = obs.Default()
	}
	// b.m and b.state are guarded by b.mu everywhere else (Allow, Record,
	// setState); writing them unlocked here raced with in-flight calls.
	m := &breakerMetrics{
		state: reg.GaugeVec("resilience_breaker_state",
			"Circuit breaker position: 0 closed, 1 open, 2 half-open.", "name"),
		rejected: reg.CounterVec("resilience_breaker_rejected_total",
			"Requests rejected fast while the circuit was open.", "name"),
	}
	b.mu.Lock()
	b.m = m
	m.setState(b.cfg.Name, b.state)
	b.mu.Unlock()
	return b
}

// stateValue maps states to stable gauge values (documented above).
func stateValue(s BreakerState) float64 {
	switch s {
	case Open:
		return 1
	case HalfOpen:
		return 2
	default:
		return 0
	}
}

func (m *breakerMetrics) setState(name string, s BreakerState) {
	if m == nil {
		return
	}
	m.state.With(name).Set(stateValue(s))
}

func (m *breakerMetrics) recordRejected(name string) {
	if m == nil {
		return
	}
	m.rejected.With(name).Inc()
}

type spoolMetrics struct {
	depth    *obs.GaugeVec   // name
	appends  *obs.CounterVec // name
	acks     *obs.CounterVec // name
	replayed *obs.CounterVec // name
	dropped  *obs.CounterVec // name
}

// Instrument registers the spool's metrics on reg (the process-wide
// default when nil) and returns s for chaining.
//
// Exposed series:
//
//	resilience_spool_depth{name}          — records appended but not yet acked
//	resilience_spool_appends_total{name}  — records durably appended
//	resilience_spool_acks_total{name}     — records acknowledged (drained)
//	resilience_spool_replayed_total{name} — records recovered from the WAL at open
//	resilience_spool_dropped_total{name}  — corrupt/truncated WAL lines discarded at open
func (s *Spool) Instrument(reg *obs.Registry) *Spool {
	if reg == nil {
		reg = obs.Default()
	}
	// s.m is read under s.mu by every record path; the depth snapshot
	// reads len(s.pending) directly (s.Len() would self-deadlock here).
	m := &spoolMetrics{
		depth: reg.GaugeVec("resilience_spool_depth",
			"Store-and-forward records awaiting acknowledgement.", "name"),
		appends: reg.CounterVec("resilience_spool_appends_total",
			"Records durably appended to the spool WAL.", "name"),
		acks: reg.CounterVec("resilience_spool_acks_total",
			"Spool records acknowledged after successful delivery.", "name"),
		replayed: reg.CounterVec("resilience_spool_replayed_total",
			"Unacked records recovered from the WAL at open.", "name"),
		dropped: reg.CounterVec("resilience_spool_dropped_total",
			"Corrupt or truncated WAL lines discarded during recovery.", "name"),
	}
	s.mu.Lock()
	s.m = m
	m.setDepth(s.name, len(s.pending))
	s.mu.Unlock()
	return s
}

func (m *spoolMetrics) setDepth(name string, n int) {
	if m == nil {
		return
	}
	m.depth.With(name).Set(float64(n))
}

func (m *spoolMetrics) addAppends(name string, n int) {
	if m == nil {
		return
	}
	m.appends.With(name).Add(float64(n))
}

func (m *spoolMetrics) addAcks(name string, n int) {
	if m == nil {
		return
	}
	m.acks.With(name).Add(float64(n))
}

func (m *spoolMetrics) addReplayed(name string, n int) {
	if m == nil {
		return
	}
	m.replayed.With(name).Add(float64(n))
}

func (m *spoolMetrics) addDropped(name string, n int) {
	if m == nil {
		return
	}
	m.dropped.With(name).Add(float64(n))
}
