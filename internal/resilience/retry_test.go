package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sensorcal/internal/clock"
	"sensorcal/internal/obs"
)

// driveClock advances a simulated clock in small steps from a goroutine
// until stop is closed, unblocking backoff sleeps.
func driveClock(sim *clock.Simulated, step time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				sim.Advance(step)
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

func TestRetrierSucceedsAfterFailures(t *testing.T) {
	sim := clock.NewSimulated(time.Unix(0, 0))
	stop := driveClock(sim, time.Second)
	defer stop()
	r := NewRetrier(Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, Seed: 1, Clock: sim}).
		Instrument(obs.NewRegistry())
	calls := 0
	err := r.Do(context.Background(), "op", func(context.Context) error {
		calls++
		if calls < 3 {
			return fmt.Errorf("transient %d", calls)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestRetrierExhaustsAttempts(t *testing.T) {
	sim := clock.NewSimulated(time.Unix(0, 0))
	stop := driveClock(sim, time.Second)
	defer stop()
	r := NewRetrier(Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1, Clock: sim})
	calls := 0
	sentinel := errors.New("still down")
	err := r.Do(context.Background(), "op", func(context.Context) error {
		calls++
		return sentinel
	})
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestRetrierPermanentErrorStopsImmediately(t *testing.T) {
	r := NewRetrier(Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 1})
	calls := 0
	sentinel := errors.New("bad request")
	err := r.Do(context.Background(), "op", func(context.Context) error {
		calls++
		return Permanent(sentinel)
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if !IsPermanent(err) {
		t.Fatalf("err should carry the permanent marker")
	}
}

func TestRetrierRetryableClassifier(t *testing.T) {
	r := NewRetrier(Policy{
		MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 1,
		Retryable: func(err error) bool { return false },
	})
	calls := 0
	err := r.Do(context.Background(), "op", func(context.Context) error {
		calls++
		return errors.New("nope")
	})
	if calls != 1 || err == nil {
		t.Fatalf("calls = %d err = %v, want 1 attempt and an error", calls, err)
	}
}

func TestRetrierBudgetCap(t *testing.T) {
	sim := clock.NewSimulated(time.Unix(0, 0))
	// Attempts consume simulated time via the clock-driving goroutine;
	// with a 1 s budget and ≥1 s backoff ceiling the second sleep cannot
	// fit.
	stop := driveClock(sim, 500*time.Millisecond)
	defer stop()
	r := NewRetrier(Policy{
		MaxAttempts: 100,
		BaseDelay:   time.Second,
		MaxDelay:    time.Second,
		Budget:      time.Second,
		Seed:        1,
		Clock:       sim,
	})
	calls := 0
	err := r.Do(context.Background(), "op", func(context.Context) error {
		calls++
		return errors.New("down")
	})
	if err == nil {
		t.Fatalf("want budget-exhausted error")
	}
	if calls >= 100 {
		t.Fatalf("budget did not bound attempts (calls = %d)", calls)
	}
}

func TestRetrierContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := NewRetrier(Policy{MaxAttempts: 50, BaseDelay: time.Hour, MaxDelay: time.Hour, Seed: 1})
	errc := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		errc <- r.Do(ctx, "op", func(context.Context) error {
			select {
			case <-started:
			default:
				close(started)
			}
			return errors.New("down")
		})
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Do did not return after cancel")
	}
}

func TestRetrierDeadlineAwareness(t *testing.T) {
	// Backoff would be up to 1 h; the context expires in 10 ms. The
	// retrier must return the attempt error promptly instead of sleeping
	// into the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	r := NewRetrier(Policy{MaxAttempts: 5, BaseDelay: time.Hour, MaxDelay: time.Hour, Seed: 1})
	sentinel := errors.New("down")
	start := time.Now()
	err := r.Do(ctx, "op", func(context.Context) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped attempt error", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("retrier slept into the deadline")
	}
}

func TestRetrierPerAttemptTimeout(t *testing.T) {
	r := NewRetrier(Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, PerAttempt: 20 * time.Millisecond, Seed: 1})
	var sawDeadline bool
	_ = r.Do(context.Background(), "op", func(ctx context.Context) error {
		select {
		case <-ctx.Done():
			sawDeadline = true
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return nil
		}
	})
	if !sawDeadline {
		t.Fatalf("per-attempt context never expired")
	}
}

func TestRetrierBackoffCeilingGrows(t *testing.T) {
	r := NewRetrier(Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Seed: 42})
	// Full jitter: each delay is uniform in [0, ceil(attempt)]. Check the
	// ceiling sequence by sampling many draws.
	for attempt, wantCeil := range []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	} {
		max := time.Duration(0)
		for i := 0; i < 200; i++ {
			d := r.backoff(attempt)
			if d > max {
				max = d
			}
			if d > wantCeil {
				t.Fatalf("attempt %d: delay %v above ceiling %v", attempt, d, wantCeil)
			}
		}
		if max < wantCeil/4 {
			t.Fatalf("attempt %d: max sampled delay %v suspiciously far below ceiling %v", attempt, max, wantCeil)
		}
	}
}
