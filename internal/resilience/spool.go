package resilience

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Store-and-forward spool: a durable JSONL write-ahead log that sits
// between a producer (the agent's measurement loop) and an unreliable
// consumer (the HTTP path to the collector). Records are appended with an
// idempotency key and fsynced before Append returns; a drainer reads
// batches with Peek and removes them with Ack once the remote end has
// acknowledged them. Both operations are WAL entries, so a crash at any
// byte offset loses at most the entry being written: recovery discards a
// truncated tail line and replays everything before it.
//
// WAL grammar (one JSON object per line):
//
//	{"op":"put","key":"...","payload":{...}}
//	{"op":"ack","keys":["...","..."]}

// Record is one spooled payload.
type Record struct {
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
}

// walEntry is the on-disk line format.
type walEntry struct {
	Op      string          `json:"op"`
	Key     string          `json:"key,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Keys    []string        `json:"keys,omitempty"`
}

// compactAfterAcks is how many acked WAL lines accumulate before Ack
// rewrites the log down to its live records.
const compactAfterAcks = 512

// Spool is a durable FIFO of keyed records. It is safe for concurrent
// use: producers Append while a drainer goroutine Peeks and Acks.
type Spool struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	name    string
	pending []Record            // FIFO of unacked records
	index   map[string]struct{} // pending keys
	acked   int                 // ack entries written since last compact

	m *spoolMetrics
}

// OpenSpool opens (or creates) the WAL at path and replays it. Truncated
// or corrupt trailing lines are discarded — the file is truncated back to
// the last fully parseable entry, exactly the state before the interrupted
// write.
func OpenSpool(path string) (*Spool, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("resilience: spool dir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resilience: opening spool: %w", err)
	}
	s := &Spool{
		f:     f,
		path:  path,
		name:  filepath.Base(path),
		index: make(map[string]struct{}),
	}
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// replay scans the WAL, rebuilds the pending set, and truncates any
// unparseable tail. Byte offsets are derived from the bytes actually
// read (not len(line)+1), so a final line that parses but lost its
// trailing newline — a torn write cut exactly at the delimiter — cannot
// push the append offset past EOF; that line is kept and its missing
// newline is written back before any new entry is appended.
func (s *Spool) replay() error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("resilience: spool seek: %w", err)
	}
	var (
		good      int64 // byte offset after the last good line
		dropped   int
		missingNL bool // last good line reached EOF without a '\n'
	)
	rd := bufio.NewReaderSize(s.f, 64*1024)
	for {
		line, rerr := rd.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return fmt.Errorf("resilience: spool scan: %w", rerr)
		}
		if len(line) > 0 {
			trimmed := bytes.TrimRight(line, "\r\n")
			var e walEntry
			if len(trimmed) == 0 || json.Unmarshal(trimmed, &e) != nil {
				// A torn write: everything from here on is the interrupted
				// tail. (A corrupt middle line would also land here; spools
				// are single-writer append-only, so mid-file corruption means
				// the tail after it is unordered noise anyway.)
				dropped++
				break
			}
			good += int64(len(line))
			missingNL = rerr == io.EOF
			switch e.Op {
			case "put":
				s.putLocked(Record{Key: e.Key, Payload: e.Payload})
			case "ack":
				for _, k := range e.Keys {
					s.removeLocked(k)
				}
				s.acked++
			default:
				// Unknown ops are skipped but their bytes are kept: a newer
				// version's entries must survive a rollback.
			}
		}
		if rerr == io.EOF {
			break
		}
	}
	st, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("resilience: spool stat: %w", err)
	}
	if good < st.Size() {
		// The file does not end on a good line boundary (torn final
		// write). Truncate back to clean state.
		if err := s.f.Truncate(good); err != nil {
			return fmt.Errorf("resilience: truncating torn spool tail: %w", err)
		}
		if dropped == 0 {
			dropped = 1
		}
	}
	if _, err := s.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("resilience: spool seek: %w", err)
	}
	if missingNL {
		// The final line is complete JSON but its newline never hit disk;
		// restore the delimiter so the next Append starts a fresh line.
		if _, err := s.f.Write([]byte{'\n'}); err != nil {
			return fmt.Errorf("resilience: repairing spool delimiter: %w", err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("resilience: syncing spool: %w", err)
		}
	}
	s.m.addReplayed(s.name, len(s.pending))
	s.m.addDropped(s.name, dropped)
	return nil
}

// putLocked adds a record to the pending set unless its key is already
// there (duplicate appends are idempotent).
func (s *Spool) putLocked(r Record) {
	if _, ok := s.index[r.Key]; ok {
		return
	}
	s.index[r.Key] = struct{}{}
	s.pending = append(s.pending, r)
}

// removeLocked drops a key from the pending set, preserving FIFO order.
func (s *Spool) removeLocked(key string) {
	if _, ok := s.index[key]; !ok {
		return
	}
	delete(s.index, key)
	for i, r := range s.pending {
		if r.Key == key {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			break
		}
	}
}

// Append durably stores payload under key. The entry is fsynced before
// Append returns: once the producer sees nil, a crash cannot lose the
// record. Appending an already-pending key is a no-op (nil error), which
// makes producer retries harmless.
func (s *Spool) Append(key string, payload interface{}) error {
	if key == "" {
		return fmt.Errorf("resilience: spool record needs a key")
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("resilience: marshaling spool payload: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("resilience: spool is closed")
	}
	if _, ok := s.index[key]; ok {
		return nil
	}
	if err := s.writeLocked(walEntry{Op: "put", Key: key, Payload: raw}); err != nil {
		return err
	}
	s.putLocked(Record{Key: key, Payload: raw})
	s.m.addAppends(s.name, 1)
	s.m.setDepth(s.name, len(s.pending))
	return nil
}

// Peek returns up to max pending records in arrival order (all of them
// when max <= 0). The returned slice is a copy; records stay pending
// until Ack.
func (s *Spool) Peek(max int) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.pending)
	if max > 0 && max < n {
		n = max
	}
	out := make([]Record, n)
	copy(out, s.pending[:n])
	return out
}

// Ack durably marks keys as delivered; they will not replay after a
// restart. Unknown keys are ignored (acking an already-acked batch is
// idempotent).
func (s *Spool) Ack(keys ...string) error {
	if len(keys) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("resilience: spool is closed")
	}
	live := keys[:0:0]
	for _, k := range keys {
		if _, ok := s.index[k]; ok {
			live = append(live, k)
		}
	}
	if len(live) == 0 {
		return nil
	}
	if err := s.writeLocked(walEntry{Op: "ack", Keys: live}); err != nil {
		return err
	}
	for _, k := range live {
		s.removeLocked(k)
	}
	s.acked++
	s.m.addAcks(s.name, len(live))
	s.m.setDepth(s.name, len(s.pending))
	if s.acked >= compactAfterAcks {
		// Best-effort: a failed compaction leaves the (valid, longer) WAL
		// in place and the next Ack tries again.
		if err := s.compactLocked(); err == nil {
			s.acked = 0
		}
	}
	return nil
}

// writeLocked appends one WAL line and fsyncs.
func (s *Spool) writeLocked(e walEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("resilience: marshaling WAL entry: %w", err)
	}
	line = append(line, '\n')
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("resilience: appending to spool: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("resilience: syncing spool: %w", err)
	}
	return nil
}

// Compact rewrites the WAL down to its live records, reclaiming the space
// of acked entries.
func (s *Spool) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("resilience: spool is closed")
	}
	if err := s.compactLocked(); err != nil {
		return err
	}
	s.acked = 0
	return nil
}

// compactLocked writes pending records to a temp file and renames it over
// the WAL (the same atomic-save shape spectrumd uses for the ledger).
func (s *Spool) compactLocked() error {
	tmp := s.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("resilience: compacting spool: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, r := range s.pending {
		line, err := json.Marshal(walEntry{Op: "put", Key: r.Key, Payload: r.Payload})
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("resilience: compacting spool: %w", err)
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("resilience: compacting spool: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("resilience: compacting spool: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("resilience: compacting spool: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("resilience: compacting spool: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("resilience: compacting spool: %w", err)
	}
	old := s.f
	nf, err := os.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		// The rename succeeded but we lost our handle; the spool is
		// unusable until reopened.
		s.f = nil
		old.Close()
		return fmt.Errorf("resilience: reopening compacted spool: %w", err)
	}
	s.f = nf
	old.Close()
	return nil
}

// Len returns the number of pending (unacked) records.
func (s *Spool) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Path returns the WAL location.
func (s *Spool) Path() string { return s.path }

// Close releases the WAL file handle. Pending records stay on disk and
// replay at the next OpenSpool.
func (s *Spool) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
