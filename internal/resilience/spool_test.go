package resilience

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"sensorcal/internal/obs"
)

type testPayload struct {
	N int `json:"n"`
}

func mustAppend(t *testing.T, s *Spool, key string, n int) {
	t.Helper()
	if err := s.Append(key, testPayload{N: n}); err != nil {
		t.Fatalf("Append(%s): %v", key, err)
	}
}

func TestSpoolAppendPeekAck(t *testing.T) {
	s, err := OpenSpool(filepath.Join(t.TempDir(), "spool.jsonl"))
	if err != nil {
		t.Fatalf("OpenSpool: %v", err)
	}
	defer s.Close()
	s.Instrument(obs.NewRegistry())
	for i := 0; i < 5; i++ {
		mustAppend(t, s, fmt.Sprintf("k%d", i), i)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	batch := s.Peek(3)
	if len(batch) != 3 || batch[0].Key != "k0" || batch[2].Key != "k2" {
		t.Fatalf("Peek(3) = %+v, want k0..k2 in order", batch)
	}
	if err := s.Ack("k0", "k1", "k2"); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len after ack = %d, want 2", s.Len())
	}
	if rest := s.Peek(0); len(rest) != 2 || rest[0].Key != "k3" {
		t.Fatalf("Peek after ack = %+v, want k3,k4", rest)
	}
}

func TestSpoolReplayAfterReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spool.jsonl")
	s, err := OpenSpool(path)
	if err != nil {
		t.Fatalf("OpenSpool: %v", err)
	}
	for i := 0; i < 4; i++ {
		mustAppend(t, s, fmt.Sprintf("k%d", i), i)
	}
	if err := s.Ack("k1"); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	s.Close()

	s2, err := OpenSpool(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got := s2.Peek(0)
	want := []string{"k0", "k2", "k3"}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d (%+v)", len(got), len(want), got)
	}
	for i, k := range want {
		if got[i].Key != k {
			t.Fatalf("replay[%d] = %s, want %s", i, got[i].Key, k)
		}
		var p testPayload
		if err := json.Unmarshal(got[i].Payload, &p); err != nil {
			t.Fatalf("payload: %v", err)
		}
	}
}

// TestSpoolCrashMidAppendRecovery simulates a crash partway through a WAL
// write: the truncated last line must be discarded and every earlier
// record must replay.
func TestSpoolCrashMidAppendRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spool.jsonl")
	s, err := OpenSpool(path)
	if err != nil {
		t.Fatalf("OpenSpool: %v", err)
	}
	mustAppend(t, s, "k0", 0)
	mustAppend(t, s, "k1", 1)
	s.Close()

	// Crash mid-append: a torn half-record at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open for tear: %v", err)
	}
	if _, err := f.WriteString(`{"op":"put","key":"k2","payl`); err != nil {
		t.Fatalf("tear: %v", err)
	}
	f.Close()

	s2, err := OpenSpool(path)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	got := s2.Peek(0)
	if len(got) != 2 || got[0].Key != "k0" || got[1].Key != "k1" {
		t.Fatalf("recovered %+v, want k0,k1", got)
	}
	// The WAL must be usable after recovery: append and reopen again.
	mustAppend(t, s2, "k2", 2)
	s2.Close()
	s3, err := OpenSpool(path)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer s3.Close()
	if got := s3.Peek(0); len(got) != 3 || got[2].Key != "k2" {
		t.Fatalf("after post-recovery append: %+v, want k0,k1,k2", got)
	}
}

// TestSpoolReplayMissingTrailingNewline: a torn write cut exactly at the
// newline leaves a final line that is complete JSON with no delimiter.
// Replay must keep that record, repair the delimiter, and leave the
// append offset at true EOF — not one byte past it, which would bury the
// next append behind a NUL hole and silently lose it on the reopen after.
func TestSpoolReplayMissingTrailingNewline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spool.jsonl")
	if err := os.WriteFile(path, []byte(`{"op":"put","key":"k0","payload":{"n":0}}`), 0o644); err != nil {
		t.Fatalf("seed: %v", err)
	}
	s, err := OpenSpool(path)
	if err != nil {
		t.Fatalf("OpenSpool: %v", err)
	}
	if got := s.Peek(0); len(got) != 1 || got[0].Key != "k0" {
		t.Fatalf("replayed %+v, want k0", got)
	}
	mustAppend(t, s, "k1", 1)
	s.Close()

	s2, err := OpenSpool(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if got := s2.Peek(0); len(got) != 2 || got[0].Key != "k0" || got[1].Key != "k1" {
		t.Fatalf("after reopen: %+v, want k0,k1", got)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read WAL: %v", err)
	}
	if i := bytes.IndexByte(raw, 0); i >= 0 {
		t.Fatalf("WAL contains a NUL hole at offset %d", i)
	}
}

// TestSpoolAckedBatchDedup: re-acking an already-acked batch and
// re-appending an already-pending key are both no-ops — the exact
// semantics a retried network drain relies on.
func TestSpoolAckedBatchDedup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spool.jsonl")
	s, err := OpenSpool(path)
	if err != nil {
		t.Fatalf("OpenSpool: %v", err)
	}
	mustAppend(t, s, "k0", 0)
	mustAppend(t, s, "k0", 99) // duplicate append ignored
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after duplicate append", s.Len())
	}
	var p testPayload
	if err := json.Unmarshal(s.Peek(1)[0].Payload, &p); err != nil || p.N != 0 {
		t.Fatalf("duplicate append overwrote payload: %+v err %v", p, err)
	}
	if err := s.Ack("k0"); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	if err := s.Ack("k0"); err != nil { // already-acked batch retried
		t.Fatalf("re-Ack: %v", err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	s.Close()
	s2, err := OpenSpool(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 0 {
		t.Fatalf("acked record replayed after reopen")
	}
}

// TestSpoolDrainWhileAppend exercises the concurrent producer/drainer
// pattern under the race detector.
func TestSpoolDrainWhileAppend(t *testing.T) {
	s, err := OpenSpool(filepath.Join(t.TempDir(), "spool.jsonl"))
	if err != nil {
		t.Fatalf("OpenSpool: %v", err)
	}
	defer s.Close()
	const total = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // producer
		defer wg.Done()
		for i := 0; i < total; i++ {
			if err := s.Append(fmt.Sprintf("k%d", i), testPayload{N: i}); err != nil {
				t.Errorf("Append: %v", err)
				return
			}
		}
	}()
	drained := make(map[string]bool)
	for len(drained) < total {
		batch := s.Peek(16)
		if len(batch) == 0 {
			continue
		}
		keys := make([]string, len(batch))
		for i, r := range batch {
			if drained[r.Key] {
				t.Fatalf("record %s drained twice", r.Key)
			}
			drained[r.Key] = true
			keys[i] = r.Key
		}
		if err := s.Ack(keys...); err != nil {
			t.Fatalf("Ack: %v", err)
		}
	}
	wg.Wait()
	if s.Len() != 0 {
		t.Fatalf("spool not empty after full drain: %d", s.Len())
	}
}

func TestSpoolCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spool.jsonl")
	s, err := OpenSpool(path)
	if err != nil {
		t.Fatalf("OpenSpool: %v", err)
	}
	for i := 0; i < 50; i++ {
		mustAppend(t, s, fmt.Sprintf("k%d", i), i)
	}
	for i := 0; i < 40; i++ {
		if err := s.Ack(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatalf("Ack: %v", err)
		}
	}
	before, _ := os.Stat(path)
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compact did not shrink the WAL (%d → %d bytes)", before.Size(), after.Size())
	}
	// Post-compact appends and replay still work.
	mustAppend(t, s, "fresh", 1)
	s.Close()
	s2, err := OpenSpool(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 11 {
		t.Fatalf("replay after compact = %d records, want 11", got)
	}
}
