package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesEveryUnitOnce(t *testing.T) {
	e := New(Config{Workers: 4})
	var counts [100]atomic.Int32
	if err := e.Run(context.Background(), len(counts), func(_ context.Context, i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("unit %d ran %d times", i, got)
		}
	}
}

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := New(Config{}).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("workers = %d, want %d", got, want)
	}
	if got := New(Config{Workers: 3}).Workers(); got != 3 {
		t.Fatalf("workers = %d, want 3", got)
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	e := New(Config{Workers: workers})
	var cur, peak atomic.Int32
	err := e.Run(context.Background(), 50, func(_ context.Context, i int) error {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent units, bound is %d", p, workers)
	}
}

func TestRunReturnsLowestIndexError(t *testing.T) {
	e := New(Config{Workers: 8})
	// Several units fail; regardless of completion order the reported
	// error must be unit 3's (the lowest failing index).
	for trial := 0; trial < 20; trial++ {
		err := e.Run(context.Background(), 32, func(_ context.Context, i int) error {
			if i == 3 || i == 17 || i == 29 {
				return fmt.Errorf("unit %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "unit 3 failed" {
			t.Fatalf("trial %d: err = %v, want unit 3's", trial, err)
		}
	}
}

func TestRunStopsAdmittingAfterFailure(t *testing.T) {
	e := New(Config{Workers: 1})
	var ran atomic.Int32
	err := e.Run(context.Background(), 100, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("%d units ran after unit 0 failed on a 1-worker pool", got)
	}
}

func TestRunHonoursCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(Config{Workers: 2})
	var ran atomic.Int32
	err := e.Run(ctx, 10, func(context.Context, int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatal("units ran under a cancelled context")
	}
}

func TestRunEmptyBatch(t *testing.T) {
	e := New(Config{Workers: 2})
	if err := e.Run(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCollectMergesInSubmissionOrder(t *testing.T) {
	e := New(Config{Workers: 8})
	out, err := Collect(context.Background(), e, 64, func(_ context.Context, i int) (int, error) {
		// Finish in scrambled order; the merge must not care.
		time.Sleep(time.Duration((i*7919)%13) * 100 * time.Microsecond)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestCollectDropsResultsOnError(t *testing.T) {
	e := New(Config{Workers: 4})
	out, err := Collect(context.Background(), e, 8, func(_ context.Context, i int) (string, error) {
		if i == 5 {
			return "", errors.New("bad unit")
		}
		return "ok", nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if out != nil {
		t.Fatalf("partial results leaked: %v", out)
	}
}

// TestSplitSeedDeterministicAndDistinct is the contract the calibration
// campaign relies on: the stream a unit draws depends only on (seed, unit).
func TestSplitSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for unit := uint64(0); unit < 1000; unit++ {
		a := SplitSeed(42, unit)
		if b := SplitSeed(42, unit); a != b {
			t.Fatalf("SplitSeed not deterministic at unit %d", unit)
		}
		if seen[a] {
			t.Fatalf("seed collision at unit %d", unit)
		}
		seen[a] = true
	}
	if SplitSeed(1, 0) == SplitSeed(2, 0) {
		t.Fatal("different base seeds produced the same unit seed")
	}
}

// TestSplitSeedStreamsIndependentOfWorkerCount draws from per-unit RNGs
// under 1 worker and 8 workers and requires identical values — the
// determinism mechanism the serial-vs-parallel campaign test leans on.
func TestSplitSeedStreamsIndependentOfWorkerCount(t *testing.T) {
	draw := func(workers int) []float64 {
		e := New(Config{Workers: workers})
		out, err := Collect(context.Background(), e, 32, func(_ context.Context, i int) (float64, error) {
			rng := rand.New(rand.NewSource(SplitSeed(99, uint64(i))))
			return rng.Float64(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial, parallel := draw(1), draw(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("unit %d drew %v serial vs %v parallel", i, serial[i], parallel[i])
		}
	}
}

// TestRunConcurrentBatches exercises one executor shared by several
// goroutines — the agentd case where directional and frequency sweeps
// overlap — and doubles as a -race probe for the metrics path.
func TestRunConcurrentBatches(t *testing.T) {
	e := New(Config{Workers: 4})
	var wg sync.WaitGroup
	var total atomic.Int32
	for b := 0; b < 6; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = e.Run(context.Background(), 25, func(context.Context, int) error {
				total.Add(1)
				return nil
			})
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 6*25 {
		t.Fatalf("ran %d units, want %d", got, 6*25)
	}
}
