// Package pipeline is the campaign executor: a bounded worker pool that
// fans independent measurement units — one per site × window × channel —
// across GOMAXPROCS workers while keeping the merged output bit-identical
// to a serial run.
//
// The paper's three calibration probes (ADS-B FoV §3.1, cellular RSRP and
// TV band power §3.2) are independent per unit, so the only thing standing
// between a serial campaign and a parallel one is shared mutable state:
// RNG streams, scratch buffers, metric registration. The executor's
// contract removes the ordering half of the problem:
//
//   - every unit is identified by its submission index;
//   - results merge by that index, never by completion order;
//   - errors report the lowest failing index, so the error a caller sees
//     does not depend on scheduling;
//   - units that need randomness derive their stream with SplitSeed, so a
//     1-worker run and a 16-worker run draw identical values.
//
// The state half — per-unit devices, faders and DSP scratch — is the
// callers' job (internal/calib builds one sdr.Device and rfmath.Fader per
// unit; internal/dsp pools the scratch).
package pipeline

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// Config tunes an Executor.
type Config struct {
	// Workers bounds concurrent units. Zero means GOMAXPROCS; one gives
	// the serial reference execution the determinism tests compare
	// against.
	Workers int
}

// Executor runs batches of independent units across a bounded worker
// pool. It is stateless between batches and safe for concurrent use.
type Executor struct {
	workers int
}

// New returns an executor with the configured worker bound.
func New(cfg Config) *Executor {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Executor{workers: w}
}

// Workers returns the worker bound.
func (e *Executor) Workers() int { return e.workers }

// indexedError carries the unit index so error selection is deterministic.
type indexedError struct {
	index int
	err   error
}

// Run executes fn(ctx, i) once for every i in [0, n) across the pool.
// The batch stops admitting new units after the first failure (units
// already running finish), and the returned error is the one with the
// lowest unit index — independent of scheduling. A cancelled ctx stops
// the batch the same way.
func (e *Executor) Run(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	m := metrics()
	workers := e.workers
	if workers > n {
		workers = n
	}
	batchStart := time.Now()

	// The index feed doubles as the queue-depth signal: units sit in the
	// channel until a worker picks them up.
	feed := make(chan int, n)
	for i := 0; i < n; i++ {
		feed <- i
	}
	close(feed)
	m.queueDepth.Add(float64(n))

	unitCtx, stop := context.WithCancel(ctx)
	defer stop()

	var (
		mu    sync.Mutex
		first *indexedError
		wg    sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if first == nil || i < first.index {
			first = &indexedError{index: i, err: err}
		}
		mu.Unlock()
		stop()
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range feed {
				m.queueDepth.Add(-1)
				if unitCtx.Err() != nil {
					// The batch is already failing or cancelled; drain the
					// remaining indices without running them.
					m.unitsSkipped.Inc()
					continue
				}
				unitStart := time.Now()
				m.workersBusy.Add(1)
				err := fn(unitCtx, i)
				busy := time.Since(unitStart)
				m.workersBusy.Add(-1)
				m.busySeconds.Add(busy.Seconds())
				m.unitDuration.Observe(busy.Seconds())
				if err != nil {
					m.unitFailures.Inc()
					fail(i, err)
					continue
				}
				m.unitsDone.Inc()
			}
		}()
	}
	wg.Wait()

	elapsed := time.Since(batchStart)
	m.batches.Inc()
	if elapsed > 0 {
		m.unitsPerSecond.Set(float64(n) / elapsed.Seconds())
	}

	mu.Lock()
	defer mu.Unlock()
	if first != nil {
		return first.err
	}
	return ctx.Err()
}

// Collect runs fn across the executor's pool and returns the results in
// submission order: out[i] is fn(ctx, i)'s value regardless of which
// worker ran it or when it finished. On error the partial results are
// discarded and the lowest failing index's error is returned.
func Collect[T any](ctx context.Context, e *Executor, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := e.Run(ctx, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SplitSeed derives an independent, well-mixed seed for one unit of a
// batch from the batch's base seed. Splitting (rather than sharing one
// rand.Rand) is what keeps parallel campaigns deterministic: every unit's
// RNG stream depends only on (seed, unit), never on execution order.
//
// The mix is SplitMix64 — the generator recommended for exactly this
// seed-derivation job — so neighbouring unit indices land on statistically
// unrelated streams.
func SplitSeed(seed int64, unit uint64) int64 {
	z := uint64(seed) + (unit+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
