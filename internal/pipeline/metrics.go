package pipeline

import (
	"sync"

	"sensorcal/internal/obs"
)

// Pipeline instrumentation on the process-wide registry: queue depth,
// worker busy time and throughput, so an operator can tell whether a
// node is starved for work (scheduler problem) or saturated (pipeline
// problem). Registered lazily on first Run so importing the package has
// no side effects.

type pipelineMetrics struct {
	unitsDone      *obs.Counter
	unitFailures   *obs.Counter
	unitsSkipped   *obs.Counter
	batches        *obs.Counter
	busySeconds    *obs.Counter
	queueDepth     *obs.Gauge
	workersBusy    *obs.Gauge
	unitsPerSecond *obs.Gauge
	unitDuration   *obs.Histogram
}

var (
	metricsOnce sync.Once
	metricsVal  *pipelineMetrics
)

func metrics() *pipelineMetrics {
	metricsOnce.Do(func() {
		reg := obs.Default()
		metricsVal = &pipelineMetrics{
			unitsDone: reg.Counter("pipeline_units_total",
				"Measurement units completed by the worker pool."),
			unitFailures: reg.Counter("pipeline_unit_failures_total",
				"Measurement units that returned an error."),
			unitsSkipped: reg.Counter("pipeline_units_skipped_total",
				"Queued units abandoned after a batch failure or cancellation."),
			batches: reg.Counter("pipeline_batches_total",
				"Completed Run batches."),
			busySeconds: reg.Counter("pipeline_worker_busy_seconds_total",
				"Cumulative wall time workers spent executing units."),
			queueDepth: reg.Gauge("pipeline_queue_depth",
				"Units waiting for a free worker."),
			workersBusy: reg.Gauge("pipeline_workers_busy",
				"Workers currently executing a unit."),
			unitsPerSecond: reg.Gauge("pipeline_units_per_second",
				"Throughput of the most recently completed batch."),
			unitDuration: reg.Histogram("pipeline_unit_duration_seconds",
				"Per-unit execution time.",
				obs.DurationBuckets),
		}
	})
	return metricsVal
}
