// Package market implements the spectrum-sensing marketplace the paper
// motivates (§1–2): "node operators offer spectrum sensing as a service
// and users pay to rent these services from operators. A key problem
// hindering the realization of this idea is how users can trust the
// quality of data offered by each operator."
//
// A listing couples a node with its automatic calibration report and its
// consensus trust score; a renter expresses requirements (band quality,
// field-of-view direction, placement, trust floor) and the market matches
// and prices. Everything a renter filters on comes from the calibration
// system — no self-reported claims are consulted.
package market

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"sensorcal/internal/calib"
	"sensorcal/internal/geo"
	"sensorcal/internal/trust"
)

// Listing is one rentable node.
type Listing struct {
	Node   trust.NodeID
	Report *calib.Report
	Trust  trust.Score
	// PricePerHour in arbitrary credits; zero means "price me".
	PricePerHour float64
}

// bandScore returns the listing's calibrated score for a band class.
func (l Listing) bandScore(cls calib.BandClass) (float64, bool) {
	if l.Report == nil {
		return 0, false
	}
	for _, b := range l.Report.Bands {
		if b.Class == cls {
			return b.Score, true
		}
	}
	return 0, false
}

// Requirement is what a renter asks for.
type Requirement struct {
	// Band and MinBandScore bound the reception quality in the band the
	// renter wants monitored.
	Band         calib.BandClass
	MinBandScore float64
	// Direction, when set, must be covered by the node's measured field
	// of view (e.g. "I need eyes toward the airport").
	Direction *geo.Sector
	// RequireOutdoor filters on the *classified* placement, not the
	// operator's claim.
	RequireOutdoor bool
	// MinTrust floors the consensus trust score.
	MinTrust trust.Score
	// MaxPricePerHour caps spend (0 = unlimited).
	MaxPricePerHour float64
	// MaxReportAge rejects listings whose calibration report is older
	// than this (0 = any age). calib.DefaultMaxReportAge is the
	// conventional bound, shared with the measurement scheduler's
	// staleness priority so a node drops out of listings at the same
	// moment the scheduler starts favouring it for re-measurement.
	MaxReportAge time.Duration
	// AsOf is the evaluation time for MaxReportAge; zero means
	// time.Now().
	AsOf time.Time
}

// Qualifies reports whether the listing satisfies the requirement, with a
// reason when it does not.
func (r Requirement) Qualifies(l Listing) (bool, string) {
	if l.Trust < r.MinTrust {
		return false, fmt.Sprintf("trust %.2f below floor %.2f", float64(l.Trust), float64(r.MinTrust))
	}
	if l.Report == nil {
		return false, "no calibration report"
	}
	if r.MaxReportAge > 0 {
		now := r.AsOf
		if now.IsZero() {
			now = time.Now()
		}
		if age := calib.ReportAge(l.Report, now); age > r.MaxReportAge {
			return false, fmt.Sprintf("calibration report %s old, max %s", age, r.MaxReportAge)
		}
	}
	if score, ok := l.bandScore(r.Band); !ok || score < r.MinBandScore {
		return false, fmt.Sprintf("band %v score %.2f below %.2f", r.Band, score, r.MinBandScore)
	}
	if r.RequireOutdoor && l.Report.Placement.Placement != calib.PlacementOutdoor {
		return false, fmt.Sprintf("classified %v, outdoor required", l.Report.Placement.Placement)
	}
	if r.Direction != nil {
		covered := coveredWidth(l.Report.FieldOfView, *r.Direction)
		if covered < r.Direction.Width()*0.8 {
			return false, fmt.Sprintf("field of view covers only %.0f° of the requested %.0f° sector",
				covered, r.Direction.Width())
		}
	}
	if r.MaxPricePerHour > 0 && l.PricePerHour > r.MaxPricePerHour {
		return false, fmt.Sprintf("price %.1f above cap %.1f", l.PricePerHour, r.MaxPricePerHour)
	}
	return true, ""
}

// coveredWidth returns how many degrees of the wanted sector the field of
// view covers.
func coveredWidth(fov geo.SectorSet, want geo.Sector) float64 {
	covered := 0.0
	w := want.Width()
	for d := 0.5; d < w; d++ {
		if fov.Contains(geo.NormalizeBearing(want.From + d)) {
			covered++
		}
	}
	return covered
}

// SuggestPrice derives an hourly price from calibration quality and
// trust: a grade-A, fully trusted rooftop node earns the base rate; each
// deficiency discounts multiplicatively.
func SuggestPrice(l Listing, baseRate float64) float64 {
	if l.Report == nil {
		return 0
	}
	price := baseRate * l.Report.Overall * float64(l.Trust)
	if l.Report.Placement.Placement != calib.PlacementOutdoor {
		price *= 0.7
	}
	return math.Round(price*100) / 100
}

// Market is a concurrent-safe listing registry with a rental ledger.
type Market struct {
	mu       sync.Mutex
	listings map[trust.NodeID]Listing
	rentals  []Rental
}

// Rental records one booking.
type Rental struct {
	Node    trust.NodeID
	Renter  string
	Start   time.Time
	Hours   float64
	Credits float64
}

// NewMarket returns an empty market.
func NewMarket() *Market {
	return &Market{listings: map[trust.NodeID]Listing{}}
}

// List upserts a node's listing.
func (m *Market) List(l Listing) error {
	if l.Node == "" {
		return fmt.Errorf("market: listing needs a node")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.listings[l.Node] = l
	return nil
}

// Match returns qualifying listings ordered by value for money
// (band score × trust per credit), best first.
func (m *Market) Match(r Requirement) []Listing {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Listing
	for _, l := range m.listings {
		if ok, _ := r.Qualifies(l); ok {
			out = append(out, l)
		}
	}
	value := func(l Listing) float64 {
		score, _ := l.bandScore(r.Band)
		v := score * float64(l.Trust)
		if l.PricePerHour > 0 {
			v /= l.PricePerHour
		}
		return v
	}
	sort.Slice(out, func(i, j int) bool {
		vi, vj := value(out[i]), value(out[j])
		if vi != vj {
			return vi > vj
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Explain returns the disqualification reason for every listing that does
// not match — the feedback an operator needs to improve an installation.
func (m *Market) Explain(r Requirement) map[trust.NodeID]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[trust.NodeID]string{}
	for id, l := range m.listings {
		if ok, why := r.Qualifies(l); !ok {
			out[id] = why
		}
	}
	return out
}

// Book records a rental against a listed node.
func (m *Market) Book(node trust.NodeID, renter string, start time.Time, hours float64) (Rental, error) {
	if hours <= 0 {
		return Rental{}, fmt.Errorf("market: rental needs positive hours")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.listings[node]
	if !ok {
		return Rental{}, fmt.Errorf("market: node %s not listed", node)
	}
	rental := Rental{
		Node: node, Renter: renter, Start: start, Hours: hours,
		Credits: l.PricePerHour * hours,
	}
	m.rentals = append(m.rentals, rental)
	return rental, nil
}

// Earnings sums a node's booked credits.
func (m *Market) Earnings(node trust.NodeID) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum float64
	for _, r := range m.rentals {
		if r.Node == node {
			sum += r.Credits
		}
	}
	return sum
}
