package market

import (
	"strings"
	"testing"
	"time"

	"sensorcal/internal/calib"
)

// The marketplace's MaxReportAge requirement shares its definition of
// "too old" with the measurement scheduler (calib.DefaultMaxReportAge):
// a listing drops out at the same moment the scheduler starts favouring
// the node for re-measurement.

func agedListing(generated time.Time) Listing {
	l := roofListing()
	l.Report.Generated = generated
	return l
}

func TestMaxReportAgeRejectsExpiredReports(t *testing.T) {
	now := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	req := Requirement{
		Band:         calib.BandMid,
		MaxReportAge: calib.DefaultMaxReportAge,
		AsOf:         now,
	}

	// Fresh report qualifies.
	if ok, why := req.Qualifies(agedListing(now.Add(-time.Hour))); !ok {
		t.Fatalf("fresh report rejected: %s", why)
	}
	// A report exactly at the bound still qualifies (age must exceed).
	if ok, why := req.Qualifies(agedListing(now.Add(-calib.DefaultMaxReportAge))); !ok {
		t.Fatalf("at-bound report rejected: %s", why)
	}
	// Past the bound it is rejected with an age-naming reason.
	ok, why := req.Qualifies(agedListing(now.Add(-25 * time.Hour)))
	if ok {
		t.Fatalf("expired report qualified")
	}
	if !strings.Contains(why, "calibration report") || !strings.Contains(why, "old") {
		t.Fatalf("reason %q should name the report age", why)
	}
	// MaxReportAge zero means any age is fine.
	req.MaxReportAge = 0
	if ok, why := req.Qualifies(agedListing(now.Add(-1000 * time.Hour))); !ok {
		t.Fatalf("age-unbounded requirement rejected old report: %s", why)
	}
}

func TestMaxReportAgeNilAndUndatedReports(t *testing.T) {
	now := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	req := Requirement{
		Band:         calib.BandMid,
		MaxReportAge: calib.DefaultMaxReportAge,
		AsOf:         now,
	}

	// No report at all: rejected before the age check even runs.
	l := roofListing()
	l.Report = nil
	ok, why := req.Qualifies(l)
	if ok || why != "no calibration report" {
		t.Fatalf("nil report: (%v, %q)", ok, why)
	}

	// A report with no Generated timestamp is infinitely stale
	// (calib.ReportAge), so any age bound rejects it.
	if ok, why := req.Qualifies(agedListing(time.Time{})); ok {
		t.Fatalf("undated report qualified: %s", why)
	}
}

func TestReportAgeSemantics(t *testing.T) {
	now := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	if age := calib.ReportAge(nil, now); age < 1000*time.Hour {
		t.Fatalf("nil report age = %v, want effectively infinite", age)
	}
	r := &calib.Report{Generated: now.Add(-3 * time.Hour)}
	if age := calib.ReportAge(r, now); age != 3*time.Hour {
		t.Fatalf("age = %v, want 3h", age)
	}
}
