package market

import (
	"context"
	"time"

	"sensorcal/internal/calib"
	"sensorcal/internal/figures"
	"sensorcal/internal/trust"
	"sensorcal/internal/world"
)

// Builders that run the actual calibration pipeline at the testbed sites,
// used by the end-to-end market test.

func realListing(name string, site *world.Site) Listing {
	obs, err := figures.Figure1(site.Name, 60, 171)
	if err != nil {
		panic(err)
	}
	freq, err := calib.RunFrequency(context.Background(), calib.FrequencyConfig{
		Site:   site,
		Towers: world.Towers(),
		TV:     world.TVStations(),
		Seed:   171,
	})
	if err != nil {
		panic(err)
	}
	rep := calib.BuildReport(name, time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC), obs, freq)
	return Listing{Node: trust.NodeID("real-" + site.Name), Report: rep, Trust: 0.9}
}

func realRooftop() Listing { return realListing("real-rooftop", world.RooftopSite()) }
func realWindow() Listing  { return realListing("real-window", world.WindowSite()) }
func realIndoor() Listing  { return realListing("real-indoor", world.IndoorSite()) }
