package market

import (
	"strings"
	"testing"
	"time"

	"sensorcal/internal/calib"
	"sensorcal/internal/geo"
	"sensorcal/internal/trust"
)

// synthetic listing builders.

func listing(id trust.NodeID, overall float64, placement calib.Placement, fov geo.SectorSet, bands map[calib.BandClass]float64, tr trust.Score, price float64) Listing {
	rep := &calib.Report{
		Node:        string(id),
		Overall:     overall,
		FieldOfView: fov,
	}
	rep.Placement.Placement = placement
	for cls, score := range bands {
		rep.Bands = append(rep.Bands, calib.BandScore{Class: cls, Score: score})
	}
	return Listing{Node: id, Report: rep, Trust: tr, PricePerHour: price}
}

func roofListing() Listing {
	return listing("roof", 0.9, calib.PlacementOutdoor,
		geo.SectorSet{{From: 230, To: 310}},
		map[calib.BandClass]float64{calib.BandMid: 0.95, calib.BandTV: 0.9}, 0.95, 10)
}

func indoorListing() Listing {
	return listing("indoor", 0.3, calib.PlacementIndoor,
		nil,
		map[calib.BandClass]float64{calib.BandMid: 0.05, calib.BandTV: 0.5}, 0.9, 2)
}

func TestQualifies(t *testing.T) {
	roof := roofListing()
	indoor := indoorListing()

	midBand := Requirement{Band: calib.BandMid, MinBandScore: 0.7, MinTrust: 0.6}
	if ok, why := midBand.Qualifies(roof); !ok {
		t.Errorf("roof should qualify: %s", why)
	}
	if ok, _ := midBand.Qualifies(indoor); ok {
		t.Error("indoor should fail the mid-band requirement")
	}

	// TV-band monitoring is fine from the indoor node.
	tvBand := Requirement{Band: calib.BandTV, MinBandScore: 0.4}
	if ok, why := tvBand.Qualifies(indoor); !ok {
		t.Errorf("indoor should qualify for TV: %s", why)
	}

	// Placement and trust filters.
	outdoorReq := Requirement{Band: calib.BandTV, RequireOutdoor: true}
	if ok, _ := outdoorReq.Qualifies(indoor); ok {
		t.Error("indoor node must fail outdoor requirement")
	}
	trustReq := Requirement{Band: calib.BandTV, MinTrust: 0.99}
	if ok, why := trustReq.Qualifies(roof); ok || !strings.Contains(why, "trust") {
		t.Errorf("trust floor not applied: %v %q", ok, why)
	}
	// No report at all.
	bare := Listing{Node: "bare", Trust: 1}
	if ok, why := (Requirement{}).Qualifies(bare); ok || !strings.Contains(why, "report") {
		t.Error("report-less listing must not qualify")
	}
	// Price cap.
	priceReq := Requirement{Band: calib.BandMid, MaxPricePerHour: 5}
	if ok, why := priceReq.Qualifies(roof); ok || !strings.Contains(why, "price") {
		t.Errorf("price cap not applied: %q", why)
	}
}

func TestDirectionRequirement(t *testing.T) {
	roof := roofListing() // FoV [230,310)
	west := geo.Sector{From: 250, To: 290}
	if ok, why := (Requirement{Band: calib.BandTV, Direction: &west}).Qualifies(roof); !ok {
		t.Errorf("west sector is inside the FoV: %s", why)
	}
	east := geo.Sector{From: 80, To: 120}
	if ok, _ := (Requirement{Band: calib.BandTV, Direction: &east}).Qualifies(roof); ok {
		t.Error("east sector is outside the FoV")
	}
	// Partial coverage below 80% fails.
	straddle := geo.Sector{From: 290, To: 350} // only 20 of 60 degrees covered
	if ok, why := (Requirement{Band: calib.BandTV, Direction: &straddle}).Qualifies(roof); ok {
		t.Errorf("straddling sector should fail: %s", why)
	}
}

func TestSuggestPrice(t *testing.T) {
	roof := roofListing()
	indoor := indoorListing()
	pr := SuggestPrice(roof, 10)
	pi := SuggestPrice(indoor, 10)
	if pr <= pi {
		t.Errorf("rooftop price %v should exceed indoor %v", pr, pi)
	}
	// Indoor gets the placement discount on top of quality.
	if pi > 10*0.3*0.9*0.7+0.01 {
		t.Errorf("indoor price %v missing discounts", pi)
	}
	if SuggestPrice(Listing{}, 10) != 0 {
		t.Error("report-less listing prices at zero")
	}
}

func TestMarketMatchOrdering(t *testing.T) {
	m := NewMarket()
	roof := roofListing()
	cheapRoof := roofListing()
	cheapRoof.Node = "roof-cheap"
	cheapRoof.PricePerHour = 4
	if err := m.List(roof); err != nil {
		t.Fatal(err)
	}
	if err := m.List(cheapRoof); err != nil {
		t.Fatal(err)
	}
	if err := m.List(indoorListing()); err != nil {
		t.Fatal(err)
	}
	if err := m.List(Listing{}); err == nil {
		t.Error("empty listing should error")
	}

	got := m.Match(Requirement{Band: calib.BandMid, MinBandScore: 0.5})
	if len(got) != 2 {
		t.Fatalf("matches = %d, want the two roofs", len(got))
	}
	// Equal quality, lower price wins.
	if got[0].Node != "roof-cheap" {
		t.Errorf("order = [%s, %s], want cheap roof first", got[0].Node, got[1].Node)
	}

	// Explain covers the non-matching node.
	why := m.Explain(Requirement{Band: calib.BandMid, MinBandScore: 0.5})
	if _, ok := why["indoor"]; !ok {
		t.Errorf("explain missing indoor: %v", why)
	}
}

func TestBookingAndEarnings(t *testing.T) {
	m := NewMarket()
	if err := m.List(roofListing()); err != nil {
		t.Fatal(err)
	}
	start := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	r, err := m.Book("roof", "acme-labs", start, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Credits != 50 {
		t.Errorf("credits = %v, want 50", r.Credits)
	}
	if _, err := m.Book("ghost", "x", start, 1); err == nil {
		t.Error("unlisted node should not book")
	}
	if _, err := m.Book("roof", "x", start, 0); err == nil {
		t.Error("zero hours should error")
	}
	if got := m.Earnings("roof"); got != 50 {
		t.Errorf("earnings = %v", got)
	}
	if got := m.Earnings("ghost"); got != 0 {
		t.Errorf("ghost earnings = %v", got)
	}
}

// TestMarketWithRealReports runs the full pipeline: calibrate the three
// testbed sites, list them, and check a mid-band renter is matched only
// with the rooftop while a TV renter can also use the obstructed nodes —
// the paper's economic story end to end.
func TestMarketWithRealReports(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	m := NewMarket()
	// Reuse the calib test helpers via the exported API.
	for i, mk := range []func() Listing{realRooftop, realWindow, realIndoor} {
		l := mk()
		l.PricePerHour = SuggestPrice(l, 10)
		if err := m.List(l); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	mid := m.Match(Requirement{Band: calib.BandMid, MinBandScore: 0.6, RequireOutdoor: true, MinTrust: 0.4})
	if len(mid) != 1 || mid[0].Node != "real-rooftop" {
		t.Errorf("mid-band outdoor match = %v, want only the rooftop", names(mid))
	}
	tv := m.Match(Requirement{Band: calib.BandTV, MinBandScore: 0.3, MinTrust: 0.4})
	if len(tv) < 2 {
		t.Errorf("TV match = %v, want the rooftop plus obstructed nodes", names(tv))
	}
}

func names(ls []Listing) []trust.NodeID {
	var out []trust.NodeID
	for _, l := range ls {
		out = append(out, l.Node)
	}
	return out
}
