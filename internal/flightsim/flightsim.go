// Package flightsim simulates the air traffic around a sensor site: a
// deterministic fleet of aircraft on straight-line tracks, each carrying a
// Mode S transponder that broadcasts ADS-B position, velocity and
// identification squitters on the schedule real transponders use (position
// and velocity at 2 Hz each, identification every 5 s).
//
// The paper's §3.1 procedure receives "airplanes within a 100 km range"
// for 30 seconds; NewFleet spawns exactly that population. Aircraft state
// is a pure function of time, so ground truth (the fr24 service) and the
// RF simulation always agree without shared mutable state.
package flightsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"sensorcal/internal/geo"
	"sensorcal/internal/modes"
	"sensorcal/internal/rfmath"
)

// Aircraft is one simulated airframe. All fields are immutable after
// creation; position is computed from elapsed time.
type Aircraft struct {
	ICAO     modes.ICAO
	Callsign string
	// Initial state at the fleet epoch.
	Start      geo.Point
	TrackDeg   float64
	SpeedKt    float64
	ClimbFtMin float64
	// TxPowerW is the transponder output power; the paper notes the
	// 75–500 W spread that makes raw RSSI unreliable for calibration.
	TxPowerW float64
	// phase staggers this aircraft's transmission schedule.
	phase time.Duration
}

// knots to meters/second.
const ktToMS = 0.514444

// PositionAt returns the aircraft position at elapsed time since the
// fleet epoch.
func (a *Aircraft) PositionAt(elapsed time.Duration) geo.Point {
	dt := elapsed.Seconds()
	p := geo.Destination(a.Start, a.TrackDeg, a.SpeedKt*ktToMS*dt)
	p.Alt = a.Start.Alt + a.ClimbFtMin*0.3048/60*dt
	if p.Alt < 300 {
		p.Alt = 300
	}
	if p.Alt > 13500 {
		p.Alt = 13500
	}
	return p
}

// AltitudeFtAt returns the barometric altitude in feet at elapsed time.
func (a *Aircraft) AltitudeFtAt(elapsed time.Duration) int {
	return int(a.PositionAt(elapsed).Alt / 0.3048)
}

// EIRPDBm returns the transponder EIRP (omnidirectional blade antenna).
func (a *Aircraft) EIRPDBm() float64 { return rfmath.WattsToDBm(a.TxPowerW) }

// Fleet is a set of aircraft sharing an epoch.
type Fleet struct {
	Epoch    time.Time
	Aircraft []*Aircraft
}

// Config controls fleet generation.
type Config struct {
	Center geo.Point // sensor site the population surrounds
	Radius float64   // meters, paper uses 100 km
	Count  int       // number of aircraft
	Seed   int64
}

// NewFleet spawns a deterministic aircraft population: uniform in area
// over the disk, altitudes 2–12.5 km, speeds 250–480 kt, random tracks,
// a sprinkling of climbers and descenders, and transponder powers spread
// across the legal 75–500 W range.
func NewFleet(epoch time.Time, cfg Config) (*Fleet, error) {
	if cfg.Count < 0 {
		return nil, fmt.Errorf("flightsim: negative count")
	}
	if cfg.Radius <= 0 {
		return nil, fmt.Errorf("flightsim: radius must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Fleet{Epoch: epoch}
	for i := 0; i < cfg.Count; i++ {
		// Uniform over the disk: r ~ R*sqrt(u).
		r := cfg.Radius * math.Sqrt(rng.Float64())
		brg := rng.Float64() * 360
		pos := geo.Destination(cfg.Center, brg, r)
		pos.Alt = 2000 + rng.Float64()*10500
		climb := 0.0
		switch rng.Intn(5) {
		case 0:
			climb = 500 + rng.Float64()*1500
		case 1:
			climb = -500 - rng.Float64()*1500
		}
		a := &Aircraft{
			ICAO:       modes.ICAO(0xA00000 + uint32(i)*0x111 + uint32(rng.Intn(0x100))),
			Callsign:   fmt.Sprintf("SIM%04d", i),
			Start:      pos,
			TrackDeg:   rng.Float64() * 360,
			SpeedKt:    250 + rng.Float64()*230,
			ClimbFtMin: climb,
			TxPowerW:   75 + rng.Float64()*425,
			phase:      time.Duration(rng.Int63n(int64(time.Second))),
		}
		f.Aircraft = append(f.Aircraft, a)
	}
	return f, nil
}

// Transmission is one scheduled squitter.
type Transmission struct {
	At       time.Time
	Aircraft *Aircraft
	Frame    []byte // encoded DF17 wire bytes
	Position geo.Point
}

// squitter intervals per DO-260B.
const (
	positionInterval = 500 * time.Millisecond
	velocityInterval = 500 * time.Millisecond
	identInterval    = 5 * time.Second
	statusInterval   = 2500 * time.Millisecond
)

// TransmissionsBetween returns every squitter the fleet emits in the
// half-open interval [from, to), sorted by time. Position messages
// alternate even/odd CPR, as real transponders do.
func (f *Fleet) TransmissionsBetween(from, to time.Time) ([]Transmission, error) {
	if to.Before(from) {
		return nil, fmt.Errorf("flightsim: inverted interval")
	}
	var out []Transmission
	for _, a := range f.Aircraft {
		if err := f.emitSchedule(a, from, to, positionInterval, a.phase, f.positionFrame, &out); err != nil {
			return nil, err
		}
		if err := f.emitSchedule(a, from, to, velocityInterval, a.phase+137*time.Millisecond, f.velocityFrame, &out); err != nil {
			return nil, err
		}
		if err := f.emitSchedule(a, from, to, identInterval, a.phase+291*time.Millisecond, f.identFrame, &out); err != nil {
			return nil, err
		}
		if err := f.emitSchedule(a, from, to, statusInterval, a.phase+433*time.Millisecond, f.statusFrame, &out); err != nil {
			return nil, err
		}
	}
	sortTransmissions(out)
	return out, nil
}

type framer func(a *Aircraft, elapsed time.Duration, seq int64) ([]byte, error)

func (f *Fleet) emitSchedule(a *Aircraft, from, to time.Time, interval, phase time.Duration, mk framer, out *[]Transmission) error {
	// First emission at epoch+phase, then every interval.
	startOffset := from.Sub(f.Epoch)
	var k int64
	if startOffset > phase {
		k = int64((startOffset - phase + interval - 1) / interval)
	}
	for {
		at := f.Epoch.Add(phase + time.Duration(k)*interval)
		if !at.Before(to) {
			return nil
		}
		if !at.Before(from) {
			elapsed := at.Sub(f.Epoch)
			frame, err := mk(a, elapsed, k)
			if err != nil {
				return err
			}
			*out = append(*out, Transmission{
				At:       at,
				Aircraft: a,
				Frame:    frame,
				Position: a.PositionAt(elapsed),
			})
		}
		k++
	}
}

func (f *Fleet) positionFrame(a *Aircraft, elapsed time.Duration, seq int64) ([]byte, error) {
	p := a.PositionAt(elapsed)
	alt := a.AltitudeFtAt(elapsed)
	if alt > 50175 {
		alt = 50175
	}
	fr := &modes.Frame{
		ICAO: a.ICAO,
		Msg: &modes.AirbornePosition{
			TC:         11,
			AltitudeFt: alt,
			AltValid:   true,
			CPR:        modes.EncodeCPR(p.Lat, p.Lon, seq%2 == 1),
		},
	}
	return fr.Encode()
}

func (f *Fleet) velocityFrame(a *Aircraft, _ time.Duration, _ int64) ([]byte, error) {
	fr := &modes.Frame{
		ICAO: a.ICAO,
		Msg: &modes.Velocity{
			GroundSpeedKt:     a.SpeedKt,
			TrackDeg:          a.TrackDeg,
			VerticalRateFtMin: int(a.ClimbFtMin),
		},
	}
	return fr.Encode()
}

func (f *Fleet) identFrame(a *Aircraft, _ time.Duration, _ int64) ([]byte, error) {
	fr := &modes.Frame{
		ICAO: a.ICAO,
		Msg:  &modes.Identification{TC: 4, Category: 3, Callsign: a.Callsign},
	}
	return fr.Encode()
}

func (f *Fleet) statusFrame(a *Aircraft, _ time.Duration, _ int64) ([]byte, error) {
	fr := &modes.Frame{
		ICAO: a.ICAO,
		Msg:  &modes.OperationalStatus{Version: 2, NACp: 9, SIL: 3},
	}
	return fr.Encode()
}

// StatesAt returns the position of every aircraft at time t, for ground
// truth services.
func (f *Fleet) StatesAt(t time.Time) []State {
	elapsed := t.Sub(f.Epoch)
	out := make([]State, 0, len(f.Aircraft))
	for _, a := range f.Aircraft {
		out = append(out, State{
			ICAO:     a.ICAO,
			Callsign: a.Callsign,
			Position: a.PositionAt(elapsed),
			TrackDeg: a.TrackDeg,
			SpeedKt:  a.SpeedKt,
		})
	}
	return out
}

// State is a snapshot of one aircraft.
type State struct {
	ICAO     modes.ICAO
	Callsign string
	Position geo.Point
	TrackDeg float64
	SpeedKt  float64
}

func sortTransmissions(ts []Transmission) {
	// Insertion-friendly ordering: the schedules are already nearly
	// sorted per aircraft, so use sort.Slice from stdlib.
	sort.Slice(ts, func(i, j int) bool { return ts[i].At.Before(ts[j].At) })
}
