package flightsim

import (
	"testing"
	"time"

	"sensorcal/internal/geo"
	"sensorcal/internal/modes"
)

var epoch = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

func testFleet(t *testing.T, n int) *Fleet {
	t.Helper()
	f, err := NewFleet(epoch, Config{
		Center: geo.Point{Lat: 37.8716, Lon: -122.2727},
		Radius: 100_000,
		Count:  n,
		Seed:   42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFleetPopulation(t *testing.T) {
	f := testFleet(t, 50)
	if len(f.Aircraft) != 50 {
		t.Fatalf("fleet size = %d", len(f.Aircraft))
	}
	center := geo.Point{Lat: 37.8716, Lon: -122.2727}
	seen := map[modes.ICAO]bool{}
	for _, a := range f.Aircraft {
		if seen[a.ICAO] {
			t.Errorf("duplicate ICAO %s", a.ICAO)
		}
		seen[a.ICAO] = true
		if d := geo.GroundDistance(center, a.Start); d > 100_000 {
			t.Errorf("%s spawned %v m out", a.ICAO, d)
		}
		if a.Start.Alt < 2000 || a.Start.Alt > 12500 {
			t.Errorf("%s altitude %v outside 2–12.5 km", a.ICAO, a.Start.Alt)
		}
		if a.SpeedKt < 250 || a.SpeedKt > 480 {
			t.Errorf("%s speed %v outside 250–480 kt", a.ICAO, a.SpeedKt)
		}
		if a.TxPowerW < 75 || a.TxPowerW > 500 {
			t.Errorf("%s power %v outside the paper's 75–500 W", a.ICAO, a.TxPowerW)
		}
	}
}

func TestNewFleetErrors(t *testing.T) {
	if _, err := NewFleet(epoch, Config{Radius: 1, Count: -1}); err == nil {
		t.Error("negative count should error")
	}
	if _, err := NewFleet(epoch, Config{Radius: 0, Count: 1}); err == nil {
		t.Error("zero radius should error")
	}
}

func TestFleetDeterminism(t *testing.T) {
	a := testFleet(t, 10)
	b := testFleet(t, 10)
	for i := range a.Aircraft {
		if a.Aircraft[i].ICAO != b.Aircraft[i].ICAO ||
			a.Aircraft[i].Start != b.Aircraft[i].Start ||
			a.Aircraft[i].TxPowerW != b.Aircraft[i].TxPowerW {
			t.Fatal("same seed must reproduce the fleet")
		}
	}
}

func TestPositionAtMovesAlongTrack(t *testing.T) {
	f := testFleet(t, 1)
	a := f.Aircraft[0]
	p0 := a.PositionAt(0)
	p60 := a.PositionAt(time.Minute)
	d := geo.GroundDistance(p0, p60)
	want := a.SpeedKt * ktToMS * 60
	if d < want*0.99 || d > want*1.01 {
		t.Errorf("moved %v m in 60 s, want %v", d, want)
	}
	brg := geo.InitialBearing(p0, p60)
	if geo.AngularDiff(brg, a.TrackDeg) > 1 {
		t.Errorf("moved on bearing %v, track %v", brg, a.TrackDeg)
	}
}

func TestAltitudeClamping(t *testing.T) {
	a := &Aircraft{Start: geo.Point{Lat: 37, Lon: -122, Alt: 3000}, ClimbFtMin: -4000, SpeedKt: 300}
	if alt := a.PositionAt(time.Hour).Alt; alt != 300 {
		t.Errorf("descending aircraft should clamp at 300 m, got %v", alt)
	}
	a.ClimbFtMin = 4000
	if alt := a.PositionAt(time.Hour).Alt; alt != 13500 {
		t.Errorf("climbing aircraft should clamp at 13.5 km, got %v", alt)
	}
}

func TestTransmissionSchedule(t *testing.T) {
	f := testFleet(t, 1)
	window := 10 * time.Second
	ts, err := f.TransmissionsBetween(epoch, epoch.Add(window))
	if err != nil {
		t.Fatal(err)
	}
	// Per 10 s: 20 position + 20 velocity + 2 ident + 4 status = 46
	// (±2 for phase alignment).
	if len(ts) < 44 || len(ts) > 48 {
		t.Errorf("transmissions in 10 s = %d, want ≈46", len(ts))
	}
	// Sorted by time.
	for i := 1; i < len(ts); i++ {
		if ts[i].At.Before(ts[i-1].At) {
			t.Fatal("transmissions not sorted")
		}
	}
	// Every frame decodes and carries the right ICAO.
	var pos, vel, id, status int
	var lastOdd *bool
	for _, tx := range ts {
		fr, err := modes.Decode(tx.Frame)
		if err != nil {
			t.Fatalf("emitted frame does not decode: %v", err)
		}
		if fr.ICAO != f.Aircraft[0].ICAO {
			t.Fatal("wrong ICAO in frame")
		}
		switch m := fr.Msg.(type) {
		case *modes.AirbornePosition:
			pos++
			if lastOdd != nil && *lastOdd == m.CPR.Odd {
				t.Error("position frames should alternate even/odd CPR")
			}
			odd := m.CPR.Odd
			lastOdd = &odd
		case *modes.Velocity:
			vel++
		case *modes.Identification:
			id++
			if m.Callsign != f.Aircraft[0].Callsign {
				t.Errorf("callsign %q, want %q", m.Callsign, f.Aircraft[0].Callsign)
			}
		case *modes.OperationalStatus:
			status++
			if m.Version != 2 {
				t.Errorf("ADS-B version %d, want 2", m.Version)
			}
		}
	}
	if pos < 19 || pos > 21 {
		t.Errorf("position frames = %d, want ≈20 (the paper's ≥2/s)", pos)
	}
	if vel < 19 || vel > 21 {
		t.Errorf("velocity frames = %d, want ≈20", vel)
	}
	if id != 2 {
		t.Errorf("ident frames = %d, want 2", id)
	}
	if status < 3 || status > 5 {
		t.Errorf("status frames = %d, want ≈4", status)
	}
}

func TestTransmissionsWindowing(t *testing.T) {
	f := testFleet(t, 3)
	full, err := f.TransmissionsBetween(epoch, epoch.Add(4*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	a, err := f.TransmissionsBetween(epoch, epoch.Add(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.TransmissionsBetween(epoch.Add(2*time.Second), epoch.Add(4*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(a)+len(b) != len(full) {
		t.Errorf("windows should partition: %d + %d != %d", len(a), len(b), len(full))
	}
	for _, tx := range b {
		if tx.At.Before(epoch.Add(2 * time.Second)) {
			t.Error("transmission before window start")
		}
	}
	if _, err := f.TransmissionsBetween(epoch.Add(time.Second), epoch); err == nil {
		t.Error("inverted interval should error")
	}
}

func TestPositionFramesDecodeToTruePosition(t *testing.T) {
	f := testFleet(t, 1)
	a := f.Aircraft[0]
	ts, err := f.TransmissionsBetween(epoch, epoch.Add(3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	// Collect an even/odd CPR pair and globally decode it.
	var even, odd *modes.AirbornePosition
	var evenPos geo.Point
	for _, tx := range ts {
		fr, err := modes.Decode(tx.Frame)
		if err != nil {
			t.Fatal(err)
		}
		if p, ok := fr.Msg.(*modes.AirbornePosition); ok {
			if !p.CPR.Odd && even == nil {
				even = p
				evenPos = tx.Position
			} else if p.CPR.Odd && even != nil && odd == nil {
				odd = p
			}
		}
	}
	if even == nil || odd == nil {
		t.Fatal("did not capture an even/odd pair")
	}
	lat, lon, err := modes.DecodeCPRGlobal(even.CPR, odd.CPR, false)
	if err != nil {
		t.Fatal(err)
	}
	if geo.GroundDistance(geo.Point{Lat: lat, Lon: lon}, evenPos) > 500 {
		t.Errorf("decoded position %v,%v too far from truth %v", lat, lon, evenPos)
	}
	_ = a
}

func TestStatesAt(t *testing.T) {
	f := testFleet(t, 5)
	states := f.StatesAt(epoch.Add(15 * time.Second))
	if len(states) != 5 {
		t.Fatalf("states = %d", len(states))
	}
	for i, s := range states {
		if s.ICAO != f.Aircraft[i].ICAO {
			t.Error("state order should match fleet order")
		}
		want := f.Aircraft[i].PositionAt(15 * time.Second)
		if s.Position != want {
			t.Error("state position mismatch")
		}
	}
}

func TestEIRP(t *testing.T) {
	a := &Aircraft{TxPowerW: 250}
	if e := a.EIRPDBm(); e < 53.9 || e > 54.1 {
		t.Errorf("250 W = %v dBm, want ≈54", e)
	}
}
