package fmsim

import (
	"math"
	"testing"

	"sensorcal/internal/antenna"
	"sensorcal/internal/sdr"
)

func testDevice(seed int64) *sdr.Device {
	d := sdr.New(sdr.BladeRFxA9(), seed)
	_ = d.SetGain(30)
	return d
}

func TestStationValidate(t *testing.T) {
	if err := (Station{CallSign: "KSIM-FM", CenterHz: 94.9e6}).Validate(); err != nil {
		t.Error(err)
	}
	for _, hz := range []float64{80e6, 120e6} {
		if err := (Station{CenterHz: hz}).Validate(); err == nil {
			t.Errorf("%v Hz should be out of band", hz)
		}
	}
}

func TestMeasureStrongStation(t *testing.T) {
	st := Station{CallSign: "KSIM-FM", CenterHz: 94.9e6}
	scene := StaticScene{{Station: st, RxPowerDBm: -45}}
	r := NewReceiver(testDevice(1))
	m, err := r.MeasureChannel(scene, 94.9e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.PowerDBm-(-45)) > 1.5 {
		t.Errorf("power = %v dBm, want ≈ -45", m.PowerDBm)
	}
	if !m.CarrierDetected {
		t.Errorf("carrier not detected (%.1f dB)", m.CarrierDB)
	}
	if m.MarginDB() < 20 {
		t.Errorf("margin = %v", m.MarginDB())
	}
}

func TestMeasureEmptyChannel(t *testing.T) {
	r := NewReceiver(testDevice(2))
	m, err := r.MeasureChannel(StaticScene{}, 101.1e6)
	if err != nil {
		t.Fatal(err)
	}
	if m.CarrierDetected {
		t.Error("empty channel shows a carrier")
	}
	if m.MarginDB() > 3 {
		t.Errorf("empty channel margin = %v", m.MarginDB())
	}
}

func TestAdjacentChannelRejection(t *testing.T) {
	st := Station{CallSign: "K1", CenterHz: 94.9e6}
	scene := StaticScene{{Station: st, RxPowerDBm: -40}}
	r := NewReceiver(testDevice(3))
	on, err := r.MeasureChannel(scene, 94.9e6)
	if err != nil {
		t.Fatal(err)
	}
	adj, err := r.MeasureChannel(scene, 95.3e6) // two channels up
	if err != nil {
		t.Fatal(err)
	}
	if on.PowerDBFS-adj.PowerDBFS < 20 {
		t.Errorf("adjacent rejection = %v dB", on.PowerDBFS-adj.PowerDBFS)
	}
	if adj.CarrierDetected {
		t.Error("adjacent channel must not report the carrier")
	}
}

// TestAntennaRolloffVisible documents why FM measurements probe the
// antenna's claimed range: the paper's 700–2700 MHz antenna is ≈30 dB
// down at 95 MHz, so identical field strengths produce far weaker FM
// readings than TV readings.
func TestAntennaRolloffVisible(t *testing.T) {
	ant := antenna.PaperAntenna()
	gFM := ant.GainDBi(0, 0, 94.9e6)
	gTV := ant.GainDBi(0, 0, 545e6)
	if gTV-gFM < 20 {
		t.Errorf("roll-off between TV and FM = %v dB, want pronounced", gTV-gFM)
	}
}

func TestOutOfPassbandStation(t *testing.T) {
	st := Station{CallSign: "far", CenterHz: 107.9e6}
	if _, ok := st.Emission(94.9e6, 1e6, -40); ok {
		t.Error("station 13 MHz away should render nothing")
	}
}
