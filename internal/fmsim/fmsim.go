// Package fmsim extends the calibration system with another signal of
// opportunity, as the paper's §5 proposes ("there exists a wide range of
// other RF sources that can contribute to the evaluation process"): FM
// broadcast stations.
//
// FM broadcasting (87.5–108 MHz) sits far below the paper's 700–2700 MHz
// antenna, so these measurements primarily characterize the node's
// out-of-band roll-off — useful for catching antennas whose claimed range
// does not match reality. An FM carrier is constant-envelope with most of
// its power concentrated near the carrier; the simulator models it as a
// strong carrier plus modulation sidebands, and the receiver detects a
// station by carrier prominence inside the 200 kHz channel.
package fmsim

import (
	"fmt"
	"math"

	"sensorcal/internal/dsp"
	"sensorcal/internal/iq"
	"sensorcal/internal/sdr"
)

// ChannelWidthHz is the FM broadcast channel spacing (200 kHz in ITU
// region 2).
const ChannelWidthHz = 200e3

// CarrierFraction is the share of received power in the residual carrier
// component of our simplified constant-envelope model.
const CarrierFraction = 0.35

// Station is one FM broadcaster.
type Station struct {
	CallSign string
	CenterHz float64
}

// Validate checks the station sits in the FM broadcast band on a valid
// 200 kHz raster (odd 100 kHz multiples in region 2).
func (s Station) Validate() error {
	if s.CenterHz < 87.5e6 || s.CenterHz > 108e6 {
		return fmt.Errorf("fmsim: %s at %.1f MHz outside the FM band", s.CallSign, s.CenterHz/1e6)
	}
	return nil
}

// Emission renders the station at rxPowerDBm for a device tuned to
// tunedHz: a carrier tone plus modulation-sideband noise across ~180 kHz.
func (s Station) Emission(tunedHz, sampleRate, rxPowerDBm float64) ([]sdr.Emission, bool) {
	offset := s.CenterHz - tunedHz
	if math.Abs(offset)-ChannelWidthHz/2 > sampleRate/2 {
		return nil, false
	}
	carrier := sdr.Tone{
		OffsetHz: offset,
		PowerDBm: rxPowerDBm + 10*math.Log10(CarrierFraction),
	}
	sidebands := sdr.NoiseBand{
		CenterOffsetHz: offset,
		BandwidthHz:    180e3,
		PowerDBm:       rxPowerDBm + 10*math.Log10(1-CarrierFraction),
	}
	return []sdr.Emission{carrier, sidebands}, true
}

// Scene supplies receivable stations, mirroring the other substrates.
type Scene interface {
	EmissionsFor(tunedHz, sampleRate float64, samples int) ([]sdr.Emission, error)
}

// ActiveStation pairs a station with its received power.
type ActiveStation struct {
	Station    Station
	RxPowerDBm float64
}

// StaticScene is a fixed station list.
type StaticScene []ActiveStation

// EmissionsFor implements Scene.
func (ss StaticScene) EmissionsFor(tunedHz, sampleRate float64, _ int) ([]sdr.Emission, error) {
	var out []sdr.Emission
	for _, as := range ss {
		if ems, ok := as.Station.Emission(tunedHz, sampleRate, as.RxPowerDBm); ok {
			out = append(out, ems...)
		}
	}
	return out, nil
}

// Measurement is one FM channel reading.
type Measurement struct {
	CenterHz float64
	// PowerDBFS / PowerDBm: in-channel power, as in the TV receiver.
	PowerDBFS float64
	PowerDBm  float64
	// CarrierDB is the carrier's prominence over the channel's spectral
	// floor; CarrierDetected gates station presence.
	CarrierDB       float64
	CarrierDetected bool
	NoiseFloorDBFS  float64
}

// MarginDB returns the measurement's height above the noise floor.
func (m Measurement) MarginDB() float64 { return m.PowerDBFS - m.NoiseFloorDBFS }

// Receiver measures FM channels.
type Receiver struct {
	Dev *sdr.Device
	// SampleRateHz for captures.
	SampleRateHz float64
	// CaptureSamples per measurement.
	CaptureSamples int
	// CarrierThresholdDB is the prominence needed to declare a carrier.
	CarrierThresholdDB float64
}

// NewReceiver returns an FM receiver with sensible defaults.
func NewReceiver(dev *sdr.Device) *Receiver {
	return &Receiver{
		Dev:                dev,
		SampleRateHz:       1e6,
		CaptureSamples:     1 << 15,
		CarrierThresholdDB: 10,
	}
}

// MeasureChannel measures one FM channel's power and carrier presence.
func (r *Receiver) MeasureChannel(scene Scene, centerHz float64) (Measurement, error) {
	if err := r.Dev.Tune(centerHz); err != nil {
		return Measurement{}, fmt.Errorf("fmsim: %w", err)
	}
	rate := math.Min(r.SampleRateHz, r.Dev.Profile().MaxSampleRate)
	if err := r.Dev.SetSampleRate(rate); err != nil {
		return Measurement{}, err
	}
	ems, err := scene.EmissionsFor(centerHz, rate, r.CaptureSamples)
	if err != nil {
		return Measurement{}, err
	}
	buf, err := r.Dev.Capture(r.CaptureSamples, ems)
	if err != nil {
		return Measurement{}, err
	}
	p, err := dsp.BandPowerTimeDomain(buf.Samples, rate, 0, ChannelWidthHz, 129, r.CaptureSamples/2)
	if err != nil {
		return Measurement{}, err
	}
	m := Measurement{CenterHz: centerHz, PowerDBFS: iq.PowerToDBFS(p)}
	m.PowerDBm = r.Dev.DBFSToDBm(m.PowerDBFS)
	m.NoiseFloorDBFS = r.Dev.NoiseFloorDBFS(290) + 10*math.Log10(ChannelWidthHz/rate)
	// Carrier check: Goertzel at the channel center versus 70 kHz out
	// (inside the sidebands but away from the carrier).
	at := dsp.Goertzel(buf.Samples, rate, 0)
	ref := dsp.Goertzel(buf.Samples, rate, 70e3)
	if ref > 0 {
		m.CarrierDB = 10 * math.Log10(at/ref)
	}
	m.CarrierDetected = m.CarrierDB >= r.CarrierThresholdDB
	return m, nil
}
