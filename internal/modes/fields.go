package modes

import (
	"fmt"
	"strings"
)

// ICAO is a 24-bit airframe address.
type ICAO uint32

func (a ICAO) String() string { return fmt.Sprintf("%06X", uint32(a)&0xFFFFFF) }

// callsignCharset maps 6-bit codes to the ADS-B identification alphabet
// (DO-260B table): '#' marks invalid codes.
const callsignCharset = "#ABCDEFGHIJKLMNOPQRSTUVWXYZ##### ###############0123456789######"

// EncodeCallsign packs an up-to-8-character callsign into 48 bits (eight
// 6-bit characters, space padded). Characters outside the alphabet are an
// error.
func EncodeCallsign(cs string) (uint64, error) {
	if len(cs) > 8 {
		return 0, fmt.Errorf("modes: callsign %q longer than 8 characters", cs)
	}
	padded := cs + strings.Repeat(" ", 8-len(cs))
	var out uint64
	for _, ch := range padded {
		idx := strings.IndexRune(callsignCharset, ch)
		if idx < 0 || callsignCharset[idx] == '#' {
			return 0, fmt.Errorf("modes: invalid callsign character %q", ch)
		}
		out = out<<6 | uint64(idx)
	}
	return out, nil
}

// DecodeCallsign unpacks 48 bits into the callsign string, trimming
// trailing spaces. Invalid codes decode to '#', as dump1090 displays them.
func DecodeCallsign(bits uint64) string {
	var sb strings.Builder
	for i := 7; i >= 0; i-- {
		code := (bits >> (6 * uint(i))) & 0x3F
		sb.WriteByte(callsignCharset[code])
	}
	return strings.TrimRight(sb.String(), " ")
}

// EncodeAltitude packs a barometric altitude in feet into the 12-bit
// AC field of an airborne position message using the Q-bit (25 ft) format,
// which covers −1000 to +50175 ft.
func EncodeAltitude(feet int) (uint16, error) {
	if feet < -1000 || feet > 50175 {
		return 0, fmt.Errorf("modes: altitude %d ft outside Q-bit range", feet)
	}
	n := (feet + 1000) / 25
	// The 12-bit field is [N(7 bits) Q=1 N(4 bits)]: bit 5 (from MSB,
	// 0-indexed bit 7 of the field counting from bit 11) is the Q bit.
	high := uint16(n>>4) & 0x7F
	low := uint16(n) & 0x0F
	return high<<5 | 1<<4 | low, nil
}

// DecodeAltitude unpacks the 12-bit AC field. Only the Q-bit format is
// supported (all airborne ADS-B transponders in this simulator use it);
// a zero field means "altitude unavailable".
func DecodeAltitude(field uint16) (feet int, ok bool) {
	field &= 0xFFF
	if field == 0 {
		return 0, false
	}
	if field&0x10 == 0 {
		// Gillham-coded 100 ft altitudes: not emitted by this simulator.
		return 0, false
	}
	n := int(field>>5)<<4 | int(field&0x0F)
	return n*25 - 1000, true
}

// TypeCode classifies the ME payload of a DF17 squitter.
type TypeCode int

// Type code groups used by this implementation.
const (
	TCIdentificationMin TypeCode = 1
	TCIdentificationMax TypeCode = 4
	TCAirbornePosMin    TypeCode = 9
	TCAirbornePosMax    TypeCode = 18
	TCVelocity          TypeCode = 19
)

// IsIdentification reports whether tc is an aircraft identification code.
func (tc TypeCode) IsIdentification() bool {
	return tc >= TCIdentificationMin && tc <= TCIdentificationMax
}

// IsAirbornePosition reports whether tc is an airborne position code.
func (tc TypeCode) IsAirbornePosition() bool {
	return tc >= TCAirbornePosMin && tc <= TCAirbornePosMax
}

// IsVelocity reports whether tc is an airborne velocity code.
func (tc TypeCode) IsVelocity() bool { return tc == TCVelocity }
