package modes

import (
	"encoding/hex"
	"testing"
	"testing/quick"
)

// Reference frame from Sun, "The 1090 MHz Riddle": a KLM 1023 airborne
// position squitter with valid parity.
const riddlePositionFrame = "8D40621D58C382D690C8AC2863A7"

// Reference identification frame from the same source ("KLM1023 ").
const riddleIdentFrame = "8D4840D6202CC371C32CE0576098"

func mustHex(t testing.TB, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestChecksumAgainstRealFrames(t *testing.T) {
	for _, s := range []string{riddlePositionFrame, riddleIdentFrame} {
		frame := mustHex(t, s)
		if !CheckParity(frame) {
			t.Errorf("real-world frame %s should pass parity", s)
		}
	}
}

func TestAttachParityRoundTrip(t *testing.T) {
	f := func(payload [11]byte) bool {
		frame := make([]byte, FrameLength)
		copy(frame, payload[:])
		AttachParity(frame)
		return CheckParity(frame)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSingleBitErrorsAlwaysDetected(t *testing.T) {
	frame := mustHex(t, riddlePositionFrame)
	for bit := 0; bit < FrameLength*8; bit++ {
		corrupted := make([]byte, FrameLength)
		copy(corrupted, frame)
		BitError(corrupted, bit)
		if CheckParity(corrupted) {
			t.Errorf("single bit error at %d not detected", bit)
		}
	}
}

func TestDoubleBitErrorsDetected(t *testing.T) {
	frame := mustHex(t, riddlePositionFrame)
	// CRC-24 with this polynomial detects all 2-bit errors within the
	// 112-bit frame; spot-check a grid of pairs.
	for a := 0; a < FrameLength*8; a += 7 {
		for b := a + 1; b < FrameLength*8; b += 13 {
			corrupted := make([]byte, FrameLength)
			copy(corrupted, frame)
			BitError(corrupted, a)
			BitError(corrupted, b)
			if CheckParity(corrupted) {
				t.Errorf("double bit error at (%d,%d) not detected", a, b)
			}
		}
	}
}

func TestBitErrorBounds(t *testing.T) {
	frame := mustHex(t, riddlePositionFrame)
	orig := make([]byte, len(frame))
	copy(orig, frame)
	BitError(frame, -1)
	BitError(frame, FrameLength*8)
	for i := range frame {
		if frame[i] != orig[i] {
			t.Fatal("out-of-range BitError must not modify the frame")
		}
	}
}

func TestCheckParityShortInput(t *testing.T) {
	if CheckParity([]byte{1, 2, 3}) {
		t.Error("3-byte input should fail")
	}
	AttachParity([]byte{1, 2, 3}) // must not panic
}

func TestChecksumEmpty(t *testing.T) {
	if Checksum(nil) != 0 {
		t.Error("empty checksum should be 0")
	}
}
