package modes

import "fmt"

// OperationalStatus is a TC 31 aircraft operational status message
// (subtype 0, airborne). The calibration network uses the advertised
// ADS-B version and accuracy categories as part of capability
// verification: a node that claims to decode DO-260B traffic should be
// producing version-2 status messages with plausible NACp/SIL values.
type OperationalStatus struct {
	// Version is the ADS-B version (0, 1 or 2).
	Version int
	// NICSupplementA augments the navigation integrity category.
	NICSupplementA bool
	// NACp is the navigation accuracy category for position (0–11).
	NACp int
	// SIL is the source integrity level (0–3).
	SIL int
	// CapabilityClass and OperationalMode are carried opaquely.
	CapabilityClass uint16
	OperationalMode uint16
}

// TCOperationalStatus is the type code for operational status messages.
const TCOperationalStatus TypeCode = 31

// TypeCode implements Message.
func (m *OperationalStatus) TypeCode() TypeCode { return TCOperationalStatus }

func (m *OperationalStatus) appendME(me []byte) error {
	if m.Version < 0 || m.Version > 2 {
		return fmt.Errorf("modes: ADS-B version %d out of range", m.Version)
	}
	if m.NACp < 0 || m.NACp > 11 {
		return fmt.Errorf("modes: NACp %d out of range", m.NACp)
	}
	if m.SIL < 0 || m.SIL > 3 {
		return fmt.Errorf("modes: SIL %d out of range", m.SIL)
	}
	meSetBits(me, 0, 5, uint64(TCOperationalStatus))
	meSetBits(me, 5, 3, 0) // subtype 0: airborne
	meSetBits(me, 8, 16, uint64(m.CapabilityClass))
	meSetBits(me, 24, 16, uint64(m.OperationalMode))
	meSetBits(me, 40, 3, uint64(m.Version))
	if m.NICSupplementA {
		meSetBits(me, 43, 1, 1)
	}
	meSetBits(me, 44, 4, uint64(m.NACp))
	meSetBits(me, 50, 2, uint64(m.SIL))
	return nil
}

func (m *OperationalStatus) decodeME(me []byte) error {
	st := meBits(me, 5, 3)
	if st != 0 {
		return fmt.Errorf("modes: operational status subtype %d unsupported", st)
	}
	m.CapabilityClass = uint16(meBits(me, 8, 16))
	m.OperationalMode = uint16(meBits(me, 24, 16))
	m.Version = int(meBits(me, 40, 3))
	m.NICSupplementA = meBits(me, 43, 1) == 1
	m.NACp = int(meBits(me, 44, 4))
	m.SIL = int(meBits(me, 50, 2))
	return nil
}
