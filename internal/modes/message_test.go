package modes

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDecodeRealIdentificationFrame(t *testing.T) {
	f, err := Decode(mustHex(t, riddleIdentFrame))
	if err != nil {
		t.Fatal(err)
	}
	if f.ICAO.String() != "4840D6" {
		t.Errorf("ICAO = %s, want 4840D6", f.ICAO)
	}
	id, ok := f.Msg.(*Identification)
	if !ok {
		t.Fatalf("message type %T, want Identification", f.Msg)
	}
	if id.Callsign != "KLM1023" {
		t.Errorf("callsign = %q, want KLM1023", id.Callsign)
	}
}

func TestDecodeRealPositionFrame(t *testing.T) {
	f, err := Decode(mustHex(t, riddlePositionFrame))
	if err != nil {
		t.Fatal(err)
	}
	pos, ok := f.Msg.(*AirbornePosition)
	if !ok {
		t.Fatalf("message type %T, want AirbornePosition", f.Msg)
	}
	if !pos.AltValid || pos.AltitudeFt != 38000 {
		t.Errorf("altitude = %d (valid=%v), want 38000", pos.AltitudeFt, pos.AltValid)
	}
	if pos.TC != 11 {
		t.Errorf("TC = %d, want 11", pos.TC)
	}
}

func TestIdentificationRoundTrip(t *testing.T) {
	for _, cs := range []string{"UAL123", "N172SP", "KLM1023", "A", "ABCDEFGH", ""} {
		in := &Frame{ICAO: 0xABCDEF, Capability: 5, Msg: &Identification{TC: 4, Category: 3, Callsign: cs}}
		wire, err := in.Encode()
		if err != nil {
			t.Fatalf("%q: %v", cs, err)
		}
		out, err := Decode(wire)
		if err != nil {
			t.Fatalf("%q: %v", cs, err)
		}
		if out.ICAO != 0xABCDEF || out.Capability != 5 {
			t.Errorf("%q: header fields lost", cs)
		}
		id := out.Msg.(*Identification)
		if id.Callsign != cs || id.TC != 4 || id.Category != 3 {
			t.Errorf("%q: decoded %+v", cs, id)
		}
	}
}

func TestCallsignRejectsInvalid(t *testing.T) {
	if _, err := EncodeCallsign("lower"); err == nil {
		t.Error("lowercase should be rejected")
	}
	if _, err := EncodeCallsign("TOOLONG123"); err == nil {
		t.Error("9+ characters should be rejected")
	}
	if _, err := EncodeCallsign("AB-1"); err == nil {
		t.Error("dash should be rejected")
	}
}

func TestCallsignPropertyRoundTrip(t *testing.T) {
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	f := func(seed uint64, n uint8) bool {
		ln := int(n % 9)
		var sb strings.Builder
		for i := 0; i < ln; i++ {
			sb.WriteByte(alphabet[(seed>>uint(i*4))%uint64(len(alphabet))])
		}
		cs := sb.String()
		bits, err := EncodeCallsign(cs)
		if err != nil {
			return false
		}
		return DecodeCallsign(bits) == cs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAltitudeRoundTrip(t *testing.T) {
	for _, ft := range []int{-1000, -975, 0, 1000, 10000, 38000, 50175} {
		field, err := EncodeAltitude(ft)
		if err != nil {
			t.Fatalf("%d ft: %v", ft, err)
		}
		got, ok := DecodeAltitude(field)
		if !ok || got != ft {
			t.Errorf("altitude %d -> field %03X -> %d (ok=%v)", ft, field, got, ok)
		}
	}
}

func TestAltitudeQuantizesTo25ft(t *testing.T) {
	field, err := EncodeAltitude(10012) // not a multiple of 25 above -1000
	if err != nil {
		t.Fatal(err)
	}
	got, _ := DecodeAltitude(field)
	if got != 10000 {
		t.Errorf("10012 ft should truncate to 10000, got %d", got)
	}
}

func TestAltitudeRange(t *testing.T) {
	if _, err := EncodeAltitude(-1025); err == nil {
		t.Error("below -1000 should error")
	}
	if _, err := EncodeAltitude(50200); err == nil {
		t.Error("above 50175 should error")
	}
	if _, ok := DecodeAltitude(0); ok {
		t.Error("zero field means unavailable")
	}
	if _, ok := DecodeAltitude(0x20); ok { // Q-bit clear
		t.Error("Gillham altitude should be unsupported")
	}
}

func TestAirbornePositionRoundTrip(t *testing.T) {
	lat, lon := 37.9, -122.1
	for _, odd := range []bool{false, true} {
		in := &Frame{
			ICAO: 0xA1B2C3,
			Msg: &AirbornePosition{
				TC: 11, SurvStatus: 0, AltitudeFt: 35000, AltValid: true,
				CPR: EncodeCPR(lat, lon, odd),
			},
		}
		wire, err := in.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if len(wire) != FrameLength {
			t.Fatalf("wire length %d", len(wire))
		}
		out, err := Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		pos := out.Msg.(*AirbornePosition)
		if pos.CPR != in.Msg.(*AirbornePosition).CPR {
			t.Errorf("CPR fields differ: %+v vs %+v", pos.CPR, in.Msg.(*AirbornePosition).CPR)
		}
		if pos.AltitudeFt != 35000 || !pos.AltValid {
			t.Errorf("altitude lost: %+v", pos)
		}
	}
}

func TestPositionPairDecodesEndToEnd(t *testing.T) {
	// Full pipeline: encode even+odd position frames, decode both, run
	// CPR global decode, recover the position.
	lat, lon := 37.8716, -122.2727
	mk := func(odd bool) CPRPosition {
		f := &Frame{ICAO: 0x123456, Msg: &AirbornePosition{TC: 10, AltitudeFt: 12000, AltValid: true, CPR: EncodeCPR(lat, lon, odd)}}
		wire, err := f.Encode()
		if err != nil {
			t.Fatal(err)
		}
		out, err := Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		return out.Msg.(*AirbornePosition).CPR
	}
	glat, glon, err := DecodeCPRGlobal(mk(false), mk(true), true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(glat-lat) > 1e-3 || math.Abs(glon-lon) > 1e-3 {
		t.Errorf("end-to-end position (%v,%v), want (%v,%v)", glat, glon, lat, lon)
	}
}

func TestVelocityRoundTrip(t *testing.T) {
	cases := []Velocity{
		{GroundSpeedKt: 450, TrackDeg: 45, VerticalRateFtMin: 1280},
		{GroundSpeedKt: 120, TrackDeg: 0, VerticalRateFtMin: -640},
		{GroundSpeedKt: 300, TrackDeg: 270, VerticalRateFtMin: 0},
		{GroundSpeedKt: 250, TrackDeg: 359, VerticalRateFtMin: 64},
		{GroundSpeedKt: 500, TrackDeg: 180.0, VerticalRateFtMin: 3200},
	}
	for _, v := range cases {
		in := &Frame{ICAO: 0x7C4321, Msg: &v}
		wire, err := in.Encode()
		if err != nil {
			t.Fatalf("%+v: %v", v, err)
		}
		out, err := Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		got := out.Msg.(*Velocity)
		if math.Abs(got.GroundSpeedKt-v.GroundSpeedKt) > 1.5 {
			t.Errorf("speed %v -> %v", v.GroundSpeedKt, got.GroundSpeedKt)
		}
		dt := math.Abs(got.TrackDeg - v.TrackDeg)
		if dt > 180 {
			dt = 360 - dt
		}
		if dt > 1 {
			t.Errorf("track %v -> %v", v.TrackDeg, got.TrackDeg)
		}
		if got.VerticalRateFtMin != v.VerticalRateFtMin {
			t.Errorf("vrate %v -> %v", v.VerticalRateFtMin, got.VerticalRateFtMin)
		}
	}
}

func TestVelocityPropertyRoundTrip(t *testing.T) {
	f := func(spdSeed, trkSeed uint16) bool {
		v := Velocity{
			GroundSpeedKt: float64(spdSeed % 900),
			TrackDeg:      float64(trkSeed) / 65535 * 360,
		}
		in := &Frame{ICAO: 1, Msg: &v}
		wire, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := Decode(wire)
		if err != nil {
			return false
		}
		got := out.Msg.(*Velocity)
		if math.Abs(got.GroundSpeedKt-v.GroundSpeedKt) > 1.5 {
			return false
		}
		if v.GroundSpeedKt > 5 { // track undefined at very low speed
			dt := math.Abs(got.TrackDeg - v.TrackDeg)
			if dt > 180 {
				dt = 360 - dt
			}
			// 1 kt component quantization bounds the track error by
			// roughly atan(1/speed); scale the tolerance accordingly.
			if dt > 2+120/v.GroundSpeedKt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVelocityRejectsSupersonicComponent(t *testing.T) {
	v := Velocity{GroundSpeedKt: 1500, TrackDeg: 90}
	if _, err := (&Frame{ICAO: 1, Msg: &v}).Encode(); err == nil {
		t.Error("1500 kt east component should exceed subsonic encoding")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil frame should error")
	}
	if _, err := Decode(make([]byte, 5)); err == nil {
		t.Error("short frame should error")
	}
	// DF4 frame (not DF17).
	notDF17 := make([]byte, FrameLength)
	notDF17[0] = 4 << 3
	AttachParity(notDF17)
	if _, err := Decode(notDF17); err == nil {
		t.Error("non-DF17 should error")
	}
	// Corrupted parity.
	bad := mustHex(t, riddleIdentFrame)
	bad[5] ^= 0xFF
	if _, err := Decode(bad); err != ErrBadParity {
		t.Errorf("corrupted frame error = %v, want ErrBadParity", err)
	}
	// Unknown type code (TC 28 = aircraft status; unsupported).
	unk := &Frame{ICAO: 1, Msg: &Identification{TC: 1, Callsign: "X"}}
	wire, err := unk.Encode()
	if err != nil {
		t.Fatal(err)
	}
	wire[4] = 28 << 3
	AttachParity(wire)
	if _, err := Decode(wire); err == nil {
		t.Error("unsupported TC should error")
	}
}

func TestEncodeRejectsBadMessages(t *testing.T) {
	if _, err := (&Frame{ICAO: 1}).Encode(); err == nil {
		t.Error("nil message should error")
	}
	if _, err := (&Frame{ICAO: 1, Msg: &Identification{TC: 9, Callsign: "A"}}).Encode(); err == nil {
		t.Error("identification with position TC should error")
	}
	if _, err := (&Frame{ICAO: 1, Msg: &AirbornePosition{TC: 1, AltValid: true, AltitudeFt: 100}}).Encode(); err == nil {
		t.Error("position with identification TC should error")
	}
	if _, err := (&Frame{ICAO: 1, Msg: &AirbornePosition{TC: 9, AltValid: true, AltitudeFt: 99999}}).Encode(); err == nil {
		t.Error("out-of-range altitude should error")
	}
}

func TestMeBitsHelpers(t *testing.T) {
	f := func(val uint32, startSeed, widthSeed uint8) bool {
		start := uint(startSeed) % 40
		width := uint(widthSeed)%17 + 1
		me := make([]byte, 7)
		v := uint64(val) & (1<<width - 1)
		meSetBits(me, start, width, v)
		return meBits(me, start, width) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameString(t *testing.T) {
	f, err := Decode(mustHex(t, riddleIdentFrame))
	if err != nil {
		t.Fatal(err)
	}
	if f.String() == "" {
		t.Error("frame should format")
	}
}
