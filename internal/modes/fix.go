package modes

import "sync"

// CRC-based error repair, as implemented by dump1090's --fix option.
//
// The Mode S CRC-24 is a linear code: flipping bit i of a frame XORs a
// fixed syndrome S(i) into the checksum residual. A single bit error is
// therefore repairable by looking the residual up in a syndrome table,
// and a two-bit error by searching pairs whose syndromes XOR to the
// residual. Repair trades undetected-error risk for sensitivity — real
// receivers enable one-bit repair by default and two-bit repair only on
// strong signals — so both are optional here and benchmarked as an
// ablation.

// syndromeTable maps the CRC residual produced by a single bit flip at
// position i (MSB-first across the 112-bit frame) back to i.
var (
	syndromeOnce  sync.Once
	syndromeByBit [FrameLength * 8]uint32
	bitBySyndrome map[uint32]int
)

func initSyndromes() {
	bitBySyndrome = make(map[uint32]int, FrameLength*8)
	zero := make([]byte, FrameLength)
	base := Checksum(zero[:FrameLength-3])
	for bit := 0; bit < FrameLength*8; bit++ {
		frame := make([]byte, FrameLength)
		BitError(frame, bit)
		var syn uint32
		if bit < (FrameLength-3)*8 {
			// Flip in the data part changes the computed CRC.
			syn = Checksum(frame[:FrameLength-3]) ^ base
		} else {
			// Flip in the parity field changes the stored CRC.
			syn = uint32(frame[FrameLength-3])<<16 |
				uint32(frame[FrameLength-2])<<8 |
				uint32(frame[FrameLength-1])
		}
		syndromeByBit[bit] = syn
		bitBySyndrome[syn] = bit
	}
}

// residual returns stored-CRC XOR computed-CRC; zero means parity passes.
func residual(frame []byte) uint32 {
	stored := uint32(frame[FrameLength-3])<<16 |
		uint32(frame[FrameLength-2])<<8 |
		uint32(frame[FrameLength-1])
	return stored ^ Checksum(frame[:FrameLength-3])
}

// FixSingleBit attempts to repair one flipped bit in a 14-byte frame. It
// returns the corrected bit position and true on success; the frame is
// modified in place. Frames that already pass parity return (-1, true).
func FixSingleBit(frame []byte) (bit int, ok bool) {
	if len(frame) != FrameLength {
		return -1, false
	}
	syndromeOnce.Do(initSyndromes)
	r := residual(frame)
	if r == 0 {
		return -1, true
	}
	b, found := bitBySyndrome[r]
	if !found {
		return -1, false
	}
	BitError(frame, b)
	return b, true
}

// FixTwoBits attempts to repair up to two flipped bits. Single-bit repair
// is tried first. The two-bit search is O(n) using the syndrome table:
// for each candidate first bit, the required second-bit syndrome is the
// residual XOR the first syndrome. Returns the repaired bit positions
// (second may be -1 if only one flip was needed).
func FixTwoBits(frame []byte) (bits [2]int, ok bool) {
	bits = [2]int{-1, -1}
	if len(frame) != FrameLength {
		return bits, false
	}
	syndromeOnce.Do(initSyndromes)
	r := residual(frame)
	if r == 0 {
		return bits, true
	}
	if b, found := bitBySyndrome[r]; found {
		BitError(frame, b)
		bits[0] = b
		return bits, true
	}
	for b1 := 0; b1 < FrameLength*8; b1++ {
		need := r ^ syndromeByBit[b1]
		if b2, found := bitBySyndrome[need]; found && b2 > b1 {
			BitError(frame, b1)
			BitError(frame, b2)
			bits[0], bits[1] = b1, b2
			return bits, true
		}
	}
	return bits, false
}
