package modes

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMovementEncodeKnownValues(t *testing.T) {
	cases := []struct {
		kt   float64
		code uint8
	}{
		{0, 1}, {0.1, 1}, {0.125, 2}, {0.5, 5}, {1.0, 9}, {1.75, 12},
		{2.0, 13}, {15, 39}, {69, 93}, {70, 94}, {99, 108}, {100, 109},
		{170, 123}, {175, 124}, {500, 124},
	}
	for _, c := range cases {
		got, err := EncodeMovement(c.kt)
		if err != nil {
			t.Fatalf("%v kt: %v", c.kt, err)
		}
		if got != c.code {
			t.Errorf("EncodeMovement(%v) = %d, want %d", c.kt, got, c.code)
		}
	}
	if _, err := EncodeMovement(-1); err == nil {
		t.Error("negative speed should error")
	}
	if code, err := EncodeMovement(math.NaN()); err != nil || code != 0 {
		t.Error("NaN should encode as no-information")
	}
}

func TestMovementDecodeBoundaries(t *testing.T) {
	if _, ok := DecodeMovement(0); ok {
		t.Error("code 0 is no-information")
	}
	if kt, ok := DecodeMovement(1); !ok || kt != 0 {
		t.Error("code 1 is stopped")
	}
	if kt, ok := DecodeMovement(124); !ok || kt != 175 {
		t.Error("code 124 is ≥175 kt")
	}
	if _, ok := DecodeMovement(125); ok {
		t.Error("code 125 is reserved")
	}
}

func TestMovementRoundTripProperty(t *testing.T) {
	f := func(seed uint16) bool {
		kt := float64(seed) / 65535 * 180
		code, err := EncodeMovement(kt)
		if err != nil {
			return false
		}
		got, ok := DecodeMovement(code)
		if !ok {
			return false
		}
		// The decode returns the band's lower edge; error is bounded by
		// the band's step (≤5 kt).
		return got <= kt+1e-9 && kt-got <= 5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSurfaceCPRRoundTrip(t *testing.T) {
	ref := struct{ lat, lon float64 }{37.8716, -122.2727}
	for _, off := range []struct{ dlat, dlon float64 }{
		{0, 0}, {0.02, -0.03}, {-0.1, 0.1}, {0.3, 0.3},
	} {
		lat, lon := ref.lat+off.dlat, ref.lon+off.dlon
		for _, odd := range []bool{false, true} {
			fix := EncodeCPRSurface(lat, lon, odd)
			glat, glon := DecodeCPRSurfaceLocal(fix, ref.lat, ref.lon)
			if math.Abs(glat-lat) > 3e-4 || math.Abs(glon-lon) > 3e-4 {
				t.Errorf("surface CPR odd=%v (%v,%v) -> (%v,%v)", odd, lat, lon, glat, glon)
			}
		}
	}
}

func TestSurfaceCPRFinerThanAirborne(t *testing.T) {
	// The surface grid is 4× finer: a small position change must move the
	// surface-encoded value ~4× more than the airborne one.
	lat, lon := 37.8716, -122.2727
	d := 0.00005
	air1 := EncodeCPR(lat, lon, false)
	air2 := EncodeCPR(lat+d, lon, false)
	surf1 := EncodeCPRSurface(lat, lon, false)
	surf2 := EncodeCPRSurface(lat+d, lon, false)
	airStep := int(air2.LatCPR) - int(air1.LatCPR)
	surfStep := int(surf2.LatCPR) - int(surf1.LatCPR)
	if surfStep < airStep*3 {
		t.Errorf("surface quantization not finer: air %d vs surface %d", airStep, surfStep)
	}
}

func TestSurfacePositionRoundTrip(t *testing.T) {
	ref := struct{ lat, lon float64 }{37.6213, -122.3790} // airport
	in := &Frame{
		ICAO: 0xAD0001,
		Msg: &SurfacePosition{
			TC:            5,
			GroundSpeedKt: 17,
			TrackDeg:      273,
			TrackValid:    true,
			CPR:           EncodeCPRSurface(ref.lat+0.004, ref.lon-0.002, false),
		},
	}
	wire, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	sp, ok := out.Msg.(*SurfacePosition)
	if !ok {
		t.Fatalf("decoded %T", out.Msg)
	}
	if sp.TC != 5 {
		t.Errorf("TC = %d", sp.TC)
	}
	if math.Abs(sp.GroundSpeedKt-17) > 0.5 {
		t.Errorf("speed = %v, want ≈17", sp.GroundSpeedKt)
	}
	if !sp.TrackValid || math.Abs(sp.TrackDeg-273) > 360.0/128 {
		t.Errorf("track = %v (valid=%v), want ≈273", sp.TrackDeg, sp.TrackValid)
	}
	lat, lon := DecodeCPRSurfaceLocal(sp.CPR, ref.lat, ref.lon)
	if math.Abs(lat-(ref.lat+0.004)) > 3e-4 || math.Abs(lon-(ref.lon-0.002)) > 3e-4 {
		t.Errorf("position (%v,%v)", lat, lon)
	}
}

func TestSurfacePositionNoTrack(t *testing.T) {
	in := &Frame{
		ICAO: 0xAD0002,
		Msg: &SurfacePosition{
			TC: 6, GroundSpeedKt: math.NaN(),
			CPR: EncodeCPRSurface(37.62, -122.38, true),
		},
	}
	wire, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	sp := out.Msg.(*SurfacePosition)
	if sp.TrackValid {
		t.Error("track should be invalid")
	}
	if !math.IsNaN(sp.GroundSpeedKt) {
		t.Errorf("speed = %v, want NaN", sp.GroundSpeedKt)
	}
	if !sp.CPR.Odd {
		t.Error("odd flag lost")
	}
}

func TestSurfacePositionRejectsWrongTC(t *testing.T) {
	in := &Frame{ICAO: 1, Msg: &SurfacePosition{TC: 9, CPR: EncodeCPRSurface(0, 0, false)}}
	if _, err := in.Encode(); err == nil {
		t.Error("TC 9 is not a surface position")
	}
}

func TestOperationalStatusRoundTrip(t *testing.T) {
	in := &Frame{
		ICAO: 0xC0FFEE,
		Msg: &OperationalStatus{
			Version: 2, NICSupplementA: true, NACp: 9, SIL: 3,
			CapabilityClass: 0x1234, OperationalMode: 0x00C4,
		},
	}
	wire, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	os, ok := out.Msg.(*OperationalStatus)
	if !ok {
		t.Fatalf("decoded %T", out.Msg)
	}
	if *os != *in.Msg.(*OperationalStatus) {
		t.Errorf("round trip: %+v != %+v", os, in.Msg)
	}
}

func TestOperationalStatusValidation(t *testing.T) {
	bad := []*OperationalStatus{
		{Version: 3}, {Version: -1}, {NACp: 12}, {SIL: 4}, {NACp: -1}, {SIL: -1},
	}
	for _, m := range bad {
		if _, err := (&Frame{ICAO: 1, Msg: m}).Encode(); err == nil {
			t.Errorf("%+v should fail validation", m)
		}
	}
}

func TestNormalizeTrack(t *testing.T) {
	cases := map[float64]float64{0: 0, 360: 0, -10: 350, 725: 5}
	for in, want := range cases {
		if got := NormalizeTrack(in); math.Abs(got-want) > 1e-12 {
			t.Errorf("NormalizeTrack(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestAllCallRoundTrip(t *testing.T) {
	in := AllCall{Capability: 5, ICAO: 0xA1B2C3}
	wire, err := EncodeAllCall(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != ShortFrameLength {
		t.Fatalf("frame length %d", len(wire))
	}
	out, err := DecodeAllCall(wire)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip %+v != %+v", out, in)
	}
}

func TestAllCallErrors(t *testing.T) {
	if _, err := EncodeAllCall(AllCall{Capability: 8}); err == nil {
		t.Error("capability 8 should error")
	}
	if _, err := DecodeAllCall([]byte{1, 2}); err == nil {
		t.Error("short input should error")
	}
	wire, _ := EncodeAllCall(AllCall{Capability: 5, ICAO: 1})
	wire[2] ^= 0xFF
	if _, err := DecodeAllCall(wire); err != ErrBadParity {
		t.Errorf("corrupted frame error = %v", err)
	}
	// A DF17 first byte is not an all-call.
	df17 := make([]byte, ShortFrameLength)
	df17[0] = 17 << 3
	AttachParity(df17)
	if _, err := DecodeAllCall(df17); err == nil {
		t.Error("DF17 should be rejected")
	}
}
