package modes

import (
	"errors"
	"fmt"
	"math"
)

// FrameLength is the byte length of an extended squitter (112 bits).
const FrameLength = 14

// ShortFrameLength is the byte length of a 56-bit Mode S reply; the
// demodulator recognizes both, but only extended squitters carry ADS-B.
const ShortFrameLength = 7

// DF17 is the downlink format number of the ADS-B extended squitter.
const DF17 = 17

// Errors returned by the decoder.
var (
	ErrShortFrame  = errors.New("modes: frame too short")
	ErrBadParity   = errors.New("modes: CRC mismatch")
	ErrNotDF17     = errors.New("modes: not an extended squitter")
	ErrUnknownType = errors.New("modes: unsupported type code")
)

// Message is the interface implemented by every decoded ME payload,
// following the gopacket DecodingLayer style: decode from wire bits,
// serialize back to wire bits.
type Message interface {
	// TypeCode returns the ME type code.
	TypeCode() TypeCode
	// appendME writes the 7-byte ME field.
	appendME(me []byte) error
	// decodeME parses the 7-byte ME field.
	decodeME(me []byte) error
}

// Frame is a decoded DF17 extended squitter.
type Frame struct {
	DF         int  // downlink format (17)
	Capability int  // CA field
	ICAO       ICAO // airframe address
	Msg        Message
}

// bit field helpers over the 56-bit ME payload.

func meBits(me []byte, start, width uint) uint64 {
	var v uint64
	for i := uint(0); i < width; i++ {
		bit := start + i
		v = v<<1 | uint64(me[bit/8]>>(7-bit%8)&1)
	}
	return v
}

func meSetBits(me []byte, start, width uint, val uint64) {
	for i := uint(0); i < width; i++ {
		bit := start + width - 1 - i
		if val>>i&1 != 0 {
			me[bit/8] |= 1 << (7 - bit%8)
		} else {
			me[bit/8] &^= 1 << (7 - bit%8)
		}
	}
}

// Identification is a TC 1–4 aircraft identification message.
type Identification struct {
	TC       TypeCode // 1..4 (aircraft category class)
	Category int      // 3-bit emitter category
	Callsign string
}

// TypeCode implements Message.
func (m *Identification) TypeCode() TypeCode { return m.TC }

func (m *Identification) appendME(me []byte) error {
	if !m.TC.IsIdentification() {
		return fmt.Errorf("modes: identification with TC %d", m.TC)
	}
	cs, err := EncodeCallsign(m.Callsign)
	if err != nil {
		return err
	}
	meSetBits(me, 0, 5, uint64(m.TC))
	meSetBits(me, 5, 3, uint64(m.Category))
	meSetBits(me, 8, 48, cs)
	return nil
}

func (m *Identification) decodeME(me []byte) error {
	m.TC = TypeCode(meBits(me, 0, 5))
	m.Category = int(meBits(me, 5, 3))
	m.Callsign = DecodeCallsign(meBits(me, 8, 48))
	return nil
}

// AirbornePosition is a TC 9–18 airborne position message carrying a CPR
// fix and barometric altitude.
type AirbornePosition struct {
	TC            TypeCode
	SurvStatus    int
	SingleAntenna bool
	AltitudeFt    int
	AltValid      bool
	UTCSync       bool
	CPR           CPRPosition
}

// TypeCode implements Message.
func (m *AirbornePosition) TypeCode() TypeCode { return m.TC }

func (m *AirbornePosition) appendME(me []byte) error {
	if !m.TC.IsAirbornePosition() {
		return fmt.Errorf("modes: airborne position with TC %d", m.TC)
	}
	meSetBits(me, 0, 5, uint64(m.TC))
	meSetBits(me, 5, 2, uint64(m.SurvStatus))
	if m.SingleAntenna {
		meSetBits(me, 7, 1, 1)
	}
	if m.AltValid {
		alt, err := EncodeAltitude(m.AltitudeFt)
		if err != nil {
			return err
		}
		meSetBits(me, 8, 12, uint64(alt))
	}
	if m.UTCSync {
		meSetBits(me, 20, 1, 1)
	}
	if m.CPR.Odd {
		meSetBits(me, 21, 1, 1)
	}
	meSetBits(me, 22, 17, uint64(m.CPR.LatCPR))
	meSetBits(me, 39, 17, uint64(m.CPR.LonCPR))
	return nil
}

func (m *AirbornePosition) decodeME(me []byte) error {
	m.TC = TypeCode(meBits(me, 0, 5))
	m.SurvStatus = int(meBits(me, 5, 2))
	m.SingleAntenna = meBits(me, 7, 1) == 1
	m.AltitudeFt, m.AltValid = DecodeAltitude(uint16(meBits(me, 8, 12)))
	m.UTCSync = meBits(me, 20, 1) == 1
	m.CPR = CPRPosition{
		Odd:    meBits(me, 21, 1) == 1,
		LatCPR: uint32(meBits(me, 22, 17)),
		LonCPR: uint32(meBits(me, 39, 17)),
	}
	return nil
}

// Velocity is a TC 19 subtype 1 ground-speed message.
type Velocity struct {
	// GroundSpeedKt and TrackDeg describe the horizontal velocity.
	GroundSpeedKt float64
	TrackDeg      float64
	// VerticalRateFtMin is positive climbing.
	VerticalRateFtMin int
}

// TypeCode implements Message.
func (m *Velocity) TypeCode() TypeCode { return TCVelocity }

func (m *Velocity) appendME(me []byte) error {
	meSetBits(me, 0, 5, uint64(TCVelocity))
	meSetBits(me, 5, 3, 1) // subtype 1: ground speed, subsonic
	rad := m.TrackDeg * math.Pi / 180
	vew := m.GroundSpeedKt * math.Sin(rad)
	vns := m.GroundSpeedKt * math.Cos(rad)
	encodeComponent := func(v float64, signBit, valBit uint) error {
		mag := int(math.Round(math.Abs(v)))
		if mag > 1021 {
			return fmt.Errorf("modes: velocity component %d kt exceeds subsonic encoding", mag)
		}
		if v < 0 {
			meSetBits(me, signBit, 1, 1)
		}
		meSetBits(me, valBit, 10, uint64(mag+1))
		return nil
	}
	// Direction bits per DO-260B: 1 = toward west / toward south, so the
	// sign bit is simply the sign of the east/north component.
	if err := encodeComponent(vew, 13, 14); err != nil {
		return err
	}
	if err := encodeComponent(vns, 24, 25); err != nil {
		return err
	}
	// Vertical rate: 9 bits in 64 ft/min units, sign bit 1 = down.
	vr := m.VerticalRateFtMin
	srBit := uint64(0)
	if vr < 0 {
		srBit = 1
		vr = -vr
	}
	units := vr / 64
	if units > 510 {
		units = 510
	}
	meSetBits(me, 35, 1, 0) // VR source: geometric
	meSetBits(me, 36, 1, srBit)
	meSetBits(me, 37, 9, uint64(units+1))
	return nil
}

func (m *Velocity) decodeME(me []byte) error {
	st := meBits(me, 5, 3)
	if st != 1 && st != 2 {
		return fmt.Errorf("modes: velocity subtype %d unsupported", st)
	}
	decodeComponent := func(signBit, valBit uint) (float64, bool) {
		raw := meBits(me, valBit, 10)
		if raw == 0 {
			return 0, false
		}
		v := float64(raw - 1)
		if meBits(me, signBit, 1) == 1 {
			v = -v
		}
		return v, true
	}
	vew, ok1 := decodeComponent(13, 14) // positive = east (sign bit means west)
	vns, ok2 := decodeComponent(24, 25) // positive = north (sign bit means south)
	if !ok1 || !ok2 {
		return fmt.Errorf("modes: velocity components unavailable")
	}
	m.GroundSpeedKt = math.Hypot(vew, vns)
	m.TrackDeg = math.Atan2(vew, vns) * 180 / math.Pi
	if m.TrackDeg < 0 {
		m.TrackDeg += 360
	}
	vrRaw := meBits(me, 37, 9)
	if vrRaw > 0 {
		vr := int(vrRaw-1) * 64
		if meBits(me, 36, 1) == 1 {
			vr = -vr
		}
		m.VerticalRateFtMin = vr
	}
	return nil
}

// Encode serializes the frame into a 14-byte DF17 extended squitter with
// valid parity.
func (f *Frame) Encode() ([]byte, error) {
	if f.Msg == nil {
		return nil, fmt.Errorf("modes: frame has no message")
	}
	out := make([]byte, FrameLength)
	df := f.DF
	if df == 0 {
		df = DF17
	}
	out[0] = byte(df)<<3 | byte(f.Capability&0x7)
	out[1] = byte(f.ICAO >> 16)
	out[2] = byte(f.ICAO >> 8)
	out[3] = byte(f.ICAO)
	if err := f.Msg.appendME(out[4:11]); err != nil {
		return nil, err
	}
	AttachParity(out)
	return out, nil
}

// Decode parses a 14-byte extended squitter, checking parity and
// dispatching on the type code.
func Decode(frame []byte) (*Frame, error) {
	if len(frame) < FrameLength {
		return nil, ErrShortFrame
	}
	frame = frame[:FrameLength]
	df := int(frame[0] >> 3)
	if df != DF17 {
		return nil, fmt.Errorf("%w: DF%d", ErrNotDF17, df)
	}
	if !CheckParity(frame) {
		return nil, ErrBadParity
	}
	f := &Frame{
		DF:         df,
		Capability: int(frame[0] & 0x7),
		ICAO:       ICAO(uint32(frame[1])<<16 | uint32(frame[2])<<8 | uint32(frame[3])),
	}
	me := frame[4:11]
	tc := TypeCode(meBits(me, 0, 5))
	var msg Message
	switch {
	case tc.IsIdentification():
		msg = &Identification{}
	case tc.IsSurfacePosition():
		msg = &SurfacePosition{}
	case tc.IsAirbornePosition():
		msg = &AirbornePosition{}
	case tc.IsVelocity():
		msg = &Velocity{}
	case tc == TCOperationalStatus:
		msg = &OperationalStatus{}
	default:
		return nil, fmt.Errorf("%w: TC %d", ErrUnknownType, tc)
	}
	if err := msg.decodeME(me); err != nil {
		return nil, err
	}
	f.Msg = msg
	return f, nil
}

func (f *Frame) String() string {
	return fmt.Sprintf("DF%d %s TC%d %T", f.DF, f.ICAO, f.Msg.TypeCode(), f.Msg)
}
