package modes

import (
	"fmt"
	"math"
)

// Surface position messages (TC 5–8) report taxiing aircraft: a CPR fix
// on a finer 90° grid, a non-linearly quantized ground speed ("movement")
// and the ground track. The calibration system benefits from them because
// airport surface traffic provides dense, slow-moving, low-elevation
// signal sources — a harsh test of a sensor's horizon visibility.

// SurfacePosition is a TC 5–8 surface position message.
type SurfacePosition struct {
	TC TypeCode // 5..8
	// GroundSpeedKt is the decoded movement (NaN when unavailable).
	GroundSpeedKt float64
	// TrackDeg is the ground track; TrackValid gates it.
	TrackDeg   float64
	TrackValid bool
	CPR        CPRPosition
}

// IsSurfacePosition reports whether tc is a surface position code.
func (tc TypeCode) IsSurfacePosition() bool { return tc >= 5 && tc <= 8 }

// TypeCode implements Message.
func (m *SurfacePosition) TypeCode() TypeCode { return m.TC }

// movement field encoding per DO-260B table 2-6: a piecewise-linear
// quantization from 0.125 kt steps near zero to 5 kt steps at speed.
type movementBand struct {
	firstCode int
	lastCode  int
	baseKt    float64
	stepKt    float64
}

var movementBands = []movementBand{
	{2, 8, 0.125, 0.125},
	{9, 12, 1.0, 0.25},
	{13, 38, 2.0, 0.5},
	{39, 93, 15.0, 1.0},
	{94, 108, 70.0, 2.0},
	{109, 123, 100.0, 5.0},
}

// EncodeMovement quantizes a ground speed in knots into the 7-bit
// movement field. Speeds at or above 175 kt saturate at code 124.
func EncodeMovement(kt float64) (uint8, error) {
	switch {
	case math.IsNaN(kt):
		return 0, nil // information unavailable
	case kt < 0:
		return 0, fmt.Errorf("modes: negative ground speed %v", kt)
	case kt < 0.125:
		return 1, nil // stopped
	case kt >= 175:
		return 124, nil
	}
	for _, b := range movementBands {
		top := b.baseKt + float64(b.lastCode-b.firstCode+1)*b.stepKt
		if kt < top {
			code := b.firstCode + int((kt-b.baseKt)/b.stepKt)
			if code < b.firstCode {
				code = b.firstCode
			}
			if code > b.lastCode {
				code = b.lastCode
			}
			return uint8(code), nil
		}
	}
	return 124, nil
}

// DecodeMovement returns the speed in knots for a movement code (the
// band's lower edge, as receivers conventionally report). ok is false for
// code 0 (no information) and reserved codes.
func DecodeMovement(code uint8) (kt float64, ok bool) {
	switch {
	case code == 0:
		return math.NaN(), false
	case code == 1:
		return 0, true
	case code == 124:
		return 175, true
	case code > 124:
		return math.NaN(), false
	}
	for _, b := range movementBands {
		if int(code) >= b.firstCode && int(code) <= b.lastCode {
			return b.baseKt + float64(int(code)-b.firstCode)*b.stepKt, true
		}
	}
	return math.NaN(), false
}

func (m *SurfacePosition) appendME(me []byte) error {
	if !m.TC.IsSurfacePosition() {
		return fmt.Errorf("modes: surface position with TC %d", m.TC)
	}
	mov, err := EncodeMovement(m.GroundSpeedKt)
	if err != nil {
		return err
	}
	meSetBits(me, 0, 5, uint64(m.TC))
	meSetBits(me, 5, 7, uint64(mov))
	if m.TrackValid {
		meSetBits(me, 12, 1, 1)
		trk := uint64(math.Round(NormalizeTrack(m.TrackDeg)/360*128)) % 128
		meSetBits(me, 13, 7, trk)
	}
	if m.CPR.Odd {
		meSetBits(me, 21, 1, 1)
	}
	meSetBits(me, 22, 17, uint64(m.CPR.LatCPR))
	meSetBits(me, 39, 17, uint64(m.CPR.LonCPR))
	return nil
}

func (m *SurfacePosition) decodeME(me []byte) error {
	m.TC = TypeCode(meBits(me, 0, 5))
	kt, _ := DecodeMovement(uint8(meBits(me, 5, 7)))
	m.GroundSpeedKt = kt
	m.TrackValid = meBits(me, 12, 1) == 1
	if m.TrackValid {
		m.TrackDeg = float64(meBits(me, 13, 7)) * 360 / 128
	}
	m.CPR = CPRPosition{
		Odd:    meBits(me, 21, 1) == 1,
		LatCPR: uint32(meBits(me, 22, 17)),
		LonCPR: uint32(meBits(me, 39, 17)),
	}
	return nil
}

// NormalizeTrack maps any angle into [0, 360).
func NormalizeTrack(deg float64) float64 {
	m := math.Mod(deg, 360)
	if m < 0 {
		m += 360
	}
	return m
}

// EncodeCPRSurface encodes a position in the surface CPR format, which
// uses a 90° latitude span (4× finer than airborne).
func EncodeCPRSurface(lat, lon float64, odd bool) CPRPosition {
	i := 0.0
	if odd {
		i = 1
	}
	dlat := 90.0 / (4*cprNZ - i)
	yz := math.Floor(cprScale*pmod(lat, dlat)/dlat + 0.5)
	rlat := dlat * (yz/cprScale + math.Floor(lat/dlat))
	nl := float64(cprNL(rlat))
	dlon := 90.0
	if nl-i > 0 {
		dlon = 90.0 / (nl - i)
	}
	xz := math.Floor(cprScale*pmod(lon, dlon)/dlon + 0.5)
	return CPRPosition{
		LatCPR: uint32(pmod(yz, cprScale)),
		LonCPR: uint32(pmod(xz, cprScale)),
		Odd:    odd,
	}
}

// DecodeCPRSurfaceLocal decodes a surface CPR fix against a reference
// position known to be within about 45 NM (the receiver location — always
// true for surface traffic the sensor can hear).
func DecodeCPRSurfaceLocal(fix CPRPosition, refLat, refLon float64) (lat, lon float64) {
	i := 0.0
	if fix.Odd {
		i = 1
	}
	dlat := 90.0 / (4*cprNZ - i)
	latCPR := float64(fix.LatCPR) / cprScale
	j := math.Floor(refLat/dlat) + math.Floor(0.5+pmod(refLat, dlat)/dlat-latCPR)
	lat = dlat * (j + latCPR)

	nl := float64(cprNL(lat))
	dlon := 90.0
	if nl-i > 0 {
		dlon = 90.0 / (nl - i)
	}
	lonCPR := float64(fix.LonCPR) / cprScale
	m := math.Floor(refLon/dlon) + math.Floor(0.5+pmod(refLon, dlon)/dlon-lonCPR)
	lon = dlon * (m + lonCPR)
	return lat, lon
}
