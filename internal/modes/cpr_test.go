package modes

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCprNLKnownValues(t *testing.T) {
	// Expected values follow the DO-260B transition-latitude table: e.g.
	// NL=47 for latitudes in [36.85025108, 38.41241892).
	cases := []struct {
		lat  float64
		want int
	}{
		{0, 59}, {5, 59}, {10.2, 59}, {12, 58}, {30, 51}, {37.87, 47},
		{52.2572, 36}, {80, 10}, {87, 2}, {88, 1}, {90, 1}, {-37.87, 47}, {-88, 1},
	}
	for _, c := range cases {
		if got := cprNL(c.lat); got != c.want {
			t.Errorf("NL(%v) = %d, want %d", c.lat, got, c.want)
		}
	}
}

func TestCprNLMonotoneNonIncreasing(t *testing.T) {
	prev := 60
	for lat := 0.0; lat <= 90; lat += 0.1 {
		nl := cprNL(lat)
		if nl > prev {
			t.Fatalf("NL increased at lat %v: %d after %d", lat, nl, prev)
		}
		prev = nl
	}
}

func TestGlobalDecodeRiddleReference(t *testing.T) {
	// The classic worked example from "The 1090 MHz Riddle": the two KLM
	// frames decode to (52.2572, 3.91937).
	even := CPRPosition{LatCPR: 93000, LonCPR: 51372, Odd: false}
	odd := CPRPosition{LatCPR: 74158, LonCPR: 50194, Odd: true}
	lat, lon, err := DecodeCPRGlobal(even, odd, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lat-52.2572) > 0.001 || math.Abs(lon-3.91937) > 0.001 {
		t.Errorf("decoded (%v, %v), want (52.2572, 3.91937)", lat, lon)
	}
}

func TestGlobalDecodeRoundTrip(t *testing.T) {
	positions := []struct{ lat, lon float64 }{
		{37.8716, -122.2727}, // the testbed building
		{52.2572, 3.91937},
		{-33.94, 151.18},
		{0.01, 0.01},
		{64.5, -21.9},
		{-45.0, 170.5},
	}
	for _, p := range positions {
		even := EncodeCPR(p.lat, p.lon, false)
		odd := EncodeCPR(p.lat, p.lon, true)
		lat, lon, err := DecodeCPRGlobal(even, odd, false)
		if err != nil {
			t.Errorf("(%v,%v): %v", p.lat, p.lon, err)
			continue
		}
		// CPR airborne resolution is about 5 m; allow 1e-3 degrees.
		if math.Abs(lat-p.lat) > 1e-3 || math.Abs(lon-p.lon) > 1e-3 {
			t.Errorf("round trip (%v,%v) -> (%v,%v)", p.lat, p.lon, lat, lon)
		}
	}
}

func TestGlobalDecodeRoundTripProperty(t *testing.T) {
	f := func(latSeed, lonSeed uint32) bool {
		lat := float64(latSeed)/math.MaxUint32*160 - 80 // avoid zone-edge poles
		lon := float64(lonSeed)/math.MaxUint32*360 - 180
		even := EncodeCPR(lat, lon, false)
		odd := EncodeCPR(lat, lon, true)
		glat, glon, err := DecodeCPRGlobal(even, odd, true)
		if err != nil {
			// Zone straddle is legitimate only when lat sits within one
			// CPR quantum of a zone boundary; for a same-position pair it
			// should essentially never happen.
			return false
		}
		dlon := math.Abs(glon - lon)
		if dlon > 180 {
			dlon = 360 - dlon
		}
		return math.Abs(glat-lat) < 1e-3 && dlon < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGlobalDecodeRejectsSameParity(t *testing.T) {
	e := EncodeCPR(37, -122, false)
	if _, _, err := DecodeCPRGlobal(e, e, false); err == nil {
		t.Error("two even fixes should be rejected")
	}
	o := EncodeCPR(37, -122, true)
	if _, _, err := DecodeCPRGlobal(o, o, false); err == nil {
		t.Error("swapped parity should be rejected")
	}
}

func TestGlobalDecodeZoneStraddleFails(t *testing.T) {
	// Raw CPR words crafted so the reconstructed even latitude (36.84°)
	// and odd latitude (36.86°) straddle the NL 48→47 transition at
	// 36.85025108° — the decoder must refuse the pair.
	even := CPRPosition{LatCPR: 18350, LonCPR: 1000, Odd: false} // rlatE ≈ 36.84
	odd := CPRPosition{LatCPR: 5367, LonCPR: 1000, Odd: true}    // rlatO ≈ 36.86
	if _, _, err := DecodeCPRGlobal(even, odd, false); err == nil {
		t.Error("fixes straddling a zone boundary should fail")
	}
}

func TestLocalDecodeRoundTrip(t *testing.T) {
	ref := struct{ lat, lon float64 }{37.8716, -122.2727}
	// Aircraft positions within ~180 NM of the reference.
	offsets := []struct{ dlat, dlon float64 }{
		{0, 0}, {0.5, 0.5}, {-0.9, 1.2}, {1.5, -1.5}, {0.01, -0.01},
	}
	for _, off := range offsets {
		lat := ref.lat + off.dlat
		lon := ref.lon + off.dlon
		for _, odd := range []bool{false, true} {
			fix := EncodeCPR(lat, lon, odd)
			glat, glon := DecodeCPRLocal(fix, ref.lat, ref.lon)
			if math.Abs(glat-lat) > 1e-3 || math.Abs(glon-lon) > 1e-3 {
				t.Errorf("local decode odd=%v (%v,%v) -> (%v,%v)", odd, lat, lon, glat, glon)
			}
		}
	}
}

func TestLocalDecodeProperty(t *testing.T) {
	f := func(latSeed, lonSeed, dSeed uint16) bool {
		refLat := float64(latSeed)/65535*140 - 70
		refLon := float64(lonSeed)/65535*360 - 180
		// Offset within ±1 degree: well inside the local-decode region.
		dLat := float64(dSeed)/65535*2 - 1
		dLon := float64(dSeed%97)/97*2 - 1
		lat, lon := refLat+dLat, refLon+dLon
		if lon > 180 {
			lon -= 360
		}
		if lon < -180 {
			lon += 360
		}
		fix := EncodeCPR(lat, lon, dSeed%2 == 0)
		glat, glon := DecodeCPRLocal(fix, refLat, refLon)
		dlon := math.Abs(glon - lon)
		if dlon > 180 {
			dlon = 360 - dlon
		}
		return math.Abs(glat-lat) < 1e-3 && dlon < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEncodeCPRFieldsWithinRange(t *testing.T) {
	f := func(latSeed, lonSeed uint32, odd bool) bool {
		lat := float64(latSeed)/math.MaxUint32*180 - 90
		lon := float64(lonSeed)/math.MaxUint32*360 - 180
		p := EncodeCPR(lat, lon, odd)
		return p.LatCPR < cprScale && p.LonCPR < cprScale && p.Odd == odd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
