package modes

import (
	"fmt"
	"math"
)

// Compact Position Reporting (CPR) encodes latitude/longitude into 17-bit
// fields. Positions alternate between an "even" and an "odd" zone grid; a
// receiver combines one of each (global decode) or uses a known reference
// position (local decode). Implementation follows RTCA DO-260B as
// described in Sun, "The 1090 Megahertz Riddle" (2nd ed.).

// cprNZ is the number of latitude zones between the equator and a pole.
const cprNZ = 15

// cprScale is 2^17, the CPR fraction scale.
const cprScale = 131072

// positive modulo.
func pmod(a, b float64) float64 {
	m := math.Mod(a, b)
	if m < 0 {
		m += b
	}
	return m
}

// cprNL returns the number of longitude zones at a latitude (the "NL"
// function from the standard).
func cprNL(lat float64) int {
	a := math.Abs(lat)
	switch {
	case a == 0:
		return 59
	case a == 87:
		return 2
	case a > 87:
		return 1
	}
	x := 1 - math.Cos(math.Pi/(2*cprNZ))
	c := math.Cos(math.Pi / 180 * a)
	v := 1 - x/(c*c)
	if v < -1 {
		v = -1
	}
	return int(math.Floor(2 * math.Pi / math.Acos(v)))
}

// CPRPosition is one encoded CPR fix.
type CPRPosition struct {
	LatCPR uint32 // 17-bit encoded latitude
	LonCPR uint32 // 17-bit encoded longitude
	Odd    bool   // CPR format flag (F bit)
}

// EncodeCPR encodes a latitude/longitude into the even (odd=false) or odd
// (odd=true) CPR format for airborne position messages.
func EncodeCPR(lat, lon float64, odd bool) CPRPosition {
	i := 0.0
	if odd {
		i = 1
	}
	dlat := 360.0 / (4*cprNZ - i)
	yz := math.Floor(cprScale*pmod(lat, dlat)/dlat + 0.5)
	rlat := dlat * (yz/cprScale + math.Floor(lat/dlat))
	nl := float64(cprNL(rlat))
	dlon := 360.0
	if nl-i > 0 {
		dlon = 360.0 / (nl - i)
	}
	xz := math.Floor(cprScale*pmod(lon, dlon)/dlon + 0.5)
	return CPRPosition{
		LatCPR: uint32(pmod(yz, cprScale)),
		LonCPR: uint32(pmod(xz, cprScale)),
		Odd:    odd,
	}
}

// DecodeCPRGlobal recovers an unambiguous position from an even/odd pair
// of CPR fixes. latestOdd selects which of the two fixes is the more
// recent one (the decoded position corresponds to it). It fails when the
// two fixes straddle a longitude-zone boundary, exactly as a real decoder
// does; callers simply wait for the next pair.
func DecodeCPRGlobal(even, odd CPRPosition, latestOdd bool) (lat, lon float64, err error) {
	if even.Odd || !odd.Odd {
		return 0, 0, fmt.Errorf("modes: global decode needs one even and one odd fix")
	}
	latE := float64(even.LatCPR) / cprScale
	latO := float64(odd.LatCPR) / cprScale
	dlatE := 360.0 / (4 * cprNZ)
	dlatO := 360.0 / (4*cprNZ - 1)

	j := math.Floor(59*latE - 60*latO + 0.5)
	rlatE := dlatE * (pmod(j, 60) + latE)
	rlatO := dlatO * (pmod(j, 59) + latO)
	if rlatE >= 270 {
		rlatE -= 360
	}
	if rlatO >= 270 {
		rlatO -= 360
	}
	if cprNL(rlatE) != cprNL(rlatO) {
		return 0, 0, fmt.Errorf("modes: CPR fixes straddle a zone boundary")
	}

	var rlat, lonCPR float64
	var i float64
	nl := cprNL(rlatE)
	if latestOdd {
		rlat = rlatO
		lonCPR = float64(odd.LonCPR) / cprScale
		i = 1
	} else {
		rlat = rlatE
		lonCPR = float64(even.LonCPR) / cprScale
		i = 0
	}
	ni := math.Max(float64(nl)-i, 1)
	dlon := 360.0 / ni
	lonE := float64(even.LonCPR) / cprScale
	lonO := float64(odd.LonCPR) / cprScale
	m := math.Floor(lonE*(float64(nl)-1) - lonO*float64(nl) + 0.5)
	lon = dlon * (pmod(m, ni) + lonCPR)
	if lon >= 180 {
		lon -= 360
	}
	return rlat, lon, nil
}

// DecodeCPRLocal recovers a position from a single CPR fix using a
// reference position known to be within about 180 NM of the target
// (typically the aircraft's last decoded position, or the receiver site
// for nearby traffic).
func DecodeCPRLocal(fix CPRPosition, refLat, refLon float64) (lat, lon float64) {
	i := 0.0
	if fix.Odd {
		i = 1
	}
	dlat := 360.0 / (4*cprNZ - i)
	latCPR := float64(fix.LatCPR) / cprScale
	j := math.Floor(refLat/dlat) + math.Floor(0.5+pmod(refLat, dlat)/dlat-latCPR)
	lat = dlat * (j + latCPR)

	nl := float64(cprNL(lat))
	dlon := 360.0
	if nl-i > 0 {
		dlon = 360.0 / (nl - i)
	}
	lonCPR := float64(fix.LonCPR) / cprScale
	m := math.Floor(refLon/dlon) + math.Floor(0.5+pmod(refLon, dlon)/dlon-lonCPR)
	lon = dlon * (m + lonCPR)
	return lat, lon
}
