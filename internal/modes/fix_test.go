package modes

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestFixSingleBitEveryPosition(t *testing.T) {
	orig := mustHex(t, riddlePositionFrame)
	for bit := 0; bit < FrameLength*8; bit++ {
		frame := make([]byte, FrameLength)
		copy(frame, orig)
		BitError(frame, bit)
		fixed, ok := FixSingleBit(frame)
		if !ok {
			t.Fatalf("bit %d not repaired", bit)
		}
		if fixed != bit {
			t.Fatalf("bit %d reported as %d", bit, fixed)
		}
		if !bytes.Equal(frame, orig) {
			t.Fatalf("bit %d: frame not restored", bit)
		}
	}
}

func TestFixSingleBitCleanFrame(t *testing.T) {
	frame := mustHex(t, riddleIdentFrame)
	bit, ok := FixSingleBit(frame)
	if !ok || bit != -1 {
		t.Errorf("clean frame: bit=%d ok=%v", bit, ok)
	}
}

func TestFixSingleBitRejectsWrongLength(t *testing.T) {
	if _, ok := FixSingleBit(make([]byte, 7)); ok {
		t.Error("short frame should not repair")
	}
}

func TestFixTwoBitsPairs(t *testing.T) {
	orig := mustHex(t, riddlePositionFrame)
	// A grid of pairs across the frame.
	for a := 0; a < FrameLength*8; a += 11 {
		for b := a + 1; b < FrameLength*8; b += 29 {
			frame := make([]byte, FrameLength)
			copy(frame, orig)
			BitError(frame, a)
			BitError(frame, b)
			bits, ok := FixTwoBits(frame)
			if !ok {
				t.Fatalf("pair (%d,%d) not repaired", a, b)
			}
			if !bytes.Equal(frame, orig) {
				// Two-bit repair can legitimately land on a different
				// pair only if the code had a codeword at distance 4 —
				// the Mode S polynomial guarantees minimum distance 6
				// over 112 bits, so restoration must be exact.
				t.Fatalf("pair (%d,%d) repaired to wrong codeword (reported %v)", a, b, bits)
			}
		}
	}
}

func TestFixTwoBitsSingleFlip(t *testing.T) {
	orig := mustHex(t, riddleIdentFrame)
	frame := make([]byte, FrameLength)
	copy(frame, orig)
	BitError(frame, 42)
	bits, ok := FixTwoBits(frame)
	if !ok || bits[0] != 42 || bits[1] != -1 {
		t.Errorf("single flip via FixTwoBits: bits=%v ok=%v", bits, ok)
	}
	if !bytes.Equal(frame, orig) {
		t.Error("frame not restored")
	}
}

func TestFixTwoBitsProperty(t *testing.T) {
	orig := mustHex(t, riddlePositionFrame)
	f := func(aSeed, bSeed uint16) bool {
		a := int(aSeed) % (FrameLength * 8)
		b := int(bSeed) % (FrameLength * 8)
		if a == b {
			return true
		}
		frame := make([]byte, FrameLength)
		copy(frame, orig)
		BitError(frame, a)
		BitError(frame, b)
		if _, ok := FixTwoBits(frame); !ok {
			return false
		}
		return bytes.Equal(frame, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFixDoesNotInventFramesFromGarbage(t *testing.T) {
	// Heavily corrupted frames (5 flips) must usually fail both repairs;
	// when two-bit repair "succeeds" it lands on a wrong codeword, which
	// is why real receivers gate it on signal strength. Here we only
	// check single-bit repair stays honest.
	orig := mustHex(t, riddlePositionFrame)
	frame := make([]byte, FrameLength)
	copy(frame, orig)
	for _, b := range []int{3, 17, 44, 71, 99} {
		BitError(frame, b)
	}
	if _, ok := FixSingleBit(frame); ok {
		t.Error("5-bit corruption repaired as a single flip")
	}
}

func BenchmarkFixSingleBit(b *testing.B) {
	orig := mustHex(b, riddlePositionFrame)
	frame := make([]byte, FrameLength)
	for i := 0; i < b.N; i++ {
		copy(frame, orig)
		BitError(frame, i%(FrameLength*8))
		if _, ok := FixSingleBit(frame); !ok {
			b.Fatal("repair failed")
		}
	}
}

func BenchmarkFixTwoBits(b *testing.B) {
	orig := mustHex(b, riddlePositionFrame)
	frame := make([]byte, FrameLength)
	for i := 0; i < b.N; i++ {
		copy(frame, orig)
		BitError(frame, i%100)
		BitError(frame, i%100+12)
		if _, ok := FixTwoBits(frame); !ok {
			b.Fatal("repair failed")
		}
	}
}
