// Package modes implements the Mode S extended squitter (ADS-B 1090ES)
// message format: CRC-24 parity, DF17 framing, compact position reporting
// (CPR), velocity and identification payloads.
//
// The API follows the gopacket convention: concrete message types decode
// from and serialize to wire bytes, and a top-level Decode dispatches on
// the downlink format and type code. The subset implemented is exactly
// what dump1090 needs for the paper's §3.1 experiment — airborne position
// (TC 9–18), identification (TC 1–4) and velocity (TC 19) squitters.
package modes

// The Mode S CRC-24 generator polynomial (per RTCA DO-260B / the "1090 MHz
// Riddle"): x^24 + x^23 + x^22 + ... represented as 0xFFF409.
const crcPoly = 0xFFF409

// crcTable is a byte-at-a-time lookup table for the Mode S CRC.
var crcTable [256]uint32

func init() {
	for i := 0; i < 256; i++ {
		c := uint32(i) << 16
		for b := 0; b < 8; b++ {
			if c&0x800000 != 0 {
				c = (c << 1) ^ crcPoly
			} else {
				c <<= 1
			}
		}
		crcTable[i] = c & 0xFFFFFF
	}
}

// Checksum computes the Mode S CRC-24 over data.
func Checksum(data []byte) uint32 {
	var crc uint32
	for _, b := range data {
		crc = ((crc << 8) & 0xFFFFFF) ^ crcTable[((crc>>16)^uint32(b))&0xFF]
	}
	return crc & 0xFFFFFF
}

// AttachParity computes the CRC over frame[:len(frame)-3] and stores it in
// the last three bytes, forming a valid Mode S frame.
func AttachParity(frame []byte) {
	if len(frame) < 4 {
		return
	}
	crc := Checksum(frame[:len(frame)-3])
	frame[len(frame)-3] = byte(crc >> 16)
	frame[len(frame)-2] = byte(crc >> 8)
	frame[len(frame)-1] = byte(crc)
}

// CheckParity reports whether the frame's trailing CRC matches its
// contents. For DF17 squitters the PI field is the plain CRC (interrogator
// ID zero), so the check is an equality test.
func CheckParity(frame []byte) bool {
	if len(frame) < 4 {
		return false
	}
	want := uint32(frame[len(frame)-3])<<16 | uint32(frame[len(frame)-2])<<8 | uint32(frame[len(frame)-1])
	return Checksum(frame[:len(frame)-3]) == want
}

// BitError flips a single bit (0-indexed from the MSB of byte 0) in frame,
// for error-injection tests.
func BitError(frame []byte, bit int) {
	if bit < 0 || bit >= len(frame)*8 {
		return
	}
	frame[bit/8] ^= 1 << (7 - uint(bit%8))
}
