package modes

import "fmt"

// DF11 all-call reply support. Real Mode S transponders emit 56-bit DF11
// acquisition squitters roughly once per second; dump1090 uses them to
// acquire aircraft before any DF17 arrives. They carry only the downlink
// format, capability and ICAO address, protected by the same CRC-24 (the
// PI field, interrogator ID zero for spontaneous squitters).

// DF11 is the all-call downlink format number.
const DF11 = 11

// AllCall is a decoded DF11 acquisition squitter.
type AllCall struct {
	Capability int
	ICAO       ICAO
}

// EncodeAllCall produces the 7-byte DF11 frame.
func EncodeAllCall(ac AllCall) ([]byte, error) {
	if ac.Capability < 0 || ac.Capability > 7 {
		return nil, fmt.Errorf("modes: capability %d out of range", ac.Capability)
	}
	out := make([]byte, ShortFrameLength)
	out[0] = byte(DF11)<<3 | byte(ac.Capability)
	out[1] = byte(ac.ICAO >> 16)
	out[2] = byte(ac.ICAO >> 8)
	out[3] = byte(ac.ICAO)
	AttachParity(out)
	return out, nil
}

// DecodeAllCall parses a 7-byte frame as DF11, verifying parity.
func DecodeAllCall(frame []byte) (AllCall, error) {
	if len(frame) < ShortFrameLength {
		return AllCall{}, ErrShortFrame
	}
	frame = frame[:ShortFrameLength]
	if df := int(frame[0] >> 3); df != DF11 {
		return AllCall{}, fmt.Errorf("modes: DF%d is not an all-call", df)
	}
	if !CheckParity(frame) {
		return AllCall{}, ErrBadParity
	}
	return AllCall{
		Capability: int(frame[0] & 0x7),
		ICAO:       ICAO(uint32(frame[1])<<16 | uint32(frame[2])<<8 | uint32(frame[3])),
	}, nil
}
