package stream

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sensorcal/internal/dsp"
	"sensorcal/internal/obs"
)

// maxFramesBody bounds a POST /api/stream/frames body. A 256-sample
// frame is ~2.8 KB of base64; 8 MB admits ~2900 frames per request,
// far beyond what a single sensor batches.
const maxFramesBody = 8 << 20

// wireFrame is one frame of the /api/stream/frames request body. IQ
// travels as base64 of little-endian float32 pairs (I then Q per
// sample) — 8 bytes/sample before base64, the compact format cheap
// sensors actually emit.
type wireFrame struct {
	Sensor     string    `json:"sensor"`
	At         time.Time `json:"at,omitempty"`
	CenterHz   float64   `json:"center_hz"`
	SampleRate float64   `json:"sample_rate"`
	IQB64      string    `json:"iq_b64"`
}

type framesRequest struct {
	Frames []wireFrame `json:"frames"`
}

type framesResponse struct {
	Accepted int    `json:"accepted"`
	Shed     int    `json:"shed"`
	FFTSize  int    `json:"fft_size"`
	Reason   string `json:"reason,omitempty"`
}

// decodeIQ unpacks base64 LE float32 interleaved IQ into a pooled
// complex slice of exactly want samples. The returned slice belongs to
// the dsp pool; ingest with ReleaseIQ=true returns it.
func decodeIQ(b64 string, want int) ([]complex128, error) {
	raw, err := base64.StdEncoding.DecodeString(b64)
	if err != nil {
		return nil, fmt.Errorf("iq_b64: %w", err)
	}
	if len(raw) != want*8 {
		return nil, fmt.Errorf("iq_b64: %d bytes, want %d (%d float32 pairs)", len(raw), want*8, want)
	}
	iq := dsp.GetComplex(want)
	for i := 0; i < want; i++ {
		re := math.Float32frombits(binary.LittleEndian.Uint32(raw[i*8:]))
		im := math.Float32frombits(binary.LittleEndian.Uint32(raw[i*8+4:]))
		iq[i] = complex(float64(re), float64(im))
	}
	return iq, nil
}

// EncodeIQ is the inverse of the wire decoding — loadgen and tests build
// request bodies with it.
func EncodeIQ(iq []complex128) string {
	raw := make([]byte, len(iq)*8)
	for i, s := range iq {
		binary.LittleEndian.PutUint32(raw[i*8:], math.Float32bits(float32(real(s))))
		binary.LittleEndian.PutUint32(raw[i*8+4:], math.Float32bits(float32(imag(s))))
	}
	return base64.StdEncoding.EncodeToString(raw)
}

// Handler exposes the streaming service over HTTP:
//
//	POST /api/stream/register — {"id":"sensor-1"} → session snapshot
//	POST /api/stream/frames   — {"frames":[{sensor,at,center_hz,sample_rate,iq_b64}]}
//	GET  /api/occupancy?band=lo:hi — time×frequency occupancy buckets
//	GET  /api/stream/stats    — fleet counters (+ ?sensor= for one session)
//
// Every route runs under the RED middleware; shed responses carry
// Retry-After exactly like the trust collector's hardened surface.
func (s *Service) Handler() http.Handler {
	mw := obs.NewMiddleware("stream", s.cfg.Registry, s.cfg.Tracer)
	mux := http.NewServeMux()
	handle := func(route string, h http.HandlerFunc) {
		mux.Handle(route, mw.WrapHandler(route, h))
	}
	handle("/api/stream/register", s.handleRegister)
	handle("/api/stream/frames", s.handleFrames)
	handle("/api/stream/stats", s.handleStats)
	handle("/api/occupancy", s.handleOccupancy)
	return mux
}

func (s *Service) retryAfterHeader(w http.ResponseWriter) {
	obs.SetRetryAfter(w, s.cfg.RetryAfter)
}

func (s *Service) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sess, err := s.Register(req.ID)
	if err != nil {
		if errors.Is(err, ErrSessionLimit) {
			s.retryAfterHeader(w)
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_ = json.NewEncoder(w).Encode(sess.Stats())
}

func (s *Service) handleFrames(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req framesRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxFramesBody)).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Frames) == 0 {
		http.Error(w, "no frames", http.StatusBadRequest)
		return
	}
	resp := framesResponse{FFTSize: s.cfg.FFTSize}
	var lastErr error
	for i := range req.Frames {
		f := &req.Frames[i]
		iq, err := decodeIQ(f.IQB64, s.cfg.FFTSize)
		if err != nil {
			resp.Shed++
			lastErr = err
			s.m.framesShed.With(shedMalformed).Inc()
			continue
		}
		err = s.Ingest(IngestFrame{
			Sensor: f.Sensor, At: f.At,
			CenterHz: f.CenterHz, SampleRate: f.SampleRate,
			IQ: iq, ReleaseIQ: true,
		})
		if err != nil {
			dsp.PutComplex(iq)
			resp.Shed++
			lastErr = err
			continue
		}
		resp.Accepted++
	}
	status := http.StatusAccepted
	if resp.Accepted == 0 && lastErr != nil {
		// Everything shed: surface the backpressure as a status the
		// sensor's retrier understands.
		resp.Reason = lastErr.Error()
		switch {
		case errors.Is(lastErr, ErrQueueFull) || errors.Is(lastErr, ErrSessionLimit):
			s.retryAfterHeader(w)
			status = http.StatusTooManyRequests
		case errors.Is(lastErr, ErrDegraded):
			s.retryAfterHeader(w)
			status = http.StatusServiceUnavailable
		default:
			status = http.StatusBadRequest
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(&resp)
}

// handleOccupancy serves the aggregation the fleet exists to build.
// band=lo:hi is in Hz (e.g. band=470e6:698e6); omitted means the whole
// monitored band.
func (s *Service) handleOccupancy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	gc := s.grid.Config()
	lo, hi := gc.LowHz, gc.HighHz
	if band := r.URL.Query().Get("band"); band != "" {
		parts := strings.SplitN(band, ":", 2)
		if len(parts) != 2 {
			http.Error(w, "band must be lo:hi in Hz", http.StatusBadRequest)
			return
		}
		var err1, err2 error
		lo, err1 = strconv.ParseFloat(parts[0], 64)
		hi, err2 = strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil {
			http.Error(w, "band must be lo:hi in Hz", http.StatusBadRequest)
			return
		}
	}
	occ, err := s.grid.Query(lo, hi)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.m.occQueries.Inc()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(occ)
}

// StatsResponse is the /api/stream/stats body.
type StatsResponse struct {
	Sessions   int           `json:"sessions"`
	Evicted    int64         `json:"evicted"`
	QueueDepth int           `json:"queue_depth"`
	FFTSize    int           `json:"fft_size"`
	Degraded   bool          `json:"degraded"`
	Sensor     *SessionStats `json:"sensor,omitempty"`
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	resp := StatsResponse{
		Sessions:   s.table.Len(),
		Evicted:    s.table.Evicted(),
		QueueDepth: s.QueueDepth(),
		FFTSize:    s.cfg.FFTSize,
		Degraded:   s.Degraded(),
	}
	if id := r.URL.Query().Get("sensor"); id != "" {
		sess := s.table.Get(id)
		if sess == nil {
			http.Error(w, "unknown sensor", http.StatusNotFound)
			return
		}
		st := sess.Stats()
		resp.Sensor = &st
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&resp)
}
