// Package stream is the fleet-scale continuous-monitoring service: it
// multiplexes O(10k) simulated sensor sessions through one shared,
// batched DSP engine instead of giving every sensor its own analyzer.
//
// The paper calibrates sensors in one-shot campaigns; Electrosense+
// (PAPERS.md) shows where the workload goes next — thousands of cheap IoT
// receivers whose IQ is decoded *centrally*, so the cloud pays the DSP
// cost and must amortize it. This package is that central pipeline:
//
//   - Engine batches same-size FFTs across sensors, so twiddle tables,
//     window vectors and scratch buffers are fetched once per batch
//     instead of once per sensor — with a bit-identical-to-serial
//     guarantee (the equivalence tests pin it at batch sizes 1/8/64);
//   - Session is the cheap per-sensor state machine (register → stream
//     → aggregate → evict on idle), lock-striped like the trust
//     collector's ingest state;
//   - Grid folds per-frame occupancy into time×frequency buckets, the
//     aggregation renters query through spectrumd's /api/occupancy;
//   - Service schedules frame batches onto the internal/pipeline worker
//     pool behind a bounded queue (backpressure sheds with 429 +
//     Retry-After) and a breaker on the aggregation path.
package stream

import (
	"fmt"
	"sync"

	"sensorcal/internal/dsp"
	"sensorcal/internal/iq"
)

// specScratch recycles the batch's slice-of-spectra header so Process
// allocates nothing in the steady state.
type specScratch struct {
	specs [][]complex128
}

var specsPool = sync.Pool{New: func() interface{} { return &specScratch{} }}

func getSpecs(n int) *specScratch {
	sc := specsPool.Get().(*specScratch)
	if cap(sc.specs) < n {
		sc.specs = make([][]complex128, n)
	}
	sc.specs = sc.specs[:n]
	return sc
}

func putSpecs(sc *specScratch) { specsPool.Put(sc) }

// Engine is the shared batched PSD engine for one FFT size. It holds the
// amortized per-size state — the cached window vector and its power gain;
// the twiddle tables live in dsp's per-size cache and are fetched once
// per batch. An Engine is immutable after construction and safe for
// concurrent Process calls (workers share it across the pipeline pool).
type Engine struct {
	n      int
	window dsp.WindowFunc
	win    []float64 // shared cached vector; never written
	gain   float64
}

// NewEngine returns an engine for power-of-two fftSize frames windowed
// by window (nil means Hann, the Electrosense-like default).
func NewEngine(fftSize int, window dsp.WindowFunc) (*Engine, error) {
	if fftSize < 2 || fftSize&(fftSize-1) != 0 {
		return nil, fmt.Errorf("stream: fft size %d must be a power of two >= 2", fftSize)
	}
	if window == nil {
		window = dsp.Hann
	}
	win := dsp.CachedWindow(window, fftSize)
	return &Engine{
		n:      fftSize,
		window: window,
		win:    win,
		gain:   dsp.WindowPowerGain(win),
	}, nil
}

// FFTSize returns the frame length the engine accepts.
func (e *Engine) FFTSize() int { return e.n }

// Job is one sensor frame through the shared engine: IQ in, dBFS bins
// out. Bins must be a caller-owned slice of FFTSize elements — sessions
// and the bench recycle theirs, which is what makes the steady state
// allocation-free.
type Job struct {
	// IQ is the frame's complex baseband capture; len must equal the
	// engine's FFT size. It is read, never written.
	IQ []complex128
	// SampleRate is the capture rate in Hz.
	SampleRate float64
	// Bins receives the single-periodogram PSD in dBFS, ordered from the
	// lowest frequency (center − rate/2) upward — the same layout as
	// spectrum.Frame.BinsDB.
	Bins []float64
}

// Process runs one batch of jobs through the engine. The per-frame
// arithmetic is independent of the batch size and of any other frame in
// the batch, so output is bit-identical to SerialReference whatever the
// batching — only the amortization changes: the window vector and its
// gain are the engine's, the twiddle table is fetched once for the whole
// batch (dsp.FFTBatch), and the spectra scratch comes from the dsp pools.
func (e *Engine) Process(jobs []Job) error {
	if len(jobs) == 0 {
		return nil
	}
	for i := range jobs {
		if len(jobs[i].IQ) != e.n {
			return fmt.Errorf("stream: job %d frame length %d, want %d", i, len(jobs[i].IQ), e.n)
		}
		if len(jobs[i].Bins) != e.n {
			return fmt.Errorf("stream: job %d bins length %d, want %d", i, len(jobs[i].Bins), e.n)
		}
		if jobs[i].SampleRate <= 0 {
			return fmt.Errorf("stream: job %d sample rate %v", i, jobs[i].SampleRate)
		}
	}
	sc := getSpecs(len(jobs))
	defer putSpecs(sc)
	specs := sc.specs
	for i := range jobs {
		spec := dsp.GetComplex(e.n)
		for k, s := range jobs[i].IQ {
			spec[k] = s * complex(e.win[k], 0)
		}
		specs[i] = spec
	}
	err := dsp.FFTBatch(specs)
	if err == nil {
		for i := range jobs {
			e.finish(jobs[i].Bins, specs[i], jobs[i].SampleRate)
		}
	}
	for i := range specs {
		dsp.PutComplex(specs[i])
		specs[i] = nil
	}
	return err
}

// finish converts one frame's spectrum into ascending-frequency dBFS
// bins. The expression structure must stay in lockstep with
// SerialReference: bit-identity is the contract.
func (e *Engine) finish(bins []float64, spec []complex128, sampleRate float64) {
	n := e.n
	binWidth := sampleRate / float64(n)
	for i := 0; i < n; i++ {
		src := (i + n/2) % n // bin 0 of the output is −fs/2
		re, im := real(spec[src]), imag(spec[src])
		p := (re*re + im*im) / (e.gain * sampleRate) * binWidth
		bins[i] = iq.PowerToDBFS(p)
	}
}

// SerialReference is the unshared per-sensor path the batched engine
// replaces — and the reference the equivalence tests compare against. It
// deliberately shares nothing with Engine: the window is generated
// fresh, the FFT runs through the single-frame entry point, and every
// buffer is allocated per call. This is what a fleet where each sensor
// owns its DSP would pay per frame.
func SerialReference(iqFrame []complex128, sampleRate float64, fftSize int, window dsp.WindowFunc) ([]float64, error) {
	if len(iqFrame) != fftSize {
		return nil, fmt.Errorf("stream: frame length %d, want %d", len(iqFrame), fftSize)
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("stream: sample rate %v", sampleRate)
	}
	if window == nil {
		window = dsp.Hann
	}
	win := window(fftSize)
	var gain float64
	for _, v := range win {
		gain += v * v
	}
	spec := make([]complex128, fftSize)
	for k, s := range iqFrame {
		spec[k] = s * complex(win[k], 0)
	}
	if err := dsp.FFT(spec); err != nil {
		return nil, err
	}
	bins := make([]float64, fftSize)
	n := fftSize
	binWidth := sampleRate / float64(n)
	for i := 0; i < n; i++ {
		src := (i + n/2) % n
		re, im := real(spec[src]), imag(spec[src])
		p := (re*re + im*im) / (gain * sampleRate) * binWidth
		bins[i] = iq.PowerToDBFS(p)
	}
	return bins, nil
}
