package stream

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sensorcal/internal/obs"
)

// TestEvictionDuringFoldNoResurrection pins the sweeper-vs-fold window:
// a frame admitted under session A, with A evicted and the sensor
// re-registered as session B before the dispatcher folds, must land its
// session aggregation on the tombstone A — never resurrect inside B.
// The fold is held open with the foldHook seam so the interleaving is
// deterministic.
func TestEvictionDuringFoldNoResurrection(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := NewService(Config{
		FFTSize:  64,
		Linger:   -1,
		Registry: reg,
		// Sweeps are driven manually via EvictIdle below.
		IdleAfter:  time.Hour,
		SweepEvery: time.Hour,
		Grid:       GridConfig{LowHz: 500e6, HighHz: 700e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	enterFold := make(chan struct{})
	releaseFold := make(chan struct{})
	var once sync.Once
	s.foldHook = func() error {
		once.Do(func() {
			close(enterFold)
			<-releaseFold
		})
		return nil
	}

	const sensor = "sensor-raced"
	done := make(chan struct{})
	iq := make([]complex128, 64)
	if err := s.Ingest(IngestFrame{
		Sensor: sensor, CenterHz: 600e6, SampleRate: 2.4e6,
		IQ: iq, Done: func() { close(done) },
	}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	sessA := s.table.Get(sensor)
	if sessA == nil {
		t.Fatal("session not registered at admission")
	}

	<-enterFold // dispatcher is mid-fold for the admitted frame
	if n := s.table.EvictIdle(s.clk.Now().Add(time.Minute)); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	sessB, err := s.table.Acquire(sensor, s.clk.Now())
	if err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if sessB == sessA {
		t.Fatal("re-registration returned the evicted session")
	}
	close(releaseFold)
	<-done

	if got := sessB.Stats().Frames; got != 0 {
		t.Errorf("re-registered session resurrected %d stale frame(s), want 0", got)
	}
	if got := sessA.Stats().Frames; got != 1 {
		t.Errorf("tombstone session folded %d frame(s), want 1", got)
	}
	if got := s.m.tombstoneFolds.Value(); got != 1 {
		t.Errorf("stream_tombstone_folds_total = %v, want 1", got)
	}
}

// TestConcurrentEvictReregisterChurn is the -race stress for the same
// window: writers stream a small set of sensor IDs while an evictor
// continuously tombstones every session, so admissions, evictions,
// re-registrations and folds interleave in every order. The race
// detector is the primary assertion; on top of it the test checks the
// accepted-frame accounting survives the churn (Done fires exactly once
// per accepted frame).
func TestConcurrentEvictReregisterChurn(t *testing.T) {
	s, err := NewService(Config{
		FFTSize:    64,
		QueueCap:   4096,
		MaxBatch:   16,
		Linger:     -1,
		Workers:    4,
		IdleAfter:  time.Hour,
		SweepEvery: time.Hour,
		Registry:   obs.NewRegistry(),
		Grid:       GridConfig{LowHz: 500e6, HighHz: 700e6},
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers  = 4
		sensors  = 8
		duration = 150 * time.Millisecond
	)
	var (
		accepted atomic.Int64
		doneN    atomic.Int64
		wg       sync.WaitGroup
	)
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // evictor: tombstone everything, constantly
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.table.EvictIdle(s.clk.Now().Add(time.Minute))
			}
		}
	}()
	deadline := time.Now().Add(duration)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			iq := make([]complex128, 64)
			for i := 0; time.Now().Before(deadline); i++ {
				id := "churn-" + string(rune('a'+(w+i)%sensors))
				err := s.Ingest(IngestFrame{
					Sensor: id, CenterHz: 600e6, SampleRate: 2.4e6,
					IQ: iq, Done: func() { doneN.Add(1) },
				})
				if err == nil {
					accepted.Add(1)
				}
			}
		}(w)
	}
	// Writers finish first so the evictor churns through the whole run.
	time.Sleep(time.Until(deadline))
	s.Close() // drains the queue: every accepted frame's Done must fire
	close(stop)
	wg.Wait()

	if accepted.Load() != doneN.Load() {
		t.Errorf("accepted %d frames but Done fired %d times", accepted.Load(), doneN.Load())
	}
}
