package stream

import (
	"math"
	"math/rand"
	"testing"

	"sensorcal/internal/dsp"
)

// randFrame builds a deterministic pseudo-sensor frame: a tone plus
// noise, different per seed so batch-mates never share data.
func randFrame(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]complex128, n)
	toneBin := 3 + seed%7
	for i := range out {
		ph := 2 * math.Pi * float64(toneBin) * float64(i) / float64(n)
		out[i] = complex(0.4*math.Cos(ph)+0.05*rng.NormFloat64(),
			0.4*math.Sin(ph)+0.05*rng.NormFloat64())
	}
	return out
}

// TestEngineBitIdenticalToSerial is the contract of the whole subsystem:
// batching changes only the amortization, never the arithmetic. Every
// frame through a shared engine at batch sizes 1, 8 and 64 must produce
// bit-for-bit the spectra of the share-nothing serial path.
func TestEngineBitIdenticalToSerial(t *testing.T) {
	const n = 256
	const rate = 2.4e6
	eng, err := NewEngine(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, batchSize := range []int{1, 8, 64} {
		frames := make([][]complex128, batchSize)
		jobs := make([]Job, batchSize)
		for i := range frames {
			frames[i] = randFrame(n, int64(100*batchSize+i))
			jobs[i] = Job{IQ: frames[i], SampleRate: rate, Bins: make([]float64, n)}
		}
		if err := eng.Process(jobs); err != nil {
			t.Fatalf("batch %d: %v", batchSize, err)
		}
		for i := range frames {
			want, err := SerialReference(frames[i], rate, n, nil)
			if err != nil {
				t.Fatal(err)
			}
			for k := range want {
				if math.Float64bits(jobs[i].Bins[k]) != math.Float64bits(want[k]) {
					t.Fatalf("batch %d frame %d bin %d: batched %v != serial %v",
						batchSize, i, k, jobs[i].Bins[k], want[k])
				}
			}
		}
	}
}

// TestEngineRejectsBadJobs pins the validation surface.
func TestEngineRejectsBadJobs(t *testing.T) {
	eng, err := NewEngine(64, dsp.Hann)
	if err != nil {
		t.Fatal(err)
	}
	cases := []Job{
		{IQ: make([]complex128, 32), SampleRate: 1e6, Bins: make([]float64, 64)},
		{IQ: make([]complex128, 64), SampleRate: 1e6, Bins: make([]float64, 32)},
		{IQ: make([]complex128, 64), SampleRate: 0, Bins: make([]float64, 64)},
	}
	for i, j := range cases {
		if err := eng.Process([]Job{j}); err == nil {
			t.Fatalf("case %d: bad job accepted", i)
		}
	}
	if _, err := NewEngine(100, nil); err == nil {
		t.Fatal("non-power-of-two FFT size accepted")
	}
	if err := eng.Process(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestEngineConcurrentProcess pins that one engine is safe shared across
// pipeline workers: concurrent batches must still each be bit-identical
// to serial (run under -race in CI).
func TestEngineConcurrentProcess(t *testing.T) {
	const n = 128
	eng, err := NewEngine(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			frame := randFrame(n, int64(g))
			want, err := SerialReference(frame, 1e6, n, nil)
			if err != nil {
				done <- err
				return
			}
			bins := make([]float64, n)
			for iter := 0; iter < 50; iter++ {
				if err := eng.Process([]Job{{IQ: frame, SampleRate: 1e6, Bins: bins}}); err != nil {
					done <- err
					return
				}
				for k := range want {
					if math.Float64bits(bins[k]) != math.Float64bits(want[k]) {
						t.Errorf("goroutine %d iter %d bin %d mismatch", g, iter, k)
						done <- nil
						return
					}
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
