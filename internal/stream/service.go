package stream

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"sensorcal/internal/clock"
	"sensorcal/internal/dsp"
	"sensorcal/internal/obs"
	"sensorcal/internal/pipeline"
	"sensorcal/internal/resilience"
)

// Backpressure errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull: the bounded frame queue is full; shed with 429 +
	// Retry-After rather than queueing unboundedly.
	ErrQueueFull = errors.New("stream: frame queue full")
	// ErrDegraded: the aggregation breaker is open; shed with 503.
	ErrDegraded = errors.New("stream: aggregation degraded")
)

// Config shapes a Service.
type Config struct {
	// FFTSize is the frame length every sensor streams. Zero means 256 —
	// small frames bound queue memory at fleet scale (10k queued frames
	// at 256 samples ≈ 40 MB, versus 2.5 GB at 16k).
	FFTSize int
	// Window is the analysis window. Nil means Hann.
	Window dsp.WindowFunc
	// MaxSessions bounds the session table. Zero means 16384.
	MaxSessions int
	// SessionStripes is the table's lock-stripe count. Zero means 16.
	SessionStripes int
	// IdleAfter evicts sessions quiet for this long. Zero means 60 s.
	IdleAfter time.Duration
	// SweepEvery is the eviction sweep period. Zero means IdleAfter/4.
	SweepEvery time.Duration
	// QueueCap bounds the ingest queue. Zero means 8192.
	QueueCap int
	// MaxBatch caps frames per engine batch. Zero means 64.
	MaxBatch int
	// Linger is how long the dispatcher waits to fill a batch after the
	// first frame arrives. Zero means 2 ms; negative means no linger
	// (dispatch whatever is queued).
	Linger time.Duration
	// Workers bounds the FFT stage's parallelism across the pipeline
	// pool. Zero means GOMAXPROCS.
	Workers int
	// Grid shapes the occupancy aggregation.
	Grid GridConfig
	// Breaker guards the aggregation path. Nil means a default breaker
	// (5 consecutive failures open it for 5 s).
	Breaker *resilience.Breaker
	// Registry receives the stream metrics. Nil means obs.Default().
	Registry *obs.Registry
	// Tracer receives the batch spans (stream.batch → stream.fft_batch /
	// stream.fold). Nil means the default tracer.
	Tracer *obs.Tracer
	// Clock drives timestamps, linger and sweeps. Nil means wall clock.
	Clock clock.Clock
	// RetryAfter is the hint returned with shed responses. Zero means 1 s.
	RetryAfter time.Duration
}

func (c *Config) fill() {
	if c.FFTSize <= 0 {
		c.FFTSize = 256
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 16384
	}
	if c.IdleAfter <= 0 {
		c.IdleAfter = 60 * time.Second
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = c.IdleAfter / 4
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 8192
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.Linger == 0 {
		c.Linger = 2 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = clock.System{}
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
}

// IngestFrame is one sensor frame entering the service.
type IngestFrame struct {
	// Sensor identifies the session; an unknown sensor is registered
	// implicitly.
	Sensor string
	// At is the capture timestamp; zero means the service clock's now.
	At time.Time
	// CenterHz and SampleRate place the frame on the spectrum.
	CenterHz   float64
	SampleRate float64
	// IQ is the frame payload; len must equal the service FFT size.
	IQ []complex128
	// Done, when non-nil, is called exactly once after the frame has been
	// folded into the grid (or shed after acceptance) — the closed-loop
	// hook the load generator paces itself with. It runs on the
	// dispatcher goroutine and must be cheap.
	Done func()
	// ReleaseIQ hands IQ ownership to the service: after processing the
	// slice is returned to the dsp pool. Callers that recycle their own
	// buffers leave it false.
	ReleaseIQ bool
}

// frameTask is the queued form of an accepted frame. sess is the session
// the frame was admitted under, captured at ingest: the fold touches this
// pointer, not a by-ID lookup, so a sweep-evict + re-register between
// admission and fold cannot leak the old session's aggregates into the
// reincarnated one.
type frameTask struct {
	sensor     string
	sess       *Session
	at         time.Time
	enqueued   time.Time
	centerHz   float64
	sampleRate float64
	iq         []complex128
	bins       []float64
	done       func()
	releaseIQ  bool
}

var taskPool = sync.Pool{New: func() interface{} { return new(frameTask) }}

// Service multiplexes the sensor fleet through the shared engine: ingest
// validates and enqueues, one dispatcher goroutine forms batches and runs
// them (FFT and fold stages both fanned across the pipeline pool), a
// sweeper evicts idle sessions. The fold can fan out without changing
// results because every fold target is commutative under its own lock:
// grid slots accumulate integer counts behind a per-slot mutex, session
// aggregates are max/sum/count behind the session mutex, and the metrics
// are atomic — so any fold order produces the same surface.
type Service struct {
	cfg     Config
	engine  *Engine
	table   *SessionTable
	grid    *Grid
	exec    *pipeline.Executor
	breaker *resilience.Breaker
	clk     clock.Clock
	m       *serviceMetrics

	queue     chan *frameTask
	done      chan struct{}
	wg        sync.WaitGroup
	baseCtx   context.Context // carries the tracer for batch spans
	chunkErrs []error         // dispatcher-owned per-chunk fold errors, reused per batch

	closeOnce sync.Once

	// foldHook, when set by tests, replaces the grid fold outcome so the
	// breaker path can be driven without breaking the grid.
	foldHook func() error
}

// NewService builds and starts a streaming service.
func NewService(cfg Config) (*Service, error) {
	cfg.fill()
	eng, err := NewEngine(cfg.FFTSize, cfg.Window)
	if err != nil {
		return nil, err
	}
	grid, err := NewGrid(cfg.Grid)
	if err != nil {
		return nil, err
	}
	br := cfg.Breaker
	if br == nil {
		br = resilience.NewBreaker(resilience.BreakerConfig{
			Name:             "stream_fold",
			FailureThreshold: 5,
			OpenFor:          5 * time.Second,
			Clock:            cfg.Clock,
		})
	}
	s := &Service{
		cfg:     cfg,
		engine:  eng,
		table:   NewSessionTable(cfg.MaxSessions, cfg.SessionStripes),
		grid:    grid,
		exec:    pipeline.New(pipeline.Config{Workers: cfg.Workers}),
		breaker: br,
		clk:     cfg.Clock,
		queue:   make(chan *frameTask, cfg.QueueCap),
		done:    make(chan struct{}),
		baseCtx: context.Background(),
	}
	s.chunkErrs = make([]error, s.exec.Workers())
	if cfg.Tracer != nil {
		s.baseCtx = obs.WithTracer(s.baseCtx, cfg.Tracer)
	}
	s.m = newServiceMetrics(cfg.Registry, s.table, func() float64 { return float64(len(s.queue)) })
	s.wg.Add(2)
	go s.dispatch()
	go s.sweep()
	return s, nil
}

// FFTSize returns the frame length the service accepts.
func (s *Service) FFTSize() int { return s.cfg.FFTSize }

// Grid returns the occupancy aggregation (for queries).
func (s *Service) Grid() *Grid { return s.grid }

// Sessions returns the session table (for stats queries).
func (s *Service) Sessions() *SessionTable { return s.table }

// RetryAfter returns the configured shed retry hint.
func (s *Service) RetryAfter() time.Duration { return s.cfg.RetryAfter }

// Degraded reports whether the aggregation breaker is not closed — the
// /readyz signal.
func (s *Service) Degraded() bool { return s.breaker.State() != resilience.Closed }

// QueueDepth returns the frames currently queued.
func (s *Service) QueueDepth() int { return len(s.queue) }

// Ingest validates and enqueues one frame. A nil return means the frame
// was accepted and its Done callback will fire exactly once; any error
// means the frame was shed before acceptance and Done will NOT fire.
func (s *Service) Ingest(f IngestFrame) error {
	if len(f.IQ) != s.cfg.FFTSize {
		s.m.framesShed.With(shedMalformed).Inc()
		return fmt.Errorf("stream: frame length %d, want %d", len(f.IQ), s.cfg.FFTSize)
	}
	if f.SampleRate <= 0 {
		s.m.framesShed.With(shedMalformed).Inc()
		return fmt.Errorf("stream: sample rate %v", f.SampleRate)
	}
	gc := s.grid.Config()
	if f.CenterHz-f.SampleRate/2 >= gc.HighHz || f.CenterHz+f.SampleRate/2 <= gc.LowHz {
		s.m.framesShed.With(shedBand).Inc()
		return ErrOutOfBand
	}
	if s.breaker.State() == resilience.Open {
		// The aggregation path is known-broken: shed at the door instead
		// of queueing work that will be dropped. State() (not Allow())
		// so ingest never consumes the half-open probe budget — recovery
		// is probed by the dispatcher, which owns the guarded call.
		s.m.framesShed.With(shedDegraded).Inc()
		return ErrDegraded
	}
	now := s.clk.Now()
	at := f.At
	if at.IsZero() {
		at = now
	}
	sess, err := s.table.Acquire(f.Sensor, now)
	if err != nil {
		if errors.Is(err, ErrSessionLimit) {
			s.m.framesShed.With(shedSessions).Inc()
		} else {
			s.m.framesShed.With(shedMalformed).Inc()
		}
		return err
	}
	t := taskPool.Get().(*frameTask)
	*t = frameTask{
		sensor: f.Sensor, sess: sess, at: at, enqueued: now,
		centerHz: f.CenterHz, sampleRate: f.SampleRate,
		iq: f.IQ, done: f.Done, releaseIQ: f.ReleaseIQ,
	}
	select {
	case s.queue <- t:
		s.m.framesIngested.Inc()
		return nil
	default:
		*t = frameTask{}
		taskPool.Put(t)
		s.m.framesShed.With(shedQueue).Inc()
		return ErrQueueFull
	}
}

// Register explicitly registers a sensor session (sensors may also
// register implicitly with their first frame).
func (s *Service) Register(sensor string) (*Session, error) {
	sess, err := s.table.Acquire(sensor, s.clk.Now())
	if err != nil && errors.Is(err, ErrSessionLimit) {
		s.m.framesShed.With(shedSessions).Inc()
	}
	return sess, err
}

// dispatch is the single batch-forming loop: take one frame, linger
// briefly to fill the batch, run it. One goroutine forms batches and
// finishes tasks (so Done ordering and buffer recycling stay serial);
// the FFT and fold stages inside runBatch fan out across the pipeline
// pool.
func (s *Service) dispatch() {
	defer s.wg.Done()
	batch := make([]*frameTask, 0, s.cfg.MaxBatch)
	jobs := make([]Job, 0, s.cfg.MaxBatch)
	for {
		select {
		case <-s.done:
			s.drain(&batch, &jobs)
			return
		case t := <-s.queue:
			batch = append(batch, t)
		}
		// Greedy-drain first: when the queue already holds a batch, no
		// timer is armed at all — the linger (and its per-batch timer
		// allocation) only exists to wait for stragglers on a quiet
		// queue.
	greedy:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case t := <-s.queue:
				batch = append(batch, t)
			default:
				break greedy
			}
		}
		if len(batch) < s.cfg.MaxBatch && s.cfg.Linger > 0 {
			linger := s.clk.After(s.cfg.Linger)
		fill:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case t := <-s.queue:
					batch = append(batch, t)
				case <-linger:
					break fill
				case <-s.done:
					break fill
				}
			}
		}
		s.runBatch(batch, jobs)
		batch = batch[:0]
	}
}

// drain processes whatever is still queued at shutdown, so accepted
// frames keep the "Done fires exactly once" promise.
func (s *Service) drain(batch *[]*frameTask, jobs *[]Job) {
	for {
		b := *batch
		for len(b) < s.cfg.MaxBatch {
			select {
			case t := <-s.queue:
				b = append(b, t)
			default:
				s.runBatch(b, *jobs)
				*batch = b[:0]
				return
			}
		}
		s.runBatch(b, *jobs)
		*batch = b[:0]
	}
}

// runBatch runs one formed batch: breaker gate, parallel batched FFT,
// parallel aggregation fold over the same chunks.
func (s *Service) runBatch(batch []*frameTask, jobs []Job) {
	if len(batch) == 0 {
		return
	}
	if err := s.breaker.Allow(); err != nil {
		for _, t := range batch {
			s.m.framesShed.With(shedDegraded).Inc()
			s.finishTask(t)
		}
		return
	}
	s.m.batches.Inc()
	s.m.batchSize.Observe(float64(len(batch)))
	// Spans only when a tracer was wired in: span bookkeeping allocates,
	// and at small batch fill that would tax the allocs/frame ≈ 0
	// contract for deployments that never read the traces.
	ctx := s.baseCtx
	var batchSpan, fftSpan, foldSpan *obs.Span
	if s.cfg.Tracer != nil {
		ctx, batchSpan = obs.StartRootSpan(ctx, "stream.batch")
		batchSpan.SetAttr("frames", strconv.Itoa(len(batch)))
	}

	jobs = jobs[:0]
	for _, t := range batch {
		t.bins = dsp.GetFloat(s.cfg.FFTSize)
		jobs = append(jobs, Job{IQ: t.iq, SampleRate: t.sampleRate, Bins: t.bins})
	}

	// FFT stage: chunk the batch across the worker pool; each chunk is
	// one engine.Process call, so twiddles/windows are still amortized
	// per chunk and per-frame output stays bit-identical to serial. A
	// single-chunk batch runs inline: the pool's per-Run setup (feed
	// channel, cancel context, worker goroutines) would cost more than it
	// buys and would break the steady-state allocs/frame ≈ 0 contract
	// when the fleet trickles frames in one at a time.
	workers := s.exec.Workers()
	chunk := (len(jobs) + workers - 1) / workers
	nchunks := (len(jobs) + chunk - 1) / chunk
	fctx := ctx
	if batchSpan != nil {
		fctx, fftSpan = obs.StartSpan(ctx, "stream.fft_batch")
	}
	start := s.clk.Now()
	var err error
	if nchunks == 1 {
		err = s.engine.Process(jobs)
	} else {
		err = s.exec.Run(fctx, nchunks, func(_ context.Context, i int) error {
			lo := i * chunk
			hi := lo + chunk
			if hi > len(jobs) {
				hi = len(jobs)
			}
			return s.engine.Process(jobs[lo:hi])
		})
	}
	s.m.fftSeconds.Observe(s.clk.Now().Sub(start).Seconds())
	fftSpan.SetError(err)
	fftSpan.End()

	// Fold stage: fanned across the same chunks. This is exact, not
	// approximate — see the Service doc comment: every fold target
	// accumulates commutatively under its own lock, so chunk order cannot
	// change the surface. Per-chunk errors land in a dispatcher-owned
	// slice and the lowest-index one wins, so the error the breaker
	// records is independent of scheduling (same rule as pipeline.Run).
	if batchSpan != nil {
		_, foldSpan = obs.StartSpan(ctx, "stream.fold")
	}
	foldStart := s.clk.Now()
	if err == nil {
		if nchunks == 1 {
			err = s.foldChunk(batch)
		} else {
			errs := s.chunkErrs[:nchunks]
			_ = s.exec.Run(ctx, nchunks, func(_ context.Context, i int) error {
				lo := i * chunk
				hi := lo + chunk
				if hi > len(batch) {
					hi = len(batch)
				}
				errs[i] = s.foldChunk(batch[lo:hi])
				return nil
			})
			for i := range errs {
				if errs[i] != nil && err == nil {
					err = errs[i]
				}
				errs[i] = nil
			}
		}
	} else {
		for range batch {
			s.m.framesShed.With(shedDegraded).Inc()
		}
	}
	now := s.clk.Now()
	s.m.foldSeconds.Observe(now.Sub(foldStart).Seconds())
	foldSpan.SetError(err)
	foldSpan.End()
	batchSpan.SetError(err)
	batchSpan.End()
	s.breaker.Record(err)
	for _, t := range batch {
		s.m.frameLatency.Observe(now.Sub(t.enqueued).Seconds())
		s.finishTask(t)
	}
}

// foldChunk folds a chunk of processed frames and returns the first
// non-out-of-band failure (out-of-band frames are shed, not failures).
func (s *Service) foldChunk(tasks []*frameTask) error {
	var first error
	for _, t := range tasks {
		if ferr := s.foldTask(t); ferr != nil && first == nil && !errors.Is(ferr, ErrOutOfBand) {
			first = ferr
		}
	}
	return first
}

// foldTask folds one processed frame into its session and the grid.
func (s *Service) foldTask(t *frameTask) error {
	var frac float64
	var err error
	if s.foldHook != nil {
		err = s.foldHook()
	} else {
		frac, err = s.grid.Fold(t.bins, t.centerHz, t.sampleRate, t.at)
	}
	if err != nil {
		if errors.Is(err, ErrOutOfBand) {
			s.m.framesShed.With(shedBand).Inc()
			return err
		}
		return err
	}
	// Fold into the session captured at admission. If the sweeper evicted
	// it while the frame was queued, the touch lands on the tombstone —
	// counted, but never visible through a re-registered session of the
	// same sensor ID.
	if t.sess.touch(t.at, frac) {
		s.m.tombstoneFolds.Inc()
	}
	s.m.framesDone.Inc()
	return nil
}

// finishTask fires Done, returns buffers to their pools and recycles the
// task.
func (s *Service) finishTask(t *frameTask) {
	if t.done != nil {
		t.done()
	}
	if t.releaseIQ && t.iq != nil {
		dsp.PutComplex(t.iq)
	}
	if t.bins != nil {
		dsp.PutFloat(t.bins)
	}
	*t = frameTask{}
	taskPool.Put(t)
}

// sweep periodically evicts idle sessions.
func (s *Service) sweep() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.clk.After(s.cfg.SweepEvery):
			if n := s.table.EvictIdle(s.clk.Now().Add(-s.cfg.IdleAfter)); n > 0 {
				s.m.evictions.Add(float64(n))
			}
		}
	}
}

// Close stops the service, draining already-accepted frames first.
func (s *Service) Close() {
	s.closeOnce.Do(func() { close(s.done) })
	s.wg.Wait()
}
