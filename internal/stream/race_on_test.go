//go:build race

package stream

// raceEnabled lets allocation-contract tests stand down under the race
// detector, whose instrumentation allocates inside sync.Pool.
const raceEnabled = true
