package stream

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sensorcal/internal/obs"
)

// TestConcurrentSessionChurn is the -race stress: many goroutines
// register, stream and query while the sweeper aggressively evicts.
// Sessions re-register under eviction pressure, so every lifecycle
// transition races against every other; the race detector is the
// assertion.
func TestConcurrentSessionChurn(t *testing.T) {
	cfg := Config{
		FFTSize:    64,
		QueueCap:   1024,
		MaxBatch:   32,
		Linger:     -1,
		Workers:    4,
		IdleAfter:  5 * time.Millisecond,
		SweepEvery: time.Millisecond,
		Registry:   obs.NewRegistry(),
		Grid:       GridConfig{LowHz: 500e6, HighHz: 700e6},
	}
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const (
		writers  = 8
		sensors  = 64
		perIter  = 40
		duration = 150 * time.Millisecond
	)
	frame := randFrame(64, 7)
	stop := time.Now().Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; time.Now().Before(stop); iter++ {
				for i := 0; i < perIter; i++ {
					id := fmt.Sprintf("churn-%d", (w*perIter+iter+i)%sensors)
					// Shed errors are expected under pressure; the test
					// only cares that nothing races or deadlocks.
					_ = s.Ingest(IngestFrame{
						Sensor: id, CenterHz: 600e6, SampleRate: 2.4e6, IQ: frame,
					})
				}
			}
		}(w)
	}
	// Readers hammer the query surfaces concurrently.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				_, _ = s.Grid().Query(500e6, 700e6)
				_ = s.Sessions().Len()
				if sess := s.Sessions().Get("churn-0"); sess != nil {
					_ = sess.Stats()
				}
				_ = s.Degraded()
			}
		}()
	}
	wg.Wait()
	// Drain whatever is still queued so Close has nothing surprising.
	s.Close()
	if s.QueueDepth() != 0 {
		t.Fatalf("queue not drained at close: %d", s.QueueDepth())
	}
}

// TestSessionTableConcurrentAcquireEvict isolates the table: acquire and
// evict the same IDs from many goroutines while Len/Stats read.
func TestSessionTableConcurrentAcquireEvict(t *testing.T) {
	tab := NewSessionTable(128, 8)
	stop := time.Now().Add(100 * time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; time.Now().Before(stop); i++ {
				id := fmt.Sprintf("s-%d", i%200)
				if sess, err := tab.Acquire(id, time.Now()); err == nil {
					sess.touch(time.Now(), 0.5)
					_ = sess.Stats()
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(stop) {
			tab.EvictIdle(time.Now().Add(-time.Microsecond))
			_ = tab.Len()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	if tab.Len() < 0 || tab.Len() > 128 {
		t.Fatalf("table count out of bounds: %d", tab.Len())
	}
}
