package stream

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sensorcal/internal/spectrum"
)

// Grid is the fleet-wide aggregation the streaming service sells: a
// time×frequency occupancy surface. Frequency is split into fixed-width
// buckets across a configured band; time into a ring of slots, so memory
// is bounded however long the service runs (old slots are overwritten in
// place). Every processed frame folds in as "which buckets carried
// signal above the noise floor", and GET /api/occupancy serves the
// bucket fractions — the "Open and Big Spectrum Data" aggregation API
// shape from PAPERS.md.
type Grid struct {
	cfg     GridConfig
	buckets int
	slotSec int64
	slots   []gridSlot
}

// GridConfig shapes a Grid.
type GridConfig struct {
	// LowHz/HighHz bound the monitored band. Defaults: the UHF TV band,
	// 470–698 MHz.
	LowHz, HighHz float64
	// BucketHz is the frequency bucket width. Zero means 1 MHz.
	BucketHz float64
	// Slot is the time bucket width. Zero means 10s.
	Slot time.Duration
	// Slots is the ring length. Zero means 60 (10 minutes of history at
	// the default slot width).
	Slots int
	// MarginDB is the occupancy threshold above the per-frame noise
	// floor. Zero means 6 dB.
	MarginDB float64
}

func (c *GridConfig) fill() {
	if c.LowHz == 0 && c.HighHz == 0 {
		c.LowHz, c.HighHz = 470e6, 698e6
	}
	if c.BucketHz <= 0 {
		c.BucketHz = 1e6
	}
	if c.Slot <= 0 {
		c.Slot = 10 * time.Second
	}
	if c.Slots <= 0 {
		c.Slots = 60
	}
	if c.MarginDB <= 0 {
		c.MarginDB = 6
	}
}

// gridSlot is one time bucket: per-frequency-bucket counts of occupied
// and total bins, plus how many frames contributed. Each slot carries
// its own lock — frames land on the current slot, queries sweep all of
// them, so per-slot locking keeps folds of different time windows (and
// the query path) off each other's locks.
type gridSlot struct {
	mu       sync.Mutex
	startSec int64
	frames   uint64
	occ      []uint32
	bins     []uint32
	_        [24]byte
}

// ErrOutOfBand is returned for frames that do not overlap the grid's
// monitored band at all; the service counts them as shed, not failed.
var ErrOutOfBand = errors.New("stream: frame outside the monitored band")

// NewGrid returns a grid for the configured band.
func NewGrid(cfg GridConfig) (*Grid, error) {
	cfg.fill()
	if cfg.HighHz <= cfg.LowHz {
		return nil, fmt.Errorf("stream: grid band [%g,%g) is empty", cfg.LowHz, cfg.HighHz)
	}
	nb := int((cfg.HighHz-cfg.LowHz)/cfg.BucketHz + 0.5)
	if nb < 1 {
		nb = 1
	}
	if nb > 1<<20 {
		return nil, fmt.Errorf("stream: %d frequency buckets (band too wide for bucket width %g)", nb, cfg.BucketHz)
	}
	g := &Grid{cfg: cfg, buckets: nb, slotSec: int64(cfg.Slot / time.Second), slots: make([]gridSlot, cfg.Slots)}
	if g.slotSec < 1 {
		g.slotSec = 1
	}
	for i := range g.slots {
		g.slots[i].occ = make([]uint32, nb)
		g.slots[i].bins = make([]uint32, nb)
	}
	return g, nil
}

// Config returns the grid's (filled) configuration.
func (g *Grid) Config() GridConfig { return g.cfg }

// Fold accumulates one frame's occupancy into the grid and returns the
// frame's occupied-bin fraction (for the per-session aggregate). bins
// are ascending-frequency dBFS as the engine produces; centerHz and
// sampleRate place them on the spectrum; at selects the time slot.
func (g *Grid) Fold(bins []float64, centerHz, sampleRate float64, at time.Time) (float64, error) {
	n := len(bins)
	if n == 0 || sampleRate <= 0 {
		return 0, fmt.Errorf("stream: empty frame")
	}
	frameLo := centerHz - sampleRate/2
	binWidth := sampleRate / float64(n)
	if frameLo >= g.cfg.HighHz || frameLo+sampleRate <= g.cfg.LowHz {
		return 0, ErrOutOfBand
	}
	floor := spectrum.NoiseFloorOf(bins, 0.25)
	threshold := floor + g.cfg.MarginDB

	slotStart := at.Unix() / g.slotSec * g.slotSec
	idx := (slotStart / g.slotSec) % int64(len(g.slots))
	if idx < 0 {
		idx += int64(len(g.slots))
	}
	sl := &g.slots[idx]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.startSec != slotStart {
		// The ring lapped: this slot last held an older (or a future
		// backfilled) window. Reset it in place.
		sl.startSec = slotStart
		sl.frames = 0
		for i := range sl.occ {
			sl.occ[i] = 0
			sl.bins[i] = 0
		}
	}
	sl.frames++
	occupied := 0
	for i := 0; i < n; i++ {
		hz := frameLo + (float64(i)+0.5)*binWidth
		if hz < g.cfg.LowHz || hz >= g.cfg.HighHz {
			continue
		}
		b := int((hz - g.cfg.LowHz) / g.cfg.BucketHz)
		if b < 0 || b >= g.buckets {
			continue
		}
		sl.bins[b]++
		if bins[i] >= threshold {
			sl.occ[b]++
			occupied++
		}
	}
	return float64(occupied) / float64(n), nil
}

// SlotOccupancy is one time slot of one band query.
type SlotOccupancy struct {
	Start  time.Time `json:"start"`
	Frames uint64    `json:"frames"`
	// Occupancy is the occupied-bin fraction per frequency bucket of the
	// queried band, ascending frequency. Buckets no frame covered are 0.
	Occupancy []float64 `json:"occupancy"`
}

// BandOccupancy is the /api/occupancy response body.
type BandOccupancy struct {
	LowHz    float64         `json:"low_hz"`
	HighHz   float64         `json:"high_hz"`
	BucketHz float64         `json:"bucket_hz"`
	SlotS    float64         `json:"slot_s"`
	Slots    []SlotOccupancy `json:"slots"`
}

// Query returns the occupancy surface for [lowHz, highHz), every
// non-empty time slot ascending by start. A query outside the grid band
// is clamped; an empty intersection errors.
func (g *Grid) Query(lowHz, highHz float64) (*BandOccupancy, error) {
	if lowHz < g.cfg.LowHz {
		lowHz = g.cfg.LowHz
	}
	if highHz > g.cfg.HighHz {
		highHz = g.cfg.HighHz
	}
	if highHz <= lowHz {
		return nil, fmt.Errorf("stream: band [%g,%g) does not intersect the monitored band [%g,%g)",
			lowHz, highHz, g.cfg.LowHz, g.cfg.HighHz)
	}
	b0 := int((lowHz - g.cfg.LowHz) / g.cfg.BucketHz)
	b1 := int((highHz-g.cfg.LowHz)/g.cfg.BucketHz + 0.999999)
	if b1 > g.buckets {
		b1 = g.buckets
	}
	if b1 <= b0 {
		b1 = b0 + 1
	}
	out := &BandOccupancy{
		LowHz:    g.cfg.LowHz + float64(b0)*g.cfg.BucketHz,
		HighHz:   g.cfg.LowHz + float64(b1)*g.cfg.BucketHz,
		BucketHz: g.cfg.BucketHz,
		SlotS:    float64(g.slotSec),
	}
	for i := range g.slots {
		sl := &g.slots[i]
		sl.mu.Lock()
		if sl.startSec == 0 || sl.frames == 0 {
			sl.mu.Unlock()
			continue
		}
		so := SlotOccupancy{Start: time.Unix(sl.startSec, 0).UTC(), Frames: sl.frames,
			Occupancy: make([]float64, b1-b0)}
		for b := b0; b < b1; b++ {
			if sl.bins[b] > 0 {
				so.Occupancy[b-b0] = float64(sl.occ[b]) / float64(sl.bins[b])
			}
		}
		sl.mu.Unlock()
		out.Slots = append(out.Slots, so)
	}
	sort.Slice(out.Slots, func(i, j int) bool { return out.Slots[i].Start.Before(out.Slots[j].Start) })
	return out, nil
}
