package stream

import (
	"sensorcal/internal/obs"
)

// Per-stage instrumentation of the streaming pipeline: ingest (frames
// accepted/shed and why), batching (batch counts and fill), the two
// processing stages (batched FFT, aggregation fold) and the end-to-end
// frame latency from enqueue to folded. Together with the RED middleware
// on the HTTP surface this answers the operator questions in order:
// is the fleet being shed (backpressure), is the engine keeping up
// (batch fill + stage times), and what does a frame's journey cost
// (latency histogram).
type serviceMetrics struct {
	framesIngested *obs.Counter
	framesDone     *obs.Counter
	framesShed     *obs.CounterVec
	batches        *obs.Counter
	batchSize      *obs.Histogram
	fftSeconds     *obs.Histogram
	foldSeconds    *obs.Histogram
	frameLatency   *obs.Histogram
	occQueries     *obs.Counter
	evictions      *obs.Counter
	tombstoneFolds *obs.Counter
}

// Shed reasons, the label values of stream_frames_shed_total.
const (
	shedQueue     = "queue"     // bounded frame queue full
	shedSessions  = "sessions"  // session table at capacity
	shedMalformed = "malformed" // frame length/rate invalid
	shedBand      = "band"      // frame outside the monitored band
	shedDegraded  = "degraded"  // aggregation breaker open
	shedShutdown  = "shutdown"  // service closing, queue drained unprocessed
)

func newServiceMetrics(reg *obs.Registry, table *SessionTable, queueDepth func() float64) *serviceMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	m := &serviceMetrics{
		framesIngested: reg.Counter("stream_frames_ingested_total",
			"IQ frames accepted into the streaming queue."),
		framesDone: reg.Counter("stream_frames_processed_total",
			"Frames that completed the batched FFT and aggregation fold."),
		framesShed: reg.CounterVec("stream_frames_shed_total",
			"Frames shed instead of processed, by reason.", "reason"),
		batches: reg.Counter("stream_batches_total",
			"Batches dispatched through the shared engine."),
		batchSize: reg.Histogram("stream_batch_size",
			"Frames per dispatched batch — low fill means the linger window, not the batch cap, is forming batches.",
			obs.ExpBuckets(1, 2, 12)),
		fftSeconds: reg.Histogram("stream_fft_stage_seconds",
			"Batched FFT stage wall time per batch.", obs.DurationBuckets),
		foldSeconds: reg.Histogram("stream_fold_stage_seconds",
			"Aggregation fold stage wall time per batch.", obs.DurationBuckets),
		frameLatency: reg.Histogram("stream_frame_latency_seconds",
			"Frame latency from ingest enqueue to aggregation fold.", obs.DurationBuckets),
		occQueries: reg.Counter("stream_occupancy_queries_total",
			"Occupancy API queries served."),
		evictions: reg.Counter("stream_sessions_evicted_total",
			"Sensor sessions evicted after going idle."),
		tombstoneFolds: reg.Counter("stream_tombstone_folds_total",
			"In-flight frames whose session aggregation landed on an already-evicted tombstone."),
	}
	reg.GaugeFunc("stream_sessions_active",
		"Sensor sessions currently registered.",
		func() float64 { return float64(table.Len()) })
	reg.GaugeFunc("stream_queue_depth",
		"Frames waiting in the bounded ingest queue.", queueDepth)
	return m
}
