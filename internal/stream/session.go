package stream

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sensorcal/internal/hash"
)

// A sensor session is a cheap state machine:
//
//	register ──► streaming ──(idle > IdleAfter)──► evicted
//	                 ▲ │
//	                 └─┘ every frame refreshes lastSeen
//
// Registration happens explicitly (POST /api/stream/register) or
// implicitly on a sensor's first frame; eviction is a periodic sweep, so
// a fleet where most sensors are quiet costs only the table entries of
// the active ones. The table is lock-striped by sensor ID hash exactly
// like the trust collector's ingest state: 10k sensors registering and
// streaming concurrently spread across stripes instead of serializing.

// ErrSessionLimit is returned when registering would exceed the
// configured session cap. HTTP maps it to 429 + Retry-After: the fleet
// is full, try again after churn.
var ErrSessionLimit = errors.New("stream: session limit reached")

// ErrEvicted is returned for operations on a session that lost the race
// with the idle sweeper.
var ErrEvicted = errors.New("stream: session evicted")

// Session is one sensor's streaming state. Mutable fields are guarded by
// mu; the aggregation fold is the only writer in the steady state.
type Session struct {
	ID string
	// Registered is when the session entered the table.
	Registered time.Time

	mu       sync.Mutex
	lastSeen time.Time
	frames   uint64
	occSum   float64 // sum of per-frame occupied-bin fractions
	evicted  bool
}

// touch refreshes the idle clock and folds one frame's occupancy
// fraction into the session aggregate. It reports whether the session is
// an evicted tombstone — the fold still lands (the frame was admitted
// under this session and its grid contribution already counted), but the
// caller can account for aggregates that no live session will ever
// serve.
func (s *Session) touch(at time.Time, occFraction float64) (evicted bool) {
	s.mu.Lock()
	if at.After(s.lastSeen) {
		s.lastSeen = at
	}
	s.frames++
	s.occSum += occFraction
	evicted = s.evicted
	s.mu.Unlock()
	return evicted
}

// SessionStats is a point-in-time snapshot of one session's aggregate.
type SessionStats struct {
	ID         string    `json:"id"`
	Registered time.Time `json:"registered"`
	LastSeen   time.Time `json:"last_seen"`
	Frames     uint64    `json:"frames"`
	// MeanOccupancy is the mean occupied-bin fraction across the
	// session's frames.
	MeanOccupancy float64 `json:"mean_occupancy"`
}

// Stats snapshots the session.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SessionStats{ID: s.ID, Registered: s.Registered, LastSeen: s.lastSeen, Frames: s.frames}
	if s.frames > 0 {
		st.MeanOccupancy = s.occSum / float64(s.frames)
	}
	return st
}

// sessionStripe is one lock-striped shard of the table, padded so
// neighbouring stripes do not share a cache line under write contention.
type sessionStripe struct {
	mu sync.RWMutex
	m  map[string]*Session
	_  [32]byte
}

// SessionTable holds the fleet's sessions, striped by FNV-1a hash of the
// sensor ID.
type SessionTable struct {
	stripes []sessionStripe
	mask    uint64
	max     int
	count   atomic.Int64
	evicted atomic.Int64
}

// NewSessionTable returns a table bounded at max sessions (zero means
// 16384), striped across stripes locks (rounded up to a power of two,
// zero means 16).
func NewSessionTable(max, stripes int) *SessionTable {
	if max <= 0 {
		max = 16384
	}
	n := 1
	if stripes <= 0 {
		stripes = 16
	}
	for n < stripes {
		n <<= 1
	}
	t := &SessionTable{stripes: make([]sessionStripe, n), mask: uint64(n - 1), max: max}
	for i := range t.stripes {
		t.stripes[i].m = make(map[string]*Session)
	}
	return t
}

func (t *SessionTable) stripe(id string) *sessionStripe {
	// The same shared hash the trust collector stripes by.
	return &t.stripes[hash.FNV1a(id)&t.mask]
}

// Acquire returns the session for id, registering it when absent. The
// common case — the session exists — takes only the stripe's read lock.
func (t *SessionTable) Acquire(id string, now time.Time) (*Session, error) {
	if id == "" {
		return nil, fmt.Errorf("stream: empty sensor id")
	}
	st := t.stripe(id)
	st.mu.RLock()
	s := st.m[id]
	st.mu.RUnlock()
	if s != nil {
		return s, nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if s = st.m[id]; s != nil {
		return s, nil
	}
	// The cap check races benignly across stripes: a burst of brand-new
	// sensors can overshoot by at most one per stripe, which is fine for
	// a shed threshold.
	if int(t.count.Load()) >= t.max {
		return nil, ErrSessionLimit
	}
	s = &Session{ID: id, Registered: now, lastSeen: now}
	st.m[id] = s
	t.count.Add(1)
	return s, nil
}

// Get returns the session for id, or nil.
func (t *SessionTable) Get(id string) *Session {
	st := t.stripe(id)
	st.mu.RLock()
	s := st.m[id]
	st.mu.RUnlock()
	return s
}

// Len returns the live session count.
func (t *SessionTable) Len() int { return int(t.count.Load()) }

// Evicted returns the total evictions since the table was created.
func (t *SessionTable) Evicted() int64 { return t.evicted.Load() }

// EvictIdle removes every session whose lastSeen is before cutoff and
// returns how many were evicted. A frame of an evicted session that was
// already in flight still folds into the shared grid, and its session
// aggregation lands on the evicted tombstone — never on a fresh session
// the same sensor ID re-registered in the meantime. The dispatcher folds
// through the *Session captured at admission (not a by-ID lookup), so an
// evict/re-register cycle between admission and fold cannot resurrect
// the old session's aggregates inside the new one.
func (t *SessionTable) EvictIdle(cutoff time.Time) int {
	n := 0
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		for id, s := range st.m {
			s.mu.Lock()
			idle := s.lastSeen.Before(cutoff)
			if idle {
				s.evicted = true
			}
			s.mu.Unlock()
			if idle {
				delete(st.m, id)
				n++
			}
		}
		st.mu.Unlock()
	}
	if n > 0 {
		t.count.Add(int64(-n))
		t.evicted.Add(int64(n))
	}
	return n
}
