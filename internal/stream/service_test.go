package stream

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"sensorcal/internal/obs"
	"sensorcal/internal/resilience"
)

func testConfig() Config {
	return Config{
		FFTSize:  64,
		QueueCap: 256,
		MaxBatch: 16,
		Linger:   -1, // greedy dispatch, no timer dependence
		Workers:  2,
		Registry: obs.NewRegistry(),
		Grid:     GridConfig{LowHz: 500e6, HighHz: 700e6},
	}
}

// waitIdle waits until every accepted frame has been processed.
func waitIdle(t *testing.T, s *Service, accepted *int64, done *int64, mu *sync.Mutex) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		ok := *done >= *accepted
		mu.Unlock()
		if ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("frames not drained in time")
}

// TestServiceEndToEnd drives frames through ingest → batch FFT → grid
// and checks the occupancy query sees the carrier.
func TestServiceEndToEnd(t *testing.T) {
	s, err := NewService(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var mu sync.Mutex
	var accepted, doneN int64
	at := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 200; i++ {
		frame := randFrame(64, int64(i))
		err := s.Ingest(IngestFrame{
			Sensor:     fmt.Sprintf("sensor-%d", i%20),
			At:         at,
			CenterHz:   600e6,
			SampleRate: 2.4e6,
			IQ:         frame,
			Done: func() {
				mu.Lock()
				doneN++
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
		mu.Lock()
		accepted++
		mu.Unlock()
	}
	waitIdle(t, s, &accepted, &doneN, &mu)

	if got := s.Sessions().Len(); got != 20 {
		t.Fatalf("sessions = %d, want 20", got)
	}
	occ, err := s.Grid().Query(590e6, 610e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(occ.Slots) == 0 {
		t.Fatal("occupancy empty after 200 folded frames")
	}
	var frames uint64
	anyOccupied := false
	for _, sl := range occ.Slots {
		frames += sl.Frames
		for _, f := range sl.Occupancy {
			if f > 0 {
				anyOccupied = true
			}
		}
	}
	if frames != 200 {
		t.Fatalf("grid folded %d frames, want 200", frames)
	}
	if !anyOccupied {
		t.Fatal("tone frames produced zero occupancy")
	}
	// Session aggregates moved too.
	st := s.Sessions().Get("sensor-0").Stats()
	if st.Frames != 10 || st.MeanOccupancy <= 0 {
		t.Fatalf("session aggregate: %+v", st)
	}
}

// TestIngestBackpressure pins every shed path: malformed, out-of-band,
// queue-full, session-limit.
func TestIngestBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.QueueCap = 4
	cfg.MaxSessions = 2
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stall the dispatcher so the queue actually fills: park it on a
	// fold that blocks until we release it.
	block := make(chan struct{})
	var hookOnce sync.Once
	s.foldHook = func() error {
		hookOnce.Do(func() { <-block })
		return nil
	}
	defer func() {
		close(block)
		s.Close()
	}()

	frame := randFrame(64, 1)
	good := func(sensor string) IngestFrame {
		return IngestFrame{Sensor: sensor, CenterHz: 600e6, SampleRate: 2.4e6, IQ: frame}
	}

	if err := s.Ingest(IngestFrame{Sensor: "a", CenterHz: 600e6, SampleRate: 2.4e6, IQ: frame[:10]}); err == nil {
		t.Fatal("short frame accepted")
	}
	if err := s.Ingest(IngestFrame{Sensor: "a", CenterHz: 100e6, SampleRate: 2.4e6, IQ: frame}); !errors.Is(err, ErrOutOfBand) {
		t.Fatalf("out-of-band: %v", err)
	}
	// Two sessions fit; the third is shed.
	if err := s.Ingest(good("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(good("b")); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(good("c")); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("session limit: %v", err)
	}
	// Fill the queue. The parked dispatcher may have pulled up to one
	// batch out of it first, so allow QueueCap+MaxBatch accepts before
	// demanding overflow.
	overflowed := false
	for i := 0; i < cfg.QueueCap+cfg.MaxBatch+8; i++ {
		if err := s.Ingest(good("a")); err != nil {
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("overflow: %v", err)
			}
			overflowed = true
			break
		}
	}
	if !overflowed {
		t.Fatal("bounded queue never shed")
	}
	if err := s.Ingest(good("a")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue full: %v", err)
	}
}

// TestBreakerShedsDegraded pins the breaker path: persistent fold
// failures trip it open and ingest sheds with ErrDegraded.
func TestBreakerShedsDegraded(t *testing.T) {
	cfg := testConfig()
	cfg.Breaker = resilience.NewBreaker(resilience.BreakerConfig{
		Name: "test", FailureThreshold: 2, OpenFor: time.Hour,
	})
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.foldHook = func() error { return errors.New("aggregation down") }

	frame := randFrame(64, 2)
	for i := 0; i < 10; i++ {
		err := s.Ingest(IngestFrame{Sensor: "a", CenterHz: 600e6, SampleRate: 2.4e6, IQ: frame})
		if errors.Is(err, ErrDegraded) {
			if !s.Degraded() {
				t.Fatal("shed degraded but Degraded() false")
			}
			return
		}
		if err != nil {
			t.Fatalf("unexpected ingest error: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("breaker never opened after persistent fold failures")
}

// TestHTTPStreamAndOccupancy exercises the wire surface end to end:
// register, stream base64 frames, query occupancy and stats.
func TestHTTPStreamAndOccupancy(t *testing.T) {
	s, err := NewService(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(path string, body interface{}) (*http.Response, []byte) {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	resp, _ := post("/api/stream/register", map[string]string{"id": "web-1"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d", resp.StatusCode)
	}

	frames := make([]wireFrame, 10)
	at := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i := range frames {
		frames[i] = wireFrame{
			Sensor: "web-1", At: at, CenterHz: 600e6, SampleRate: 2.4e6,
			IQB64: EncodeIQ(randFrame(64, int64(i))),
		}
	}
	resp, body := post("/api/stream/frames", framesRequest{Frames: frames})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("frames: %d %s", resp.StatusCode, body)
	}
	var fr framesResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Accepted != 10 || fr.Shed != 0 {
		t.Fatalf("frames response: %+v", fr)
	}

	// Wait for the folds, then query.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Sessions().Get("web-1")
		if st != nil && st.Stats().Frames >= 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("frames not folded")
		}
		time.Sleep(time.Millisecond)
	}
	r2, err := http.Get(srv.URL + "/api/occupancy?band=590e6:610e6")
	if err != nil {
		t.Fatal(err)
	}
	var occ BandOccupancy
	if err := json.NewDecoder(r2.Body).Decode(&occ); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK || len(occ.Slots) == 0 {
		t.Fatalf("occupancy: %d slots=%d", r2.StatusCode, len(occ.Slots))
	}

	r3, err := http.Get(srv.URL + "/api/stream/stats?sensor=web-1")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(r3.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if st.Sessions < 1 || st.Sensor == nil || st.Sensor.Frames != 10 {
		t.Fatalf("stats: %+v", st)
	}

	// A malformed batch is rejected with 400, not silently dropped.
	resp, _ = post("/api/stream/frames", framesRequest{Frames: []wireFrame{
		{Sensor: "web-1", CenterHz: 600e6, SampleRate: 2.4e6, IQB64: "not-base64!"},
	}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed frame: %d", resp.StatusCode)
	}
}

// TestHTTPShedStatuses pins the 429 mapping when the whole batch sheds
// on backpressure.
func TestHTTPShedStatuses(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSessions = 1
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if _, err := s.Register("only"); err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(framesRequest{Frames: []wireFrame{{
		Sensor: "someone-else", CenterHz: 600e6, SampleRate: 2.4e6,
		IQB64: EncodeIQ(randFrame(64, 9)),
	}}})
	resp, err := http.Post(srv.URL+"/api/stream/frames", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("session-limit shed: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestEvictionAndReregistration pins the session lifecycle: idle
// sessions are swept, and an evicted sensor transparently re-registers
// on its next frame.
func TestEvictionAndReregistration(t *testing.T) {
	cfg := testConfig()
	cfg.IdleAfter = 10 * time.Millisecond
	cfg.SweepEvery = 2 * time.Millisecond
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := s.Register("ephemeral"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Sessions().Len() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session never evicted")
		}
		time.Sleep(time.Millisecond)
	}
	if s.Sessions().Evicted() == 0 {
		t.Fatal("eviction counter did not move")
	}
	// The sensor comes back with a frame.
	if err := s.Ingest(IngestFrame{Sensor: "ephemeral", CenterHz: 600e6, SampleRate: 2.4e6, IQ: randFrame(64, 3)}); err != nil {
		t.Fatal(err)
	}
	if s.Sessions().Get("ephemeral") == nil {
		t.Fatal("sensor did not re-register on its next frame")
	}
}
