package stream

import (
	"testing"
)

// BenchmarkEngineBatched measures the shared-engine cost per frame at a
// realistic batch size. The companion claim — allocs/frame ≈ 0 in the
// steady state — is what makes 10k sensors on one engine viable.
func BenchmarkEngineBatched(b *testing.B) {
	const n = 256
	const batch = 64
	eng, err := NewEngine(n, nil)
	if err != nil {
		b.Fatal(err)
	}
	jobs := make([]Job, batch)
	for i := range jobs {
		jobs[i] = Job{IQ: randFrame(n, int64(i)), SampleRate: 2.4e6, Bins: make([]float64, n)}
	}
	if err := eng.Process(jobs); err != nil { // warm pools and caches
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Process(jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialReference is the unshared baseline the batched engine
// is judged against (same work per frame, per-sensor windows/FFT/allocs).
func BenchmarkSerialReference(b *testing.B) {
	const n = 256
	frame := randFrame(n, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SerialReference(frame, 2.4e6, n, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEngineSteadyStateAllocs pins the allocation contract directly:
// after warm-up, a batch through the engine allocates nothing.
func TestEngineSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	const n = 256
	const batch = 16
	eng, err := NewEngine(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, batch)
	for i := range jobs {
		jobs[i] = Job{IQ: randFrame(n, int64(i)), SampleRate: 2.4e6, Bins: make([]float64, n)}
	}
	work := func() {
		if err := eng.Process(jobs); err != nil {
			t.Fatal(err)
		}
	}
	work()
	if avg := testing.AllocsPerRun(100, work); avg > 0.5 {
		t.Fatalf("steady-state batch allocates %.2f objects, want 0", avg)
	}
}
