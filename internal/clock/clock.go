// Package clock provides a time source abstraction so that every
// time-driven component in the simulator (transponders, measurement
// procedures, ground-truth latency) can run against either the wall clock
// or a fast deterministic simulated clock.
//
// The paper's measurement procedure is inherently time-structured: a 30 s
// ADS-B capture with a ground-truth query 15 s in, transponders emitting at
// least twice per second, and a flight-tracking service with 10 s latency.
// Tests and benchmarks replay that structure thousands of times faster than
// real time through Simulated.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is a minimal time source. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the caller for d of this clock's time.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
}

// System is the wall clock.
type System struct{}

// Now implements Clock.
func (System) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (System) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (System) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Simulated is a manually advanced clock. Time moves only when Advance or
// Run is called, which makes long measurement campaigns instantaneous and
// perfectly reproducible.
type Simulated struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     int64
}

// NewSimulated returns a simulated clock starting at start.
func NewSimulated(start time.Time) *Simulated {
	return &Simulated{now: start}
}

type waiter struct {
	at  time.Time
	seq int64
	ch  chan time.Time
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// Now implements Clock.
func (c *Simulated) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After implements Clock. The returned channel has capacity 1 so Advance
// never blocks delivering to an abandoned timer.
func (c *Simulated) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.seq++
	heap.Push(&c.waiters, &waiter{at: c.now.Add(d), seq: c.seq, ch: ch})
	return ch
}

// Sleep implements Clock. It blocks until another goroutine advances the
// clock past the deadline. Sleeping on a simulated clock from the same
// goroutine that drives Advance deadlocks by construction; drive the clock
// from a separate goroutine or use After.
func (c *Simulated) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-c.After(d)
}

// Advance moves the clock forward by d, firing timers in deadline order.
func (c *Simulated) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	for len(c.waiters) > 0 && !c.waiters[0].at.After(target) {
		w := heap.Pop(&c.waiters).(*waiter)
		c.now = w.at
		w.ch <- w.at
	}
	c.now = target
	c.mu.Unlock()
}

// Pending reports the number of outstanding timers; useful in tests.
func (c *Simulated) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
