package clock

import (
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

func TestSimulatedNowAdvances(t *testing.T) {
	c := NewSimulated(t0)
	if !c.Now().Equal(t0) {
		t.Fatal("start time wrong")
	}
	c.Advance(30 * time.Second)
	if !c.Now().Equal(t0.Add(30 * time.Second)) {
		t.Errorf("now = %v", c.Now())
	}
}

func TestSimulatedAfterFiresInOrder(t *testing.T) {
	c := NewSimulated(t0)
	a := c.After(10 * time.Second)
	b := c.After(5 * time.Second)
	c.Advance(20 * time.Second)
	tb := <-b
	ta := <-a
	if !tb.Equal(t0.Add(5 * time.Second)) {
		t.Errorf("b fired at %v", tb)
	}
	if !ta.Equal(t0.Add(10 * time.Second)) {
		t.Errorf("a fired at %v", ta)
	}
	if c.Pending() != 0 {
		t.Errorf("pending = %d", c.Pending())
	}
}

func TestSimulatedAfterPartialAdvance(t *testing.T) {
	c := NewSimulated(t0)
	ch := c.After(10 * time.Second)
	c.Advance(5 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired early")
	default:
	}
	if c.Pending() != 1 {
		t.Errorf("pending = %d", c.Pending())
	}
	c.Advance(5 * time.Second)
	if got := <-ch; !got.Equal(t0.Add(10 * time.Second)) {
		t.Errorf("fired at %v", got)
	}
}

func TestSimulatedZeroAfterFiresImmediately(t *testing.T) {
	c := NewSimulated(t0)
	select {
	case <-c.After(0):
	default:
		t.Error("zero-delay After should be ready")
	}
}

func TestSimulatedSleepUnblocksOnAdvance(t *testing.T) {
	c := NewSimulated(t0)
	var wg sync.WaitGroup
	wg.Add(1)
	done := make(chan struct{})
	go func() {
		defer wg.Done()
		c.Sleep(time.Second)
		close(done)
	}()
	// Wait for the sleeper to register its timer.
	for c.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	c.Advance(time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("sleep did not unblock")
	}
	wg.Wait()
	// Zero/negative sleep returns immediately.
	c.Sleep(0)
	c.Sleep(-time.Second)
}

func TestSystemClockSane(t *testing.T) {
	var c System
	before := time.Now()
	got := c.Now()
	if got.Before(before.Add(-time.Second)) {
		t.Error("system clock in the past")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Error("system After did not fire")
	}
	c.Sleep(time.Millisecond)
}
