// Package hash holds the one string hash the whole system stripes and
// routes by. Three packages used to carry private copies of the same
// FNV-1a loop — trust's lock stripes, the replica ring's placement and
// the stream session table — which meant a well-meaning edit to any one
// of them could silently diverge stripe selection from ring placement.
// They all import this package now, and a cross-package identity test
// pins the constants, so the hash can only change everywhere at once.
package hash

// FNV1a is the 64-bit FNV-1a hash, inlined so callers on hot paths do
// not allocate a hash.Hash. The identity test cross-checks it against
// stdlib hash/fnv.
func FNV1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Mix64 is the splitmix64 avalanche finalizer. Raw FNV-1a is fine when
// only the low bits are read through a mask (lock striping), but keys
// differing in their last byte — "node-1" vs "node-2", exactly the
// fleet's naming shape — land within a few multiples of the FNV prime
// of each other. Mix64 spreads them across the full 64-bit range, which
// the consistent-hash ring needs for placement and the dedup fast path
// needs so slot selection stays independent of stripe selection (both
// start from the same FNV1a value but must not share low bits).
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
