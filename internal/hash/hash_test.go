package hash

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// TestFNV1aMatchesStdlib cross-checks the inlined loop against stdlib
// hash/fnv for fixed and generated strings. trust, replica and stream
// all stripe/route by this function; if the loop ever drifted from
// FNV-1a proper, stripe selection and ring placement would reshuffle
// fleet-wide.
func TestFNV1aMatchesStdlib(t *testing.T) {
	cases := []string{
		"", "a", "ab", "node-1", "node-2", "tv-583", "k-0-0-0",
		"replica-a#0", "sensor-00042", "\x00\xff\x00",
	}
	for i := 0; i < 256; i++ {
		cases = append(cases, fmt.Sprintf("gen-%d-%x", i, i*2654435761))
	}
	for _, s := range cases {
		ref := fnv.New64a()
		ref.Write([]byte(s))
		if got, want := FNV1a(s), ref.Sum64(); got != want {
			t.Fatalf("FNV1a(%q) = %#x, want stdlib %#x", s, got, want)
		}
	}
}

// TestFNV1aPinnedConstants pins the offset basis and a known vector so
// the constants cannot be edited without tripping a test.
func TestFNV1aPinnedConstants(t *testing.T) {
	if got := FNV1a(""); got != 14695981039346656037 {
		t.Errorf("FNV1a(\"\") = %d, want offset basis 14695981039346656037", got)
	}
	if got := FNV1a("a"); got != 0xaf63dc4c8601ec8c {
		t.Errorf("FNV1a(\"a\") = %#x, want %#x", got, uint64(0xaf63dc4c8601ec8c))
	}
}

// TestMix64Pinned pins the splitmix64 finalizer to the reference
// sequence: splitmix64 seeded with 0 first advances its state by the
// golden gamma and then applies exactly this mixer, so Mix64(gamma)
// must equal the generator's first output.
func TestMix64Pinned(t *testing.T) {
	if got := Mix64(0x9e3779b97f4a7c15); got != 0xe220a8397b1dcdaf {
		t.Errorf("Mix64(golden gamma) = %#x, want %#x", got, uint64(0xe220a8397b1dcdaf))
	}
	if got := Mix64(0); got != 0 {
		t.Errorf("Mix64(0) = %#x, want 0 (fixed point of the mixer)", got)
	}
}
