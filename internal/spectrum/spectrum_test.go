package spectrum

import (
	"bytes"
	"math"
	"testing"
	"time"

	"sensorcal/internal/iq"
	"sensorcal/internal/sdr"
)

// capture synthesizes a frame from the given emissions.
func capture(t *testing.T, seed int64, centerHz, rate float64, ems []sdr.Emission) *Frame {
	t.Helper()
	dev := sdr.New(sdr.BladeRFxA9(), seed)
	dev.DisableQuantization = true
	if err := dev.Tune(centerHz); err != nil {
		t.Fatal(err)
	}
	if err := dev.SetSampleRate(rate); err != nil {
		t.Fatal(err)
	}
	if err := dev.SetGain(30); err != nil {
		t.Fatal(err)
	}
	buf, err := dev.Capture(1<<15, ems)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := NewAnalyzer().Analyze(buf, centerHz)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestAnalyzeBinGeometry(t *testing.T) {
	f := capture(t, 1, 600e6, 8e6, nil)
	if len(f.BinsDB) != 1024 {
		t.Fatalf("bins = %d", len(f.BinsDB))
	}
	if math.Abs(f.BinWidth()-8e6/1024) > 1e-9 {
		t.Errorf("bin width = %v", f.BinWidth())
	}
	// First bin sits at center − fs/2, last just below center + fs/2.
	if f.BinHz(0) < 596e6 || f.BinHz(0) > 596.1e6 {
		t.Errorf("bin 0 at %v", f.BinHz(0))
	}
	if f.BinHz(1023) < 603.9e6 || f.BinHz(1023) > 604e6 {
		t.Errorf("last bin at %v", f.BinHz(1023))
	}
}

func TestAnalyzeRejectsShortCapture(t *testing.T) {
	buf := iq.New(100, 1e6)
	if _, err := NewAnalyzer().Analyze(buf, 1e9); err == nil {
		t.Error("short capture should error")
	}
}

func TestPeakFindsTone(t *testing.T) {
	// A -40 dBm tone at +1.5 MHz from a 600 MHz center.
	f := capture(t, 2, 600e6, 8e6, []sdr.Emission{sdr.Tone{OffsetHz: 1.5e6, PowerDBm: -40}})
	hz, db := f.Peak()
	if math.Abs(hz-601.5e6) > 2*f.BinWidth() {
		t.Errorf("peak at %v, want ≈601.5 MHz", hz)
	}
	// -40 dBm at gain 30 with +10 dBm FS → -20 dBFS concentrated in one
	// bin (plus windowing spread).
	if db < -26 || db > -18 {
		t.Errorf("peak power = %v dBFS", db)
	}
}

func TestNoiseFloorTracksDeviceFloor(t *testing.T) {
	f := capture(t, 3, 600e6, 8e6, nil)
	floor := f.NoiseFloorDB(0.25)
	// Thermal floor: -174+10log10(8e6/1024 bins... per-bin bandwidth)
	// ≈ -174 + 38.9 + 6 NF + 30 gain - 10 FS ≈ -109 dBFS per bin.
	if floor < -114 || floor > -104 {
		t.Errorf("noise floor = %v dBFS per bin", floor)
	}
	// Estimation must be robust to a strong signal occupying some band.
	withSig := capture(t, 3, 600e6, 8e6, []sdr.Emission{
		sdr.NoiseBand{CenterOffsetHz: -2e6, BandwidthHz: 2e6, PowerDBm: -30},
	})
	floor2 := withSig.NoiseFloorDB(0.25)
	if math.Abs(floor2-floor) > 2 {
		t.Errorf("floor moved from %v to %v with a signal present", floor, floor2)
	}
	// Bad fraction falls back to the default rather than panicking.
	_ = f.NoiseFloorDB(-1)
	_ = f.NoiseFloorDB(2)
}

func TestOccupancyMarksSignalBins(t *testing.T) {
	f := capture(t, 4, 600e6, 8e6, []sdr.Emission{
		sdr.NoiseBand{CenterOffsetHz: 1e6, BandwidthHz: 1e6, PowerDBm: -40},
	})
	occ := f.Occupancy(6)
	inBand, outBand := 0, 0
	for i, o := range occ {
		hz := f.BinHz(i)
		if hz > 600.6e6 && hz < 601.4e6 {
			if o {
				inBand++
			}
		} else if hz < 599e6 || hz > 603e6 {
			if o {
				outBand++
			}
		}
	}
	if inBand < 90 {
		t.Errorf("in-band occupied bins = %d, want most of ~102", inBand)
	}
	if outBand > 8 {
		t.Errorf("out-of-band occupied bins = %d, want ≈0", outBand)
	}
}

func TestChannelOccupancy(t *testing.T) {
	f := capture(t, 5, 600e6, 8e6, []sdr.Emission{
		sdr.NoiseBand{CenterOffsetHz: -1.5e6, BandwidthHz: 1e6, PowerDBm: -45},
	})
	channels := []Channel{
		{Name: "busy", LowHz: 598e6, HighHz: 599e6},
		{Name: "quiet", LowHz: 601e6, HighHz: 602e6},
		{Name: "outside", LowHz: 700e6, HighHz: 701e6},
		{Name: "degenerate", LowHz: 602e6, HighHz: 601e6},
	}
	reports := ChannelOccupancy(f, 6, channels)
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2 (outside and degenerate skipped)", len(reports))
	}
	if !reports[0].Occupied || reports[0].OccupiedFraction < 0.8 {
		t.Errorf("busy channel: %+v", reports[0])
	}
	if reports[1].Occupied {
		t.Errorf("quiet channel occupied: %+v", reports[1])
	}
	if reports[0].PowerDB <= reports[1].PowerDB {
		t.Error("busy channel should out-power quiet channel")
	}
	// Integrated power ≈ -45 dBm at 30 dB gain / +10 FS → -25 dBFS.
	if math.Abs(reports[0].PowerDB-(-25)) > 2 {
		t.Errorf("busy channel power = %v dBFS, want ≈ -25", reports[0].PowerDB)
	}
}

func TestDutyCycleAccumulates(t *testing.T) {
	d := NewDutyCycle()
	ch := Channel{Name: "x", LowHz: 0, HighHz: 1}
	for i := 0; i < 10; i++ {
		d.Add([]ChannelReport{{Channel: ch, Occupied: i < 3}})
	}
	frac, n := d.Fraction("x")
	if n != 10 || math.Abs(frac-0.3) > 1e-9 {
		t.Errorf("duty cycle = %v over %d", frac, n)
	}
	if frac, n := d.Fraction("missing"); frac != 0 || n != 0 {
		t.Error("unknown channel should be zeros")
	}
}

// TestOccupancyMatchesGroundTruthDutyCycle runs a bursty transmitter at
// 40% duty cycle across 20 frames and checks the measured duty cycle.
func TestOccupancyMatchesGroundTruthDutyCycle(t *testing.T) {
	d := NewDutyCycle()
	ch := Channel{Name: "burst", LowHz: 599.5e6, HighHz: 600.5e6}
	active := 0
	for i := 0; i < 20; i++ {
		var ems []sdr.Emission
		if i%5 < 2 { // 40% of frames
			active++
			ems = append(ems, sdr.NoiseBand{CenterOffsetHz: 0, BandwidthHz: 1e6, PowerDBm: -45})
		}
		f := capture(t, int64(100+i), 600e6, 8e6, ems)
		d.Add(ChannelOccupancy(f, 6, []Channel{ch}))
	}
	frac, n := d.Fraction("burst")
	if n != 20 {
		t.Fatalf("frames = %d", n)
	}
	want := float64(active) / 20
	if math.Abs(frac-want) > 0.05 {
		t.Errorf("duty cycle = %v, truth %v", frac, want)
	}
}

func TestUploadRoundTrip(t *testing.T) {
	f := capture(t, 7, 600e6, 8e6, []sdr.Emission{
		sdr.NoiseBand{CenterOffsetHz: 1e6, BandwidthHz: 1e6, PowerDBm: -50},
	})
	u, err := Pack("node-1", time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC), f)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := u.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Node != "node-1" || back.CenterHz != 600e6 {
		t.Errorf("header lost: %+v", back)
	}
	got, err := back.Unpack()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.BinsDB) != len(f.BinsDB) {
		t.Fatalf("bin count %d vs %d", len(got.BinsDB), len(f.BinsDB))
	}
	for i := range got.BinsDB {
		if math.Abs(got.BinsDB[i]-f.BinsDB[i]) > quantStep/2+1e-9 {
			t.Fatalf("bin %d: %v vs %v exceeds the quantization bound", i, got.BinsDB[i], f.BinsDB[i])
		}
	}
	// The reconstructed frame carries the same occupancy verdicts.
	a := ChannelOccupancy(f, 6, []Channel{{Name: "sig", LowHz: 600.6e6, HighHz: 601.4e6}})
	b := ChannelOccupancy(got, 6, []Channel{{Name: "sig", LowHz: 600.6e6, HighHz: 601.4e6}})
	if a[0].Occupied != b[0].Occupied {
		t.Error("occupancy verdict changed through upload quantization")
	}
}

func TestUploadErrors(t *testing.T) {
	if _, err := Pack("n", time.Now(), &Frame{}); err == nil {
		t.Error("empty frame should not pack")
	}
	if _, err := (&UploadFrame{}).Unpack(); err == nil {
		t.Error("empty upload should not unpack")
	}
	if _, err := (&UploadFrame{Q: []int16{1}, StepDB: 0}).Unpack(); err == nil {
		t.Error("zero step should not unpack")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte("{bad"))); err == nil {
		t.Error("garbage JSON should error")
	}
}
