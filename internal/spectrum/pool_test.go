package spectrum

import (
	"math"
	"math/rand"
	"testing"

	"sensorcal/internal/iq"
)

// noisyCapture builds a deterministic capture with a carrier and noise.
func noisyCapture(n int, rate float64, seed int64) *iq.Buffer {
	rng := rand.New(rand.NewSource(seed))
	buf := iq.New(n, rate)
	for i := range buf.Samples {
		ph := 2 * math.Pi * 300e3 * float64(i) / rate
		buf.Samples[i] = complex(0.3*math.Cos(ph)+0.01*rng.NormFloat64(),
			0.3*math.Sin(ph)+0.01*rng.NormFloat64())
	}
	return buf
}

// TestAnalyzeIntoMatchesAnalyze pins the pooled-scratch refactor: the
// reuse path produces bit-identical frames to the allocating one, and a
// recycled Frame fully forgets its previous contents.
func TestAnalyzeIntoMatchesAnalyze(t *testing.T) {
	a := NewAnalyzer()
	buf := noisyCapture(1<<14, 2.4e6, 3)
	want, err := a.Analyze(buf, 600e6)
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	f.BinsDB = make([]float64, a.FFTSize)
	for i := range f.BinsDB {
		f.BinsDB[i] = math.NaN() // must be overwritten
	}
	if err := a.AnalyzeInto(&f, buf, 600e6); err != nil {
		t.Fatal(err)
	}
	if f.CenterHz != want.CenterHz || f.SampleRate != want.SampleRate || len(f.BinsDB) != len(want.BinsDB) {
		t.Fatalf("frame header mismatch: %+v vs %+v", f, *want)
	}
	for i := range f.BinsDB {
		if math.Float64bits(f.BinsDB[i]) != math.Float64bits(want.BinsDB[i]) {
			t.Fatalf("bin %d: into %v != alloc %v", i, f.BinsDB[i], want.BinsDB[i])
		}
	}
	// Occupancy via the reuse form matches the allocating form.
	occ := want.Occupancy(6)
	dst := make([]bool, len(f.BinsDB))
	f.OccupancyInto(dst, 6)
	for i := range occ {
		if occ[i] != dst[i] {
			t.Fatalf("occupancy bin %d: into %v != alloc %v", i, dst[i], occ[i])
		}
	}
}

// TestAnalyzeIntoSteadyStateAllocs proves the one-shot scan path shares
// the engine's amortized kernels: after warm-up, a frame analysis plus
// channel occupancy allocates (almost) nothing per frame.
func TestAnalyzeIntoSteadyStateAllocs(t *testing.T) {
	a := NewAnalyzer()
	buf := noisyCapture(1<<14, 2.4e6, 4)
	// The tone sits at +300 kHz; keep the channel tight around it so the
	// >50%-of-bins occupancy rule sees mostly carrier bins.
	channels := []Channel{{Name: "ch", LowHz: 600e6 + 297e3, HighHz: 600e6 + 303e3}}
	var f Frame
	var reports []ChannelReport
	work := func() {
		if err := a.AnalyzeInto(&f, buf, 600e6); err != nil {
			t.Fatal(err)
		}
		reports = ChannelOccupancy(&f, 6, channels)
	}
	work() // warm caches and pools
	avg := testing.AllocsPerRun(50, work)
	// ChannelOccupancy still allocates its (tiny) report slice; anything
	// beyond a couple of allocations means a pooled path regressed.
	if avg > 3 {
		t.Fatalf("steady-state scan allocates %.1f objects/frame, want <= 3", avg)
	}
	if len(reports) != 1 || !reports[0].Occupied {
		t.Fatalf("carrier channel not detected: %+v", reports)
	}
}

func BenchmarkAnalyzeIntoSteadyState(b *testing.B) {
	a := NewAnalyzer()
	buf := noisyCapture(1<<14, 2.4e6, 5)
	var f Frame
	if err := a.AnalyzeInto(&f, buf, 600e6); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.AnalyzeInto(&f, buf, 600e6); err != nil {
			b.Fatal(err)
		}
	}
}
