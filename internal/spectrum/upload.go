package spectrum

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"
)

// Cloud upload format. The paper's §2: the host processes IQ locally and
// transmits the results "to the cloud for storage and further
// processing". Frames travel as JSON with quantized bins — 0.5 dB steps
// carried as int16 deltas keep a 1024-bin frame around 2–3 KB after
// transport compression, versus ~20 KB of raw float64s.

// UploadFrame is the serialized form of a Frame.
type UploadFrame struct {
	Node       string    `json:"node"`
	At         time.Time `json:"at"`
	CenterHz   float64   `json:"center_hz"`
	SampleRate float64   `json:"sample_rate"`
	// RefDB is the reference level; bins are reconstructed as
	// RefDB + Q*step.
	RefDB float64 `json:"ref_db"`
	// StepDB is the quantization step (0.5 dB).
	StepDB float64 `json:"step_db"`
	// Q holds the quantized offsets from RefDB.
	Q []int16 `json:"q"`
}

// quantStep is the bin quantization in dB.
const quantStep = 0.5

// Pack converts a frame into its upload form.
func Pack(node string, at time.Time, f *Frame) (*UploadFrame, error) {
	if len(f.BinsDB) == 0 {
		return nil, fmt.Errorf("spectrum: empty frame")
	}
	ref := f.BinsDB[0]
	for _, v := range f.BinsDB {
		if v < ref {
			ref = v
		}
	}
	u := &UploadFrame{
		Node: node, At: at.UTC(),
		CenterHz: f.CenterHz, SampleRate: f.SampleRate,
		RefDB: ref, StepDB: quantStep,
		Q: make([]int16, len(f.BinsDB)),
	}
	for i, v := range f.BinsDB {
		q := math.Round((v - ref) / quantStep)
		if q > math.MaxInt16 {
			q = math.MaxInt16
		}
		u.Q[i] = int16(q)
	}
	return u, nil
}

// Unpack reconstructs the frame (bins within ±StepDB/2 of the original).
func (u *UploadFrame) Unpack() (*Frame, error) {
	if len(u.Q) == 0 {
		return nil, fmt.Errorf("spectrum: empty upload frame")
	}
	if u.StepDB <= 0 {
		return nil, fmt.Errorf("spectrum: invalid step %v", u.StepDB)
	}
	f := &Frame{
		CenterHz:   u.CenterHz,
		SampleRate: u.SampleRate,
		BinsDB:     make([]float64, len(u.Q)),
	}
	for i, q := range u.Q {
		f.BinsDB[i] = u.RefDB + float64(q)*u.StepDB
	}
	return f, nil
}

// WriteJSON streams the upload frame to w.
func (u *UploadFrame) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(u)
}

// ReadJSON parses one upload frame from r.
func ReadJSON(r io.Reader) (*UploadFrame, error) {
	var u UploadFrame
	if err := json.NewDecoder(r).Decode(&u); err != nil {
		return nil, fmt.Errorf("spectrum: decoding upload: %w", err)
	}
	return &u, nil
}
