// Package spectrum implements the service the calibrated sensors actually
// sell: spectrum monitoring. The paper's §2 describes the node-side
// processing — "signal detection or computing the Fast Fourier Transform,
// before transmitting the data to the cloud" — and this package provides
// exactly that pipeline:
//
//   - averaged-periodogram PSD frames from raw IQ (the FFT the host
//     computes before upload);
//   - robust noise-floor estimation from the PSD itself (median of the
//     quietest bins), so occupancy thresholds need no manual calibration;
//   - energy-detection occupancy: which bins, and which configured
//     channels, carry signal above the floor;
//   - duty-cycle accumulation across frames, the quantity regulators and
//     renters ask for.
//
// Everything here is what the calibration system protects: a sensor with
// an unknown field of view or a dead band produces confidently wrong
// occupancy data, which is why nodes carry calib.Report grades.
package spectrum

import (
	"fmt"
	"math"
	"sort"

	"sensorcal/internal/dsp"
	"sensorcal/internal/iq"
)

// Frame is one averaged PSD snapshot.
type Frame struct {
	CenterHz   float64
	SampleRate float64
	// BinsDB holds the power per bin in dBFS, ordered from the lowest
	// frequency (center − rate/2) upward.
	BinsDB []float64
}

// BinHz returns the absolute frequency of bin i.
func (f *Frame) BinHz(i int) float64 {
	n := len(f.BinsDB)
	return f.CenterHz - f.SampleRate/2 + (float64(i)+0.5)*f.SampleRate/float64(n)
}

// BinWidth returns the frequency span of one bin.
func (f *Frame) BinWidth() float64 { return f.SampleRate / float64(len(f.BinsDB)) }

// Analyzer converts IQ captures into PSD frames.
type Analyzer struct {
	// FFTSize is the periodogram length (power of two).
	FFTSize int
	// Window shapes each segment.
	Window dsp.WindowFunc
}

// NewAnalyzer returns an analyzer with Electrosense-like defaults
// (1024-bin Hann-windowed Welch PSD).
func NewAnalyzer() *Analyzer {
	return &Analyzer{FFTSize: 1024, Window: dsp.Hann}
}

// Analyze computes a PSD frame from a capture taken at centerHz.
func (a *Analyzer) Analyze(buf *iq.Buffer, centerHz float64) (*Frame, error) {
	if len(buf.Samples) < a.FFTSize {
		return nil, fmt.Errorf("spectrum: capture shorter than FFT size")
	}
	psd, err := dsp.WelchPSD(buf.Samples, buf.SampleRate, a.FFTSize, a.Window)
	if err != nil {
		return nil, err
	}
	n := len(psd.Density)
	frame := &Frame{CenterHz: centerHz, SampleRate: buf.SampleRate, BinsDB: make([]float64, n)}
	binWidth := buf.SampleRate / float64(n)
	// Reorder FFT bins (DC first) into ascending frequency and convert
	// to per-bin power in dBFS.
	for i := 0; i < n; i++ {
		srcIdx := (i + n/2) % n // bin 0 of the frame is −fs/2
		p := psd.Density[srcIdx] * binWidth
		frame.BinsDB[i] = iq.PowerToDBFS(p)
	}
	return frame, nil
}

// NoiseFloorDB estimates the frame's noise floor as the median of the
// quietest fraction of bins — robust to any number of active signals as
// long as some of the band is quiet.
func (f *Frame) NoiseFloorDB(quietFraction float64) float64 {
	if quietFraction <= 0 || quietFraction > 1 {
		quietFraction = 0.25
	}
	sorted := append([]float64(nil), f.BinsDB...)
	sort.Float64s(sorted)
	k := int(float64(len(sorted)) * quietFraction)
	if k < 1 {
		k = 1
	}
	return sorted[k/2]
}

// Occupancy marks each bin above the noise floor by at least marginDB.
func (f *Frame) Occupancy(marginDB float64) []bool {
	floor := f.NoiseFloorDB(0.25)
	out := make([]bool, len(f.BinsDB))
	for i, p := range f.BinsDB {
		out[i] = p >= floor+marginDB
	}
	return out
}

// Channel is a named frequency span of interest to a renter.
type Channel struct {
	Name   string
	LowHz  float64
	HighHz float64
}

// ChannelReport is the occupancy verdict for one channel in one frame.
type ChannelReport struct {
	Channel Channel
	// PowerDB is the channel's integrated power in dBFS.
	PowerDB float64
	// OccupiedFraction is the share of the channel's bins above threshold.
	OccupiedFraction float64
	// Occupied applies the conventional >50% bin rule.
	Occupied bool
}

// ChannelOccupancy evaluates the configured channels against a frame.
// Channels outside the frame's span are skipped.
func ChannelOccupancy(f *Frame, marginDB float64, channels []Channel) []ChannelReport {
	occ := f.Occupancy(marginDB)
	var out []ChannelReport
	lo := f.CenterHz - f.SampleRate/2
	hi := f.CenterHz + f.SampleRate/2
	for _, ch := range channels {
		if ch.HighHz <= lo || ch.LowHz >= hi || ch.HighHz <= ch.LowHz {
			continue
		}
		var sum float64
		var bins, hit int
		for i := range f.BinsDB {
			hz := f.BinHz(i)
			if hz < ch.LowHz || hz >= ch.HighHz {
				continue
			}
			bins++
			sum += iq.DBFSToPower(f.BinsDB[i])
			if occ[i] {
				hit++
			}
		}
		if bins == 0 {
			continue
		}
		r := ChannelReport{
			Channel:          ch,
			PowerDB:          iq.PowerToDBFS(sum),
			OccupiedFraction: float64(hit) / float64(bins),
		}
		r.Occupied = r.OccupiedFraction > 0.5
		out = append(out, r)
	}
	return out
}

// DutyCycle accumulates per-channel occupancy across frames — the
// longitudinal statistic spectrum renters pay for.
type DutyCycle struct {
	counts map[string]int
	hits   map[string]int
}

// NewDutyCycle returns an empty accumulator.
func NewDutyCycle() *DutyCycle {
	return &DutyCycle{counts: map[string]int{}, hits: map[string]int{}}
}

// Add folds one frame's channel reports in.
func (d *DutyCycle) Add(reports []ChannelReport) {
	for _, r := range reports {
		d.counts[r.Channel.Name]++
		if r.Occupied {
			d.hits[r.Channel.Name]++
		}
	}
}

// Fraction returns the observed duty cycle for a channel and the number
// of frames it was measured in.
func (d *DutyCycle) Fraction(name string) (float64, int) {
	n := d.counts[name]
	if n == 0 {
		return 0, 0
	}
	return float64(d.hits[name]) / float64(n), n
}

// Peak returns the strongest bin in the frame and its frequency: the
// quick "what is that carrier" primitive.
func (f *Frame) Peak() (hz, db float64) {
	best := 0
	for i, p := range f.BinsDB {
		if p > f.BinsDB[best] {
			best = i
		}
	}
	if len(f.BinsDB) == 0 {
		return 0, math.Inf(-1)
	}
	return f.BinHz(best), f.BinsDB[best]
}
