// Package spectrum implements the service the calibrated sensors actually
// sell: spectrum monitoring. The paper's §2 describes the node-side
// processing — "signal detection or computing the Fast Fourier Transform,
// before transmitting the data to the cloud" — and this package provides
// exactly that pipeline:
//
//   - averaged-periodogram PSD frames from raw IQ (the FFT the host
//     computes before upload);
//   - robust noise-floor estimation from the PSD itself (median of the
//     quietest bins), so occupancy thresholds need no manual calibration;
//   - energy-detection occupancy: which bins, and which configured
//     channels, carry signal above the floor;
//   - duty-cycle accumulation across frames, the quantity regulators and
//     renters ask for.
//
// Everything here is what the calibration system protects: a sensor with
// an unknown field of view or a dead band produces confidently wrong
// occupancy data, which is why nodes carry calib.Report grades.
package spectrum

import (
	"fmt"
	"math"
	"sync"

	"sensorcal/internal/dsp"
	"sensorcal/internal/iq"
)

// occScratch recycles the per-frame occupancy mask ChannelOccupancy
// needs; the scan loop calls it once per frame per tuning.
var occScratch = sync.Pool{New: func() interface{} { return new([]bool) }}

// Frame is one averaged PSD snapshot.
type Frame struct {
	CenterHz   float64
	SampleRate float64
	// BinsDB holds the power per bin in dBFS, ordered from the lowest
	// frequency (center − rate/2) upward.
	BinsDB []float64
}

// BinHz returns the absolute frequency of bin i.
func (f *Frame) BinHz(i int) float64 {
	n := len(f.BinsDB)
	return f.CenterHz - f.SampleRate/2 + (float64(i)+0.5)*f.SampleRate/float64(n)
}

// BinWidth returns the frequency span of one bin.
func (f *Frame) BinWidth() float64 { return f.SampleRate / float64(len(f.BinsDB)) }

// Analyzer converts IQ captures into PSD frames.
type Analyzer struct {
	// FFTSize is the periodogram length (power of two).
	FFTSize int
	// Window shapes each segment.
	Window dsp.WindowFunc
}

// NewAnalyzer returns an analyzer with Electrosense-like defaults
// (1024-bin Hann-windowed Welch PSD).
func NewAnalyzer() *Analyzer {
	return &Analyzer{FFTSize: 1024, Window: dsp.Hann}
}

// Analyze computes a PSD frame from a capture taken at centerHz.
func (a *Analyzer) Analyze(buf *iq.Buffer, centerHz float64) (*Frame, error) {
	frame := &Frame{}
	if err := a.AnalyzeInto(frame, buf, centerHz); err != nil {
		return nil, err
	}
	return frame, nil
}

// AnalyzeInto computes a PSD frame into f, reusing f.BinsDB's backing
// array when it is large enough. Scan loops that analyze frame after
// frame — spectrumscan's duty-cycle sweep, the streaming service's
// sensors — recycle one Frame so the steady state allocates nothing: the
// PSD scratch comes from the dsp pools and the window from the shared
// window cache, the same amortized kernels the batched engine uses.
func (a *Analyzer) AnalyzeInto(f *Frame, buf *iq.Buffer, centerHz float64) error {
	if len(buf.Samples) < a.FFTSize {
		return fmt.Errorf("spectrum: capture shorter than FFT size")
	}
	n := a.FFTSize
	density := dsp.GetFloat(n)
	defer dsp.PutFloat(density)
	if err := dsp.WelchPSDInto(density, buf.Samples, buf.SampleRate, n, a.Window); err != nil {
		return err
	}
	f.CenterHz = centerHz
	f.SampleRate = buf.SampleRate
	if cap(f.BinsDB) < n {
		f.BinsDB = make([]float64, n)
	}
	f.BinsDB = f.BinsDB[:n]
	binWidth := buf.SampleRate / float64(n)
	// Reorder FFT bins (DC first) into ascending frequency and convert
	// to per-bin power in dBFS.
	for i := 0; i < n; i++ {
		srcIdx := (i + n/2) % n // bin 0 of the frame is −fs/2
		p := density[srcIdx] * binWidth
		f.BinsDB[i] = iq.PowerToDBFS(p)
	}
	return nil
}

// NoiseFloorDB estimates the frame's noise floor as the median of the
// quietest fraction of bins — robust to any number of active signals as
// long as some of the band is quiet. The sort scratch comes from the dsp
// pools, so per-frame floor estimation allocates nothing.
func (f *Frame) NoiseFloorDB(quietFraction float64) float64 {
	return NoiseFloorOf(f.BinsDB, quietFraction)
}

// NoiseFloorOf is NoiseFloorDB over a raw bin slice, for callers that
// aggregate engine output without materializing a Frame. The floor is a
// single order statistic, so it is found by quickselect rather than a
// full sort — on the streaming service's fold path this is the
// difference between the floor estimate dominating the per-frame cost
// and it being noise (measured ~13.7 µs sorting 256 bins vs ~1 µs
// selecting; the selected value is exactly what sorting would put at
// that index).
func NoiseFloorOf(binsDB []float64, quietFraction float64) float64 {
	if quietFraction <= 0 || quietFraction > 1 {
		quietFraction = 0.25
	}
	scratch := dsp.GetFloat(len(binsDB))
	defer dsp.PutFloat(scratch)
	copy(scratch, binsDB)
	k := int(float64(len(scratch)) * quietFraction)
	if k < 1 {
		k = 1
	}
	return selectKth(scratch, k/2)
}

// selectKth returns the k-th smallest element (0-indexed) of a,
// partially reordering a in place — the element a full ascending sort
// would leave at index k. Quickselect with a median-of-three pivot, so
// already-sorted and reverse-sorted frames (monotone noise ramps) stay
// O(n) instead of going quadratic.
func selectKth(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		i, j := lo, hi
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return a[k]
		}
	}
	return a[k]
}

// Occupancy marks each bin above the noise floor by at least marginDB.
func (f *Frame) Occupancy(marginDB float64) []bool {
	out := make([]bool, len(f.BinsDB))
	f.OccupancyInto(out, marginDB)
	return out
}

// OccupancyInto writes the per-bin occupancy verdicts into dst, which
// must have len(f.BinsDB) elements. It is the reuse-friendly form of
// Occupancy for per-frame loops.
func (f *Frame) OccupancyInto(dst []bool, marginDB float64) {
	floor := f.NoiseFloorDB(0.25)
	for i, p := range f.BinsDB {
		dst[i] = p >= floor+marginDB
	}
}

// Channel is a named frequency span of interest to a renter.
type Channel struct {
	Name   string
	LowHz  float64
	HighHz float64
}

// ChannelReport is the occupancy verdict for one channel in one frame.
type ChannelReport struct {
	Channel Channel
	// PowerDB is the channel's integrated power in dBFS.
	PowerDB float64
	// OccupiedFraction is the share of the channel's bins above threshold.
	OccupiedFraction float64
	// Occupied applies the conventional >50% bin rule.
	Occupied bool
}

// ChannelOccupancy evaluates the configured channels against a frame.
// Channels outside the frame's span are skipped.
func ChannelOccupancy(f *Frame, marginDB float64, channels []Channel) []ChannelReport {
	op := occScratch.Get().(*[]bool)
	defer occScratch.Put(op)
	if cap(*op) < len(f.BinsDB) {
		*op = make([]bool, len(f.BinsDB))
	}
	occ := (*op)[:len(f.BinsDB)]
	f.OccupancyInto(occ, marginDB)
	var out []ChannelReport
	lo := f.CenterHz - f.SampleRate/2
	hi := f.CenterHz + f.SampleRate/2
	for _, ch := range channels {
		if ch.HighHz <= lo || ch.LowHz >= hi || ch.HighHz <= ch.LowHz {
			continue
		}
		var sum float64
		var bins, hit int
		for i := range f.BinsDB {
			hz := f.BinHz(i)
			if hz < ch.LowHz || hz >= ch.HighHz {
				continue
			}
			bins++
			sum += iq.DBFSToPower(f.BinsDB[i])
			if occ[i] {
				hit++
			}
		}
		if bins == 0 {
			continue
		}
		r := ChannelReport{
			Channel:          ch,
			PowerDB:          iq.PowerToDBFS(sum),
			OccupiedFraction: float64(hit) / float64(bins),
		}
		r.Occupied = r.OccupiedFraction > 0.5
		out = append(out, r)
	}
	return out
}

// DutyCycle accumulates per-channel occupancy across frames — the
// longitudinal statistic spectrum renters pay for.
type DutyCycle struct {
	counts map[string]int
	hits   map[string]int
}

// NewDutyCycle returns an empty accumulator.
func NewDutyCycle() *DutyCycle {
	return &DutyCycle{counts: map[string]int{}, hits: map[string]int{}}
}

// Add folds one frame's channel reports in.
func (d *DutyCycle) Add(reports []ChannelReport) {
	for _, r := range reports {
		d.counts[r.Channel.Name]++
		if r.Occupied {
			d.hits[r.Channel.Name]++
		}
	}
}

// Fraction returns the observed duty cycle for a channel and the number
// of frames it was measured in.
func (d *DutyCycle) Fraction(name string) (float64, int) {
	n := d.counts[name]
	if n == 0 {
		return 0, 0
	}
	return float64(d.hits[name]) / float64(n), n
}

// Peak returns the strongest bin in the frame and its frequency: the
// quick "what is that carrier" primitive.
func (f *Frame) Peak() (hz, db float64) {
	best := 0
	for i, p := range f.BinsDB {
		if p > f.BinsDB[best] {
			best = i
		}
	}
	if len(f.BinsDB) == 0 {
		return 0, math.Inf(-1)
	}
	return f.BinHz(best), f.BinsDB[best]
}
