package spectrum

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestNoiseFloorMatchesSortReference pins the quickselect floor to the
// full-sort definition: for any input, NoiseFloorOf must return exactly
// the element an ascending sort leaves at index k/2 of the quietest
// fraction — same value, same bits.
func TestNoiseFloorMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []func(i, n int) float64{
		func(i, n int) float64 { return rng.NormFloat64()*8 - 90 },          // noise
		func(i, n int) float64 { return -120 + float64(i)/float64(n)*40 },   // ascending ramp
		func(i, n int) float64 { return -80 - float64(i)/float64(n)*40 },    // descending ramp
		func(i, n int) float64 { return -100 },                              // constant
		func(i, n int) float64 { return -100 + 30*float64(i%2) },            // alternating
		func(i, n int) float64 { return -100 + 60*math.Sin(float64(i)/7.3) }, // tones
	}
	for _, n := range []int{1, 2, 3, 7, 64, 256, 1024} {
		for si, shape := range shapes {
			bins := make([]float64, n)
			for i := range bins {
				bins[i] = shape(i, n)
			}
			for _, frac := range []float64{0.1, 0.25, 0.5, 1} {
				ref := append([]float64(nil), bins...)
				sort.Float64s(ref)
				k := int(float64(n) * frac)
				if k < 1 {
					k = 1
				}
				want := ref[k/2]
				got := NoiseFloorOf(bins, frac)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("n=%d shape=%d frac=%g: floor=%v, sort reference=%v", n, si, frac, got, want)
				}
			}
		}
	}
}

func BenchmarkNoiseFloorOf(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	bins := make([]float64, 256)
	for i := range bins {
		bins[i] = rng.NormFloat64()*8 - 90
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NoiseFloorOf(bins, 0.25)
	}
}
