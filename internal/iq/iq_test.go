package iq

import (
	"math"
	"testing"
	"testing/quick"
)

func TestToneFullScalePower(t *testing.T) {
	b := Tone(4096, 2e6, 100e3, 1.0)
	if p := b.Power(); math.Abs(p-1) > 1e-9 {
		t.Errorf("full-scale tone power = %v, want 1", p)
	}
	if db := b.PowerDBFS(); math.Abs(db) > 1e-6 {
		t.Errorf("full-scale tone = %v dBFS, want 0", db)
	}
}

func TestHalfAmplitudeToneIsMinus6dBFS(t *testing.T) {
	b := Tone(4096, 2e6, 100e3, 0.5)
	if db := b.PowerDBFS(); math.Abs(db+6.02) > 0.01 {
		t.Errorf("half-amplitude tone = %v dBFS, want -6.02", db)
	}
}

func TestPowerDBFSRoundTrip(t *testing.T) {
	f := func(seed uint16) bool {
		db := float64(seed)/65535*120 - 120
		return math.Abs(PowerToDBFS(DBFSToPower(db))-db) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if !math.IsInf(PowerToDBFS(0), -1) {
		t.Error("zero power should be -Inf dBFS")
	}
}

func TestDuration(t *testing.T) {
	b := New(2_000_000, 2e6)
	if d := b.Duration(); math.Abs(d-1) > 1e-12 {
		t.Errorf("duration = %v, want 1 s", d)
	}
	if (&Buffer{}).Duration() != 0 {
		t.Error("zero-rate buffer should have zero duration")
	}
}

func TestAddGrowsAndMixes(t *testing.T) {
	a := New(4, 1e6)
	b := New(8, 1e6)
	for i := range b.Samples {
		b.Samples[i] = complex(1, 0)
	}
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != 8 {
		t.Fatalf("len = %d, want 8", len(a.Samples))
	}
	for i, s := range a.Samples {
		if s != complex(1, 0) {
			t.Fatalf("sample %d = %v", i, s)
		}
	}
	// Rate mismatch is an error.
	if err := a.Add(New(1, 2e6)); err == nil {
		t.Error("rate mismatch should error")
	}
}

func TestAddAt(t *testing.T) {
	a := New(2, 1e6)
	burst := New(3, 1e6)
	for i := range burst.Samples {
		burst.Samples[i] = complex(2, 0)
	}
	if err := a.AddAt(burst, 5); err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != 8 {
		t.Fatalf("len = %d, want 8", len(a.Samples))
	}
	if a.Samples[4] != 0 || a.Samples[5] != complex(2, 0) {
		t.Error("burst not placed at offset")
	}
	if err := a.AddAt(burst, -1); err == nil {
		t.Error("negative offset should error")
	}
	if err := a.AddAt(New(1, 9e9), 0); err == nil {
		t.Error("rate mismatch should error")
	}
}

func TestFrequencyShiftMovesTone(t *testing.T) {
	// A tone at 100 kHz shifted by +200 kHz should land at 300 kHz:
	// verify by mixing with the conjugate of a 300 kHz tone and checking
	// the result is DC.
	b := Tone(8192, 2e6, 100e3, 1)
	b.FrequencyShift(200e3)
	ref := Tone(8192, 2e6, 300e3, 1)
	var acc complex128
	for i := range b.Samples {
		c := ref.Samples[i]
		acc += b.Samples[i] * complex(real(c), -imag(c))
	}
	if mag := math.Hypot(real(acc), imag(acc)) / float64(len(b.Samples)); mag < 0.99 {
		t.Errorf("correlation with 300 kHz tone = %v, want ≈1", mag)
	}
}

func TestNoisePowerCalibrated(t *testing.T) {
	n := NewNoiseSource(1)
	b := New(200_000, 2e6)
	n.AddNoise(b, 0.01) // -20 dBFS
	if db := b.PowerDBFS(); math.Abs(db+20) > 0.2 {
		t.Errorf("noise power = %v dBFS, want -20", db)
	}
	// Zero/negative power is a no-op.
	c := New(16, 1e6)
	n.AddNoise(c, 0)
	if c.Power() != 0 {
		t.Error("zero noise power should leave buffer untouched")
	}
}

func TestNoiseDeterminism(t *testing.T) {
	a, b := New(128, 1e6), New(128, 1e6)
	NewNoiseSource(7).AddNoise(a, 0.1)
	NewNoiseSource(7).AddNoise(b, 0.1)
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("same seed must produce identical noise")
		}
	}
}

func TestFillOverwrites(t *testing.T) {
	b := Tone(1024, 1e6, 1e3, 1)
	NewNoiseSource(3).Fill(b, 0.001)
	if db := b.PowerDBFS(); math.Abs(db+30) > 1 {
		t.Errorf("filled power = %v dBFS, want -30 (tone must be gone)", db)
	}
}

func TestScale(t *testing.T) {
	b := Tone(1024, 1e6, 1e3, 1)
	b.Scale(0.1)
	if db := b.PowerDBFS(); math.Abs(db+20) > 0.01 {
		t.Errorf("scaled power = %v dBFS, want -20", db)
	}
}

func TestQuantizeClipsAndRounds(t *testing.T) {
	b := New(3, 1e6)
	b.Samples[0] = complex(2.0, -3.0) // beyond full scale
	b.Samples[1] = complex(0.5001, 0)
	b.Samples[2] = complex(1.0/4096/3, 0) // below 12-bit LSB/2
	b.Quantize(12)
	if real(b.Samples[0]) != 1 || imag(b.Samples[0]) != -1 {
		t.Errorf("clipping failed: %v", b.Samples[0])
	}
	if math.Abs(real(b.Samples[1])-0.5) > 1.0/2048 {
		t.Errorf("rounding off: %v", b.Samples[1])
	}
	if real(b.Samples[2]) != 0 {
		t.Errorf("sub-LSB value should quantize to zero, got %v", b.Samples[2])
	}
	// A 12-bit quantized tone keeps ~SNR of 6.02*12+1.76 dB; just check
	// the tone survives with high fidelity.
	tone := Tone(4096, 1e6, 10e3, 0.9)
	ref := Tone(4096, 1e6, 10e3, 0.9)
	tone.Quantize(12)
	var errPow float64
	for i := range tone.Samples {
		d := tone.Samples[i] - ref.Samples[i]
		errPow += real(d)*real(d) + imag(d)*imag(d)
	}
	errPow /= float64(len(tone.Samples))
	if snr := 10 * math.Log10(ref.Power()/errPow); snr < 60 {
		t.Errorf("12-bit quantization SNR = %v dB, want > 60", snr)
	}
}

func TestDecimate(t *testing.T) {
	b := New(10, 4e6)
	for i := range b.Samples {
		b.Samples[i] = complex(float64(i), 0)
	}
	if err := b.Decimate(2); err != nil {
		t.Fatal(err)
	}
	if len(b.Samples) != 5 || b.SampleRate != 2e6 {
		t.Fatalf("decimate result len=%d rate=%v", len(b.Samples), b.SampleRate)
	}
	for i, s := range b.Samples {
		if real(s) != float64(2*i) {
			t.Fatalf("sample %d = %v, want %v", i, s, 2*i)
		}
	}
	if err := b.Decimate(0); err == nil {
		t.Error("factor 0 should error")
	}
	if err := b.Decimate(1); err != nil {
		t.Error("factor 1 should be a no-op")
	}
}

func TestMagnitudes(t *testing.T) {
	b := New(2, 1e6)
	b.Samples[0] = complex(3, 4)
	b.Samples[1] = complex(0, -2)
	m := b.Magnitudes(nil)
	if m[0] != 5 || m[1] != 2 {
		t.Errorf("magnitudes = %v", m)
	}
	p := b.MagSquared(nil)
	if p[0] != 25 || p[1] != 4 {
		t.Errorf("mag-squared = %v", p)
	}
	// Reuse path.
	m2 := b.Magnitudes(m)
	if &m2[0] != &m[0] {
		t.Error("should reuse the destination slice")
	}
}
