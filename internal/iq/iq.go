// Package iq provides complex-baseband sample buffers and the basic
// operations every simulated receiver in this repository needs: power
// measurement, dBFS conversion, additive white Gaussian noise, frequency
// shifting and simple resampling.
//
// Samples are complex128 at a caller-chosen sample rate. Full scale is
// defined as a magnitude of 1.0; a full-scale sine has power 1.0 = 0 dBFS,
// which matches how the paper reports TV measurements ("Received Signal
// Strength (dBFS)") from a fixed-gain SDR.
package iq

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// Buffer is a block of complex baseband samples with its sample rate.
type Buffer struct {
	Samples    []complex128
	SampleRate float64 // Hz
}

// New returns a zeroed buffer of n samples at the given rate.
func New(n int, sampleRate float64) *Buffer {
	return &Buffer{Samples: make([]complex128, n), SampleRate: sampleRate}
}

// Resize sets the buffer to exactly n zeroed samples, reusing the
// existing backing array when it is large enough. It exists for hot
// loops that recycle one capture buffer across bursts instead of
// allocating per burst.
func (b *Buffer) Resize(n int) {
	if cap(b.Samples) < n {
		b.Samples = make([]complex128, n)
		return
	}
	b.Samples = b.Samples[:n]
	b.Zero()
}

// Zero clears the samples in place.
func (b *Buffer) Zero() {
	for i := range b.Samples {
		b.Samples[i] = 0
	}
}

// Duration returns the time span of the buffer in seconds.
func (b *Buffer) Duration() float64 {
	if b.SampleRate <= 0 {
		return 0
	}
	return float64(len(b.Samples)) / b.SampleRate
}

// Power returns the mean sample power (linear, relative to full scale).
func (b *Buffer) Power() float64 {
	if len(b.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range b.Samples {
		sum += real(s)*real(s) + imag(s)*imag(s)
	}
	return sum / float64(len(b.Samples))
}

// PowerDBFS returns the mean power in dB relative to full scale.
func (b *Buffer) PowerDBFS() float64 { return PowerToDBFS(b.Power()) }

// PowerToDBFS converts a linear full-scale-relative power to dBFS.
func PowerToDBFS(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(p)
}

// DBFSToPower converts dBFS to linear power.
func DBFSToPower(db float64) float64 { return math.Pow(10, db/10) }

// Scale multiplies every sample by g (amplitude, not power).
func (b *Buffer) Scale(g float64) {
	for i := range b.Samples {
		b.Samples[i] *= complex(g, 0)
	}
}

// Add mixes other into b sample-by-sample. The buffers must have the same
// sample rate; b is extended if other is longer.
func (b *Buffer) Add(other *Buffer) error {
	if b.SampleRate != other.SampleRate {
		return fmt.Errorf("iq: sample rate mismatch %v != %v", b.SampleRate, other.SampleRate)
	}
	if len(other.Samples) > len(b.Samples) {
		grown := make([]complex128, len(other.Samples))
		copy(grown, b.Samples)
		b.Samples = grown
	}
	for i, s := range other.Samples {
		b.Samples[i] += s
	}
	return nil
}

// AddAt mixes other into b starting at sample offset, growing b as needed.
func (b *Buffer) AddAt(other *Buffer, offset int) error {
	if b.SampleRate != other.SampleRate {
		return fmt.Errorf("iq: sample rate mismatch %v != %v", b.SampleRate, other.SampleRate)
	}
	if offset < 0 {
		return fmt.Errorf("iq: negative offset %d", offset)
	}
	need := offset + len(other.Samples)
	if need > len(b.Samples) {
		grown := make([]complex128, need)
		copy(grown, b.Samples)
		b.Samples = grown
	}
	for i, s := range other.Samples {
		b.Samples[offset+i] += s
	}
	return nil
}

// FrequencyShift rotates the buffer by offsetHz, moving a signal at
// baseband frequency f to f+offsetHz.
func (b *Buffer) FrequencyShift(offsetHz float64) {
	if b.SampleRate <= 0 {
		return
	}
	w := 2 * math.Pi * offsetHz / b.SampleRate
	for i := range b.Samples {
		b.Samples[i] *= cmplx.Exp(complex(0, w*float64(i)))
	}
}

// NoiseSource generates reproducible complex AWGN.
type NoiseSource struct {
	rng *rand.Rand
}

// NewNoiseSource returns a seeded noise source.
func NewNoiseSource(seed int64) *NoiseSource {
	return &NoiseSource{rng: rand.New(rand.NewSource(seed))}
}

// AddNoise adds circular complex Gaussian noise with total power
// noisePower (linear full-scale units) to the buffer.
func (n *NoiseSource) AddNoise(b *Buffer, noisePower float64) {
	if noisePower <= 0 {
		return
	}
	sigma := math.Sqrt(noisePower / 2)
	for i := range b.Samples {
		b.Samples[i] += complex(n.rng.NormFloat64()*sigma, n.rng.NormFloat64()*sigma)
	}
}

// Fill overwrites the buffer with noise of the given power.
func (n *NoiseSource) Fill(b *Buffer, noisePower float64) {
	for i := range b.Samples {
		b.Samples[i] = 0
	}
	n.AddNoise(b, noisePower)
}

// Tone writes a complex exponential of amplitude amp at frequency hz into
// a new buffer of n samples.
func Tone(n int, sampleRate, hz, amp float64) *Buffer {
	b := New(n, sampleRate)
	w := 2 * math.Pi * hz / sampleRate
	for i := range b.Samples {
		b.Samples[i] = complex(amp*math.Cos(w*float64(i)), amp*math.Sin(w*float64(i)))
	}
	return b
}

// Quantize applies ADC quantization with the given number of bits,
// clipping at full scale. It models the SDR's finite dynamic range.
func (b *Buffer) Quantize(bits int) {
	if bits <= 0 || bits >= 31 {
		return
	}
	levels := float64(int64(1) << (bits - 1))
	q := func(x float64) float64 {
		if x > 1 {
			x = 1
		}
		if x < -1 {
			x = -1
		}
		return math.Round(x*levels) / levels
	}
	for i := range b.Samples {
		b.Samples[i] = complex(q(real(b.Samples[i])), q(imag(b.Samples[i])))
	}
}

// Decimate keeps every factor-th sample, reducing the sample rate. The
// caller is responsible for anti-alias filtering first.
func (b *Buffer) Decimate(factor int) error {
	if factor <= 0 {
		return fmt.Errorf("iq: bad decimation factor %d", factor)
	}
	if factor == 1 {
		return nil
	}
	out := b.Samples[:0]
	for i := 0; i < len(b.Samples); i += factor {
		out = append(out, b.Samples[i])
	}
	b.Samples = out
	b.SampleRate /= float64(factor)
	return nil
}

// Magnitudes returns |s| for each sample (envelope), reusing dst if it has
// capacity.
func (b *Buffer) Magnitudes(dst []float64) []float64 {
	dst = dst[:0]
	for _, s := range b.Samples {
		dst = append(dst, math.Hypot(real(s), imag(s)))
	}
	return dst
}

// MagSquared returns |s|² for each sample (instantaneous power).
func (b *Buffer) MagSquared(dst []float64) []float64 {
	dst = dst[:0]
	for _, s := range b.Samples {
		dst = append(dst, real(s)*real(s)+imag(s)*imag(s))
	}
	return dst
}
