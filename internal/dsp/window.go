package dsp

import "math"

// WindowFunc generates an n-point analysis window.
type WindowFunc func(n int) []float64

// Rectangular returns an all-ones window.
func Rectangular(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// Hann returns the raised-cosine Hann window.
func Hann(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// Hamming returns the Hamming window.
func Hamming(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// Blackman returns the Blackman window (−58 dB sidelobes), the usual
// choice for windowed-sinc filter design.
func Blackman(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		w[i] = 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
	}
	return w
}

// windowPowerGain returns sum(w[i]^2), used to normalize PSD estimates.
func windowPowerGain(w []float64) float64 {
	var s float64
	for _, v := range w {
		s += v * v
	}
	return s
}
