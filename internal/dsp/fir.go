package dsp

import (
	"fmt"
	"math"
)

// FIR is a finite-impulse-response filter with real taps, applied to
// complex baseband samples.
type FIR struct {
	Taps []float64
}

// sinc is the unnormalized sin(x)/x with sinc(0)=1.
func sinc(x float64) float64 {
	if math.Abs(x) < 1e-12 {
		return 1
	}
	return math.Sin(x) / x
}

// DesignLowpass designs a windowed-sinc lowpass FIR with the given cutoff
// (Hz), sample rate (Hz) and tap count (odd counts give linear phase with
// an integer group delay). The Blackman window keeps stopband rejection
// near −58 dB, plenty for separating 6 MHz TV channels.
func DesignLowpass(cutoffHz, sampleRate float64, taps int) (*FIR, error) {
	if taps < 3 {
		return nil, fmt.Errorf("dsp: need at least 3 taps, got %d", taps)
	}
	if cutoffHz <= 0 || cutoffHz >= sampleRate/2 {
		return nil, fmt.Errorf("dsp: cutoff %v Hz outside (0, %v)", cutoffHz, sampleRate/2)
	}
	if taps%2 == 0 {
		taps++
	}
	h := make([]float64, taps)
	w := Blackman(taps)
	fc := cutoffHz / sampleRate
	mid := float64(taps-1) / 2
	var sum float64
	for i := range h {
		x := float64(i) - mid
		h[i] = 2 * fc * sinc(2*math.Pi*fc*x) * w[i]
		sum += h[i]
	}
	// Normalize to unity DC gain.
	for i := range h {
		h[i] /= sum
	}
	return &FIR{Taps: h}, nil
}

// DesignBandpass designs a windowed-sinc bandpass FIR covering
// [lowHz, highHz] at baseband (for complex signals the band is taken
// symmetric around its center after frequency translation; use
// FilterAround for the full translate-filter-translate pipeline).
func DesignBandpass(lowHz, highHz, sampleRate float64, taps int) (*FIR, error) {
	if lowHz >= highHz {
		return nil, fmt.Errorf("dsp: bandpass low %v ≥ high %v", lowHz, highHz)
	}
	lp, err := DesignLowpass(highHz, sampleRate, taps)
	if err != nil {
		return nil, err
	}
	if lowHz <= 0 {
		return lp, nil
	}
	lp2, err := DesignLowpass(lowHz, sampleRate, len(lp.Taps))
	if err != nil {
		return nil, err
	}
	h := make([]float64, len(lp.Taps))
	for i := range h {
		h[i] = lp.Taps[i] - lp2.Taps[i]
	}
	return &FIR{Taps: h}, nil
}

// Apply filters x, returning a slice of the same length (zero-padded
// edges, i.e. "same" convolution).
func (f *FIR) Apply(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	f.ApplyTo(out, x)
	return out
}

// ApplyTo filters x into dst (same-length "same" convolution), letting
// hot paths reuse pooled scratch instead of allocating per call. dst and
// x must not overlap. Panics if len(dst) != len(x).
func (f *FIR) ApplyTo(dst, x []complex128) {
	n := len(x)
	if len(dst) != n {
		panic("dsp: FIR.ApplyTo length mismatch")
	}
	m := len(f.Taps)
	half := m / 2
	for i := 0; i < n; i++ {
		var acc complex128
		for k := 0; k < m; k++ {
			j := i + half - k
			if j >= 0 && j < n {
				acc += x[j] * complex(f.Taps[k], 0)
			}
		}
		dst[i] = acc
	}
}

// Response returns the filter's magnitude response (linear) at frequency
// hz for the given sample rate.
func (f *FIR) Response(hz, sampleRate float64) float64 {
	var re, im float64
	w := 2 * math.Pi * hz / sampleRate
	for k, t := range f.Taps {
		re += t * math.Cos(w*float64(k))
		im -= t * math.Sin(w*float64(k))
	}
	return math.Hypot(re, im)
}

// MovingAverage is the "very long moving average filter" from the paper's
// TV measurement: an O(1)-per-sample running mean over a window of L
// samples, applied to real-valued instantaneous power.
type MovingAverage struct {
	window []float64
	sum    float64
	idx    int
	filled int
}

// NewMovingAverage returns a moving average over length samples.
func NewMovingAverage(length int) (*MovingAverage, error) {
	if length <= 0 {
		return nil, fmt.Errorf("dsp: moving average length %d", length)
	}
	return &MovingAverage{window: make([]float64, length)}, nil
}

// Reset rebinds the averager to a caller-provided window (typically from
// GetFloat), zeroing it — the allocation-free counterpart of
// NewMovingAverage for pooled hot paths.
func (m *MovingAverage) Reset(window []float64) {
	for i := range window {
		window[i] = 0
	}
	m.window = window
	m.sum, m.idx, m.filled = 0, 0, 0
}

// Push adds a sample and returns the current mean over the (partially
// filled at start-up) window.
func (m *MovingAverage) Push(v float64) float64 {
	m.sum -= m.window[m.idx]
	m.window[m.idx] = v
	m.sum += v
	m.idx++
	if m.idx == len(m.window) {
		m.idx = 0
	}
	if m.filled < len(m.window) {
		m.filled++
	}
	return m.sum / float64(m.filled)
}

// Value returns the current mean without adding a sample.
func (m *MovingAverage) Value() float64 {
	if m.filled == 0 {
		return 0
	}
	return m.sum / float64(m.filled)
}

// Full reports whether the window has been completely filled.
func (m *MovingAverage) Full() bool { return m.filled == len(m.window) }
