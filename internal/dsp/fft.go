// Package dsp implements the signal-processing blocks the paper's
// measurement programs rely on: an FFT, window functions, windowed-sinc FIR
// filter design, a very long moving-average filter, Welch power spectral
// density estimation, and Parseval-based band-power measurement.
//
// The broadcast-TV experiment in §3.2 describes its receiver precisely:
// "The received power was measured by bandpass filtering a desired ATSC
// channel, then applying Parseval's identity to measure the band's power by
// running the magnitude-squared time-domain samples through a very long
// moving average filter." BandPowerTimeDomain is that exact pipeline.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. len(x) must be a power of two.
func FFT(x []complex128) error {
	return fftDir(x, false)
}

// IFFT computes the inverse FFT of x in place, including the 1/N scaling.
func IFFT(x []complex128) error {
	return fftDir(x, true)
}

// twiddles holds the per-stage twiddle factors for one FFT size, both
// directions, as concatenated per-stage tables (stage sizes 2, 4, …, n
// contribute 1, 2, …, n/2 entries — n-1 in total). A campaign runs the
// same FFT size millions of times, so the tables are cached per size the
// same way CachedLowpass caches FIR designs.
type twiddles struct {
	fwd, inv []complex128
}

// maxCachedFFTSize bounds the twiddle cache: a table costs 32(n-1) bytes,
// so everything up to 256k points (≈8 MiB worst case per direction) is
// kept; larger one-off transforms build their tables per call.
const maxCachedFFTSize = 1 << 18

var (
	twiddleMu    sync.RWMutex
	twiddleCache = map[int]*twiddles{}
)

// buildTwiddles computes the tables with exactly the recurrence the
// butterfly loop used inline (w starting at 1, repeatedly multiplied by
// exp(±2πi/size)), so cached and pre-cache FFT outputs are bit-identical.
func buildTwiddles(n int) *twiddles {
	t := &twiddles{
		fwd: make([]complex128, 0, n-1),
		inv: make([]complex128, 0, n-1),
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := 2 * math.Pi / float64(size)
		wFwd, wInv := complex(1, 0), complex(1, 0)
		baseFwd := cmplx.Exp(complex(0, -step))
		baseInv := cmplx.Exp(complex(0, step))
		for k := 0; k < half; k++ {
			t.fwd = append(t.fwd, wFwd)
			t.inv = append(t.inv, wInv)
			wFwd *= baseFwd
			wInv *= baseInv
		}
	}
	return t
}

// twiddlesFor returns the (cached) twiddle tables for an n-point FFT.
func twiddlesFor(n int) *twiddles {
	if n <= maxCachedFFTSize {
		twiddleMu.RLock()
		t := twiddleCache[n]
		twiddleMu.RUnlock()
		if t != nil {
			return t
		}
	}
	t := buildTwiddles(n)
	if n <= maxCachedFFTSize {
		twiddleMu.Lock()
		if prev, ok := twiddleCache[n]; ok {
			t = prev // another goroutine built it first; share theirs
		} else {
			twiddleCache[n] = t
		}
		twiddleMu.Unlock()
	}
	return t
}

func fftDir(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	tab := twiddlesFor(n).fwd
	if inverse {
		tab = twiddlesFor(n).inv
	}
	fftCore(x, tab)
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
	return nil
}

// fftCore runs the bit-reversal permutation and the butterfly stages of
// one transform against a prefetched twiddle table. It is the shared
// kernel of FFT, IFFT and FFTBatch: per-frame arithmetic is identical in
// all three, which is what makes batched output bit-identical to serial.
func fftCore(x []complex128, tab []complex128) {
	n := len(x)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	off := 0
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		tw := tab[off : off+half]
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				even := x[start+k]
				odd := x[start+k+half] * tw[k]
				x[start+k] = even + odd
				x[start+k+half] = even - odd
			}
		}
		off += half
	}
}

// FFTBatch computes the forward FFT of every frame in place. All frames
// must share one power-of-two length: the batch fetches the twiddle table
// once and reuses it across frames, which is the per-transform overhead a
// fleet of sensors streaming the same FFT size would otherwise pay per
// call (cache map lookup under an RWMutex). Each frame goes through
// exactly the arithmetic FFT would apply, in the same order, so a batch
// of any size produces bit-identical results to per-frame serial calls —
// the contract internal/stream's equivalence tests pin.
func FFTBatch(frames [][]complex128) error {
	if len(frames) == 0 {
		return nil
	}
	n := len(frames[0])
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	for i, f := range frames {
		if len(f) != n {
			return fmt.Errorf("dsp: batch frame %d has length %d, want %d", i, len(f), n)
		}
	}
	tab := twiddlesFor(n).fwd
	for _, f := range frames {
		fftCore(f, tab)
	}
	return nil
}

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// FFTFreq returns the frequency in Hz of FFT bin i for an N-point FFT at
// the given sample rate, mapping the upper half to negative frequencies.
func FFTFreq(i, n int, sampleRate float64) float64 {
	if i >= n/2 {
		i -= n
	}
	return float64(i) * sampleRate / float64(n)
}
