// Package dsp implements the signal-processing blocks the paper's
// measurement programs rely on: an FFT, window functions, windowed-sinc FIR
// filter design, a very long moving-average filter, Welch power spectral
// density estimation, and Parseval-based band-power measurement.
//
// The broadcast-TV experiment in §3.2 describes its receiver precisely:
// "The received power was measured by bandpass filtering a desired ATSC
// channel, then applying Parseval's identity to measure the band's power by
// running the magnitude-squared time-domain samples through a very long
// moving average filter." BandPowerTimeDomain is that exact pipeline.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. len(x) must be a power of two.
func FFT(x []complex128) error {
	return fftDir(x, false)
}

// IFFT computes the inverse FFT of x in place, including the 1/N scaling.
func IFFT(x []complex128) error {
	return fftDir(x, true)
}

func fftDir(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := 2 * math.Pi / float64(size) * sign
		wBase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				even := x[start+k]
				odd := x[start+k+half] * w
				x[start+k] = even + odd
				x[start+k+half] = even - odd
				w *= wBase
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
	return nil
}

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// FFTFreq returns the frequency in Hz of FFT bin i for an N-point FFT at
// the given sample rate, mapping the upper half to negative frequencies.
func FFTFreq(i, n int, sampleRate float64) float64 {
	if i >= n/2 {
		i -= n
	}
	return float64(i) * sampleRate / float64(n)
}
