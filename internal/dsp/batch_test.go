package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// randFrames builds count deterministic complex frames of length n.
func randFrames(t *testing.T, count, n int, seed int64) [][]complex128 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	frames := make([][]complex128, count)
	for i := range frames {
		f := make([]complex128, n)
		for k := range f {
			f[k] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		frames[i] = f
	}
	return frames
}

// TestFFTBatchBitIdenticalToSerial is the batching contract: a batch of
// any size produces exactly the bits per-frame FFT calls produce.
func TestFFTBatchBitIdenticalToSerial(t *testing.T) {
	for _, batch := range []int{1, 3, 8, 64} {
		for _, n := range []int{1, 2, 64, 1024} {
			frames := randFrames(t, batch, n, int64(batch*1000+n))
			want := make([][]complex128, batch)
			for i, f := range frames {
				want[i] = append([]complex128(nil), f...)
				if err := FFT(want[i]); err != nil {
					t.Fatalf("serial FFT: %v", err)
				}
			}
			if err := FFTBatch(frames); err != nil {
				t.Fatalf("FFTBatch(batch=%d,n=%d): %v", batch, n, err)
			}
			for i := range frames {
				for k := range frames[i] {
					g, w := frames[i][k], want[i][k]
					if math.Float64bits(real(g)) != math.Float64bits(real(w)) ||
						math.Float64bits(imag(g)) != math.Float64bits(imag(w)) {
						t.Fatalf("batch=%d n=%d frame %d bin %d: batched %v != serial %v",
							batch, n, i, k, g, w)
					}
				}
			}
		}
	}
}

func TestFFTBatchRejectsMixedLengths(t *testing.T) {
	frames := [][]complex128{make([]complex128, 8), make([]complex128, 16)}
	if err := FFTBatch(frames); err == nil {
		t.Fatal("want error for mixed frame lengths")
	}
	if err := FFTBatch([][]complex128{make([]complex128, 12)}); err == nil {
		t.Fatal("want error for non-power-of-two length")
	}
	if err := FFTBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestCachedWindowSharesExactValues pins that the cache returns the very
// floats the generator produces, and one shared slice per (fn, n).
func TestCachedWindowSharesExactValues(t *testing.T) {
	for _, fn := range []WindowFunc{Rectangular, Hann, Hamming, Blackman} {
		fresh := fn(257)
		cached := CachedWindow(fn, 257)
		if len(fresh) != len(cached) {
			t.Fatalf("length mismatch: %d != %d", len(fresh), len(cached))
		}
		for i := range fresh {
			if math.Float64bits(fresh[i]) != math.Float64bits(cached[i]) {
				t.Fatalf("bin %d: cached %v != fresh %v", i, cached[i], fresh[i])
			}
		}
		again := CachedWindow(fn, 257)
		if &cached[0] != &again[0] {
			t.Fatal("second lookup did not share the cached vector")
		}
	}
	// Distinct lengths and distinct generators must not collide.
	if len(CachedWindow(Hann, 8)) != 8 {
		t.Fatal("length collision in window cache")
	}
	h, b := CachedWindow(Hann, 64), CachedWindow(Blackman, 64)
	if math.Float64bits(h[1]) == math.Float64bits(b[1]) {
		t.Fatal("generator collision in window cache")
	}
}

// TestWelchPSDIntoMatchesWelchPSD pins the refactor: the Into variant
// produces bit-identical density to the allocating wrapper.
func TestWelchPSDIntoMatchesWelchPSD(t *testing.T) {
	frames := randFrames(t, 1, 4096, 7)
	x := frames[0]
	want, err := WelchPSD(x, 2.4e6, 1024, Hann)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 1024)
	// Dirty the destination: Into must fully overwrite it.
	for i := range dst {
		dst[i] = math.NaN()
	}
	if err := WelchPSDInto(dst, x, 2.4e6, 1024, Hann); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if math.Float64bits(dst[i]) != math.Float64bits(want.Density[i]) {
			t.Fatalf("bin %d: into %v != alloc %v", i, dst[i], want.Density[i])
		}
	}
	if err := WelchPSDInto(dst[:8], x, 2.4e6, 1024, Hann); err == nil {
		t.Fatal("want error for short destination")
	}
}

// BenchmarkWelchPSDInto proves the scan path's per-frame PSD is
// allocation-free once the window and twiddles are cached.
func BenchmarkWelchPSDInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	dst := make([]float64, 1024)
	if err := WelchPSDInto(dst, x, 2.4e6, 1024, Hann); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WelchPSDInto(dst, x, 2.4e6, 1024, Hann); err != nil {
			b.Fatal(err)
		}
	}
}
