package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTKnownDFT(t *testing.T) {
	// FFT of an impulse is flat.
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
	// FFT of a single complex exponential concentrates in one bin.
	n := 64
	x = make([]complex128, n)
	k := 5
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(k*i)/float64(n)))
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		want := 0.0
		if i == k {
			want = float64(n)
		}
		if cmplx.Abs(v-complex(want, 0)) > 1e-9 {
			t.Fatalf("bin %d = %v, want %v", i, v, want)
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 256)
	orig := make([]complex128, 256)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = x[i]
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
			t.Fatalf("sample %d: %v != %v", i, x[i], orig[i])
		}
	}
}

func TestFFTParseval(t *testing.T) {
	// Parseval's identity — the paper's TV measurement leans on it:
	// sum|x|² == (1/N) sum|X|².
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 128
		x := make([]complex128, n)
		var timePower float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			timePower += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		if err := FFT(x); err != nil {
			return false
		}
		var freqPower float64
		for _, v := range x {
			freqPower += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(timePower-freqPower/float64(n)) < 1e-8*timePower
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	if err := FFT(make([]complex128, 12)); err == nil {
		t.Error("length 12 should error")
	}
	if err := FFT(nil); err != nil {
		t.Error("empty input should be a no-op")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFFTFreq(t *testing.T) {
	// 8-point FFT at 8 Hz: bins 0..3 are 0..3 Hz, bins 4..7 are -4..-1 Hz.
	want := []float64{0, 1, 2, 3, -4, -3, -2, -1}
	for i, w := range want {
		if got := FFTFreq(i, 8, 8); got != w {
			t.Errorf("FFTFreq(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestWindows(t *testing.T) {
	for name, wf := range map[string]WindowFunc{"hann": Hann, "hamming": Hamming, "blackman": Blackman, "rect": Rectangular} {
		w := wf(64)
		if len(w) != 64 {
			t.Fatalf("%s: wrong length", name)
		}
		for i, v := range w {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("%s[%d] = %v out of [0,1]", name, i, v)
			}
		}
		// Symmetry.
		for i := 0; i < 32; i++ {
			if math.Abs(w[i]-w[63-i]) > 1e-12 {
				t.Fatalf("%s not symmetric at %d", name, i)
			}
		}
		// Single-point window is 1.
		if one := wf(1); len(one) != 1 || one[0] != 1 {
			t.Fatalf("%s(1) = %v", name, one)
		}
	}
	// Hann endpoints are zero; rectangular is all ones.
	if h := Hann(16); h[0] != 0 || h[15] != 0 {
		t.Error("Hann endpoints should be zero")
	}
	for _, v := range Rectangular(16) {
		if v != 1 {
			t.Error("rectangular should be all ones")
		}
	}
}

func TestLowpassResponse(t *testing.T) {
	fs := 2e6
	lp, err := DesignLowpass(200e3, fs, 129)
	if err != nil {
		t.Fatal(err)
	}
	// Unity DC gain.
	if g := lp.Response(0, fs); math.Abs(g-1) > 1e-6 {
		t.Errorf("DC gain = %v, want 1", g)
	}
	// Passband nearly flat.
	if g := lp.Response(100e3, fs); math.Abs(g-1) > 0.05 {
		t.Errorf("passband gain at 100 kHz = %v", g)
	}
	// Stopband well down.
	if g := lp.Response(500e3, fs); g > 0.01 {
		t.Errorf("stopband gain at 500 kHz = %v, want < -40 dB", g)
	}
}

func TestLowpassErrors(t *testing.T) {
	if _, err := DesignLowpass(0, 1e6, 65); err == nil {
		t.Error("zero cutoff should error")
	}
	if _, err := DesignLowpass(600e3, 1e6, 65); err == nil {
		t.Error("cutoff above Nyquist should error")
	}
	if _, err := DesignLowpass(100e3, 1e6, 2); err == nil {
		t.Error("too few taps should error")
	}
	// Even tap count is rounded up to odd.
	lp, err := DesignLowpass(100e3, 1e6, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(lp.Taps)%2 != 1 {
		t.Error("tap count should be odd")
	}
}

func TestBandpassSelectsBand(t *testing.T) {
	fs := 10e6
	bp, err := DesignBandpass(1e6, 2e6, fs, 255)
	if err != nil {
		t.Fatal(err)
	}
	if g := bp.Response(1.5e6, fs); g < 0.9 {
		t.Errorf("in-band gain = %v, want ≈1", g)
	}
	for _, f := range []float64{0, 200e3, 3.5e6, 4.5e6} {
		if g := bp.Response(f, fs); g > 0.05 {
			t.Errorf("out-of-band gain at %v = %v", f, g)
		}
	}
	if _, err := DesignBandpass(2e6, 1e6, fs, 255); err == nil {
		t.Error("inverted band should error")
	}
	// lowHz=0 degenerates to a lowpass.
	lp, err := DesignBandpass(0, 1e6, fs, 255)
	if err != nil {
		t.Fatal(err)
	}
	if g := lp.Response(0, fs); math.Abs(g-1) > 1e-6 {
		t.Errorf("degenerate bandpass DC gain = %v", g)
	}
}

func TestFIRApplyConvolves(t *testing.T) {
	f := &FIR{Taps: []float64{0.25, 0.5, 0.25}}
	x := []complex128{0, 0, 4, 0, 0}
	y := f.Apply(x)
	want := []complex128{0, 1, 2, 1, 0}
	for i := range want {
		if cmplx.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestMovingAverage(t *testing.T) {
	ma, err := NewMovingAverage(4)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Value() != 0 || ma.Full() {
		t.Error("fresh moving average should be empty")
	}
	// Partial fill averages what it has.
	if got := ma.Push(4); got != 4 {
		t.Errorf("after one push = %v, want 4", got)
	}
	ma.Push(8)
	if got := ma.Value(); got != 6 {
		t.Errorf("after two pushes = %v, want 6", got)
	}
	ma.Push(0)
	ma.Push(0)
	if !ma.Full() {
		t.Error("window should be full")
	}
	if got := ma.Value(); got != 3 {
		t.Errorf("full window = %v, want 3", got)
	}
	// Oldest sample (4) drops out.
	if got := ma.Push(4); got != 3 {
		t.Errorf("after rollover = %v, want 3", got)
	}
	if _, err := NewMovingAverage(0); err == nil {
		t.Error("zero length should error")
	}
}

func TestMovingAverageLongRunStability(t *testing.T) {
	// Push a constant through a long window; no drift allowed.
	ma, _ := NewMovingAverage(10_000)
	for i := 0; i < 100_000; i++ {
		ma.Push(0.125)
	}
	if math.Abs(ma.Value()-0.125) > 1e-12 {
		t.Errorf("long-run mean drifted: %v", ma.Value())
	}
}

func TestWelchPSDParsevalConsistency(t *testing.T) {
	// Total integrated PSD must match time-domain power (Parseval).
	rng := rand.New(rand.NewSource(3))
	n := 1 << 14
	fs := 10e6
	x := make([]complex128, n)
	var timePower float64
	for i := range x {
		x[i] = complex(rng.NormFloat64()*0.1, rng.NormFloat64()*0.1)
		timePower += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	timePower /= float64(n)
	psd, err := WelchPSD(x, fs, 1024, Hann)
	if err != nil {
		t.Fatal(err)
	}
	got := psd.TotalPower()
	if math.Abs(got-timePower) > 0.05*timePower {
		t.Errorf("PSD total power = %v, time-domain = %v", got, timePower)
	}
}

func TestWelchPSDErrors(t *testing.T) {
	if _, err := WelchPSD(make([]complex128, 100), 1e6, 300, Hann); err == nil {
		t.Error("non-pow2 segment should error")
	}
	if _, err := WelchPSD(make([]complex128, 100), 1e6, 256, Hann); err == nil {
		t.Error("input shorter than segment should error")
	}
}

func TestBandPowerTimeDomainMeasuresTone(t *testing.T) {
	// A tone at +1 MHz with power 0.25 inside a 6 MHz channel centered at
	// +1 MHz must measure ≈0.25; a channel centered at -3 MHz must see
	// nearly nothing.
	fs := 20e6
	n := 1 << 15
	x := make([]complex128, n)
	for i := range x {
		ph := 2 * math.Pi * 1e6 * float64(i) / fs
		x[i] = complex(0.5*math.Cos(ph), 0.5*math.Sin(ph))
	}
	inBand, err := BandPowerTimeDomain(x, fs, 1e6, 6e6, 129, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inBand-0.25) > 0.02 {
		t.Errorf("in-band power = %v, want 0.25", inBand)
	}
	outBand, err := BandPowerTimeDomain(x, fs, -7e6, 6e6, 129, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if outBand > 0.001 {
		t.Errorf("out-of-band power = %v, want ≈0", outBand)
	}
}

func TestBandPowerSpectralAgreesWithTimeDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	fs := 20e6
	n := 1 << 15
	x := make([]complex128, n)
	for i := range x {
		ph := 2 * math.Pi * 2e6 * float64(i) / fs
		x[i] = complex(0.3*math.Cos(ph), 0.3*math.Sin(ph)) +
			complex(rng.NormFloat64()*0.01, rng.NormFloat64()*0.01)
	}
	td, err := BandPowerTimeDomain(x, fs, 2e6, 6e6, 129, 8192)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := BandPowerSpectral(x, fs, 2e6, 6e6, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(10*math.Log10(td/fd)) > 1 {
		t.Errorf("time-domain %v vs spectral %v differ by >1 dB", td, fd)
	}
}

func TestBandPowerEmptyInput(t *testing.T) {
	if _, err := BandPowerTimeDomain(nil, 1e6, 0, 1e5, 65, 100); err == nil {
		t.Error("empty input should error")
	}
}

func TestGoertzelDetectsPilot(t *testing.T) {
	fs := 2e6
	n := 4096
	x := make([]complex128, n)
	for i := range x {
		ph := 2 * math.Pi * 310e3 * float64(i) / fs
		x[i] = complex(0.1*math.Cos(ph), 0.1*math.Sin(ph))
	}
	at := Goertzel(x, fs, 310e3)
	off := Goertzel(x, fs, 150e3)
	if at < 100*off {
		t.Errorf("pilot power %v should dominate off-frequency %v", at, off)
	}
	if Goertzel(nil, fs, 1) != 0 {
		t.Error("empty input should give zero")
	}
}
