package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"math/rand"
	"testing"
)

// fftReference is the pre-twiddle-cache implementation, kept verbatim so
// the cached path can be checked for bit-identical output and benchmarked
// against its predecessor.
func fftReference(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := 2 * math.Pi / float64(size) * sign
		wBase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				even := x[start+k]
				odd := x[start+k+half] * w
				x[start+k] = even + odd
				x[start+k+half] = even - odd
				w *= wBase
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
	return nil
}

func randomComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// TestFFTTwiddleCacheBitIdentical pins the cached-twiddle butterflies to
// the reference implementation bit for bit, in both directions, so the
// cache can never shift the calibration pipeline's pinned figures.
func TestFFTTwiddleCacheBitIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64, 1024, 4096} {
		for _, inverse := range []bool{false, true} {
			got := randomComplex(n, int64(n))
			want := append([]complex128(nil), got...)
			if err := fftDir(got, inverse); err != nil {
				t.Fatal(err)
			}
			if err := fftReference(want, inverse); err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d inverse=%v: bin %d = %v, reference %v", n, inverse, i, got[i], want[i])
				}
			}
		}
	}
}

// TestTwiddleCacheOversize checks that transforms beyond the cache bound
// still work (built per call, never cached).
func TestTwiddleCacheOversize(t *testing.T) {
	n := maxCachedFFTSize * 2
	x := make([]complex128, n)
	x[1] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	twiddleMu.RLock()
	_, cached := twiddleCache[n]
	twiddleMu.RUnlock()
	if cached {
		t.Fatalf("size %d should not be cached (bound %d)", n, maxCachedFFTSize)
	}
	// Every bin of a shifted impulse has unit magnitude.
	for i, v := range x {
		if math.Abs(cmplx.Abs(v)-1) > 1e-9 {
			t.Fatalf("bin %d magnitude %v, want 1", i, cmplx.Abs(v))
		}
	}
}

// BenchmarkFFT compares the cached-twiddle path against the reference
// that recomputes twiddles inline on every call. Welch PSD runs at 1024
// points; the cellsim correlator uses larger transforms.
func BenchmarkFFT(b *testing.B) {
	for _, n := range []int{1024, 8192} {
		src := randomComplex(n, 7)
		scratch := make([]complex128, n)
		b.Run(fmt.Sprintf("cached/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(scratch, src)
				if err := FFT(scratch); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("reference/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(scratch, src)
				if err := fftReference(scratch, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
