package dsp

import "sync"

// Scratch pools for the measurement hot path. A campaign measures the
// same channel plan over and over, so every band-power call wants the
// same three buffers: a frequency-shift scratch, a FIR output, and a
// moving-average window. Pooling them makes the steady-state pipeline
// allocation-free and, unlike per-caller scratch structs, works
// unchanged when the pipeline fans units across workers — sync.Pool is
// per-P, so parallel units never contend.
//
// Contract: Get* returns a slice of exactly n elements with undefined
// contents; callers that need zeros must clear it. Put* recycles the
// backing array; the caller must not retain the slice afterwards.

var (
	complexPool = sync.Pool{New: func() interface{} { return new([]complex128) }}
	floatPool   = sync.Pool{New: func() interface{} { return new([]float64) }}
)

// GetComplex returns a pooled []complex128 of length n (contents
// undefined).
func GetComplex(n int) []complex128 {
	p := complexPool.Get().(*[]complex128)
	if cap(*p) < n {
		*p = make([]complex128, n)
	}
	return (*p)[:n]
}

// PutComplex recycles a slice obtained from GetComplex.
func PutComplex(s []complex128) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	complexPool.Put(&s)
}

// GetFloat returns a pooled []float64 of length n (contents undefined).
func GetFloat(n int) []float64 {
	p := floatPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	return (*p)[:n]
}

// PutFloat recycles a slice obtained from GetFloat.
func PutFloat(s []float64) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	floatPool.Put(&s)
}

// lowpassKey identifies one lowpass design; the campaign uses a handful
// of (cutoff, rate, taps) combinations thousands of times each.
type lowpassKey struct {
	cutoffHz   float64
	sampleRate float64
	taps       int
}

var (
	lowpassMu    sync.RWMutex
	lowpassCache = map[lowpassKey]*FIR{}
)

// CachedLowpass returns a shared lowpass FIR for the given parameters,
// designing it on first use. The returned filter is immutable — callers
// must not modify Taps.
func CachedLowpass(cutoffHz, sampleRate float64, taps int) (*FIR, error) {
	k := lowpassKey{cutoffHz, sampleRate, taps}
	lowpassMu.RLock()
	f := lowpassCache[k]
	lowpassMu.RUnlock()
	if f != nil {
		return f, nil
	}
	f, err := DesignLowpass(cutoffHz, sampleRate, taps)
	if err != nil {
		return nil, err
	}
	lowpassMu.Lock()
	if prev, ok := lowpassCache[k]; ok {
		f = prev // another goroutine designed it first; share theirs
	} else {
		lowpassCache[k] = f
	}
	lowpassMu.Unlock()
	return f, nil
}
