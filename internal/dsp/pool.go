package dsp

import "sync"

// Scratch pools for the measurement hot path. A campaign measures the
// same channel plan over and over, so every band-power call wants the
// same three buffers: a frequency-shift scratch, a FIR output, and a
// moving-average window. Pooling them makes the steady-state pipeline
// allocation-free and, unlike per-caller scratch structs, works
// unchanged when the pipeline fans units across workers — sync.Pool is
// per-P, so parallel units never contend.
//
// Contract: Get* returns a slice of exactly n elements with undefined
// contents; callers that need zeros must clear it. Put* recycles the
// backing array; the caller must not retain the slice afterwards.

// Each element pool is paired with a header pool: Get hands the caller a
// bare slice and parks the emptied *[]T header; Put picks a parked header
// back up to wrap the returned slice. Without the pairing every Put would
// heap-allocate a fresh 24-byte header (&s escapes into the pool), which
// is exactly the per-call garbage these pools exist to remove — it showed
// up as the last 1–2 allocs/frame in the streaming engine's steady state.
var (
	complexPool    = sync.Pool{New: func() interface{} { return new([]complex128) }}
	complexHeaders = sync.Pool{New: func() interface{} { return new([]complex128) }}
	floatPool      = sync.Pool{New: func() interface{} { return new([]float64) }}
	floatHeaders   = sync.Pool{New: func() interface{} { return new([]float64) }}
)

// GetComplex returns a pooled []complex128 of length n (contents
// undefined).
func GetComplex(n int) []complex128 {
	p := complexPool.Get().(*[]complex128)
	if cap(*p) < n {
		*p = make([]complex128, n)
	}
	s := (*p)[:n]
	*p = nil
	complexHeaders.Put(p)
	return s
}

// PutComplex recycles a slice obtained from GetComplex.
func PutComplex(s []complex128) {
	if cap(s) == 0 {
		return
	}
	p := complexHeaders.Get().(*[]complex128)
	*p = s[:0]
	complexPool.Put(p)
}

// GetFloat returns a pooled []float64 of length n (contents undefined).
func GetFloat(n int) []float64 {
	p := floatPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	s := (*p)[:n]
	*p = nil
	floatHeaders.Put(p)
	return s
}

// PutFloat recycles a slice obtained from GetFloat.
func PutFloat(s []float64) {
	if cap(s) == 0 {
		return
	}
	p := floatHeaders.Get().(*[]float64)
	*p = s[:0]
	floatPool.Put(p)
}

// lowpassKey identifies one lowpass design; the campaign uses a handful
// of (cutoff, rate, taps) combinations thousands of times each.
type lowpassKey struct {
	cutoffHz   float64
	sampleRate float64
	taps       int
}

var (
	lowpassMu    sync.RWMutex
	lowpassCache = map[lowpassKey]*FIR{}
)

// CachedLowpass returns a shared lowpass FIR for the given parameters,
// designing it on first use. The returned filter is immutable — callers
// must not modify Taps.
func CachedLowpass(cutoffHz, sampleRate float64, taps int) (*FIR, error) {
	k := lowpassKey{cutoffHz, sampleRate, taps}
	lowpassMu.RLock()
	f := lowpassCache[k]
	lowpassMu.RUnlock()
	if f != nil {
		return f, nil
	}
	f, err := DesignLowpass(cutoffHz, sampleRate, taps)
	if err != nil {
		return nil, err
	}
	lowpassMu.Lock()
	if prev, ok := lowpassCache[k]; ok {
		f = prev // another goroutine designed it first; share theirs
	} else {
		lowpassCache[k] = f
	}
	lowpassMu.Unlock()
	return f, nil
}
