package dsp

import (
	"fmt"
	"math"
)

// BandPowerTimeDomain implements the paper's TV-channel measurement
// verbatim: bandpass-filter the desired channel, square the magnitude of
// the time-domain output, and run it through a very long moving average.
// It returns the averaged in-band power (linear full-scale units).
//
// centerHz is the channel center relative to the tuned baseband center;
// widthHz is the channel bandwidth (6 MHz for ATSC). The input is consumed
// as-is; the caller chooses the capture length ("live measurement" in the
// paper means the average keeps updating — here we return the final value).
func BandPowerTimeDomain(x []complex128, sampleRate, centerHz, widthHz float64, taps, avgLen int) (float64, error) {
	if len(x) == 0 {
		return 0, fmt.Errorf("dsp: empty input")
	}
	if avgLen <= 0 {
		avgLen = len(x)
	}
	// Translate the channel to DC, lowpass at half the channel width,
	// then measure |y|² through the moving average. This is the
	// translate-filter form of the paper's bandpass. All scratch comes
	// from the package pools so repeated channel measurements (the
	// campaign steady state) allocate nothing.
	shifted := GetComplex(len(x))
	defer PutComplex(shifted)
	w := -2 * math.Pi * centerHz / sampleRate
	for i, s := range x {
		c, sn := math.Cos(w*float64(i)), math.Sin(w*float64(i))
		shifted[i] = s * complex(c, sn)
	}
	lp, err := CachedLowpass(widthHz/2, sampleRate, taps)
	if err != nil {
		return 0, err
	}
	y := GetComplex(len(shifted))
	defer PutComplex(y)
	lp.ApplyTo(y, shifted)
	win := GetFloat(avgLen)
	defer PutFloat(win)
	var ma MovingAverage
	ma.Reset(win)
	// Skip the filter's warm-up transient: "same" convolution zero-pads
	// the edges, so the first and last taps/2 output samples mix real
	// signal with zero-filled history and would bias the average low.
	// On captures too short to discard the full transient, trim as much
	// as possible while keeping at least one sample, rather than
	// (as before) giving up and averaging the biased edges too.
	skip := len(lp.Taps) / 2
	if skip*2 >= len(y) {
		skip = (len(y) - 1) / 2
	}
	var last float64
	for _, s := range y[skip : len(y)-skip] {
		last = ma.Push(real(s)*real(s) + imag(s)*imag(s))
	}
	return last, nil
}

// BandPowerSpectral measures in-band power by integrating a Welch PSD over
// [centerHz-widthHz/2, centerHz+widthHz/2]. It is the frequency-domain
// alternative benchmarked against the paper's time-domain method.
func BandPowerSpectral(x []complex128, sampleRate, centerHz, widthHz float64, segment int) (float64, error) {
	psd, err := WelchPSD(x, sampleRate, segment, Hann)
	if err != nil {
		return 0, err
	}
	lo, hi := centerHz-widthHz/2, centerHz+widthHz/2
	var p float64
	df := sampleRate / float64(len(psd.Density))
	for i, d := range psd.Density {
		f := FFTFreq(i, len(psd.Density), sampleRate)
		if f >= lo && f <= hi {
			p += d * df
		}
	}
	return p, nil
}

// PSD holds a power spectral density estimate: Density[i] is the power per
// Hz in FFT bin i (bin order as produced by FFT, i.e. DC first).
type PSD struct {
	Density    []float64
	SampleRate float64
}

// WelchPSD estimates the PSD by averaging windowed periodograms over 50%
// overlapping segments of the given power-of-two length.
func WelchPSD(x []complex128, sampleRate float64, segment int, window WindowFunc) (*PSD, error) {
	density := make([]float64, segment)
	if err := WelchPSDInto(density, x, sampleRate, segment, window); err != nil {
		return nil, err
	}
	return &PSD{Density: density, SampleRate: sampleRate}, nil
}

// WelchPSDInto is the allocation-free core of WelchPSD: it writes the
// density estimate into dst (which must have length segment), draws its
// FFT scratch from the package pools and its window from the shared
// window cache. Scan loops that compute the same-size PSD per frame —
// the streaming service and the one-shot spectrum analyzer — call this
// with a reused dst so the steady state allocates nothing.
func WelchPSDInto(dst []float64, x []complex128, sampleRate float64, segment int, window WindowFunc) error {
	if segment <= 0 || segment&(segment-1) != 0 {
		return fmt.Errorf("dsp: segment %d must be a power of two", segment)
	}
	if len(x) < segment {
		return fmt.Errorf("dsp: input (%d) shorter than segment (%d)", len(x), segment)
	}
	if len(dst) != segment {
		return fmt.Errorf("dsp: density buffer (%d) must match segment (%d)", len(dst), segment)
	}
	w := CachedWindow(window, segment)
	gain := windowPowerGain(w)
	density := dst
	for i := range density {
		density[i] = 0
	}
	buf := GetComplex(segment)
	defer PutComplex(buf)
	hop := segment / 2
	segments := 0
	for start := 0; start+segment <= len(x); start += hop {
		for i := 0; i < segment; i++ {
			buf[i] = x[start+i] * complex(w[i], 0)
		}
		if err := FFT(buf); err != nil {
			return err
		}
		for i, s := range buf {
			density[i] += real(s)*real(s) + imag(s)*imag(s)
		}
		segments++
	}
	norm := 1 / (float64(segments) * gain * sampleRate)
	for i := range density {
		density[i] *= norm
	}
	return nil
}

// TotalPower integrates the PSD across the whole band, which by Parseval
// equals the mean time-domain power.
func (p *PSD) TotalPower() float64 {
	df := p.SampleRate / float64(len(p.Density))
	var sum float64
	for _, d := range p.Density {
		sum += d * df
	}
	return sum
}

// Goertzel computes the power of x at a single frequency, the cheap way to
// check for a pilot tone without a full FFT.
func Goertzel(x []complex128, sampleRate, hz float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	w := 2 * math.Pi * hz / sampleRate
	// Complex Goertzel: correlate with e^{-jwt}.
	var re, im float64
	for i, s := range x {
		c, sn := math.Cos(w*float64(i)), math.Sin(w*float64(i))
		re += real(s)*c + imag(s)*sn
		im += imag(s)*c - real(s)*sn
	}
	return (re*re + im*im) / float64(n) / float64(n)
}
