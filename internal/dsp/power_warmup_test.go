package dsp

import (
	"math"
	"testing"
)

// tone fills n samples with a unit-circle complex exponential scaled to
// amplitude amp (power amp²).
func tone(n int, fs, hz, amp float64) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		ph := 2 * math.Pi * hz * float64(i) / fs
		x[i] = complex(amp*math.Cos(ph), amp*math.Sin(ph))
	}
	return x
}

// TestBandPowerShortCaptureWarmupUnbiased is the regression for the
// moving-average warm-up bug: on captures shorter than twice the tap
// count the old code stopped skipping the FIR warm-up transient
// entirely, so the zero-padded edges dragged the first window's band
// power low. A constant-power tone must measure its true power even on
// a short capture.
func TestBandPowerShortCaptureWarmupUnbiased(t *testing.T) {
	fs := 20e6
	const taps = 65
	// 120 samples < 2×65 taps: the pre-fix code fell back to skip=0 here.
	x := tone(120, fs, 0, 1)
	got, err := BandPowerTimeDomain(x, fs, 0, 6e6, taps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 0.02 {
		t.Errorf("short-capture band power = %v, want 1.0 (warm-up bias back?)", got)
	}
}

// TestBandPowerShortAgreesWithLongCapture checks the same deterministic
// signal measured over a short capture and a long one: with the
// transient properly skipped the two estimates agree, because every
// averaged sample is steady-state in both.
func TestBandPowerShortAgreesWithLongCapture(t *testing.T) {
	fs := 20e6
	const taps = 129
	long := tone(1<<15, fs, 1e6, 0.5)
	short := long[:250] // < 2×129 taps: the pre-fix skip=0 regime
	pLong, err := BandPowerTimeDomain(long, fs, 1e6, 6e6, taps, 0)
	if err != nil {
		t.Fatal(err)
	}
	pShort, err := BandPowerTimeDomain(short, fs, 1e6, 6e6, taps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(10 * math.Log10(pShort/pLong)); diff > 0.1 {
		t.Errorf("short %.4f vs long %.4f differ by %.2f dB", pShort, pLong, diff)
	}
}

// TestBandPowerTinyCaptureStillMeasures pins the degenerate clamp: when
// the capture cannot cover even one transient, as much edge as possible
// is trimmed while keeping at least one sample, and the call still
// returns a finite value rather than erroring or reading only zeros.
func TestBandPowerTinyCaptureStillMeasures(t *testing.T) {
	x := tone(20, 20e6, 0, 1)
	got, err := BandPowerTimeDomain(x, 20e6, 0, 6e6, 65, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 || math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("tiny-capture band power = %v", got)
	}
}

// TestBandPowerPooledScratchIsClean runs band-power measurements of very
// different lengths back to back: pooled scratch from the first call
// must not leak into the second call's result.
func TestBandPowerPooledScratchIsClean(t *testing.T) {
	fs := 20e6
	big := tone(1<<14, fs, 1e6, 1)
	if _, err := BandPowerTimeDomain(big, fs, 1e6, 6e6, 129, 0); err != nil {
		t.Fatal(err)
	}
	// The quiet channel of a smaller capture must still read ≈0 even
	// though its pooled buffers just held full-scale samples.
	small := tone(1<<12, fs, 1e6, 0.001)
	got, err := BandPowerTimeDomain(small, fs, -8e6, 4e6, 129, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got > 1e-8 {
		t.Errorf("quiet channel = %v; pooled scratch leaked", got)
	}
}
