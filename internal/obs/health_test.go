package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func TestHealthNilIsAlwaysReady(t *testing.T) {
	var h *Health
	ready, failing := h.Ready()
	if !ready || len(failing) != 0 {
		t.Fatalf("nil health ready = %v failing = %v, want ready", ready, failing)
	}
	rec := httptest.NewRecorder()
	h.ReadyHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("/readyz on nil health = %d, want 200", rec.Code)
	}
}

func TestHealthProbesGateReadiness(t *testing.T) {
	h := NewHealth()
	h.SetReady("ledger", false)
	walOK := true
	h.AddCheck("wal", func() bool { return walOK })

	assert := func(wantReady bool, wantFailing ...string) {
		t.Helper()
		ready, failing := h.Ready()
		if ready != wantReady {
			t.Fatalf("ready = %v, want %v (failing %v)", ready, wantReady, failing)
		}
		if len(failing) != len(wantFailing) {
			t.Fatalf("failing = %v, want %v", failing, wantFailing)
		}
		for i := range failing {
			if failing[i] != wantFailing[i] {
				t.Fatalf("failing = %v, want %v", failing, wantFailing)
			}
		}
	}
	assert(false, "ledger")
	h.SetReady("ledger", true)
	assert(true)
	walOK = false
	assert(false, "wal")
	h.SetReady("ledger", false)
	assert(false, "ledger", "wal")
}

func TestHealthReadyHandlerCodesAndBody(t *testing.T) {
	h := NewHealth()
	h.SetReady("boot", false)
	rec := httptest.NewRecorder()
	h.ReadyHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Fatalf("/readyz while booting = %d, want 503", rec.Code)
	}
	var body struct {
		Ready   bool     `json:"ready"`
		Failing []string `json:"failing"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Ready || len(body.Failing) != 1 || body.Failing[0] != "boot" {
		t.Fatalf("body = %+v, want failing [boot]", body)
	}

	h.SetReady("boot", true)
	rec = httptest.NewRecorder()
	h.ReadyHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("/readyz after boot = %d, want 200", rec.Code)
	}
	liveRec := httptest.NewRecorder()
	h.LiveHandler().ServeHTTP(liveRec, httptest.NewRequest("GET", "/healthz", nil))
	if liveRec.Code != 200 {
		t.Fatalf("/healthz = %d, want 200", liveRec.Code)
	}
}

func TestAdminMuxServesHealthEndpoints(t *testing.T) {
	mux := AdminMux(NewRegistry(), NewTracer(16), nil)
	for _, path := range []string{"/healthz", "/readyz"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s = %d, want 200", path, rec.Code)
		}
	}
}
