package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition format, version 0.0.4:
//
//	# HELP name help text
//	# TYPE name counter
//	name{label="value"} 42
//
// Histograms render cumulative _bucket series with an le label plus _sum
// and _count. Families sort by name and children by label values, so
// scrapes are deterministic and diffable in tests.

// WritePrometheus renders every registered family to w.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for name, f := range r.families {
		names = append(names, name)
		fams[name] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		if err := fams[name].write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Handler serves the registry in exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

func (f *family) write(w io.Writer) error {
	f.mu.Lock()
	fn := f.fn
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	children := make(map[string]interface{}, len(f.children))
	for k, c := range f.children {
		children[k] = c
	}
	buckets := f.buckets
	f.mu.Unlock()
	sort.Strings(keys)

	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
		return err
	}
	if fn != nil {
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(fn()))
		return err
	}
	for _, key := range keys {
		var values []string
		if key != "" || len(f.labels) > 0 {
			values = strings.Split(key, "\xff")
		}
		switch m := children[key].(type) {
		case *Counter:
			if err := writeSample(w, f.name, f.labels, values, "", "", m.Value()); err != nil {
				return err
			}
		case *Gauge:
			if err := writeSample(w, f.name, f.labels, values, "", "", m.Value()); err != nil {
				return err
			}
		case *Histogram:
			var cum uint64
			for i, ub := range buckets {
				cum += m.counts[i].Load()
				if err := writeSample(w, f.name+"_bucket", f.labels, values, "le", formatFloat(ub), float64(cum)); err != nil {
					return err
				}
			}
			if err := writeSample(w, f.name+"_bucket", f.labels, values, "le", "+Inf", float64(m.Count())); err != nil {
				return err
			}
			if err := writeSample(w, f.name+"_sum", f.labels, values, "", "", m.Sum()); err != nil {
				return err
			}
			if err := writeSample(w, f.name+"_count", f.labels, values, "", "", float64(m.Count())); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSample renders one line: name{labels...} value. extraName/extraValue
// append a synthetic label (histograms' le).
func writeSample(w io.Writer, name string, labels, values []string, extraName, extraValue string, v float64) error {
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(values[i]))
			sb.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(extraName)
			sb.WriteString(`="`)
			sb.WriteString(extraValue)
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	_, err := fmt.Fprintf(w, "%s %s\n", sb.String(), formatFloat(v))
	return err
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes help text per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
