package obs

import (
	"io"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// The admin mux must serve non-empty mutex/block profiles once contention
// profiling is enabled — that is the verification path for any shard-
// contention claim.
func TestAdminMuxServesContentionProfiles(t *testing.T) {
	EnableContentionProfiling(1, 1)
	defer DisableContentionProfiling()

	// Manufacture some mutex contention so the profile has samples.
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				mu.Lock()
				runtime.Gosched()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	srv := httptest.NewServer(AdminMux(NewRegistry(), nil, nil))
	defer srv.Close()
	for _, profile := range []string{"mutex", "block"} {
		resp, err := srv.Client().Get(srv.URL + "/debug/pprof/" + profile + "?debug=1")
		if err != nil {
			t.Fatalf("GET %s: %v", profile, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s profile status %d", profile, resp.StatusCode)
		}
		if !strings.Contains(string(body), "cycles/second") {
			t.Errorf("%s profile response does not look like a contention profile:\n%.200s", profile, body)
		}
	}
}

func TestEnableContentionProfilingIgnoresNonPositive(t *testing.T) {
	prev := runtime.SetMutexProfileFraction(-1) // read current
	runtime.SetMutexProfileFraction(prev)
	EnableContentionProfiling(0, 0) // must not change anything
	if got := runtime.SetMutexProfileFraction(-1); got != prev {
		t.Errorf("mutex fraction changed to %d by no-op enable, want %d", got, prev)
	}
	runtime.SetMutexProfileFraction(prev)
}
