package obs_test

// An end-to-end scrape: a trust.Collector instrumented against a private
// registry, exercised through real consensus work, then read back over
// HTTP from the admin mux the daemons serve. Lives in package obs_test so
// it can import trust (which itself imports obs).

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"sensorcal/internal/obs"
	"sensorcal/internal/trust"
)

// sampleLine matches one exposition sample: name{labels} value.
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[0-9eE.+-]+)$`)

func TestScrapeInstrumentedCollector(t *testing.T) {
	reg := obs.NewRegistry()
	col := trust.NewCollector().Instrument(reg)
	col.EpochWindow = time.Minute

	for _, id := range []trust.NodeID{"honest-1", "honest-2", "fabricator"} {
		if err := col.Ledger.Register(trust.Node{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	at := time.Date(2026, 8, 5, 12, 0, 10, 0, time.UTC)
	for _, r := range []trust.Reading{
		{Node: "honest-1", SignalID: "tv-521MHz", PowerDBm: -60, At: at},
		{Node: "honest-2", SignalID: "tv-521MHz", PowerDBm: -61, At: at},
		{Node: "fabricator", SignalID: "tv-521MHz", PowerDBm: -25, At: at},
	} {
		if err := col.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := col.Submit(trust.Reading{Node: "ghost", SignalID: "tv-521MHz", PowerDBm: -60, At: at}); err == nil {
		t.Fatal("unregistered node accepted")
	}
	col.CloseEpochs(at.Add(2 * time.Minute))

	srv := httptest.NewServer(obs.AdminMux(reg, obs.NewTracer(8), nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		"trust_readings_total 3",
		"trust_reading_errors_total 1",
		"trust_epochs_closed_total 1",
		`trust_anomalies_total{kind="over-consensus-power"}`,
		`trust_anomalies_total{kind="uncorrelated-with-consensus"}`,
		`trust_node_score{node="fabricator"}`,
		`trust_node_score{node="honest-1"}`,
		"trust_nodes_registered 3",
		"trust_pending_epochs 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("scrape body:\n%s", body)
		t.FailNow()
	}

	// The fabricator's gauge must sit below the honest nodes' after the
	// consensus round penalised it.
	score := func(node string) float64 {
		m := regexp.MustCompile(`trust_node_score\{node="` + node + `"\} ([0-9.eE+-]+)`).FindStringSubmatch(body)
		if m == nil {
			t.Fatalf("no trust_node_score for %s", node)
		}
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if score("fabricator") >= score("honest-1") {
		t.Fatalf("fabricator score %v not below honest %v", score("fabricator"), score("honest-1"))
	}

	// Every non-comment line must be a well-formed sample.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}

	// The rest of the admin surface answers too.
	for _, path := range []string{"/debug/traces", "/debug/pprof/"} {
		r2, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, r2.Status)
		}
	}
}
