package obs

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"strconv"
)

// RED middleware: every HTTP hop in the pipeline — agent→schedd lease,
// agent→spectrumd submit — gets the same treatment on both sides of the
// wire. The server half extracts the incoming trace context, opens a
// span, and observes rate/errors/duration into a per-route histogram;
// the client half opens a child span, injects the context onward, and
// observes the same shape from the caller's vantage. With both series a
// dashboard separates "the collector is slow" from "the network to the
// collector is slow" — the distinction §5's crowd-sourced regime turns
// on, where the sensor's link is the least trustworthy component.

// Middleware instruments HTTP servers and clients of one service with
// tracing and RED metrics. The zero value is unusable; fields default
// when constructed via NewMiddleware.
type Middleware struct {
	service string
	tracer  *Tracer
	server  *HistogramVec // http_server_request_seconds{service,route,code}
	client  *HistogramVec // http_client_request_seconds{service,route,code}
}

// NewMiddleware returns middleware labelled with service. Nil reg or tr
// default to the process-wide instances. The metric families are shared
// across services (label-partitioned), so multiple daemons in one
// process — the e2e test — do not collide.
//
// Exposed series:
//
//	http_server_request_seconds{service,route,code} — handler latency
//	http_client_request_seconds{service,route,code} — outbound call latency
//
// code is the status class ("2xx".."5xx") or "error" for transport
// failures that never yielded a status.
func NewMiddleware(service string, reg *Registry, tr *Tracer) *Middleware {
	if reg == nil {
		reg = Default()
	}
	if tr == nil {
		tr = DefaultTracer()
	}
	return &Middleware{
		service: service,
		tracer:  tr,
		server: reg.HistogramVec("http_server_request_seconds",
			"HTTP server request duration by route and status class.",
			DefBuckets, "service", "route", "code"),
		client: reg.HistogramVec("http_client_request_seconds",
			"HTTP client request duration by route and status class.",
			DefBuckets, "service", "route", "code"),
	}
}

// codeClass collapses a status code to its class label.
func codeClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	case code >= 200:
		return "2xx"
	default:
		return "1xx"
	}
}

// statusWriter records the status code a handler writes. A handler that
// writes a body without calling WriteHeader has implicitly sent 200.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code, w.wrote = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code, w.wrote = http.StatusOK, true
	}
	return w.ResponseWriter.Write(b)
}

// flusher/hijacker shims: wrapping must not hide the optional interfaces
// the stdlib feature-detects — a streaming handler that loses Flusher
// silently stops streaming, and TimeoutHandler-style wrappers that lose
// Hijacker break connection upgrades.
type flushWriter struct{ *statusWriter }

func (w flushWriter) Flush() { w.statusWriter.ResponseWriter.(http.Flusher).Flush() }

type hijackWriter struct{ *statusWriter }

func (w hijackWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	return w.statusWriter.ResponseWriter.(http.Hijacker).Hijack()
}

// wrapWriter picks the variant preserving the underlying writer's
// optional interfaces.
func wrapWriter(w http.ResponseWriter) (http.ResponseWriter, *statusWriter) {
	sw := &statusWriter{ResponseWriter: w}
	_, fl := w.(http.Flusher)
	_, hj := w.(http.Hijacker)
	switch {
	case fl && hj:
		return struct {
			*statusWriter
			http.Flusher
			http.Hijacker
		}{sw, flushWriter{sw}, hijackWriter{sw}}, sw
	case fl:
		return flushWriter{sw}, sw
	case hj:
		return hijackWriter{sw}, sw
	default:
		return sw, sw
	}
}

// WrapHandler instruments h as route: extract the remote trace context,
// run the handler inside a server span, observe the RED histogram. A
// panicking handler is recorded as a 5xx with the panic on the span,
// then re-panicked so net/http's recovery (connection reset) still
// applies — swallowing it here would turn crashes into silent 200s.
func (m *Middleware) WrapHandler(route string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := Extract(r.Context(), r.Header)
		ctx = WithTracer(ctx, m.tracer)
		ctx, span := StartSpan(ctx, "server "+route)
		span.SetAttr("service", m.service)
		span.SetAttr("route", route)
		span.SetAttr("method", r.Method)
		wrapped, sw := wrapWriter(w)
		start := m.tracer.now()
		defer func() {
			code := sw.code
			if !sw.wrote {
				code = http.StatusOK // handler wrote nothing: net/http sends 200
			}
			if p := recover(); p != nil {
				code = http.StatusInternalServerError
				span.SetError(fmt.Errorf("panic: %v", p))
				span.SetAttr("code", strconv.Itoa(code))
				span.End()
				m.server.With(m.service, route, codeClass(code)).
					Observe(m.tracer.now().Sub(start).Seconds())
				panic(p)
			}
			span.SetAttr("code", strconv.Itoa(code))
			if code >= 500 {
				span.SetError(fmt.Errorf("status %d", code))
			}
			span.End()
			m.server.With(m.service, route, codeClass(code)).
				Observe(m.tracer.now().Sub(start).Seconds())
		}()
		h.ServeHTTP(wrapped, r.WithContext(ctx))
	})
}

// tracedTransport is the client half: child span, inject, observe.
type tracedTransport struct {
	m     *Middleware
	route func(*http.Request) string
	next  http.RoundTripper
}

func (t *tracedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	route := t.route(req)
	ctx, span := StartSpan(WithTracer(req.Context(), t.m.tracer), "client "+route)
	span.SetAttr("service", t.m.service)
	span.SetAttr("route", route)
	span.SetAttr("method", req.Method)
	// Per the RoundTripper contract the request must not be mutated;
	// clone it to attach the propagation headers and the span context.
	req = req.Clone(ctx)
	Inject(ctx, req.Header)
	start := t.m.tracer.now()
	resp, err := t.next.RoundTrip(req)
	elapsed := t.m.tracer.now().Sub(start).Seconds()
	code := "error"
	if err != nil {
		span.SetError(err)
	} else {
		code = codeClass(resp.StatusCode)
		span.SetAttr("code", strconv.Itoa(resp.StatusCode))
	}
	span.End()
	t.m.client.With(t.m.service, route, code).Observe(elapsed)
	return resp, err
}

// WrapTransport instruments rt (nil means http.DefaultTransport) with
// client spans, traceparent injection and the client RED histogram.
// route derives the metric label from the request; nil means URL path.
// Routes must be low-cardinality: use the path template, not raw paths
// with IDs in them.
func (m *Middleware) WrapTransport(rt http.RoundTripper, route func(*http.Request) string) http.RoundTripper {
	if rt == nil {
		rt = http.DefaultTransport
	}
	if route == nil {
		route = func(r *http.Request) string { return r.URL.Path }
	}
	return &tracedTransport{m: m, route: route, next: rt}
}

// WrapClient returns a copy of hc (nil means a fresh client) whose
// transport is wrapped — callers' shared clients are never mutated.
func (m *Middleware) WrapClient(hc *http.Client, route func(*http.Request) string) *http.Client {
	var c http.Client
	if hc != nil {
		c = *hc
	}
	c.Transport = m.WrapTransport(c.Transport, route)
	return &c
}
