package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"sensorcal/internal/clock"
)

// drive feeds n requests with the given status class into the RED
// histogram for route.
func drive(mw *Middleware, route, class string, n int) {
	h := mw.server.With("svc", route, class)
	for i := 0; i < n; i++ {
		h.Observe(0.01)
	}
}

func TestSLOBurnRates(t *testing.T) {
	reg := NewRegistry()
	mw := NewMiddleware("svc", reg, NewTracer(4))
	clk := clock.NewSimulated(time.Unix(1700000000, 0))
	slo := NewSLO(SLOConfig{
		Registry:   reg,
		Objective:  0.99, // 1% error budget: burn = error_rate × 100
		FastWindow: 5 * time.Minute,
		SlowWindow: time.Hour,
		Clock:      clk,
	})

	// Hour 0: healthy baseline, 1000 requests, no errors, sampled every
	// 5 minutes.
	for i := 0; i < 12; i++ {
		drive(mw, "/api/lease", "2xx", 80)
		drive(mw, "/api/lease", "4xx", 3) // caller errors spend no budget
		clk.Advance(5 * time.Minute)
		slo.Sample()
	}
	rep := slo.Report()
	if len(rep.Routes) != 1 {
		t.Fatalf("report has %d routes, want 1: %+v", len(rep.Routes), rep.Routes)
	}
	if rb := rep.Routes[0]; rb.FastBurn != 0 || rb.SlowBurn != 0 {
		t.Fatalf("healthy service burns budget: %+v", rb)
	}

	// Then a sharp regression: 10% of requests fail for one fast window.
	drive(mw, "/api/lease", "2xx", 90)
	drive(mw, "/api/lease", "5xx", 10)
	clk.Advance(5 * time.Minute)
	slo.Sample()
	rep = slo.Report()
	rb := rep.Routes[0]
	// Fast window covers exactly the bad interval: error rate 0.10,
	// burn 0.10/0.01 = 10.
	if math.Abs(rb.FastErrorRate-0.10) > 1e-9 {
		t.Fatalf("fast error rate = %v, want 0.10", rb.FastErrorRate)
	}
	if math.Abs(rb.FastBurn-10) > 1e-6 {
		t.Fatalf("fast burn = %v, want 10", rb.FastBurn)
	}
	// Slow window dilutes it across the healthy hour: 10 errors in
	// (11×80 + 90+10 + 11×3 eligible?) — 4xx counts toward total but not
	// errors: total Δ over 1 h = 11×(80+3) + 100 = 1013, errors = 10.
	wantSlow := 10.0 / 1013.0
	if math.Abs(rb.SlowErrorRate-wantSlow) > 1e-9 {
		t.Fatalf("slow error rate = %v, want %v", rb.SlowErrorRate, wantSlow)
	}
	if rb.SlowBurn <= 0 || rb.SlowBurn >= rb.FastBurn {
		t.Fatalf("slow burn %v should be positive and below fast burn %v", rb.SlowBurn, rb.FastBurn)
	}

	// Transport-level failures ("error" class) spend budget too.
	drive(mw, "/api/lease", "error", 100)
	clk.Advance(5 * time.Minute)
	slo.Sample()
	rb = slo.Report().Routes[0]
	if math.Abs(rb.FastErrorRate-1.0) > 1e-9 {
		t.Fatalf("all-error window has fast rate %v, want 1.0", rb.FastErrorRate)
	}
	if math.Abs(rb.FastBurn-100) > 1e-6 {
		t.Fatalf("all-error fast burn = %v, want 100 (entire budget per SLO period)", rb.FastBurn)
	}
}

func TestSLOHandler(t *testing.T) {
	reg := NewRegistry()
	mw := NewMiddleware("svc", reg, NewTracer(4))
	drive(mw, "/api/readings", "2xx", 5)
	slo := NewSLO(SLOConfig{Registry: reg})

	rec := httptest.NewRecorder()
	slo.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var rep SLOReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("/debug/slo is not JSON: %v\n%s", err, rec.Body.String())
	}
	if rep.Objective != 0.999 || rep.FastWindow != "5m0s" || rep.SlowWindow != "1h0m0s" {
		t.Fatalf("defaults not applied: %+v", rep)
	}
	if len(rep.Routes) != 1 || rep.Routes[0].Route != "svc /api/readings" || rep.Routes[0].Requests != 5 {
		t.Fatalf("routes = %+v", rep.Routes)
	}

	// A registry with no traffic yet serves an empty route list, not an
	// error — vec children materialize lazily.
	rec = httptest.NewRecorder()
	NewSLO(SLOConfig{Registry: NewRegistry()}).Handler().
		ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	var emptyRep SLOReport
	if err := json.Unmarshal(rec.Body.Bytes(), &emptyRep); err != nil || emptyRep.Routes == nil {
		t.Fatalf("cold /debug/slo served %q", rec.Body.String())
	}
}
