// Package obs is the observability substrate for the sensor network: a
// dependency-free metrics registry with Prometheus text exposition, a
// lightweight span tracer backed by a ring buffer, a leveled structured
// logger, and an HTTP admin mux that serves all of it plus net/http/pprof.
//
// The paper's end state (§5) is a paid sensing marketplace; operators of
// such a network need to *see* per-node pipeline health — decode rates,
// consensus anomalies, scheduler behaviour — the way Electrosense watches
// its production sensors. Every metric here is also the measurement
// substrate for performance work: hot paths are only as fast as we can
// prove them to be.
//
// All types are safe for concurrent use. Counters and gauges are single
// atomic words; histograms take one atomic add per observation. Scrapes
// never block writers for more than a map lookup.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric with a type, help text and (for vectors) a
// set of labelled children.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge" or "histogram"
	labels []string

	mu       sync.Mutex
	children map[string]interface{} // joined label values → metric
	fn       func() float64         // callback metrics (GaugeFunc/CounterFunc)
	buckets  []float64              // histogram upper bounds
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry the daemons expose.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Library instrumentation that
// is not handed an explicit registry records here, and the daemons' admin
// servers expose it.
func Default() *Registry { return defaultRegistry }

// validName matches the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && !(i > 0 && r >= '0' && r <= '9') {
			return false
		}
	}
	return true
}

// register returns the family for name, creating it on first use.
// Re-registering with a different type or label set panics: that is a
// programming error, not a runtime condition.
func (r *Registry) register(name, help, typ string, labels []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, typ: typ,
			labels:   append([]string(nil), labels...),
			children: make(map[string]interface{}),
		}
		r.families[name] = f
		return f
	}
	if f.typ != typ || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s%v, was %s%v",
			name, typ, labels, f.typ, f.labels))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("obs: metric %s re-registered with labels %v, was %v",
				name, labels, f.labels))
		}
	}
	return f
}

// labelKey joins label values with an unprintable separator.
func labelKey(values []string) string { return strings.Join(values, "\xff") }

// child returns the labelled child metric, creating it with mk on first
// use.
func (f *family) child(values []string, mk func() interface{}) interface{} {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = mk()
		f.children[key] = c
	}
	return c
}

// atomicFloat is a float64 with atomic add/set via CAS on the bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) Add(v float64) {
	for {
		old := a.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (a *atomicFloat) Set(v float64)  { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) Value() float64 { return math.Float64frombits(a.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds v; negative deltas are ignored (counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	c.v.Add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Value() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Set(v) }

// Add adjusts the value by v (use a negative v to decrement).
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Value() }

// Histogram counts observations into preset cumulative buckets.
type Histogram struct {
	buckets []float64 // upper bounds, sorted ascending
	counts  []atomic.Uint64
	sum     atomicFloat
	count   atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bucket whose upper bound admits v.
	i := sort.SearchFloat64s(h.buckets, v)
	if i < len(h.buckets) {
		h.counts[i].Add(1)
	}
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil)
	return f.child(nil, func() interface{} { return &Counter{} }).(*Counter)
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil)
	return f.child(nil, func() interface{} { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time —
// the cheap way to export an existing counter or length without touching
// the hot path at all.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge", nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time. fn must be monotone.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "counter", nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// Histogram registers (or fetches) an unlabelled histogram with the given
// bucket upper bounds (a +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, "histogram", nil)
	f.mu.Lock()
	if f.buckets == nil {
		f.buckets = normalizeBuckets(buckets)
	}
	bs := f.buckets
	f.mu.Unlock()
	return f.child(nil, func() interface{} { return newHistogram(bs) }).(*Histogram)
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, "counter", labels)}
}

// With returns the child counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() interface{} { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, "gauge", labels)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() interface{} { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labelled histogram family sharing
// one bucket layout.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := r.register(name, help, "histogram", labels)
	f.mu.Lock()
	if f.buckets == nil {
		f.buckets = normalizeBuckets(buckets)
	}
	f.mu.Unlock()
	return &HistogramVec{f}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	v.f.mu.Lock()
	bs := v.f.buckets
	v.f.mu.Unlock()
	return v.f.child(values, func() interface{} { return newHistogram(bs) }).(*Histogram)
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{buckets: buckets, counts: make([]atomic.Uint64, len(buckets))}
}

// normalizeBuckets sorts, dedups and strips +Inf (implicit).
func normalizeBuckets(buckets []float64) []float64 {
	bs := append([]float64(nil), buckets...)
	sort.Float64s(bs)
	out := bs[:0]
	for _, b := range bs {
		if math.IsInf(b, +1) {
			continue
		}
		if len(out) > 0 && out[len(out)-1] == b {
			continue
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		out = append(out, 1)
	}
	return out
}

// LabeledValue is one child metric's scalar reading: the label values
// (aligned with the family's label names) and the value — counter and
// gauge values directly, a histogram's observation count.
type LabeledValue struct {
	Labels []string
	Value  float64
}

// Samples snapshots family name for programmatic readers (the SLO
// evaluator, tests): the family's label names and every child's current
// scalar. A missing family returns (nil, nil) — callers treat that as
// "no traffic yet", not an error, because vec children materialize
// lazily on first use.
func (r *Registry) Samples(name string) (labels []string, values []LabeledValue) {
	r.mu.Lock()
	f := r.families[name]
	r.mu.Unlock()
	if f == nil {
		return nil, nil
	}
	f.mu.Lock()
	labels = append([]string(nil), f.labels...)
	keys := make([]string, 0, len(f.children))
	children := make([]interface{}, 0, len(f.children))
	for k, c := range f.children {
		keys = append(keys, k)
		children = append(children, c)
	}
	f.mu.Unlock()
	values = make([]LabeledValue, 0, len(children))
	for i, c := range children {
		var v float64
		switch m := c.(type) {
		case *Counter:
			v = m.Value()
		case *Gauge:
			v = m.Value()
		case *Histogram:
			v = float64(m.Count())
		default:
			continue
		}
		var lv []string
		if keys[i] != "" || len(labels) > 0 {
			lv = strings.Split(keys[i], "\xff")
		}
		values = append(values, LabeledValue{Labels: lv, Value: v})
	}
	return labels, values
}

// DefBuckets mirrors the Prometheus client default: general-purpose
// latency buckets from 5 ms to 10 s.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// DurationBuckets spans microseconds to a minute — suitable for the
// calibration stages, which range from sub-millisecond simulated sweeps
// to multi-second captures.
var DurationBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 1, 5, 15, 60,
}

// ExpBuckets returns n buckets starting at start, each factor times the
// previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n buckets starting at start, spaced width apart.
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 {
		panic("obs: LinearBuckets wants n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}
