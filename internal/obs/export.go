package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// SpanExporter durably persists finished spans as JSON Lines, one span
// per line — the same append-only shape as the resilience spool's WAL,
// minus the ack half (spans are telemetry, not work). The design rule is
// the same one the trust hot path lives by: the recording goroutine must
// never wait on disk. End hands the span to a bounded queue; a single
// background writer drains it. When the queue is full the span is
// dropped and counted (trace_spans_dropped_total{reason="export_queue"})
// — backpressure on telemetry would invert the service's priorities.
type SpanExporter struct {
	path    string
	maxSize int64

	queue chan SpanRecord
	stop  chan struct{}
	done  chan struct{}

	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	size int64

	closeOnce sync.Once
}

// ExporterConfig assembles a SpanExporter.
type ExporterConfig struct {
	// Path of the JSONL spool file. Appended to if it exists.
	Path string
	// QueueSize bounds spans awaiting the writer; zero means 1024.
	QueueSize int
	// MaxSizeBytes truncates the spool (oldest spans lost) when an append
	// would exceed it. Zero means 64 MiB; telemetry is bounded, always.
	MaxSizeBytes int64
}

// NewSpanExporter opens (or creates) the spool file and starts the
// background writer.
func NewSpanExporter(cfg ExporterConfig) (*SpanExporter, error) {
	if cfg.Path == "" {
		return nil, fmt.Errorf("obs: span exporter needs a path")
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 1024
	}
	if cfg.MaxSizeBytes <= 0 {
		cfg.MaxSizeBytes = 64 << 20
	}
	f, err := os.OpenFile(cfg.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: span exporter: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: span exporter: %w", err)
	}
	e := &SpanExporter{
		path:    cfg.Path,
		maxSize: cfg.MaxSizeBytes,
		queue:   make(chan SpanRecord, cfg.QueueSize),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		f:       f,
		w:       bufio.NewWriterSize(f, 32<<10),
		size:    st.Size(),
	}
	go e.run()
	return e, nil
}

// export offers one span to the writer without blocking. t supplies the
// drop accounting. The queue is never closed (recording goroutines may
// race Close), only abandoned: post-Close sends land in the buffer and
// are garbage-collected with it.
func (e *SpanExporter) export(t *Tracer, rec SpanRecord) {
	select {
	case <-e.stop:
		return
	default:
	}
	select {
	case e.queue <- rec:
	default:
		t.dropped("export_queue")
	}
}

// run is the background writer: drain the queue, flush when it idles,
// exit once Close signals and the backlog is written.
func (e *SpanExporter) run() {
	defer close(e.done)
	for {
		select {
		case rec := <-e.queue:
			e.write(rec)
			if len(e.queue) == 0 {
				e.mu.Lock()
				if e.w != nil {
					e.w.Flush()
				}
				e.mu.Unlock()
			}
		case <-e.stop:
			for {
				select {
				case rec := <-e.queue:
					e.write(rec)
				default:
					return
				}
			}
		}
	}
}

// write appends one span, rotating (truncate-and-restart, the bounded
// alternative to unbounded telemetry growth) when the cap is hit.
func (e *SpanExporter) write(rec SpanRecord) {
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.w == nil {
		return
	}
	if e.size+int64(len(line))+1 > e.maxSize {
		e.w.Flush()
		if err := e.f.Truncate(0); err == nil {
			if _, err := e.f.Seek(0, 0); err == nil {
				e.size = 0
			}
		}
	}
	n, _ := e.w.Write(line)
	e.w.WriteByte('\n')
	e.size += int64(n) + 1
}

// Close flushes buffered spans and releases the file. Spans exported
// after Close are dropped silently.
func (e *SpanExporter) Close() error {
	var err error
	e.closeOnce.Do(func() {
		close(e.stop)
		<-e.done
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.w != nil {
			err = e.w.Flush()
			if cerr := e.f.Close(); err == nil {
				err = cerr
			}
			e.w, e.f = nil, nil
		}
	})
	return err
}
