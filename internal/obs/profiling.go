package obs

import "runtime"

// Contention profiling. The runtime's mutex and block profilers are off
// by default because sampling costs a little on every contended lock;
// the daemons expose them behind a flag so a claim like "the sharded
// collector removed the ingest lock convoy" is verifiable in production:
//
//	spectrumd -profile-contention &
//	go tool pprof http://host:port/debug/pprof/mutex
//	go tool pprof http://host:port/debug/pprof/block
//
// AdminMux already serves both profiles (net/http/pprof's Index handler
// routes any named profile); they are simply empty until enabled here.

// EnableContentionProfiling turns on mutex and block profiling.
// mutexFraction samples 1/n of contended mutex events
// (runtime.SetMutexProfileFraction); blockRateNs samples goroutine
// blocking events lasting at least that many nanoseconds
// (runtime.SetBlockProfileRate). Values ≤ 0 leave the respective
// profiler untouched.
func EnableContentionProfiling(mutexFraction, blockRateNs int) {
	if mutexFraction > 0 {
		runtime.SetMutexProfileFraction(mutexFraction)
	}
	if blockRateNs > 0 {
		runtime.SetBlockProfileRate(blockRateNs)
	}
}

// DisableContentionProfiling switches both profilers back off.
func DisableContentionProfiling() {
	runtime.SetMutexProfileFraction(0)
	runtime.SetBlockProfileRate(0)
}
