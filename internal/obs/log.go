package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Leveled structured logging for the daemons. One line per event:
//
//	2026-08-05T12:00:00.000Z INFO  spectrumd: epoch closed anomalies=2 nodes=9
//
// Free-text message first, then key=value attributes, so the lines stay
// grep-able and a human can read them without a query language.

// Level is a log severity.
type Level int32

// Severities, lowest first.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the fixed-width level tag.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	}
	return fmt.Sprintf("LEVEL(%d)", int32(l))
}

// ParseLevel reads a level name (case-insensitive).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// Logger writes leveled, component-prefixed lines. It is safe for
// concurrent use.
type Logger struct {
	component string
	level     atomic.Int32

	mu  sync.Mutex
	w   io.Writer
	now func() time.Time
	// exit is called by Fatalf; injectable so tests can intercept it.
	exit func(int)
}

// NewLogger returns a logger writing to stderr at LevelInfo.
func NewLogger(component string) *Logger {
	l := &Logger{
		component: component,
		w:         os.Stderr,
		now:       time.Now,
		exit:      os.Exit,
	}
	l.level.Store(int32(LevelInfo))
	return l
}

// SetLevel changes the minimum severity that gets written.
func (l *Logger) SetLevel(lv Level) { l.level.Store(int32(lv)) }

// SetOutput redirects the logger (tests, files).
func (l *Logger) SetOutput(w io.Writer) {
	l.mu.Lock()
	l.w = w
	l.mu.Unlock()
}

// SetTimeFunc injects a time source so tests produce stable output.
func (l *Logger) SetTimeFunc(now func() time.Time) {
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

// Enabled reports whether lv would be written.
func (l *Logger) Enabled(lv Level) bool { return int32(lv) >= l.level.Load() }

// Log writes one event: a message followed by key=value pairs from kv
// (alternating keys and values; a trailing odd value is rendered under
// the key "!MISSING").
func (l *Logger) Log(lv Level, msg string, kv ...interface{}) {
	if !l.Enabled(lv) {
		return
	}
	var sb strings.Builder
	sb.WriteString(msg)
	for i := 0; i < len(kv); i += 2 {
		sb.WriteByte(' ')
		if i+1 < len(kv) {
			fmt.Fprintf(&sb, "%v=%v", kv[i], kv[i+1])
		} else {
			fmt.Fprintf(&sb, "!MISSING=%v", kv[i])
		}
	}
	l.write(lv, sb.String())
}

func (l *Logger) write(lv Level, line string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "%s %-5s %s: %s\n",
		l.now().UTC().Format("2006-01-02T15:04:05.000Z"), lv, l.component, line)
}

// Debugf logs a formatted debug event.
func (l *Logger) Debugf(format string, args ...interface{}) {
	if l.Enabled(LevelDebug) {
		l.write(LevelDebug, fmt.Sprintf(format, args...))
	}
}

// Infof logs a formatted info event.
func (l *Logger) Infof(format string, args ...interface{}) {
	if l.Enabled(LevelInfo) {
		l.write(LevelInfo, fmt.Sprintf(format, args...))
	}
}

// Warnf logs a formatted warning.
func (l *Logger) Warnf(format string, args ...interface{}) {
	if l.Enabled(LevelWarn) {
		l.write(LevelWarn, fmt.Sprintf(format, args...))
	}
}

// Errorf logs a formatted error.
func (l *Logger) Errorf(format string, args ...interface{}) {
	if l.Enabled(LevelError) {
		l.write(LevelError, fmt.Sprintf(format, args...))
	}
}

// Fatalf logs a formatted error and exits the process with status 1.
func (l *Logger) Fatalf(format string, args ...interface{}) {
	l.write(LevelError, fmt.Sprintf(format, args...))
	l.mu.Lock()
	exit := l.exit
	l.mu.Unlock()
	exit(1)
}
