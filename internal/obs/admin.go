package obs

import (
	"net/http"
	"net/http/pprof"
)

// AdminMux assembles the standard daemon admin surface:
//
//	GET /healthz                  — liveness: 200 while the process answers
//	GET /readyz                   — readiness: 200 when every health probe passes
//	GET /metrics                  — reg in Prometheus text exposition format
//	GET /debug/traces[?trace_id=] — tr's span ring as JSON, filterable
//	GET /debug/slo                — per-route burn-rate report (samples on scrape)
//	GET /debug/pprof/*            — net/http/pprof profiles
//
// Nil reg or tr default to the process-wide instances, and a nil health
// is always ready, so a daemon that only uses default instrumentation
// and has no boot dependencies can call AdminMux(nil, nil, nil).
func AdminMux(reg *Registry, tr *Tracer, health *Health) *http.ServeMux {
	if reg == nil {
		reg = Default()
	}
	if tr == nil {
		tr = DefaultTracer()
	}
	mux := http.NewServeMux()
	mux.Handle("/healthz", health.LiveHandler())
	mux.Handle("/readyz", health.ReadyHandler())
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/traces", tr.Handler())
	mux.Handle("/debug/slo", NewSLO(SLOConfig{Registry: reg}).Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ConfigureDefaultTracer applies the standard daemon trace flags
// (-trace-capacity, -trace-sample, -trace-export) to the process-wide
// tracer: ring capacity, head-sampling ratio, metrics, and the optional
// durable JSONL span spool. The returned cleanup flushes and closes the
// exporter; call it on shutdown.
func ConfigureDefaultTracer(capacity int, sampleRatio float64, exportPath string) (cleanup func(), err error) {
	tr := DefaultTracer()
	tr.Resize(capacity)
	tr.SetSampleRatio(sampleRatio)
	tr.Instrument(nil)
	cleanup = func() {}
	if exportPath != "" {
		exp, err := NewSpanExporter(ExporterConfig{Path: exportPath})
		if err != nil {
			return cleanup, err
		}
		tr.SetExporter(exp)
		cleanup = func() { exp.Close() }
	}
	return cleanup, nil
}
