package obs

import (
	"net/http"
	"net/http/pprof"
)

// AdminMux assembles the standard daemon admin surface:
//
//	GET /metrics       — reg in Prometheus text exposition format
//	GET /debug/traces  — tr's span ring as JSON
//	GET /debug/pprof/* — net/http/pprof profiles
//
// Nil reg or tr default to the process-wide instances, so a daemon that
// only uses default instrumentation can call AdminMux(nil, nil).
func AdminMux(reg *Registry, tr *Tracer) *http.ServeMux {
	if reg == nil {
		reg = Default()
	}
	if tr == nil {
		tr = DefaultTracer()
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/traces", tr.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
