package obs

import (
	"net/http/httptest"
	"testing"
	"time"
)

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		// The bug this helper exists to kill: sub-second hints used to
		// truncate to "0", which retriers treat as "retry immediately".
		{0, "1"},
		{-time.Second, "1"},
		{time.Millisecond, "1"},
		{999 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1001 * time.Millisecond, "2"},
		{1500 * time.Millisecond, "2"},
		{5 * time.Second, "5"},
		{90 * time.Second, "90"},
	}
	for _, c := range cases {
		if got := RetryAfterSeconds(c.d); got != c.want {
			t.Errorf("RetryAfterSeconds(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestSetRetryAfter(t *testing.T) {
	w := httptest.NewRecorder()
	SetRetryAfter(w, 250*time.Millisecond)
	if got := w.Header().Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want %q", got, "1")
	}
}
