package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"sensorcal/internal/clock"
)

// Multi-window burn-rate SLO evaluation (the Google SRE workbook
// alerting scheme) over the RED middleware's server histogram. For an
// availability objective O, the error budget is 1−O; the burn rate is
//
//	burn = error_rate / (1 − O)
//
// — burn 1 spends the budget exactly over the SLO period, burn 14 spends
// a 30-day budget in ~2 days. Two windows separate "page now" from
// "watch it": a fast window (default 5 m) catches sharp regressions, a
// slow window (default 1 h) confirms sustained ones; alerting on the
// conjunction suppresses blips. The registry's counters are cumulative,
// so the evaluator keeps a ring of periodic snapshots and differences
// them — sample-on-scrape, no background goroutine unless Run is used.

// SLOConfig assembles an SLO evaluator.
type SLOConfig struct {
	// Registry holding the request histogram; nil means the process-wide
	// default.
	Registry *Registry
	// Metric is the histogram family to evaluate. It must be labelled
	// with at least a "code" label carrying the middleware's status
	// classes; remaining labels identify the route. Empty means
	// "http_server_request_seconds".
	Metric string
	// Objective is the availability target in (0,1), e.g. 0.999. Zero
	// means 0.999.
	Objective float64
	// FastWindow and SlowWindow are the two burn-rate horizons. Zero
	// means 5 m and 1 h.
	FastWindow, SlowWindow time.Duration
	// Clock stamps snapshots; nil means the wall clock. Tests drive a
	// simulated clock to pin window arithmetic.
	Clock clock.Clock
}

// RouteBurn is the report entry for one route.
type RouteBurn struct {
	// Route joins the identifying label values, e.g. "schedd /api/lease".
	Route string `json:"route"`
	// Requests and Errors are the cumulative totals at the latest sample.
	Requests float64 `json:"requests"`
	Errors   float64 `json:"errors"`
	// FastErrorRate/SlowErrorRate are windowed error fractions in [0,1].
	FastErrorRate float64 `json:"fast_error_rate"`
	SlowErrorRate float64 `json:"slow_error_rate"`
	// FastBurn/SlowBurn are the windowed error rates over the error
	// budget: >1 means the budget is being spent faster than it accrues.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
}

// SLOReport is the /debug/slo payload.
type SLOReport struct {
	At         time.Time   `json:"at"`
	Metric     string      `json:"metric"`
	Objective  float64     `json:"objective"`
	FastWindow string      `json:"fast_window"`
	SlowWindow string      `json:"slow_window"`
	Routes     []RouteBurn `json:"routes"`
}

// routeCount is one route's cumulative totals at a point in time.
type routeCount struct{ total, errors float64 }

// sloSnapshot is one Sample's view of every route.
type sloSnapshot struct {
	at     time.Time
	routes map[string]routeCount
}

// SLO evaluates burn rates from a registry's request histogram.
type SLO struct {
	reg        *Registry
	metric     string
	objective  float64
	fast, slow time.Duration
	clk        clock.Clock

	mu   sync.Mutex
	ring []sloSnapshot
}

// NewSLO returns an evaluator with config defaults applied.
func NewSLO(cfg SLOConfig) *SLO {
	if cfg.Registry == nil {
		cfg.Registry = Default()
	}
	if cfg.Metric == "" {
		cfg.Metric = "http_server_request_seconds"
	}
	if cfg.Objective <= 0 || cfg.Objective >= 1 {
		cfg.Objective = 0.999
	}
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = 5 * time.Minute
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = time.Hour
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System{}
	}
	return &SLO{
		reg: cfg.Registry, metric: cfg.Metric, objective: cfg.Objective,
		fast: cfg.FastWindow, slow: cfg.SlowWindow, clk: cfg.Clock,
	}
}

// errorCodes are the status classes that spend error budget. 4xx is the
// caller's fault and deliberately excluded — a flood of bad requests
// must not page the service owner.
func isErrorCode(code string) bool { return code == "5xx" || code == "error" }

// Sample snapshots the histogram's cumulative per-route totals. Call it
// periodically (Run) or on scrape (Handler); snapshots older than the
// slow window are discarded.
func (s *SLO) Sample() {
	labels, values := s.reg.Samples(s.metric)
	codeIdx := -1
	for i, l := range labels {
		if l == "code" {
			codeIdx = i
		}
	}
	snap := sloSnapshot{at: s.clk.Now(), routes: make(map[string]routeCount)}
	if codeIdx >= 0 {
		for _, v := range values {
			if len(v.Labels) != len(labels) {
				continue
			}
			parts := make([]string, 0, len(v.Labels)-1)
			for i, lv := range v.Labels {
				if i != codeIdx {
					parts = append(parts, lv)
				}
			}
			key := strings.Join(parts, " ")
			rc := snap.routes[key]
			rc.total += v.Value
			if isErrorCode(v.Labels[codeIdx]) {
				rc.errors += v.Value
			}
			snap.routes[key] = rc
		}
	}
	s.mu.Lock()
	s.ring = append(s.ring, snap)
	cutoff := snap.at.Add(-s.slow - time.Minute)
	i := 0
	for i < len(s.ring)-1 && s.ring[i].at.Before(cutoff) {
		i++
	}
	s.ring = s.ring[i:]
	s.mu.Unlock()
}

// windowRate differences the latest snapshot against the oldest one
// inside the window and returns the error fraction of the delta.
func windowRate(ring []sloSnapshot, route string, window time.Duration) float64 {
	latest := ring[len(ring)-1]
	base := sloSnapshot{} // zero: route unseen before the window
	cutoff := latest.at.Add(-window)
	for _, snap := range ring[:len(ring)-1] {
		if !snap.at.Before(cutoff) {
			base = snap
			break
		}
	}
	cur := latest.routes[route]
	prev := base.routes[route]
	dTotal := cur.total - prev.total
	if dTotal <= 0 {
		return 0
	}
	dErr := cur.errors - prev.errors
	if dErr < 0 {
		dErr = 0
	}
	return dErr / dTotal
}

// Report computes burn rates from the retained snapshots. Routes are
// sorted for stable output.
func (s *SLO) Report() SLOReport {
	s.mu.Lock()
	ring := append([]sloSnapshot(nil), s.ring...)
	s.mu.Unlock()
	rep := SLOReport{
		Metric: s.metric, Objective: s.objective,
		FastWindow: s.fast.String(), SlowWindow: s.slow.String(),
		Routes: []RouteBurn{},
	}
	if len(ring) == 0 {
		rep.At = s.clk.Now()
		return rep
	}
	latest := ring[len(ring)-1]
	rep.At = latest.at
	budget := 1 - s.objective
	names := make([]string, 0, len(latest.routes))
	for name := range latest.routes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rc := latest.routes[name]
		fastRate := windowRate(ring, name, s.fast)
		slowRate := windowRate(ring, name, s.slow)
		rep.Routes = append(rep.Routes, RouteBurn{
			Route:    name,
			Requests: rc.total, Errors: rc.errors,
			FastErrorRate: fastRate, SlowErrorRate: slowRate,
			FastBurn: fastRate / budget, SlowBurn: slowRate / budget,
		})
	}
	return rep
}

// Handler serves the report as JSON, taking a fresh sample per scrape so
// the endpoint is useful without a background sampler. Mounted as
// GET /debug/slo.
func (s *SLO) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.Sample()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Report())
	})
}

// Run samples every interval until ctx is done — for daemons that want
// window arithmetic to hold even when nobody scrapes.
func (s *SLO) Run(done <-chan struct{}, interval time.Duration) {
	if interval <= 0 {
		interval = 15 * time.Second
	}
	for {
		select {
		case <-done:
			return
		case <-s.clk.After(interval):
			s.Sample()
		}
	}
}
