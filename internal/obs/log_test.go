package obs

import (
	"strings"
	"testing"
	"time"
)

func fixedLogger(buf *strings.Builder) *Logger {
	l := NewLogger("testcomp")
	l.SetOutput(buf)
	l.SetTimeFunc(func() time.Time {
		return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	})
	return l
}

func TestLogFormat(t *testing.T) {
	var buf strings.Builder
	l := fixedLogger(&buf)
	l.Infof("epoch closed: %d anomalies", 2)
	want := "2026-08-05T12:00:00.000Z INFO  testcomp: epoch closed: 2 anomalies\n"
	if buf.String() != want {
		t.Fatalf("line = %q, want %q", buf.String(), want)
	}
}

func TestLogLevels(t *testing.T) {
	var buf strings.Builder
	l := fixedLogger(&buf)
	l.SetLevel(LevelWarn)
	l.Debugf("hidden")
	l.Infof("hidden")
	l.Warnf("shown-warn")
	l.Errorf("shown-error")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("suppressed levels leaked: %q", out)
	}
	if !strings.Contains(out, "WARN  testcomp: shown-warn") ||
		!strings.Contains(out, "ERROR testcomp: shown-error") {
		t.Fatalf("enabled levels missing: %q", out)
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Fatal("Enabled disagrees with SetLevel")
	}
}

func TestLogKeyValues(t *testing.T) {
	var buf strings.Builder
	l := fixedLogger(&buf)
	l.Log(LevelInfo, "readings", "node", "n1", "count", 3)
	if !strings.Contains(buf.String(), "readings node=n1 count=3") {
		t.Fatalf("kv rendering wrong: %q", buf.String())
	}
	buf.Reset()
	l.Log(LevelInfo, "odd", "dangling")
	if !strings.Contains(buf.String(), "odd !MISSING=dangling") {
		t.Fatalf("odd kv rendering wrong: %q", buf.String())
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "Warning": LevelWarn,
		"error": LevelError, "": LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted an unknown level")
	}
}

func TestFatalfUsesInjectedExit(t *testing.T) {
	var buf strings.Builder
	l := fixedLogger(&buf)
	code := -1
	l.mu.Lock()
	l.exit = func(c int) { code = c }
	l.mu.Unlock()
	l.Fatalf("boom: %v", "cause")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(buf.String(), "ERROR testcomp: boom: cause") {
		t.Fatalf("fatal line missing: %q", buf.String())
	}
}
