package obs

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// histCount reads one child's observation count from the RED histogram.
func histCount(t *testing.T, reg *Registry, metric string, want ...string) float64 {
	t.Helper()
	_, vals := reg.Samples(metric)
	for _, v := range vals {
		if len(v.Labels) != len(want) {
			continue
		}
		match := true
		for i := range want {
			if v.Labels[i] != want[i] {
				match = false
			}
		}
		if match {
			return v.Value
		}
	}
	return 0
}

func TestWrapHandlerStatusCapture(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(64)
	mw := NewMiddleware("svc", reg, tr)

	mux := http.NewServeMux()
	mux.Handle("/implicit", mw.WrapHandler("/implicit", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, "ok") // no WriteHeader: implicit 200
		})))
	mux.Handle("/empty", mw.WrapHandler("/empty", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {}))) // nothing at all: 200
	mux.Handle("/notfound", mw.WrapHandler("/notfound", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "nope", http.StatusNotFound)
		})))
	mux.Handle("/boom", mw.WrapHandler("/boom", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "broken", http.StatusInternalServerError)
		})))

	for _, path := range []string{"/implicit", "/empty", "/notfound", "/boom"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	}
	for _, tc := range []struct {
		route, code string
		want        float64
	}{
		{"/implicit", "2xx", 1},
		{"/empty", "2xx", 1},
		{"/notfound", "4xx", 1},
		{"/boom", "5xx", 1},
	} {
		if got := histCount(t, reg, "http_server_request_seconds", "svc", tc.route, tc.code); got != tc.want {
			t.Errorf("server{%s,%s} = %v, want %v", tc.route, tc.code, got, tc.want)
		}
	}

	// The 5xx span is marked failed.
	var errSpan bool
	for _, s := range tr.Snapshot() {
		if s.Name == "server /boom" && s.Error != "" {
			errSpan = true
		}
	}
	if !errSpan {
		t.Error("5xx response did not mark its span failed")
	}
}

func TestWrapHandlerPanic(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(16)
	mw := NewMiddleware("svc", reg, tr)
	h := mw.WrapHandler("/panic", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			panic("kaboom")
		}))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("middleware swallowed the panic")
			}
		}()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/panic", nil))
	}()
	if got := histCount(t, reg, "http_server_request_seconds", "svc", "/panic", "5xx"); got != 1 {
		t.Fatalf("panicking handler observed as %v 5xx requests, want 1", got)
	}
	var found bool
	for _, s := range tr.Snapshot() {
		if s.Name == "server /panic" && strings.Contains(s.Error, "kaboom") {
			found = true
		}
	}
	if !found {
		t.Fatal("panic not recorded on the server span")
	}
}

// flushRecorder counts Flush calls to prove the wrapped writer forwards
// them.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushes int
}

func (f *flushRecorder) Flush() { f.flushes++ }

// hijackRecorder pretends to support hijacking.
type hijackRecorder struct {
	*httptest.ResponseRecorder
	hijacked bool
}

func (h *hijackRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	h.hijacked = true
	return nil, nil, fmt.Errorf("test hijacker")
}

func TestWrapWriterPreservesOptionalInterfaces(t *testing.T) {
	mw := NewMiddleware("svc", NewRegistry(), NewTracer(16))

	// Flusher-only writer: the wrapped writer must still flush.
	fr := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	mw.WrapHandler("/stream", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			t.Error("wrapped writer lost http.Flusher")
			return
		}
		fmt.Fprint(w, "chunk")
		fl.Flush()
	})).ServeHTTP(fr, httptest.NewRequest("GET", "/stream", nil))
	if fr.flushes != 1 {
		t.Fatalf("Flush forwarded %d times, want 1", fr.flushes)
	}

	// Hijacker-only writer.
	hr := &hijackRecorder{ResponseRecorder: httptest.NewRecorder()}
	mw.WrapHandler("/upgrade", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("wrapped writer lost http.Hijacker")
			return
		}
		hj.Hijack()
	})).ServeHTTP(hr, httptest.NewRequest("GET", "/upgrade", nil))
	if !hr.hijacked {
		t.Fatal("Hijack not forwarded")
	}

	// A plain writer must NOT grow fake Flusher/Hijacker implementations.
	plain := struct{ http.ResponseWriter }{httptest.NewRecorder()}
	w, _ := wrapWriter(plain)
	if _, ok := w.(http.Flusher); ok {
		t.Fatal("plain writer gained a Flusher")
	}
	if _, ok := w.(http.Hijacker); ok {
		t.Fatal("plain writer gained a Hijacker")
	}

	// A writer with both keeps both.
	type both struct {
		*httptest.ResponseRecorder
		http.Hijacker
	}
	b := both{httptest.NewRecorder(), &hijackRecorder{}}
	w, _ = wrapWriter(b)
	if _, ok := w.(http.Flusher); !ok {
		t.Fatal("both-writer lost Flusher")
	}
	if _, ok := w.(http.Hijacker); !ok {
		t.Fatal("both-writer lost Hijacker")
	}
}

func TestWrapTransportPropagatesAndObserves(t *testing.T) {
	serverReg := NewRegistry()
	serverTr := NewTracer(64)
	serverMw := NewMiddleware("server", serverReg, serverTr)

	var gotTraceparent string
	srv := httptest.NewServer(serverMw.WrapHandler("/api/x", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			gotTraceparent = r.Header.Get(TraceParentHeader)
			// The server-side span continues the client's trace.
			_, inner := StartSpan(r.Context(), "inner-work")
			inner.End()
			fmt.Fprint(w, "ok")
		})))
	defer srv.Close()

	clientReg := NewRegistry()
	clientTr := NewTracer(64)
	clientMw := NewMiddleware("client", clientReg, clientTr)
	hc := clientMw.WrapClient(srv.Client(), func(r *http.Request) string { return "/api/x" })

	ctx, root := StartSpan(WithTracer(context.Background(), clientTr), "cycle")
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/api/x", nil)
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	root.End()

	traceID := root.Context().TraceID.String()
	if !strings.Contains(gotTraceparent, traceID) {
		t.Fatalf("server saw traceparent %q, want trace %s", gotTraceparent, traceID)
	}
	if got := histCount(t, clientReg, "http_client_request_seconds", "client", "/api/x", "2xx"); got != 1 {
		t.Fatalf("client histogram = %v, want 1", got)
	}
	if got := histCount(t, serverReg, "http_server_request_seconds", "server", "/api/x", "2xx"); got != 1 {
		t.Fatalf("server histogram = %v, want 1", got)
	}
	// All three spans — client root+call on one tracer, server span +
	// inner work on the other — share one trace ID.
	if got := len(clientTr.Trace(traceID)); got != 2 {
		t.Fatalf("client tracer holds %d spans of the trace, want 2", got)
	}
	if got := len(serverTr.Trace(traceID)); got != 2 {
		t.Fatalf("server tracer holds %d spans of the trace, want 2", got)
	}

	// Transport errors observe code="error".
	dead := clientMw.WrapClient(&http.Client{}, func(r *http.Request) string { return "/dead" })
	if _, err := dead.Get("http://127.0.0.1:1/dead"); err == nil {
		t.Fatal("expected connection error")
	}
	if got := histCount(t, clientReg, "http_client_request_seconds", "client", "/dead", "error"); got != 1 {
		t.Fatalf("error-class histogram = %v, want 1", got)
	}
}
