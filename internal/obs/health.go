package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// Health is the daemon liveness/readiness surface behind /healthz and
// /readyz. Liveness is trivial — the process answered, it is alive.
// Readiness aggregates named probes: boolean flags a daemon flips as it
// finishes booting ("ledger"), plus callback checks evaluated on every
// request ("wal" — is the store healthy right now?). A daemon is ready
// only when every probe passes; orchestration (and loadgen, and the CI
// smoke scripts) gate traffic on /readyz instead of sleeping and hoping.
//
// All methods are safe for concurrent use and tolerate a nil receiver
// (nil Health is always ready), so daemons without boot dependencies can
// pass nil to AdminMux.
type Health struct {
	mu     sync.RWMutex
	flags  map[string]bool
	checks map[string]func() bool
}

// NewHealth returns an empty Health: ready until probes are added.
func NewHealth() *Health {
	return &Health{flags: make(map[string]bool), checks: make(map[string]func() bool)}
}

// SetReady flips the named boolean probe. Setting a probe false takes
// the daemon out of rotation until it is set true again.
func (h *Health) SetReady(name string, ok bool) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.flags[name] = ok
	h.mu.Unlock()
}

// AddCheck registers a callback probe evaluated on every readiness
// request; fn must be safe for concurrent use.
func (h *Health) AddCheck(name string, fn func() bool) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.checks[name] = fn
	h.mu.Unlock()
}

// Ready reports whether every probe passes, and the sorted names of the
// failing ones.
func (h *Health) Ready() (bool, []string) {
	if h == nil {
		return true, nil
	}
	h.mu.RLock()
	var failing []string
	for name, ok := range h.flags {
		if !ok {
			failing = append(failing, name)
		}
	}
	checks := make(map[string]func() bool, len(h.checks))
	for name, fn := range h.checks {
		checks[name] = fn
	}
	h.mu.RUnlock()
	// Callbacks run outside the lock: a probe is allowed to take its own
	// locks (the collector's store health) without ordering against ours.
	for name, fn := range checks {
		if !fn() {
			failing = append(failing, name)
		}
	}
	sort.Strings(failing)
	return len(failing) == 0, failing
}

// LiveHandler serves /healthz: 200 while the process can answer at all.
func (h *Health) LiveHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
}

// ReadyHandler serves /readyz: 200 with {"ready":true} when every probe
// passes, 503 naming the failing probes otherwise.
func (h *Health) ReadyHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ready, failing := h.Ready()
		w.Header().Set("Content-Type", "application/json")
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(struct {
			Ready   bool     `json:"ready"`
			Failing []string `json:"failing,omitempty"`
		}{Ready: ready, Failing: failing})
	})
}
