package obs

import (
	"net/http"
	"strconv"
	"time"
)

// RetryAfterSeconds renders a backoff hint as the whole-second string the
// Retry-After header wants, rounding up and clamping to at least 1.
//
// The clamp is the point: Retry-After carries integer seconds, so any
// sub-second hint rounds to "0" — which retriers read as "retry
// immediately", turning a shed response into a tight retry loop against
// the very server that asked for air. Every shed surface (the trust
// collector's 503s, the hardening middleware's 429s, the stream
// service's backpressure) must emit the header through this helper
// rather than hand-rolling the division.
func RetryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// SetRetryAfter attaches the clamped Retry-After header to a response.
func SetRetryAfter(w http.ResponseWriter, d time.Duration) {
	w.Header().Set("Retry-After", RetryAfterSeconds(d))
}
