package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer(16)
	ctx := WithTracer(context.Background(), tr)

	ctx, parent := StartSpan(ctx, "campaign")
	cctx, child := StartSpan(ctx, "stage")
	child.End()
	// A sibling started from the parent context shares the same parent.
	_, sib := StartSpan(ctx, "stage2")
	sib.End()
	parent.End()
	_ = cctx

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("snapshot holds %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	root := byName["campaign"]
	if root.ParentID != 0 {
		t.Fatalf("root span has parent %d", root.ParentID)
	}
	for _, name := range []string{"stage", "stage2"} {
		if got := byName[name].ParentID; got != root.ID {
			t.Fatalf("%s parent = %d, want %d", name, got, root.ID)
		}
	}
	// Children end before the parent, so they land in the ring first.
	if spans[2].Name != "campaign" {
		t.Fatalf("last-ended span is %q, want campaign", spans[2].Name)
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	tr := NewTracer(8)
	_, s := StartSpan(WithTracer(context.Background(), tr), "once")
	s.End()
	s.End()
	if got := len(tr.Snapshot()); got != 1 {
		t.Fatalf("double End recorded %d spans, want 1", got)
	}
	var nilSpan *Span
	nilSpan.End() // must not panic
}

func TestNilContextRoot(t *testing.T) {
	ctx, s := StartSpan(nil, "root")
	if ctx == nil || s == nil {
		t.Fatal("StartSpan(nil) returned nils")
	}
	s.End() // lands on the default tracer; just must not panic
}

func TestRingWrap(t *testing.T) {
	tr := NewTracer(4)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 6; i++ {
		_, s := StartSpan(ctx, fmt.Sprintf("span-%d", i))
		s.End()
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("snapshot holds %d spans, want capacity 4", len(spans))
	}
	for i, s := range spans {
		if want := fmt.Sprintf("span-%d", i+2); s.Name != want {
			t.Fatalf("span[%d] = %q, want %q (oldest first)", i, s.Name, want)
		}
	}
}

func TestTraceHandler(t *testing.T) {
	tr := NewTracer(8)
	ctx := WithTracer(context.Background(), tr)
	_, s := StartSpan(ctx, "handler-span")
	s.End()

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var got []SpanRecord
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("response is not a JSON span array: %v\n%s", err, rec.Body.String())
	}
	if len(got) != 1 || got[0].Name != "handler-span" {
		t.Fatalf("decoded spans = %+v", got)
	}

	// An empty tracer serves [] rather than null.
	rec = httptest.NewRecorder()
	NewTracer(2).Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var empty []SpanRecord
	if err := json.Unmarshal(rec.Body.Bytes(), &empty); err != nil || empty == nil {
		t.Fatalf("empty tracer served %q, want []", rec.Body.String())
	}
}
