package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sensorcal/internal/clock"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer(16)
	ctx := WithTracer(context.Background(), tr)

	ctx, parent := StartSpan(ctx, "campaign")
	cctx, child := StartSpan(ctx, "stage")
	child.End()
	// A sibling started from the parent context shares the same parent.
	_, sib := StartSpan(ctx, "stage2")
	sib.End()
	parent.End()
	_ = cctx

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("snapshot holds %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	root := byName["campaign"]
	if root.ParentID != "" {
		t.Fatalf("root span has parent %q", root.ParentID)
	}
	if root.TraceID == "" || len(root.TraceID) != 32 {
		t.Fatalf("root trace ID %q is not 32 hex digits", root.TraceID)
	}
	for _, name := range []string{"stage", "stage2"} {
		if got := byName[name].ParentID; got != root.SpanID {
			t.Fatalf("%s parent = %q, want %q", name, got, root.SpanID)
		}
		if got := byName[name].TraceID; got != root.TraceID {
			t.Fatalf("%s trace = %q, want %q", name, got, root.TraceID)
		}
	}
	// Children end before the parent, so they land in the ring first.
	if spans[2].Name != "campaign" {
		t.Fatalf("last-ended span is %q, want campaign", spans[2].Name)
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	tr := NewTracer(8)
	_, s := StartSpan(WithTracer(context.Background(), tr), "once")
	s.End()
	s.End()
	if got := len(tr.Snapshot()); got != 1 {
		t.Fatalf("double End recorded %d spans, want 1", got)
	}
	var nilSpan *Span
	nilSpan.End() // must not panic
	nilSpan.SetAttr("k", "v")
	nilSpan.SetError(errors.New("x"))
	nilSpan.Event("e")
	if sc := nilSpan.Context(); sc.Valid() {
		t.Fatal("nil span has a valid context")
	}
}

func TestNilContextRoot(t *testing.T) {
	ctx, s := StartSpan(nil, "root")
	if ctx == nil || s == nil {
		t.Fatal("StartSpan(nil) returned nils")
	}
	s.End() // lands on the default tracer; just must not panic
}

func TestRingWrapCountsOverwrites(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(4).Instrument(reg)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 6; i++ {
		_, s := StartSpan(ctx, fmt.Sprintf("span-%d", i))
		s.End()
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("snapshot holds %d spans, want capacity 4", len(spans))
	}
	for i, s := range spans {
		if want := fmt.Sprintf("span-%d", i+2); s.Name != want {
			t.Fatalf("span[%d] = %q, want %q (oldest first)", i, s.Name, want)
		}
	}
	// 6 spans through a 4-slot ring: 2 evictions, counted both on the
	// tracer and in the dropped-total series.
	if got := tr.Overwrites(); got != 2 {
		t.Fatalf("Overwrites() = %d, want 2", got)
	}
	_, vals := reg.Samples("trace_spans_dropped_total")
	var dropped float64
	for _, v := range vals {
		if len(v.Labels) == 1 && v.Labels[0] == "ring_overwrite" {
			dropped = v.Value
		}
	}
	if dropped != 2 {
		t.Fatalf("trace_spans_dropped_total{ring_overwrite} = %v, want 2", dropped)
	}
}

func TestResize(t *testing.T) {
	tr := NewTracer(2)
	ctx := WithTracer(context.Background(), tr)
	_, s := StartSpan(ctx, "before")
	s.End()
	tr.Resize(8)
	if got := len(tr.Snapshot()); got != 0 {
		t.Fatalf("resize retained %d spans, want 0", got)
	}
	for i := 0; i < 8; i++ {
		_, s := StartSpan(ctx, "after")
		s.End()
	}
	if got := len(tr.Snapshot()); got != 8 {
		t.Fatalf("resized ring holds %d spans, want 8", got)
	}
	if got := tr.Overwrites(); got != 0 {
		t.Fatalf("filling the resized ring counted %d overwrites", got)
	}
}

func TestTraceHandler(t *testing.T) {
	tr := NewTracer(8)
	ctx := WithTracer(context.Background(), tr)
	sctx, s := StartSpan(ctx, "handler-span")
	s.End()
	_, other := StartSpan(ctx, "other-trace")
	other.End()
	traceID := SpanFromContext(sctx).Context().TraceID.String()

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var got []SpanRecord
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("response is not a JSON span array: %v\n%s", err, rec.Body.String())
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d spans, want 2", len(got))
	}

	// ?trace_id= filters to one trace.
	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace_id="+traceID, nil))
	got = nil
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("filtered response: %v", err)
	}
	if len(got) != 1 || got[0].Name != "handler-span" {
		t.Fatalf("filtered spans = %+v", got)
	}

	// An empty tracer serves [] rather than null.
	rec = httptest.NewRecorder()
	NewTracer(2).Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var empty []SpanRecord
	if err := json.Unmarshal(rec.Body.Bytes(), &empty); err != nil || empty == nil {
		t.Fatalf("empty tracer served %q, want []", rec.Body.String())
	}
}

func TestTraceParentRoundTrip(t *testing.T) {
	tr := NewTracer(8)
	ctx, s := StartSpan(WithTracer(context.Background(), tr), "origin")
	tp := TraceParent(ctx)
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent %q is not a sampled version-00 header", tp)
	}
	sc, ok := ParseTraceParent(tp)
	if !ok {
		t.Fatalf("own traceparent %q failed to parse", tp)
	}
	if sc.TraceID != s.Context().TraceID || sc.SpanID != s.Context().SpanID || !sc.Sampled {
		t.Fatalf("round-trip mismatch: %+v vs %+v", sc, s.Context())
	}

	// Inject → Extract → StartSpan continues the same trace remotely.
	h := http.Header{}
	Inject(ctx, h)
	rctx := Extract(WithTracer(context.Background(), tr), h)
	_, child := StartSpan(rctx, "remote-child")
	if child.Context().TraceID != s.Context().TraceID {
		t.Fatal("extracted child is on a different trace")
	}
	child.End()
	s.End()
	if got := len(tr.Trace(s.Context().TraceID.String())); got != 2 {
		t.Fatalf("trace lookup found %d spans, want 2", got)
	}
}

func TestParseTraceParentRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"00-short",
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("a", 16) + "-01", // zero trace ID
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("0", 16) + "-01", // zero span ID
		"00-" + strings.Repeat("g", 32) + "-" + strings.Repeat("a", 16) + "-01", // non-hex
		"ff-" + strings.Repeat("a", 32) + "-" + strings.Repeat("a", 16) + "-01", // forbidden version
		"00x" + strings.Repeat("a", 32) + "x" + strings.Repeat("a", 16) + "x01", // wrong separators
	} {
		if _, ok := ParseTraceParent(bad); ok {
			t.Fatalf("ParseTraceParent accepted %q", bad)
		}
	}
	sc, ok := ParseTraceParent("00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "-00")
	if !ok || sc.Sampled {
		t.Fatalf("unsampled traceparent parsed as %+v, %v", sc, ok)
	}
}

func TestSamplingDeterministicAndPropagated(t *testing.T) {
	tr := NewTracer(64)
	tr.SetSampleRatio(0)
	ctx := WithTracer(context.Background(), tr)
	rctx, root := StartSpan(ctx, "unsampled-root")
	_, child := StartSpan(rctx, "unsampled-child")
	child.End()
	root.End()
	if got := len(tr.Snapshot()); got != 0 {
		t.Fatalf("ratio-0 tracer recorded %d spans", got)
	}
	// The unsampled decision still propagates valid IDs with flag 00.
	tp := TraceParent(rctx)
	if !strings.HasSuffix(tp, "-00") {
		t.Fatalf("unsampled traceparent %q should carry flags 00", tp)
	}

	// A sampled remote decision overrides the local ratio: the head
	// decision governs the whole trace.
	sc, _ := ParseTraceParent("00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "-01")
	_, forced := StartSpan(ContextWithRemote(ctx, sc), "forced")
	forced.End()
	if got := len(tr.Snapshot()); got != 1 {
		t.Fatalf("sampled remote parent recorded %d spans, want 1", got)
	}

	// Ratio 0.5 keeps roughly half; the decision is a pure function of
	// the trace ID, so re-deciding the same IDs is stable.
	tr2 := NewTracer(4096)
	tr2.SetSampleRatio(0.5)
	kept := 0
	var ids []TraceID
	for i := 0; i < 1000; i++ {
		rctx, s := StartSpan(WithTracer(context.Background(), tr2), "p")
		ids = append(ids, SpanFromContext(rctx).Context().TraceID)
		s.End()
	}
	kept = len(tr2.Snapshot())
	if kept < 350 || kept > 650 {
		t.Fatalf("ratio 0.5 kept %d/1000 spans", kept)
	}
	want := 0
	for _, id := range ids {
		if tr2.sampled(id) {
			want++
		}
	}
	if want != kept {
		t.Fatalf("re-deciding the same IDs kept %d, recorded %d", want, kept)
	}
}

func TestSpanClockAndEvents(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(1700000000, 0))
	tr := NewTracer(8)
	tr.SetClock(clk)
	ctx, s := StartSpan(WithTracer(context.Background(), tr), "timed")
	clk.Advance(250 * time.Millisecond)
	s.Event("retry", "op", "drain", "attempt", 2)
	clk.Advance(250 * time.Millisecond)
	s.SetAttr("node", "node-1")
	s.SetError(errors.New("boom"))
	s.End()
	_ = ctx
	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans", len(spans))
	}
	rec := spans[0]
	if rec.Duration != 500*time.Millisecond {
		t.Fatalf("duration = %v, want 500ms from the simulated clock", rec.Duration)
	}
	if !rec.Start.Equal(time.Unix(1700000000, 0)) {
		t.Fatalf("start = %v", rec.Start)
	}
	if len(rec.Events) != 1 || rec.Events[0].Name != "retry" ||
		rec.Events[0].Attr != "op=drain attempt=2" {
		t.Fatalf("events = %+v", rec.Events)
	}
	if !rec.Events[0].At.Equal(time.Unix(1700000000, 0).Add(250 * time.Millisecond)) {
		t.Fatalf("event timestamp = %v", rec.Events[0].At)
	}
	if rec.Attrs["node"] != "node-1" || rec.Error != "boom" {
		t.Fatalf("attrs/error = %+v / %q", rec.Attrs, rec.Error)
	}
}

func TestStartRemote(t *testing.T) {
	tr := NewTracer(8)
	sc, _ := ParseTraceParent("00-" + strings.Repeat("c", 32) + "-" + strings.Repeat("d", 16) + "-01")
	s := tr.StartRemote(sc, "ingest")
	if s == nil {
		t.Fatal("sampled remote parent produced a nil span")
	}
	s.End()
	got := tr.Trace(strings.Repeat("c", 32))
	if len(got) != 1 || got[0].ParentID != strings.Repeat("d", 16) {
		t.Fatalf("remote span = %+v", got)
	}
	// Unsampled and invalid parents cost nothing.
	sc.Sampled = false
	if tr.StartRemote(sc, "x") != nil {
		t.Fatal("unsampled parent produced a span")
	}
	if tr.StartRemote(SpanContext{}, "x") != nil {
		t.Fatal("invalid parent produced a span")
	}
}

func TestSpanExporter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spans.jsonl")
	exp, err := NewSpanExporter(ExporterConfig{Path: path, QueueSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(8)
	tr.SetExporter(exp)
	ctx := WithTracer(context.Background(), tr)
	var traceID string
	for i := 0; i < 3; i++ {
		rctx, s := StartSpan(ctx, fmt.Sprintf("exported-%d", i))
		traceID = SpanFromContext(rctx).Context().TraceID.String()
		s.End()
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("spool holds %d lines, want 3:\n%s", len(lines), data)
	}
	var rec SpanRecord
	if err := json.Unmarshal([]byte(lines[2]), &rec); err != nil {
		t.Fatalf("line 3 is not a span: %v", err)
	}
	if rec.Name != "exported-2" || rec.TraceID != traceID {
		t.Fatalf("decoded span = %+v", rec)
	}
	// Exports after Close are dropped silently, not panics.
	_, s := StartSpan(ctx, "late")
	s.End()
}

func TestSpanExporterOverflowCounted(t *testing.T) {
	dir := t.TempDir()
	exp, err := NewSpanExporter(ExporterConfig{Path: filepath.Join(dir, "s.jsonl"), QueueSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	tr := NewTracer(8).Instrument(reg)
	// Stall the writer: it needs exp.mu to write, so holding the lock
	// pins it mid-drain and makes the 1-slot queue overflow deterministic.
	exp.mu.Lock()
	exp.export(tr, SpanRecord{Name: "being-written"})
	deadline := time.Now().Add(5 * time.Second)
	for len(exp.queue) != 0 { // writer has dequeued it and is blocked on mu
		if time.Now().After(deadline) {
			exp.mu.Unlock()
			t.Fatal("writer never picked up the first span")
		}
		time.Sleep(time.Millisecond)
	}
	exp.export(tr, SpanRecord{Name: "queued"})  // fills the 1-slot queue
	exp.export(tr, SpanRecord{Name: "dropped"}) // queue full: must drop, not block
	exp.mu.Unlock()
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	_, vals := reg.Samples("trace_spans_dropped_total")
	var dropped float64
	for _, v := range vals {
		if len(v.Labels) == 1 && v.Labels[0] == "export_queue" {
			dropped = v.Value
		}
	}
	if dropped != 1 {
		t.Fatalf("trace_spans_dropped_total{export_queue} = %v, want 1", dropped)
	}
}
