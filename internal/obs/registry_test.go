package obs

import (
	"io"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "Events.")
	c.Inc()
	c.Add(2.5)
	c.Add(-10) // counters only go up
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "Depth.")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "Hits.")
	b := r.Counter("hits_total", "Hits.")
	a.Inc()
	b.Inc()
	if a != b {
		t.Fatal("re-registering the same counter returned a different instance")
	}
	if got := a.Value(); got != 2 {
		t.Fatalf("shared counter = %v, want 2", got)
	}
}

func TestRegisterMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.")
	for name, f := range map[string]func(){
		"type change":  func() { r.Gauge("x_total", "X.") },
		"label change": func() { r.CounterVec("x_total", "X.", "kind") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: re-registration did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("bad-name", "Dashes are not in the grammar.")
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("frames_total", "Frames.", "kind")
	v.With("good").Add(3)
	v.With("bad").Inc()
	if got := v.With("good").Value(); got != 3 {
		t.Fatalf(`With("good") = %v, want 3`, got)
	}
	if got := v.With("bad").Value(); got != 1 {
		t.Fatalf(`With("bad") = %v, want 1`, got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.With("a", "b")
}

// TestHistogramBucketBoundaries pins down the le semantics: an
// observation exactly on an upper bound counts into that bucket
// (le is inclusive), and one beyond the last bound lands only in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 5, 6} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != 16 {
		t.Fatalf("sum = %v, want 16", got)
	}
	// Non-cumulative per-bucket counts: (..1]=2, (1..2]=2, (2..5]=1, rest +Inf.
	want := []uint64{2, 2, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d count = %d, want %d", i, got, w)
		}
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="2"} 4`,
		`latency_seconds_bucket{le="5"} 5`,
		`latency_seconds_bucket{le="+Inf"} 6`,
		`latency_seconds_count 6`,
	} {
		if !strings.Contains(sb.String(), line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, sb.String())
		}
	}
}

func TestNormalizeBuckets(t *testing.T) {
	got := normalizeBuckets([]float64{5, 1, 2, 2, math.Inf(1), 1})
	want := []float64{1, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("normalizeBuckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("normalizeBuckets = %v, want %v", got, want)
		}
	}
}

func TestExpAndLinearBuckets(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	for i, w := range []float64{1, 2, 4, 8} {
		if exp[i] != w {
			t.Fatalf("ExpBuckets = %v", exp)
		}
	}
	lin := LinearBuckets(10, 5, 3)
	for i, w := range []float64{10, 15, 20} {
		if lin[i] != w {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
}

// TestExpositionGolden locks the exposition byte-for-byte: families sort
// by name, children by label value, histograms render cumulative buckets.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "Sorts last.").Add(2)
	r.Gauge("queue_depth", "Items waiting.").Set(3)
	v := r.CounterVec("frames_total", "Frames by result.", "result")
	v.With("ok").Add(9)
	v.With("bad").Inc()
	h := r.Histogram("wait_seconds", "Wait time.", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(30)
	r.GaugeFunc("nodes", "Callback metric.", func() float64 { return 4 })

	const want = `# HELP frames_total Frames by result.
# TYPE frames_total counter
frames_total{result="bad"} 1
frames_total{result="ok"} 9
# HELP nodes Callback metric.
# TYPE nodes gauge
nodes 4
# HELP queue_depth Items waiting.
# TYPE queue_depth gauge
queue_depth 3
# HELP wait_seconds Wait time.
# TYPE wait_seconds histogram
wait_seconds_bucket{le="1"} 1
wait_seconds_bucket{le="10"} 1
wait_seconds_bucket{le="+Inf"} 2
wait_seconds_sum 30.5
wait_seconds_count 2
# HELP zz_total Sorts last.
# TYPE zz_total counter
zz_total 2
`
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("g", "G.", "path").With(`a"b\c` + "\n").Set(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `g{path="a\"b\\c\n"} 1`
	if !strings.Contains(sb.String(), want+"\n") {
		t.Fatalf("escaped sample %q missing from:\n%s", want, sb.String())
	}
}

// TestConcurrentAccess exercises every writer path alongside scrapes; it
// exists to run under -race, and checks the totals add up afterwards.
func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "C.")
	g := r.Gauge("g", "G.")
	v := r.CounterVec("v_total", "V.", "worker")
	h := r.Histogram("h", "H.", []float64{1, 10, 100})

	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(i))
				v.With(label).Inc()
				h.Observe(float64(i % 200))
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter = %v, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
	for w := 0; w < workers; w++ {
		if got := v.With(string(rune('a' + w))).Value(); got != iters {
			t.Fatalf("vec child %d = %v, want %d", w, got, iters)
		}
	}
}

// TestRegistryConcurrentRegisterAndScrape hammers one registry from
// registering, writing and scraping goroutines at once — the shape the
// parallel measurement pipeline produces, where worker goroutines
// lazily register families while the admin server scrapes. Run under
// -race this guards the registry's locking discipline.
func TestRegistryConcurrentRegisterAndScrape(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	names := []string{"con_a_total", "con_b_total", "con_c", "con_d"}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				// Check stop only after at least one registration, so the
				// final-scrape assertion holds even if the scraping loop
				// wins every timeslice on a single-CPU machine.
				if i > 0 {
					select {
					case <-stop:
						return
					default:
					}
				}
				switch g % 4 {
				case 0:
					r.Counter(names[0], "help").Inc()
				case 1:
					r.CounterVec(names[1], "help", "op").With("x").Add(2)
				case 2:
					r.Gauge(names[2], "help").Set(float64(i))
				default:
					r.Histogram(names[3], "help", DefBuckets).Observe(float64(i % 10))
				}
			}
		}(g)
	}
	for s := 0; s < 50; s++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if !strings.Contains(sb.String(), n) {
			t.Errorf("scrape missing %s", n)
		}
	}
}
