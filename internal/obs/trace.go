package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Lightweight in-process tracing: StartSpan records a named span whose
// duration and parent land in a fixed-size ring buffer when the span
// ends. The ring is dumpable as JSON from the admin mux — enough to see
// how a measurement day decomposes into campaign stages without dragging
// in a tracing stack.

// SpanRecord is one finished span.
type SpanRecord struct {
	ID       uint64        `json:"id"`
	ParentID uint64        `json:"parent_id,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
}

// Tracer collects finished spans into a ring buffer. The zero value is
// not usable; call NewTracer.
type Tracer struct {
	ids atomic.Uint64

	mu   sync.Mutex
	ring []SpanRecord
	next int
	full bool
}

// DefaultTraceCapacity is the default ring size.
const DefaultTraceCapacity = 4096

// NewTracer returns a tracer retaining the last capacity finished spans
// (DefaultTraceCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]SpanRecord, capacity)}
}

// defaultTracer is the process-wide tracer the daemons expose.
var defaultTracer = NewTracer(DefaultTraceCapacity)

// DefaultTracer returns the process-wide tracer.
func DefaultTracer() *Tracer { return defaultTracer }

// Span is an in-flight operation. End it exactly once.
type Span struct {
	tracer *Tracer
	rec    SpanRecord
	ended  atomic.Bool
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer returns a context routing StartSpan to t instead of the
// default tracer.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// StartSpan begins a span named name. The span's parent is the span
// already in ctx, if any; the returned context carries the new span so
// children nest. Pass a nil ctx for a root span on the default tracer.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	t := defaultTracer
	if v, ok := ctx.Value(tracerKey).(*Tracer); ok {
		t = v
	}
	s := &Span{tracer: t}
	s.rec.ID = t.ids.Add(1)
	s.rec.Name = name
	s.rec.Start = time.Now()
	if parent, ok := ctx.Value(spanKey).(*Span); ok {
		s.rec.ParentID = parent.rec.ID
	}
	return context.WithValue(ctx, spanKey, s), s
}

// End finishes the span, recording it into the tracer's ring. Duplicate
// Ends are ignored.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.rec.Duration = time.Since(s.rec.Start)
	t := s.tracer
	t.mu.Lock()
	t.ring[t.next] = s.rec
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first.
func (t *Tracer) Snapshot() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanRecord
	if t.full {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	return out
}

// Handler serves the retained spans as a JSON array (newest data is at
// the end). Useful as GET /debug/traces on the admin mux.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		spans := t.Snapshot()
		if spans == nil {
			spans = []SpanRecord{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(spans)
	})
}
