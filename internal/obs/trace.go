package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sensorcal/internal/clock"
)

// Distributed tracing for the agentd→schedd→spectrumd pipeline. A trace
// is identified by a 128-bit trace ID that crosses process boundaries in
// the W3C `traceparent` header; each process records its own spans (with
// 64-bit span IDs and parent links) into a fixed-size ring dumpable from
// the admin mux — GET /debug/traces?trace_id= reassembles one request's
// path through a daemon without dragging in a tracing stack. Sampling is
// head-based and deterministic: the root's trace-ID-ratio decision rides
// the traceparent sampled flag, so one decision governs the whole trace
// and an unsampled request costs ID generation, nothing more.

// TraceID is the 128-bit identifier shared by every span of one trace.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String returns the 32-digit lowercase hex form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is the 64-bit identifier of one span.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 16-digit lowercase hex form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated part of a span: what a child (local or
// remote) needs to link itself to its parent.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	// Sampled is the head decision: true means every span of this trace
	// is recorded, false means none are. Children inherit it verbatim.
	Sampled bool
}

// Valid reports whether the context can parent a span.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// SpanEvent is a timestamped annotation on a span: a retry attempt, a
// breaker transition — the "why was this slow" detail.
type SpanEvent struct {
	At   time.Time `json:"at"`
	Name string    `json:"name"`
	Attr string    `json:"attr,omitempty"`
}

// SpanRecord is one finished span.
type SpanRecord struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Error    string            `json:"error,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Events   []SpanEvent       `json:"events,omitempty"`
}

// tracerMetrics is the opt-in instrumentation (Instrument pattern shared
// with the resilience primitives).
type tracerMetrics struct {
	recorded *Counter
	dropped  *CounterVec // reason
}

// Tracer collects finished spans into a ring buffer. The zero value is
// not usable; call NewTracer.
type Tracer struct {
	clk       atomic.Pointer[clock.Clock]
	threshold atomic.Uint64 // sample when uint64(traceID tail) < threshold
	exporter  atomic.Pointer[SpanExporter]

	idMu  sync.Mutex
	idHi  uint64 // splitmix64 state for trace IDs
	idLo  uint64 // splitmix64 state for span IDs
	ruses atomic.Uint64 // ring overwrites since construction

	mu   sync.Mutex
	ring []SpanRecord
	next int
	full bool

	m atomic.Pointer[tracerMetrics]
}

// DefaultTraceCapacity is the default ring size.
const DefaultTraceCapacity = 4096

// NewTracer returns a tracer retaining the last capacity finished spans
// (DefaultTraceCapacity if capacity <= 0), sampling every trace, on the
// wall clock.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	t := &Tracer{ring: make([]SpanRecord, capacity)}
	t.threshold.Store(math.MaxUint64)
	var seed [16]byte
	if _, err := rand.Read(seed[:]); err != nil {
		binary.BigEndian.PutUint64(seed[:8], uint64(time.Now().UnixNano()))
	}
	t.idHi = binary.BigEndian.Uint64(seed[:8])
	t.idLo = binary.BigEndian.Uint64(seed[8:])
	var clk clock.Clock = clock.System{}
	t.clk.Store(&clk)
	return t
}

// defaultTracer is the process-wide tracer the daemons expose.
var defaultTracer = NewTracer(DefaultTraceCapacity)

// DefaultTracer returns the process-wide tracer.
func DefaultTracer() *Tracer { return defaultTracer }

// SetClock injects the time source spans sample Start and Duration from.
// Tests pass clock.Simulated so span durations are deterministic; the
// default is the wall clock.
func (t *Tracer) SetClock(c clock.Clock) {
	if c == nil {
		c = clock.System{}
	}
	t.clk.Store(&c)
}

func (t *Tracer) now() time.Time { return (*t.clk.Load()).Now() }

// SetSampleRatio sets the head-sampling probability in [0,1] for traces
// rooted at this tracer. The decision is a pure function of the trace ID
// (OTel's trace-ID-ratio scheme), so every tracer configured with the
// same ratio agrees about the same trace.
func (t *Tracer) SetSampleRatio(ratio float64) {
	switch {
	case ratio <= 0:
		t.threshold.Store(0)
	case ratio >= 1:
		t.threshold.Store(math.MaxUint64)
	default:
		t.threshold.Store(uint64(ratio * float64(math.MaxUint64)))
	}
}

// sampled applies the trace-ID-ratio decision to id.
func (t *Tracer) sampled(id TraceID) bool {
	th := t.threshold.Load()
	if th == math.MaxUint64 {
		return true
	}
	return binary.BigEndian.Uint64(id[8:]) < th
}

// SetExporter attaches a durable span sink: every recorded span is also
// offered to e (non-blocking; overflow is counted, never waited on).
// Pass nil to detach.
func (t *Tracer) SetExporter(e *SpanExporter) { t.exporter.Store(e) }

// Resize replaces the ring with one holding capacity spans, discarding
// retained history. Daemons call it at boot from -trace-capacity.
func (t *Tracer) Resize(capacity int) {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	t.mu.Lock()
	t.ring = make([]SpanRecord, capacity)
	t.next = 0
	t.full = false
	t.mu.Unlock()
}

// Overwrites returns how many retained spans the ring has evicted to make
// room for newer ones since construction.
func (t *Tracer) Overwrites() uint64 { return t.ruses.Load() }

// Instrument registers the tracer's metrics on reg (the process-wide
// default when nil) and returns t for chaining.
//
// Exposed series:
//
//	trace_spans_recorded_total         — sampled spans recorded into the ring
//	trace_spans_dropped_total{reason}  — spans lost: ring_overwrite (ring
//	                                     evicted a retained span), export_queue
//	                                     (exporter backlog full), export_write
//	                                     (exporter I/O failure)
func (t *Tracer) Instrument(reg *Registry) *Tracer {
	if reg == nil {
		reg = Default()
	}
	t.m.Store(&tracerMetrics{
		recorded: reg.Counter("trace_spans_recorded_total",
			"Sampled spans recorded into the trace ring."),
		dropped: reg.CounterVec("trace_spans_dropped_total",
			"Spans lost before they could be kept, by reason.", "reason"),
	})
	return t
}

func (t *Tracer) dropped(reason string) {
	if m := t.m.Load(); m != nil {
		m.dropped.With(reason).Inc()
	}
}

// splitmix64 advances the given state and returns the next value.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// newTraceID generates a random-looking, process-unique 128-bit ID.
func (t *Tracer) newTraceID() TraceID {
	t.idMu.Lock()
	hi := splitmix64(&t.idHi)
	lo := splitmix64(&t.idLo)
	t.idMu.Unlock()
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], hi)
	binary.BigEndian.PutUint64(id[8:], lo)
	if id.IsZero() { // astronomically unlikely; zero is "invalid"
		id[0] = 1
	}
	return id
}

// newSpanID generates a 64-bit span ID.
func (t *Tracer) newSpanID() SpanID {
	t.idMu.Lock()
	v := splitmix64(&t.idLo)
	t.idMu.Unlock()
	var id SpanID
	binary.BigEndian.PutUint64(id[:], v)
	if id.IsZero() {
		id[0] = 1
	}
	return id
}

// Span is an in-flight operation. End it exactly once. All methods are
// safe on a nil receiver and after End (late Events are dropped).
type Span struct {
	tracer  *Tracer
	sc      SpanContext
	sampled bool
	ended   atomic.Bool

	mu  sync.Mutex
	rec SpanRecord
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	remoteKey
	stateKey
)

// WithTracer returns a context routing StartSpan to t instead of the
// default tracer.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFromContext returns the tracer StartSpan would use for ctx.
func TracerFromContext(ctx context.Context) *Tracer {
	if ctx != nil {
		if v, ok := ctx.Value(tracerKey).(*Tracer); ok {
			return v
		}
	}
	return defaultTracer
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// ContextWithRemote marks sc as the parent for the next StartSpan — the
// receiving half of propagation (Extract feeds it).
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, remoteKey, sc)
}

// StartSpan begins a span named name. The span's parent is the span
// already in ctx, or a remote parent planted by ContextWithRemote; with
// neither the span roots a new trace and takes the tracer's sampling
// decision. The returned context carries the new span so children nest.
// Pass a nil ctx for a root span on the default tracer.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	t := TracerFromContext(ctx)
	s := &Span{tracer: t}
	switch {
	case ctx.Value(spanKey) != nil:
		parent := ctx.Value(spanKey).(*Span)
		s.sc.TraceID = parent.sc.TraceID
		s.sampled = parent.sampled
		s.rec.ParentID = parent.sc.SpanID.String()
	default:
		if rsc, ok := ctx.Value(remoteKey).(SpanContext); ok && rsc.Valid() {
			s.sc.TraceID = rsc.TraceID
			s.sampled = rsc.Sampled
			s.rec.ParentID = rsc.SpanID.String()
		} else {
			s.sc.TraceID = t.newTraceID()
			s.sampled = t.sampled(s.sc.TraceID)
		}
	}
	s.sc.SpanID = t.newSpanID()
	s.sc.Sampled = s.sampled
	s.rec.TraceID = s.sc.TraceID.String()
	s.rec.SpanID = s.sc.SpanID.String()
	s.rec.Name = name
	s.rec.Start = t.now()
	return context.WithValue(ctx, spanKey, s), s
}

// StartRootSpan begins a new trace regardless of any span or remote
// parent already in ctx — the per-lease entry point of a long-running
// loop, where chaining every cycle onto one ancestor would produce a
// single useless trace the size of the process lifetime.
func StartRootSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	t := TracerFromContext(ctx)
	s := &Span{tracer: t}
	s.sc.TraceID = t.newTraceID()
	s.sampled = t.sampled(s.sc.TraceID)
	s.sc.SpanID = t.newSpanID()
	s.sc.Sampled = s.sampled
	s.rec.TraceID = s.sc.TraceID.String()
	s.rec.SpanID = s.sc.SpanID.String()
	s.rec.Name = name
	s.rec.Start = t.now()
	return context.WithValue(ctx, spanKey, s), s
}

// StartRemote begins a span whose parent lives in another process — the
// collector linking an ingested reading back to the agent trace that
// produced it. Unsampled or invalid parents return nil (every Span
// method tolerates that), so the caller pays nothing for them.
func (t *Tracer) StartRemote(parent SpanContext, name string) *Span {
	if !parent.Valid() || !parent.Sampled {
		return nil
	}
	s := &Span{tracer: t, sampled: true}
	s.sc = SpanContext{TraceID: parent.TraceID, SpanID: t.newSpanID(), Sampled: true}
	s.rec.TraceID = s.sc.TraceID.String()
	s.rec.SpanID = s.sc.SpanID.String()
	s.rec.ParentID = parent.SpanID.String()
	s.rec.Name = name
	s.rec.Start = t.now()
	return s
}

// Context returns the span's propagation context (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetAttr attaches a key=value attribute. No-op on nil or unsampled
// spans.
func (s *Span) SetAttr(key, value string) {
	if s == nil || !s.sampled || s.ended.Load() {
		return
	}
	s.mu.Lock()
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]string, 4)
	}
	s.rec.Attrs[key] = value
	s.mu.Unlock()
}

// SetError marks the span failed. No-op on nil spans or nil errors.
func (s *Span) SetError(err error) {
	if s == nil || err == nil || !s.sampled || s.ended.Load() {
		return
	}
	s.mu.Lock()
	s.rec.Error = err.Error()
	s.mu.Unlock()
}

// Event appends a timestamped annotation, formatting kv as alternating
// key=value pairs. No-op on nil or unsampled spans.
func (s *Span) Event(name string, kv ...interface{}) {
	if s == nil || !s.sampled || s.ended.Load() {
		return
	}
	var attr string
	if len(kv) > 0 {
		var sb strings.Builder
		for i := 0; i < len(kv); i += 2 {
			if i > 0 {
				sb.WriteByte(' ')
			}
			if i+1 < len(kv) {
				fmt.Fprintf(&sb, "%v=%v", kv[i], kv[i+1])
			} else {
				fmt.Fprintf(&sb, "%v", kv[i])
			}
		}
		attr = sb.String()
	}
	at := s.tracer.now()
	s.mu.Lock()
	s.rec.Events = append(s.rec.Events, SpanEvent{At: at, Name: name, Attr: attr})
	s.mu.Unlock()
}

// End finishes the span, recording it into the tracer's ring (and the
// exporter, if attached) when sampled. Duplicate Ends are ignored.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	if !s.sampled {
		return
	}
	t := s.tracer
	s.mu.Lock()
	s.rec.Duration = t.now().Sub(s.rec.Start)
	rec := s.rec
	s.mu.Unlock()
	t.record(rec)
}

// record lands one finished span in the ring, counting evictions.
func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	evicted := t.full || t.next < len(t.ring) && t.ring[t.next].SpanID != ""
	t.ring[t.next] = rec
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
	if evicted {
		t.ruses.Add(1)
		t.dropped("ring_overwrite")
	}
	if m := t.m.Load(); m != nil {
		m.recorded.Inc()
	}
	if e := t.exporter.Load(); e != nil {
		e.export(t, rec)
	}
}

// Snapshot returns the retained spans, oldest first.
func (t *Tracer) Snapshot() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanRecord
	if t.full {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	return out
}

// Trace returns the retained spans of one trace (hex ID), oldest first.
func (t *Tracer) Trace(traceID string) []SpanRecord {
	var out []SpanRecord
	for _, rec := range t.Snapshot() {
		if rec.TraceID == traceID {
			out = append(out, rec)
		}
	}
	return out
}

// Handler serves the retained spans as a JSON array (newest data is at
// the end). `?trace_id=<32-hex>` filters to one trace — the lookup the
// cross-daemon e2e smoke drives. Mounted as GET /debug/traces.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var spans []SpanRecord
		if id := req.URL.Query().Get("trace_id"); id != "" {
			spans = t.Trace(strings.ToLower(id))
		} else {
			spans = t.Snapshot()
		}
		if spans == nil {
			spans = []SpanRecord{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(spans)
	})
}

// W3C Trace Context propagation (https://www.w3.org/TR/trace-context/):
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// tracestate is passed through opaquely so a mixed fleet does not strip
// other systems' state.

// TraceParentHeader and TraceStateHeader are the W3C header names.
const (
	TraceParentHeader = "traceparent"
	TraceStateHeader  = "tracestate"
)

// FormatTraceParent renders sc as a version-00 traceparent value.
func FormatTraceParent(sc SpanContext) string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}

// ParseTraceParent parses a traceparent value. Unknown versions are
// accepted if the 00 layout parses (per spec); invalid IDs are rejected.
func ParseTraceParent(s string) (SpanContext, bool) {
	var sc SpanContext
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, false
	}
	if s[0] == 'f' && s[1] == 'f' { // version 0xff is forbidden
		return sc, false
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return sc, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return sc, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return sc, false
	}
	sc.Sampled = flags[0]&0x01 != 0
	if !sc.Valid() {
		return sc, false
	}
	return sc, true
}

// TraceParent returns the current span's serialized context, or "" when
// ctx carries no span — the form a trust.Reading carries so a spooled
// replay still links back to the measurement trace.
func TraceParent(ctx context.Context) string {
	s := SpanFromContext(ctx)
	if s == nil {
		return ""
	}
	return FormatTraceParent(s.sc)
}

// Inject writes the current span's context into h (plus any tracestate
// extracted earlier on this request path). No-op when ctx has no span.
func Inject(ctx context.Context, h http.Header) {
	s := SpanFromContext(ctx)
	if s == nil {
		return
	}
	h.Set(TraceParentHeader, FormatTraceParent(s.sc))
	if ctx != nil {
		if state, ok := ctx.Value(stateKey).(string); ok && state != "" {
			h.Set(TraceStateHeader, state)
		}
	}
}

// Extract reads propagation headers from h into ctx: the remote parent
// (consumed by the next StartSpan) and the opaque tracestate (re-emitted
// by Inject). With no valid traceparent, ctx is returned unchanged.
func Extract(ctx context.Context, h http.Header) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	sc, ok := ParseTraceParent(h.Get(TraceParentHeader))
	if !ok {
		return ctx
	}
	ctx = ContextWithRemote(ctx, sc)
	if state := h.Get(TraceStateHeader); state != "" {
		ctx = context.WithValue(ctx, stateKey, state)
	}
	return ctx
}
