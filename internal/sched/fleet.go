package sched

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"sensorcal/internal/trust"
)

// FleetEntry mirrors the collector's GET /api/fleet wire format: the
// staleness signal spectrumd exposes for the planner. A zero
// LastReadingAt means the node has never delivered consensus evidence.
type FleetEntry struct {
	Node          string    `json:"node"`
	Score         float64   `json:"score"`
	Rating        string    `json:"rating"`
	RegisteredAt  time.Time `json:"registered_at"`
	LastReadingAt time.Time `json:"last_reading_at"`
}

// NodeState converts a fleet entry into planner input. The collector
// does not know report generation times, so LastReport stays zero
// (never) until a richer signal exists; for prioritization that errs
// toward scheduling, which is the safe direction.
func (e FleetEntry) NodeState(site string, duty time.Duration) NodeState {
	return NodeState{
		Node:        trust.NodeID(e.Node),
		Site:        site,
		Trust:       trust.Score(e.Score),
		LastReading: e.LastReadingAt,
		DutyBudget:  duty,
	}
}

// FetchFleet queries a spectrumd collector for the registered fleet and
// each node's staleness signal.
func FetchFleet(ctx context.Context, hc *http.Client, baseURL string) ([]FleetEntry, error) {
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/api/fleet", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("sched: fleet query: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("sched: fleet query: collector returned %s: %s", resp.Status, snippet)
	}
	var entries []FleetEntry
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&entries); err != nil {
		return nil, fmt.Errorf("sched: fleet query: decoding response: %w", err)
	}
	return entries, nil
}
