package sched

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"sensorcal/internal/obs"
	"sensorcal/internal/resilience"
	"sensorcal/internal/trust"
)

// The scheduler's wire API, served by cmd/schedd:
//
//	POST /api/lease    — {"node","max"} → {"leases":[{task,token,deadline}]}
//	POST /api/complete — {"task_id","token"} → {"status":"completed"|"duplicate"}
//	GET  /api/stats    — queue depth summary
//
// Completion maps the queue's exactly-once semantics onto HTTP statuses:
// duplicates are 200 (the worker's task is done either way), stale
// tokens are 409, unknown tasks are 404. 4xx responses are permanent to
// the client's retrier — retrying a lost lease cannot win it back.

type leaseRequest struct {
	Node string `json:"node"`
	Max  int    `json:"max"`
}

type leaseResponse struct {
	Leases []Lease `json:"leases"`
}

type completeRequest struct {
	TaskID string `json:"task_id"`
	Token  string `json:"token"`
}

type completeResponse struct {
	Status string `json:"status"`
}

// Server mounts a Queue on the wire API.
type Server struct {
	Q *Queue
	// Log receives request-level warnings; nil silences them.
	Log *obs.Logger
	// Tracer records the server spans; nil means the process-wide
	// default.
	Tracer *obs.Tracer
	// Obs receives the RED middleware's metrics; nil means the
	// process-wide default registry.
	Obs *obs.Registry
}

// Handler returns the /api/* mux. Every route runs under the RED
// middleware: an agent's traceparent is continued into a server span, so
// the lease that scheduled a measurement shows up in the same trace as
// the measurement itself.
func (s *Server) Handler() http.Handler {
	mw := obs.NewMiddleware("sched", s.Obs, s.Tracer)
	mux := http.NewServeMux()
	handle := func(route string, h http.HandlerFunc) {
		mux.Handle(route, mw.WrapHandler(route, h))
	}
	handle("/api/lease", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req leaseRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if req.Node == "" {
			http.Error(w, "node is required", http.StatusBadRequest)
			return
		}
		leases := s.Q.Lease(trust.NodeID(req.Node), req.Max)
		if span := obs.SpanFromContext(r.Context()); span != nil {
			span.SetAttr("node", req.Node)
			span.SetAttr("granted", fmt.Sprintf("%d", len(leases)))
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(leaseResponse{Leases: leases})
	})
	handle("/api/complete", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req completeRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		status, err := s.Q.Complete(req.TaskID, req.Token)
		var nf *NotFoundError
		var cf *ConflictError
		switch {
		case errors.As(err, &nf):
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		case errors.As(err, &cf):
			http.Error(w, err.Error(), http.StatusConflict)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := completeResponse{Status: "completed"}
		if status == Duplicate {
			resp.Status = "duplicate"
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
	handle("/api/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.Q.Stats())
	})
	return mux
}

// ClientConfig assembles a Client.
type ClientConfig struct {
	// BaseURL of the scheduler, e.g. "http://host:8027".
	BaseURL string
	// HTTP is the underlying client; nil means a 10 s-timeout default.
	// Tests inject a chaos transport here.
	HTTP *http.Client
	// Retrier wraps every call; nil means a conventional default
	// (5 attempts, 100 ms base, 5 s cap).
	Retrier *resilience.Retrier
	// Breaker guards the scheduler edge; nil means a conventional
	// default (5 consecutive failures open the circuit for 15 s).
	Breaker *resilience.Breaker
	// Logger for warning-level noise; nil silences it.
	Logger *obs.Logger
}

// Client is the agent-side path to a remote scheduler. Lease and
// Complete run through a retrier and a circuit breaker; the queue's
// idempotent completion makes retrying Complete safe — a retry that
// lands after a response was lost is acknowledged as a duplicate.
type Client struct {
	base    string
	hc      *http.Client
	retrier *resilience.Retrier
	breaker *resilience.Breaker
	log     *obs.Logger
}

// NewClient validates the config and returns a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("sched: client needs a scheduler base URL")
	}
	hc := cfg.HTTP
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	r := cfg.Retrier
	if r == nil {
		r = resilience.NewRetrier(resilience.Policy{
			MaxAttempts: 5,
			BaseDelay:   100 * time.Millisecond,
			MaxDelay:    5 * time.Second,
		})
	}
	b := cfg.Breaker
	if b == nil {
		b = resilience.NewBreaker(resilience.BreakerConfig{
			Name:             "scheduler",
			FailureThreshold: 5,
			OpenFor:          15 * time.Second,
		})
	}
	return &Client{base: cfg.BaseURL, hc: hc, retrier: r, breaker: b, log: cfg.Logger}, nil
}

// post sends one JSON POST, classifying 4xx (except 429) permanent.
func (c *Client) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, resilience.Permanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	obs.Inject(ctx, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("sched: POST %s: %w", path, err)
	}
	return resp, nil
}

// statusError summarizes a non-2xx response and marks unretryable
// statuses permanent.
func statusError(op string, resp *http.Response) error {
	snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	resp.Body.Close()
	err := fmt.Errorf("sched: %s: scheduler returned %s: %s", op, resp.Status, bytes.TrimSpace(snippet))
	if resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
		return resilience.Permanent(err)
	}
	return err
}

// Lease polls the scheduler for up to max tasks pinned to node.
func (c *Client) Lease(ctx context.Context, node trust.NodeID, max int) (leases []Lease, err error) {
	body, err := json.Marshal(leaseRequest{Node: string(node), Max: max})
	if err != nil {
		return nil, err
	}
	ctx, span := obs.StartSpan(ctx, "sched.lease")
	defer func() {
		span.SetError(err)
		span.End()
	}()
	span.SetAttr("node", string(node))
	if err := c.breaker.AllowCtx(ctx); err != nil {
		return nil, err
	}
	var out []Lease
	err = c.retrier.Do(ctx, "lease", func(ctx context.Context) error {
		resp, err := c.post(ctx, "/api/lease", body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return statusError("lease", resp)
		}
		var got leaseResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&got); err != nil {
			resp.Body.Close()
			return fmt.Errorf("sched: lease: decoding response: %w", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		out = got.Leases
		return nil
	})
	c.breaker.RecordCtx(ctx, err)
	return out, err
}

// Complete reports a finished task. Duplicate acknowledgements are
// success; a 409 (lease superseded) surfaces as an error so the agent
// can count the wasted window.
func (c *Client) Complete(ctx context.Context, taskID, token string) (err error) {
	body, err := json.Marshal(completeRequest{TaskID: taskID, Token: token})
	if err != nil {
		return err
	}
	ctx, span := obs.StartSpan(ctx, "sched.complete")
	defer func() {
		span.SetError(err)
		span.End()
	}()
	span.SetAttr("task", taskID)
	if err := c.breaker.AllowCtx(ctx); err != nil {
		return err
	}
	err = c.retrier.Do(ctx, "complete", func(ctx context.Context) error {
		resp, err := c.post(ctx, "/api/complete", body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return statusError("complete", resp)
		}
		var got completeResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&got); err != nil {
			resp.Body.Close()
			return fmt.Errorf("sched: complete: decoding response: %w", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got.Status == "duplicate" && c.log != nil {
			c.log.Debugf("task %s was already complete (retried completion deduplicated)", taskID)
		}
		return nil
	})
	c.breaker.RecordCtx(ctx, err)
	return err
}

// LocalSource adapts an in-process Queue to the agent's TaskSource
// contract, for single-binary deployments and tests.
type LocalSource struct{ Q *Queue }

// Lease implements the task source.
func (l LocalSource) Lease(_ context.Context, node trust.NodeID, max int) ([]Lease, error) {
	return l.Q.Lease(node, max), nil
}

// Complete implements the task source.
func (l LocalSource) Complete(_ context.Context, taskID, token string) error {
	_, err := l.Q.Complete(taskID, token)
	return err
}
