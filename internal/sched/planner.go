package sched

import (
	"fmt"
	"sort"
	"time"

	"sensorcal/internal/calib"
	"sensorcal/internal/world"
)

// Campaign materializes the repeated directional procedure for a leased
// task at a concrete site. The scheduler constructs campaign configs
// programmatically, so the parameters are validated here — a task that
// would produce a zero-run or zero-radius campaign fails fast instead of
// burning the node's duty budget on a no-op.
func (t Task) Campaign(site *world.Site, aircraft int, radiusM float64, seed int64) (calib.CampaignConfig, error) {
	runs := t.Runs
	if runs == 0 {
		runs = 1
	}
	cfg := calib.CampaignConfig{
		Site:     site,
		Aircraft: aircraft,
		RadiusM:  radiusM,
		Runs:     runs,
		Start:    t.Start,
		Spacing:  t.Duration,
		Seed:     seed,
	}
	if err := cfg.Validate(); err != nil {
		return calib.CampaignConfig{}, fmt.Errorf("sched: task %s: %w", t.ID, err)
	}
	return cfg, nil
}

// PlanConfig controls one planning pass.
type PlanConfig struct {
	// Now anchors staleness computations and the start of the horizon.
	Now time.Time
	// Horizon is how far ahead to plan; candidate windows are the full
	// hours in [Now, Now+Horizon). Zero means 24 h.
	Horizon time.Duration
	// WindowLength is each measurement window's duration (paper: 30 s).
	WindowLength time.Duration
	// MaxTasksPerNode caps windows assigned to one node per pass. Zero
	// means 4.
	MaxTasksPerNode int
	// StaleAfter is the age at which a node's calibration counts as fully
	// stale; staleness saturates there. Zero means
	// calib.DefaultMaxReportAge — the same bound the marketplace uses to
	// stop trusting a report.
	StaleAfter time.Duration
	// MinYield drops candidate windows whose discounted yield falls
	// below it: measuring an empty sky wastes the duty budget.
	MinYield float64
	// TaskGrace is how long past its window start a task stays
	// executable before the queue expires it. Zero means one hour.
	TaskGrace time.Duration
	// Campaign is the per-task measurement template. The planner
	// constructs campaign configs programmatically, so it fails fast on
	// nonsense parameters via CampaignConfig.Validate instead of letting
	// a misconfigured fleet burn measurement windows. Zero fields get
	// conventional defaults (1 run, WindowLength spacing, 60 aircraft,
	// 100 km radius).
	Campaign calib.CampaignConfig
}

// Plan turns fleet state plus the forecast into prioritized measurement
// tasks: every node gets its highest-yield windows (discounted for
// sectors it already covered), bounded by its duty budget, and the
// result is ordered by priority — staleness × yield — so the stalest
// node's best windows dispatch first. The output is deterministic for a
// fixed forecaster state and fleet.
func Plan(f *Forecaster, nodes []NodeState, cfg PlanConfig) ([]Task, error) {
	if cfg.Now.IsZero() {
		return nil, fmt.Errorf("sched: plan needs an anchor time")
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 24 * time.Hour
	}
	if cfg.WindowLength <= 0 {
		cfg.WindowLength = 30 * time.Second
	}
	if cfg.MaxTasksPerNode <= 0 {
		cfg.MaxTasksPerNode = 4
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = calib.DefaultMaxReportAge
	}
	if cfg.TaskGrace <= 0 {
		cfg.TaskGrace = time.Hour
	}
	campaign := cfg.Campaign
	if campaign.Runs == 0 {
		campaign.Runs = 1
	}
	if campaign.Spacing == 0 {
		campaign.Spacing = cfg.WindowLength
	}
	if campaign.Aircraft == 0 {
		campaign.Aircraft = 60
	}
	if campaign.RadiusM == 0 {
		campaign.RadiusM = 100_000
	}
	if err := campaign.Validate(); err != nil {
		return nil, fmt.Errorf("sched: campaign template: %w", err)
	}

	// Candidate slots: the full hours inside the horizon.
	var slots []time.Time
	for t := cfg.Now.Truncate(time.Hour); t.Before(cfg.Now.Add(cfg.Horizon)); t = t.Add(time.Hour) {
		if t.Before(cfg.Now) {
			continue
		}
		slots = append(slots, t)
	}
	if len(slots) == 0 {
		return nil, fmt.Errorf("sched: horizon %s from %s contains no full hours", cfg.Horizon, cfg.Now)
	}

	// Sort the fleet by node ID so ties resolve identically across runs.
	ordered := append([]NodeState(nil), nodes...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Node < ordered[j].Node })

	var tasks []Task
	for _, n := range ordered {
		stale := stalenessFactor(n, cfg.Now, cfg.StaleAfter)
		type cand struct {
			start time.Time
			yield Yield
			eff   float64
		}
		var cands []cand
		for _, s := range slots {
			y := f.Predict(n.Site, s)
			eff := discountCovered(y, n.Covered)
			if eff < cfg.MinYield {
				continue
			}
			cands = append(cands, cand{start: s, yield: y, eff: eff})
		}
		// Best yield first; earlier start breaks ties so a flat forecast
		// still schedules promptly.
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].eff != cands[j].eff {
				return cands[i].eff > cands[j].eff
			}
			return cands[i].start.Before(cands[j].start)
		})
		budget := n.DutyBudget
		limited := n.DutyBudget > 0
		taken := 0
		for _, c := range cands {
			if taken >= cfg.MaxTasksPerNode {
				break
			}
			cost := time.Duration(campaign.Runs) * cfg.WindowLength
			if limited && cost > budget {
				break
			}
			tasks = append(tasks, Task{
				ID:               TaskID(n.Node, c.start),
				Node:             n.Node,
				Site:             n.Site,
				Start:            c.start,
				Duration:         cfg.WindowLength,
				Runs:             campaign.Runs,
				ExpectedAircraft: c.yield.ExpectedAircraft,
				Priority:         stale * c.eff,
				NotAfter:         c.start.Add(cfg.WindowLength + cfg.TaskGrace),
			})
			taken++
			if limited {
				budget -= cost
			}
		}
	}
	// Global dispatch order: stalest-node × highest-yield first, with
	// deterministic tie-breaks.
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].Priority != tasks[j].Priority {
			return tasks[i].Priority > tasks[j].Priority
		}
		if tasks[i].Node != tasks[j].Node {
			return tasks[i].Node < tasks[j].Node
		}
		return tasks[i].Start.Before(tasks[j].Start)
	})
	return tasks, nil
}

// stalenessFactor maps a node's calibration age onto [0.1, 1]: fresh
// nodes keep a floor (coverage still decays) while nodes at or past
// StaleAfter — or that never reported at all — saturate at 1 and
// dominate the dispatch order.
func stalenessFactor(n NodeState, now time.Time, staleAfter time.Duration) float64 {
	age := staleAfter // "never" is fully stale
	if !n.LastReport.IsZero() {
		age = now.Sub(n.LastReport)
	}
	if !n.LastReading.IsZero() {
		if ra := now.Sub(n.LastReading); n.LastReport.IsZero() || ra > age {
			age = ra
		}
	}
	frac := float64(age) / float64(staleAfter)
	if frac > 1 {
		frac = 1
	}
	if frac < 0 {
		frac = 0
	}
	return 0.1 + 0.9*frac
}

// discountCovered reduces a window's yield by the share of its traffic
// flying through sectors the node already measured confidently (the same
// 0.8 discount calib.PlanMeasurements applies).
func discountCovered(y Yield, covered [12]bool) float64 {
	var total, coveredShare float64
	for b, c := range y.PerSector {
		total += c
		if covered[b] {
			coveredShare += c
		}
	}
	if total <= 0 {
		// No sector detail: fall back to the covered-count fraction.
		n := 0
		for _, c := range covered {
			if c {
				n++
			}
		}
		return y.ExpectedAircraft * (1 - 0.8*float64(n)/12)
	}
	return y.ExpectedAircraft * (1 - 0.8*coveredShare/total)
}
