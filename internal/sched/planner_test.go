package sched

import (
	"reflect"
	"testing"
	"time"

	"sensorcal/internal/calib"
)

// fixtureForecaster trains a forecaster on a fixed density profile
// covering every hour (no fallback ambiguity): hour 8 is the morning
// bank (40 aircraft), hour 16 a smaller evening one (20), every other
// hour nearly empty (1).
func fixtureForecaster() *Forecaster {
	f := NewForecaster(ForecastConfig{})
	day := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	for d := 0; d < 2; d++ {
		for hour := 0; hour < 24; hour++ {
			count := 1
			switch hour {
			case 8:
				count = 40
			case 16:
				count = 20
			}
			at := day.Add(time.Duration(d)*24*time.Hour + time.Duration(hour)*time.Hour)
			bearings := make([]float64, count)
			for i := range bearings {
				bearings[i] = float64((i * 37) % 360)
			}
			f.Observe("rooftop", at, testCenter, flightsAt(testCenter, bearings...))
		}
	}
	return f
}

func TestPlanPrioritizesStalestNodesIntoHighestYieldWindows(t *testing.T) {
	f := fixtureForecaster()
	now := time.Date(2026, 7, 8, 0, 0, 0, 0, time.UTC)
	nodes := []NodeState{
		{Node: "fresh", Site: "rooftop", LastReport: now.Add(-1 * time.Hour)},
		{Node: "aging", Site: "rooftop", LastReport: now.Add(-6 * time.Hour)},
		{Node: "stale", Site: "rooftop", LastReport: now.Add(-24 * time.Hour)},
	}
	cfg := PlanConfig{
		Now:             now,
		MaxTasksPerNode: 2,
		MinYield:        2, // drop the hour-3 and fallback windows
	}
	tasks, err := Plan(f, nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each node gets its 2 best windows (hours 8 and 16); dispatch order
	// is staleness-major, yield-minor.
	if len(tasks) != 6 {
		t.Fatalf("got %d tasks, want 6: %+v", len(tasks), tasks)
	}
	type pick struct {
		node string
		hour int
	}
	var got []pick
	for _, task := range tasks {
		got = append(got, pick{node: string(task.Node), hour: task.Start.Hour()})
	}
	want := []pick{
		{"stale", 8}, {"stale", 16},
		{"aging", 8}, {"aging", 16},
		{"fresh", 8}, {"fresh", 16},
	}
	// The cross-node interleaving depends on the exact staleness-vs-yield
	// products; with these fixtures staleness dominates (1.0, 0.325,
	// 0.1375 multiply yields 40/20 whose ratio is only 2).
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dispatch order = %v, want %v", got, want)
	}
	for _, task := range tasks {
		if task.Duration != 30*time.Second {
			t.Fatalf("task %s duration %s, want default 30s", task.ID, task.Duration)
		}
		if task.NotAfter.IsZero() || !task.NotAfter.After(task.Start) {
			t.Fatalf("task %s needs a NotAfter past its start", task.ID)
		}
		if task.Priority <= 0 {
			t.Fatalf("task %s priority %v, want positive", task.ID, task.Priority)
		}
	}

	// Determinism: an identical second pass plans the identical slate.
	again, err := Plan(f, nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tasks, again) {
		t.Fatalf("plan is not deterministic:\n%+v\nvs\n%+v", tasks, again)
	}
}

func TestPlanRespectsDutyBudgetAndCoverageDiscount(t *testing.T) {
	f := fixtureForecaster()
	now := time.Date(2026, 7, 8, 0, 0, 0, 0, time.UTC)

	// A 30 s duty budget affords exactly one 30 s window.
	tasks, err := Plan(f, []NodeState{
		{Node: "n1", Site: "rooftop", DutyBudget: 30 * time.Second},
	}, PlanConfig{Now: now, MaxTasksPerNode: 4, MinYield: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 || tasks[0].Start.Hour() != 8 {
		t.Fatalf("duty-bounded plan = %+v, want the single hour-8 window", tasks)
	}

	// A node that already covered every sector sees its yields discounted
	// 80%, pushing both banks under the MinYield bar.
	var all [12]bool
	for i := range all {
		all[i] = true
	}
	tasks, err = Plan(f, []NodeState{
		{Node: "n1", Site: "rooftop", Covered: all},
	}, PlanConfig{Now: now, MaxTasksPerNode: 4, MinYield: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 0 {
		t.Fatalf("fully covered node still got %d tasks: %+v", len(tasks), tasks)
	}
}

func TestPlanRejectsBadCampaignTemplate(t *testing.T) {
	f := fixtureForecaster()
	now := time.Date(2026, 7, 8, 0, 0, 0, 0, time.UTC)
	_, err := Plan(f, []NodeState{{Node: "n1", Site: "rooftop"}}, PlanConfig{
		Now:      now,
		Campaign: calib.CampaignConfig{Runs: -3},
	})
	if err == nil {
		t.Fatalf("negative campaign runs must fail the plan")
	}
}

func TestTaskCampaignValidates(t *testing.T) {
	task := Task{ID: "n@x", Node: "n", Start: time.Date(2026, 7, 8, 8, 0, 0, 0, time.UTC), Duration: 30 * time.Second}
	if _, err := task.Campaign(nil, 60, -5, 1); err == nil {
		t.Fatalf("negative radius must fail campaign construction")
	}
}

func TestStalenessFactorBounds(t *testing.T) {
	now := time.Date(2026, 7, 8, 0, 0, 0, 0, time.UTC)
	stale := 24 * time.Hour
	if got := stalenessFactor(NodeState{}, now, stale); got != 1 {
		t.Fatalf("never-seen node factor = %v, want 1", got)
	}
	if got := stalenessFactor(NodeState{LastReport: now}, now, stale); got != 0.1 {
		t.Fatalf("just-reported node factor = %v, want floor 0.1", got)
	}
	// The staler of report and reading drives the factor.
	got := stalenessFactor(NodeState{
		LastReport:  now.Add(-1 * time.Hour),
		LastReading: now.Add(-24 * time.Hour),
	}, now, stale)
	if got != 1 {
		t.Fatalf("stalest signal must dominate: %v, want 1", got)
	}
}
