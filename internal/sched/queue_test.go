package sched

import (
	"errors"
	"testing"
	"time"

	"sensorcal/internal/clock"
	"sensorcal/internal/obs"
	"sensorcal/internal/trust"
)

func testTask(node trust.NodeID, start time.Time) Task {
	return Task{
		ID:       TaskID(node, start),
		Node:     node,
		Site:     "rooftop",
		Start:    start,
		Duration: 30 * time.Second,
		Runs:     1,
	}
}

func newTestQueue(sim *clock.Simulated) *Queue {
	return NewQueue(QueueConfig{
		LeaseTTL: 2 * time.Minute,
		Clock:    sim,
		Metrics:  obs.NewRegistry(),
	})
}

func TestQueueAddIsIdempotent(t *testing.T) {
	start := time.Date(2026, 7, 8, 8, 0, 0, 0, time.UTC)
	sim := clock.NewSimulated(start)
	q := newTestQueue(sim)

	task := testTask("n1", start)
	added, err := q.Add(task)
	if err != nil || added != 1 {
		t.Fatalf("first add = (%d, %v), want (1, nil)", added, err)
	}
	// Re-planning the same horizon re-offers the same ID: no duplicate.
	added, err = q.Add(task)
	if err != nil || added != 0 {
		t.Fatalf("second add = (%d, %v), want (0, nil)", added, err)
	}
	if st := q.Stats(); st.Pending != 1 {
		t.Fatalf("pending = %d, want 1", st.Pending)
	}

	// Invalid tasks are rejected before anything lands.
	if _, err := q.Add(Task{ID: "bad"}); err == nil {
		t.Fatalf("invalid task must be rejected")
	}
}

func TestQueueLeaseCompleteLifecycle(t *testing.T) {
	start := time.Date(2026, 7, 8, 8, 0, 0, 0, time.UTC)
	sim := clock.NewSimulated(start)
	q := newTestQueue(sim)

	early := testTask("n1", start)
	late := testTask("n1", start.Add(time.Hour))
	other := testTask("n2", start)
	if _, err := q.Add(late, other, early); err != nil {
		t.Fatal(err)
	}

	// Leases are pinned to the node and granted in execution order.
	leases := q.Lease("n1", 10)
	if len(leases) != 2 {
		t.Fatalf("got %d leases, want 2", len(leases))
	}
	if leases[0].Task.ID != early.ID || leases[1].Task.ID != late.ID {
		t.Fatalf("lease order %s, %s; want earliest window first", leases[0].Task.ID, leases[1].Task.ID)
	}
	if !leases[0].Deadline.After(start) {
		t.Fatalf("deadline %s must be in the future", leases[0].Deadline)
	}

	// A leased task is not re-offered.
	if again := q.Lease("n1", 10); len(again) != 0 {
		t.Fatalf("re-lease while held granted %d tasks", len(again))
	}

	status, err := q.Complete(early.ID, leases[0].Token)
	if err != nil || status != Completed {
		t.Fatalf("complete = (%v, %v), want (Completed, nil)", status, err)
	}
	// Completion is idempotent: the retried ack is a duplicate, no error.
	status, err = q.Complete(early.ID, leases[0].Token)
	if err != nil || status != Duplicate {
		t.Fatalf("re-complete = (%v, %v), want (Duplicate, nil)", status, err)
	}

	// Unknown tasks and wrong tokens are typed errors.
	var nf *NotFoundError
	if _, err := q.Complete("ghost", "tok"); !errors.As(err, &nf) {
		t.Fatalf("unknown task: %v, want NotFoundError", err)
	}
	var cf *ConflictError
	if _, err := q.Complete(late.ID, "forged-token"); !errors.As(err, &cf) {
		t.Fatalf("wrong token: %v, want ConflictError", err)
	}

	if st := q.Stats(); st.Done != 1 || st.Leased != 1 || st.Pending != 1 {
		t.Fatalf("stats = %+v, want done=1 leased=1 pending=1", st)
	}
}

func TestQueueLeaseExpiryRequeuesExactlyOnce(t *testing.T) {
	start := time.Date(2026, 7, 8, 8, 0, 0, 0, time.UTC)
	sim := clock.NewSimulated(start)
	q := newTestQueue(sim)

	task := testTask("n1", start)
	task.NotAfter = start.Add(time.Hour)
	if _, err := q.Add(task); err != nil {
		t.Fatal(err)
	}

	first := q.Lease("n1", 1)
	if len(first) != 1 {
		t.Fatalf("got %d leases, want 1", len(first))
	}

	// The worker dies. Past the deadline the task requeues...
	sim.Advance(10 * time.Minute)
	requeued, dropped := q.ExpireLeases(sim.Now())
	if requeued != 1 || dropped != 0 {
		t.Fatalf("expire = (%d, %d), want (1, 0)", requeued, dropped)
	}

	// ...and a second worker wins it with a fresh token.
	second := q.Lease("n1", 1)
	if len(second) != 1 {
		t.Fatalf("re-lease after expiry granted %d", len(second))
	}
	if second[0].Token == first[0].Token {
		t.Fatalf("re-lease must mint a new token")
	}

	// The dead worker's completion now loses: its token was superseded.
	var cf *ConflictError
	if _, err := q.Complete(task.ID, first[0].Token); !errors.As(err, &cf) {
		t.Fatalf("stale token: %v, want ConflictError", err)
	}
	// The live holder's completion counts — exactly once.
	if status, err := q.Complete(task.ID, second[0].Token); err != nil || status != Completed {
		t.Fatalf("live complete = (%v, %v)", status, err)
	}
	if st := q.Stats(); st.Done != 1 || st.Pending != 0 || st.Leased != 0 {
		t.Fatalf("stats = %+v, want exactly one completion", st)
	}
}

func TestQueueLateCompletionHonoredUntilReLease(t *testing.T) {
	start := time.Date(2026, 7, 8, 8, 0, 0, 0, time.UTC)
	sim := clock.NewSimulated(start)
	q := newTestQueue(sim)

	task := testTask("n1", start)
	if _, err := q.Add(task); err != nil {
		t.Fatal(err)
	}
	lease := q.Lease("n1", 1)[0]

	// The deadline passes and the sweep requeues the task, but nobody
	// re-leased it yet: the original worker's late completion is still
	// the only claim and is honored — late work is work.
	sim.Advance(10 * time.Minute)
	q.ExpireLeases(sim.Now())
	if status, err := q.Complete(task.ID, lease.Token); err != nil || status != Completed {
		t.Fatalf("late complete = (%v, %v), want (Completed, nil)", status, err)
	}
}

func TestQueueDropsTasksPastNotAfter(t *testing.T) {
	start := time.Date(2026, 7, 8, 8, 0, 0, 0, time.UTC)
	sim := clock.NewSimulated(start)
	q := newTestQueue(sim)

	task := testTask("n1", start)
	task.NotAfter = start.Add(time.Minute)
	if _, err := q.Add(task); err != nil {
		t.Fatal(err)
	}
	sim.Advance(2 * time.Minute)
	requeued, dropped := q.ExpireLeases(sim.Now())
	if requeued != 0 || dropped != 1 {
		t.Fatalf("expire = (%d, %d), want (0, 1)", requeued, dropped)
	}
	if got := q.Lease("n1", 1); len(got) != 0 {
		t.Fatalf("dead window still leased: %+v", got)
	}
}
