package sched

import (
	"fmt"
	"testing"
	"time"

	"sensorcal/internal/trust"
)

// BenchmarkPlanner exercises a realistic control-plane load: a week of
// hourly traffic history and a 200-node fleet planned over a 24 h
// horizon. CI uploads the result as an artifact so planner regressions
// show up in review.
func BenchmarkPlanner(b *testing.B) {
	f := NewForecaster(ForecastConfig{})
	day := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	for h := 0; h < 7*24; h++ {
		at := day.Add(time.Duration(h) * time.Hour)
		n := 5 + (h%24)*2 // diurnal ramp
		bearings := make([]float64, n)
		for i := range bearings {
			bearings[i] = float64((i * 53) % 360)
		}
		f.Observe("rooftop", at, testCenter, flightsAt(testCenter, bearings...))
	}

	now := day.Add(7 * 24 * time.Hour)
	nodes := make([]NodeState, 200)
	for i := range nodes {
		nodes[i] = NodeState{
			Node:       trust.NodeID(fmt.Sprintf("node-%03d", i)),
			Site:       "rooftop",
			LastReport: now.Add(-time.Duration(i%48) * time.Hour),
		}
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tasks, err := Plan(f, nodes, PlanConfig{Now: now})
		if err != nil {
			b.Fatal(err)
		}
		if len(tasks) == 0 {
			b.Fatal("planner produced no tasks")
		}
	}
}
