package sched

import (
	"testing"
	"time"

	"sensorcal/internal/calib"
	"sensorcal/internal/flightsim"
	"sensorcal/internal/fr24"
)

// trafficAt spawns the deterministic population for one instant of the
// typical diurnal airport pattern and returns what a ground-truth query
// reports — the same simulation schedd's fallback path observes.
func trafficAt(t *testing.T, at time.Time, seed int64) []fr24.Flight {
	t.Helper()
	density := calib.TypicalAirportForecast().HourlyDensity[at.Hour()]
	fleet, err := flightsim.NewFleet(at, flightsim.Config{
		Center: testCenter,
		Radius: 100_000,
		Count:  int(density),
		Seed:   seed ^ at.Unix(),
	})
	if err != nil {
		t.Fatal(err)
	}
	flights, err := fr24.NewService(fleet).Query(at, testCenter, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	return flights
}

// TestScheduledBeatsFreeRunningCoverage is the subsystem's reason to
// exist: a fleet that measures when the forecaster says traffic is
// dense observes at least as many aircraft as a free-running node
// measuring on a fixed cadence — using fewer measurement windows.
func TestScheduledBeatsFreeRunningCoverage(t *testing.T) {
	const seed = 7
	day1 := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	day2 := day1.Add(24 * time.Hour)

	// Day 1: the scheduler observes one traffic snapshot per hour and
	// learns the diurnal density.
	f := NewForecaster(ForecastConfig{})
	for h := 0; h < 24; h++ {
		at := day1.Add(time.Duration(h) * time.Hour)
		f.Observe("rooftop", at, testCenter, trafficAt(t, at, seed))
	}

	// Day 2, free-running baseline: 8 windows at fixed 3 h spacing,
	// blind to traffic (what agentd's RunDay cadence amounts to with a
	// flat forecast).
	freeWindows := 0
	freeCoverage := 0
	for h := 0; h < 24; h += 3 {
		at := day2.Add(time.Duration(h) * time.Hour)
		freeCoverage += len(trafficAt(t, at, seed))
		freeWindows++
	}

	// Day 2, scheduled: the planner gets fewer windows to spend and
	// places them in the forecast's densest hours.
	tasks, err := Plan(f, []NodeState{{Node: "n1", Site: "rooftop"}}, PlanConfig{
		Now:             day2,
		MaxTasksPerNode: freeWindows - 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	schedCoverage := 0
	for _, task := range tasks {
		schedCoverage += len(trafficAt(t, task.Start, seed))
	}

	t.Logf("free-running: %d aircraft across %d windows; scheduled: %d aircraft across %d windows",
		freeCoverage, freeWindows, schedCoverage, len(tasks))
	if len(tasks) >= freeWindows {
		t.Fatalf("scheduled fleet used %d windows, free baseline %d — must be fewer", len(tasks), freeWindows)
	}
	if schedCoverage < freeCoverage {
		t.Fatalf("scheduled coverage %d < free-running %d despite density awareness", schedCoverage, freeCoverage)
	}
}
