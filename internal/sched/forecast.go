package sched

import (
	"sync"
	"time"

	"sensorcal/internal/calib"
	"sensorcal/internal/fr24"
	"sensorcal/internal/geo"
)

// ForecastConfig configures a Forecaster.
type ForecastConfig struct {
	// Retain is the sliding window: snapshots older than this (relative
	// to the newest snapshot per site) are evicted. Zero means 7 days —
	// long enough to see every hour of the weekly schedule several times,
	// short enough to track seasonal timetable changes.
	Retain time.Duration
}

// Forecaster folds traffic snapshots into per-site sliding-window
// histograms keyed by hour of day and 30° bearing sector, and predicts
// the expected aircraft yield of a candidate measurement window. It is
// safe for concurrent use: schedd's plan loop observes while the HTTP
// handlers read.
type Forecaster struct {
	retain time.Duration

	mu    sync.Mutex
	sites map[string]*siteHistogram
}

// siteHistogram is one site's sliding window of snapshots plus running
// per-hour aggregates, so Predict is O(1) instead of rescanning samples.
type siteHistogram struct {
	samples []snapshot
	newest  time.Time

	hourN      [24]int
	hourSum    [24]float64
	sectorSum  [24][12]float64
	totalN     int
	totalSum   float64
	sectorsAll [12]float64
}

// snapshot is one observed traffic sample.
type snapshot struct {
	at      time.Time
	hour    int
	total   float64
	sectors [12]float64
}

// NewForecaster returns an empty forecaster.
func NewForecaster(cfg ForecastConfig) *Forecaster {
	if cfg.Retain <= 0 {
		cfg.Retain = 7 * 24 * time.Hour
	}
	return &Forecaster{retain: cfg.Retain, sites: make(map[string]*siteHistogram)}
}

// Observe folds one traffic snapshot — the aircraft a ground-truth query
// (fr24 live, fr24d, or a flightsim fleet behind fr24.NewService)
// reported near center at time at — into the site's histogram.
func (f *Forecaster) Observe(site string, at time.Time, center geo.Point, flights []fr24.Flight) {
	s := snapshot{at: at, hour: at.Hour()}
	for _, fl := range flights {
		s.total++
		b := int(geo.NormalizeBearing(fl.BearingFrom(center))/30) % 12
		s.sectors[b]++
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	h, ok := f.sites[site]
	if !ok {
		h = &siteHistogram{}
		f.sites[site] = h
	}
	h.add(s)
	h.evict(f.retain)
}

func (h *siteHistogram) add(s snapshot) {
	h.samples = append(h.samples, s)
	if s.at.After(h.newest) {
		h.newest = s.at
	}
	h.hourN[s.hour]++
	h.hourSum[s.hour] += s.total
	h.totalN++
	h.totalSum += s.total
	for b, c := range s.sectors {
		h.sectorSum[s.hour][b] += c
		h.sectorsAll[b] += c
	}
}

// evict drops samples that slid out of the retention window.
func (h *siteHistogram) evict(retain time.Duration) {
	cutoff := h.newest.Add(-retain)
	keep := h.samples[:0]
	for _, s := range h.samples {
		if s.at.Before(cutoff) {
			h.hourN[s.hour]--
			h.hourSum[s.hour] -= s.total
			h.totalN--
			h.totalSum -= s.total
			for b, c := range s.sectors {
				h.sectorSum[s.hour][b] -= c
				h.sectorsAll[b] -= c
			}
			continue
		}
		keep = append(keep, s)
	}
	h.samples = keep
}

// Yield is the forecast for one candidate measurement window.
type Yield struct {
	// ExpectedAircraft is the predicted count of distinct aircraft within
	// ground-truth range during the window — the paper's "flight density"
	// signal: a 30 s capture can only observe what is overhead.
	ExpectedAircraft float64
	// PerSector splits the expectation across 30° bearing sectors.
	PerSector [12]float64
	// Samples is how many snapshots back the hour-of-day estimate; zero
	// means Fallback.
	Samples int
	// Fallback marks a prediction built from the site-wide mean (or
	// nothing at all) because the hour has no history yet.
	Fallback bool
}

// Predict returns the expected yield of a window starting at the given
// time at the given site. An hour with no history falls back to the
// site-wide mean; an unknown site predicts zero with Fallback set.
func (f *Forecaster) Predict(site string, at time.Time) Yield {
	f.mu.Lock()
	defer f.mu.Unlock()
	h, ok := f.sites[site]
	if !ok || h.totalN == 0 {
		return Yield{Fallback: true}
	}
	hour := at.Hour()
	if n := h.hourN[hour]; n > 0 {
		y := Yield{ExpectedAircraft: h.hourSum[hour] / float64(n), Samples: n}
		for b := range y.PerSector {
			y.PerSector[b] = h.sectorSum[hour][b] / float64(n)
		}
		return y
	}
	y := Yield{ExpectedAircraft: h.totalSum / float64(h.totalN), Fallback: true}
	for b := range y.PerSector {
		y.PerSector[b] = h.sectorsAll[b] / float64(h.totalN)
	}
	return y
}

// Samples returns how many snapshots the site's sliding window currently
// holds.
func (f *Forecaster) Samples(site string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	h, ok := f.sites[site]
	if !ok {
		return 0
	}
	return len(h.samples)
}

// TrafficForecast exports the site's histogram in calib's forecast shape,
// bridging the learned density to the existing free-running scheduler
// (calib.PlanMeasurements): HourlyDensity from the per-hour means,
// SectorBias from the normalized sector split of each hour with data.
func (f *Forecaster) TrafficForecast(site string) calib.TrafficForecast {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out calib.TrafficForecast
	h, ok := f.sites[site]
	if !ok {
		return out
	}
	for hour := 0; hour < 24; hour++ {
		n := h.hourN[hour]
		if n == 0 {
			continue
		}
		out.HourlyDensity[hour] = h.hourSum[hour] / float64(n)
		if h.hourSum[hour] <= 0 {
			continue
		}
		var bias [12]float64
		for b := range bias {
			bias[b] = h.sectorSum[hour][b] / h.hourSum[hour]
		}
		if out.SectorBias == nil {
			out.SectorBias = make(map[int][12]float64)
		}
		out.SectorBias[hour] = bias
	}
	return out
}
