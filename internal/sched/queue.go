package sched

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sensorcal/internal/clock"
	"sensorcal/internal/obs"
	"sensorcal/internal/trust"
)

// QueueConfig assembles a Queue.
type QueueConfig struct {
	// Shards partitions the task table so lease/complete traffic from a
	// large fleet does not serialize on one lock. Zero means 8.
	Shards int
	// LeaseTTL is the grace a worker gets past its task's scheduled
	// window end (or past the lease grant, for already-due tasks) before
	// the lease expires and the task requeues. Zero means 2 m.
	LeaseTTL time.Duration
	// DoneCap bounds the per-shard memory of completed task IDs kept for
	// duplicate detection (oldest forgotten first). Zero means 4096.
	DoneCap int
	// Clock drives deadlines; nil means the wall clock. Tests drive a
	// clock.Simulated through lease expiry instantly.
	Clock clock.Clock
	// Metrics is the registry the sched_* series land on; nil means the
	// process-wide default.
	Metrics *obs.Registry
}

// Queue is a sharded lease-based work queue. Adding is idempotent by
// task ID, leases carry deadlines, expired leases requeue, and
// completion is exactly-once: duplicates and stale tokens are detected,
// never double-counted.
type Queue struct {
	cfg    QueueConfig
	clk    clock.Clock
	shards []*qshard
	tokens atomic.Uint64
	m      *queueMetrics
}

type taskState int

const (
	statePending taskState = iota
	stateLeased
)

type qentry struct {
	task     Task
	state    taskState
	token    string
	deadline time.Time
	enqueued time.Time
	leasedAt time.Time
	attempts int
}

type qshard struct {
	mu      sync.Mutex
	entries map[string]*qentry
	// done remembers completed task IDs (FIFO-bounded) so a re-planned
	// or re-completed task is recognized instead of re-executed.
	done     map[string]struct{}
	doneFIFO []string
}

// NewQueue returns an empty queue.
func NewQueue(cfg QueueConfig) *Queue {
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 2 * time.Minute
	}
	if cfg.DoneCap <= 0 {
		cfg.DoneCap = 4096
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System{}
	}
	q := &Queue{cfg: cfg, clk: clk, m: newQueueMetrics(cfg.Metrics)}
	for i := 0; i < cfg.Shards; i++ {
		q.shards = append(q.shards, &qshard{
			entries: make(map[string]*qentry),
			done:    make(map[string]struct{}),
		})
	}
	q.m.registerDepth(cfg.Metrics, q)
	return q
}

func (q *Queue) shard(id string) *qshard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return q.shards[h.Sum32()%uint32(len(q.shards))]
}

// Add enqueues tasks, skipping any whose ID is already pending, leased
// or completed, and returns how many were newly accepted. Invalid tasks
// are rejected with an error before anything is enqueued.
func (q *Queue) Add(tasks ...Task) (int, error) {
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return 0, err
		}
	}
	now := q.clk.Now()
	added := 0
	for _, t := range tasks {
		s := q.shard(t.ID)
		s.mu.Lock()
		_, exists := s.entries[t.ID]
		_, completed := s.done[t.ID]
		if !exists && !completed {
			s.entries[t.ID] = &qentry{task: t, enqueued: now}
			added++
		}
		s.mu.Unlock()
		if !exists && !completed {
			q.m.enqueued.Inc()
			q.m.forecastYield.Observe(t.ExpectedAircraft)
		}
	}
	return added, nil
}

// Lease is one granted task: execute it and call Complete with the
// token before the deadline, or the task requeues.
type Lease struct {
	Task     Task      `json:"task"`
	Token    string    `json:"token"`
	Deadline time.Time `json:"deadline"`
}

// Lease grants up to max pending tasks pinned to node, in execution
// order (earliest window first). The deadline covers the scheduled
// window plus the TTL grace, so leasing ahead of the window does not
// expire mid-wait. Expired leases and dead tasks are swept first.
func (q *Queue) Lease(node trust.NodeID, max int) []Lease {
	if max <= 0 {
		max = 1
	}
	now := q.clk.Now()
	q.expire(now)
	// Phase 1: collect candidate IDs under per-shard locks.
	type cand struct {
		id       string
		start    time.Time
		priority float64
	}
	var cands []cand
	for _, s := range q.shards {
		s.mu.Lock()
		for id, e := range s.entries {
			if e.state == statePending && e.task.Node == node {
				cands = append(cands, cand{id: id, start: e.task.Start, priority: e.task.Priority})
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].start.Equal(cands[j].start) {
			return cands[i].start.Before(cands[j].start)
		}
		if cands[i].priority != cands[j].priority {
			return cands[i].priority > cands[j].priority
		}
		return cands[i].id < cands[j].id
	})
	// Phase 2: re-lock each candidate's shard and lease if still pending.
	var out []Lease
	for _, c := range cands {
		if len(out) >= max {
			break
		}
		s := q.shard(c.id)
		s.mu.Lock()
		e, ok := s.entries[c.id]
		if !ok || e.state != statePending {
			s.mu.Unlock()
			continue
		}
		deadline := now.Add(q.cfg.LeaseTTL)
		if end := e.task.Start.Add(e.task.Duration); end.After(now) {
			deadline = end.Add(q.cfg.LeaseTTL)
		}
		e.state = stateLeased
		e.token = fmt.Sprintf("%s-%d", node, q.tokens.Add(1))
		e.deadline = deadline
		e.leasedAt = now
		e.attempts++
		out = append(out, Lease{Task: e.task, Token: e.token, Deadline: deadline})
		s.mu.Unlock()
		q.m.leased.Inc()
	}
	return out
}

// CompleteStatus is the outcome of a Complete call.
type CompleteStatus int

const (
	// Completed: this call finished the task.
	Completed CompleteStatus = iota
	// Duplicate: the task was already completed; the caller's work is
	// acknowledged but changed nothing (idempotent completion).
	Duplicate
)

// NotFoundError marks a completion for a task the queue never held (or
// expired outright).
type NotFoundError struct{ ID string }

func (e *NotFoundError) Error() string { return fmt.Sprintf("sched: task %s not found", e.ID) }

// ConflictError marks a completion whose lease token lost: the lease
// expired and the task was re-leased to another worker.
type ConflictError struct{ ID string }

func (e *ConflictError) Error() string {
	return fmt.Sprintf("sched: task %s lease superseded; completion rejected", e.ID)
}

// Complete finishes a leased task. It is idempotent: completing an
// already-done task returns Duplicate with no error. A completion whose
// token is still the last one issued is accepted even if the lease
// deadline passed (late work is work — as long as nobody else was handed
// the task), but once the task has been re-leased the stale token gets a
// ConflictError and the new holder's completion is the one that counts.
func (q *Queue) Complete(id, token string) (CompleteStatus, error) {
	now := q.clk.Now()
	s := q.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.done[id]; ok {
		q.m.duplicates.Inc()
		return Duplicate, nil
	}
	e, ok := s.entries[id]
	if !ok {
		return 0, &NotFoundError{ID: id}
	}
	if e.token == "" || e.token != token {
		return 0, &ConflictError{ID: id}
	}
	delete(s.entries, id)
	s.rememberDoneLocked(id, q.cfg.DoneCap)
	q.m.completed.Inc()
	if !e.leasedAt.IsZero() {
		q.m.leaseAge.Observe(now.Sub(e.leasedAt).Seconds())
	}
	q.m.taskLatency.Observe(now.Sub(e.enqueued).Seconds())
	return Completed, nil
}

func (s *qshard) rememberDoneLocked(id string, cap int) {
	for len(s.doneFIFO) >= cap {
		delete(s.done, s.doneFIFO[0])
		s.doneFIFO = s.doneFIFO[1:]
	}
	s.done[id] = struct{}{}
	s.doneFIFO = append(s.doneFIFO, id)
}

// ExpireLeases requeues every lease whose deadline passed and drops
// tasks past their NotAfter, returning (requeued, dropped). Lease runs
// the same sweep, so calling this is only needed for its metrics and in
// tests driving a simulated clock.
func (q *Queue) ExpireLeases(now time.Time) (requeued, dropped int) {
	return q.expire(now)
}

func (q *Queue) expire(now time.Time) (requeued, dropped int) {
	for _, s := range q.shards {
		s.mu.Lock()
		for id, e := range s.entries {
			if !e.task.NotAfter.IsZero() && now.After(e.task.NotAfter) {
				delete(s.entries, id)
				dropped++
				continue
			}
			if e.state == stateLeased && now.After(e.deadline) {
				// Requeue; the token stays recorded so a late completion
				// from the previous holder is still honoured until the
				// task is re-leased.
				e.state = statePending
				requeued++
			}
		}
		s.mu.Unlock()
	}
	q.m.requeued.Add(float64(requeued))
	q.m.expired.Add(float64(dropped))
	return requeued, dropped
}

// QueueStats is a point-in-time summary for /api/stats and the depth
// gauges.
type QueueStats struct {
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Done    int `json:"done"`
}

// Stats summarizes the queue.
func (q *Queue) Stats() QueueStats {
	var st QueueStats
	for _, s := range q.shards {
		s.mu.Lock()
		for _, e := range s.entries {
			switch e.state {
			case statePending:
				st.Pending++
			case stateLeased:
				st.Leased++
			}
		}
		st.Done += len(s.done)
		s.mu.Unlock()
	}
	return st
}
