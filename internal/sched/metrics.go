package sched

import (
	"sensorcal/internal/obs"
)

// Queue instrumentation: the sched_* series a schedd operator watches.
// Depth gauges are scrape-time callbacks, so the hot lease/complete path
// pays only counter increments.

type queueMetrics struct {
	enqueued      *obs.Counter
	leased        *obs.Counter
	completed     *obs.Counter
	duplicates    *obs.Counter
	requeued      *obs.Counter
	expired       *obs.Counter
	leaseAge      *obs.Histogram
	taskLatency   *obs.Histogram
	forecastYield *obs.Histogram
}

func newQueueMetrics(reg *obs.Registry) *queueMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &queueMetrics{
		enqueued: reg.Counter("sched_tasks_enqueued_total",
			"Measurement tasks accepted into the work queue (idempotent adds excluded)."),
		leased: reg.Counter("sched_leases_granted_total",
			"Leases granted to polling agents."),
		completed: reg.Counter("sched_tasks_completed_total",
			"Tasks completed exactly once."),
		duplicates: reg.Counter("sched_duplicate_completions_total",
			"Completions acknowledged as duplicates of an already-finished task."),
		requeued: reg.Counter("sched_tasks_requeued_total",
			"Leases that expired and returned their task to the queue."),
		expired: reg.Counter("sched_tasks_expired_total",
			"Tasks dropped because their measurement window passed unexecuted."),
		leaseAge: reg.Histogram("sched_lease_age_seconds",
			"Age of a lease at completion (grant to Complete).",
			obs.ExpBuckets(1, 4, 10)),
		taskLatency: reg.Histogram("sched_task_latency_seconds",
			"Task lifetime from enqueue to completion.",
			obs.ExpBuckets(1, 4, 12)),
		forecastYield: reg.Histogram("sched_forecast_yield",
			"Forecast expected-aircraft yield of each enqueued window.",
			[]float64{0.5, 1, 2, 5, 10, 20, 40, 80}),
	}
}

// registerDepth exports the queue's live depth as scrape-time gauges.
func (m *queueMetrics) registerDepth(reg *obs.Registry, q *Queue) {
	if reg == nil {
		reg = obs.Default()
	}
	reg.GaugeFunc("sched_queue_depth",
		"Tasks awaiting lease.",
		func() float64 { return float64(q.Stats().Pending) })
	reg.GaugeFunc("sched_leases_outstanding",
		"Tasks currently leased to an agent.",
		func() float64 { return float64(q.Stats().Leased) })
}
