package sched

import (
	"fmt"
	"math"
	"testing"
	"time"

	"sensorcal/internal/fr24"
	"sensorcal/internal/geo"
)

var testCenter = geo.Point{Lat: 46.95, Lon: 7.44}

// flightsAt fabricates one ground-truth snapshot with an aircraft at
// each given bearing, 30 km out.
func flightsAt(center geo.Point, bearings ...float64) []fr24.Flight {
	var out []fr24.Flight
	for i, b := range bearings {
		p := geo.Destination(center, b, 30_000)
		out = append(out, fr24.Flight{
			ICAO: fmt.Sprintf("AC%04d", i),
			Lat:  p.Lat, Lon: p.Lon, AltM: 10_000,
		})
	}
	return out
}

func TestForecasterHourHistogram(t *testing.T) {
	f := NewForecaster(ForecastConfig{})
	day := time.Date(2026, 7, 6, 8, 0, 0, 0, time.UTC)
	// Three mornings with four aircraft each, all due east.
	for d := 0; d < 3; d++ {
		at := day.Add(time.Duration(d) * 24 * time.Hour)
		f.Observe("rooftop", at, testCenter, flightsAt(testCenter, 88, 89, 91, 92))
	}

	y := f.Predict("rooftop", day.Add(72*time.Hour)) // another 08:00
	if y.Fallback {
		t.Fatalf("hour with 3 samples should not fall back: %+v", y)
	}
	if y.Samples != 3 {
		t.Fatalf("Samples = %d, want 3", y.Samples)
	}
	if math.Abs(y.ExpectedAircraft-4) > 1e-9 {
		t.Fatalf("ExpectedAircraft = %v, want 4", y.ExpectedAircraft)
	}
	// 88–92° all land in sector 2 or 3 (60–90°, 90–120°); the mass must
	// be on the eastern sectors and nowhere else.
	var east, rest float64
	for b, c := range y.PerSector {
		if b == 2 || b == 3 {
			east += c
		} else {
			rest += c
		}
	}
	if math.Abs(east-4) > 1e-9 || rest != 0 {
		t.Fatalf("sector split east=%v rest=%v, want 4/0 (%v)", east, rest, y.PerSector)
	}
}

func TestForecasterFallbacks(t *testing.T) {
	f := NewForecaster(ForecastConfig{})
	at := time.Date(2026, 7, 6, 8, 0, 0, 0, time.UTC)
	f.Observe("rooftop", at, testCenter, flightsAt(testCenter, 10, 20, 30, 40))

	// An hour with no history uses the site-wide mean.
	y := f.Predict("rooftop", at.Add(5*time.Hour))
	if !y.Fallback {
		t.Fatalf("unseen hour should fall back")
	}
	if math.Abs(y.ExpectedAircraft-4) > 1e-9 {
		t.Fatalf("site-mean fallback = %v, want 4", y.ExpectedAircraft)
	}

	// An unknown site predicts nothing, flagged.
	y = f.Predict("basement", at)
	if !y.Fallback || y.ExpectedAircraft != 0 {
		t.Fatalf("unknown site: %+v, want zero fallback", y)
	}
}

func TestForecasterSlidingWindowEviction(t *testing.T) {
	f := NewForecaster(ForecastConfig{Retain: 48 * time.Hour})
	at := time.Date(2026, 7, 6, 8, 0, 0, 0, time.UTC)
	f.Observe("rooftop", at, testCenter, flightsAt(testCenter, 90, 90, 90, 90, 90, 90, 90, 90))
	// Ten days later one quiet snapshot arrives; the busy one slides out.
	f.Observe("rooftop", at.Add(10*24*time.Hour), testCenter, flightsAt(testCenter, 90))

	if n := f.Samples("rooftop"); n != 1 {
		t.Fatalf("Samples = %d after eviction, want 1", n)
	}
	y := f.Predict("rooftop", at)
	if math.Abs(y.ExpectedAircraft-1) > 1e-9 {
		t.Fatalf("post-eviction prediction = %v, want 1 (old sample must not linger)", y.ExpectedAircraft)
	}
}

func TestForecasterTrafficForecastBridge(t *testing.T) {
	f := NewForecaster(ForecastConfig{})
	at := time.Date(2026, 7, 6, 8, 0, 0, 0, time.UTC)
	f.Observe("rooftop", at, testCenter, flightsAt(testCenter, 90, 90, 270))

	tf := f.TrafficForecast("rooftop")
	if math.Abs(tf.HourlyDensity[8]-3) > 1e-9 {
		t.Fatalf("HourlyDensity[8] = %v, want 3", tf.HourlyDensity[8])
	}
	bias, ok := tf.SectorBias[8]
	if !ok {
		t.Fatalf("hour 8 should carry a sector bias")
	}
	var sum float64
	for _, b := range bias {
		sum += b
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sector bias must normalize to 1, got %v", sum)
	}
}
