package sched

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sensorcal/internal/clock"
	"sensorcal/internal/obs"
	"sensorcal/internal/resilience"
	"sensorcal/internal/resilience/chaos"
)

// chaosSeed fixes the fault schedule so a failure replays exactly; it
// matches the seed the CI chaos step uses.
const chaosSeed = 42

func newTestServer(t *testing.T, q *Queue) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer((&Server{Q: q}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func newTestClient(t *testing.T, baseURL string, rt http.RoundTripper) *Client {
	t.Helper()
	hc := &http.Client{Timeout: 5 * time.Second}
	if rt != nil {
		hc.Transport = rt
	}
	c, err := NewClient(ClientConfig{
		BaseURL: baseURL,
		HTTP:    hc,
		Retrier: resilience.NewRetrier(resilience.Policy{
			MaxAttempts: 8,
			BaseDelay:   time.Millisecond,
			MaxDelay:    5 * time.Millisecond,
			Seed:        chaosSeed,
		}),
		Breaker: resilience.NewBreaker(resilience.BreakerConfig{
			Name:             "sched-test",
			FailureThreshold: 1000, // measuring delivery, not fail-fast
			OpenFor:          time.Second,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestHTTPLeaseCompleteRoundTrip(t *testing.T) {
	start := time.Date(2026, 7, 8, 8, 0, 0, 0, time.UTC)
	sim := clock.NewSimulated(start)
	q := newTestQueue(sim)
	if _, err := q.Add(testTask("n1", start)); err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, q)
	c := newTestClient(t, srv.URL, nil)

	ctx := context.Background()
	leases, err := c.Lease(ctx, "n1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 1 {
		t.Fatalf("got %d leases, want 1", len(leases))
	}
	if leases[0].Task.Node != "n1" || leases[0].Token == "" {
		t.Fatalf("malformed lease over the wire: %+v", leases[0])
	}
	if err := c.Complete(ctx, leases[0].Task.ID, leases[0].Token); err != nil {
		t.Fatal(err)
	}
	// Retried completion is acknowledged as a duplicate — success.
	if err := c.Complete(ctx, leases[0].Task.ID, leases[0].Token); err != nil {
		t.Fatalf("duplicate ack should succeed: %v", err)
	}
	// A completion for an unknown task is a permanent 404.
	if err := c.Complete(ctx, "ghost", "tok"); err == nil {
		t.Fatalf("unknown task must error")
	}
}

// TestChaosSchedLeaseExpiryExactlyOnce is the scheduler leg of the chaos
// suite (CI: go test -race -run 'Chaos.*Sched'): an agent leases a task
// and dies mid-window; after the lease TTL the task requeues and a second
// agent completes it over a lossy network whose retries must dedupe —
// the task finishes exactly once, and the dead agent's late claim loses.
func TestChaosSchedLeaseExpiryExactlyOnce(t *testing.T) {
	start := time.Date(2026, 7, 8, 8, 0, 0, 0, time.UTC)
	sim := clock.NewSimulated(start)
	reg := obs.NewRegistry()
	q := NewQueue(QueueConfig{LeaseTTL: 2 * time.Minute, Clock: sim, Metrics: reg})
	task := testTask("n1", start)
	if _, err := q.Add(task); err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, q)

	// Agent A leases over a clean link, then is killed before completing.
	agentA := newTestClient(t, srv.URL, nil)
	ctx := context.Background()
	aLeases, err := agentA.Lease(ctx, "n1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(aLeases) != 1 {
		t.Fatalf("agent A got %d leases, want 1", len(aLeases))
	}

	// The lease TTL passes with no completion; the sweep requeues.
	sim.Advance(10 * time.Minute)
	if requeued, _ := q.ExpireLeases(sim.Now()); requeued != 1 {
		t.Fatalf("requeued %d, want 1", requeued)
	}

	// Agent B replaces A behind a 40% lossy network: requests dropped
	// before and after the server. Its retries must still deliver the
	// lease and the completion exactly once.
	faulty := chaos.NewTransport(http.DefaultTransport, chaosSeed, chaos.Faults{
		DropBefore: 0.25,
		DropAfter:  0.25,
		Err503:     0.1,
	})
	agentB := newTestClient(t, srv.URL, faulty)
	var bLeases []Lease
	for attempt := 0; attempt < 10 && len(bLeases) == 0; attempt++ {
		bLeases, err = agentB.Lease(ctx, "n1", 1)
		if err != nil {
			t.Logf("lease attempt through chaos: %v", err)
		}
		if len(bLeases) == 0 {
			// A lease grant whose response was dropped leaves the task
			// held under a token nobody knows; recovery is the same TTL
			// expiry an agent crash gets.
			sim.Advance(10 * time.Minute)
			q.ExpireLeases(sim.Now())
		}
	}
	if len(bLeases) != 1 {
		t.Fatalf("agent B never won the requeued task")
	}
	if bLeases[0].Token == aLeases[0].Token {
		t.Fatalf("requeued task must carry a fresh token")
	}
	// Agent A comes back from the dead while B holds the task: its token
	// was superseded, the completion is rejected (409, permanent).
	if err := agentA.Complete(ctx, task.ID, aLeases[0].Token); err == nil {
		t.Fatalf("dead agent's stale completion must be rejected")
	}

	completed := false
	for attempt := 0; attempt < 5 && !completed; attempt++ {
		if err := agentB.Complete(ctx, task.ID, bLeases[0].Token); err != nil {
			t.Logf("complete attempt through chaos: %v", err)
			continue
		}
		completed = true
	}
	if !completed {
		t.Fatalf("agent B could not complete through the chaos transport")
	}

	// A retries its ack after the task is done: the done-set recognizes
	// the ID and acknowledges a duplicate — no error, and critically no
	// second completion in the accounting below.
	if err := agentA.Complete(ctx, task.ID, aLeases[0].Token); err != nil {
		t.Fatalf("post-completion duplicate ack should succeed: %v", err)
	}

	// Exactly once: the queue holds one done task and nothing in flight.
	if st := q.Stats(); st.Done != 1 || st.Pending != 0 || st.Leased != 0 {
		t.Fatalf("stats = %+v, want exactly one completion", st)
	}
	requests, injected := faulty.Stats()
	t.Logf("chaos transport: %d requests, %d faults injected", requests, injected)
	if injected == 0 {
		t.Fatalf("chaos transport injected no faults — the test proved nothing")
	}
}
