// Package sched is the fleet control plane the paper's §5 names but does
// not build: "measurement scheduling from flight density". Instead of
// every node free-running its 30 s directional campaign at fixed spacing
// — blind to whether any aircraft are overhead or whether its calibration
// is already fresh — a central scheduler decides what the fleet measures
// and when, the way Electrosense's backend coordinated thousands of IoT
// receivers and RadioHound's coordinator drove its sub-6 GHz scans.
//
// Three pieces compose the subsystem:
//
//   - Forecaster: folds fr24/flightsim traffic snapshots into a per-site
//     sliding-window histogram (hour-of-day × 30° bearing sector) and
//     predicts the expected new-aircraft yield of a candidate window.
//   - Plan: turns fleet state (trust evidence age, calibration report
//     staleness, per-node duty budget) plus the forecast into prioritized
//     measurement tasks — high-yield windows for the stalest nodes first.
//   - Queue: a sharded lease-based work queue with deadlines,
//     requeue-on-expiry and idempotent completion, served over HTTP by
//     cmd/schedd and consumed by agents through Client (retry + breaker).
//
// Execution is at-least-once (an expired lease requeues the task);
// completion is exactly-once (duplicate and stale-token completions are
// detected and never double-count).
package sched

import (
	"fmt"
	"strconv"
	"time"

	"sensorcal/internal/trust"
)

// Task is one scheduled measurement window for one node.
type Task struct {
	// ID is deterministic (node + window start), so re-planning the same
	// horizon enqueues each task at most once.
	ID string `json:"id"`
	// Node is the agent the task is pinned to.
	Node trust.NodeID `json:"node"`
	// Site names the installation whose forecast produced the window.
	Site string `json:"site"`
	// Start and Duration bound the measurement window (paper: 30 s).
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	// Runs is how many directional repetitions the window should hold
	// (usually 1; campaigns repeat per the paper's §3.1 procedure).
	Runs int `json:"runs"`
	// ExpectedAircraft is the forecast yield that justified the window.
	ExpectedAircraft float64 `json:"expected_aircraft"`
	// Priority is the planner's objective value: staleness × yield.
	// Higher runs sooner.
	Priority float64 `json:"priority"`
	// NotAfter expires the task outright: a measurement window that went
	// unexecuted this long past its start is worthless (the traffic it
	// targeted is gone) and is dropped instead of requeued.
	NotAfter time.Time `json:"not_after"`
}

// TaskID derives the deterministic task identity for a node and window
// start.
func TaskID(node trust.NodeID, start time.Time) string {
	return string(node) + "@" + strconv.FormatInt(start.UTC().Unix(), 36)
}

// Validate rejects tasks the queue cannot manage.
func (t Task) Validate() error {
	if t.ID == "" {
		return fmt.Errorf("sched: task needs an ID")
	}
	if t.Node == "" {
		return fmt.Errorf("sched: task %s needs a node", t.ID)
	}
	if t.Start.IsZero() {
		return fmt.Errorf("sched: task %s needs a start time", t.ID)
	}
	if t.Duration <= 0 {
		return fmt.Errorf("sched: task %s needs a positive duration", t.ID)
	}
	return nil
}

// NodeState is what the planner knows about one fleet member. Zero times
// mean "never": a node that has never delivered a reading or a report is
// maximally stale and schedules first, which is exactly the bootstrapping
// behaviour a fresh fleet wants.
type NodeState struct {
	Node trust.NodeID
	// Site selects the forecast histogram.
	Site string
	// Trust is the consensus ledger score (informational; the planner
	// schedules untrusted nodes too — measurements are how they earn
	// trust back).
	Trust trust.Score
	// LastReading is when the collector last saw consensus evidence from
	// the node (the trust-ledger staleness signal).
	LastReading time.Time
	// LastReport is when the node last generated a calibration report.
	LastReport time.Time
	// DutyBudget bounds the measurement time the planner may assign the
	// node per horizon. Zero means unlimited.
	DutyBudget time.Duration
	// Covered marks 30° sectors the node already measured confidently;
	// windows whose traffic concentrates there are discounted.
	Covered [12]bool
}
