package phy1090

import (
	"bytes"
	"math"
	"testing"

	"sensorcal/internal/iq"
	"sensorcal/internal/modes"
)

func testFrame(t testing.TB) []byte {
	t.Helper()
	f := &modes.Frame{
		ICAO: 0xA0B1C2,
		Msg: &modes.AirbornePosition{
			TC: 11, AltitudeFt: 11000, AltValid: true,
			CPR: modes.EncodeCPR(37.9, -122.3, false),
		},
	}
	wire, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestModulateShape(t *testing.T) {
	frame := testFrame(t)
	b, err := Modulate(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Samples) != FrameSamples {
		t.Fatalf("burst length = %d, want %d", len(b.Samples), FrameSamples)
	}
	// Preamble pulses present, gaps silent.
	for _, p := range []int{0, 2, 7, 9} {
		if real(b.Samples[p]) != 1 {
			t.Errorf("preamble pulse missing at %d", p)
		}
	}
	for _, q := range []int{1, 3, 4, 5, 6, 8, 10, 11, 12, 13, 14, 15} {
		if b.Samples[q] != 0 {
			t.Errorf("preamble gap %d not silent", q)
		}
	}
	// Each data bit occupies exactly one of its two half-slots.
	for bit := 0; bit < modes.FrameLength*8; bit++ {
		s1 := b.Samples[PreambleSamples+2*bit]
		s2 := b.Samples[PreambleSamples+2*bit+1]
		if (s1 == 0) == (s2 == 0) {
			t.Fatalf("bit %d: PPM slots both %v/%v", bit, s1, s2)
		}
	}
}

func TestModulateRejectsBadLength(t *testing.T) {
	if _, err := Modulate(make([]byte, 10), 1); err == nil {
		t.Error("bad frame length should error")
	}
	if _, err := Modulate(make([]byte, modes.ShortFrameLength), 1); err != nil {
		t.Errorf("short frame should modulate: %v", err)
	}
}

func TestCleanDemodRoundTrip(t *testing.T) {
	frame := testFrame(t)
	b, err := Modulate(frame, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDemodulator()
	dec, ok := d.DemodulateBurst(b, 1)
	if !ok {
		t.Fatal("clean burst did not demodulate")
	}
	if !bytes.Equal(dec.Frame, frame) {
		t.Fatalf("frame mismatch:\n got %x\nwant %x", dec.Frame, frame)
	}
	if !dec.ParityOK {
		t.Error("parity should check")
	}
	// RSSI of a 0.5-amplitude burst is about -6 dBFS.
	if math.Abs(dec.RSSIDBFS+6) > 1.5 {
		t.Errorf("RSSI = %v dBFS, want ≈ -6", dec.RSSIDBFS)
	}
}

func TestDemodWithNoiseHighSNR(t *testing.T) {
	frame := testFrame(t)
	noise := iq.DBFSToPower(-40)
	amp := SNRToAmplitude(20, noise)
	ns := iq.NewNoiseSource(42)
	d := NewDemodulator()
	decoded := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		burst, err := Modulate(frame, amp)
		if err != nil {
			t.Fatal(err)
		}
		// Embed the burst mid-capture with noise everywhere.
		cap := iq.New(FrameSamples+64, SampleRate)
		if err := cap.AddAt(burst, 17); err != nil {
			t.Fatal(err)
		}
		ns.AddNoise(cap, noise)
		if dec, ok := d.DemodulateBurst(cap, 64); ok && bytes.Equal(dec.Frame, frame) {
			decoded++
		}
	}
	if decoded < trials*9/10 {
		t.Errorf("20 dB SNR: decoded %d/%d, want ≥90%%", decoded, trials)
	}
}

func TestDemodFailsAtNegativeSNR(t *testing.T) {
	frame := testFrame(t)
	noise := iq.DBFSToPower(-40)
	amp := SNRToAmplitude(-10, noise)
	ns := iq.NewNoiseSource(43)
	d := NewDemodulator()
	decoded := 0
	for i := 0; i < 30; i++ {
		burst, _ := Modulate(frame, amp)
		cap := iq.New(FrameSamples+32, SampleRate)
		_ = cap.AddAt(burst, 5)
		ns.AddNoise(cap, noise)
		if dec, ok := d.DemodulateBurst(cap, 32); ok && bytes.Equal(dec.Frame, frame) {
			decoded++
		}
	}
	if decoded > 1 {
		t.Errorf("-10 dB SNR: decoded %d/30, want ≈0", decoded)
	}
}

// TestDecodeProbabilityCurve pins the demodulator's waterfall region: the
// world model's 10 dB decode threshold must sit inside it (mostly failing
// below, mostly succeeding above).
func TestDecodeProbabilityCurve(t *testing.T) {
	frame := testFrame(t)
	noise := iq.DBFSToPower(-40)
	d := NewDemodulator()
	prob := func(snr float64, seed int64) float64 {
		ns := iq.NewNoiseSource(seed)
		ok := 0
		const trials = 60
		for i := 0; i < trials; i++ {
			burst, _ := Modulate(frame, SNRToAmplitude(snr, noise))
			cap := iq.New(FrameSamples+16, SampleRate)
			_ = cap.AddAt(burst, 3)
			ns.AddNoise(cap, noise)
			if dec, ok2 := d.DemodulateBurst(cap, 16); ok2 && bytes.Equal(dec.Frame, frame) {
				ok++
			}
		}
		return float64(ok) / trials
	}
	p5 := prob(5, 1)
	p14 := prob(14, 2)
	if p5 > 0.5 {
		t.Errorf("P(decode|5 dB) = %v, want < 0.5", p5)
	}
	if p14 < 0.9 {
		t.Errorf("P(decode|14 dB) = %v, want ≥ 0.9", p14)
	}
	if p14 <= p5 {
		t.Errorf("decode probability must increase with SNR: %v vs %v", p5, p14)
	}
}

func TestProcessFindsMultipleFrames(t *testing.T) {
	d := NewDemodulator()
	frameA := testFrame(t)
	fB := &modes.Frame{ICAO: 0x123456, Msg: &modes.Identification{TC: 4, Callsign: "UAL123"}}
	frameB, err := fB.Encode()
	if err != nil {
		t.Fatal(err)
	}
	cap := iq.New(3*FrameSamples+200, SampleRate)
	bA, _ := Modulate(frameA, 0.7)
	bB, _ := Modulate(frameB, 0.4)
	_ = cap.AddAt(bA, 50)
	_ = cap.AddAt(bB, FrameSamples+150)
	ns := iq.NewNoiseSource(7)
	ns.AddNoise(cap, iq.DBFSToPower(-45))
	got := d.Process(cap)
	if len(got) != 2 {
		t.Fatalf("decoded %d frames, want 2", len(got))
	}
	if !bytes.Equal(got[0].Frame, frameA) || !bytes.Equal(got[1].Frame, frameB) {
		t.Error("frames decoded out of order or corrupted")
	}
	if got[0].Offset != 50 {
		t.Errorf("first frame offset = %d, want 50", got[0].Offset)
	}
	// Stronger burst should report higher RSSI.
	if got[0].RSSIDBFS <= got[1].RSSIDBFS {
		t.Errorf("RSSI ordering wrong: %v vs %v", got[0].RSSIDBFS, got[1].RSSIDBFS)
	}
}

func TestProcessPureNoiseNoFalsePositives(t *testing.T) {
	d := NewDemodulator()
	cap := iq.New(100_000, SampleRate)
	iq.NewNoiseSource(99).AddNoise(cap, iq.DBFSToPower(-30))
	if got := d.Process(cap); len(got) != 0 {
		t.Errorf("pure noise produced %d frames (CRC should reject)", len(got))
	}
}

func TestProcessWrongSampleRate(t *testing.T) {
	d := NewDemodulator()
	if got := d.Process(iq.New(1000, 1e6)); got != nil {
		t.Error("wrong sample rate should return nil")
	}
	if _, ok := d.DemodulateBurst(iq.New(1000, 1e6), 4); ok {
		t.Error("wrong sample rate burst should fail")
	}
}

func TestRSSITracksAmplitude(t *testing.T) {
	frame := testFrame(t)
	d := NewDemodulator()
	var prev float64 = math.Inf(-1)
	for _, amp := range []float64{0.1, 0.3, 0.9} {
		b, _ := Modulate(frame, amp)
		dec, ok := d.DemodulateBurst(b, 1)
		if !ok {
			t.Fatalf("amp %v did not decode", amp)
		}
		if dec.RSSIDBFS <= prev {
			t.Errorf("RSSI should increase with amplitude: %v after %v", dec.RSSIDBFS, prev)
		}
		prev = dec.RSSIDBFS
	}
}

func TestSNRToAmplitude(t *testing.T) {
	noise := 0.001
	amp := SNRToAmplitude(10, noise)
	if math.Abs(amp*amp/noise-10) > 1e-9 {
		t.Errorf("amplitude^2/noise = %v, want 10", amp*amp/noise)
	}
}

func TestErrorCorrectionRecoversFlippedBit(t *testing.T) {
	frame := testFrame(t)
	burst, err := Modulate(frame, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Swap the PPM halves of data bit 30: a guaranteed single bit error.
	base := PreambleSamples + 2*30
	burst.Samples[base], burst.Samples[base+1] = burst.Samples[base+1], burst.Samples[base]

	noFix := &Demodulator{PreambleThresholdDB: 3, LongFramesOnly: true, ErrorCorrection: 0}
	if _, ok := noFix.DemodulateBurst(burst, 1); ok {
		t.Fatal("corrupted burst should fail without repair")
	}
	withFix := NewDemodulator() // repair on by default
	dec, ok := withFix.DemodulateBurst(burst, 1)
	if !ok {
		t.Fatal("single-bit repair should recover the frame")
	}
	if !dec.Repaired {
		t.Error("Repaired flag should be set")
	}
	if !bytes.Equal(dec.Frame, frame) {
		t.Error("repaired frame differs from the original")
	}
}

func TestErrorCorrectionImprovesSensitivity(t *testing.T) {
	frame := testFrame(t)
	noise := iq.DBFSToPower(-40)
	rate := func(ec int, seed int64) float64 {
		d := &Demodulator{PreambleThresholdDB: 3, LongFramesOnly: true, ErrorCorrection: ec}
		ns := iq.NewNoiseSource(seed)
		ok := 0
		const trials = 80
		for i := 0; i < trials; i++ {
			burst, _ := Modulate(frame, SNRToAmplitude(9, noise))
			capBuf := iq.New(FrameSamples+8, SampleRate)
			_ = capBuf.AddAt(burst, 4)
			ns.AddNoise(capBuf, noise)
			if dec, ok2 := d.DemodulateBurst(capBuf, 8); ok2 && bytes.Equal(dec.Frame, frame) {
				ok++
			}
		}
		return float64(ok) / trials
	}
	off := rate(0, 11)
	on := rate(1, 11)
	if on <= off {
		t.Errorf("single-bit repair should raise the 9 dB decode rate: %.2f -> %.2f", off, on)
	}
}

func TestErrorCorrectionFalsePositiveBudget(t *testing.T) {
	// Single-bit repair must stay clean on pure noise: only 112 of 2^24
	// residuals are repairable, so the fabrication probability per
	// preamble candidate is negligible.
	capBuf := iq.New(150_000, SampleRate)
	iq.NewNoiseSource(99).AddNoise(capBuf, iq.DBFSToPower(-25))
	d1 := NewDemodulator() // ErrorCorrection = 1
	if got := d1.Process(capBuf); len(got) != 0 {
		t.Errorf("single-bit repair fabricated %d frames from noise", len(got))
	}
	// Two-bit repair trades exactly this property away (≈6300 repairable
	// residuals): it can fabricate the odd frame from noise, which is why
	// dump1090 gates --aggressive on signal level. Bound the damage
	// rather than demand zero.
	d2 := NewDemodulator()
	d2.ErrorCorrection = 2
	if got := d2.Process(capBuf); len(got) > 5 {
		t.Errorf("aggressive repair fabricated %d frames from noise, want a handful at most", len(got))
	}
}

func TestShortFrameDemodulation(t *testing.T) {
	// A DF11 all-call over the air: the demodulator with LongFramesOnly
	// disabled recovers the 56-bit frame from a capture that contains no
	// valid 112-bit interpretation.
	wire, err := modes.EncodeAllCall(modes.AllCall{Capability: 5, ICAO: 0x4840D6})
	if err != nil {
		t.Fatal(err)
	}
	burst, err := Modulate(wire, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Pad the capture so a full long-frame window exists after the burst.
	capBuf := iq.New(FrameSamples+64, SampleRate)
	_ = capBuf.AddAt(burst, 8)
	iq.NewNoiseSource(21).AddNoise(capBuf, iq.DBFSToPower(-50))

	longOnly := NewDemodulator()
	longOnly.ErrorCorrection = 0
	if got := longOnly.Process(capBuf); len(got) != 0 {
		t.Errorf("long-only demodulator decoded %d frames from a short squitter", len(got))
	}

	d := NewDemodulator()
	d.LongFramesOnly = false
	d.ErrorCorrection = 0
	got := d.Process(capBuf)
	if len(got) != 1 {
		t.Fatalf("decoded %d frames, want 1", len(got))
	}
	if len(got[0].Frame) != modes.ShortFrameLength {
		t.Fatalf("frame length %d, want short", len(got[0].Frame))
	}
	ac, err := modes.DecodeAllCall(got[0].Frame)
	if err != nil {
		t.Fatal(err)
	}
	if ac.ICAO != 0x4840D6 || ac.Capability != 5 {
		t.Errorf("decoded %+v", ac)
	}
}
