package phy1090

import (
	"testing"

	"sensorcal/internal/iq"
)

// BenchmarkDemodSteadyState measures the per-burst scan path the
// parallel campaign hammers: magnitude series, preamble shape test,
// reject. The capture is pure noise so no frame decodes — this is the
// steady state, and it must stay at zero allocations per operation
// (the magnitude scratch lives on the demodulator; only a successful
// decode allocates, for the frame that escapes into the tracker).
func BenchmarkDemodSteadyState(b *testing.B) {
	d := NewDemodulator()
	capBuf := iq.New(FrameSamples+8, SampleRate)
	iq.NewNoiseSource(7).Fill(capBuf, 1e-4)
	// Warm the scratch so the first-call grow isn't counted.
	d.DemodulateBurst(capBuf, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := d.DemodulateBurst(capBuf, 8); ok {
			b.Fatal("noise decoded as a frame")
		}
	}
}

// BenchmarkDemodDecode is the companion number for a successful decode:
// modulate once, demodulate repeatedly. Allocations here are the decoded
// frame itself (which escapes to the caller) — reported for context, not
// pinned at zero.
func BenchmarkDemodDecode(b *testing.B) {
	f := testFrame(b)
	burst := iq.New(0, SampleRate)
	if err := ModulateInto(burst, f, 0.5); err != nil {
		b.Fatal(err)
	}
	capBuf := iq.New(FrameSamples+8, SampleRate)
	if err := capBuf.AddAt(burst, 4); err != nil {
		b.Fatal(err)
	}
	d := NewDemodulator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := d.DemodulateBurst(capBuf, 8); !ok {
			b.Fatal("clean burst failed to decode")
		}
	}
}
