// Package phy1090 implements the Mode S downlink physical layer: 1090 MHz
// pulse-position modulation at the classic 2 MS/s dump1090 sample rate,
// preamble detection, demodulation and RSSI estimation.
//
// Wire format (RTCA DO-260B): an 8 µs preamble with pulses at 0, 1, 3.5 and
// 4.5 µs, followed by 112 data bits of 1 µs each. Each bit is PPM-encoded:
// a pulse in the first half-microsecond is a 1, in the second half a 0. At
// 2 MS/s every half-microsecond is exactly one sample, so a full extended
// squitter spans 16 + 224 = 240 samples.
package phy1090

import (
	"fmt"
	"math"

	"sensorcal/internal/iq"
	"sensorcal/internal/modes"
)

// SampleRate is the PHY sample rate in Hz (two samples per microsecond).
const SampleRate = 2e6

// PreambleSamples is the preamble length in samples (8 µs).
const PreambleSamples = 16

// FrameSamples is the total length of a modulated extended squitter.
const FrameSamples = PreambleSamples + 2*8*modes.FrameLength

// preamblePulses lists the half-microsecond slots carrying preamble
// energy: 0 µs, 1 µs, 3.5 µs, 4.5 µs.
var preamblePulses = [4]int{0, 2, 7, 9}

// Modulate produces the baseband burst for a Mode S frame with the given
// pulse amplitude (1.0 = full scale). The output holds only the burst
// itself; callers place it into a longer capture with iq.Buffer.AddAt.
func Modulate(frame []byte, amplitude float64) (*iq.Buffer, error) {
	b := iq.New(0, SampleRate)
	if err := ModulateInto(b, frame, amplitude); err != nil {
		return nil, err
	}
	return b, nil
}

// ModulateInto writes the baseband burst for frame into dst, reusing
// dst's sample storage (resized to the burst length and zeroed first).
// It is the allocation-free counterpart of Modulate for hot loops that
// modulate thousands of bursts through one scratch buffer.
func ModulateInto(dst *iq.Buffer, frame []byte, amplitude float64) error {
	if len(frame) != modes.FrameLength && len(frame) != modes.ShortFrameLength {
		return fmt.Errorf("phy1090: frame length %d not a Mode S frame", len(frame))
	}
	dst.SampleRate = SampleRate
	dst.Resize(PreambleSamples + 2*8*len(frame))
	a := complex(amplitude, 0)
	for _, p := range preamblePulses {
		dst.Samples[p] = a
	}
	for bit := 0; bit < len(frame)*8; bit++ {
		v := frame[bit/8] >> (7 - uint(bit%8)) & 1
		base := PreambleSamples + 2*bit
		if v == 1 {
			dst.Samples[base] = a
		} else {
			dst.Samples[base+1] = a
		}
	}
	return nil
}

// Decoded is one demodulated frame candidate.
type Decoded struct {
	Frame    []byte  // raw frame bytes (parity not yet verified)
	Offset   int     // sample index where the preamble begins
	RSSIDBFS float64 // mean pulse power in dBFS
	ParityOK bool    // result of the Mode S CRC check
	Repaired bool    // frame passed parity only after CRC repair
}

// Stats are the demodulator's running pipeline counters. They are plain
// fields — the demodulator is single-goroutine by design, and keeping the
// hot loop free of atomics is the point; export them to an obs registry
// between buffers (calib.RunDirectional does).
type Stats struct {
	// SamplesScanned counts power samples examined for a preamble.
	SamplesScanned int64
	// PreamblesDetected counts windows passing the preamble shape test.
	PreamblesDetected int64
	// CRCPass counts frames whose Mode S parity checked (including after
	// repair), CRCFail those rejected even after the configured repair.
	CRCPass, CRCFail int64
	// Repaired counts frames that passed parity only after CRC repair.
	Repaired int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.SamplesScanned += other.SamplesScanned
	s.PreamblesDetected += other.PreamblesDetected
	s.CRCPass += other.CRCPass
	s.CRCFail += other.CRCFail
	s.Repaired += other.Repaired
}

// Demodulator scans sample buffers for Mode S bursts. It is stateless
// between buffers; callers keep overlap if frames may straddle block
// boundaries.
type Demodulator struct {
	// PreambleThresholdDB is the minimum ratio between preamble pulse
	// power and the surrounding quiet slots, in dB. dump1090 uses ~3 dB
	// by default; higher values trade sensitivity for false-positive rate.
	PreambleThresholdDB float64
	// LongFramesOnly skips 56-bit short replies (the paper's pipeline
	// only consumes DF17 extended squitters).
	LongFramesOnly bool
	// ErrorCorrection selects CRC-based repair of demodulated frames:
	// 0 disables it, 1 repairs single bit flips (dump1090's default
	// --fix), 2 additionally repairs two-bit errors (--aggressive).
	ErrorCorrection int
	// Stat accumulates pipeline counters across calls.
	Stat Stats

	// mag is the power-series scratch reused across calls; it grows to
	// the largest buffer seen and keeps the scan loop allocation-free.
	mag []float64
	// bits is decodeAt's frame scratch: CRC-failing candidates (the
	// common case on noise) decode into it without allocating.
	bits []byte
}

// NewDemodulator returns a demodulator with dump1090-like defaults
// (single-bit repair enabled, as dump1090 ships).
func NewDemodulator() *Demodulator {
	return &Demodulator{PreambleThresholdDB: 3, LongFramesOnly: true, ErrorCorrection: 1}
}

// looksLikePreamble applies the classic dump1090 preamble shape test on
// the power series m starting at i, returning the mean pulse power if the
// shape matches.
func (d *Demodulator) looksLikePreamble(m []float64, i int) (float64, bool) {
	// Pulses must dominate their immediate neighbours.
	if !(m[i] > m[i+1] && m[i+2] > m[i+1] && m[i+2] > m[i+3] &&
		m[i+7] > m[i+6] && m[i+9] > m[i+8]) {
		return 0, false
	}
	pulse := (m[i] + m[i+2] + m[i+7] + m[i+9]) / 4
	// Quiet slots: 4.5–8 µs region (samples 11..15) plus slots 3..6.
	quiet := (m[i+3] + m[i+4] + m[i+5] + m[i+6] + m[i+11] + m[i+12] + m[i+13] + m[i+14] + m[i+15]) / 9
	ratio := rfSafeRatio(pulse, quiet)
	if 10*math.Log10(ratio) < d.PreambleThresholdDB {
		return 0, false
	}
	return pulse, true
}

func rfSafeRatio(a, b float64) float64 {
	if b <= 0 {
		b = 1e-30
	}
	return a / b
}

// Process scans the buffer and returns every decodable frame candidate
// whose parity checks, in order of appearance. The buffer must be at
// SampleRate.
func (d *Demodulator) Process(b *iq.Buffer) []Decoded {
	if b.SampleRate != SampleRate {
		return nil
	}
	m := b.MagSquared(d.mag)
	d.mag = m
	var out []Decoded
	i := 0
	for i+FrameSamples <= len(m) {
		d.Stat.SamplesScanned++
		pulse, ok := d.looksLikePreamble(m, i)
		if !ok {
			i++
			continue
		}
		d.Stat.PreamblesDetected++
		dec, ok := d.decodeAt(m, i, pulse)
		if !ok {
			i++
			continue
		}
		out = append(out, dec)
		// Skip past the decoded frame.
		i += PreambleSamples + 2*8*len(dec.Frame)
	}
	return out
}

// decodeAt slices 112 bits starting after the preamble at i and validates
// parity (falling back to a 56-bit short frame when allowed).
func (d *Demodulator) decodeAt(m []float64, i int, pulse float64) (Decoded, bool) {
	// Decode into the demodulator-held scratch: most candidates fail CRC
	// (noise that shaped like a preamble), and those must not allocate.
	// Only a successful decode copies the frame out, because Decoded.Frame
	// escapes into the tracker.
	if d.bits == nil {
		d.bits = make([]byte, modes.FrameLength)
	}
	bits := d.bits
	for j := range bits {
		bits[j] = 0
	}
	var pulsePower float64
	for bit := 0; bit < modes.FrameLength*8; bit++ {
		e1 := m[i+PreambleSamples+2*bit]
		e2 := m[i+PreambleSamples+2*bit+1]
		if e1 > e2 {
			bits[bit/8] |= 1 << (7 - uint(bit%8))
			pulsePower += e1
		} else {
			pulsePower += e2
		}
	}
	pulsePower /= float64(modes.FrameLength * 8)
	rssi := iq.PowerToDBFS((pulsePower + pulse) / 2)
	if modes.CheckParity(bits) {
		d.Stat.CRCPass++
		return Decoded{Frame: frameCopy(bits), Offset: i, RSSIDBFS: rssi, ParityOK: true}, true
	}
	switch d.ErrorCorrection {
	case 1:
		if _, ok := modes.FixSingleBit(bits); ok {
			d.Stat.CRCPass++
			d.Stat.Repaired++
			return Decoded{Frame: frameCopy(bits), Offset: i, RSSIDBFS: rssi, ParityOK: true, Repaired: true}, true
		}
	case 2:
		if _, ok := modes.FixTwoBits(bits); ok {
			d.Stat.CRCPass++
			d.Stat.Repaired++
			return Decoded{Frame: frameCopy(bits), Offset: i, RSSIDBFS: rssi, ParityOK: true, Repaired: true}, true
		}
	}
	if !d.LongFramesOnly && modes.CheckParity(bits[:modes.ShortFrameLength]) {
		d.Stat.CRCPass++
		return Decoded{Frame: short(bits), Offset: i, RSSIDBFS: rssi, ParityOK: true}, true
	}
	d.Stat.CRCFail++
	return Decoded{}, false
}

// frameCopy copies a decoded frame out of the scratch buffer.
func frameCopy(bits []byte) []byte {
	out := make([]byte, len(bits))
	copy(out, bits)
	return out
}

// short copies the leading short-frame bytes out of a long-frame buffer.
func short(bits []byte) []byte {
	out := make([]byte, modes.ShortFrameLength)
	copy(out, bits)
	return out
}

// DemodulateBurst is the fast path used by the burst-level simulator: the
// buffer is known to contain exactly one frame whose preamble starts
// within the first maxSearch samples. It returns the decoded frame and
// measured RSSI, or ok=false when the noise defeated the demodulator.
func (d *Demodulator) DemodulateBurst(b *iq.Buffer, maxSearch int) (Decoded, bool) {
	if b.SampleRate != SampleRate {
		return Decoded{}, false
	}
	m := b.MagSquared(d.mag)
	d.mag = m
	if maxSearch < 1 {
		maxSearch = 1
	}
	for i := 0; i < maxSearch && i+FrameSamples <= len(m); i++ {
		d.Stat.SamplesScanned++
		pulse, ok := d.looksLikePreamble(m, i)
		if !ok {
			continue
		}
		d.Stat.PreamblesDetected++
		if dec, ok := d.decodeAt(m, i, pulse); ok {
			return dec, true
		}
	}
	return Decoded{}, false
}

// SNRToAmplitude converts a link SNR (dB, over the 2 MHz channel at the
// demodulator input) and a noise power (linear full-scale units) into the
// pulse amplitude to pass to Modulate. Mode S pulses are on half the time,
// so the mean signal power during a pulse is amplitude².
func SNRToAmplitude(snrDB, noisePower float64) float64 {
	return math.Sqrt(noisePower * math.Pow(10, snrDB/10))
}
