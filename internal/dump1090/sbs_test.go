package dump1090

import (
	"math"
	"strings"
	"testing"
	"time"

	"sensorcal/internal/geo"
	"sensorcal/internal/modes"
)

var sbsAt = time.Date(2026, 7, 6, 12, 34, 56, 789e6, time.UTC)

func TestSBSIdentificationRoundTrip(t *testing.T) {
	f := frame(t, 0x4840D6, &modes.Identification{TC: 4, Callsign: "KLM1023"})
	line, ok := SBSLine(sbsAt, f, nil)
	if !ok {
		t.Fatal("identification should render")
	}
	if !strings.HasPrefix(line, "MSG,1,1,1,4840D6,1,2026/07/06,12:34:56.789") {
		t.Fatalf("line = %s", line)
	}
	if got := strings.Count(line, ","); got != 21 {
		t.Errorf("field separators = %d, want 21", got)
	}
	rec, err := ParseSBS(line)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TransmissionType != 1 || rec.ICAO != 0x4840D6 || rec.Callsign != "KLM1023" {
		t.Errorf("record = %+v", rec)
	}
	if !rec.At.Equal(sbsAt.Truncate(time.Millisecond)) {
		t.Errorf("timestamp = %v", rec.At)
	}
}

func TestSBSPositionCarriesTrackState(t *testing.T) {
	icao := modes.ICAO(0x111111)
	pos := &modes.AirbornePosition{TC: 11, AltValid: true, AltitudeFt: 35000,
		CPR: modes.EncodeCPR(37.9, -122.3, false)}
	f := frame(t, icao, pos)
	trk := &Track{ICAO: icao, Position: geo.Point{Lat: 37.9, Lon: -122.3}, PositionValid: true}
	line, ok := SBSLine(sbsAt, f, trk)
	if !ok {
		t.Fatal("position should render")
	}
	rec, err := ParseSBS(line)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TransmissionType != 3 || !rec.HasAltitude || rec.AltitudeFt != 35000 {
		t.Errorf("record = %+v", rec)
	}
	if !rec.HasPosition || math.Abs(rec.Lat-37.9) > 1e-4 || math.Abs(rec.Lon-(-122.3)) > 1e-4 {
		t.Errorf("position = %v,%v (has=%v)", rec.Lat, rec.Lon, rec.HasPosition)
	}
	// Without a track the position fields stay empty but the line is
	// still valid MSG,3.
	line2, ok := SBSLine(sbsAt, f, nil)
	if !ok {
		t.Fatal("positionless MSG,3 should render")
	}
	rec2, err := ParseSBS(line2)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.HasPosition {
		t.Error("no track should mean no position")
	}
}

func TestSBSVelocity(t *testing.T) {
	f := frame(t, 0x222222, &modes.Velocity{GroundSpeedKt: 412, TrackDeg: 87, VerticalRateFtMin: -640})
	line, ok := SBSLine(sbsAt, f, nil)
	if !ok {
		t.Fatal("velocity should render")
	}
	rec, err := ParseSBS(line)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TransmissionType != 4 || !rec.HasVelocity {
		t.Fatalf("record = %+v", rec)
	}
	if math.Abs(rec.GroundSpeedKt-412) > 1.5 || math.Abs(rec.TrackDeg-87) > 1.5 {
		t.Errorf("velocity = %v @ %v", rec.GroundSpeedKt, rec.TrackDeg)
	}
	if rec.VerticalRate != -640 {
		t.Errorf("vertical rate = %d", rec.VerticalRate)
	}
}

func TestSBSUnsupportedMessage(t *testing.T) {
	f := frame(t, 0x333333, &modes.OperationalStatus{Version: 2, NACp: 8, SIL: 2})
	if _, ok := SBSLine(sbsAt, f, nil); ok {
		t.Error("operational status has no SBS mapping")
	}
}

func TestParseSBSErrors(t *testing.T) {
	bad := []string{
		"",
		"MSG,1,1",
		"AIR,1,1,1,ABCDEF,1,2026/07/06,12:00:00.000,2026/07/06,12:00:00.000,,,,,,,,,,,,",
		"MSG,x,1,1,ABCDEF,1,2026/07/06,12:00:00.000,2026/07/06,12:00:00.000,,,,,,,,,,,,",
		"MSG,1,1,1,ZZZZZZ,1,2026/07/06,12:00:00.000,2026/07/06,12:00:00.000,,,,,,,,,,,,",
	}
	for _, line := range bad {
		if _, err := ParseSBS(line); err == nil {
			t.Errorf("line %q should fail", line)
		}
	}
	// Malformed numeric fields degrade to absent, not errors.
	ok := "MSG,3,1,1,ABCDEF,1,2026/07/06,12:00:00.000,2026/07/06,12:00:00.000,,notanum,,,xx,yy,zz,,,,,"
	rec, err := ParseSBS(ok)
	if err != nil {
		t.Fatal(err)
	}
	if rec.HasAltitude || rec.HasPosition || rec.VerticalRate != 0 {
		t.Errorf("malformed fields should be absent: %+v", rec)
	}
}

// TestSBSFromLivePipeline renders a real pipeline's output as an SBS feed
// and parses it back — the interop loop a downstream aggregator performs.
func TestSBSFromLivePipeline(t *testing.T) {
	tr := NewTracker()
	icao := modes.ICAO(0xA0B1C2)
	lat, lon := 37.95, -122.35
	msgs := []modes.Message{
		&modes.Identification{TC: 4, Callsign: "SIM0042"},
		&modes.AirbornePosition{TC: 11, AltValid: true, AltitudeFt: 12000, CPR: modes.EncodeCPR(lat, lon, false)},
		&modes.AirbornePosition{TC: 11, AltValid: true, AltitudeFt: 12000, CPR: modes.EncodeCPR(lat, lon, true)},
		&modes.Velocity{GroundSpeedKt: 300, TrackDeg: 200},
	}
	var feed []string
	for i, m := range msgs {
		f := frame(t, icao, m)
		at := sbsAt.Add(time.Duration(i) * 400 * time.Millisecond)
		tr.Feed(at, f, -30)
		trk, _ := tr.Track(icao)
		if line, ok := SBSLine(at, f, trk); ok {
			feed = append(feed, line)
		}
	}
	if len(feed) != 4 {
		t.Fatalf("feed lines = %d", len(feed))
	}
	var sawPosition bool
	for _, line := range feed {
		rec, err := ParseSBS(line)
		if err != nil {
			t.Fatalf("%s: %v", line, err)
		}
		if rec.ICAO != icao {
			t.Error("ICAO lost in feed")
		}
		if rec.HasPosition {
			sawPosition = true
			if math.Abs(rec.Lat-lat) > 0.01 || math.Abs(rec.Lon-lon) > 0.01 {
				t.Errorf("feed position %v,%v", rec.Lat, rec.Lon)
			}
		}
	}
	if !sawPosition {
		t.Error("feed never carried a decoded position")
	}
}

func TestAVRRoundTrip(t *testing.T) {
	wire, err := (&modes.Frame{ICAO: 0x4840D6, Capability: 5, Msg: &modes.Identification{TC: 4, Callsign: "KLM1023"}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	line := FormatAVR(wire)
	if !strings.HasPrefix(line, "*8D4840D6") || !strings.HasSuffix(line, ";") {
		t.Fatalf("AVR line = %s", line)
	}
	raw, err := ParseAVR(line)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wire {
		if raw[i] != wire[i] {
			t.Fatal("AVR round trip corrupted the frame")
		}
	}
}

func TestParseAVRErrors(t *testing.T) {
	for _, line := range []string{"", "8D4840D6;", "*8D4840D6", "*xyz;", "*8D48;", "*;"} {
		if _, err := ParseAVR(line); err == nil {
			t.Errorf("%q should fail", line)
		}
	}
}

func TestReplayAVRFeed(t *testing.T) {
	lat, lon := 37.95, -122.35
	mk := func(m modes.Message) string {
		wire, err := (&modes.Frame{ICAO: 0xABC001, Msg: m}).Encode()
		if err != nil {
			t.Fatal(err)
		}
		return FormatAVR(wire)
	}
	// Include the textbook KLM frame, a short DF11, a corrupted frame and
	// a garbage line.
	df11, err := modes.EncodeAllCall(modes.AllCall{Capability: 5, ICAO: 0x4840D6})
	if err != nil {
		t.Fatal(err)
	}
	corrupt, _ := (&modes.Frame{ICAO: 0xABC001, Msg: &modes.Identification{TC: 4, Callsign: "X"}}).Encode()
	modes.BitError(corrupt, 3)
	lines := []string{
		mk(&modes.Identification{TC: 4, Callsign: "SIM0001"}),
		mk(&modes.AirbornePosition{TC: 11, AltValid: true, AltitudeFt: 10000, CPR: modes.EncodeCPR(lat, lon, false)}),
		mk(&modes.AirbornePosition{TC: 11, AltValid: true, AltitudeFt: 10000, CPR: modes.EncodeCPR(lat, lon, true)}),
		FormatAVR(df11),
		FormatAVR(corrupt),
		"not an avr line",
	}
	p := NewPipeline()
	decoded, err := p.ReplayAVR(lines)
	if err == nil {
		t.Error("garbage line should surface an error")
	}
	if decoded != 3 {
		t.Errorf("decoded = %d, want 3", decoded)
	}
	if p.DecodeErrors != 1 {
		t.Errorf("decode errors = %d, want 1 (the corrupted frame)", p.DecodeErrors)
	}
	trk, ok := p.Tracker.Track(0xABC001)
	if !ok || trk.Callsign != "SIM0001" || !trk.PositionValid {
		t.Fatalf("replayed track = %+v", trk)
	}
	if geo.GroundDistance(trk.Position, geo.Point{Lat: lat, Lon: lon}) > 300 {
		t.Errorf("replayed position %v", trk.Position)
	}
}
