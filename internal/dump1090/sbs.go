package dump1090

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"sensorcal/internal/modes"
)

// SBS-1 "BaseStation" output — the CSV feed dump1090 serves on port
// 30003, consumed by virtually every ADS-B aggregation tool. Emitting and
// parsing it makes this pipeline drop-in compatible with downstream
// consumers (and gives the crowd-sourced network a wire format for raw
// message export).
//
// Relevant message types: MSG,1 identification; MSG,3 airborne position;
// MSG,4 airborne velocity. Field layout per the BaseStation reference:
//
//	MSG,<sub>,1,1,<icao>,1,<date>,<time>,<date>,<time>,
//	<callsign>,<alt>,<gs>,<trk>,<lat>,<lon>,<vr>,,,,,
const sbsFields = 22

func sbsTimestamp(at time.Time) (string, string) {
	return at.UTC().Format("2006/01/02"), at.UTC().Format("15:04:05.000")
}

// SBSLine renders one decoded frame as a BaseStation CSV line. Frames
// whose content SBS cannot carry (operational status, surface positions
// without decoded coordinates) return ok=false.
func SBSLine(at time.Time, f *modes.Frame, trk *Track) (string, bool) {
	fields := make([]string, sbsFields)
	fields[0] = "MSG"
	fields[2] = "1"
	fields[3] = "1"
	fields[4] = f.ICAO.String()
	fields[5] = "1"
	d, tm := sbsTimestamp(at)
	fields[6], fields[7] = d, tm
	fields[8], fields[9] = d, tm

	switch m := f.Msg.(type) {
	case *modes.Identification:
		fields[1] = "1"
		fields[10] = m.Callsign
	case *modes.AirbornePosition:
		fields[1] = "3"
		if m.AltValid {
			fields[11] = strconv.Itoa(m.AltitudeFt)
		}
		if trk != nil && trk.PositionValid {
			fields[14] = strconv.FormatFloat(trk.Position.Lat, 'f', 5, 64)
			fields[15] = strconv.FormatFloat(trk.Position.Lon, 'f', 5, 64)
		}
	case *modes.Velocity:
		fields[1] = "4"
		fields[12] = strconv.FormatFloat(m.GroundSpeedKt, 'f', 1, 64)
		fields[13] = strconv.FormatFloat(m.TrackDeg, 'f', 1, 64)
		fields[16] = strconv.Itoa(m.VerticalRateFtMin)
	default:
		return "", false
	}
	return strings.Join(fields, ","), true
}

// SBSRecord is a parsed BaseStation line.
type SBSRecord struct {
	TransmissionType int
	ICAO             modes.ICAO
	At               time.Time
	Callsign         string
	AltitudeFt       int
	HasAltitude      bool
	GroundSpeedKt    float64
	TrackDeg         float64
	HasVelocity      bool
	Lat, Lon         float64
	HasPosition      bool
	VerticalRate     int
}

// ParseSBS parses one BaseStation CSV line.
func ParseSBS(line string) (SBSRecord, error) {
	parts := strings.Split(strings.TrimSpace(line), ",")
	if len(parts) < 17 {
		return SBSRecord{}, fmt.Errorf("dump1090: SBS line has %d fields", len(parts))
	}
	if parts[0] != "MSG" {
		return SBSRecord{}, fmt.Errorf("dump1090: unsupported SBS message %q", parts[0])
	}
	var rec SBSRecord
	tt, err := strconv.Atoi(parts[1])
	if err != nil {
		return SBSRecord{}, fmt.Errorf("dump1090: bad transmission type %q", parts[1])
	}
	rec.TransmissionType = tt
	var icao uint32
	if _, err := fmt.Sscanf(parts[4], "%06X", &icao); err != nil {
		return SBSRecord{}, fmt.Errorf("dump1090: bad ICAO %q", parts[4])
	}
	rec.ICAO = modes.ICAO(icao)
	if at, err := time.Parse("2006/01/02 15:04:05.000", parts[6]+" "+parts[7]); err == nil {
		rec.At = at.UTC()
	}
	rec.Callsign = strings.TrimSpace(parts[10])
	if parts[11] != "" {
		if v, err := strconv.Atoi(parts[11]); err == nil {
			rec.AltitudeFt, rec.HasAltitude = v, true
		}
	}
	if parts[12] != "" && parts[13] != "" {
		gs, err1 := strconv.ParseFloat(parts[12], 64)
		tk, err2 := strconv.ParseFloat(parts[13], 64)
		if err1 == nil && err2 == nil {
			rec.GroundSpeedKt, rec.TrackDeg, rec.HasVelocity = gs, tk, true
		}
	}
	if parts[14] != "" && parts[15] != "" {
		lat, err1 := strconv.ParseFloat(parts[14], 64)
		lon, err2 := strconv.ParseFloat(parts[15], 64)
		if err1 == nil && err2 == nil {
			rec.Lat, rec.Lon, rec.HasPosition = lat, lon, true
		}
	}
	if parts[16] != "" {
		if v, err := strconv.Atoi(parts[16]); err == nil {
			rec.VerticalRate = v
		}
	}
	return rec, nil
}
